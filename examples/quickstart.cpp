// Quickstart: deploy a two-NF service chain (Classifier -> Router) on
// a simulated Tofino, install rules through the merged control plane,
// and push a packet through it.
//
//   $ ./quickstart
//
// Walks the full Dejavu flow: NF programs -> parser merge + NF
// composition -> placement -> stage allocation -> on-chip routing ->
// a running behavioral data plane.
#include <cstdio>

#include "control/deployment.hpp"
#include "example_chains.hpp"

using namespace dejavu;

int main() {
  // 1. Gather the inputs: NF programs authored against the §3.1
  //    control-block interface (parser vertices interned through a
  //    shared (header_type, offset) -> global-ID table), the chaining
  //    policy (who visits what, in which order, arriving and leaving
  //    where), and the switch profile (the paper's Wedge-100B 32X).
  //    The same setup is what `dejavu_cli lint --target quickstart`
  //    verifies.
  auto setup = examples::quickstart_setup();

  // 2. Build: Deployment::build merges the programs, optimizes the
  //    placement, statically verifies the composition, allocates MAU
  //    stages, derives the branching rules, and brings up the
  //    behavioral data plane.
  auto deployment = control::Deployment::build(
      std::move(setup.nfs), setup.policies, std::move(setup.config),
      std::move(setup.ids));

  std::printf("placement: %s\n",
              deployment->placement().to_string().c_str());
  for (const auto& [path, t] : deployment->routing().traversals) {
    std::printf("path %u traversal: %s\n", path, t.to_string().c_str());
  }

  // 3. Program the NF tables through the merged control plane (the
  //    same rules `dejavu_cli explore --target quickstart` verifies).
  examples::install_quickstart_rules(*deployment);
  auto& cp = deployment->control();

  // 4. Send a packet and look at what comes out.
  net::PacketSpec spec;
  spec.ip_src = net::Ipv4Addr(192, 168, 0, 1);
  spec.ip_dst = net::Ipv4Addr(10, 0, 0, 42);
  auto out = cp.inject(net::Packet::make(spec), /*in_port=*/0);

  if (out.out.size() == 1) {
    const auto& emitted = out.out.front();
    auto ip = emitted.packet.ipv4();
    std::printf("delivered on port %u: dst=%s ttl=%u sfc=%s\n",
                emitted.port, ip->dst.to_string().c_str(), ip->ttl,
                emitted.packet.has_sfc_header() ? "yes" : "no (popped)");
  } else {
    std::printf("packet not delivered: %s\n", out.drop_reason.c_str());
    return 1;
  }

  // 5. Ask the compiler-side how much of the switch the framework ate.
  auto report = deployment->framework_report();
  std::printf("framework overhead: %.1f%% of stages, %.1f%% of SRAM, "
              "%.1f%% of TCAM\n", report.pct_stages(), report.pct_sram(),
              report.pct_tcam());
  return 0;
}
