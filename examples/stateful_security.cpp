// Stateful in-network security (§7's "more advanced NFs" direction):
// a chain of Classifier -> Police (blocklist) -> Limiter (per-flow
// register rate limiting) -> Router, driven by a mixed workload of
// well-behaved flows and one flooding flow. Shows the register state
// doing its job at "line rate" and the blocklist composing with it.
//
//   $ ./stateful_security
#include <cstdio>

#include "control/deployment.hpp"
#include "example_chains.hpp"
#include "sim/workload.hpp"

using namespace dejavu;

int main() {
  constexpr std::uint32_t kThreshold = 20;  // packets per flow

  // Same setup `dejavu_cli lint --target stateful` verifies.
  auto setup = examples::stateful_security_setup(kThreshold);
  auto deployment = control::Deployment::build(
      std::move(setup.nfs), setup.policies, std::move(setup.config),
      std::move(setup.ids));
  std::printf("placement: %s\n",
              deployment->placement().to_string().c_str());

  // Rules (including the blocklisted source) shared with
  // `dejavu_cli explore --target stateful`.
  examples::install_stateful_rules(*deployment);
  auto& cp = deployment->control();
  const net::Ipv4Addr bad_source = examples::stateful_bad_source();

  // Workload: 10 polite flows sending 10 packets each, one flood flow
  // sending 100, and 5 packets from the blocklisted source.
  sim::FlowMix polite_mix;
  polite_mix.flows = 10;
  polite_mix.dst = net::Ipv4Addr(10, 0, 0, 80);
  polite_mix.seed = 11;
  auto polite = sim::generate_flows(polite_mix);

  sim::Flow flood;
  flood.spec.ip_src = net::Ipv4Addr(198, 51, 100, 99);
  flood.spec.ip_dst = net::Ipv4Addr(10, 0, 0, 80);
  flood.spec.src_port = 4444;
  flood.spec.dst_port = 80;

  sim::Flow blocked;
  blocked.spec.ip_src = bad_source;
  blocked.spec.ip_dst = net::Ipv4Addr(10, 0, 0, 80);

  int polite_ok = 0, flood_ok = 0, flood_dropped = 0, blocked_dropped = 0;
  for (int round = 0; round < 10; ++round) {
    for (const auto& flow : polite) {
      polite_ok += cp.inject(flow.packet(), 0).out.size();
    }
  }
  for (int i = 0; i < 100; ++i) {
    auto out = cp.inject(flood.packet(), 0);
    flood_ok += out.out.size();
    flood_dropped += out.dropped;
  }
  for (int i = 0; i < 5; ++i) {
    blocked_dropped += cp.inject(blocked.packet(), 0).dropped;
  }

  std::printf("polite flows: %d/100 packets delivered (all under the %u "
              "packet budget)\n", polite_ok, kThreshold);
  std::printf("flood flow:   %d delivered, %d rate-limited (threshold %u)\n",
              flood_ok, flood_dropped, kThreshold);
  std::printf("blocklisted:  %d/5 dropped by the Police NF\n",
              blocked_dropped);

  // Peek at the data-plane state a control plane could export.
  auto loc = deployment->placement().find("Limiter");
  if (loc) {
    auto* cells = deployment->dataplane().register_array(
        merge::pipelet_control_name(loc->pipelet), "Limiter.flow_count");
    if (cells != nullptr) {
      std::uint64_t occupied = 0, max_count = 0;
      for (std::uint64_t v : *cells) {
        occupied += v > 0;
        max_count = std::max(max_count, v);
      }
      std::printf("flow_count register: %llu of %zu cells in use, "
                  "hottest flow saw %llu packets\n",
                  static_cast<unsigned long long>(occupied), cells->size(),
                  static_cast<unsigned long long>(max_count));
    }
  }
  return polite_ok == 100 && flood_ok == static_cast<int>(kThreshold) ? 0
                                                                      : 1;
}
