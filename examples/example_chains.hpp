// Shared chain setups for the shipped examples. One definition of
// each example's NF programs / chaining policy / switch profile, so
// the example binaries and `dejavu_cli lint` build the exact same
// deployment — what the lint gate checks is what the examples run.
#pragma once

#include <cstdint>
#include <vector>

#include "asic/switch_config.hpp"
#include "control/deployment.hpp"
#include "nf/nfs.hpp"
#include "sfc/chain.hpp"

namespace dejavu::examples {

/// Everything Deployment::build consumes for one example chain.
struct ChainSetup {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  sfc::PolicySet policies;
  asic::SwitchConfig config{asic::TargetSpec::tofino32()};
};

/// quickstart: Classifier -> Router, one policy, port 0 -> port 1.
inline ChainSetup quickstart_setup() {
  ChainSetup s;
  s.nfs.push_back(nf::make_classifier(s.ids));
  s.nfs.push_back(nf::make_router(s.ids));
  s.policies.add({.path_id = 1,
                  .name = "classify-then-route",
                  .nfs = {sfc::kClassifier, sfc::kRouter},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  return s;
}

/// stateful_security: Classifier -> Police (blocklist) -> Limiter
/// (per-flow register rate limiting at `threshold` packets) -> Router.
inline ChainSetup stateful_security_setup(std::uint32_t threshold = 20) {
  ChainSetup s;
  s.nfs.push_back(nf::make_classifier(s.ids));
  s.nfs.push_back(nf::make_police(s.ids));
  s.nfs.push_back(nf::make_rate_limiter(s.ids, threshold));
  s.nfs.push_back(nf::make_router(s.ids));
  s.policies.add({.path_id = 1,
                  .name = "protected",
                  .nfs = {sfc::kClassifier, "Police", "Limiter", sfc::kRouter},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1,
                  .terminal_pops_sfc = true});
  return s;
}

/// The quickstart example's NF rules: everything toward 10/8 goes on
/// path 1 and routes out of port 1. The quickstart binary and
/// `dejavu_cli explore --target quickstart` install the same rules.
inline void install_quickstart_rules(control::Deployment& deployment) {
  auto& cp = deployment.control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 7});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = 1,
                .next_hop_mac = *net::MacAddr::parse("02:00:00:00:00:02")});
}

/// The source the stateful_security example blocklists.
inline net::Ipv4Addr stateful_bad_source() {
  return net::Ipv4Addr(203, 0, 113, 66);
}

/// The stateful_security example's NF rules: the quickstart-style
/// class + route, plus one blocklisted source in the Police NF.
inline void install_stateful_rules(control::Deployment& deployment) {
  auto& cp = deployment.control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 1});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = 1,
                .next_hop_mac = *net::MacAddr::parse("02:00:00:00:00:02")});
  for (sim::RuntimeTable* t :
       deployment.dataplane().tables_named("Police.blocklist")) {
    t->add_exact({stateful_bad_source().value()},
                 sim::ActionCall{"Police.block", {}});
  }
}

}  // namespace dejavu::examples
