// Shared chain setups for the shipped examples. One definition of
// each example's NF programs / chaining policy / switch profile, so
// the example binaries and `dejavu_cli lint` build the exact same
// deployment — what the lint gate checks is what the examples run.
#pragma once

#include <cstdint>
#include <vector>

#include "asic/switch_config.hpp"
#include "nf/nfs.hpp"
#include "sfc/chain.hpp"

namespace dejavu::examples {

/// Everything Deployment::build consumes for one example chain.
struct ChainSetup {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  sfc::PolicySet policies;
  asic::SwitchConfig config{asic::TargetSpec::tofino32()};
};

/// quickstart: Classifier -> Router, one policy, port 0 -> port 1.
inline ChainSetup quickstart_setup() {
  ChainSetup s;
  s.nfs.push_back(nf::make_classifier(s.ids));
  s.nfs.push_back(nf::make_router(s.ids));
  s.policies.add({.path_id = 1,
                  .name = "classify-then-route",
                  .nfs = {sfc::kClassifier, sfc::kRouter},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  return s;
}

/// stateful_security: Classifier -> Police (blocklist) -> Limiter
/// (per-flow register rate limiting at `threshold` packets) -> Router.
inline ChainSetup stateful_security_setup(std::uint32_t threshold = 20) {
  ChainSetup s;
  s.nfs.push_back(nf::make_classifier(s.ids));
  s.nfs.push_back(nf::make_police(s.ids));
  s.nfs.push_back(nf::make_rate_limiter(s.ids, threshold));
  s.nfs.push_back(nf::make_router(s.ids));
  s.policies.add({.path_id = 1,
                  .name = "protected",
                  .nfs = {sfc::kClassifier, "Police", "Limiter", sfc::kRouter},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1,
                  .terminal_pops_sfc = true});
  return s;
}

}  // namespace dejavu::examples
