// dejavu_cli: an operator's console for the canonical Fig. 2 edge
// deployment — the kind of tooling §7's "implications for network
// operation" asks for. Subcommands inspect placement, resources, and
// predicted throughput, export control-plane metadata, and inject test
// packets.
//
//   $ ./dejavu_cli plan [--fig9]
//   $ ./dejavu_cli resources [--fig9]
//   $ ./dejavu_cli throughput <offered-gbps> [--fig9]
//   $ ./dejavu_cli send <dst-ip> [count] [--fig9]
//   $ ./dejavu_cli replay [workers] [flows] [packets-per-flow]
//                         [--engine=compiled|interp] [--fig9]
//   $ ./dejavu_cli p4info [--fig9]
//   $ ./dejavu_cli lint [--json] [--target NAME]... [--all]
//                       [--fixture NAME]... [--fixtures] [--fig9]
//   $ ./dejavu_cli explore [--json] [--target NAME]... [--all]
//                          [--fixture NAME]... [--fixtures] [--fig9]
//   $ ./dejavu_cli chaos [--seed N] [--schedule NAME] [--workers N]
//                        [--flows N] [--repair bypass|replace|none]
//                        [--target fig2|fig9] [--json]
//   $ ./dejavu_cli update [--nf NAME] [--kill none|shadow|flip|drain]
//                         [--workers N] [--seed N] [--json]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "control/chaos.hpp"
#include "control/deployment.hpp"
#include "control/p4info.hpp"
#include "control/replay_target.hpp"
#include "example_chains.hpp"
#include "explore/explorer.hpp"
#include "explore/fixtures.hpp"
#include "sim/latency.hpp"
#include "sim/replay.hpp"
#include "sim/throughput.hpp"
#include "verify/fixtures.hpp"
#include "verify/verify.hpp"

using namespace dejavu;

namespace {

int cmd_plan(control::Fig2Deployment& fx) {
  std::printf("placement: %s\n",
              fx.deployment->placement().to_string().c_str());
  sim::LatencyModel latency(asic::TargetSpec::tofino32());
  for (const auto& [path, t] : fx.deployment->routing().traversals) {
    std::printf("path %u (%s, w=%.2f): %u recircs, %u resubs, %.0f ns\n",
                path, fx.policies.find(path)->name.c_str(),
                fx.policies.find(path)->weight, t.recirculations,
                t.resubmissions, latency.traversal_ns(t));
    std::printf("  %s\n", t.to_string().c_str());
  }
  std::printf("branching rules installed: %zu; check entries: %zu\n",
              fx.deployment->routing().branching.size(),
              fx.deployment->routing().checks.size());
  return 0;
}

int cmd_resources(control::Fig2Deployment& fx) {
  auto framework = fx.deployment->framework_report();
  auto total = fx.deployment->total_report();
  std::printf("-- Dejavu framework overhead (Table 1) --\n%s",
              framework.to_table().c_str());
  std::printf("-- whole deployment --\n%s", total.to_table().c_str());
  return 0;
}

int cmd_throughput(control::Fig2Deployment& fx, double offered) {
  auto report = sim::estimate_throughput(
      fx.policies, fx.deployment->routing().traversals,
      fx.deployment->dataplane().config(), offered);
  std::printf("%s", report.to_table().c_str());
  return 0;
}

int cmd_send(control::Fig2Deployment& fx, const char* dst_text, int count) {
  auto dst = net::Ipv4Addr::parse(dst_text);
  if (!dst) {
    std::fprintf(stderr, "bad destination address '%s'\n", dst_text);
    return 2;
  }
  int delivered = 0, dropped = 0, punted = 0;
  std::uint32_t recircs = 0;
  for (int i = 0; i < count; ++i) {
    net::PacketSpec spec;
    spec.ip_dst = *dst;
    spec.src_port = static_cast<std::uint16_t>(42000 + i);
    auto out = fx.deployment->control().inject(net::Packet::make(spec),
                                               control::Fig2Deployment::
                                                   kSenderPort);
    delivered += static_cast<int>(out.out.size());
    dropped += out.dropped;
    punted += !out.to_cpu.empty();
    recircs += out.recirculations;
    if (i == 0 && !out.out.empty()) {
      const auto& p = out.out.front();
      std::printf("first packet: port %u, dst %s, ttl %u, sfc %s\n",
                  p.port, p.packet.ipv4()->dst.to_string().c_str(),
                  p.packet.ipv4()->ttl,
                  p.packet.has_sfc_header() ? "LEAKED" : "popped");
    }
    if (i == 0 && out.dropped) {
      std::printf("first packet dropped: %s\n", out.drop_reason.c_str());
    }
  }
  std::printf("%d sent: %d delivered, %d dropped, %d punted, "
              "%u recirculations total\n",
              count, delivered, dropped, punted, recircs);
  std::printf("sessions learned: %zu\n",
              fx.deployment->control().sessions_learned());
  return 0;
}

int cmd_replay(bool fig9, sim::EngineKind engine_kind, std::uint32_t workers,
               std::uint32_t flows, std::uint32_t packets_per_flow) {
  sim::ReplayEngine engine(control::fig2_replay_factory(fig9));
  sim::ReplayConfig config;
  config.workers = workers;
  config.packets_per_flow = packets_per_flow;
  config.engine = engine_kind;
  const auto replay_flows = control::fig2_replay_flows(flows);
  auto report = engine.run(replay_flows, config);
  std::printf("%s", report.to_table().c_str());

  // Cross-check: feed the measured recirculation demands to the fluid
  // solver at an interesting offered load (2x the §5 prototype's
  // single-recirc budget, so saturation shows).
  asic::SwitchConfig switch_config(asic::TargetSpec::tofino32());
  switch_config.set_pipeline_loopback(1);
  const double offered = 2 * switch_config.external_capacity_gbps();
  auto measured = sim::replay_throughput(report, switch_config, offered);
  std::printf("-- replay-measured throughput at %.0f Gbps offered --\n%s",
              offered, measured.to_table().c_str());
  return 0;
}

/// Build one shipped deployment and return its verifier report.
/// Verification is kept non-throwing (DeploymentOptions::verify off)
/// so lint prints the findings instead of dying on the first error.
verify::Report lint_example(const std::string& target) {
  control::DeploymentOptions options;
  options.verify = false;
  if (target == "fig2" || target == "edge_cloud") {
    return control::make_fig2_deployment(std::nullopt, std::move(options))
        .deployment->verification();
  }
  if (target == "fig9") {
    return control::make_fig9_deployment(std::move(options))
        .deployment->verification();
  }
  examples::ChainSetup setup;
  if (target == "quickstart") {
    setup = examples::quickstart_setup();
  } else if (target == "stateful" || target == "stateful_security") {
    setup = examples::stateful_security_setup();
  } else {
    throw std::invalid_argument("unknown lint target '" + target +
                                "' (want fig2|fig9|quickstart|stateful)");
  }
  auto deployment = control::Deployment::build(
      std::move(setup.nfs), setup.policies, std::move(setup.config),
      std::move(setup.ids), std::move(options));
  return deployment->verification();
}

int cmd_lint(const std::vector<std::string>& args, bool fig9) {
  bool json = false;
  std::vector<std::string> targets;
  std::vector<std::string> fixture_names;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    if (a == "--json") {
      json = true;
    } else if (a == "--all") {
      targets = {"fig2", "fig9", "quickstart", "stateful"};
    } else if (a == "--fixtures") {
      fixture_names = verify::fixtures::names();
    } else if (a == "--target" && has_value) {
      targets.push_back(args[++i]);
    } else if (a == "--fixture" && has_value) {
      fixture_names.push_back(args[++i]);
    } else {
      std::fprintf(stderr, "lint: bad argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (targets.empty() && fixture_names.empty()) {
    targets = {fig9 ? "fig9" : "fig2"};
  }

  struct Item {
    std::string label;
    verify::Report report;
  };
  std::vector<Item> items;
  for (const std::string& target : targets) {
    try {
      items.push_back({target, lint_example(target)});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lint %s: build failed before verification: %s\n",
                   target.c_str(), e.what());
      return 1;
    }
  }
  for (const std::string& name : fixture_names) {
    verify::fixtures::Bundle bundle;
    try {
      bundle = verify::fixtures::make(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "lint: %s\n", e.what());
      return 2;
    }
    verify::Report report = verify::run_all(bundle.input());
    for (const std::string& id : bundle.expect_checks) {
      if (!report.has(id)) {
        // A fixture that stops tripping its check means the verifier
        // regressed; shout even though the exit code already reflects
        // whatever findings remain.
        std::fprintf(stderr,
                     "lint: fixture '%s' no longer trips expected check %s\n",
                     name.c_str(), id.c_str());
      }
    }
    items.push_back({"fixture:" + name, std::move(report)});
  }

  std::size_t errors = 0;
  for (const Item& item : items) errors += item.report.errors();

  if (json) {
    if (items.size() == 1) {
      // Single selection: the raw report, byte-for-byte what
      // Report::to_json() produces (the golden tests rely on this).
      std::fputs(items[0].report.to_json().c_str(), stdout);
    } else {
      std::printf("{\n");
      for (std::size_t i = 0; i < items.size(); ++i) {
        std::printf("%s\"%s\": %s", i == 0 ? "" : ",",
                    items[i].label.c_str(), items[i].report.to_json().c_str());
      }
      std::printf("}\n");
    }
  } else {
    for (const Item& item : items) {
      if (items.size() > 1) std::printf("== %s ==\n", item.label.c_str());
      std::fputs(item.report.to_string().c_str(), stdout);
    }
  }
  return errors > 0 ? 1 : 0;
}

/// Build one shipped deployment, install its example rules, and run
/// the symbolic packet-path explorer over the installed state.
explore::ExploreResult explore_example(const std::string& target) {
  control::DeploymentOptions options;
  options.verify = false;
  if (target == "fig2" || target == "edge_cloud") {
    auto fx = control::make_fig2_deployment(std::nullopt, std::move(options));
    return fx.deployment->run_explorer();
  }
  if (target == "fig9") {
    auto fx = control::make_fig9_deployment(std::move(options));
    return fx.deployment->run_explorer();
  }
  examples::ChainSetup setup;
  bool stateful = false;
  if (target == "quickstart") {
    setup = examples::quickstart_setup();
  } else if (target == "stateful" || target == "stateful_security") {
    setup = examples::stateful_security_setup();
    stateful = true;
  } else {
    throw std::invalid_argument("unknown explore target '" + target +
                                "' (want fig2|fig9|quickstart|stateful)");
  }
  auto deployment = control::Deployment::build(
      std::move(setup.nfs), setup.policies, std::move(setup.config),
      std::move(setup.ids), std::move(options));
  if (stateful) {
    examples::install_stateful_rules(*deployment);
  } else {
    examples::install_quickstart_rules(*deployment);
  }
  return deployment->run_explorer();
}

int cmd_explore(const std::vector<std::string>& args, bool fig9) {
  bool json = false;
  std::vector<std::string> targets;
  std::vector<std::string> fixture_names;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    if (a == "--json") {
      json = true;
    } else if (a == "--all") {
      targets = {"fig2", "fig9", "quickstart", "stateful"};
    } else if (a == "--fixtures") {
      fixture_names = explore::fixtures::names();
    } else if (a == "--target" && has_value) {
      targets.push_back(args[++i]);
    } else if (a == "--fixture" && has_value) {
      fixture_names.push_back(args[++i]);
    } else {
      std::fprintf(stderr, "explore: bad argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (targets.empty() && fixture_names.empty()) {
    targets = {fig9 ? "fig9" : "fig2"};
  }

  struct Item {
    std::string label;
    explore::ExploreResult result;
  };
  std::vector<Item> items;
  for (const std::string& target : targets) {
    try {
      items.push_back({target, explore_example(target)});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "explore %s: build failed before exploration: %s\n",
                   target.c_str(), e.what());
      return 1;
    }
  }
  for (const std::string& name : fixture_names) {
    explore::fixtures::Bundle bundle;
    try {
      bundle = explore::fixtures::make(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "explore: %s\n", e.what());
      return 2;
    }
    explore::ExploreResult result = bundle.deployment->run_explorer();
    for (const std::string& id : bundle.expect_checks) {
      if (!result.report.has(id)) {
        // A fixture that stops tripping its check means the explorer
        // regressed; shout even though the exit code already reflects
        // whatever findings remain.
        std::fprintf(
            stderr,
            "explore: fixture '%s' no longer trips expected check %s\n",
            name.c_str(), id.c_str());
      }
    }
    items.push_back({"fixture:" + name, std::move(result)});
  }

  std::size_t errors = 0;
  for (const Item& item : items) errors += item.result.report.errors();

  if (json) {
    if (items.size() == 1) {
      // Single selection: the raw report, byte-for-byte what
      // Report::to_json() produces (the golden tests rely on this).
      std::fputs(items[0].result.report.to_json().c_str(), stdout);
    } else {
      std::printf("{\n");
      for (std::size_t i = 0; i < items.size(); ++i) {
        std::printf("%s\"%s\": %s", i == 0 ? "" : ",",
                    items[i].label.c_str(),
                    items[i].result.report.to_json().c_str());
      }
      std::printf("}\n");
    }
  } else {
    for (const Item& item : items) {
      if (items.size() > 1) std::printf("== %s ==\n", item.label.c_str());
      std::fputs(item.result.report.to_string().c_str(), stdout);
      const explore::ExploreStats& s = item.result.stats;
      std::printf("%zu symbolic paths (%zu infeasible forks pruned, "
                  "%zu truncated), %zu differential replays\n",
                  s.paths, s.infeasible, s.truncated, s.replays);
    }
  }
  return errors > 0 ? 1 : 0;
}

int cmd_chaos(const std::vector<std::string>& args, bool fig9) {
  control::ChaosOptions options;
  options.fig9 = fig9;
  bool json = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(a + " needs a value");
      }
      return args[++i];
    };
    if (a == "--json") {
      json = true;
    } else if (a == "--seed") {
      options.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (a == "--schedule") {
      options.schedule = value();
    } else if (a == "--workers") {
      options.workers = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (a == "--flows") {
      options.flows = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (a == "--repair") {
      options.repair = value();
    } else if (a == "--target") {
      const std::string t = value();
      if (t == "fig9") {
        options.fig9 = true;
      } else if (t == "fig2") {
        options.fig9 = false;
      } else {
        throw std::invalid_argument("chaos targets are fig2|fig9, got " + t);
      }
    } else {
      throw std::invalid_argument("unknown chaos option " + a);
    }
  }
  control::ChaosResult result = control::run_chaos(options);
  std::fputs(json ? result.to_json().c_str() : result.to_string().c_str(),
             stdout);
  return result.ok() ? 0 : 1;
}

/// The bypass update used by `update`: the victim NF removed from
/// every chain, rerouted on the same placement. Throws for NFs whose
/// removal would not leave well-formed chains.
route::RoutingPlan bypass_plan(control::Deployment& dep,
                               const std::string& nf,
                               sfc::PolicySet& reduced) {
  if (nf != sfc::kVgw && nf != sfc::kLoadBalancer) {
    throw std::invalid_argument(
        "update drill bypasses a middle NF: --nf VGW|LB, got " + nf);
  }
  for (const sfc::ChainPolicy& p : dep.policies().policies()) {
    sfc::ChainPolicy rp = p;
    std::erase(rp.nfs, nf);
    reduced.add(std::move(rp));
  }
  route::RoutingPlan plan = route::build_routing(
      reduced, dep.placement(), dep.dataplane().config());
  if (!plan.feasible) {
    throw std::runtime_error("rerouted plan infeasible: " +
                             plan.infeasible_reason);
  }
  return plan;
}

control::CrashPoint parse_kill(const std::string& kill) {
  if (kill == "none") return control::CrashPoint::kNone;
  if (kill == "shadow") return control::CrashPoint::kAfterShadow;
  if (kill == "flip") return control::CrashPoint::kAfterFlip;
  if (kill == "drain") return control::CrashPoint::kAfterDrain;
  throw std::invalid_argument("--kill wants none|shadow|flip|drain, got " +
                              kill);
}

int cmd_update(const std::vector<std::string>& args, bool fig9) {
  std::string nf = sfc::kLoadBalancer;
  std::string kill = "none";
  std::uint32_t workers = 4;
  std::uint32_t flows = 60;
  std::uint32_t packets_per_flow = 8;
  std::uint64_t seed = 1;
  bool json = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        throw std::invalid_argument(a + " needs a value");
      }
      return args[++i];
    };
    if (a == "--json") {
      json = true;
    } else if (a == "--nf") {
      nf = value();
    } else if (a == "--kill") {
      kill = value();
    } else if (a == "--workers") {
      workers = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (a == "--flows") {
      flows = static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (a == "--packets") {
      packets_per_flow =
          static_cast<std::uint32_t>(std::atoi(value().c_str()));
    } else if (a == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else {
      throw std::invalid_argument("unknown update option " + a);
    }
  }
  const control::CrashPoint crash = parse_kill(kill);

  // --- part 1: per-packet consistency under a concurrent update.
  // The same flip fires mid-stream at 1 worker and at N workers; the
  // merged counters (including packets-by-epoch) must be bit-identical
  // and every packet must land in exactly one generation.
  auto run_at = [&](std::uint32_t w, std::vector<std::string>& errors) {
    errors.assign(w, "");
    sim::ReplayEngine engine(control::fig2_replay_factory(fig9));
    sim::ReplayConfig config;
    config.workers = w;
    config.packets_per_flow = packets_per_flow;
    config.update = sim::ReplayConfig::ReplayUpdate{};
    config.update->at_packet = packets_per_flow / 2;
    config.update->apply = [&](sim::ReplayTarget& t, std::uint32_t worker) {
      auto& dt = static_cast<control::DeploymentTarget&>(t);
      control::Deployment& dep = *dt.fixture().deployment;
      sfc::PolicySet reduced;
      route::RoutingPlan plan = bypass_plan(dep, nf, reduced);
      control::RuleDiff diff =
          control::routing_rule_diff(dep.routing(), plan, t.dataplane());
      control::LiveUpdate update(t.dataplane());
      control::UpdateReport rep = update.run(diff);
      if (!rep.committed) errors[worker] = rep.error;
    };
    return engine.run(control::fig2_replay_flows(flows, seed), config);
  };
  std::vector<std::string> errors1, errorsN;
  sim::ReplayReport r1 = run_at(1, errors1);
  sim::ReplayReport rn = run_at(workers, errorsN);

  std::string error;
  for (const std::string& e : errors1) {
    if (!e.empty()) error = "mid-stream update failed (1 worker): " + e;
  }
  for (const std::string& e : errorsN) {
    if (!e.empty() && error.empty()) {
      error = "mid-stream update failed (" + std::to_string(workers) +
              " workers): " + e;
    }
  }
  const bool identical = r1.counters == rn.counters;
  std::uint64_t attributed = 0;
  for (const auto& [epoch, n] : rn.counters.packets_by_epoch) {
    attributed += n;
  }
  const bool all_attributed = attributed == rn.counters.packets;
  const bool two_generations = rn.counters.packets_by_epoch.size() == 2;
  double flip_mean = 0;
  for (const sim::WorkerStats& w : rn.workers) flip_mean += w.update_seconds;
  if (!rn.workers.empty()) flip_mean /= static_cast<double>(rn.workers.size());

  // --- part 2: the kill drill. One live switch, journaled two-phase
  // update, controller crash at --kill, journal-driven recovery; the
  // final state must be byte-identical to a clean rollback or a clean
  // commit (never a blend).
  auto fx = fig9 ? control::make_fig9_deployment()
                 : control::make_fig2_deployment();
  control::Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  sfc::PolicySet reduced;
  route::RoutingPlan plan = bypass_plan(dep, nf, reduced);
  control::RuleDiff diff = control::routing_rule_diff(dep.routing(), plan, dp);

  control::Snapshot pre = control::take_snapshot(dp);
  const std::string rollback_ref = pre.to_text();
  sim::DataPlane scratch(dep.program(), dep.ids(), dp.config());
  control::restore_snapshot(pre, scratch);
  control::LiveUpdate clean(scratch);
  control::UpdateReport clean_report = clean.run(diff);
  if (!clean_report.committed && error.empty()) {
    error = "clean reference update failed: " + clean_report.error;
  }
  const std::string committed_ref = control::take_snapshot(scratch).to_text();

  control::Journal journal;
  control::LiveUpdateOptions opts;
  opts.crash_point = crash;
  control::LiveUpdate update(dp, &journal, opts);
  control::UpdateReport rep = update.run(diff);
  control::RecoveryReport recovery;
  if (rep.crashed) {
    recovery = control::recover(dp, journal);
  }
  const std::string final_state = control::take_snapshot(dp).to_text();
  const bool landed =
      rep.committed ||
      recovery.action == control::RecoveryAction::kRolledForward;
  const std::string outcome = rep.committed        ? "committed"
                              : landed             ? "recovered-forward"
                                                   : "rolled-back";
  const bool consistent =
      landed ? final_state == committed_ref : final_state == rollback_ref;

  const bool ok = error.empty() && identical && all_attributed &&
                  two_generations && consistent;
  if (json) {
    std::string by_epoch;
    for (const auto& [epoch, n] : rn.counters.packets_by_epoch) {
      if (!by_epoch.empty()) by_epoch += ", ";
      by_epoch +=
          "\"" + std::to_string(epoch) + "\": " + std::to_string(n);
    }
    std::printf(
        "{\n  \"ok\": %s,\n  \"nf\": \"%s\",\n  \"kill\": \"%s\",\n"
        "  \"workers\": %u,\n  \"seed\": %llu,\n"
        "  \"replay\": {\"identical\": %s, \"packets\": %llu, "
        "\"packets_by_epoch\": {%s}, \"flip_seconds_mean\": %.6f},\n"
        "  \"drill\": {\"outcome\": \"%s\", \"consistent\": %s},\n"
        "  \"error\": \"%s\"\n}\n",
        ok ? "true" : "false", nf.c_str(), kill.c_str(), workers,
        static_cast<unsigned long long>(seed), identical ? "true" : "false",
        static_cast<unsigned long long>(rn.counters.packets),
        by_epoch.c_str(), flip_mean, outcome.c_str(),
        consistent ? "true" : "false", error.c_str());
  } else {
    std::printf("update drill: bypass %s, kill %s, %u flows x %u packets\n",
                nf.c_str(), kill.c_str(), flows, packets_per_flow);
    std::printf(
        "  replay: 1 vs %u workers: counters %s; %llu packets, "
        "%zu generation(s)\n",
        workers, identical ? "bit-identical" : "DIVERGED",
        static_cast<unsigned long long>(rn.counters.packets),
        rn.counters.packets_by_epoch.size());
    for (const auto& [epoch, n] : rn.counters.packets_by_epoch) {
      std::printf("    epoch %u: %llu packets\n", epoch,
                  static_cast<unsigned long long>(n));
    }
    std::printf("  flip latency: %.1f us mean per worker\n", flip_mean * 1e6);
    std::printf("  kill drill: %s -> %s (%s)\n", kill.c_str(),
                outcome.c_str(),
                consistent ? "state consistent" : "STATE INCONSISTENT");
    if (!error.empty()) std::printf("  error: %s\n", error.c_str());
    std::printf("%s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}

void usage() {
  std::fprintf(stderr,
               "usage: dejavu_cli "
               "<plan|resources|throughput|send|replay|p4info|lint|explore|"
               "chaos|update> [args] [--fig9]\n"
               "  plan                     placement + traversals\n"
               "  resources                Table-1 style report\n"
               "  throughput <gbps>        predicted per-chain delivery\n"
               "  send <dst-ip> [count]    inject test packets\n"
               "  replay [workers] [flows] [pkts/flow] "
               "[--engine=compiled|interp]\n"
               "                           parallel traffic replay + "
               "measured throughput;\n"
               "                           --engine=compiled runs the "
               "trace-compiled fast path\n"
               "  p4info                   control-plane JSON description\n"
               "  lint [--json] [--target fig2|fig9|quickstart|stateful]...\n"
               "       [--all] [--fixture NAME]... [--fixtures]\n"
               "                           run the chain verifier; exits 1 "
               "on error findings\n"
               "  explore [--json] [--target fig2|fig9|quickstart|stateful]"
               "...\n"
               "       [--all] [--fixture NAME]... [--fixtures]\n"
               "                           run the symbolic packet-path "
               "explorer over\n"
               "                           the installed rules; exits 1 on "
               "error findings\n"
               "  chaos [--seed N] [--schedule none|writes|evictions|"
               "recirc|mixed]\n"
               "        [--workers N] [--flows N] [--repair bypass|replace|"
               "none]\n"
               "        [--target fig2|fig9] [--json]\n"
               "                           seeded fault injection + repair "
               "drill; exits 1\n"
               "                           on invariant violation or failed "
               "repair\n"
               "  update [--nf VGW|LB] [--kill none|shadow|flip|drain]\n"
               "         [--workers N] [--flows N] [--packets N] [--seed N]"
               " [--json]\n"
               "                           hitless live-update drill: "
               "mid-stream flip\n"
               "                           consistency + crash recovery; "
               "exits 1 on any\n"
               "                           inconsistency\n"
               "  --fig9                   use the paper's prototype "
               "placement\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool fig9 = false;
  std::erase_if(args, [&](const std::string& a) {
    if (a == "--fig9") {
      fig9 = true;
      return true;
    }
    return false;
  });
  if (args.empty()) {
    usage();
    return 2;
  }

  // Lint, explore, and replay build their own deployments; dispatch
  // before the shared fixture is constructed.
  if (args[0] == "lint") return cmd_lint(args, fig9);
  if (args[0] == "explore") return cmd_explore(args, fig9);
  if (args[0] == "chaos") {
    try {
      return cmd_chaos(args, fig9);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "chaos: %s\n", e.what());
      return 2;
    }
  }
  if (args[0] == "update") {
    try {
      return cmd_update(args, fig9);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "update: %s\n", e.what());
      return 2;
    }
  }
  if (args[0] == "replay") {
    sim::EngineKind engine = sim::EngineKind::kInterpreter;
    bool bad_engine = false;
    std::erase_if(args, [&](const std::string& a) {
      if (a.rfind("--engine=", 0) != 0) return false;
      const std::string value = a.substr(std::strlen("--engine="));
      if (value == "compiled") {
        engine = sim::EngineKind::kCompiled;
      } else if (value == "interp") {
        engine = sim::EngineKind::kInterpreter;
      } else {
        std::fprintf(stderr, "replay: unknown engine '%s' "
                     "(expected compiled|interp)\n", value.c_str());
        bad_engine = true;
      }
      return true;
    });
    if (bad_engine) return 2;
    const auto arg_or = [&](std::size_t i, std::uint32_t fallback) {
      return args.size() > i
                 ? static_cast<std::uint32_t>(std::atoi(args[i].c_str()))
                 : fallback;
    };
    return cmd_replay(fig9, engine, arg_or(1, 4), arg_or(2, 100),
                      arg_or(3, 4));
  }

  auto fx = fig9 ? control::make_fig9_deployment()
                 : control::make_fig2_deployment();

  const std::string& cmd = args[0];
  if (cmd == "plan") return cmd_plan(fx);
  if (cmd == "resources") return cmd_resources(fx);
  if (cmd == "throughput") {
    if (args.size() < 2) {
      usage();
      return 2;
    }
    return cmd_throughput(fx, std::atof(args[1].c_str()));
  }
  if (cmd == "send") {
    if (args.size() < 2) {
      usage();
      return 2;
    }
    const int count = args.size() > 2 ? std::atoi(args[2].c_str()) : 1;
    return cmd_send(fx, args[1].c_str(), count);
  }
  if (cmd == "p4info") {
    std::fputs(control::p4info_json(fx.deployment->program()).c_str(),
               stdout);
    return 0;
  }
  usage();
  return 2;
}
