// Placement explorer: feed the optimizer arbitrary chains and compare
// the naive alternating baseline, the exhaustive search, and simulated
// annealing — the §3.3 optimization problem made tangible.
//
//   $ ./placement_explorer                 # the Fig. 6 chain
//   $ ./placement_explorer A,B,C D,A,E    # custom chains (one arg each)
//
// NF names are free-form tokens; each chain's weight defaults to 1.
#include <cstdio>
#include <string>
#include <vector>

#include "place/optimizer.hpp"

using namespace dejavu;

namespace {

std::vector<std::string> split_chain(const std::string& arg) {
  std::vector<std::string> nfs;
  std::string cur;
  for (char c : arg) {
    if (c == ',') {
      if (!cur.empty()) nfs.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) nfs.push_back(cur);
  return nfs;
}

void describe(const char* name, const place::Placement& placement,
              const sfc::PolicySet& policies, const asic::TargetSpec& spec,
              const place::TraversalEnv& env) {
  std::printf("\n%s\n  %s\n", name, placement.to_string().c_str());
  double weighted = 0;
  for (const auto& policy : policies.policies()) {
    auto t = place::plan_traversal(policy, placement, spec, env);
    if (!t.feasible) {
      std::printf("  path %u: INFEASIBLE (%s)\n", policy.path_id,
                  t.infeasible_reason.c_str());
      return;
    }
    weighted += policy.weight * t.recirculations;
    std::printf("  path %u (w=%.2f): %u recircs, %u resubs\n    %s\n",
                policy.path_id, policy.weight, t.recirculations,
                t.resubmissions, t.to_string().c_str());
  }
  std::printf("  => weighted recirculations: %.2f\n", weighted);
}

}  // namespace

int main(int argc, char** argv) {
  sfc::PolicySet policies;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      auto nfs = split_chain(argv[i]);
      if (nfs.empty()) continue;
      policies.add({.path_id = static_cast<std::uint16_t>(i),
                    .name = argv[i],
                    .nfs = std::move(nfs),
                    .weight = 1.0,
                    .in_port = 0,
                    .exit_port = 1});
    }
  } else {
    policies.add({.path_id = 1,
                  .name = "fig6",
                  .nfs = {"A", "B", "C", "D", "E", "F"},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  }
  if (policies.empty()) {
    std::fprintf(stderr, "no valid chains given\n");
    return 1;
  }

  auto spec = asic::TargetSpec::tofino32();
  place::TraversalEnv env{.pipelines = spec.pipelines, .can_recirculate = {}};
  // Cap pipelets at roughly two NFs each (the Fig. 6 regime) so the
  // optimizer faces the same spreading problem the paper discusses.
  place::StageModel model;
  model.default_nf_stages = 3;

  describe("naive alternating baseline",
           place::naive_alternating(policies, spec), policies, spec, env);

  const auto n = place::global_nf_order(policies).size();
  if (n <= 9) {
    auto exact = place::exhaustive_optimize(policies, spec, env, model);
    std::printf("\nexhaustive: evaluated %llu placements, best cost %.2f\n",
                static_cast<unsigned long long>(exact.evaluated), exact.cost);
    if (exact.feasible) {
      describe("exhaustive optimum", exact.placement, policies, spec, env);
    }
  } else {
    std::printf("\n(%zu NFs: skipping exhaustive search)\n", n);
  }

  place::AnnealParams params;
  params.iterations = 30000;
  auto annealed = place::anneal_optimize(policies, spec, env, model, params);
  if (annealed.feasible) {
    describe("simulated annealing", annealed.placement, policies, spec, env);
  } else {
    std::printf("\nannealing found no feasible placement\n");
  }
  return 0;
}
