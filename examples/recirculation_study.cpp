// Recirculation study (§4 interactive): for any port/loopback
// configuration and chain depth, print the capacity split, the fluid
// feedback-queue prediction, and the packet-level simulation next to
// each other.
//
//   $ ./recirculation_study                 # defaults: 32 ports, 16 loopback
//   $ ./recirculation_study 32 8 4          # ports, loopback, max recircs
#include <cstdio>
#include <cstdlib>

#include "sim/fluid.hpp"
#include "sim/queue_sim.hpp"

using namespace dejavu;

int main(int argc, char** argv) {
  const std::uint32_t ports = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint32_t loopback = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::uint32_t max_k = argc > 3 ? std::atoi(argv[3]) : 5;
  const double port_gbps = 100.0;

  if (loopback > ports || ports == 0) {
    std::fprintf(stderr, "need 0 <= loopback <= ports, ports > 0\n");
    return 1;
  }

  std::printf("switch: %u x %.0f G ports, %u in loopback mode\n", ports,
              port_gbps, loopback);
  std::printf("external capacity: %.1f Gbps (%.0f%% of the ASIC)\n",
              ports * port_gbps * sim::external_capacity_fraction(ports,
                                                                  loopback),
              100 * sim::external_capacity_fraction(ports, loopback));
  std::printf("fraction of external traffic that can recirculate once "
              "without loss: %.2f\n\n",
              sim::single_recirc_fraction(ports, loopback));

  std::printf("per-loopback-port feedback queue (injection at line "
              "rate):\n");
  std::printf("%-8s %-14s %-14s %-12s %-12s\n", "recircs", "fluid Gbps",
              "packet Gbps", "loss", "extra delay");
  for (std::uint32_t k = 0; k <= max_k; ++k) {
    sim::QueueSimParams params;
    params.recirculations = k;
    params.capacity_gbps = port_gbps;
    auto r = sim::simulate_recirculation(params);
    std::printf("%-8u %-14.1f %-14.1f %-12.3f %-12.1f\n", k,
                sim::recirc_throughput_gbps(port_gbps, k), r.delivered_gbps,
                r.loss_fraction, r.mean_extra_slots);
  }

  std::printf("\nper-generation loads on the loopback port (k = %u):\n",
              max_k);
  auto gens = sim::generation_throughputs_gbps(port_gbps, max_k);
  double sum = 0;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    std::printf("  pass %zu: %.1f Gbps\n", i + 1, gens[i]);
    sum += gens[i];
  }
  std::printf("  total: %.1f Gbps (the port saturates at %.0f)\n", sum,
              port_gbps);
  return 0;
}
