// Dump the composed multi-pipelet P4 program for the Fig. 2 deployment
// — the artifact a code-level merge tool would hand to the vendor
// compiler. Useful for inspecting what the glue synthesis actually
// wove around the NFs.
//
//   $ ./dump_p4            # optimizer placement
//   $ ./dump_p4 fig9       # the paper's prototype placement
#include <cstdio>
#include <cstring>

#include "control/deployment.hpp"
#include "p4ir/emit.hpp"

using namespace dejavu;

int main(int argc, char** argv) {
  const bool fig9 = argc > 1 && std::strcmp(argv[1], "fig9") == 0;
  auto fx = fig9 ? control::make_fig9_deployment()
                 : control::make_fig2_deployment();

  std::printf("// placement: %s\n\n",
              fx.deployment->placement().to_string().c_str());
  std::fputs(p4ir::emit_p4(fx.deployment->program(), fx.deployment->ids())
                 .c_str(),
             stdout);
  return 0;
}
