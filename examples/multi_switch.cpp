// Multi-switch extension (§7 "Towards clusters of switch data
// planes"): when a chain cannot fit one switch's pipelines, chain two
// switches back-to-back and treat the pair as one virtual ASIC with
// twice the pipelines (place::ClusterSpec). Transitions that stay on
// one chip recirculate on-chip (~75 ns); transitions crossing the
// cable are off-chip (~145 ns) — the paper's Fig. 8(b) measurement is
// exactly what makes this "low enough to be practical".
//
//   $ ./multi_switch
#include <cstdio>

#include "place/cluster.hpp"
#include "place/optimizer.hpp"

using namespace dejavu;

int main() {
  // A 10-NF chain where each NF needs ~4 stages (+2 glue): one
  // 12-stage pipelet holds at most one of them, so a single switch's
  // 4 pipelets cannot host the chain.
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "deep-chain",
                .nfs = {"C", "N1", "N2", "N3", "N4", "N5", "N6", "N7", "N8",
                        "R"},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1});

  place::StageModel model;
  model.default_nf_stages = 6;

  // --- one switch: 2 pipelines, 4 pipelets, sequential composition ---
  auto single = asic::TargetSpec::tofino32();
  place::TraversalEnv env1{.pipelines = single.pipelines,
                           .can_recirculate = {}};
  auto r1 = place::exhaustive_optimize(policies, single, env1, model);
  std::printf("single switch (4 pipelets x 12 stages): %s\n",
              r1.feasible ? "feasible" : "INFEASIBLE (chain too deep)");

  // --- a cluster of three switches, §7's back-to-back chaining ---
  place::ClusterSpec cluster;
  cluster.switches = 3;
  auto virt = cluster.virtual_spec();
  place::TraversalEnv env2{.pipelines = virt.pipelines,
                           .can_recirculate = {}};
  place::AnnealParams params;
  params.iterations = 60000;
  params.seed = 42;
  auto r2 = place::anneal_optimize(policies, virt, env2, model, params);
  if (!r2.feasible) {
    std::printf("cluster placement infeasible -- unexpected\n");
    return 1;
  }
  std::printf("%u-switch cluster (%u pipelets, %u stages): feasible\n",
              cluster.switches, virt.pipelet_count(),
              cluster.total_stages());
  std::printf("  %s\n", r2.placement.to_string().c_str());
  std::printf("  (pipelines 0-1 = switch 0, 2-3 = switch 1, "
              "4-5 = switch 2)\n");

  auto t = place::plan_traversal(policies.policies()[0], r2.placement, virt,
                                 env2);
  std::printf("  traversal: %s\n", t.to_string().c_str());
  std::printf("  recirculations: %u, resubmissions: %u\n", t.recirculations,
              t.resubmissions);
  std::printf("  inter-switch crossings: %u\n",
              place::inter_switch_crossings(t, cluster));
  std::printf("  end-to-end latency: %.0f ns\n",
              place::cluster_traversal_ns(t, cluster));
  std::printf("\n§7: \"multiple switches chained back-to-back provide the "
              "same bandwidth\nwith manyfold more MAU stages\" -- the "
              "off-chip penalty per hop is only ~%.0f ns.\n",
              cluster.switch_spec.offchip_recirc_latency_ns);
  return 0;
}
