// The paper's motivating scenario end to end (Fig. 2 + §5): a
// production edge cloud's five-NF chain — traffic classifier, packet
// filtering firewall, virtualization gateway, L4 load balancer, IP
// router — deployed on one simulated Tofino with pipeline 1 in
// loopback mode, serving three tenant traffic classes. Runs a small
// multi-flow workload, exercising SFC steering, session learning via
// CPU punts, firewall policy, and VIP translation.
#include <cstdio>
#include <map>

#include "control/deployment.hpp"
#include "sim/latency.hpp"

using namespace dejavu;

int main() {
  auto fx = control::make_fig2_deployment();
  auto& cp = fx.deployment->control();

  std::printf("deployed: %s\n",
              fx.deployment->placement().to_string().c_str());
  sim::LatencyModel latency(asic::TargetSpec::tofino32());
  for (const auto& [path, t] : fx.deployment->routing().traversals) {
    std::printf("  path %u (%s): %u recirculations, %.0f ns\n", path,
                fx.policies.find(path)->name.c_str(), t.recirculations,
                latency.traversal_ns(t));
  }

  // A small workload: 64 TCP flows into the load-balanced VIP space,
  // plus virtualized and plain traffic.
  std::printf("\n-- workload: 64 flows to the VIP (path 1) --\n");
  std::map<std::string, int> backend_counts;
  int delivered = 0;
  for (std::uint16_t flow = 0; flow < 64; ++flow) {
    net::PacketSpec spec;
    spec.ip_src = net::Ipv4Addr(192, 168, 1, static_cast<std::uint8_t>(flow));
    spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
    spec.src_port = static_cast<std::uint16_t>(30000 + flow);
    spec.dst_port = 443;
    auto out = cp.inject(net::Packet::make(spec), 0);
    if (out.out.size() == 1) {
      ++delivered;
      ++backend_counts[out.out.front().packet.ipv4()->dst.to_string()];
    }
  }
  std::printf("delivered %d/64; sessions learned: %zu\n", delivered,
              cp.sessions_learned());
  for (const auto& [backend, n] : backend_counts) {
    std::printf("  backend %-12s <- %d flows\n", backend.c_str(), n);
  }

  std::printf("\n-- second packets of the same flows (warm sessions) --\n");
  int punts_before = static_cast<int>(cp.sessions_learned());
  delivered = 0;
  for (std::uint16_t flow = 0; flow < 64; ++flow) {
    net::PacketSpec spec;
    spec.ip_src = net::Ipv4Addr(192, 168, 1, static_cast<std::uint8_t>(flow));
    spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
    spec.src_port = static_cast<std::uint16_t>(30000 + flow);
    spec.dst_port = 443;
    delivered += cp.inject(net::Packet::make(spec), 0).out.size() == 1;
  }
  std::printf("delivered %d/64 with %d new punts (expect 0)\n", delivered,
              static_cast<int>(cp.sessions_learned()) - punts_before);

  std::printf("\n-- virtualized traffic (path 2) --\n");
  net::PacketSpec vgw_spec;
  vgw_spec.ip_dst = net::Ipv4Addr(10, 2, 0, 20);
  auto vgw_out = cp.inject(net::Packet::make(vgw_spec), 0);
  if (vgw_out.out.size() == 1) {
    std::printf("VIP 10.2.0.20 translated to %s\n",
                vgw_out.out.front().packet.ipv4()->dst.to_string().c_str());
  }

  std::printf("\n-- plain routed traffic (path 3) --\n");
  net::PacketSpec direct_spec;
  direct_spec.ip_dst = net::Ipv4Addr(10, 3, 0, 99);
  auto direct_out = cp.inject(net::Packet::make(direct_spec), 0);
  std::printf("delivered=%zu ttl=%u (router decrements)\n",
              direct_out.out.size(),
              direct_out.out.empty() ? 0
                                     : direct_out.out.front().packet.ipv4()->ttl);

  std::printf("\n-- firewall: UDP into the VIP space is not permitted --\n");
  net::PacketSpec udp_spec;
  udp_spec.protocol = net::kIpProtoUdp;
  udp_spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  auto udp_out = cp.inject(net::Packet::make(udp_spec), 0);
  std::printf("dropped=%s (%s)\n", udp_out.dropped ? "yes" : "no",
              udp_out.drop_reason.c_str());

  return 0;
}
