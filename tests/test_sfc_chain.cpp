#include "sfc/chain.hpp"

#include <gtest/gtest.h>

namespace dejavu::sfc {
namespace {

TEST(PolicySet, AddAndFind) {
  PolicySet set;
  set.add({.path_id = 1, .name = "a", .nfs = {"C", "R"}, .weight = 0.5});
  set.add({.path_id = 2, .name = "b", .nfs = {"C", "F", "R"}, .weight = 0.5});
  EXPECT_EQ(set.size(), 2u);
  ASSERT_NE(set.find(1), nullptr);
  EXPECT_EQ(set.find(1)->name, "a");
  EXPECT_EQ(set.find(3), nullptr);
}

TEST(PolicySet, RejectsDuplicatePathIds) {
  PolicySet set;
  set.add({.path_id = 1, .name = "a", .nfs = {"C"}});
  EXPECT_THROW(set.add({.path_id = 1, .name = "b", .nfs = {"C"}}),
               std::invalid_argument);
}

TEST(PolicySet, RejectsEmptyChains) {
  PolicySet set;
  EXPECT_THROW(set.add({.path_id = 1, .name = "empty", .nfs = {}}),
               std::invalid_argument);
}

TEST(PolicySet, RejectsRepeatedNfInOneChain) {
  PolicySet set;
  EXPECT_THROW(set.add({.path_id = 1, .name = "x", .nfs = {"C", "C"}}),
               std::invalid_argument);
}

TEST(PolicySet, RejectsNegativeWeight) {
  PolicySet set;
  EXPECT_THROW(
      set.add({.path_id = 1, .name = "x", .nfs = {"C"}, .weight = -1}),
      std::invalid_argument);
}

TEST(PolicySet, NfAtIndexSemantics) {
  PolicySet set;
  set.add({.path_id = 4, .name = "p", .nfs = {"A", "B", "C"}});
  EXPECT_EQ(set.nf_at(4, 0), "A");
  EXPECT_EQ(set.nf_at(4, 2), "C");
  EXPECT_FALSE(set.nf_at(4, 3).has_value());  // chain complete
  EXPECT_FALSE(set.nf_at(9, 0).has_value());  // unknown path
}

TEST(PolicySet, AllNfsIsSortedUnion) {
  PolicySet set;
  set.add({.path_id = 1, .name = "a", .nfs = {"C", "B"}});
  set.add({.path_id = 2, .name = "b", .nfs = {"C", "A"}});
  EXPECT_EQ(set.all_nfs(), (std::vector<std::string>{"A", "B", "C"}));
}

TEST(PolicySet, TotalWeight) {
  PolicySet set;
  set.add({.path_id = 1, .name = "a", .nfs = {"C"}, .weight = 0.25});
  set.add({.path_id = 2, .name = "b", .nfs = {"C"}, .weight = 0.5});
  EXPECT_DOUBLE_EQ(set.total_weight(), 0.75);
}

TEST(Fig2Policies, MatchesThePaper) {
  PolicySet set = fig2_policies();
  ASSERT_EQ(set.size(), 3u);
  // Red arrows: Classifier-FW-VGW-LB-Router.
  EXPECT_EQ(set.find(1)->nfs,
            (std::vector<std::string>{kClassifier, kFirewall, kVgw,
                                      kLoadBalancer, kRouter}));
  // Orange: Classifier-VGW-Router.
  EXPECT_EQ(set.find(2)->nfs,
            (std::vector<std::string>{kClassifier, kVgw, kRouter}));
  // Green: Classifier-Router.
  EXPECT_EQ(set.find(3)->nfs,
            (std::vector<std::string>{kClassifier, kRouter}));
  // Every path begins with the Classifier and ends with the Router
  // (both supplied by the framework, Fig. 2 caption).
  for (const auto& p : set.policies()) {
    EXPECT_EQ(p.nfs.front(), kClassifier);
    EXPECT_EQ(p.nfs.back(), kRouter);
  }
}

}  // namespace
}  // namespace dejavu::sfc
