// Chain-verifier unit tests: catalog integrity, report formatting,
// every seeded broken-composition fixture tripping exactly its
// expected checks, shipped deployments verifying clean, and the
// front-of-setup gates in Deployment::build / DataPlaneTarget.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "control/deployment.hpp"
#include "sim/replay.hpp"
#include "verify/fixtures.hpp"
#include "verify/verify.hpp"

namespace dejavu {
namespace {

TEST(FindingCatalog, IdsAndNamesUniqueAndResolvable) {
  std::set<std::string> ids;
  std::set<std::string> names;
  for (const verify::CheckInfo& info : verify::check_catalog()) {
    EXPECT_TRUE(ids.insert(info.id).second) << info.id;
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_EQ(verify::find_check(info.id), &info);
    EXPECT_NE(info.what, nullptr) << info.id;
    EXPECT_NE(std::string(info.what), "") << info.id;
  }
  EXPECT_EQ(verify::find_check("DV-XX"), nullptr);
}

TEST(Report, AddByIdPicksCatalogSeverityAndSortsErrorsFirst) {
  verify::Report r;
  r.add("DV-L5", "w", "warning added first");
  r.add("DV-H1", "x", "error added second");
  EXPECT_EQ(r.errors(), 1u);
  EXPECT_EQ(r.warnings(), 1u);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("DV-H1"));
  EXPECT_FALSE(r.has("DV-H2"));
  r.sort();
  EXPECT_EQ(r.findings().front().check, "DV-H1");
  EXPECT_THROW(r.add("DV-NOPE", "", ""), std::invalid_argument);
}

TEST(Report, TextAndJsonRenderings) {
  verify::Report clean;
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.to_string(), "clean (0 findings)\n");
  EXPECT_NE(clean.to_json().find("\"ok\": true"), std::string::npos);
  EXPECT_NE(clean.to_json().find("\"findings\": []"), std::string::npos);

  verify::Report bad;
  bad.add("DV-D1", "ctrl", "a \"quoted\" message");
  EXPECT_NE(bad.to_string().find("error[DV-D1] ctrl: a \"quoted\""),
            std::string::npos);
  EXPECT_NE(bad.to_json().find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(bad.to_json().find("\"name\": \"deps.cycle\""),
            std::string::npos);
}

TEST(Fixtures, EveryFixtureTripsExactlyItsExpectedChecks) {
  for (const std::string& name : verify::fixtures::names()) {
    const verify::fixtures::Bundle bundle = verify::fixtures::make(name);
    EXPECT_EQ(bundle.name, name);
    EXPECT_FALSE(bundle.expect_checks.empty()) << name;
    const verify::Report report = verify::run_all(bundle.input());
    EXPECT_FALSE(report.ok()) << name << ":\n" << report.to_string();
    std::set<std::string> fired;
    for (const verify::Finding& f : report.findings()) fired.insert(f.check);
    const std::set<std::string> expected(bundle.expect_checks.begin(),
                                         bundle.expect_checks.end());
    EXPECT_EQ(fired, expected) << name << ":\n" << report.to_string();
  }
}

TEST(Fixtures, UnknownNameThrows) {
  EXPECT_THROW(verify::fixtures::make("no-such-fixture"),
               std::invalid_argument);
}

TEST(Verifier, DependencyGraphsCoverEveryPipelet) {
  auto fx = control::make_fig9_deployment();
  const auto graphs = verify::dependency_graphs(fx.deployment->program());
  EXPECT_EQ(graphs.size(), fx.deployment->program().controls().size());
}

TEST(Verifier, ShippedFig9DeploymentIsClean) {
  auto fx = control::make_fig9_deployment();
  const verify::Report& report = fx.deployment->verification();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.empty()) << report.to_string();
}

TEST(Verifier, VerifyOffStillPopulatesTheReport) {
  control::DeploymentOptions options;
  options.verify = false;
  auto fx = control::make_fig9_deployment(std::move(options));
  EXPECT_TRUE(fx.deployment->verification().ok());
}

TEST(Verifier, ReplayTargetRejectsBrokenProgram) {
  // The stage-overflow fixture's program (a six-deep match-dependency
  // chain) cannot fit the bundled mini profile's 4-stage ladder, so
  // the replay target's front-of-setup verification must throw.
  const verify::fixtures::Bundle bundle =
      verify::fixtures::make("stage-overflow");
  EXPECT_THROW(sim::DataPlaneTarget(bundle.program, bundle.ids,
                                    asic::SwitchConfig(bundle.config), {}),
               std::runtime_error);
}

}  // namespace
}  // namespace dejavu
