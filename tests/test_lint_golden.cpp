// Golden diagnostics: the exact JSON `dejavu_cli lint --json` prints
// for the Fig. 2 / Fig. 9 deployments and for every seeded fixture,
// compared byte-for-byte against the checked-in expectations in
// tests/golden/. The CLI prints Report::to_json() verbatim for a
// single selection, so comparing the library output here pins the
// CLI's contract too. Regenerate after an intentional change with:
//
//   dejavu_cli lint --json --target fig2 > golden/lint_fig2.json
//   dejavu_cli lint --json --fixture NAME > golden/lint_fixture_NAME.json
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "control/deployment.hpp"
#include "verify/fixtures.hpp"
#include "verify/verify.hpp"

namespace dejavu {
namespace {

std::string read_golden(const std::string& file) {
  const std::string path = std::string(DEJAVU_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(LintGolden, Fig2DeploymentMatches) {
  auto fx = control::make_fig2_deployment();
  EXPECT_EQ(fx.deployment->verification().to_json(),
            read_golden("lint_fig2.json"));
}

TEST(LintGolden, Fig9DeploymentMatches) {
  auto fx = control::make_fig9_deployment();
  EXPECT_EQ(fx.deployment->verification().to_json(),
            read_golden("lint_fig9.json"));
}

TEST(LintGolden, EveryFixtureMatches) {
  for (const std::string& name : verify::fixtures::names()) {
    const verify::fixtures::Bundle bundle = verify::fixtures::make(name);
    const verify::Report report = verify::run_all(bundle.input());
    EXPECT_EQ(report.to_json(), read_golden("lint_fixture_" + name + ".json"))
        << name;
  }
}

}  // namespace
}  // namespace dejavu
