// Cross-model check of §4's "operators can calculate chain throughput
// after placement": the per-path delivery fractions the fluid
// fixed-point predicts from the *planned* traversals must agree with
// what a packet-level replay *measures* — same flow weights, same
// recirculation demands, same saturated loopback pipeline.
#include <gtest/gtest.h>

#include "control/replay_target.hpp"
#include "sim/replay.hpp"
#include "sim/throughput.hpp"

namespace dejavu::sim {
namespace {

class ReplayVsFluid : public ::testing::Test {
 protected:
  void SetUp() override {
    // packets_per_flow >= 2 so path 1 reaches its post-session-learning
    // steady state and the canonical loop sequences are the fast path.
    ReplayConfig config;
    config.workers = 2;
    config.packets_per_flow = 3;
    report_ = run_replay(control::fig2_replay_factory(),
                         control::fig2_replay_flows(/*total_flows=*/40),
                         config);
    fixture_ = control::make_fig9_deployment();
  }

  const asic::SwitchConfig& config() const {
    return fixture_.deployment->dataplane().config();
  }

  ReplayReport report_;
  control::Fig2Deployment fixture_;
};

TEST_F(ReplayVsFluid, MeasuredLoopsMatchPlannedTraversals) {
  // The replay-observed steady-state recirculation sequences are the
  // planned ones — the behavioral executor adds no hidden loops.
  for (const auto& [path, counters] : report_.counters.per_path) {
    const auto it = fixture_.deployment->routing().traversals.find(path);
    ASSERT_NE(it, fixture_.deployment->routing().traversals.end());
    std::vector<std::uint32_t> planned;
    for (const auto& step : it->second.steps) {
      if (step.exit_via == place::TraversalStep::Exit::kRecirculate) {
        planned.push_back(step.pipelet.pipeline);
      }
    }
    EXPECT_EQ(counters.loop_pipelines, planned) << "path " << path;
  }
}

TEST_F(ReplayVsFluid, SaturatedLoopbackAgreesWithFluidFixedPoint) {
  // 2x the deployment's external capacity: pipeline 1's loopback
  // bandwidth saturates and both models must shed the same fractions.
  const double offered = 2 * config().external_capacity_gbps();
  const auto fluid = estimate_throughput(
      fixture_.policies, fixture_.deployment->routing().traversals, config(),
      offered);
  const auto measured = replay_throughput(report_, config(), offered);

  ASSERT_EQ(measured.per_path.size(), fluid.per_path.size());
  double fluid_total = 0, measured_total = 0;
  for (const ChainThroughput& f : fluid.per_path) {
    const ChainThroughput* m = nullptr;
    for (const ChainThroughput& c : measured.per_path) {
      if (c.path_id == f.path_id) m = &c;
    }
    ASSERT_NE(m, nullptr) << "path " << f.path_id;
    // Flow counts are rounded to integers, so offered shares track the
    // policy weights only approximately — compare fractions.
    EXPECT_NEAR(m->delivery_fraction(), f.delivery_fraction(), 0.05)
        << "path " << f.path_id;
    EXPECT_EQ(m->recirculations, f.recirculations) << "path " << f.path_id;
    fluid_total += f.delivered_gbps;
    measured_total += m->delivered_gbps;
  }
  EXPECT_GT(fluid_total, 0);
  EXPECT_NEAR(measured_total / fluid_total, 1.0, 0.05);

  // Saturation actually happened — the interesting regime.
  ASSERT_TRUE(measured.recirc_utilization.count(1));
  EXPECT_NEAR(measured.recirc_utilization.at(1), 1.0, 1e-6);
  EXPECT_LT(measured.total_delivered_gbps, offered);
}

TEST_F(ReplayVsFluid, UnderCapacityBothModelsAreLossless) {
  const double offered = 0.5 * config().external_capacity_gbps();
  const auto fluid = estimate_throughput(
      fixture_.policies, fixture_.deployment->routing().traversals, config(),
      offered);
  const auto measured = replay_throughput(report_, config(), offered);
  EXPECT_NEAR(fluid.total_delivered_gbps, offered, 1e-6);
  EXPECT_NEAR(measured.total_delivered_gbps, offered, offered * 0.01);
}

TEST_F(ReplayVsFluid, ReplayCountersAreBehaviorallyLossless) {
  // Nothing in the canonical mix is ACL-denied or unserviceable, so
  // the behavioral delivery fraction is exactly 1 on every path.
  for (const auto& [path, counters] : report_.counters.per_path) {
    EXPECT_EQ(counters.delivered, counters.offered) << "path " << path;
    EXPECT_EQ(counters.dropped, 0u) << "path " << path;
  }
}

}  // namespace
}  // namespace dejavu::sim
