#include "p4ir/program.hpp"

#include <gtest/gtest.h>

#include "nf/parser_lib.hpp"

namespace dejavu::p4ir {
namespace {

TEST(ControlBlock, DuplicateActionThrows) {
  ControlBlock c("c");
  Action a;
  a.name = "act";
  c.add_action(a);
  EXPECT_THROW(c.add_action(a), std::invalid_argument);
}

TEST(ControlBlock, DuplicateTableThrows) {
  ControlBlock c("c");
  Table t;
  t.name = "t";
  c.add_table(t);
  EXPECT_THROW(c.add_table(t), std::invalid_argument);
}

TEST(ControlBlock, ApplyUnknownTableThrows) {
  ControlBlock c("c");
  EXPECT_THROW(c.apply_table("missing"), std::invalid_argument);
}

TEST(ControlBlock, GuardOnUnknownTableThrows) {
  ControlBlock c("c");
  Table t;
  t.name = "t";
  c.add_table(t);
  ApplyEntry e;
  e.table = "t";
  e.guard_tables = {"ghost"};
  EXPECT_THROW(c.apply(e), std::invalid_argument);
}

TEST(ControlBlock, TableActionReadWriteSets) {
  ControlBlock c("c");
  Action a;
  a.name = "a";
  a.primitives = {copy_field("ipv4.ttl", "ipv4.dscp_ecn"),
                  set_imm("tcp.window", 7)};
  c.add_action(a);
  Table t;
  t.name = "t";
  t.actions = {"a"};
  c.add_table(t);

  auto reads = c.table_action_reads(*c.find_table("t"));
  auto writes = c.table_action_writes(*c.find_table("t"));
  EXPECT_TRUE(reads.contains("ipv4.dscp_ecn"));
  EXPECT_TRUE(writes.contains("ipv4.ttl"));
  EXPECT_TRUE(writes.contains("tcp.window"));
}

TEST(ControlBlock, ValidateCatchesUnknownActionBinding) {
  ControlBlock c("c");
  Table t;
  t.name = "t";
  t.actions = {"ghost"};
  c.add_table(t);
  std::string why;
  EXPECT_FALSE(c.validate(&why));
  EXPECT_NE(why.find("ghost"), std::string::npos);
}

TEST(Program, HeaderTypeConflictThrows) {
  Program p("p");
  p.add_header_type(ethernet_type());
  p.add_header_type(ethernet_type());  // identical re-add is fine
  HeaderType fake{"ethernet", {{"only_field", 8}}};
  EXPECT_THROW(p.add_header_type(fake), std::invalid_argument);
}

TEST(Program, FieldBitsResolvesDottedRefs) {
  Program p("p");
  p.add_header_type(ipv4_type());
  EXPECT_EQ(p.field_bits("ipv4.ttl"), 8);
  EXPECT_EQ(p.field_bits("ipv4.dst_addr"), 32);
  EXPECT_FALSE(p.field_bits("ipv4.bogus").has_value());
  EXPECT_FALSE(p.field_bits("tcp.window").has_value());
  EXPECT_FALSE(p.field_bits("notdotted").has_value());
}

TEST(Program, DuplicateControlThrows) {
  Program p("p");
  p.add_control(ControlBlock("c"));
  EXPECT_THROW(p.add_control(ControlBlock("c")), std::invalid_argument);
}

TEST(Program, Annotations) {
  Program p("p");
  p.annotate("nf", "FW");
  EXPECT_EQ(p.annotation("nf"), "FW");
  EXPECT_FALSE(p.annotation("missing").has_value());
}

TEST(Program, ValidateAcceptsStandardParserPrograms) {
  TupleIdTable ids;
  Program p("p");
  nf::add_standard_parser(p, ids);
  std::string why;
  EXPECT_TRUE(p.validate(ids, &why)) << why;
}

TEST(Program, ValidateCatchesUnknownFieldInAction) {
  TupleIdTable ids;
  Program p("p");
  nf::add_standard_parser(p, ids);
  ControlBlock c("c");
  Action a;
  a.name = "bad";
  a.primitives = {set_imm("ghost.field", 1)};
  c.add_action(a);
  Table t;
  t.name = "t";
  t.actions = {"bad"};
  c.add_table(t);
  c.apply_table("t");
  p.add_control(c);

  std::string why;
  EXPECT_FALSE(p.validate(ids, &why));
  EXPECT_NE(why.find("ghost.field"), std::string::npos);
}

TEST(Program, ValidateAllowsLocalTemporaries) {
  TupleIdTable ids;
  Program p("p");
  nf::add_standard_parser(p, ids);
  ControlBlock c("c");
  Action a;
  a.name = "hashit";
  a.primitives = {hash_fields("local.h", {"ipv4.src_addr"})};
  c.add_action(a);
  Table t;
  t.name = "t";
  t.keys = {TableKey{"local.h", MatchKind::kExact, 32}};
  t.actions = {"hashit"};
  c.add_table(t);
  c.apply_table("t");
  p.add_control(c);

  std::string why;
  EXPECT_TRUE(p.validate(ids, &why)) << why;
}

TEST(Action, ReadsAndWritesClassifyPrimitives) {
  Action a;
  a.name = "a";
  a.primitives = {
      copy_field("ipv4.ttl", "ipv4.dscp_ecn"),
      add_imm("tcp.window", 1),
      hash_fields("local.h", {"ipv4.src_addr", "ipv4.dst_addr"}),
      drop_primitive(),
      set_context(1, "tenant"),
  };
  auto reads = a.reads();
  auto writes = a.writes();
  EXPECT_TRUE(reads.contains("ipv4.dscp_ecn"));
  EXPECT_TRUE(reads.contains("ipv4.src_addr"));
  EXPECT_TRUE(reads.contains("tcp.window"));  // add reads its dst
  EXPECT_TRUE(writes.contains("ipv4.ttl"));
  EXPECT_TRUE(writes.contains("tcp.window"));
  EXPECT_TRUE(writes.contains("local.h"));
  EXPECT_TRUE(writes.contains("standard_metadata.drop_flag"));
  EXPECT_TRUE(writes.contains("sfc.context"));
}

TEST(Action, VliwSlotsCountNonNoops) {
  Action a;
  a.name = "a";
  a.primitives = {Primitive{}, set_imm("x.y", 1), add_imm("x.y", 2)};
  EXPECT_EQ(a.vliw_slots(), 2u);
}

TEST(Action, ParamBits) {
  Action a;
  a.name = "a";
  a.params = {{"p", 32}, {"q", 9}};
  EXPECT_EQ(a.param_bits(), 41u);
  EXPECT_NE(a.find_param("q"), nullptr);
  EXPECT_EQ(a.find_param("zz"), nullptr);
}

}  // namespace
}  // namespace dejavu::p4ir
