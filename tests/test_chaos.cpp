// Chaos driver: seeded fault schedules are bit-deterministic across
// worker counts (the ISSUE acceptance bar), the standing invariants
// hold under injected faults, and the end-to-end failure drill —
// sabotage, gate-telemetry detection, gated transactional repair —
// recovers delivery for both strategies.
#include <gtest/gtest.h>

#include "control/chaos.hpp"

namespace dejavu::control {
namespace {

ChaosOptions small_run(std::uint64_t seed, std::uint32_t workers) {
  ChaosOptions o;
  o.seed = seed;
  o.workers = workers;
  o.flows = 48;
  o.packets_per_flow = 8;
  o.repair = "none";  // replay phase only
  return o;
}

TEST(Chaos, BitDeterministicAcrossWorkerCounts) {
  // Seed 4's schedule lands several packet-lane faults on this flow
  // set, so the run is perturbed, not a trivially clean pass.
  const ChaosResult one = run_chaos(small_run(4, 1));
  const ChaosResult two = run_chaos(small_run(4, 2));
  const ChaosResult eight = run_chaos(small_run(4, 8));
  ASSERT_TRUE(one.error.empty()) << one.error;

  EXPECT_EQ(one.replay.counters, two.replay.counters);
  EXPECT_EQ(one.replay.counters, eight.replay.counters);
  EXPECT_EQ(one.violations, two.violations);
  EXPECT_EQ(one.violations, eight.violations);
  EXPECT_EQ(one.faults_applied, two.faults_applied);
  EXPECT_EQ(one.faults_applied, eight.faults_applied);

  // And the schedule actually did something.
  std::uint64_t applied = 0;
  for (const auto& [kind, n] : one.faults_applied) applied += n;
  EXPECT_GT(applied, 0u);
}

TEST(Chaos, InvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const ChaosResult r = run_chaos(small_run(seed, 2));
    EXPECT_TRUE(r.ok()) << "seed " << seed << ": " << r.to_string();
    EXPECT_EQ(r.violations.total(), 0u) << "seed " << seed;
    EXPECT_FALSE(r.drill_run);
  }
}

TEST(Chaos, SchedulesSelectTheirFaultLanes) {
  EXPECT_THROW(profile_for_schedule("bogus"), std::invalid_argument);

  const auto none = sim::FaultPlan::from_seed(1, profile_for_schedule("none"));
  EXPECT_TRUE(none.events.empty());

  const auto writes =
      sim::FaultPlan::from_seed(1, profile_for_schedule("writes"));
  EXPECT_FALSE(writes.events.empty());
  for (const auto& ev : writes.events) {
    EXPECT_TRUE(ev.kind == sim::FaultKind::kWriteFail ||
                ev.kind == sim::FaultKind::kWriteTimeout);
  }

  const auto evictions =
      sim::FaultPlan::from_seed(1, profile_for_schedule("evictions"));
  EXPECT_FALSE(evictions.events.empty());
  for (const auto& ev : evictions.events) {
    EXPECT_EQ(ev.kind, sim::FaultKind::kEvictEntry);
  }

  const auto recirc =
      sim::FaultPlan::from_seed(1, profile_for_schedule("recirc"));
  EXPECT_FALSE(recirc.events.empty());
  for (const auto& ev : recirc.events) {
    EXPECT_EQ(ev.kind, sim::FaultKind::kRecircPortDown);
  }
}

TEST(Chaos, DrillDetectsRepairsAndRecovers) {
  ChaosOptions o;
  o.seed = 1;
  o.workers = 2;
  o.flows = 48;
  o.packets_per_flow = 8;
  o.repair = "bypass";
  const ChaosResult r = run_chaos(o);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.drill_run);
  EXPECT_TRUE(r.ok()) << r.to_string();

  EXPECT_FALSE(r.victim_nf.empty());
  EXPECT_GT(r.packets_to_detect, 0u);
  EXPECT_GT(r.delivery_before, 0.0);
  EXPECT_LT(r.delivery_faulted, r.delivery_before);
  EXPECT_TRUE(r.repair_report.succeeded) << r.repair_report.to_string();
  EXPECT_TRUE(r.repair_report.verify_ok);
  EXPECT_TRUE(r.repair_report.explore_ok);
  EXPECT_GE(r.delivery_recovered, 0.95 * r.delivery_before);

  // Drill is part of the deterministic surface too.
  const ChaosResult again = run_chaos(o);
  EXPECT_EQ(r.victim_nf, again.victim_nf);
  EXPECT_EQ(r.packets_to_detect, again.packets_to_detect);
  EXPECT_EQ(r.packets_to_recover, again.packets_to_recover);
}

TEST(Chaos, DrillReplaceStrategyRecovers) {
  ChaosOptions o;
  o.seed = 2;
  o.workers = 1;
  o.flows = 48;
  o.packets_per_flow = 8;
  o.repair = "replace";
  const ChaosResult r = run_chaos(o);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.drill_run);
  EXPECT_EQ(r.repair_report.strategy, "replace");
  EXPECT_TRUE(r.repair_report.succeeded) << r.repair_report.to_string();
  EXPECT_GE(r.delivery_recovered, 0.95 * r.delivery_before);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Chaos, ReportsSerialize) {
  const ChaosResult r = run_chaos(small_run(1, 1));
  const std::string text = r.to_string();
  EXPECT_NE(text.find("seed"), std::string::npos);
  const std::string json = r.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.find_last_not_of(" \n"), json.rfind('}'));
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"drill\""), std::string::npos);
}

}  // namespace
}  // namespace dejavu::control
