// Executor-level tests on hand-built miniature programs: guard
// semantics, primitive execution, resubmission, recirculation via
// loopback ports, mirror/drop/cpu disposition, and pass limits.
#include "sim/dataplane.hpp"

#include <gtest/gtest.h>

#include "merge/compose.hpp"
#include "nf/parser_lib.hpp"
#include "sfc/header.hpp"

namespace dejavu::sim {
namespace {

using p4ir::Action;
using p4ir::ApplyEntry;
using p4ir::ControlBlock;
using p4ir::MatchKind;
using p4ir::Table;
using p4ir::TableKey;

/// A minimal single-pipeline program skeleton: the test installs one
/// ingress control block named per merge::pipelet_control_name.
struct MiniSwitch {
  p4ir::TupleIdTable ids;
  p4ir::Program program{"mini"};
  asic::SwitchConfig config{asic::TargetSpec::mini()};

  MiniSwitch() { nf::add_standard_parser(program, ids); }

  DataPlane make() { return DataPlane(program, ids, config); }

  static std::string ingress_name() {
    return merge::pipelet_control_name({0, asic::PipeKind::kIngress});
  }
  static std::string egress_name() {
    return merge::pipelet_control_name({0, asic::PipeKind::kEgress});
  }
};

/// Ingress block that forwards everything to a fixed port.
ControlBlock forward_all(const std::string& name, std::uint16_t port) {
  ControlBlock c(name);
  Action fwd;
  fwd.name = "fwd";
  fwd.primitives = {p4ir::set_imm("standard_metadata.egress_spec", port)};
  c.add_action(fwd);
  Table t;
  t.name = "fwd_all";
  t.default_action = "fwd";
  c.add_table(t);
  c.apply_table("fwd_all");
  return c;
}

TEST(DataPlane, ForwardsToEgressSpec) {
  MiniSwitch sw;
  sw.program.add_control(forward_all(MiniSwitch::ingress_name(), 2));
  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  EXPECT_EQ(out.out.front().port, 2);
  EXPECT_EQ(out.recirculations, 0u);
}

TEST(DataPlane, NoEgressDecisionDrops) {
  MiniSwitch sw;  // no ingress program at all -> pass-through, no spec
  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 0);
  EXPECT_TRUE(out.dropped);
  EXPECT_NE(out.drop_reason.find("no egress decision"), std::string::npos);
}

TEST(DataPlane, LoopbackPortRecirculates) {
  MiniSwitch sw;
  // Port 3 loops back; forward there once, then a second table sends
  // flagged (recirculated) packets out port 1.
  sw.config.set_loopback(3);
  ControlBlock c(MiniSwitch::ingress_name());
  Action to_loop;
  to_loop.name = "to_loop";
  to_loop.primitives = {p4ir::set_imm("standard_metadata.egress_spec", 3)};
  c.add_action(to_loop);
  Action out_port1;
  out_port1.name = "out_port1";
  out_port1.primitives = {p4ir::set_imm("standard_metadata.egress_spec", 1)};
  c.add_action(out_port1);

  // Match on ingress_port: front-panel 0 -> loop; loopback 3 -> out.
  Table steer;
  steer.name = "steer";
  steer.keys = {
      TableKey{"standard_metadata.ingress_port", MatchKind::kExact, 9}};
  steer.actions = {"to_loop", "out_port1"};
  c.add_table(steer);
  c.apply_table("steer");
  sw.program.add_control(std::move(c));

  auto dp = sw.make();
  dp.table_in(MiniSwitch::ingress_name(), "steer")
      ->add_exact({0}, ActionCall{"to_loop", {}});
  dp.table_in(MiniSwitch::ingress_name(), "steer")
      ->add_exact({3}, ActionCall{"out_port1", {}});

  auto out = dp.process(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  EXPECT_EQ(out.out.front().port, 1);
  EXPECT_EQ(out.recirculations, 1u);
}

TEST(DataPlane, LoopbackPortRejectsExternalTraffic) {
  MiniSwitch sw;
  sw.config.set_loopback(3);
  sw.program.add_control(forward_all(MiniSwitch::ingress_name(), 1));
  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 3);
  EXPECT_TRUE(out.dropped);
  EXPECT_NE(out.drop_reason.find("loopback"), std::string::npos);
}

TEST(DataPlane, InvalidPortsRejected) {
  MiniSwitch sw;
  sw.program.add_control(forward_all(MiniSwitch::ingress_name(), 1));
  auto dp = sw.make();
  EXPECT_TRUE(dp.process(net::Packet::make({}), 99).dropped);
  // Dedicated recirc ports are internal-only.
  EXPECT_TRUE(dp.process(net::Packet::make({}), 4).dropped);
}

TEST(DataPlane, RoutingLoopHitsPassLimit) {
  MiniSwitch sw;
  sw.config.set_loopback(3);
  sw.program.add_control(forward_all(MiniSwitch::ingress_name(), 3));
  auto dp = sw.make();
  dp.set_max_passes(10);
  auto out = dp.process(net::Packet::make({}), 0);
  EXPECT_TRUE(out.dropped);
  EXPECT_NE(out.drop_reason.find("passes"), std::string::npos);
  EXPECT_EQ(out.recirculations, 10u);  // one loop per pass before the cap
}

TEST(DataPlane, DropActionDropsInIngress) {
  MiniSwitch sw;
  ControlBlock c(MiniSwitch::ingress_name());
  Action deny;
  deny.name = "deny";
  deny.primitives = {p4ir::drop_primitive()};
  c.add_action(deny);
  Table t;
  t.name = "drop_all";
  t.default_action = "deny";
  c.add_table(t);
  c.apply_table("drop_all");
  sw.program.add_control(std::move(c));

  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 0);
  EXPECT_TRUE(out.dropped);
  EXPECT_TRUE(out.out.empty());
}

TEST(DataPlane, ToCpuPunts) {
  MiniSwitch sw;
  ControlBlock c(MiniSwitch::ingress_name());
  Action punt;
  punt.name = "punt";
  punt.primitives = {p4ir::set_imm("standard_metadata.to_cpu_flag", 1)};
  c.add_action(punt);
  Table t;
  t.name = "punt_all";
  t.default_action = "punt";
  c.add_table(t);
  c.apply_table("punt_all");
  sw.program.add_control(std::move(c));

  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 2);
  ASSERT_EQ(out.to_cpu.size(), 1u);
  EXPECT_EQ(out.to_cpu.front().in_port, 2);
  EXPECT_FALSE(out.dropped);
}

TEST(DataPlane, MirrorEmitsCopy) {
  MiniSwitch sw;
  ControlBlock c(MiniSwitch::ingress_name());
  Action fwd_mirror;
  fwd_mirror.name = "fwd_mirror";
  fwd_mirror.primitives = {
      p4ir::set_imm("standard_metadata.egress_spec", 1),
      p4ir::set_imm("standard_metadata.mirror_flag", 1)};
  c.add_action(fwd_mirror);
  Table t;
  t.name = "t";
  t.default_action = "fwd_mirror";
  c.add_table(t);
  c.apply_table("t");
  sw.program.add_control(std::move(c));

  auto dp = sw.make();
  dp.set_mirror_port(2);
  auto out = dp.process(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 2u);
  EXPECT_EQ(out.out[0].port, 2);  // mirror copy first
  EXPECT_EQ(out.out[1].port, 1);
}

TEST(DataPlane, EgressPipeRunsAfterTrafficManager) {
  MiniSwitch sw;
  sw.program.add_control(forward_all(MiniSwitch::ingress_name(), 1));
  // Egress program stamps the TTL.
  ControlBlock e(MiniSwitch::egress_name());
  Action stamp;
  stamp.name = "stamp";
  stamp.primitives = {p4ir::set_imm("ipv4.ttl", 7)};
  e.add_action(stamp);
  Table t;
  t.name = "stamp_all";
  t.default_action = "stamp";
  e.add_table(t);
  e.apply_table("stamp_all");
  sw.program.add_control(std::move(e));

  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 1u);
  EXPECT_EQ(out.out.front().packet.ipv4()->ttl, 7);
}

TEST(DataPlane, EmitRefreshesIpv4Checksum) {
  MiniSwitch sw;
  ControlBlock c(MiniSwitch::ingress_name());
  Action rewrite;
  rewrite.name = "rewrite";
  rewrite.primitives = {
      p4ir::set_imm("ipv4.dst_addr", 0x01020304),
      p4ir::set_imm("standard_metadata.egress_spec", 1)};
  c.add_action(rewrite);
  Table t;
  t.name = "t";
  t.default_action = "rewrite";
  c.add_table(t);
  c.apply_table("t");
  sw.program.add_control(std::move(c));

  auto dp = sw.make();
  auto out = dp.process(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 1u);
  auto ip = out.out.front().packet.ipv4();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->dst, net::Ipv4Addr(1, 2, 3, 4));
  EXPECT_EQ(ip->checksum, ip->compute_checksum());
}

TEST(DataPlane, ResubmitRerunsIngress) {
  MiniSwitch sw;
  ControlBlock c(MiniSwitch::ingress_name());
  Action resubmit;
  resubmit.name = "resubmit";
  resubmit.primitives = {
      p4ir::set_imm("standard_metadata.resubmit_flag", 1),
      // Mark the packet so the second pass can detect it.
      p4ir::set_imm("ipv4.dscp_ecn", 0x5c)};
  c.add_action(resubmit);
  Action send;
  send.name = "send";
  send.primitives = {p4ir::set_imm("standard_metadata.egress_spec", 1)};
  c.add_action(send);

  Table t;
  t.name = "steer";
  t.keys = {TableKey{"ipv4.dscp_ecn", MatchKind::kExact, 8}};
  t.actions = {"resubmit", "send"};
  c.add_table(t);
  c.apply_table("steer");
  sw.program.add_control(std::move(c));

  auto dp = sw.make();
  dp.table_in(MiniSwitch::ingress_name(), "steer")
      ->add_exact({0}, ActionCall{"resubmit", {}});
  dp.table_in(MiniSwitch::ingress_name(), "steer")
      ->add_exact({0x5c}, ActionCall{"send", {}});

  auto out = dp.process(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  EXPECT_EQ(out.resubmissions, 1u);
  EXPECT_EQ(out.recirculations, 0u);
}

TEST(DataPlane, TablesNamedFindsAllInstances) {
  MiniSwitch sw;
  sw.program.add_control(forward_all(MiniSwitch::ingress_name(), 1));
  sw.program.add_control(forward_all(MiniSwitch::egress_name(), 1));
  auto dp = sw.make();
  EXPECT_EQ(dp.tables_named("fwd_all").size(), 2u);
  EXPECT_TRUE(dp.tables_named("ghost").empty());
  EXPECT_EQ(dp.table_in("nope", "fwd_all"), nullptr);
}

}  // namespace
}  // namespace dejavu::sim
