#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "merge/parser_merge.hpp"

#include <gtest/gtest.h>

#include "nf/nfs.hpp"
#include "nf/parser_lib.hpp"

namespace dejavu::merge {
namespace {

TEST(ParserMerge, UnionOfVerticesAndEdges) {
  p4ir::TupleIdTable ids;
  // FW parses eth/ipv4/tcp (plain + shifted); Router the same; the
  // VGW adds vxlan vertices.
  auto fw = nf::make_firewall(ids);
  auto vgw = nf::make_vgw(ids);

  auto merged = merge_parsers({&fw, &vgw}, ids);
  std::string why;
  EXPECT_TRUE(merged.validate(ids, &why)) << why;

  // The merged parser covers both programs' vertex sets.
  for (const p4ir::Program* p : {&fw, &vgw}) {
    for (std::uint32_t v : p->parser().vertices()) {
      EXPECT_TRUE(merged.has_vertex(v));
    }
  }
  // And contains the vxlan vertex only the VGW brought.
  EXPECT_TRUE(ids.find({"vxlan", nf::kL4Plain + 8}).has_value());
}

TEST(ParserMerge, SameHeaderDifferentOffsetsCoexist) {
  p4ir::TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  auto merged = merge_parsers({&fw}, ids);
  // ipv4 appears at both its plain and SFC-shifted offsets (§3).
  auto plain = ids.find({"ipv4", nf::kIpv4Plain});
  auto shifted = ids.find({"ipv4", nf::kIpv4Shifted});
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(shifted.has_value());
  EXPECT_TRUE(merged.has_vertex(*plain));
  EXPECT_TRUE(merged.has_vertex(*shifted));
}

TEST(ParserMerge, IdempotentForIdenticalParsers) {
  p4ir::TupleIdTable ids;
  auto a = nf::make_firewall(ids);
  auto b = nf::make_load_balancer(ids);
  auto once = merge_parsers({&a}, ids);
  auto twice = merge_parsers({&a, &b, &a}, ids);
  // FW and LB have identical parsers, so the merge equals either.
  EXPECT_EQ(once.vertices().size(), twice.vertices().size());
  EXPECT_EQ(once.edges().size(), twice.edges().size());
}

TEST(ParserMerge, ConflictingSelectorsReported) {
  p4ir::TupleIdTable ids;
  p4ir::Program a("a"), b("b");
  for (p4ir::Program* p : {&a, &b}) {
    p->add_header_type(p4ir::ethernet_type());
    p->add_header_type(p4ir::ipv4_type());
    p->add_header_type(p4ir::sfc_type());
  }
  auto eth_a = a.parser().add_vertex(ids, {"ethernet", 0});
  auto ip_a = a.parser().add_vertex(ids, {"ipv4", 14});
  a.parser().set_start(eth_a);
  a.parser().add_edge({eth_a, ip_a, "ethernet.ether_type", 0x0800, false});

  auto eth_b = b.parser().add_vertex(ids, {"ethernet", 0});
  auto sfc_b = b.parser().add_vertex(ids, {"sfc", 14});
  b.parser().set_start(eth_b);
  // Same selector value 0x0800 to a different header: conflict.
  b.parser().add_edge({eth_b, sfc_b, "ethernet.ether_type", 0x0800, false});

  EXPECT_THROW(merge_parsers({&a, &b}, ids), std::invalid_argument);
}

TEST(HeaderMerge, ConflictingLayoutsReported) {
  p4ir::Program a("a"), b("b");
  a.add_header_type(p4ir::ipv4_type());
  b.add_header_type(p4ir::HeaderType{"ipv4", {{"something", 8}}});
  EXPECT_THROW(merge_header_types({&a, &b}), std::invalid_argument);
}

TEST(Compose, SequentialPipeletStructure) {
  p4ir::TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  auto lb = nf::make_load_balancer(ids);

  auto block = compose_pipelet(
      "pipelet_ingress0",
      {{"FW", &fw.controls().front()}, {"LB", &lb.controls().front()}},
      CompositionKind::kSequential, /*is_ingress=*/true);

  // Per non-entry NF: check_nextNF + its tables + check_sfcFlags;
  // plus the trailing branching table on ingress.
  EXPECT_NE(block.find_table("dejavu_check_nextNF_FW"), nullptr);
  EXPECT_NE(block.find_table("dejavu_check_sfcFlags_FW"), nullptr);
  EXPECT_NE(block.find_table("FW.acl"), nullptr);
  EXPECT_NE(block.find_table("dejavu_check_nextNF_LB"), nullptr);
  EXPECT_NE(block.find_table("LB.lb_session"), nullptr);
  EXPECT_NE(block.find_table("LB.compute_hash"), nullptr);
  EXPECT_NE(block.find_table(kBranchingTable), nullptr);

  // Sequential: no branch ids.
  for (const auto& e : block.apply_order()) {
    EXPECT_TRUE(e.branch_id.empty());
  }
  // Branching is applied last.
  EXPECT_EQ(block.apply_order().back().table, kBranchingTable);
  std::string why;
  EXPECT_TRUE(block.validate(&why)) << why;
}

TEST(Compose, ParallelPipeletUsesBranchIds) {
  p4ir::TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  auto lb = nf::make_load_balancer(ids);

  auto block = compose_pipelet(
      "pipelet_egress0",
      {{"FW", &fw.controls().front()}, {"LB", &lb.controls().front()}},
      CompositionKind::kParallel, /*is_ingress=*/false);

  bool saw_fw = false, saw_lb = false;
  for (const auto& e : block.apply_order()) {
    if (e.branch_id == "FW") saw_fw = true;
    if (e.branch_id == "LB") saw_lb = true;
  }
  EXPECT_TRUE(saw_fw);
  EXPECT_TRUE(saw_lb);
  // No branching table on egress pipelets.
  EXPECT_EQ(block.find_table(kBranchingTable), nullptr);
}

TEST(Compose, ParallelSharesStagesSequentialDoesNot) {
  p4ir::TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  auto police = nf::make_police(ids);
  std::vector<NfUnit> nfs = {{"FW", &fw.controls().front()},
                             {"Police", &police.controls().front()}};

  auto seq = compose_pipelet("s", nfs, CompositionKind::kSequential, false);
  auto par = compose_pipelet("p", nfs, CompositionKind::kParallel, false);

  auto seq_depth = p4ir::analyze_dependencies({&seq}, false)
                       .critical_path_stages();
  auto par_depth = p4ir::analyze_dependencies({&par}, false)
                       .critical_path_stages();
  // The §3.2 trade-off: parallel composition packs NFs side-by-side.
  EXPECT_LT(par_depth, seq_depth);
}

TEST(Compose, EntryNfGatedOnEtherType) {
  p4ir::TupleIdTable ids;
  auto classifier = nf::make_classifier(ids);
  auto block = compose_pipelet(
      "pipelet_ingress0", {{"Classifier", &classifier.controls().front()}},
      CompositionKind::kSequential, true);

  // The classifier has no check_nextNF gate...
  EXPECT_EQ(block.find_table("dejavu_check_nextNF_Classifier"), nullptr);
  // ...its apply entry is guarded on "no SFC header yet".
  bool found = false;
  for (const auto& e : block.apply_order()) {
    if (e.table == "Classifier.traffic_class") {
      found = true;
      ASSERT_TRUE(e.field_guard.has_value());
      EXPECT_EQ(e.field_guard->field, "ethernet.ether_type");
      EXPECT_TRUE(e.field_guard->negate);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Compose, ComposeProgramBuildsPerPipeletControls) {
  p4ir::TupleIdTable ids;
  auto programs = nf::fig2_nf_programs(ids);
  std::vector<const p4ir::Program*> ptrs;
  for (auto& p : programs) ptrs.push_back(&p);

  std::vector<PipeletAssignment> assignment = {
      {{0, asic::PipeKind::kIngress},
       CompositionKind::kSequential,
       {"Classifier", "FW"}},
      {{1, asic::PipeKind::kEgress},
       CompositionKind::kSequential,
       {"VGW"}},
      {{1, asic::PipeKind::kIngress},
       CompositionKind::kSequential,
       {"LB"}},
      {{0, asic::PipeKind::kEgress},
       CompositionKind::kSequential,
       {"Router"}},
  };
  auto program = compose_program("sfc", ptrs, assignment, /*pipelines=*/2,
                                 ids);

  EXPECT_EQ(program.controls().size(), 4u);
  EXPECT_NE(program.find_control("pipelet_ingress0"), nullptr);
  EXPECT_NE(program.find_control("pipelet_egress1"), nullptr);
  std::string why;
  EXPECT_TRUE(program.validate(ids, &why)) << why;

  // Ingress pipelets end with branching; egress pipelets have none.
  EXPECT_NE(program.find_control("pipelet_ingress0")
                ->find_table(kBranchingTable),
            nullptr);
  EXPECT_EQ(program.find_control("pipelet_egress0")
                ->find_table(kBranchingTable),
            nullptr);
}

TEST(Compose, UnknownNfInAssignmentThrows) {
  p4ir::TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  std::vector<const p4ir::Program*> ptrs = {&fw};
  std::vector<PipeletAssignment> assignment = {
      {{0, asic::PipeKind::kIngress}, CompositionKind::kSequential, {"Ghost"}},
  };
  EXPECT_THROW(compose_program("x", ptrs, assignment, 2, ids),
               std::invalid_argument);
}

TEST(Framework, NameHelpers) {
  EXPECT_EQ(check_next_nf_table("LB"), "dejavu_check_nextNF_LB");
  EXPECT_EQ(check_sfc_flags_table("FW"), "dejavu_check_sfcFlags_FW");
  EXPECT_EQ(qualify("FW", "acl"), "FW.acl");
}

}  // namespace
}  // namespace dejavu::merge
