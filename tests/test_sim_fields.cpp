#include "sim/fields.hpp"

#include <gtest/gtest.h>

#include "nf/parser_lib.hpp"
#include "sfc/header.hpp"

namespace dejavu::sim {
namespace {

class FieldsTest : public ::testing::Test {
 protected:
  FieldsTest() : program("p") { nf::add_standard_parser(program, ids); }

  FieldView view_of(net::Packet& p) {
    return FieldView(program, p, run_parser(program, ids, p), meta);
  }

  p4ir::TupleIdTable ids;
  p4ir::Program program;
  StandardMetadata meta;
};

TEST_F(FieldsTest, ReadsHeaderFields) {
  net::PacketSpec spec;
  spec.ip_src = net::Ipv4Addr(1, 2, 3, 4);
  spec.ip_dst = net::Ipv4Addr(5, 6, 7, 8);
  spec.src_port = 4242;
  spec.ttl = 33;
  auto p = net::Packet::make(spec);
  auto view = view_of(p);

  EXPECT_EQ(view.read("ipv4.src_addr"), 0x01020304u);
  EXPECT_EQ(view.read("ipv4.dst_addr"), 0x05060708u);
  EXPECT_EQ(view.read("ipv4.ttl"), 33u);
  EXPECT_EQ(view.read("ipv4.version"), 4u);
  EXPECT_EQ(view.read("tcp.src_port"), 4242u);
  EXPECT_EQ(view.read("ethernet.ether_type"), net::kEtherTypeIpv4);
}

TEST_F(FieldsTest, WritesShowUpInThePacketBytes) {
  auto p = net::Packet::make({});
  auto view = view_of(p);
  EXPECT_TRUE(view.write("ipv4.dst_addr", 0x0a0b0c0d));
  EXPECT_EQ(p.ipv4()->dst, net::Ipv4Addr(0x0a0b0c0d));
}

TEST_F(FieldsTest, MissingHeaderReadsNulloptWritesNoop) {
  auto p = net::Packet::make({});
  auto view = view_of(p);
  EXPECT_FALSE(view.read("sfc.service_index").has_value());
  const net::Packet before = p;
  EXPECT_FALSE(view.write("sfc.service_index", 9));
  EXPECT_EQ(p, before);  // untouched
}

TEST_F(FieldsTest, UnknownFieldsAreNullopt) {
  auto p = net::Packet::make({});
  auto view = view_of(p);
  EXPECT_FALSE(view.read("ipv4.bogus").has_value());
  EXPECT_FALSE(view.read("ghost.field").has_value());
  EXPECT_FALSE(view.read("notdotted").has_value());
}

TEST_F(FieldsTest, StandardMetadataBacking) {
  auto p = net::Packet::make({});
  auto view = view_of(p);
  meta.ingress_port = 7;
  EXPECT_EQ(view.read("standard_metadata.ingress_port"), 7u);
  EXPECT_TRUE(view.write("standard_metadata.egress_spec", 12));
  EXPECT_EQ(meta.egress_spec, 12);
  EXPECT_TRUE(view.write("standard_metadata.drop_flag", 1));
  EXPECT_TRUE(meta.drop_flag);
  EXPECT_FALSE(view.write("standard_metadata.bogus", 1));
}

TEST_F(FieldsTest, LocalsNamespace) {
  auto p = net::Packet::make({});
  auto view = view_of(p);
  EXPECT_FALSE(view.read("local.hash").has_value());
  EXPECT_TRUE(view.write("local.hash", 0xdeadbeef));
  EXPECT_EQ(view.read("local.hash"), 0xdeadbeefu);
}

TEST_F(FieldsTest, SfcFieldsReadableAfterPushAndReparse) {
  auto p = net::Packet::make({});
  auto view = view_of(p);

  sfc::SfcHeader h;
  h.service_path_id = 0x77;
  h.service_index = 2;
  sfc::push_sfc(p, h);
  view.reparse(ids);

  EXPECT_EQ(view.read("sfc.service_path_id"), 0x77u);
  EXPECT_EQ(view.read("sfc.service_index"), 2u);
  // The IP header is still readable at its shifted offset.
  EXPECT_EQ(view.read("ipv4.version"), 4u);

  // Field writes agree with the codec view.
  EXPECT_TRUE(view.write("sfc.service_index", 3));
  EXPECT_TRUE(view.write("sfc.to_cpu_flag", 1));
  auto decoded = sfc::read_sfc(p);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_index, 3);
  EXPECT_TRUE(decoded->meta.to_cpu);
}

TEST_F(FieldsTest, WriteMasksToFieldWidth) {
  auto p = net::Packet::make({});
  auto view = view_of(p);
  view.write("ipv4.ttl", 0x1ff);  // 8-bit field
  EXPECT_EQ(view.read("ipv4.ttl"), 0xffu);
}

TEST_F(FieldsTest, OutPortSentinelRoundTrip) {
  auto p = net::Packet::make({});
  sfc::push_sfc(p, sfc::SfcHeader{});
  auto view = view_of(p);
  // Fresh SFC headers carry out_port = kPortUnset (9-bit all-ones).
  EXPECT_EQ(view.read("sfc.out_port"), sfc::kPortUnset);
}

}  // namespace
}  // namespace dejavu::sim
