#include "p4ir/types.hpp"

#include <gtest/gtest.h>

namespace dejavu::p4ir {
namespace {

TEST(HeaderType, BitAndByteWidths) {
  HeaderType eth = ethernet_type();
  EXPECT_EQ(eth.bit_width(), 112u);
  EXPECT_EQ(eth.byte_width(), 14u);
}

TEST(HeaderType, BuiltinsHaveWireAccurateSizes) {
  EXPECT_EQ(ethernet_type().byte_width(), 14u);
  EXPECT_EQ(sfc_type().byte_width(), 20u);   // Fig. 3
  EXPECT_EQ(ipv4_type().byte_width(), 20u);
  EXPECT_EQ(tcp_type().byte_width(), 20u);
  EXPECT_EQ(udp_type().byte_width(), 8u);
  EXPECT_EQ(vxlan_type().byte_width(), 8u);
}

TEST(HeaderType, FieldLookup) {
  HeaderType ip = ipv4_type();
  const Field* ttl = ip.find_field("ttl");
  ASSERT_NE(ttl, nullptr);
  EXPECT_EQ(ttl->bits, 8u);
  EXPECT_EQ(ip.find_field("nonexistent"), nullptr);
}

TEST(HeaderType, BitOffsetsAccumulate) {
  HeaderType ip = ipv4_type();
  EXPECT_EQ(ip.bit_offset("version"), 0u);
  EXPECT_EQ(ip.bit_offset("ihl"), 4u);
  EXPECT_EQ(ip.bit_offset("ttl"), 64u);
  EXPECT_EQ(ip.bit_offset("src_addr"), 96u);
  EXPECT_EQ(ip.bit_offset("dst_addr"), 128u);
  EXPECT_FALSE(ip.bit_offset("bogus").has_value());
}

TEST(HeaderType, SfcLayoutMatchesCodec) {
  // The IR's sfc type must agree with sfc::SfcHeader's wire layout:
  // path id at bit 0, index at 16, in_port at 24, out_port at 33,
  // flags from 42, context at 56, next_protocol at 152.
  HeaderType s = sfc_type();
  EXPECT_EQ(s.bit_offset("service_path_id"), 0u);
  EXPECT_EQ(s.bit_offset("service_index"), 16u);
  EXPECT_EQ(s.bit_offset("in_port"), 24u);
  EXPECT_EQ(s.bit_offset("out_port"), 33u);
  EXPECT_EQ(s.bit_offset("resubmit_flag"), 42u);
  EXPECT_EQ(s.bit_offset("recirculate_flag"), 43u);
  EXPECT_EQ(s.bit_offset("drop_flag"), 44u);
  EXPECT_EQ(s.bit_offset("mirror_flag"), 45u);
  EXPECT_EQ(s.bit_offset("to_cpu_flag"), 46u);
  EXPECT_EQ(s.bit_offset("context"), 56u);
  EXPECT_EQ(s.bit_offset("next_protocol"), 152u);
}

TEST(FieldRef, ParseDotted) {
  auto ref = FieldRef::parse("ipv4.dst_addr");
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->header, "ipv4");
  EXPECT_EQ(ref->field, "dst_addr");
  EXPECT_EQ(ref->dotted(), "ipv4.dst_addr");
}

TEST(FieldRef, ParseRejectsMalformed) {
  EXPECT_FALSE(FieldRef::parse("nodot").has_value());
  EXPECT_FALSE(FieldRef::parse(".field").has_value());
  EXPECT_FALSE(FieldRef::parse("header.").has_value());
}

}  // namespace
}  // namespace dejavu::p4ir
