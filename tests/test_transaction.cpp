// Transactional rule updates: all-or-nothing semantics against the
// behavioral data plane. The critical property (ISSUE: acceptance) is
// that a mid-transaction write failure leaves the switch byte-identical
// to its pre-transaction snapshot — registers included.
#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "control/replay_target.hpp"
#include "control/snapshot.hpp"
#include "control/transaction.hpp"
#include "merge/compose.hpp"
#include "nf/nfs.hpp"
#include "sim/compiled/compiled_pipeline.hpp"
#include "sim/fault.hpp"

namespace dejavu::control {
namespace {

sim::FaultPlan write_fail_plan(std::uint32_t op_index, std::uint32_t count) {
  sim::FaultPlan plan;
  sim::FaultEvent ev;
  ev.kind = sim::FaultKind::kWriteFail;
  ev.op_index = op_index;
  ev.count = count;
  plan.events.push_back(ev);
  return plan;
}

/// Classifier -> Limiter -> Router: the smallest deployment with a
/// register array (the Limiter's flow_count), for register rollback.
std::unique_ptr<Deployment> make_stateful_deployment() {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_rate_limiter(ids, 100));
  nfs.push_back(nf::make_router(ids));
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "limited",
                .nfs = {sfc::kClassifier, "Limiter", sfc::kRouter},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1,
                .terminal_pops_sfc = true});
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  return Deployment::build(std::move(nfs), policies, std::move(config),
                           std::move(ids));
}

TEST(RetryPolicy, BackoffIsDeterministicAndBounded) {
  const RetryPolicy p;
  for (std::uint32_t retry = 1; retry <= 8; ++retry) {
    const std::uint32_t ms = p.backoff_ms(retry);
    EXPECT_EQ(ms, p.backoff_ms(retry)) << "retry " << retry;
    // base * mult^(retry-1) clamped to max_ms, then +/- 20% jitter.
    EXPECT_LE(ms, static_cast<std::uint32_t>(p.max_ms * (1.0 + p.jitter)));
    EXPECT_GE(ms, 1u);
  }
  // Exponential until the clamp.
  EXPECT_LT(p.backoff_ms(1), p.backoff_ms(3));

  RetryPolicy reseeded = p;
  reseeded.seed = 0xfeed;
  bool any_differs = false;
  for (std::uint32_t retry = 1; retry <= 8; ++retry) {
    any_differs |= reseeded.backoff_ms(retry) != p.backoff_ms(retry);
  }
  EXPECT_TRUE(any_differs);
}

TEST(Transaction, CommitsBatch) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();

  Transaction txn(dp);
  txn.install_exact("LB.lb_session", {0x4242},
                    {"LB.modify_dstIp", {{"dip", 0x0a010201}}});
  txn.install_lpm("Router.ipv4_lpm", net::Ipv4Addr(10, 77, 0, 0).value(), 16,
                  {"Router.route", {{"port", 1}, {"dmac", 0x42}}});
  const auto result = txn.commit();
  EXPECT_TRUE(result.committed) << result.to_string();
  EXPECT_EQ(result.applied, 2u);
  EXPECT_EQ(result.attempts, 2u);
  EXPECT_EQ(result.retries, 0u);
  ASSERT_EQ(dp.tables_named("LB.lb_session").size(), 1u);
  EXPECT_NE(dp.tables_named("LB.lb_session")[0]->find_exact({0x4242}),
            nullptr);
}

TEST(Transaction, CommitInvalidatesCompiledTraces) {
  // Trace-invalidation property (DESIGN.md §12): a committed batch
  // bumps table revisions, so a compiled pipeline built before the
  // commit must recompile (or fall back) before serving the next
  // packet — the new rules are visible immediately, exactly as on the
  // interpreter.
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  sim::CompiledPipeline fast(dp);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();
  const std::uint64_t gen = fast.generation();

  // A plain routed path-3 packet; the commit shadows its /16 route
  // with a /24 carrying a different dmac, so the emitted bytes change.
  const auto flows = fig2_replay_flows(6);
  const net::Packet packet = flows.back().flow.packet();
  const std::uint16_t port = flows.back().in_port;
  const sim::SwitchOutput before = fast.process(packet, port);
  EXPECT_TRUE(before.delivered());

  Transaction txn(dp);
  txn.install_lpm("Router.ipv4_lpm", net::Ipv4Addr(10, 3, 0, 0).value(), 24,
                  {"Router.route", {{"port", 1}, {"dmac", 0x4242}}});
  ASSERT_TRUE(txn.commit().committed);

  sim::DataPlane reference = dp;
  const sim::SwitchOutput expected = reference.process(packet, port);
  const sim::SwitchOutput got = fast.process(packet, port);
  EXPECT_TRUE(sim::semantically_equal(expected, got)) << got.drop_reason;
  EXPECT_FALSE(sim::semantically_equal(before, got));  // the rule took
  EXPECT_TRUE(fast.generation() > gen || !fast.compiled_ok());
}

TEST(Transaction, IsSingleUse) {
  auto fx = make_fig9_deployment();
  Transaction txn(fx.deployment->dataplane());
  txn.commit();
  EXPECT_THROW(txn.commit(), std::logic_error);
}

TEST(Transaction, ValidationRejectsWithoutTouchingTheSwitch) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  const std::string before = take_snapshot(dp).to_text();

  {  // unknown table
    Transaction txn(dp);
    txn.install_exact("LB.lb_session", {1},
                      {"LB.modify_dstIp", {{"dip", 1}}});
    txn.install_exact("Ghost.table", {1}, {"Ghost.act", {}});
    const auto r = txn.commit();
    EXPECT_FALSE(r.committed);
    EXPECT_NE(r.error.find("does not exist"), std::string::npos);
    EXPECT_EQ(r.applied, 0u);
  }
  {  // key arity mismatch
    Transaction txn(dp);
    txn.install_exact("LB.lb_session", {1, 2},
                      {"LB.modify_dstIp", {{"dip", 1}}});
    const auto r = txn.commit();
    EXPECT_FALSE(r.committed);
    EXPECT_NE(r.error.find("arity"), std::string::npos);
  }
  {  // removing a phantom entry
    Transaction txn(dp);
    txn.remove_exact("LB.lb_session", {0xdead});
    const auto r = txn.commit();
    EXPECT_FALSE(r.committed);
    EXPECT_NE(r.error.find("not installed"), std::string::npos);
  }
  {  // exact install into a ternary table
    Transaction txn(dp);
    txn.install_exact("Classifier.traffic_class", {1, 2, 3},
                      {"Classifier.classify", {}});
    const auto r = txn.commit();
    EXPECT_FALSE(r.committed);
  }
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
}

TEST(Transaction, CapacityCheckCoversTheWholeBatch) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  auto tables = dp.tables_named("LB.lb_session");
  ASSERT_EQ(tables.size(), 1u);
  const auto capacity = tables[0]->def().max_entries;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    tables[0]->add_exact({i}, {"LB.modify_dstIp", {{"dip", 1}}});
  }

  // A brand-new key cannot fit...
  Transaction full(dp);
  full.install_exact("LB.lb_session", {capacity + 7},
                     {"LB.modify_dstIp", {{"dip", 2}}});
  const auto rejected = full.commit();
  EXPECT_FALSE(rejected.committed);
  EXPECT_NE(rejected.error.find("cannot fit"), std::string::npos);

  // ...but overwriting an existing key consumes no new capacity.
  Transaction overwrite(dp);
  overwrite.install_exact("LB.lb_session", {0},
                          {"LB.modify_dstIp", {{"dip", 9}}});
  EXPECT_TRUE(overwrite.commit().committed);
}

TEST(Transaction, TransientFaultsRetryUnderBackoff) {
  auto fx = make_fig9_deployment();
  const sim::FaultPlan plan = write_fail_plan(/*op_index=*/0, /*count=*/2);
  sim::FaultInjector injector(plan);

  Transaction txn(fx.deployment->dataplane(), RetryPolicy{}, &injector);
  txn.install_exact("LB.lb_session", {0x77},
                    {"LB.modify_dstIp", {{"dip", 3}}});
  const auto result = txn.commit();
  EXPECT_TRUE(result.committed) << result.to_string();
  EXPECT_EQ(result.retries, 2u);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_GT(result.total_backoff_ms, 0u);
}

TEST(Transaction, ExhaustedRetriesRollBackByteIdentical) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  // Pre-existing state the transaction will overwrite and remove: the
  // rollback must restore both.
  fx.deployment->control().install_lb_session(0x42,
                                              net::Ipv4Addr(10, 1, 2, 1));
  fx.deployment->control().install_lb_session(0x43,
                                              net::Ipv4Addr(10, 1, 2, 2));
  const std::string before = take_snapshot(dp).to_text();

  const sim::FaultPlan plan = write_fail_plan(/*op_index=*/3, /*count=*/10);
  sim::FaultInjector injector(plan);
  Transaction txn(dp, RetryPolicy{}, &injector);
  txn.install_exact("LB.lb_session", {0x42},  // overwrite
                    {"LB.modify_dstIp", {{"dip", 0xbad}}});
  txn.remove_exact("LB.lb_session", {0x43});  // removal
  txn.install_lpm("Router.ipv4_lpm", net::Ipv4Addr(10, 99, 0, 0).value(), 16,
                  {"Router.route", {{"port", 1}, {"dmac", 0x99}}});
  txn.install_exact("LB.lb_session", {0x55},  // never applied: op 3 fails
                    {"LB.modify_dstIp", {{"dip", 4}}});
  const auto result = txn.commit();
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(result.applied, 3u);
  EXPECT_NE(result.error.find("retries exhausted"), std::string::npos);

  EXPECT_EQ(take_snapshot(dp).to_text(), before);
}

TEST(Transaction, RegisterWritesRollBackToo) {
  auto d = make_stateful_deployment();
  sim::DataPlane& dp = d->dataplane();
  auto loc = d->placement().find("Limiter");
  ASSERT_TRUE(loc.has_value());
  const std::string ctrl = merge::pipelet_control_name(loc->pipelet);
  auto* cells = dp.register_array(ctrl, "Limiter.flow_count");
  ASSERT_NE(cells, nullptr);
  (*cells)[5] = 1111;  // live state the rollback must restore
  const std::string before = take_snapshot(dp).to_text();

  const sim::FaultPlan plan = write_fail_plan(/*op_index=*/2, /*count=*/10);
  sim::FaultInjector injector(plan);
  Transaction txn(dp, RetryPolicy{}, &injector);
  txn.write_register(ctrl, "Limiter.flow_count", 5, 2222);
  txn.install_lpm("Router.ipv4_lpm", net::Ipv4Addr(10, 88, 0, 0).value(), 16,
                  {"Router.route", {{"port", 1}, {"dmac", 0x88}}});
  txn.install_ternary("Classifier.traffic_class", {{0, 0}, {0, 0}, {0, 0}},
                      /*priority=*/1, {"Classifier.classify",
                                       {{"path_id", 1}, {"tenant", 1}}});
  const auto result = txn.commit();
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(result.applied, 2u);

  EXPECT_EQ((*cells)[5], 1111u);
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
}

TEST(Transaction, EmptyBatchCommitsAsNoOp) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  const std::string before = take_snapshot(dp).to_text();

  Transaction txn(dp);
  const auto result = txn.commit();
  EXPECT_TRUE(result.committed) << result.to_string();
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
}

TEST(Transaction, DoubleCommitThrowsEvenAfterRollback) {
  auto fx = make_fig9_deployment();
  const sim::FaultPlan plan = write_fail_plan(/*op_index=*/0, /*count=*/10);
  sim::FaultInjector injector(plan);
  Transaction txn(fx.deployment->dataplane(), RetryPolicy{}, &injector);
  txn.install_exact("LB.lb_session", {0x90},
                    {"LB.modify_dstIp", {{"dip", 5}}});
  const auto result = txn.commit();
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.rolled_back);
  // A rolled-back transaction is spent: re-committing must not replay
  // the batch against the switch.
  EXPECT_THROW(txn.commit(), std::logic_error);
}

TEST(Transaction, FaultOnFinalRegisterWriteRollsBackEverything) {
  // The failing op is the *last* in the batch, and a register write —
  // every earlier table op was already applied, and the undo log must
  // unwind them all plus leave the register untouched.
  auto d = make_stateful_deployment();
  sim::DataPlane& dp = d->dataplane();
  auto loc = d->placement().find("Limiter");
  ASSERT_TRUE(loc.has_value());
  const std::string ctrl = merge::pipelet_control_name(loc->pipelet);
  auto* cells = dp.register_array(ctrl, "Limiter.flow_count");
  ASSERT_NE(cells, nullptr);
  (*cells)[9] = 777;
  const std::string before = take_snapshot(dp).to_text();

  const sim::FaultPlan plan = write_fail_plan(/*op_index=*/2, /*count=*/10);
  sim::FaultInjector injector(plan);
  Transaction txn(dp, RetryPolicy{}, &injector);
  txn.install_lpm("Router.ipv4_lpm", net::Ipv4Addr(10, 66, 0, 0).value(), 16,
                  {"Router.route", {{"port", 1}, {"dmac", 0x66}}});
  txn.install_ternary("Classifier.traffic_class", {{0, 0}, {0, 0}, {0, 0}},
                      /*priority=*/2, {"Classifier.classify",
                                       {{"path_id", 1}, {"tenant", 1}}});
  txn.write_register(ctrl, "Limiter.flow_count", 9, 888);  // op 2: fails
  const auto result = txn.commit();
  EXPECT_FALSE(result.committed);
  EXPECT_TRUE(result.rolled_back);
  EXPECT_EQ(result.applied, 2u);
  EXPECT_EQ((*cells)[9], 777u);
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
}

TEST(Transaction, RegisterValidation) {
  auto d = make_stateful_deployment();
  auto loc = d->placement().find("Limiter");
  ASSERT_TRUE(loc.has_value());
  const std::string ctrl = merge::pipelet_control_name(loc->pipelet);

  Transaction bad_name(d->dataplane());
  bad_name.write_register(ctrl, "Limiter.ghost", 0, 1);
  EXPECT_NE(bad_name.commit().error.find("no such register"),
            std::string::npos);

  Transaction bad_index(d->dataplane());
  bad_index.write_register(ctrl, "Limiter.flow_count", 1u << 20, 1);
  EXPECT_NE(bad_index.commit().error.find("out of range"), std::string::npos);
}

}  // namespace
}  // namespace dejavu::control
