#include "route/routing.hpp"

#include <gtest/gtest.h>

namespace dejavu::route {
namespace {

using asic::PipeKind;
using merge::CompositionKind;

class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest() : config(asic::TargetSpec::tofino32()) {
    config.set_pipeline_loopback(1);
    policies.add({.path_id = 1,
                  .name = "chain",
                  .nfs = {"A", "B", "C"},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  }

  asic::SwitchConfig config;
  sfc::PolicySet policies;
};

TEST_F(RoutingTest, ChecksCoverEveryPathPosition) {
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
  });
  auto plan = build_routing(policies, p, config);
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  ASSERT_EQ(plan.checks.size(), 3u);
  for (std::uint8_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.checks[i].nf, policies.policies()[0].nfs[i]);
    EXPECT_EQ(plan.checks[i].path_id, 1);
    EXPECT_EQ(plan.checks[i].service_index, i);
  }
}

TEST_F(RoutingTest, BranchingRulesFollowTheTraversal) {
  // A@I0, B@E1 (loopback pipeline), C@I1... C on ingress 1, exit on
  // port 1 (pipeline 0).
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"B"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"C"}},
  });
  auto plan = build_routing(policies, p, config);
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;

  // Ingress 0, after A (index 1): to a loopback port of pipeline 1
  // (B sits on egress 1, more work follows).
  const BranchingRule* r0 =
      plan.find_branching({0, PipeKind::kIngress}, 1, 1);
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r0->kind, BranchingRule::Kind::kToEgress);
  EXPECT_TRUE(config.is_loopback(r0->port))
      << "port " << r0->port << " should be a loopback port";
  EXPECT_EQ(config.spec().pipeline_of_port(r0->port), 1u);

  // Ingress 1, after C (index 3, chain done): to the exit port.
  const BranchingRule* r1 =
      plan.find_branching({1, PipeKind::kIngress}, 1, 3);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->kind, BranchingRule::Kind::kToEgress);
  EXPECT_EQ(r1->port, 1);
}

TEST_F(RoutingTest, ResubmissionRuleForSamePipeletRevisit) {
  // A and B on ingress 0 but B before A in apply order: the pass
  // runs A only and the branching entry resubmits.
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"B", "A"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
  });
  auto plan = build_routing(policies, p, config);
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;

  const BranchingRule* r = plan.find_branching({0, PipeKind::kIngress}, 1, 1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->kind, BranchingRule::Kind::kResubmit);
}

TEST_F(RoutingTest, DedicatedRecircPortUsedWithoutLoopbacks) {
  asic::SwitchConfig plain(asic::TargetSpec::tofino32());  // no loopback
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
  });
  auto plan = build_routing(policies, p, plain);
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  const BranchingRule* r = plan.find_branching({0, PipeKind::kIngress}, 1, 1);
  ASSERT_NE(r, nullptr);
  // B is on ingress 1: the hop crosses via pipeline 1's dedicated
  // recirculation port.
  EXPECT_EQ(r->port, dedicated_recirc_port(plain.spec(), 1));
}

TEST_F(RoutingTest, LoopbackPortsRotatePerRule) {
  sfc::PolicySet two;
  two.add({.path_id = 1, .name = "p1", .nfs = {"A", "B"},
           .in_port = 0, .exit_port = 1});
  two.add({.path_id = 2, .name = "p2", .nfs = {"A", "C"},
           .in_port = 0, .exit_port = 1});
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"B", "C"}},
  });
  auto plan = build_routing(two, p, config);
  ASSERT_TRUE(plan.feasible) << plan.infeasible_reason;
  const BranchingRule* r1 = plan.find_branching({0, PipeKind::kIngress}, 1, 1);
  const BranchingRule* r2 = plan.find_branching({0, PipeKind::kIngress}, 2, 1);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  // Round-robin across pipeline 1's 16 loopback ports spreads load.
  EXPECT_NE(r1->port, r2->port);
}

TEST_F(RoutingTest, InfeasiblePlacementReported) {
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
  });  // C unplaced
  auto plan = build_routing(policies, p, config);
  EXPECT_FALSE(plan.feasible);
  EXPECT_NE(plan.infeasible_reason.find("C"), std::string::npos);
}

TEST_F(RoutingTest, TraversalsRecordedPerPath) {
  place::Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
  });
  auto plan = build_routing(policies, p, config);
  ASSERT_TRUE(plan.feasible);
  ASSERT_TRUE(plan.traversals.contains(1));
  EXPECT_EQ(plan.traversals.at(1).recirculations, 0u);
}

TEST(RecircPort, NumberingSitsAboveFrontPanel) {
  auto spec = asic::TargetSpec::tofino32();
  EXPECT_EQ(dedicated_recirc_port(spec, 0), 32);
  EXPECT_EQ(dedicated_recirc_port(spec, 1), 33);
}

TEST(EnvFor, AllPipelinesCanRecirculate) {
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  auto env = env_for(config);
  EXPECT_EQ(env.pipelines, 2u);
  EXPECT_TRUE(env.recirc_ok(0));
  EXPECT_TRUE(env.recirc_ok(1));
}

}  // namespace
}  // namespace dejavu::route
