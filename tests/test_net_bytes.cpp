#include "net/bytes.hpp"

#include <gtest/gtest.h>

namespace dejavu::net {
namespace {

TEST(Bytes, BigEndianRoundTrip16) {
  std::vector<std::byte> buf(4);
  write_be16(buf, 1, 0xbeef);
  EXPECT_EQ(read_be16(buf, 1), 0xbeef);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0);  // untouched
}

TEST(Bytes, BigEndianRoundTrip32And64) {
  std::vector<std::byte> buf(12);
  write_be32(buf, 0, 0xdeadbeef);
  write_be64(buf, 4, 0x0123456789abcdefULL);
  EXPECT_EQ(read_be32(buf, 0), 0xdeadbeefu);
  EXPECT_EQ(read_be64(buf, 4), 0x0123456789abcdefULL);
}

TEST(Bytes, BigEndian24Bit) {
  std::vector<std::byte> buf(3);
  write_be24(buf, 0, 0x123456);
  EXPECT_EQ(read_be24(buf, 0), 0x123456u);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0x12);
  EXPECT_EQ(std::to_integer<int>(buf[2]), 0x56);
}

TEST(Bytes, ByteOrderIsNetworkOrder) {
  std::vector<std::byte> buf(2);
  write_be16(buf, 0, 0x0102);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 1);
  EXPECT_EQ(std::to_integer<int>(buf[1]), 2);
}

TEST(Bytes, OutOfRangeReadThrows) {
  std::vector<std::byte> buf(3);
  EXPECT_THROW(read_be32(buf, 0), std::out_of_range);
  EXPECT_THROW(read_be16(buf, 2), std::out_of_range);
  EXPECT_THROW(read_u8(buf, 3), std::out_of_range);
}

TEST(Bytes, HexRoundTrip) {
  auto bytes = from_hex("00ff10ab");
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(to_hex(bytes), "00ff10ab");
}

TEST(Bytes, HexRejectsOddLengthAndBadDigits) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, HexAcceptsUppercase) {
  auto bytes = from_hex("DEADBEEF");
  EXPECT_EQ(to_hex(bytes), "deadbeef");
}

TEST(Buffer, SliceBoundsChecked) {
  Buffer buf(10);
  EXPECT_EQ(buf.slice(2, 8).size(), 8u);
  EXPECT_THROW(buf.slice(2, 9), std::out_of_range);
  EXPECT_THROW(buf.slice(11, 0), std::out_of_range);
}

TEST(Buffer, InsertZerosShiftsTail) {
  Buffer buf(from_hex("aabbccdd"));
  buf.insert_zeros(2, 3);
  EXPECT_EQ(to_hex(buf.view()), "aabb000000ccdd");
}

TEST(Buffer, EraseShiftsTailLeft) {
  Buffer buf(from_hex("aabb000000ccdd"));
  buf.erase(2, 3);
  EXPECT_EQ(to_hex(buf.view()), "aabbccdd");
}

TEST(Buffer, InsertThenEraseIsIdentity) {
  const Buffer original(from_hex("0102030405060708"));
  Buffer buf = original;
  buf.insert_zeros(3, 20);
  buf.erase(3, 20);
  EXPECT_EQ(buf, original);
}

TEST(Buffer, AppendGrows) {
  Buffer buf(from_hex("01"));
  auto more = from_hex("0203");
  buf.append(more);
  EXPECT_EQ(to_hex(buf.view()), "010203");
}

TEST(Buffer, EraseOutOfRangeThrows) {
  Buffer buf(4);
  EXPECT_THROW(buf.erase(2, 3), std::out_of_range);
  EXPECT_THROW(buf.insert_zeros(5, 1), std::out_of_range);
}

}  // namespace
}  // namespace dejavu::net
