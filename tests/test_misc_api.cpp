// Small-surface API behaviors not covered elsewhere: enum printers,
// counter resets, guard comparison variants in the executor, queue-sim
// determinism, and output helpers.
#include <gtest/gtest.h>

#include "merge/compose.hpp"
#include "nf/parser_lib.hpp"
#include "sim/dataplane.hpp"
#include "sim/queue_sim.hpp"
#include "route/routing.hpp"

namespace dejavu {
namespace {

TEST(EnumPrinters, CoverAllValues) {
  using p4ir::DepKind;
  using p4ir::MatchKind;
  using p4ir::PrimitiveOp;
  EXPECT_STREQ(p4ir::to_string(MatchKind::kExact), "exact");
  EXPECT_STREQ(p4ir::to_string(MatchKind::kLpm), "lpm");
  EXPECT_STREQ(p4ir::to_string(MatchKind::kTernary), "ternary");
  EXPECT_STREQ(p4ir::to_string(DepKind::kMatch), "match");
  EXPECT_STREQ(p4ir::to_string(DepKind::kAction), "action");
  EXPECT_STREQ(p4ir::to_string(DepKind::kSuccessor), "successor");
  EXPECT_STREQ(p4ir::to_string(PrimitiveOp::kHash), "hash");
  EXPECT_STREQ(p4ir::to_string(PrimitiveOp::kRegisterAdd), "reg_add");
  EXPECT_STREQ(asic::to_string(asic::PipeKind::kIngress), "ingress");
  EXPECT_STREQ(merge::to_string(merge::CompositionKind::kParallel),
               "parallel");
}

TEST(GuardCmp, AllComparisonsHold) {
  p4ir::FieldGuard eq{.field = "f.x", .value = 5};
  EXPECT_TRUE(eq.holds(5));
  EXPECT_FALSE(eq.holds(6));

  p4ir::FieldGuard ne{.field = "f.x", .value = 5, .negate = true};
  EXPECT_FALSE(ne.holds(5));
  EXPECT_TRUE(ne.holds(6));

  p4ir::FieldGuard gt{.field = "f.x",
                      .value = 5,
                      .negate = false,
                      .cmp = p4ir::GuardCmp::kGt};
  EXPECT_TRUE(gt.holds(6));
  EXPECT_FALSE(gt.holds(5));

  p4ir::FieldGuard lt{.field = "f.x",
                      .value = 5,
                      .negate = false,
                      .cmp = p4ir::GuardCmp::kLt};
  EXPECT_TRUE(lt.holds(4));
  EXPECT_FALSE(lt.holds(5));
}

TEST(QueueSim, DeterministicForFixedSeed) {
  sim::QueueSimParams params;
  params.recirculations = 3;
  params.seed = 1234;
  auto a = sim::simulate_recirculation(params);
  auto b = sim::simulate_recirculation(params);
  EXPECT_DOUBLE_EQ(a.delivered_gbps, b.delivered_gbps);
  EXPECT_DOUBLE_EQ(a.loss_fraction, b.loss_fraction);

  params.seed = 5678;
  auto c = sim::simulate_recirculation(params);
  // Different seed, same physics: close but not byte-identical.
  EXPECT_NEAR(a.delivered_gbps, c.delivered_gbps, 2.0);
}

TEST(PortCounters, ResetClears) {
  p4ir::TupleIdTable ids;
  p4ir::Program program("p");
  nf::add_standard_parser(program, ids);
  p4ir::ControlBlock c(
      merge::pipelet_control_name({0, asic::PipeKind::kIngress}));
  p4ir::Action fwd;
  fwd.name = "fwd";
  fwd.primitives = {p4ir::set_imm("standard_metadata.egress_spec", 1)};
  c.add_action(fwd);
  p4ir::Table t;
  t.name = "t";
  t.default_action = "fwd";
  c.add_table(t);
  c.apply_table("t");
  program.add_control(std::move(c));

  sim::DataPlane dp(program, ids, asic::SwitchConfig(asic::TargetSpec::mini()));
  dp.process(net::Packet::make({}), 0);
  EXPECT_EQ(dp.port_counters(0).rx_packets, 1u);
  EXPECT_EQ(dp.port_counters(1).tx_packets, 1u);
  EXPECT_GT(dp.port_counters(1).tx_bytes, 0u);
  dp.reset_counters();
  EXPECT_EQ(dp.port_counters(0).rx_packets, 0u);
  EXPECT_EQ(dp.port_counters(1).tx_packets, 0u);
}

TEST(SwitchOutput, DeliveredHelper) {
  sim::SwitchOutput out;
  EXPECT_FALSE(out.delivered());
  out.out.push_back({1, net::Packet::make({})});
  EXPECT_TRUE(out.delivered());
}

TEST(BranchingRuleText, Readable) {
  route::BranchingRule r;
  r.pipelet = {0, asic::PipeKind::kIngress};
  r.path_id = 3;
  r.service_index = 2;
  r.kind = route::BranchingRule::Kind::kToEgress;
  r.port = 17;
  EXPECT_NE(r.to_string().find("egress port 17"), std::string::npos);
  r.kind = route::BranchingRule::Kind::kResubmit;
  EXPECT_NE(r.to_string().find("resubmit"), std::string::npos);
}

TEST(TraversalText, InfeasibleExplainsItself) {
  place::Traversal t;
  t.infeasible_reason = "because reasons";
  EXPECT_NE(t.to_string().find("because reasons"), std::string::npos);
}

}  // namespace
}  // namespace dejavu
