// Self-healing chain repair: gate-counter health detection pinpoints a
// dead NF, and both repair strategies (bypass on the same placement,
// re-placement rebuild) restore delivery — gated on the verifier and
// the symbolic explorer, committed transactionally.
#include <gtest/gtest.h>

#include "compile/report.hpp"
#include "control/repair.hpp"
#include "control/replay_target.hpp"
#include "control/snapshot.hpp"
#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "route/routing.hpp"

namespace dejavu::control {
namespace {

/// Remove the NF's check-gate entries and every branching entry that
/// steered toward it — the observable signature of a dead pipelet.
void sabotage(Deployment& dep, const std::string& nf) {
  sim::DataPlane& dp = dep.dataplane();
  for (const route::CheckRule& cr : dep.routing().checks) {
    if (cr.nf != nf) continue;
    for (sim::RuntimeTable* t :
         dp.tables_named(merge::check_next_nf_table(cr.nf))) {
      t->remove_exact({cr.path_id, cr.service_index, 0, 0});
    }
  }
  for (const route::BranchingRule& br : dep.routing().branching) {
    auto next = dep.policies().nf_at(br.path_id, br.service_index);
    if (!next || *next != nf) continue;
    sim::RuntimeTable* t = dp.table_in(
        merge::pipelet_control_name(br.pipelet), merge::kBranchingTable);
    if (t != nullptr) t->remove_exact({br.path_id, br.service_index});
  }
}

/// One observation window: one packet per flow through the control
/// plane (punts serviced), tallied per path.
std::map<std::uint16_t, PathWindow> window(
    Deployment& dep, const std::vector<sim::ReplayFlow>& flows) {
  std::map<std::uint16_t, PathWindow> out;
  for (const sim::ReplayFlow& rf : flows) {
    auto result = dep.control().inject(rf.flow.packet(), rf.in_port);
    PathWindow& w = out[rf.path_id];
    ++w.offered;
    if (result.delivered()) ++w.delivered;
    if (result.dropped) ++w.dropped;
  }
  return out;
}

double delivery(const std::map<std::uint16_t, PathWindow>& windows) {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (const auto& [path_id, w] : windows) {
    offered += w.offered;
    delivered += w.delivered;
  }
  return offered > 0 ? static_cast<double>(delivered) / offered : 1.0;
}

TEST(HealthMonitor, PinpointsTheSilentGate) {
  auto fx = make_fig9_deployment();
  auto flows = fig2_replay_flows(30);
  window(*fx.deployment, flows);  // warm LB sessions

  sabotage(*fx.deployment, sfc::kVgw);
  HealthMonitor monitor(fx.deployment->dataplane(),
                        fx.deployment->policies());
  monitor.observe(window(*fx.deployment, flows));
  EXPECT_TRUE(monitor.unhealthy().empty());  // debounced: 1 < sustained 2
  monitor.observe(window(*fx.deployment, flows));
  EXPECT_EQ(monitor.unhealthy(), std::vector<std::string>{sfc::kVgw});

  // The culprit is the VGW specifically: downstream NFs also went
  // silent on the suffering paths, but only the first silent gate
  // after a firing upstream is blamed.
  const auto& health = monitor.health();
  EXPECT_FALSE(health.at(sfc::kFirewall).unhealthy);
  EXPECT_FALSE(health.at(sfc::kLoadBalancer).unhealthy);

  monitor.reset();
  monitor.observe(window(*fx.deployment, flows));
  EXPECT_TRUE(monitor.unhealthy().empty());  // suspicion forgotten
}

TEST(HealthMonitor, HealthyDeploymentStaysQuiet) {
  auto fx = make_fig9_deployment();
  auto flows = fig2_replay_flows(30);
  window(*fx.deployment, flows);
  HealthMonitor monitor(fx.deployment->dataplane(),
                        fx.deployment->policies());
  for (int i = 0; i < 4; ++i) {
    monitor.observe(window(*fx.deployment, flows));
  }
  EXPECT_TRUE(monitor.unhealthy().empty());
}

TEST(ChainRepair, BypassRestoresDelivery) {
  auto fx = make_fig9_deployment();
  auto flows = fig2_replay_flows(30);
  window(*fx.deployment, flows);
  const double before = delivery(window(*fx.deployment, flows));
  EXPECT_GE(before, 0.95);

  sabotage(*fx.deployment, sfc::kVgw);
  const double faulted = delivery(window(*fx.deployment, flows));
  EXPECT_LT(faulted, before);  // paths 1 and 2 are down

  ChainRepair repair(*fx.deployment);
  const RepairReport report = repair.bypass(sfc::kVgw);
  EXPECT_TRUE(report.succeeded) << report.to_string();
  EXPECT_TRUE(report.verify_ok);
  EXPECT_TRUE(report.explore_ok);
  EXPECT_TRUE(report.txn.committed);
  EXPECT_GT(report.rules_installed, 0u);

  // The deployment's policy view dropped the NF...
  for (const auto& p : fx.deployment->policies().policies()) {
    for (const auto& nf : p.nfs) EXPECT_NE(nf, sfc::kVgw);
  }
  // ...and traffic flows again (LB re-learns sessions for the now
  // untranslated destinations via punts).
  const double repaired = delivery(window(*fx.deployment, flows));
  EXPECT_GE(repaired, 0.95 * before);
}

TEST(ChainRepair, CompiledPipelineInvalidatedBySwap) {
  // Trace-invalidation property (DESIGN.md §12): a committed repair
  // swap moves table revisions, so the compiled engine must recompile
  // or fall back — and agree with the interpreter on the repaired
  // chain. Never the retired one.
  auto fx = make_fig9_deployment();
  auto flows = fig2_replay_flows(12);
  window(*fx.deployment, flows);  // warm LB sessions
  sim::DataPlane& dp = fx.deployment->dataplane();
  sim::CompiledPipeline fast(dp);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();
  fast.process(flows[0].flow.packet(), flows[0].in_port);
  const std::uint64_t gen = fast.generation();

  sabotage(*fx.deployment, sfc::kVgw);
  ChainRepair repair(*fx.deployment);
  ASSERT_TRUE(repair.bypass(sfc::kVgw).succeeded);

  sim::DataPlane reference = dp;
  for (const sim::ReplayFlow& rf : flows) {
    const net::Packet packet = rf.flow.packet();
    const sim::SwitchOutput expected = reference.process(packet, rf.in_port);
    const sim::SwitchOutput got = fast.process(packet, rf.in_port);
    ASSERT_TRUE(sim::semantically_equal(expected, got))
        << "path " << rf.path_id << "\ninterp: " << expected.drop_reason
        << "\ncompiled: " << got.drop_reason;
  }
  EXPECT_TRUE(fast.generation() > gen || !fast.compiled_ok());
}

TEST(ChainRepair, BypassRefusals) {
  auto fx = make_fig9_deployment();
  RepairPolicy policy;
  policy.never_bypass = {sfc::kFirewall};
  ChainRepair repair(*fx.deployment, policy);

  const RepairReport fw = repair.bypass(sfc::kFirewall);
  EXPECT_FALSE(fw.attempted);
  EXPECT_NE(fw.error.find("forbids"), std::string::npos);

  const RepairReport router = repair.bypass(sfc::kRouter);
  EXPECT_FALSE(router.attempted);
  EXPECT_NE(router.error.find("terminal"), std::string::npos);

  const RepairReport ghost = repair.bypass("Ghost");
  EXPECT_FALSE(ghost.attempted);
  EXPECT_NE(ghost.error.find("not part of any chain"), std::string::npos);
}

TEST(ChainRepair, BypassRollsBackOnPermanentWriteFailure) {
  auto fx = make_fig9_deployment();
  auto flows = fig2_replay_flows(30);
  window(*fx.deployment, flows);
  sabotage(*fx.deployment, sfc::kVgw);
  const std::string before =
      take_snapshot(fx.deployment->dataplane()).to_text();
  const auto policies_before = fx.deployment->policies().policies();

  sim::FaultPlan plan;
  sim::FaultEvent ev;
  ev.kind = sim::FaultKind::kWriteFail;
  ev.op_index = 0;
  ev.count = 100;  // > any retry budget: permanent
  plan.events.push_back(ev);
  sim::FaultInjector injector(plan);

  ChainRepair repair(*fx.deployment);
  const RepairReport report = repair.bypass(sfc::kVgw, &injector);
  EXPECT_FALSE(report.succeeded);
  EXPECT_TRUE(report.txn.rolled_back);
  EXPECT_NE(report.error.find("rolled back"), std::string::npos);

  // Live switch untouched, policy view unchanged.
  EXPECT_EQ(take_snapshot(fx.deployment->dataplane()).to_text(), before);
  EXPECT_EQ(fx.deployment->policies().policies(), policies_before);
}

TEST(ChainRepair, ReplaceRebuildsAndMigratesState) {
  auto fx = make_fig9_deployment();
  auto flows = fig2_replay_flows(30);
  window(*fx.deployment, flows);
  sabotage(*fx.deployment, sfc::kVgw);

  ChainRepair repair(*fx.deployment);
  ChainRepair::Replacement repl = repair.replace(sfc::kVgw);
  ASSERT_TRUE(repl.report.succeeded) << repl.report.to_string();
  ASSERT_NE(repl.deployment, nullptr);
  EXPECT_TRUE(repl.report.explore_ok);

  // The rebuilt program no longer contains the failed NF...
  EXPECT_TRUE(repl.deployment->dataplane()
                  .tables_named("VGW.vip_map")
                  .empty());
  // ...but the survivors' rule state came across.
  EXPECT_FALSE(repl.deployment->dataplane()
                   .tables_named("Router.ipv4_lpm")
                   .empty());

  // Cut over (LB pool is soft state) and confirm delivery.
  repl.deployment->control().set_lb_pool(fx.deployment->control().lb_pool());
  const double repaired = delivery(window(*repl.deployment, flows));
  EXPECT_GE(repaired, 0.95);
}

// §11 motivation, pinned: a packet that punted to the CPU before a
// bypass repair and reinjects after it. The legacy stop-the-world swap
// (hitless=false) leaves the version gate alone, so the old packet
// resumes mid-chain on the rewired ruleset — a mixed-generation
// traversal that dies as an unattributable ingress drop (in other
// layouts it is silently misdelivered). The hitless path retires the
// old generation first: the same reinjection drains cleanly with
// kUpdateDrained, naming the generation it belonged to.
TEST(ChainRepair, LegacySwapLeaksAMixedGenerationPacket) {
  auto hold_punt = [](Deployment& dep) {
    // First path-1 injection misses the LB session table and punts;
    // hold the punt instead of servicing it (an in-flight packet).
    for (const auto& rf : fig2_replay_flows(30)) {
      if (rf.path_id != 1) continue;
      auto out = dep.dataplane().process(rf.flow.packet(), rf.in_port);
      if (!out.to_cpu.empty()) return out.to_cpu[0];
    }
    ADD_FAILURE() << "no flow punted";
    return sim::SwitchOutput::CpuPunt{};
  };
  auto reinject = [](Deployment& dep, const sim::SwitchOutput::CpuPunt& p) {
    return dep.dataplane().process(p.packet, p.in_port, /*from_cpu=*/true,
                                   p.epoch);
  };

  {  // Baseline: no swap — the held punt is still a live in-flight
     // packet on its own generation, not a drop.
    auto fx = make_fig9_deployment();
    const auto punt = hold_punt(*fx.deployment);
    const auto out = reinject(*fx.deployment, punt);
    EXPECT_FALSE(out.dropped) << out.drop_reason;
    EXPECT_EQ(out.epoch, 0u);
  }

  {  // Legacy stop-the-world swap: the reinjected packet crosses into
     // the new generation and is lost without attribution.
    auto fx = make_fig9_deployment();
    const auto punt = hold_punt(*fx.deployment);
    RepairPolicy policy;
    policy.hitless = false;
    ChainRepair repair(*fx.deployment, policy);
    const RepairReport report = repair.bypass(sfc::kVgw);
    ASSERT_TRUE(report.succeeded) << report.to_string();
    EXPECT_EQ(fx.deployment->dataplane().epoch(), 0u);  // no gate flip

    const auto out = reinject(*fx.deployment, punt);
    EXPECT_TRUE(out.dropped);
    EXPECT_NE(out.drop_code, sim::DropCode::kUpdateDrained)
        << "legacy path has no drain accounting";
  }

  {  // Hitless swap: the old generation is drained before GC, so the
     // late reinjection is refused with the drain code — attributable,
     // never a mixed-generation traversal.
    auto fx = make_fig9_deployment();
    sim::DataPlane& dp = fx.deployment->dataplane();
    const auto punt = hold_punt(*fx.deployment);
    ChainRepair repair(*fx.deployment);  // hitless is the default
    const RepairReport report = repair.bypass(sfc::kVgw);
    ASSERT_TRUE(report.succeeded) << report.to_string();
    EXPECT_EQ(dp.epoch(), 1u);
    EXPECT_EQ(dp.min_live_epoch(), 1u);
    // The drain phase accounted for (and flushed) the abandoned punt.
    EXPECT_EQ(dp.punts_outstanding_below(1), 0u);
    EXPECT_EQ(report.update.flushed, 1u);

    const auto out = reinject(*fx.deployment, punt);
    EXPECT_TRUE(out.dropped);
    EXPECT_EQ(out.drop_code, sim::DropCode::kUpdateDrained);
    EXPECT_NE(out.drop_reason.find("min live epoch 1"), std::string::npos)
        << out.drop_reason;
  }
}

TEST(NfStateSnapshot, ExcludesFrameworkTables) {
  auto fx = make_fig9_deployment();
  const Snapshot snap = nf_state_snapshot(fx.deployment->dataplane());
  EXPECT_FALSE(snap.tables.empty());
  for (const auto& t : snap.tables) {
    EXPECT_FALSE(compile::is_framework_table(t.table)) << t.table;
  }
}

}  // namespace
}  // namespace dejavu::control
