// Shared helper for the explorer tests: build one shipped target with
// its example rules installed — the exact deployments `dejavu_cli
// explore --target NAME` runs, via the same example_chains helpers.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "control/deployment.hpp"
#include "example_chains.hpp"

namespace dejavu::test {

struct ExploreTarget {
  std::unique_ptr<control::Deployment> deployment;
  sfc::PolicySet policies;
};

inline ExploreTarget build_explore_target(const std::string& name) {
  ExploreTarget t;
  control::DeploymentOptions options;
  options.verify = false;
  if (name == "fig2") {
    auto fx = control::make_fig2_deployment(std::nullopt, std::move(options));
    t.deployment = std::move(fx.deployment);
    t.policies = std::move(fx.policies);
    return t;
  }
  if (name == "fig9") {
    auto fx = control::make_fig9_deployment(std::move(options));
    t.deployment = std::move(fx.deployment);
    t.policies = std::move(fx.policies);
    return t;
  }
  examples::ChainSetup setup;
  bool stateful = false;
  if (name == "quickstart") {
    setup = examples::quickstart_setup();
  } else if (name == "stateful") {
    setup = examples::stateful_security_setup();
    stateful = true;
  } else {
    throw std::invalid_argument("unknown explore target '" + name + "'");
  }
  t.policies = setup.policies;
  t.deployment = control::Deployment::build(
      std::move(setup.nfs), setup.policies, std::move(setup.config),
      std::move(setup.ids), std::move(options));
  if (stateful) {
    examples::install_stateful_rules(*t.deployment);
  } else {
    examples::install_quickstart_rules(*t.deployment);
  }
  return t;
}

}  // namespace dejavu::test
