// The §4 recirculation model: closed-form checks against the numbers
// the paper derives (x = 0.62T, 0.38T, 0.16T) and the qualitative
// claims of Fig. 8(a), plus agreement between the fluid model and the
// packet-level feedback-queue simulation (the testbed substitute).
#include "sim/fluid.hpp"
#include "sim/queue_sim.hpp"

#include <gtest/gtest.h>

namespace dejavu::sim {
namespace {

TEST(Fluid, NoAndSingleRecircAreFreeOfLoss) {
  // §4: "both the no-recirculation path and 1-recirculation path
  // will have throughput T."
  EXPECT_DOUBLE_EQ(recirc_throughput_gbps(100, 0), 100.0);
  EXPECT_DOUBLE_EQ(recirc_throughput_gbps(100, 1), 100.0);
}

TEST(Fluid, TwoRecircMatchesPaperDerivation) {
  // §4: "Solving the above equations gives us x = 0.62T. The
  // effective throughput ... is then T - 0.62T = 0.38T."
  const double s = loopback_survival(2);
  EXPECT_NEAR(s, 0.618, 1e-3);  // x = sT = 0.62T
  EXPECT_NEAR(recirc_throughput_gbps(100, 2), 38.2, 0.1);
}

TEST(Fluid, ThreeRecircMatchesPaperDerivation) {
  // §4: "we can also obtain the effective throughput of the traffic
  // with 3-recirculation as 0.16T."
  EXPECT_NEAR(recirc_throughput_gbps(100, 3), 16.1, 0.2);
}

TEST(Fluid, SurvivalSatisfiesDefiningEquation) {
  for (std::uint32_t k = 2; k <= 8; ++k) {
    const double s = loopback_survival(k);
    double sum = 0, pow = 1;
    for (std::uint32_t i = 0; i < k; ++i) {
      pow *= s;
      sum += pow;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "k=" << k;
  }
}

TEST(Fluid, ThroughputDecaysSuperLinearly) {
  // Fig. 8(a): "the effective throughput degrades super-linearly with
  // the number of recirculations."
  double prev = recirc_throughput_gbps(100, 1);
  for (std::uint32_t k = 2; k <= 5; ++k) {
    double cur = recirc_throughput_gbps(100, k);
    EXPECT_LT(cur, prev);
    // Super-linear: the k-th throughput is worse than the linear
    // share T/k.
    EXPECT_LT(cur, 100.0 / k);
    prev = cur;
  }
}

TEST(Fluid, GenerationThroughputsAreGeometric) {
  auto gens = generation_throughputs_gbps(100, 3);
  ASSERT_EQ(gens.size(), 3u);
  const double s = loopback_survival(3);
  EXPECT_NEAR(gens[0], 100 * s, 1e-9);
  EXPECT_NEAR(gens[1], 100 * s * s, 1e-9);
  EXPECT_NEAR(gens[2], 100 * s * s * s, 1e-9);
  // The loopback port is exactly saturated.
  EXPECT_NEAR(gens[0] + gens[1] + gens[2], 100.0, 1e-6);
}

TEST(Fluid, CapacitySplit) {
  // §4 and §5: 16 of 32 ports in loopback halves external capacity
  // and lets all of it recirculate once.
  EXPECT_DOUBLE_EQ(external_capacity_fraction(32, 16), 0.5);
  EXPECT_DOUBLE_EQ(single_recirc_fraction(32, 16), 1.0);
  EXPECT_DOUBLE_EQ(external_capacity_fraction(32, 0), 1.0);
  EXPECT_DOUBLE_EQ(single_recirc_fraction(32, 8), 8.0 / 24.0);
  EXPECT_DOUBLE_EQ(single_recirc_fraction(32, 32), 1.0);
}

/// The packet-level feedback-queue simulation must agree with the
/// fluid model within a few percent (the paper's measured Fig. 8(a)
/// "results match our calculations well").
class FluidVsPacketSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FluidVsPacketSweep, Agree) {
  const std::uint32_t k = GetParam();
  QueueSimParams params;
  params.recirculations = k;
  params.slots = 150000;
  params.warmup_slots = 30000;
  auto sim = simulate_recirculation(params);
  const double fluid = recirc_throughput_gbps(params.capacity_gbps, k);
  EXPECT_NEAR(sim.delivered_gbps, fluid, 0.05 * params.capacity_gbps)
      << "k=" << k << " sim=" << sim.delivered_gbps << " fluid=" << fluid;
}

INSTANTIATE_TEST_SUITE_P(Recircs, FluidVsPacketSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(QueueSim, LossGrowsWithRecirculations) {
  QueueSimParams p2, p4;
  p2.recirculations = 2;
  p4.recirculations = 4;
  auto r2 = simulate_recirculation(p2);
  auto r4 = simulate_recirculation(p4);
  EXPECT_GT(r4.loss_fraction, r2.loss_fraction);
}

TEST(QueueSim, NoRecircIsLossless) {
  QueueSimParams p;
  p.recirculations = 0;
  auto r = simulate_recirculation(p);
  EXPECT_DOUBLE_EQ(r.delivered_gbps, p.capacity_gbps);
  EXPECT_DOUBLE_EQ(r.loss_fraction, 0.0);
}

TEST(QueueSim, QueueFillsUnderContention) {
  QueueSimParams p;
  p.recirculations = 3;
  auto r = simulate_recirculation(p);
  // Saturated feedback queue: mean depth close to the configured cap.
  EXPECT_GT(r.mean_queue_depth, p.queue_depth * 0.8);
  EXPECT_GT(r.mean_extra_slots, 0.0);
}

}  // namespace
}  // namespace dejavu::sim
