// Structural checks on emitted artifacts across the whole Fig. 2
// program: every NF table, glue table, parser state, and register of
// the deployment appears in the emitted P4 text and the p4info JSON,
// and the two artifacts agree on the table inventory.
#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "control/p4info.hpp"
#include "p4ir/emit.hpp"

namespace dejavu {
namespace {

TEST(EmittedArtifacts, CoverEveryTable) {
  auto fx = control::make_fig9_deployment();
  const auto& program = fx.deployment->program();
  std::string p4 = p4ir::emit_p4(program, fx.deployment->ids());
  std::string info = control::p4info_json(program);

  std::size_t tables = 0;
  for (const auto& control : program.controls()) {
    for (const auto& table : control.tables()) {
      ++tables;
      // Emitted P4 sanitizes dots to underscores; p4info keeps names.
      std::string sanitized = table.name;
      for (char& c : sanitized) {
        if (c == '.') c = '_';
      }
      EXPECT_NE(p4.find("table " + sanitized), std::string::npos)
          << table.name;
      EXPECT_NE(info.find("\"name\": \"" + table.name + "\""),
                std::string::npos)
          << table.name;
    }
  }
  EXPECT_GE(tables, 15u);  // 5 NFs worth of tables + glue per pipelet
}

TEST(EmittedArtifacts, ParserCoversAllVertices) {
  auto fx = control::make_fig9_deployment();
  const auto& program = fx.deployment->program();
  const auto& ids = fx.deployment->ids();
  std::string p4 = p4ir::emit_p4(program, ids);

  for (std::uint32_t v : program.parser().vertices()) {
    const auto& tuple = ids.tuple_of(v);
    std::string state = "state parse_" + tuple.header_type + "_at_" +
                        std::to_string(tuple.offset);
    EXPECT_NE(p4.find(state), std::string::npos) << state;
  }
}

TEST(EmittedArtifacts, EveryActionAppearsOnce) {
  auto fx = control::make_fig9_deployment();
  const auto& program = fx.deployment->program();
  std::string p4 = p4ir::emit_p4(program, fx.deployment->ids());

  for (const auto& control : program.controls()) {
    for (const auto& action : control.actions()) {
      std::string sanitized = action.name;
      for (char& c : sanitized) {
        if (c == '.') c = '_';
      }
      EXPECT_NE(p4.find("action " + sanitized + "("), std::string::npos)
          << action.name;
    }
  }
}

TEST(EmittedArtifacts, GlueIsCommentedForProvenance) {
  auto fx = control::make_fig9_deployment();
  std::string p4 =
      p4ir::emit_p4(fx.deployment->program(), fx.deployment->ids());
  EXPECT_NE(p4.find("// Generic parser"), std::string::npos);
  EXPECT_NE(p4.find("push_sfc_header();"), std::string::npos);
  EXPECT_NE(p4.find("pop_sfc_header();"), std::string::npos);
}

}  // namespace
}  // namespace dejavu
