#include "control/p4info.hpp"

#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "nf/nfs.hpp"

namespace dejavu::control {
namespace {

TEST(P4Info, DescribesTablesActionsRegisters) {
  p4ir::TupleIdTable ids;
  auto limiter = nf::make_rate_limiter(ids);
  std::string json = p4info_json(limiter);

  EXPECT_NE(json.find("\"name\": \"meter_tbl\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"flow_count\", \"width\": 32, "
                      "\"size\": 8192"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"over_limit\""), std::string::npos);
}

TEST(P4Info, KeysCarryMatchKindsAndWidths) {
  p4ir::TupleIdTable ids;
  auto router = nf::make_router(ids);
  std::string json = p4info_json(router);
  EXPECT_NE(json.find("{\"field\": \"ipv4.dst_addr\", \"match\": \"lpm\", "
                      "\"bits\": 32}"),
            std::string::npos);
}

TEST(P4Info, ComposedProgramListsEveryPipelet) {
  auto fx = make_fig9_deployment();
  std::string json = p4info_json(fx.deployment->program());
  for (const char* control :
       {"pipelet_ingress0", "pipelet_ingress1", "pipelet_egress0",
        "pipelet_egress1"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + control + "\""),
              std::string::npos)
        << control;
  }
  // Qualified NF tables and framework glue are both addressable.
  EXPECT_NE(json.find("\"name\": \"LB.lb_session\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"dejavu_branching\""), std::string::npos);
}

TEST(P4Info, StableAcrossIdenticalBuilds) {
  auto a = make_fig9_deployment();
  auto b = make_fig9_deployment();
  EXPECT_EQ(p4info_json(a.deployment->program()),
            p4info_json(b.deployment->program()));
}

TEST(P4Info, ActionParametersDescribed) {
  p4ir::TupleIdTable ids;
  auto router = nf::make_router(ids);
  std::string json = p4info_json(router);
  EXPECT_NE(json.find("{\"name\": \"port\", \"bits\": 9}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"dmac\", \"bits\": 48}"),
            std::string::npos);
}

}  // namespace
}  // namespace dejavu::control
