#include "net/addr.hpp"

#include <gtest/gtest.h>

namespace dejavu::net {
namespace {

TEST(MacAddr, ParseAndFormat) {
  auto mac = MacAddr::parse("02:00:aB:cd:0e:ff");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:ab:cd:0e:ff");
}

TEST(MacAddr, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddr::parse("02:00:ab:cd:0e").has_value());
  EXPECT_FALSE(MacAddr::parse("02:00:ab:cd:0e:ff:11").has_value());
  EXPECT_FALSE(MacAddr::parse("02:00:ab:cd:0e:gg").has_value());
  EXPECT_FALSE(MacAddr::parse("0200abcd0eff").has_value());
  EXPECT_FALSE(MacAddr::parse("").has_value());
}

TEST(MacAddr, U64RoundTrip) {
  const std::uint64_t v = 0x020011223344;
  EXPECT_EQ(MacAddr::from_u64(v).to_u64(), v);
  EXPECT_EQ(MacAddr::from_u64(v).to_string(), "02:00:11:22:33:44");
}

TEST(Ipv4Addr, ParseAndFormat) {
  auto a = Ipv4Addr::parse("10.1.255.0");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.1.255.0");
  EXPECT_EQ(a->value(), 0x0a01ff00u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.256").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
}

TEST(Ipv4Addr, OctetConstructor) {
  EXPECT_EQ(Ipv4Addr(192, 168, 0, 1).to_string(), "192.168.0.1");
}

TEST(Ipv4Prefix, NormalizesHostBits) {
  Ipv4Prefix p(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(p.address().to_string(), "10.1.0.0");
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, ContainsSemantics) {
  auto p = Ipv4Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(Ipv4Addr(10, 1, 200, 5)));
  EXPECT_FALSE(p->contains(Ipv4Addr(10, 2, 0, 1)));
}

TEST(Ipv4Prefix, ZeroLengthMatchesEverything) {
  auto p = Ipv4Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->mask(), 0u);
  EXPECT_TRUE(p->contains(Ipv4Addr(255, 255, 255, 255)));
}

TEST(Ipv4Prefix, FullLengthIsExact) {
  auto p = Ipv4Prefix::parse("10.0.0.1/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(Ipv4Addr(10, 0, 0, 1)));
  EXPECT_FALSE(p->contains(Ipv4Addr(10, 0, 0, 2)));
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8").has_value());
}

/// Property sweep: mask() has exactly `len` leading ones.
class PrefixMaskSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixMaskSweep, MaskHasLenLeadingOnes) {
  const int len = GetParam();
  Ipv4Prefix p(Ipv4Addr(0xffffffffu), static_cast<std::uint8_t>(len));
  const std::uint32_t mask = p.mask();
  int ones = 0;
  for (int bit = 31; bit >= 0; --bit) {
    if ((mask >> bit) & 1) {
      ++ones;
    } else {
      // No one-bits may follow the first zero.
      EXPECT_EQ(mask & ((1u << bit) - 1) & mask, mask & ((1u << bit) - 1));
      break;
    }
  }
  EXPECT_EQ(ones, len);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixMaskSweep,
                         ::testing::Range(0, 33));

}  // namespace
}  // namespace dejavu::net
