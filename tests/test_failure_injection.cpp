// Failure injection: the system must degrade loudly and predictably
// when state is missing, tables fill up, or the configuration is
// inconsistent — not corrupt packets or loop forever.
#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "nf/nfs.hpp"
#include "sfc/header.hpp"
#include "sim/drop_reason.hpp"
#include "sim/workload.hpp"

namespace dejavu {
namespace {

TEST(FailureInjection, MissingBranchingRuleDropsWithReason) {
  // Build the Fig. 2 deployment, then surgically remove the branching
  // state of one pipelet: packets of affected paths must drop at the
  // branching default, not wander.
  auto fx = control::make_fig9_deployment();
  auto& dp = fx.deployment->dataplane();
  dp.table_in(merge::pipelet_control_name({0, asic::PipeKind::kIngress}),
              merge::kBranchingTable)
      ->clear();

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto out = dp.process(net::Packet::make(spec), 0);
  EXPECT_TRUE(out.dropped);
  EXPECT_EQ(out.drop_code, sim::DropCode::kIngressDrop);
  EXPECT_NE(out.drop_reason.find("ingress pipe 0"), std::string::npos);
}

TEST(FailureInjection, MissingCheckRulesSkipTheNf) {
  // Remove the Router's gate entries: the packet reaches the Router's
  // pipelet but the NF never fires. The branching state still steers
  // the packet to the exit port, so it leaves the switch — with the
  // SFC header still attached and the TTL untouched, exactly the
  // observable symptom a real deployment would show for inconsistent
  // check-table state. (The framework cannot drop it: to the data
  // plane this is a completed chain.)
  auto fx = control::make_fig9_deployment();
  auto& dp = fx.deployment->dataplane();
  for (auto* t : dp.tables_named(merge::check_next_nf_table("Router"))) {
    t->clear();
  }

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto out = fx.deployment->control().inject(net::Packet::make(spec), 0);
  ASSERT_EQ(out.out.size(), 1u);
  const auto& leaked = out.out.front().packet;
  EXPECT_TRUE(leaked.has_sfc_header());            // Router never popped
  EXPECT_EQ(leaked.ipv4(sfc::kSfcHeaderSize)->ttl, 64);  // nor routed
}

TEST(FailureInjection, LbPoolEmptyLeavesPuntVisible) {
  auto fx = control::make_fig9_deployment();
  fx.deployment->control().set_lb_pool({});  // operator forgot backends

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  auto out = fx.deployment->control().inject(net::Packet::make(spec), 0);
  EXPECT_TRUE(out.out.empty());
  ASSERT_EQ(out.to_cpu.size(), 1u);  // surfaced, not lost
  EXPECT_EQ(fx.deployment->control().sessions_learned(), 0u);
}

TEST(FailureInjection, SessionTableFullFailsTheInstallNotTheSwitch) {
  auto fx = control::make_fig9_deployment();
  auto& dp = fx.deployment->dataplane();
  auto tables = dp.tables_named("LB.lb_session");
  ASSERT_EQ(tables.size(), 1u);

  // Shrink-wrap: fill the table to capacity manually.
  const auto capacity = tables[0]->def().max_entries;
  for (std::uint64_t i = 0; i < capacity; ++i) {
    tables[0]->add_exact(
        {i}, sim::ActionCall{"LB.modify_dstIp", {{"dip", 1}}});
  }
  EXPECT_THROW(fx.deployment->control().install_lb_session(
                   0xffffffff, net::Ipv4Addr(10, 1, 2, 1)),
               std::invalid_argument);

  // The data plane itself keeps forwarding other paths.
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  EXPECT_EQ(fx.deployment->control()
                .inject(net::Packet::make(spec), 0)
                .out.size(),
            1u);
}

TEST(FailureInjection, CorruptSfcHeaderDropsAtBranching) {
  // A packet arriving with a forged SFC header referencing an unknown
  // path must be dropped by the branching default, not serviced.
  auto fx = control::make_fig9_deployment();
  net::Packet p = net::Packet::make({});
  sfc::SfcHeader forged;
  forged.service_path_id = 999;  // no such policy
  forged.service_index = 1;
  sfc::push_sfc(p, forged);

  auto out = fx.deployment->dataplane().process(std::move(p), 0);
  EXPECT_TRUE(out.dropped);
  EXPECT_EQ(out.drop_code, sim::DropCode::kIngressDrop);
}

TEST(FailureInjection, TruncatedPacketIsNotServiced) {
  auto fx = control::make_fig9_deployment();
  // 10 bytes: not even a full Ethernet header.
  net::Packet runt(net::Buffer(10));
  auto out = fx.deployment->dataplane().process(std::move(runt), 0);
  EXPECT_TRUE(out.dropped);
  EXPECT_NE(out.drop_code, sim::DropCode::kNone);  // attributed, always
  EXPECT_TRUE(out.out.empty());
}

TEST(FailureInjection, ReinjectLoopIsBounded) {
  // An adversarial control-plane state: LB pool set but the session
  // install goes to a cleared table every time (simulating an install
  // path that silently fails). The punt budget must bound the loop.
  auto fx = control::make_fig9_deployment();
  auto& dp = fx.deployment->dataplane();

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);

  // Clear the session table after every injection step by wrapping:
  // inject once; punt servicing installs + reinjects and succeeds —
  // so instead pre-poison: remove LB pool after learning starts.
  // Simpler adversary: clear sessions between the install and the
  // reinjection is not observable from outside, so check the
  // depth-bounded recursion directly: a freshly cleared table punts
  // again on the reinjected packet only if the install failed; with a
  // working install the flow settles in <= 2 rounds.
  auto out = fx.deployment->control().inject(net::Packet::make(spec), 0);
  EXPECT_EQ(out.out.size(), 1u);
  EXPECT_LE(fx.deployment->control().sessions_learned(), 2u);
  (void)dp;
}

TEST(FailureInjection, UnroutablePolicyRejectedAtBuildTime) {
  // A policy whose traffic arrives on a loopback-only pipeline can
  // never be serviced; Deployment::build must refuse it.
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_router(ids));

  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "impossible",
                .nfs = {sfc::kClassifier, sfc::kRouter},
                .weight = 1.0,
                .in_port = 20,  // pipeline 1...
                .exit_port = 1,
                .terminal_pops_sfc = true});

  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  config.set_pipeline_loopback(1);  // ...which takes no external traffic

  // The build succeeds structurally (ports are not part of placement
  // feasibility), but injecting on a loopback port is refused by the
  // data plane — the failure is explicit at the first packet.
  auto d = control::Deployment::build(std::move(nfs), policies,
                                      std::move(config), std::move(ids));
  auto out = d->dataplane().process(net::Packet::make({}), 20);
  EXPECT_TRUE(out.dropped);
  EXPECT_EQ(out.drop_code, sim::DropCode::kLoopbackPortExternal);
}

}  // namespace
}  // namespace dejavu
