#include "p4ir/parser_graph.hpp"

#include <gtest/gtest.h>

namespace dejavu::p4ir {
namespace {

TEST(TupleIdTable, InternIsIdempotentAndDense) {
  TupleIdTable ids;
  auto a = ids.intern({"ethernet", 0});
  auto b = ids.intern({"ipv4", 14});
  auto a2 = ids.intern({"ethernet", 0});
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids.tuple_of(a).header_type, "ethernet");
}

TEST(TupleIdTable, SameTypeDifferentOffsetIsDistinct) {
  // The §3 insight: ipv4 at offset 14 (plain) and at offset 34
  // (behind the SFC header) are different parse vertices.
  TupleIdTable ids;
  auto plain = ids.intern({"ipv4", 14});
  auto shifted = ids.intern({"ipv4", 34});
  EXPECT_NE(plain, shifted);
}

TEST(TupleIdTable, FindWithoutAssign) {
  TupleIdTable ids;
  EXPECT_FALSE(ids.find({"ethernet", 0}).has_value());
  ids.intern({"ethernet", 0});
  EXPECT_TRUE(ids.find({"ethernet", 0}).has_value());
}

class ParserGraphTest : public ::testing::Test {
 protected:
  TupleIdTable ids;
  ParserGraph g;

  std::uint32_t add(const std::string& type, std::uint32_t off) {
    return g.add_vertex(ids, {type, off});
  }
};

TEST_F(ParserGraphTest, ValidLinearChain) {
  auto eth = add("ethernet", 0);
  auto ip = add("ipv4", 14);
  auto tcp = add("tcp", 34);
  g.set_start(eth);
  g.add_edge({eth, ip, "ethernet.ether_type", 0x0800, false});
  g.add_edge({ip, tcp, "ipv4.protocol", 6, false});
  std::string why;
  EXPECT_TRUE(g.validate(ids, &why)) << why;
}

TEST_F(ParserGraphTest, UnreachableVertexFailsValidation) {
  auto eth = add("ethernet", 0);
  add("ipv4", 14);  // never connected
  g.set_start(eth);
  std::string why;
  EXPECT_FALSE(g.validate(ids, &why));
  EXPECT_NE(why.find("unreachable"), std::string::npos);
}

TEST_F(ParserGraphTest, NonAdvancingEdgeFailsValidation) {
  auto eth = add("ethernet", 0);
  auto bad = add("ipv4", 0);  // same offset: cannot advance
  g.set_start(eth);
  g.add_edge({eth, bad, "ethernet.ether_type", 0x0800, false});
  std::string why;
  EXPECT_FALSE(g.validate(ids, &why));
  EXPECT_NE(why.find("advance"), std::string::npos);
}

TEST_F(ParserGraphTest, ConflictingSelectorThrows) {
  auto eth = add("ethernet", 0);
  auto ip = add("ipv4", 14);
  auto sfc = add("sfc", 14);
  g.set_start(eth);
  g.add_edge({eth, ip, "ethernet.ether_type", 0x0800, false});
  // Same selector value to a different vertex: a merge conflict.
  EXPECT_THROW(
      g.add_edge({eth, sfc, "ethernet.ether_type", 0x0800, false}),
      std::invalid_argument);
}

TEST_F(ParserGraphTest, DuplicateEdgeIsIdempotent) {
  auto eth = add("ethernet", 0);
  auto ip = add("ipv4", 14);
  g.set_start(eth);
  ParserEdge e{eth, ip, "ethernet.ether_type", 0x0800, false};
  g.add_edge(e);
  g.add_edge(e);
  EXPECT_EQ(g.edges().size(), 1u);
}

TEST_F(ParserGraphTest, ConflictingDefaultsThrow) {
  auto eth = add("ethernet", 0);
  auto ip = add("ipv4", 14);
  auto sfc = add("sfc", 14);
  g.set_start(eth);
  g.add_edge({eth, ip, "", 0, true});
  EXPECT_THROW(g.add_edge({eth, sfc, "", 0, true}), std::invalid_argument);
}

TEST_F(ParserGraphTest, OutEdgesPutDefaultLast) {
  auto eth = add("ethernet", 0);
  auto ip = add("ipv4", 14);
  auto sfc = add("sfc", 14);
  g.set_start(eth);
  g.add_edge({eth, sfc, "", 0, true});  // default first in insertion
  g.add_edge({eth, ip, "ethernet.ether_type", 0x0800, false});
  auto out = g.out_edges(eth);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].is_default);
  EXPECT_TRUE(out[1].is_default);
}

TEST_F(ParserGraphTest, EdgeToUnknownVertexThrows) {
  auto eth = add("ethernet", 0);
  g.set_start(eth);
  EXPECT_THROW(g.add_edge({eth, 999, "f", 0, false}),
               std::invalid_argument);
}

TEST_F(ParserGraphTest, StartMustBeAVertex) {
  EXPECT_THROW(g.set_start(42), std::invalid_argument);
}

TEST_F(ParserGraphTest, NoStartFailsValidation) {
  add("ethernet", 0);
  std::string why;
  EXPECT_FALSE(g.validate(ids, &why));
  EXPECT_NE(why.find("start"), std::string::npos);
}

}  // namespace
}  // namespace dejavu::p4ir
