// Structural invariants of the traversal planner over random chains
// and placements: alternation of pipe kinds, complete in-order NF
// coverage, loop counting consistency, and cost monotonicity.
#include <gtest/gtest.h>

#include <random>

#include "place/optimizer.hpp"

namespace dejavu::place {
namespace {

using asic::PipeKind;
using merge::CompositionKind;

struct RandomInstance {
  sfc::PolicySet policies;
  Placement placement;
};

RandomInstance make_instance(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> n_nfs(2, 7);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<std::string> nfs;
  const int n = n_nfs(rng);
  for (int i = 0; i < n; ++i) nfs.push_back("N" + std::to_string(i));

  RandomInstance inst;
  inst.policies.add({.path_id = 1,
                     .name = "chain",
                     .nfs = nfs,
                     .weight = 1.0,
                     .in_port = 0,
                     .exit_port = static_cast<std::uint16_t>(
                         coin(rng) ? 1 : 20)});

  std::vector<asic::PipeletId> pipelets = {{0, PipeKind::kIngress},
                                           {0, PipeKind::kEgress},
                                           {1, PipeKind::kIngress},
                                           {1, PipeKind::kEgress}};
  std::uniform_int_distribution<std::size_t> pick(0, pipelets.size() - 1);
  std::vector<merge::PipeletAssignment> assignment;
  for (const auto& id : pipelets) {
    assignment.push_back({id,
                          coin(rng) ? CompositionKind::kSequential
                                    : CompositionKind::kParallel,
                          {}});
  }
  assignment[0].nfs.push_back(nfs[0]);  // entry NF at arrival ingress
  for (std::size_t i = 1; i < nfs.size(); ++i) {
    assignment[pick(rng)].nfs.push_back(nfs[i]);
  }
  std::erase_if(assignment, [](const merge::PipeletAssignment& pa) {
    return pa.nfs.empty();
  });
  inst.placement = Placement(std::move(assignment));
  return inst;
}

class TraversalSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraversalSweep, StructuralInvariantsHold) {
  std::mt19937_64 rng(GetParam());
  auto spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};

  for (int round = 0; round < 10; ++round) {
    auto inst = make_instance(rng);
    const auto& policy = inst.policies.policies()[0];
    Traversal t = plan_traversal(policy, inst.placement, spec, env);
    ASSERT_TRUE(t.feasible) << inst.placement.to_string();
    ASSERT_FALSE(t.steps.empty());

    // (1) Step structure: starts at the arrival ingress, ends with a
    // single kOut from an egress pipe.
    EXPECT_EQ(t.steps.front().pipelet.pipeline,
              spec.pipeline_of_port(policy.in_port));
    EXPECT_EQ(t.steps.front().pipelet.kind, PipeKind::kIngress);
    EXPECT_EQ(t.steps.back().exit_via, TraversalStep::Exit::kOut);
    EXPECT_EQ(t.steps.back().pipelet.kind, PipeKind::kEgress);
    EXPECT_EQ(t.steps.back().pipelet.pipeline,
              spec.pipeline_of_port(policy.exit_port));

    std::uint32_t recircs = 0, resubs = 0;
    for (std::size_t i = 0; i < t.steps.size(); ++i) {
      const TraversalStep& step = t.steps[i];
      switch (step.exit_via) {
        case TraversalStep::Exit::kToEgress:
          // Ingress only, and the next step is an egress pipe.
          EXPECT_EQ(step.pipelet.kind, PipeKind::kIngress);
          ASSERT_LT(i + 1, t.steps.size());
          EXPECT_EQ(t.steps[i + 1].pipelet.kind, PipeKind::kEgress);
          break;
        case TraversalStep::Exit::kResubmit:
          EXPECT_EQ(step.pipelet.kind, PipeKind::kIngress);
          ASSERT_LT(i + 1, t.steps.size());
          EXPECT_EQ(t.steps[i + 1].pipelet, step.pipelet);
          ++resubs;
          break;
        case TraversalStep::Exit::kRecirculate:
          EXPECT_EQ(step.pipelet.kind, PipeKind::kEgress);
          ASSERT_LT(i + 1, t.steps.size());
          EXPECT_EQ(t.steps[i + 1].pipelet.kind, PipeKind::kIngress);
          // Constraint (d): recirculation stays within the pipeline.
          EXPECT_EQ(t.steps[i + 1].pipelet.pipeline,
                    step.pipelet.pipeline);
          ++recircs;
          break;
        case TraversalStep::Exit::kOut:
          EXPECT_EQ(i, t.steps.size() - 1);
          break;
      }
    }
    // (2) Loop counters agree with the step structure.
    EXPECT_EQ(t.recirculations, recircs);
    EXPECT_EQ(t.resubmissions, resubs);

    // (3) The executed NFs, concatenated across steps, are exactly
    // the chain in order.
    std::vector<std::string> executed;
    for (const auto& step : t.steps) {
      executed.insert(executed.end(), step.executed.begin(),
                      step.executed.end());
    }
    EXPECT_EQ(executed, policy.nfs) << inst.placement.to_string();

    // (4) Every NF ran on the pipelet it was placed on.
    for (const auto& step : t.steps) {
      for (const auto& nf : step.executed) {
        auto loc = inst.placement.find(nf);
        ASSERT_TRUE(loc.has_value());
        EXPECT_EQ(loc->pipelet, step.pipelet) << nf;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraversalSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(CostMonotonicity, AddingAChainNeverLowersTheCost) {
  auto spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};
  StageModel model;

  sfc::PolicySet one;
  one.add({.path_id = 1,
           .name = "a",
           .nfs = {"C", "X"},
           .weight = 1.0,
           .in_port = 0,
           .exit_port = 1});
  sfc::PolicySet two = one;
  two.add({.path_id = 2,
           .name = "b",
           .nfs = {"C", "Y"},
           .weight = 1.0,
           .in_port = 0,
           .exit_port = 1});

  // For any fixed placement covering both, cost(two) >= cost(one).
  Placement placement({
      {{0, asic::PipeKind::kIngress},
       CompositionKind::kSequential,
       {"C", "X"}},
      {{1, asic::PipeKind::kIngress},
       CompositionKind::kSequential,
       {"Y"}},
  });
  double c1 = placement_cost(one, placement, spec, env, model);
  double c2 = placement_cost(two, placement, spec, env, model);
  EXPECT_GE(c2, c1);
}

}  // namespace
}  // namespace dejavu::place
