// Weight sensitivity of the §3.3 objective: "each SFC policy may carry
// a weight reflecting the percentage of traffic following that
// chaining policy ... minimize the weighted sum of the number of
// recirculations for all service chains." When two chains contend for
// the cheap pipelets, flipping the weights must flip who gets them.
#include <gtest/gtest.h>

#include "place/optimizer.hpp"

namespace dejavu::place {
namespace {

/// Two chains sharing the entry NF but diverging after it. The stage
/// model only allows two NFs per pipelet, so one chain's tail gets the
/// free ingress->egress hop and the other pays a recirculation.
sfc::PolicySet contending_policies(double w_first, double w_second) {
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "first",
           .nfs = {"C", "X1", "X2"},
           .weight = w_first,
           .in_port = 0,
           .exit_port = 1});
  set.add({.path_id = 2,
           .name = "second",
           .nfs = {"C", "Y1", "Y2"},
           .weight = w_second,
           .in_port = 0,
           .exit_port = 1});
  return set;
}

StageModel tight_model() {
  StageModel model;
  model.default_nf_stages = 3;  // + 2 glue: two NFs max per pipelet
  return model;
}

double chain_recircs(const sfc::PolicySet& policies, std::uint16_t path_id,
                     const Placement& placement,
                     const asic::TargetSpec& spec) {
  TraversalEnv env{.pipelines = spec.pipelines, .can_recirculate = {}};
  auto t = plan_traversal(*policies.find(path_id), placement, spec, env);
  EXPECT_TRUE(t.feasible) << t.infeasible_reason;
  return t.recirculations;
}

TEST(WeightedPlacement, HeavyChainGetsTheCheaperLayout) {
  auto spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = spec.pipelines, .can_recirculate = {}};

  auto heavy_first = contending_policies(0.9, 0.1);
  auto r1 = exhaustive_optimize(heavy_first, spec, env, tight_model());
  ASSERT_TRUE(r1.feasible);

  auto heavy_second = contending_policies(0.1, 0.9);
  auto r2 = exhaustive_optimize(heavy_second, spec, env, tight_model());
  ASSERT_TRUE(r2.feasible);

  // Whoever is heavy must do at least as well as the light chain in
  // the same solution.
  EXPECT_LE(chain_recircs(heavy_first, 1, r1.placement, spec),
            chain_recircs(heavy_first, 2, r1.placement, spec));
  EXPECT_LE(chain_recircs(heavy_second, 2, r2.placement, spec),
            chain_recircs(heavy_second, 1, r2.placement, spec));
}

TEST(WeightedPlacement, ObjectiveIsTheWeightedSum) {
  auto spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = spec.pipelines, .can_recirculate = {}};
  env.resubmission_weight = 0;  // the paper's literal objective

  auto policies = contending_policies(0.75, 0.25);
  auto result = exhaustive_optimize(policies, spec, env, tight_model());
  ASSERT_TRUE(result.feasible);

  double expected = 0;
  for (const auto& policy : policies.policies()) {
    auto t = plan_traversal(policy, result.placement, spec, env);
    expected += policy.weight * t.recirculations;
  }
  EXPECT_NEAR(result.cost, expected, 1e-9);
}

TEST(WeightedPlacement, ZeroWeightChainsDoNotDistort) {
  auto spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = spec.pipelines, .can_recirculate = {}};
  env.resubmission_weight = 0;

  auto lopsided = contending_policies(1.0, 0.0);
  auto result = exhaustive_optimize(lopsided, spec, env, tight_model());
  ASSERT_TRUE(result.feasible);
  // All cost concentrated on chain 1: the optimum serves it free.
  EXPECT_NEAR(chain_recircs(lopsided, 1, result.placement, spec), 0, 1e-9);
  EXPECT_NEAR(result.cost, 0, 1e-9);
}

TEST(WeightedPlacement, AnnealTracksWeightFlip) {
  auto spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = spec.pipelines, .can_recirculate = {}};
  AnnealParams params;
  params.iterations = 20000;
  params.seed = 3;

  auto heavy_first = contending_policies(0.9, 0.1);
  auto exact = exhaustive_optimize(heavy_first, spec, env, tight_model());
  auto annealed =
      anneal_optimize(heavy_first, spec, env, tight_model(), params);
  ASSERT_TRUE(annealed.feasible);
  EXPECT_LE(annealed.cost, exact.cost + 0.5);
}

}  // namespace
}  // namespace dejavu::place
