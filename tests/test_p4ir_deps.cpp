// Dependency analysis tests against the NSDI '15 classification the
// paper leans on for composition and stage placement.
#include "p4ir/deps.hpp"

#include <gtest/gtest.h>

namespace dejavu::p4ir {
namespace {

/// A control block with one table writing `writes` and matching
/// `matches`.
ControlBlock one_table_block(const std::string& name,
                             std::vector<std::string> matches,
                             std::vector<std::string> writes,
                             std::vector<std::string> action_reads = {}) {
  ControlBlock block(name);
  Action act;
  act.name = name + "_act";
  for (auto& w : writes) act.primitives.push_back(set_imm(w, 1));
  for (auto& r : action_reads) {
    act.primitives.push_back(copy_field("scratch.sink", r));
  }
  block.add_action(act);
  Table t;
  t.name = name + "_tbl";
  for (auto& m : matches) {
    t.keys.push_back(TableKey{m, MatchKind::kExact, 8});
  }
  t.actions = {act.name};
  t.default_action = act.name;
  block.add_table(t);
  block.apply_table(t.name);
  return block;
}

DepKind dep_between(const DependencyGraph& g, std::size_t from,
                    std::size_t to) {
  for (const Dependency& d : g.deps) {
    if (d.from == from && d.to == to) return d.kind;
  }
  return DepKind::kNone;
}

TEST(Deps, MatchDependency) {
  auto a = one_table_block("a", {"ipv4.src_addr"}, {"ipv4.dst_addr"});
  auto b = one_table_block("b", {"ipv4.dst_addr"}, {"ipv4.ttl"});
  auto g = analyze_dependencies({&a, &b}, /*sequential_barriers=*/false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kMatch);
  // Match deps force strictly later stages.
  EXPECT_EQ(g.min_stages(), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(g.critical_path_stages(), 2u);
}

TEST(Deps, ActionWriteReadDependency) {
  auto a = one_table_block("a", {}, {"ipv4.ttl"});
  auto b = one_table_block("b", {"ipv4.src_addr"}, {}, {"ipv4.ttl"});
  auto g = analyze_dependencies({&a, &b}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kAction);
}

TEST(Deps, ActionWriteWriteDependency) {
  auto a = one_table_block("a", {}, {"ipv4.ttl"});
  auto b = one_table_block("b", {}, {"ipv4.ttl"});
  auto g = analyze_dependencies({&a, &b}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kAction);
}

TEST(Deps, MatchBeatsActionWhenBothApply) {
  // a writes a field that b both matches on and writes: classify as
  // the stronger (match) dependency.
  auto a = one_table_block("a", {}, {"ipv4.ttl"});
  auto b = one_table_block("b", {"ipv4.ttl"}, {"ipv4.ttl"});
  auto g = analyze_dependencies({&a, &b}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kMatch);
}

TEST(Deps, IndependentTablesShareStages) {
  auto a = one_table_block("a", {"ipv4.src_addr"}, {"ipv4.ttl"});
  auto b = one_table_block("b", {"ipv4.dst_addr"}, {"tcp.window"});
  auto g = analyze_dependencies({&a, &b}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kNone);
  EXPECT_EQ(g.critical_path_stages(), 1u);
}

TEST(Deps, SequentialBarrierForcesStageAdvance) {
  // Independent tables, but composed sequentially: the §3.2 implicit
  // dependency still forces separate stages.
  auto a = one_table_block("a", {"ipv4.src_addr"}, {"ipv4.ttl"});
  auto b = one_table_block("b", {"ipv4.dst_addr"}, {"tcp.window"});
  auto g = analyze_dependencies({&a, &b}, /*sequential_barriers=*/true);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kAction);
  EXPECT_EQ(g.critical_path_stages(), 2u);
}

TEST(Deps, SuccessorDependencyAllowsStageSharing) {
  ControlBlock block("combo");
  Action act;
  act.name = "nop";
  block.add_action(act);

  Table gate;
  gate.name = "gate";
  gate.keys = {TableKey{"ipv4.ttl", MatchKind::kExact, 8}};
  gate.actions = {"nop"};
  block.add_table(gate);

  Table body;
  body.name = "body";
  body.keys = {TableKey{"ipv4.src_addr", MatchKind::kExact, 32}};
  body.actions = {"nop"};
  block.add_table(body);

  block.apply_table("gate");
  ApplyEntry gated;
  gated.table = "body";
  gated.guard_tables = {"gate"};
  gated.mode = GuardMode::kIfHit;
  block.apply(gated);

  auto g = analyze_dependencies({&block}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kSuccessor);
  // Successor deps may share a stage.
  EXPECT_EQ(g.critical_path_stages(), 1u);
}

TEST(Deps, MutuallyExclusiveBranchesHaveNoDeps) {
  ControlBlock block("par");
  Action set_ttl;
  set_ttl.name = "set_ttl";
  set_ttl.primitives = {set_imm("ipv4.ttl", 1)};
  block.add_action(set_ttl);

  for (const char* name : {"lb", "fw"}) {
    Table t;
    t.name = name;
    t.keys = {TableKey{"ipv4.dst_addr", MatchKind::kExact, 32}};
    t.actions = {"set_ttl"};
    block.add_table(t);
  }
  ApplyEntry lb;
  lb.table = "lb";
  lb.branch_id = "LB";
  block.apply(lb);
  ApplyEntry fw;
  fw.table = "fw";
  fw.branch_id = "FW";
  block.apply(fw);

  // Both write ipv4.ttl, which would be an action dependency — but
  // the branches are mutually exclusive, so none arises and the
  // tables overlay in one stage (the parallel-composition payoff).
  auto g = analyze_dependencies({&block}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kNone);
  EXPECT_EQ(g.critical_path_stages(), 1u);
}

TEST(Deps, GuardFieldCreatesMatchDependency) {
  // a writes sfc.service_index; b is applied under a gateway reading
  // it -> the gateway match forces b into a later stage.
  auto a = one_table_block("a", {}, {"sfc.service_index"});
  ControlBlock b("b");
  Action nop;
  nop.name = "nop";
  b.add_action(nop);
  Table t;
  t.name = "b_tbl";
  t.keys = {TableKey{"ipv4.src_addr", MatchKind::kExact, 32}};
  t.actions = {"nop"};
  b.add_table(t);
  ApplyEntry e;
  e.table = "b_tbl";
  e.field_guard = FieldGuard{"sfc.service_index", 2, false};
  b.apply(e);

  auto g = analyze_dependencies({&a, &b}, false);
  EXPECT_EQ(dep_between(g, 0, 1), DepKind::kMatch);
}

TEST(Deps, MinStagesChainsTransitively) {
  auto a = one_table_block("a", {}, {"ipv4.ttl"});
  auto b = one_table_block("b", {"ipv4.ttl"}, {"tcp.window"});
  auto c = one_table_block("c", {"tcp.window"}, {});
  auto g = analyze_dependencies({&a, &b, &c}, false);
  EXPECT_EQ(g.min_stages(), (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(g.critical_path_stages(), 3u);
}

}  // namespace
}  // namespace dejavu::p4ir
