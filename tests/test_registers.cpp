// Stateful (register) processing: primitive semantics in the
// executor, resource accounting, emission, and the rate-limiter NF end
// to end in a deployed chain.
#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "merge/compose.hpp"
#include "nf/nfs.hpp"
#include "nf/parser_lib.hpp"
#include "p4ir/emit.hpp"
#include "sim/dataplane.hpp"

namespace dejavu {
namespace {

using p4ir::Action;
using p4ir::ControlBlock;
using p4ir::RegisterDef;
using p4ir::Table;

TEST(RegisterDefs, ControlBlockValidation) {
  ControlBlock c("c");
  c.add_register(RegisterDef{"r", 32, 16});
  EXPECT_THROW(c.add_register(RegisterDef{"r", 32, 16}),
               std::invalid_argument);
  EXPECT_THROW(c.add_register(RegisterDef{"bad", 0, 16}),
               std::invalid_argument);
  EXPECT_THROW(c.add_register(RegisterDef{"bad", 65, 16}),
               std::invalid_argument);
  EXPECT_THROW(c.add_register(RegisterDef{"bad", 32, 0}),
               std::invalid_argument);
  EXPECT_NE(c.find_register("r"), nullptr);
  EXPECT_EQ(c.find_register("x"), nullptr);
}

TEST(RegisterDefs, UnknownRegisterRefFailsValidate) {
  ControlBlock c("c");
  Action a;
  a.name = "a";
  a.primitives = {p4ir::register_add("ghost", "local.i", 1)};
  c.add_action(a);
  std::string why;
  EXPECT_FALSE(c.validate(&why));
  EXPECT_NE(why.find("ghost"), std::string::npos);
}

TEST(RegisterResources, ChargedToTheTableStage) {
  ControlBlock c("c");
  c.add_register(RegisterDef{"big", 32, 65536});  // 2M bits = 16 blocks
  Action a;
  a.name = "a";
  a.primitives = {p4ir::register_add("big", "local.i", 1)};
  c.add_action(a);
  Table t;
  t.name = "t";
  t.default_action = "a";
  t.max_entries = 1;
  t.registers = {"big"};
  c.add_table(t);
  auto r = p4ir::estimate_table(c, *c.find_table("t"), false);
  EXPECT_EQ(r.sram_blocks, 16u);
}

/// Executor-level register semantics on a minimal program.
class RegisterExec : public ::testing::Test {
 protected:
  RegisterExec() : config(asic::TargetSpec::mini()), program("p") {
    nf::add_standard_parser(program, ids);

    ControlBlock c(
        merge::pipelet_control_name({0, asic::PipeKind::kIngress}));
    c.add_register(RegisterDef{"cells", 8, 4});  // 8-bit cells, size 4

    Action bump;
    bump.name = "bump";
    bump.primitives = {
        p4ir::register_add("cells", "ipv4.ttl", 1, "local.seen"),
        p4ir::copy_field("ipv4.dscp_ecn", "local.seen"),
        p4ir::set_imm("standard_metadata.egress_spec", 1),
    };
    c.add_action(bump);
    Table t;
    t.name = "t";
    t.default_action = "bump";
    t.registers = {"cells"};
    c.add_table(t);
    c.apply_table("t");
    program.add_control(std::move(c));
  }

  p4ir::TupleIdTable ids;
  asic::SwitchConfig config;
  p4ir::Program program;
};

TEST_F(RegisterExec, StatePersistsAcrossPackets) {
  sim::DataPlane dp(program, ids, config);
  net::PacketSpec spec;
  spec.ttl = 2;  // index 2

  for (int i = 1; i <= 3; ++i) {
    auto out = dp.process(net::Packet::make(spec), 0);
    ASSERT_EQ(out.out.size(), 1u);
    // The packet carries back the post-increment counter value.
    EXPECT_EQ(out.out.front().packet.ipv4()->dscp_ecn, i);
  }
  auto* cells = dp.register_array(
      merge::pipelet_control_name({0, asic::PipeKind::kIngress}), "cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ((*cells)[2], 3u);
  EXPECT_EQ((*cells)[0], 0u);
}

TEST_F(RegisterExec, IndexWrapsModuloSize) {
  sim::DataPlane dp(program, ids, config);
  net::PacketSpec spec;
  spec.ttl = 6;  // 6 % 4 = cell 2
  dp.process(net::Packet::make(spec), 0);
  auto* cells = dp.register_array(
      merge::pipelet_control_name({0, asic::PipeKind::kIngress}), "cells");
  EXPECT_EQ((*cells)[2], 1u);
}

TEST_F(RegisterExec, ValueWrapsAtCellWidth) {
  sim::DataPlane dp(program, ids, config);
  net::PacketSpec spec;
  spec.ttl = 1;
  auto* cells = dp.register_array(
      merge::pipelet_control_name({0, asic::PipeKind::kIngress}), "cells");
  (*cells)[1] = 0xff;  // 8-bit cell at max
  auto out = dp.process(net::Packet::make(spec), 0);
  EXPECT_EQ((*cells)[1], 0u);  // wrapped
  EXPECT_EQ(out.out.front().packet.ipv4()->dscp_ecn, 0);
}

TEST(RateLimiterNf, DropsFlowsOverThreshold) {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_rate_limiter(ids, /*packet_threshold=*/5));
  nfs.push_back(nf::make_router(ids));

  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "limited",
                .nfs = {sfc::kClassifier, "Limiter", sfc::kRouter},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1,
                .terminal_pops_sfc = true});

  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  auto d = control::Deployment::build(std::move(nfs), policies,
                                      std::move(config), std::move(ids));
  auto& cp = d->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .protocol = std::nullopt,
                        .priority = 0,
                        .path_id = 1,
                        .tenant = 1});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                .port = 1,
                .next_hop_mac = net::MacAddr::from_u64(0x42)});

  net::PacketSpec flow;
  flow.ip_src = net::Ipv4Addr(192, 168, 7, 7);
  flow.src_port = 5555;

  int delivered = 0, dropped = 0;
  for (int i = 0; i < 12; ++i) {
    auto out = cp.inject(net::Packet::make(flow), 0);
    delivered += !out.out.empty();
    dropped += out.dropped;
  }
  // Packets 1..5 pass (count <= threshold), 6..12 exceed it.
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(dropped, 7);

  // An unrelated flow is unaffected (its own register cell).
  net::PacketSpec other = flow;
  other.src_port = 5556;
  EXPECT_EQ(cp.inject(net::Packet::make(other), 0).out.size(), 1u);
}

TEST(RateLimiterNf, EmitsRegisterConstructs) {
  p4ir::TupleIdTable ids;
  auto limiter = nf::make_rate_limiter(ids, 100);
  std::string p4 = p4ir::emit_p4(limiter, ids);
  EXPECT_NE(p4.find("register<bit<32>>(8192) flow_count;"),
            std::string::npos);
  EXPECT_NE(p4.find("flow_count.add(local_flowIdx, 1) -> local_count;"),
            std::string::npos);
  EXPECT_NE(p4.find("if (local_count > 100)"), std::string::npos);
}

}  // namespace
}  // namespace dejavu
