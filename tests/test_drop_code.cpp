// The DropCode vocabulary is an interface: JSON output, chaos
// invariants, and the update-drain accounting all key on the slugs.
// These tests keep the code <-> slug <-> description mapping total and
// bijective, so adding a code without wiring every table is a test
// failure, not a silent "unknown".
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/drop_reason.hpp"

namespace {

using namespace dejavu;
using sim::DropCode;

TEST(DropCode, EveryCodeRoundTripsThroughItsSlug) {
  std::set<std::string> slugs;
  for (DropCode code : sim::kAllDropCodes) {
    const std::string slug = sim::drop_code_name(code);
    EXPECT_NE(slug, "unknown") << "code " << static_cast<int>(code);
    EXPECT_TRUE(slugs.insert(slug).second) << "duplicate slug " << slug;
    const auto back = sim::drop_code_from_name(slug);
    ASSERT_TRUE(back.has_value()) << slug;
    EXPECT_EQ(*back, code) << slug;
  }
  // kAllDropCodes covers the enum except kNone: the count pins the
  // list against codes added to the enum but not the table.
  EXPECT_EQ(slugs.size(),
            static_cast<std::size_t>(DropCode::kUpdateDrained));
}

TEST(DropCode, NoneRoundTripsToo) {
  EXPECT_STREQ(sim::drop_code_name(DropCode::kNone), "none");
  EXPECT_EQ(sim::drop_code_from_name("none"), DropCode::kNone);
}

TEST(DropCode, EveryCodeHasADescription) {
  for (DropCode code : sim::kAllDropCodes) {
    const std::string description = sim::drop_code_description(code);
    EXPECT_FALSE(description.empty());
    EXPECT_NE(description, "unknown drop code")
        << sim::drop_code_name(code);
  }
}

TEST(DropCode, UpdateDrainedIsWiredEverywhere) {
  EXPECT_STREQ(sim::drop_code_name(DropCode::kUpdateDrained),
               "update-drained");
  EXPECT_EQ(sim::drop_code_from_name("update-drained"),
            DropCode::kUpdateDrained);
  const std::string description =
      sim::drop_code_description(DropCode::kUpdateDrained);
  EXPECT_NE(description.find("retired epoch"), std::string::npos);
}

TEST(DropCode, UnknownSlugsAreRejected) {
  EXPECT_EQ(sim::drop_code_from_name(""), std::nullopt);
  EXPECT_EQ(sim::drop_code_from_name("not-a-code"), std::nullopt);
  EXPECT_EQ(sim::drop_code_from_name("Update-Drained"), std::nullopt);
}

}  // namespace
