#include "net/packet.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace dejavu::net {
namespace {

TEST(Packet, MakeTcpHasCoherentHeaders) {
  PacketSpec spec;
  spec.ip_src = Ipv4Addr(10, 0, 0, 1);
  spec.ip_dst = Ipv4Addr(10, 0, 0, 2);
  spec.src_port = 1234;
  spec.dst_port = 80;
  spec.payload_size = 10;
  Packet p = Packet::make(spec);

  auto eth = p.ethernet();
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->ether_type, kEtherTypeIpv4);

  auto ip = p.ipv4();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->protocol, kIpProtoTcp);
  EXPECT_EQ(ip->total_length, 20u + 20u + 10u);
  EXPECT_EQ(p.size(), 14u + 50u);

  auto tcp = p.tcp();
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->src_port, 1234);
  EXPECT_EQ(tcp->dst_port, 80);
}

TEST(Packet, MakeUdp) {
  PacketSpec spec;
  spec.protocol = kIpProtoUdp;
  spec.payload_size = 6;
  Packet p = Packet::make(spec);
  auto udp = p.udp();
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->length, 8u + 6u);
  EXPECT_FALSE(p.tcp().has_value());
}

TEST(Packet, MakeIpChecksumIsValid) {
  Packet p = Packet::make({});
  auto ip = p.ipv4();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->checksum, ip->compute_checksum());
}

TEST(Packet, FiveTupleExtraction) {
  PacketSpec spec;
  spec.ip_src = Ipv4Addr(1, 1, 1, 1);
  spec.ip_dst = Ipv4Addr(2, 2, 2, 2);
  spec.src_port = 1111;
  spec.dst_port = 2222;
  Packet p = Packet::make(spec);

  auto t = p.five_tuple();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->src, spec.ip_src);
  EXPECT_EQ(t->dst, spec.ip_dst);
  EXPECT_EQ(t->protocol, kIpProtoTcp);
  EXPECT_EQ(t->src_port, 1111);
  EXPECT_EQ(t->dst_port, 2222);
}

TEST(Packet, SetIpv4RewritesInPlace) {
  Packet p = Packet::make({});
  auto ip = *p.ipv4();
  ip.dst = Ipv4Addr(99, 99, 99, 99);
  p.set_ipv4(ip);
  EXPECT_EQ(p.ipv4()->dst, Ipv4Addr(99, 99, 99, 99));
}

TEST(Packet, SetTcpOnUdpPacketThrows) {
  PacketSpec spec;
  spec.protocol = kIpProtoUdp;
  Packet p = Packet::make(spec);
  EXPECT_THROW(p.set_tcp(TcpHeader{}), std::logic_error);
}

TEST(Packet, TruncatedFrameYieldsNullopts) {
  Packet p(Buffer(8));
  EXPECT_FALSE(p.ethernet().has_value());
  EXPECT_FALSE(p.ipv4().has_value());
  EXPECT_FALSE(p.five_tuple().has_value());
}

TEST(FiveTuple, SessionHashMatchesManualCrc) {
  FiveTuple t{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 6, 1234, 80};
  Crc32 crc;
  crc.add_u32(t.src.value());
  crc.add_u32(t.dst.value());
  crc.add_u8(t.protocol);
  crc.add_u16(t.src_port);
  crc.add_u16(t.dst_port);
  EXPECT_EQ(t.session_hash(), crc.finish());
}

TEST(FiveTuple, HashDistinguishesFlows) {
  FiveTuple a{Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2), 6, 1234, 80};
  FiveTuple b = a;
  b.src_port = 1235;
  EXPECT_NE(a.session_hash(), b.session_hash());
}

}  // namespace
}  // namespace dejavu::net
