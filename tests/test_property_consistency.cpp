// The central correctness property of the whole system (§3.2/§3.4):
// for ANY feasible placement of the Fig. 2 NFs, the composed program
// running on the behavioral data plane must (a) produce exactly the
// same packet edits as the chain run in order, and (b) take exactly
// the number of resubmissions/recirculations the placement planner
// predicted. Sweeps randomized placements, seeded and deterministic.
#include <gtest/gtest.h>

#include <random>

#include "control/deployment.hpp"
#include "nf/nfs.hpp"
#include "sfc/header.hpp"

namespace dejavu {
namespace {

using asic::PipeKind;
using merge::CompositionKind;

/// Generate a random (not necessarily good) placement of the five
/// Fig. 2 NFs: Classifier pinned to ingress 0 (arrival), everything
/// else anywhere, random order within pipelets, random composition
/// kind per pipelet.
place::Placement random_placement(std::mt19937_64& rng) {
  const std::vector<asic::PipeletId> pipelets = {
      {0, PipeKind::kIngress},
      {0, PipeKind::kEgress},
      {1, PipeKind::kIngress},
      {1, PipeKind::kEgress},
  };
  std::uniform_int_distribution<std::size_t> pick(0, pipelets.size() - 1);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<merge::PipeletAssignment> assignment;
  for (const auto& id : pipelets) {
    assignment.push_back({id,
                          coin(rng) ? CompositionKind::kSequential
                                    : CompositionKind::kParallel,
                          {}});
  }
  assignment[0].nfs.push_back(sfc::kClassifier);
  std::vector<std::string> rest = {sfc::kFirewall, sfc::kVgw,
                                   sfc::kLoadBalancer, sfc::kRouter};
  std::shuffle(rest.begin(), rest.end(), rng);
  for (const auto& nf : rest) {
    assignment[pick(rng)].nfs.push_back(nf);
  }
  std::erase_if(assignment, [](const merge::PipeletAssignment& pa) {
    return pa.nfs.empty();
  });
  return place::Placement(std::move(assignment));
}

class PlacementConsistencySweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementConsistencySweep, ExecutorAgreesWithPlanner) {
  std::mt19937_64 rng(GetParam());
  place::Placement placement = random_placement(rng);

  control::Fig2Deployment fx;
  try {
    fx = control::make_fig2_deployment(placement);
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "infeasible placement: " << placement.to_string();
  }
  auto& cp = fx.deployment->control();

  struct Case {
    std::uint16_t path_id;
    net::Ipv4Addr dst;
    net::Ipv4Addr expect_dst;  // 0.0.0.0 = "one of the LB backends"
  };
  const Case cases[] = {
      {1, net::Ipv4Addr(10, 1, 0, 10), net::Ipv4Addr(0)},
      {2, net::Ipv4Addr(10, 2, 0, 20), net::Ipv4Addr(10, 2, 1, 20)},
      {3, net::Ipv4Addr(10, 3, 0, 1), net::Ipv4Addr(10, 3, 0, 1)},
  };

  for (const Case& c : cases) {
    net::PacketSpec spec;
    spec.ip_dst = c.dst;
    spec.src_port = 40000;

    // First packet warms the LB session table (path 1 punts once);
    // the second packet is the steady-state measurement.
    cp.inject(net::Packet::make(spec), 0);
    auto out = cp.inject(net::Packet::make(spec), 0);

    ASSERT_EQ(out.out.size(), 1u)
        << "path " << c.path_id << " under " << placement.to_string()
        << ": " << out.drop_reason;
    const auto& packet = out.out.front().packet;

    // (a) Functional equivalence with the chain run in order.
    EXPECT_FALSE(packet.has_sfc_header()) << placement.to_string();
    auto ip = packet.ipv4();
    ASSERT_TRUE(ip.has_value());
    EXPECT_EQ(ip->ttl, 63) << placement.to_string();
    if (c.expect_dst == net::Ipv4Addr(0)) {
      const bool backend = ip->dst == net::Ipv4Addr(10, 1, 2, 1) ||
                           ip->dst == net::Ipv4Addr(10, 1, 2, 2);
      EXPECT_TRUE(backend) << ip->dst.to_string() << " under "
                           << placement.to_string();
    } else {
      EXPECT_EQ(ip->dst, c.expect_dst) << placement.to_string();
    }
    EXPECT_EQ(out.out.front().port, control::Fig2Deployment::kReceiverPort);

    // (b) The executor took exactly the planned number of loops.
    const auto& planned = fx.deployment->routing().traversals.at(c.path_id);
    EXPECT_EQ(out.recirculations, planned.recirculations)
        << "path " << c.path_id << " under " << placement.to_string()
        << "\nplanned " << planned.to_string();
    EXPECT_EQ(out.resubmissions, planned.resubmissions)
        << "path " << c.path_id << " under " << placement.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementConsistencySweep,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dejavu
