#include "sim/parse.hpp"

#include <gtest/gtest.h>

#include "nf/parser_lib.hpp"
#include "sfc/header.hpp"

namespace dejavu::sim {
namespace {

class ParseTest : public ::testing::Test {
 protected:
  ParseTest() : program("p") { nf::add_standard_parser(program, ids); }

  p4ir::TupleIdTable ids;
  p4ir::Program program;
};

TEST_F(ParseTest, PlainTcpPacket) {
  auto p = net::Packet::make({});
  auto r = run_parser(program, ids, p);
  EXPECT_TRUE(r.has("ethernet"));
  EXPECT_TRUE(r.has("ipv4"));
  EXPECT_TRUE(r.has("tcp"));
  EXPECT_FALSE(r.has("udp"));
  EXPECT_FALSE(r.has("sfc"));
  EXPECT_EQ(r.offset_of("ipv4"), nf::kIpv4Plain);
  EXPECT_EQ(r.offset_of("tcp"), nf::kL4Plain);
}

TEST_F(ParseTest, PlainUdpPacket) {
  net::PacketSpec spec;
  spec.protocol = net::kIpProtoUdp;
  auto r = run_parser(program, ids, net::Packet::make(spec));
  EXPECT_TRUE(r.has("udp"));
  EXPECT_FALSE(r.has("tcp"));
}

TEST_F(ParseTest, SfcEncapsulatedPacketShiftsOffsets) {
  auto p = net::Packet::make({});
  sfc::push_sfc(p, sfc::SfcHeader{});
  auto r = run_parser(program, ids, p);
  EXPECT_TRUE(r.has("sfc"));
  EXPECT_EQ(r.offset_of("sfc"), nf::kSfcOffset);
  EXPECT_EQ(r.offset_of("ipv4"), nf::kIpv4Shifted);
  EXPECT_EQ(r.offset_of("tcp"), nf::kL4Shifted);
}

TEST_F(ParseTest, UnknownEtherTypeStopsAtEthernet) {
  auto p = net::Packet::make({});
  auto eth = *p.ethernet();
  eth.ether_type = 0x86dd;  // IPv6: not in the parser
  p.set_ethernet(eth);
  auto r = run_parser(program, ids, p);
  EXPECT_TRUE(r.has("ethernet"));
  EXPECT_FALSE(r.has("ipv4"));
}

TEST_F(ParseTest, TruncatedPacketStopsCleanly) {
  auto p = net::Packet::make({});
  // Keep Ethernet + 4 bytes of IPv4: the ipv4 vertex cannot extract.
  p.data().erase(18, p.size() - 18);
  auto r = run_parser(program, ids, p);
  EXPECT_TRUE(r.has("ethernet"));
  EXPECT_FALSE(r.has("ipv4"));
}

TEST_F(ParseTest, VxlanBehindUdp) {
  p4ir::TupleIdTable vx_ids;
  p4ir::Program vx_program("vx");
  nf::ParserOptions opts;
  opts.with_vxlan = true;
  nf::add_standard_parser(vx_program, vx_ids, opts);

  net::PacketSpec spec;
  spec.protocol = net::kIpProtoUdp;
  spec.dst_port = net::kVxlanUdpPort;
  spec.payload_size = 16;
  auto r = run_parser(vx_program, vx_ids, net::Packet::make(spec));
  EXPECT_TRUE(r.has("vxlan"));
  EXPECT_EQ(r.offset_of("vxlan"), nf::kL4Plain + 8);
}

TEST_F(ParseTest, EmptyParserYieldsNothing) {
  p4ir::Program empty("empty");
  auto r = run_parser(empty, ids, net::Packet::make({}));
  EXPECT_TRUE(r.order().empty());
}

}  // namespace
}  // namespace dejavu::sim
