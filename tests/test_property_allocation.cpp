// Stage-allocation invariants over randomized real deployments: for
// any feasible placement of the Fig. 2 NFs, every pipelet's allocation
// must respect per-stage resource budgets and every dependency edge
// (match/action deps strictly later, successor deps not earlier).
#include <gtest/gtest.h>

#include <random>

#include "control/deployment.hpp"
#include "nf/nfs.hpp"
#include "p4ir/deps.hpp"

namespace dejavu {
namespace {

using asic::PipeKind;
using merge::CompositionKind;

place::Placement random_placement(std::mt19937_64& rng) {
  const std::vector<asic::PipeletId> pipelets = {
      {0, PipeKind::kIngress},
      {0, PipeKind::kEgress},
      {1, PipeKind::kIngress},
      {1, PipeKind::kEgress},
  };
  std::uniform_int_distribution<std::size_t> pick(0, pipelets.size() - 1);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<merge::PipeletAssignment> assignment;
  for (const auto& id : pipelets) {
    assignment.push_back({id,
                          coin(rng) ? CompositionKind::kSequential
                                    : CompositionKind::kParallel,
                          {}});
  }
  assignment[0].nfs.push_back(sfc::kClassifier);
  std::vector<std::string> rest = {sfc::kFirewall, sfc::kVgw,
                                   sfc::kLoadBalancer, sfc::kRouter};
  std::shuffle(rest.begin(), rest.end(), rng);
  for (const auto& nf : rest) assignment[pick(rng)].nfs.push_back(nf);
  std::erase_if(assignment, [](const merge::PipeletAssignment& pa) {
    return pa.nfs.empty();
  });
  return place::Placement(std::move(assignment));
}

class AllocationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationSweep, BudgetsAndDependenciesHold) {
  std::mt19937_64 rng(GetParam());
  control::Fig2Deployment fx;
  try {
    fx = control::make_fig2_deployment(random_placement(rng));
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "infeasible placement";
  }

  const auto spec = asic::TargetSpec::tofino32();
  const auto& program = fx.deployment->program();
  ASSERT_EQ(fx.deployment->allocations().size(), program.controls().size());

  for (std::size_t ci = 0; ci < program.controls().size(); ++ci) {
    const auto& control = program.controls()[ci];
    const auto& alloc = fx.deployment->allocations()[ci];
    ASSERT_TRUE(alloc.ok) << alloc.error;

    // (1) No stage over budget.
    for (const auto& stage : alloc.stages) {
      EXPECT_TRUE(stage.used.fits_within(spec.stage_budget))
          << control.name();
    }

    // (2) Dependencies honored (recomputed independently).
    auto graph = p4ir::analyze_dependencies({&control}, false);
    ASSERT_EQ(graph.tables.size(), alloc.stage_of.size());
    for (const auto& dep : graph.deps) {
      if (dep.kind == p4ir::DepKind::kSuccessor) {
        EXPECT_GE(alloc.stage_of[dep.to], alloc.stage_of[dep.from])
            << control.name() << ": " << alloc.table_names[dep.from]
            << " -> " << alloc.table_names[dep.to];
      } else {
        EXPECT_GT(alloc.stage_of[dep.to], alloc.stage_of[dep.from])
            << control.name() << ": " << alloc.table_names[dep.from]
            << " -(" << p4ir::to_string(dep.kind) << ")-> "
            << alloc.table_names[dep.to];
      }
    }

    // (3) Every table landed somewhere within the ladder.
    for (std::uint32_t s : alloc.stage_of) {
      EXPECT_LT(s, spec.stages_per_pipelet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace dejavu
