// The Fig. 8(b) latency model and its use on planned traversals.
#include "sim/latency.hpp"

#include <gtest/gtest.h>

namespace dejavu::sim {
namespace {

TEST(LatencyModel, PaperConstants) {
  LatencyModel model(asic::TargetSpec::tofino32());
  EXPECT_DOUBLE_EQ(model.base_ns(), 650.0);
  EXPECT_DOUBLE_EQ(model.recirc_ns(RecircMode::kOnChip), 75.0);
  EXPECT_DOUBLE_EQ(model.recirc_ns(RecircMode::kOffChip), 145.0);
  // §4: on-chip recirculation is ~11.5% of the port-to-port latency.
  EXPECT_NEAR(model.recirc_ns(RecircMode::kOnChip) / model.base_ns(),
              0.115, 0.001);
}

TEST(LatencyModel, SeriesIsLinearInLoops) {
  LatencyModel model(asic::TargetSpec::tofino32());
  for (std::uint32_t k = 0; k <= 5; ++k) {
    EXPECT_DOUBLE_EQ(model.recirc_total_ns(k, RecircMode::kOnChip),
                     650.0 + 75.0 * k);
    EXPECT_DOUBLE_EQ(model.recirc_total_ns(k, RecircMode::kOffChip),
                     650.0 + 145.0 * k);
  }
}

TEST(LatencyModel, TraversalAddsLoopsAndResubmissions) {
  LatencyModel model(asic::TargetSpec::tofino32());
  place::Traversal t;
  t.feasible = true;
  t.recirculations = 2;
  t.resubmissions = 3;
  EXPECT_DOUBLE_EQ(model.traversal_ns(t),
                   650.0 + 2 * 75.0 + 3 * 25.0);
  EXPECT_DOUBLE_EQ(model.traversal_ns(t, RecircMode::kOffChip),
                   650.0 + 2 * 145.0 + 3 * 25.0);
}

TEST(LatencyModel, CustomTargetConstantsFlowThrough) {
  asic::TargetSpec spec = asic::TargetSpec::tofino32();
  spec.port_to_port_latency_ns = 1000;
  spec.onchip_recirc_latency_ns = 100;
  spec.offchip_recirc_latency_ns = 300;
  LatencyModel model(spec);
  EXPECT_DOUBLE_EQ(model.recirc_total_ns(2, RecircMode::kOffChip), 1600.0);
}

}  // namespace
}  // namespace dejavu::sim
