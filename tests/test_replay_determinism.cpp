// Differential determinism: the replay engine's merged counters are a
// pure function of the flow set and the target — worker count, batch
// size, and per-worker injection order must be invisible in the
// result. This is the contract that lets every future perf PR change
// the parallelization freely and prove it changed nothing else.
#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "control/replay_target.hpp"

namespace dejavu::sim {
namespace {

ReplayConfig config_for(std::uint32_t workers) {
  ReplayConfig config;
  config.workers = workers;
  config.packets_per_flow = 3;
  return config;
}

/// The canonical mixed workload: all three Fig. 2 paths, LB session
/// learning on path 1.
std::vector<ReplayFlow> mixed_flows() {
  return control::fig2_replay_flows(/*total_flows=*/40, /*seed=*/7);
}

TEST(ReplayDeterminism, WorkerCountIsInvisibleWithControlPlane) {
  const auto flows = mixed_flows();
  const auto one = run_replay(control::fig2_replay_factory(), flows,
                              config_for(1));
  const auto two = run_replay(control::fig2_replay_factory(), flows,
                              config_for(2));
  const auto eight = run_replay(control::fig2_replay_factory(), flows,
                                config_for(8));

  // The workload actually exercised everything we claim to merge.
  EXPECT_GT(one.counters.delivered, 0u);
  EXPECT_GT(one.counters.recirculations, 0u);
  EXPECT_EQ(one.counters.per_path.size(), 3u);

  EXPECT_EQ(one.counters, two.counters);
  EXPECT_EQ(one.counters, eight.counters);
}

TEST(ReplayDeterminism, WorkerCountIsInvisibleOnBareDataPlane) {
  // No control plane behind the switch: path 1's session misses stay
  // punted, which must merge just as deterministically as deliveries.
  const auto flows = mixed_flows();
  const auto factory = control::fig2_replay_factory(/*fig9=*/true,
                                                    /*service_punts=*/false);
  const auto one = run_replay(factory, flows, config_for(1));
  const auto four = run_replay(factory, flows, config_for(4));

  EXPECT_GT(one.counters.punted, 0u);
  EXPECT_EQ(one.counters, four.counters);
}

TEST(ReplayDeterminism, BatchSizeAndOrderAreInvisible) {
  const auto flows = mixed_flows();

  ReplayConfig tiny = config_for(4);
  tiny.batch = 1;
  ReplayConfig huge = config_for(4);
  huge.batch = 64;
  ReplayConfig shuffled = config_for(4);
  shuffled.shuffle_seed = 0xdecafbad;

  const auto a = run_replay(control::fig2_replay_factory(), flows, tiny);
  const auto b = run_replay(control::fig2_replay_factory(), flows, huge);
  const auto c = run_replay(control::fig2_replay_factory(), flows, shuffled);

  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.counters, c.counters);
}

TEST(ReplayDeterminism, MergedCountersAddUp) {
  const auto flows = mixed_flows();
  const auto report = run_replay(control::fig2_replay_factory(), flows,
                                 config_for(4));
  const ReplayCounters& c = report.counters;

  EXPECT_EQ(c.packets, flows.size() * 3);
  std::uint64_t path_offered = 0, path_delivered = 0;
  for (const auto& [path, p] : c.per_path) {
    path_offered += p.offered;
    path_delivered += p.delivered;
    EXPECT_GT(p.canon_flow_hash, 0u) << "path " << path;
  }
  EXPECT_EQ(path_offered, c.packets);
  EXPECT_EQ(path_delivered, c.delivered);

  std::uint64_t worker_packets = 0;
  for (const WorkerStats& w : report.workers) worker_packets += w.packets;
  EXPECT_EQ(worker_packets, c.packets);

  // The sender port saw every injected packet exactly once.
  EXPECT_EQ(c.ports.at(control::Fig2Deployment::kSenderPort).rx_packets,
            c.packets);
}

TEST(ReplayDeterminism, WarmEngineStaysDeterministicAcrossRuns) {
  // A kept-warm engine (bench usage) re-runs with learned sessions:
  // punt counts differ from a cold run, but two warm runs must agree
  // with each other and across worker counts.
  const auto flows = mixed_flows();
  ReplayEngine two(control::fig2_replay_factory());
  ReplayEngine eight(control::fig2_replay_factory());
  two.run(flows, config_for(2));
  eight.run(flows, config_for(8));
  const auto warm_two = two.run(flows, config_for(2));
  const auto warm_eight = eight.run(flows, config_for(8));

  EXPECT_EQ(warm_two.counters, warm_eight.counters);
  // Steady state: no packet punts once sessions are in the tables.
  EXPECT_EQ(warm_two.counters.punted, 0u);
}

}  // namespace
}  // namespace dejavu::sim
