#include "asic/switch_config.hpp"
#include "asic/target.hpp"

#include <gtest/gtest.h>

namespace dejavu::asic {
namespace {

TEST(TargetSpec, Tofino32MatchesTheTestbed) {
  TargetSpec t = TargetSpec::tofino32();
  // §5: Wedge-100B 32X, 32x100G ports, 2 physical pipelines
  // (4 pipelets), 16 hardwired Ethernet ports per pipeline.
  EXPECT_EQ(t.pipelines, 2u);
  EXPECT_EQ(t.pipelet_count(), 4u);
  EXPECT_EQ(t.total_ports(), 32u);
  EXPECT_EQ(t.ports_per_pipeline, 16u);
  EXPECT_DOUBLE_EQ(t.port_gbps, 100.0);
  EXPECT_DOUBLE_EQ(t.total_capacity_gbps(), 3200.0);
  EXPECT_EQ(t.total_stages(), 48u);
}

TEST(TargetSpec, PortToPipelineMapping) {
  TargetSpec t = TargetSpec::tofino32();
  EXPECT_EQ(t.pipeline_of_port(0), 0u);
  EXPECT_EQ(t.pipeline_of_port(15), 0u);
  EXPECT_EQ(t.pipeline_of_port(16), 1u);
  EXPECT_EQ(t.pipeline_of_port(31), 1u);
}

TEST(TargetSpec, TotalResourcesScaleWithStages) {
  TargetSpec t = TargetSpec::tofino32();
  auto total = t.total_resources();
  EXPECT_EQ(total.table_ids, t.stage_budget.table_ids * 48);
  EXPECT_EQ(total.sram_blocks, t.stage_budget.sram_blocks * 48);
  EXPECT_EQ(total.tcam_blocks, t.stage_budget.tcam_blocks * 48);
}

TEST(TargetSpec, RecircConstraintsDefaultToTofino) {
  TargetSpec t = TargetSpec::tofino32();
  // §3.3 constraints (a)-(d) all hold on Tofino.
  EXPECT_TRUE(t.recirc.loopback_at_pipe_boundary);
  EXPECT_TRUE(t.recirc.decided_in_ingress);
  EXPECT_TRUE(t.recirc.port_granularity);
  EXPECT_TRUE(t.recirc.within_pipeline);
}

TEST(PipeletId, OrderingAndNames) {
  PipeletId i0{0, PipeKind::kIngress};
  PipeletId e0{0, PipeKind::kEgress};
  PipeletId i1{1, PipeKind::kIngress};
  EXPECT_LT(i0, e0);
  EXPECT_LT(e0, i1);
  EXPECT_EQ(i0.to_string(), "ingress0");
  EXPECT_EQ(e0.to_string(), "egress0");
}

TEST(SwitchConfig, LoopbackAccounting) {
  SwitchConfig config(TargetSpec::tofino32());
  EXPECT_EQ(config.loopback_count(), 0u);
  EXPECT_DOUBLE_EQ(config.external_capacity_gbps(), 3200.0);

  config.set_loopback(3);
  config.set_loopback(20);
  EXPECT_EQ(config.loopback_count(), 2u);
  EXPECT_EQ(config.loopback_count_in_pipeline(0), 1u);
  EXPECT_EQ(config.loopback_count_in_pipeline(1), 1u);
  EXPECT_DOUBLE_EQ(config.external_capacity_gbps(), 3000.0);

  config.set_loopback(3, false);
  EXPECT_EQ(config.loopback_count(), 1u);
}

TEST(SwitchConfig, PipelineLoopbackMatchesPrototype) {
  // §5: "we put the 16 Ethernet ports of ingress 1 into loopback
  // mode... our switch can provide 1.6 Tbps capacity and allow all
  // the traffic recirculate on the ASIC for once."
  SwitchConfig config(TargetSpec::tofino32());
  config.set_pipeline_loopback(1);
  EXPECT_EQ(config.loopback_count(), 16u);
  EXPECT_DOUBLE_EQ(config.external_capacity_gbps(), 1600.0);
  EXPECT_DOUBLE_EQ(config.single_recirc_fraction(), 1.0);
}

TEST(SwitchConfig, SingleRecircFractionFollowsTheModel) {
  // §4: m of n ports in loopback -> min(1, m/(n-m)) of the external
  // traffic can recirculate once.
  SwitchConfig config(TargetSpec::tofino32());
  for (std::uint32_t p = 0; p < 8; ++p) config.set_loopback(p);
  EXPECT_DOUBLE_EQ(config.single_recirc_fraction(), 8.0 / 24.0);
}

TEST(SwitchConfig, RecircCapacityIncludesDedicatedPort) {
  SwitchConfig config(TargetSpec::tofino32());
  // No loopback ports: only the free 100G recirculation port (§4).
  EXPECT_DOUBLE_EQ(config.recirc_capacity_gbps(0), 100.0);
  config.set_loopback(2);
  EXPECT_DOUBLE_EQ(config.recirc_capacity_gbps(0), 200.0);
}

TEST(SwitchConfig, InvalidPortThrows) {
  SwitchConfig config(TargetSpec::tofino32());
  EXPECT_THROW(config.set_loopback(32), std::out_of_range);
  EXPECT_THROW(config.set_pipeline_loopback(2), std::out_of_range);
}

TEST(SwitchConfig, LoopbackPortsEnumeration) {
  SwitchConfig config(TargetSpec::mini());
  config.set_loopback(1);
  config.set_loopback(3);
  EXPECT_EQ(config.loopback_ports(),
            (std::vector<std::uint32_t>{1, 3}));
}

}  // namespace
}  // namespace dejavu::asic
