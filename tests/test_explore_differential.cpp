// The differential property, end to end through the replay engine:
// every witness packet the explorer concretizes is replayed as a flow
// through sim::ReplayEngine against worker-private replicas of the
// same deployment, and the merged per-path counters must equal the
// symbolic predictions exactly — zero disagreements. This is the same
// cross-check the explorer runs internally per witness (DV-S7), but
// routed through the multi-threaded engine with flow sharding, so it
// also pins that predictions survive worker-private register state and
// shard assignment.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "explore/explorer.hpp"
#include "explore_test_util.hpp"
#include "sim/replay.hpp"

namespace dejavu {
namespace {

// A worker-private replica of one explore target, injecting into the
// bare data plane (punts counted, not serviced) — the disposition the
// explorer predicts.
class ExploreReplayTarget : public sim::ReplayTarget {
 public:
  explicit ExploreReplayTarget(test::ExploreTarget target)
      : target_(std::move(target)) {}

  sim::SwitchOutput inject(net::Packet packet, std::uint16_t in_port) override {
    return target_.deployment->dataplane().process(std::move(packet), in_port);
  }
  sim::DataPlane& dataplane() override {
    return target_.deployment->dataplane();
  }

 private:
  test::ExploreTarget target_;
};

class ExploreDifferential : public testing::TestWithParam<const char*> {};

TEST_P(ExploreDifferential, ReplayedWitnessesMatchPredictions) {
  const std::string name = GetParam();

  test::ExploreTarget explored = test::build_explore_target(name);
  const explore::ExploreResult& result = explored.deployment->run_explorer();
  ASSERT_FALSE(result.report.has("DV-S7")) << result.report.to_string();
  ASSERT_GT(result.paths.size(), 0u);
  ASSERT_EQ(result.stats.truncated, 0u);

  // One flow per witness, tagged with the path index so the merged
  // per-path counters line up 1:1 with the symbolic predictions.
  std::vector<sim::ReplayFlow> flows;
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    const explore::PathSummary& path = result.paths[i];
    flows.push_back({.flow = {path.spec()},
                     .in_port = path.in_port,
                     .path_id = static_cast<std::uint16_t>(i)});
  }

  sim::ReplayEngine engine([&name](std::uint32_t) {
    return std::make_unique<ExploreReplayTarget>(
        test::build_explore_target(name));
  });
  sim::ReplayConfig config;
  config.workers = 3;
  config.packets_per_flow = 1;
  const sim::ReplayReport report = engine.run(flows, config);

  ASSERT_EQ(report.counters.packets, flows.size());
  for (std::size_t i = 0; i < result.paths.size(); ++i) {
    const explore::PathSummary& path = result.paths[i];
    const explore::PredictedOutcome& want = path.outcome;
    const auto it =
        report.counters.per_path.find(static_cast<std::uint16_t>(i));
    ASSERT_NE(it, report.counters.per_path.end()) << path.to_string();
    const sim::PathCounters& got = it->second;

    EXPECT_EQ(got.offered, 1u) << path.to_string();
    EXPECT_EQ(got.delivered, want.out_ports.empty() ? 0u : 1u)
        << path.to_string();
    EXPECT_EQ(got.dropped, want.dropped ? 1u : 0u) << path.to_string();
    EXPECT_EQ(got.punted, want.to_cpu > 0 ? 1u : 0u) << path.to_string();
    EXPECT_EQ(got.recirculations, want.recirc_ports.size())
        << path.to_string();
    EXPECT_EQ(got.resubmissions, want.resubmissions) << path.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(ShippedTargets, ExploreDifferential,
                         testing::Values("fig2", "fig9", "quickstart",
                                         "stateful"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace dejavu
