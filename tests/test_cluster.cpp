// §7 multi-switch clusters: a chain too deep for one switch fits a
// two-switch cluster; crossings and latency are accounted.
#include "place/cluster.hpp"

#include <gtest/gtest.h>

#include "place/optimizer.hpp"

namespace dejavu::place {
namespace {

sfc::PolicySet deep_chain(std::size_t n) {
  std::vector<std::string> nfs = {"C"};
  for (std::size_t i = 1; i + 1 < n; ++i) {
    nfs.push_back("N" + std::to_string(i));
  }
  nfs.push_back("R");
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "deep",
           .nfs = std::move(nfs),
           .weight = 1.0,
           .in_port = 0,
           .exit_port = 1});
  return set;
}

/// Each NF needs 4 stages + 2 glue: at most one per 12-stage pipelet
/// once the ingress branching stage is added.
StageModel heavy_model() {
  StageModel model;
  model.default_nf_stages = 6;
  return model;
}

TEST(Cluster, VirtualSpecConcatenatesPipelines) {
  ClusterSpec cluster;
  cluster.switches = 3;
  auto v = cluster.virtual_spec();
  EXPECT_EQ(v.pipelines, 6u);
  EXPECT_EQ(cluster.total_stages(), 3 * 48u);
  EXPECT_EQ(cluster.switch_of_pipeline(0), 0u);
  EXPECT_EQ(cluster.switch_of_pipeline(1), 0u);
  EXPECT_EQ(cluster.switch_of_pipeline(2), 1u);
  EXPECT_EQ(cluster.switch_of_pipeline(5), 2u);
}

TEST(Cluster, DeepChainNeedsTheCluster) {
  // 8 NFs at ~1 per pipelet: a single switch has 4 pipelets, so the
  // chain cannot fit; a 3-switch cluster (12 pipelets) can.
  auto policies = deep_chain(8);
  auto model = heavy_model();

  auto single = asic::TargetSpec::tofino32();
  TraversalEnv env1{.pipelines = single.pipelines, .can_recirculate = {}};
  // Disallow parallel packing by construction: sequential composition
  // only in exhaustive search.
  auto r1 = exhaustive_optimize(policies, single, env1, model);
  EXPECT_FALSE(r1.feasible);

  ClusterSpec cluster;
  cluster.switches = 3;
  auto virt = cluster.virtual_spec();
  TraversalEnv env2{.pipelines = virt.pipelines, .can_recirculate = {}};
  AnnealParams params;
  params.iterations = 40000;
  params.seed = 5;
  auto r2 = anneal_optimize(policies, virt, env2, model, params);
  EXPECT_TRUE(r2.feasible) << "cluster should fit the deep chain";
}

TEST(Cluster, CrossingsCountBoundaryHops) {
  ClusterSpec cluster;  // 2 switches x 2 pipelines
  cluster.switches = 2;

  Traversal t;
  t.feasible = true;
  auto step = [](std::uint32_t pipeline, asic::PipeKind kind,
                 TraversalStep::Exit exit) {
    TraversalStep s;
    s.pipelet = {pipeline, kind};
    s.exit_via = exit;
    return s;
  };
  // I0 -> E2 (cross to switch 1) -> I2 -> E0 (cross back) -> out.
  t.steps = {
      step(0, asic::PipeKind::kIngress, TraversalStep::Exit::kToEgress),
      step(2, asic::PipeKind::kEgress, TraversalStep::Exit::kRecirculate),
      step(2, asic::PipeKind::kIngress, TraversalStep::Exit::kToEgress),
      step(0, asic::PipeKind::kEgress, TraversalStep::Exit::kOut),
  };
  EXPECT_EQ(inter_switch_crossings(t, cluster), 2u);

  // Latency: base + off-chip (crossing forward) + on-chip (recirc
  // inside switch 1) + off-chip (crossing back).
  const auto& spec = cluster.switch_spec;
  EXPECT_DOUBLE_EQ(cluster_traversal_ns(t, cluster),
                   spec.port_to_port_latency_ns +
                       spec.offchip_recirc_latency_ns +
                       spec.onchip_recirc_latency_ns +
                       spec.offchip_recirc_latency_ns);
}

TEST(Cluster, IntraSwitchTraversalPaysNoCablePenalty) {
  ClusterSpec cluster;
  Traversal t;
  t.feasible = true;
  TraversalStep a;
  a.pipelet = {0, asic::PipeKind::kIngress};
  a.exit_via = TraversalStep::Exit::kToEgress;
  TraversalStep b;
  b.pipelet = {1, asic::PipeKind::kEgress};
  b.exit_via = TraversalStep::Exit::kOut;
  t.steps = {a, b};
  EXPECT_EQ(inter_switch_crossings(t, cluster), 0u);
  EXPECT_DOUBLE_EQ(cluster_traversal_ns(t, cluster),
                   cluster.switch_spec.port_to_port_latency_ns);
}

}  // namespace
}  // namespace dejavu::place
