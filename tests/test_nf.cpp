// Structural checks on the NF programs: each follows the §3.1
// interface (one control block over the generic hdr view), carries a
// valid parser, and encodes the behavior Fig. 4 / §3 describe.
#include "nf/nfs.hpp"

#include <gtest/gtest.h>

#include "nf/parser_lib.hpp"

namespace dejavu::nf {
namespace {

class NfPrograms : public ::testing::Test {
 protected:
  p4ir::TupleIdTable ids;
};

TEST_F(NfPrograms, AllFiveValidateAndHaveOneControl) {
  auto programs = fig2_nf_programs(ids);
  ASSERT_EQ(programs.size(), 5u);
  for (const auto& p : programs) {
    std::string why;
    EXPECT_TRUE(p.validate(ids, &why)) << p.name() << ": " << why;
    EXPECT_EQ(p.controls().size(), 1u) << p.name();
    EXPECT_TRUE(p.annotation("nf").has_value()) << p.name();
  }
}

TEST_F(NfPrograms, LoadBalancerMatchesFig4) {
  auto lb = make_load_balancer(ids);
  const auto& control = lb.controls().front();

  // Fig. 4: table lb_session keyed on the session hash, actions
  // modify_dstIp / toCpu, const default toCpu.
  const p4ir::Table* session = control.find_table("lb_session");
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->keys.size(), 1u);
  EXPECT_EQ(session->keys[0].field, "local.sessionHash");
  EXPECT_EQ(session->keys[0].kind, p4ir::MatchKind::kExact);
  EXPECT_EQ(session->default_action, "toCpu");
  EXPECT_EQ(session->actions,
            (std::vector<std::string>{"modify_dstIp", "toCpu"}));

  // The hash covers the Fig. 4 five-tuple in order.
  const p4ir::Action* hash = control.find_action("computeFiveTupleHash");
  ASSERT_NE(hash, nullptr);
  ASSERT_EQ(hash->primitives.size(), 1u);
  EXPECT_EQ(hash->primitives[0].op, p4ir::PrimitiveOp::kHash);
  EXPECT_EQ(hash->primitives[0].srcs,
            (std::vector<std::string>{"ipv4.src_addr", "ipv4.dst_addr",
                                      "ipv4.protocol", "tcp.src_port",
                                      "tcp.dst_port"}));

  // apply{ computeFiveTupleHash(); lb_session.apply(); }
  ASSERT_EQ(control.apply_order().size(), 2u);
  EXPECT_EQ(control.apply_order()[0].table, "compute_hash");
  EXPECT_EQ(control.apply_order()[1].table, "lb_session");
}

TEST_F(NfPrograms, ClassifierPushesSfcAndSetsPath) {
  auto c = make_classifier(ids);
  const auto& control = c.controls().front();
  const p4ir::Action* classify = control.find_action("classify");
  ASSERT_NE(classify, nullptr);
  ASSERT_FALSE(classify->primitives.empty());
  EXPECT_EQ(classify->primitives[0].op, p4ir::PrimitiveOp::kPushSfc);
  auto writes = classify->writes();
  EXPECT_TRUE(writes.contains("sfc.service_path_id"));
  EXPECT_TRUE(writes.contains("sfc.service_index"));
  EXPECT_TRUE(writes.contains("sfc.in_port"));
}

TEST_F(NfPrograms, RouterPopsAndDecrementsTtl) {
  auto r = make_router(ids);
  const auto& control = r.controls().front();
  const p4ir::Action* route = control.find_action("route");
  ASSERT_NE(route, nullptr);
  bool has_pop = false, has_ttl = false;
  for (const auto& p : route->primitives) {
    has_pop |= p.op == p4ir::PrimitiveOp::kPopSfc;
    has_ttl |= p.op == p4ir::PrimitiveOp::kAdd && p.dst == "ipv4.ttl";
  }
  EXPECT_TRUE(has_pop);
  EXPECT_TRUE(has_ttl);
  const p4ir::Table* lpm = control.find_table("ipv4_lpm");
  ASSERT_NE(lpm, nullptr);
  EXPECT_EQ(lpm->keys[0].kind, p4ir::MatchKind::kLpm);
}

TEST_F(NfPrograms, FirewallIsDefaultDeny) {
  auto fw = make_firewall(ids);
  const p4ir::Table* acl = fw.controls().front().find_table("acl");
  ASSERT_NE(acl, nullptr);
  EXPECT_EQ(acl->default_action, "deny");
  EXPECT_TRUE(acl->needs_tcam());
}

TEST_F(NfPrograms, VgwWritesTenantContext) {
  auto vgw = make_vgw(ids);
  const p4ir::Action* translate =
      vgw.controls().front().find_action("translate");
  ASSERT_NE(translate, nullptr);
  bool sets_context = false;
  for (const auto& p : translate->primitives) {
    if (p.op == p4ir::PrimitiveOp::kSetContext) {
      sets_context = true;
      EXPECT_EQ(p.imm, kCtxTenantId);
    }
  }
  EXPECT_TRUE(sets_context);
}

TEST_F(NfPrograms, SharedTupleTableKeepsIdsConsistent) {
  // All NFs intern through the same global-ID table (§3): the same
  // (header, offset) tuple resolves to the same ID everywhere.
  auto programs = fig2_nf_programs(ids);
  auto eth = ids.find({"ethernet", 0});
  ASSERT_TRUE(eth.has_value());
  for (const auto& p : programs) {
    EXPECT_EQ(p.parser().start(), *eth) << p.name();
  }
  // The table stays small ("the size of this table should be small").
  EXPECT_LE(ids.size(), 16u);
}

TEST_F(NfPrograms, ExtensionNfsValidate) {
  for (auto program : {make_nat(ids), make_police(ids)}) {
    std::string why;
    EXPECT_TRUE(program.validate(ids, &why)) << program.name() << ": " << why;
    EXPECT_EQ(program.controls().size(), 1u);
  }
}

TEST_F(NfPrograms, OnlyInterfaceFieldsAreTouched) {
  // §3.1: NFs read and write only through the hdr argument — header
  // fields, SFC fields, standard metadata, and local temporaries.
  auto programs = fig2_nf_programs(ids);
  programs.push_back(make_nat(ids));
  programs.push_back(make_police(ids));
  for (const auto& program : programs) {
    const auto& control = program.controls().front();
    for (const auto& action : control.actions()) {
      for (const auto& dotted : action.writes()) {
        auto ref = p4ir::FieldRef::parse(dotted);
        ASSERT_TRUE(ref.has_value()) << dotted;
        const bool known = program.find_header_type(ref->header) != nullptr ||
                           ref->header == "local" ||
                           ref->header == "standard_metadata";
        EXPECT_TRUE(known) << program.name() << " writes " << dotted;
      }
    }
  }
}

}  // namespace
}  // namespace dejavu::nf
