// Longer chains with the extension NFs (NAT, Police): a 7-NF chain
// deployed alongside the Fig. 2 paths, multi-port arrivals, and chains
// arriving on the second pipeline. Stresses composition breadth and
// the placement optimizer beyond the paper's prototype.
#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "nf/nfs.hpp"
#include "sfc/header.hpp"
#include "sim/workload.hpp"

namespace dejavu {
namespace {

/// A deployment with all seven NFs and a 7-NF mega-chain plus a short
/// chain, arriving on two different ports.
struct SevenNfFixture {
  std::unique_ptr<control::Deployment> deployment;
  sfc::PolicySet policies;

  SevenNfFixture() {
    p4ir::TupleIdTable ids;
    std::vector<p4ir::Program> nfs = nf::fig2_nf_programs(ids);
    nfs.push_back(nf::make_nat(ids));
    nfs.push_back(nf::make_police(ids));

    policies.add({.path_id = 1,
                  .name = "everything",
                  .nfs = {sfc::kClassifier, "Police", sfc::kFirewall,
                          sfc::kVgw, "NAT", sfc::kLoadBalancer,
                          sfc::kRouter},
                  .weight = 0.6,
                  .in_port = 0,
                  .exit_port = 1,
                  .terminal_pops_sfc = true});
    policies.add({.path_id = 2,
                  .name = "police-route",
                  .nfs = {sfc::kClassifier, "Police", sfc::kRouter},
                  .weight = 0.4,
                  .in_port = 0,
                  .exit_port = 1,
                  .terminal_pops_sfc = true});

    asic::SwitchConfig config(asic::TargetSpec::tofino32());
    config.set_pipeline_loopback(1);
    deployment = control::Deployment::build(std::move(nfs), policies,
                                            std::move(config),
                                            std::move(ids));

    auto& cp = deployment->control();
    cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                          .dst = *net::Ipv4Prefix::parse("10.1.0.0/16"),
                          .protocol = std::nullopt,
                          .priority = 10,
                          .path_id = 1,
                          .tenant = 100});
    cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                          .dst = *net::Ipv4Prefix::parse("10.3.0.0/16"),
                          .protocol = std::nullopt,
                          .priority = 10,
                          .path_id = 2,
                          .tenant = 300});
    cp.add_firewall_rule({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                          .dst = *net::Ipv4Prefix::parse("10.1.0.0/16"),
                          .protocol = net::kIpProtoTcp,
                          .dst_port = std::nullopt,
                          .priority = 10,
                          .permit = true});
    cp.add_vgw_mapping({.virtual_ip = net::Ipv4Addr(10, 1, 0, 10),
                        .physical_ip = net::Ipv4Addr(10, 1, 1, 10),
                        .tenant = 100});
    cp.set_lb_pool({{net::Ipv4Addr(10, 1, 2, 1),
                     net::Ipv4Addr(10, 1, 2, 2)}});
    cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                  .port = 1,
                  .next_hop_mac = net::MacAddr::from_u64(0x02)});
  }
};

TEST(SevenNfChain, DeploysAndFitsTheSwitch) {
  SevenNfFixture fx;
  for (const auto& alloc : fx.deployment->allocations()) {
    EXPECT_TRUE(alloc.ok) << alloc.error;
  }
  EXPECT_TRUE(fx.deployment->routing().feasible);
}

TEST(SevenNfChain, MegaChainAppliesEveryNf) {
  SevenNfFixture fx;
  auto& cp = fx.deployment->control();

  // Install a NAT translation for the flow we send.
  net::PacketSpec spec;
  spec.ip_src = net::Ipv4Addr(192, 168, 1, 5);
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  spec.src_port = 50000;
  spec.dst_port = 443;
  for (sim::RuntimeTable* t :
       fx.deployment->dataplane().tables_named("NAT.nat_translate")) {
    t->add_exact({spec.ip_src.value(), spec.src_port},
                 sim::ActionCall{"NAT.snat",
                                 {{"new_src",
                                   net::Ipv4Addr(100, 64, 0, 5).value()},
                                  {"new_sport", 61000}}});
  }

  auto out = cp.inject(net::Packet::make(spec), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  const auto& p = out.out.front().packet;
  auto ip = p.ipv4();
  ASSERT_TRUE(ip.has_value());

  // NAT rewrote the source...
  EXPECT_EQ(ip->src, net::Ipv4Addr(100, 64, 0, 5));
  EXPECT_EQ(p.tcp()->src_port, 61000);
  // ...LB rewrote the destination to a backend...
  EXPECT_TRUE(ip->dst == net::Ipv4Addr(10, 1, 2, 1) ||
              ip->dst == net::Ipv4Addr(10, 1, 2, 2));
  // ...Router decremented TTL and popped the SFC header.
  EXPECT_EQ(ip->ttl, 63);
  EXPECT_FALSE(p.has_sfc_header());
}

TEST(SevenNfChain, PoliceBlocklistDropsOnBothPaths) {
  SevenNfFixture fx;
  auto& cp = fx.deployment->control();
  for (sim::RuntimeTable* t :
       fx.deployment->dataplane().tables_named("Police.blocklist")) {
    t->add_exact({net::Ipv4Addr(203, 0, 113, 66).value()},
                 sim::ActionCall{"Police.block", {}});
  }

  for (auto dst : {net::Ipv4Addr(10, 1, 0, 10), net::Ipv4Addr(10, 3, 0, 1)}) {
    net::PacketSpec spec;
    spec.ip_src = net::Ipv4Addr(203, 0, 113, 66);
    spec.ip_dst = dst;
    auto out = cp.inject(net::Packet::make(spec), 0);
    EXPECT_TRUE(out.dropped) << dst.to_string();
  }

  // Unblocked sources still flow (path 2 needs no FW permit).
  net::PacketSpec ok;
  ok.ip_src = net::Ipv4Addr(198, 51, 100, 1);
  ok.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  EXPECT_EQ(cp.inject(net::Packet::make(ok), 0).out.size(), 1u);
}

TEST(SevenNfChain, PlannerAndExecutorStillAgree) {
  SevenNfFixture fx;
  auto& cp = fx.deployment->control();

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto out = cp.inject(net::Packet::make(spec), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  const auto& planned = fx.deployment->routing().traversals.at(2);
  EXPECT_EQ(out.recirculations, planned.recirculations);
  EXPECT_EQ(out.resubmissions, planned.resubmissions);
}

TEST(MultiArrival, ChainsFromTheSecondPipeline) {
  // Traffic arriving on pipeline 1's ports (no loopback configured
  // here) with its own classifier pinned to ingress 1.
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_router(ids));

  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "from-pipeline-1",
                .nfs = {sfc::kClassifier, sfc::kRouter},
                .weight = 1.0,
                .in_port = 20,   // pipeline 1
                .exit_port = 21,  // pipeline 1
                .terminal_pops_sfc = true});

  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  auto d = control::Deployment::build(std::move(nfs), policies,
                                      std::move(config), std::move(ids));
  auto loc = d->placement().find(sfc::kClassifier);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->pipelet.pipeline, 1u);

  auto& cp = d->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .protocol = std::nullopt,
                        .priority = 0,
                        .path_id = 1,
                        .tenant = 1});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                .port = 21,
                .next_hop_mac = net::MacAddr::from_u64(0x42)});
  auto out = cp.inject(net::Packet::make({}), 20);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  EXPECT_EQ(out.out.front().port, 21);
}

}  // namespace
}  // namespace dejavu
