// Placement and traversal planning (§3.3, Fig. 6): the planner must
// reproduce the paper's worked example exactly — 3 recirculations for
// the naive Fig. 6(a) layout, 1 for the optimized Fig. 6(b) layout —
// and the optimizer must find a placement at least that good.
#include "place/optimizer.hpp"
#include "place/placement.hpp"

#include <gtest/gtest.h>

namespace dejavu::place {
namespace {

using asic::PipeKind;
using merge::CompositionKind;
using merge::PipeletAssignment;

sfc::PolicySet abcdef_policy() {
  sfc::PolicySet set;
  // Fig. 6: one chain A-B-C-D-E-F; traffic enters on a pipeline-0
  // port and must leave from a port on Egress 0.
  set.add({.path_id = 1,
           .name = "abcdef",
           .nfs = {"A", "B", "C", "D", "E", "F"},
           .weight = 1.0,
           .in_port = 0,
           .exit_port = 1});
  return set;
}

Placement fig6a() {
  return Placement({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"D"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"E", "F"}},
  });
}

Placement fig6b() {
  // Fig. 6(b): exchange the locations of C and EF.
  return Placement({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"E", "F"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"D"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
  });
}

class Fig6Test : public ::testing::Test {
 protected:
  asic::TargetSpec spec = asic::TargetSpec::tofino32();
  TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};
  sfc::PolicySet policies = abcdef_policy();
};

TEST_F(Fig6Test, NaiveLayoutCostsThreeRecirculations) {
  auto t = plan_traversal(policies.policies()[0], fig6a(), spec, env);
  ASSERT_TRUE(t.feasible) << t.infeasible_reason;
  EXPECT_EQ(t.recirculations, 3u) << t.to_string();
  EXPECT_EQ(t.resubmissions, 0u);
}

TEST_F(Fig6Test, NaiveLayoutTraversalMatchesThePaper) {
  // "Ingress 0 -> Egress 0 -> Ingress 0 -> Egress 1 -> Ingress 1 ->
  //  Egress 1 -> Ingress 1 -> Egress 0" (§3.3).
  auto t = plan_traversal(policies.policies()[0], fig6a(), spec, env);
  ASSERT_TRUE(t.feasible);
  std::vector<asic::PipeletId> expected = {
      {0, PipeKind::kIngress}, {0, PipeKind::kEgress},
      {0, PipeKind::kIngress}, {1, PipeKind::kEgress},
      {1, PipeKind::kIngress}, {1, PipeKind::kEgress},
      {1, PipeKind::kIngress}, {0, PipeKind::kEgress}};
  std::vector<asic::PipeletId> got;
  for (const auto& s : t.steps) got.push_back(s.pipelet);
  EXPECT_EQ(got, expected) << t.to_string();
}

TEST_F(Fig6Test, OptimizedLayoutCostsOneRecirculation) {
  auto t = plan_traversal(policies.policies()[0], fig6b(), spec, env);
  ASSERT_TRUE(t.feasible) << t.infeasible_reason;
  EXPECT_EQ(t.recirculations, 1u) << t.to_string();
}

TEST_F(Fig6Test, OptimizedLayoutTraversalMatchesThePaper) {
  // "Ingress 0 -> Egress 1 -> Ingress 1 -> Egress 0" (§3.3).
  auto t = plan_traversal(policies.policies()[0], fig6b(), spec, env);
  ASSERT_TRUE(t.feasible);
  std::vector<asic::PipeletId> expected = {
      {0, PipeKind::kIngress}, {1, PipeKind::kEgress},
      {1, PipeKind::kIngress}, {0, PipeKind::kEgress}};
  std::vector<asic::PipeletId> got;
  for (const auto& s : t.steps) got.push_back(s.pipelet);
  EXPECT_EQ(got, expected) << t.to_string();
}

TEST_F(Fig6Test, ExhaustiveOptimizerBeatsOrTiesFig6b) {
  auto result = exhaustive_optimize(policies, spec, env, StageModel{});
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.cost, 1.0 + 1e-9)
      << "optimizer: " << result.placement.to_string();
}

TEST_F(Fig6Test, OptimizerNeverWorseThanNaiveBaseline) {
  Placement naive = naive_alternating(policies, spec);
  double naive_cost = placement_cost(policies, naive, spec, env, StageModel{});
  auto result = exhaustive_optimize(policies, spec, env, StageModel{});
  EXPECT_LE(result.cost, naive_cost);
}

TEST_F(Fig6Test, AnnealFindsNearOptimalPlacement) {
  auto exact = exhaustive_optimize(policies, spec, env, StageModel{});
  AnnealParams params;
  params.iterations = 30000;
  params.seed = 7;
  auto annealed = anneal_optimize(policies, spec, env, StageModel{}, params);
  ASSERT_TRUE(annealed.feasible);
  EXPECT_LE(annealed.cost, exact.cost + 1.0);  // within one recirc
}

TEST(Placement, DuplicateNfThrows) {
  EXPECT_THROW(Placement({
                   {{0, PipeKind::kIngress},
                    CompositionKind::kSequential,
                    {"A"}},
                   {{0, PipeKind::kEgress},
                    CompositionKind::kSequential,
                    {"A"}},
               }),
               std::invalid_argument);
}

TEST(Placement, LookupAndToString) {
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
  });
  auto loc = p.find("B");
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->position, 1u);
  EXPECT_FALSE(p.find("Z").has_value());
  EXPECT_NE(p.to_string().find("A>B"), std::string::npos);
}

TEST(Traversal, UnplacedNfIsInfeasible) {
  sfc::PolicySet set;
  set.add({.path_id = 1, .name = "x", .nfs = {"A", "B"}});
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
  });
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          TraversalEnv{});
  EXPECT_FALSE(t.feasible);
  EXPECT_NE(t.infeasible_reason.find("B"), std::string::npos);
}

TEST(Traversal, WrongOrderOnOnePipeletNeedsResubmission) {
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "x",
           .nfs = {"A", "B"},
           .in_port = 0,
           .exit_port = 0});
  // B placed before A in apply order: one pass runs A, a
  // resubmission runs B.
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"B", "A"}},
  });
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          TraversalEnv{});
  ASSERT_TRUE(t.feasible) << t.infeasible_reason;
  EXPECT_EQ(t.resubmissions, 1u);
  EXPECT_EQ(t.recirculations, 0u);
}

TEST(Traversal, ParallelCompositionOneNfPerPass) {
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "x",
           .nfs = {"A", "B"},
           .in_port = 0,
           .exit_port = 0});
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kParallel, {"A", "B"}},
  });
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          TraversalEnv{});
  ASSERT_TRUE(t.feasible);
  // §3.2: "transitions from one branch to another require at least
  // one resubmission (if on ingress pipe)".
  EXPECT_EQ(t.resubmissions, 1u);
}

TEST(Traversal, ParallelOnEgressNeedsRecirculation) {
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "x",
           .nfs = {"A", "B", "C"},
           .in_port = 0,
           .exit_port = 0});
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{0, PipeKind::kEgress}, CompositionKind::kParallel, {"B", "C"}},
  });
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          TraversalEnv{});
  ASSERT_TRUE(t.feasible) << t.infeasible_reason;
  // §3.2: "...or one recirculation (if on egress pipe)".
  EXPECT_EQ(t.recirculations, 1u);
}

TEST(Traversal, IngressThenEgressIsFree) {
  // §3.3: first NF on an ingress pipe, second on an egress pipe ->
  // no resubmission or recirculation at all.
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "x",
           .nfs = {"A", "B"},
           .in_port = 0,
           .exit_port = 0});
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"B"}},
  });
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          TraversalEnv{});
  ASSERT_TRUE(t.feasible);
  EXPECT_EQ(t.recirculations, 0u);
  EXPECT_EQ(t.resubmissions, 0u);
}

TEST(Traversal, NoLoopbackMakesCrossPipelineInfeasible) {
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "x",
           .nfs = {"A", "B"},
           .in_port = 0,
           .exit_port = 0});
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"B"}},
  });
  TraversalEnv env{.pipelines = 2, .can_recirculate = {false, false}};
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          env);
  EXPECT_FALSE(t.feasible);
  EXPECT_NE(t.infeasible_reason.find("loopback"), std::string::npos);
}

TEST(Traversal, ExitOnOtherPipelineCostsFinalRecirc) {
  // Chain finishes on egress 1 but must exit from a pipeline-0 port:
  // one more loop to re-route (the Fig. 6(a) third recirculation).
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "x",
           .nfs = {"A", "B"},
           .in_port = 0,
           .exit_port = 0});
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"B"}},
  });
  auto t = plan_traversal(set.policies()[0], p, asic::TargetSpec::tofino32(),
                          TraversalEnv{});
  ASSERT_TRUE(t.feasible);
  EXPECT_EQ(t.recirculations, 1u);
}

TEST(WeightedObjective, SumsPerPolicyCosts) {
  asic::TargetSpec spec = asic::TargetSpec::tofino32();
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "cheap",
           .nfs = {"A"},
           .weight = 0.9,
           .in_port = 0,
           .exit_port = 0});
  set.add({.path_id = 2,
           .name = "expensive",
           .nfs = {"A", "B"},
           .weight = 0.1,
           .in_port = 0,
           .exit_port = 0});
  // B on ingress 1: path 2 needs one recirculation (transit through
  // egress 1, loop back into ingress 1), path 1 none.
  Placement p({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"B"}},
  });
  EXPECT_NEAR(weighted_recirculations(set, p, spec, TraversalEnv{}),
              0.1 * 1, 1e-9);
}

TEST(StageModelTest, SequentialSumsParallelMaxes) {
  StageModel model;
  model.default_nf_stages = 2;
  model.glue_stages = 2;
  model.branching_stages = 1;

  PipeletAssignment seq{{0, PipeKind::kIngress},
                        CompositionKind::kSequential,
                        {"A", "B"}};
  EXPECT_EQ(model.pipelet_depth(seq), 2 * (2 + 2) + 1);

  PipeletAssignment par{{0, PipeKind::kIngress},
                        CompositionKind::kParallel,
                        {"A", "B"}};
  EXPECT_EQ(model.pipelet_depth(par), (2 + 2) + 1);
}

TEST(GlobalNfOrder, FirstAppearanceAcrossPolicies) {
  sfc::PolicySet set;
  set.add({.path_id = 1, .name = "a", .nfs = {"C", "A"}});
  set.add({.path_id = 2, .name = "b", .nfs = {"C", "B", "A"}});
  EXPECT_EQ(global_nf_order(set),
            (std::vector<std::string>{"C", "A", "B"}));
}

}  // namespace
}  // namespace dejavu::place
