// Property sweeps on the generic-parser merge (§3): for random
// families of NF parsers drawn from a shared header universe, the
// merge contains exactly the union of vertices and edges, stays a
// valid DAG, and is idempotent/order-insensitive.
#include <gtest/gtest.h>

#include <random>

#include "merge/parser_merge.hpp"
#include "sfc/header.hpp"

namespace dejavu::merge {
namespace {

/// A synthetic header universe: a chain of header types at fixed
/// offsets with branching selectors, from which random NF parsers
/// draw connected subgraphs.
struct Universe {
  std::vector<p4ir::HeaderType> types;
  struct Edge {
    p4ir::ParserTuple from, to;
    std::uint64_t select;
  };
  std::vector<Edge> edges;
  p4ir::ParserTuple start{"h0", 0};

  Universe() {
    // h0@0 -> {h1@8, h2@8} -> {h3@16, h4@16} -> h5@24.
    for (int i = 0; i <= 5; ++i) {
      types.push_back(
          p4ir::HeaderType{"h" + std::to_string(i), {{"f", 64}}});
    }
    auto t = [](const std::string& n, std::uint32_t off) {
      return p4ir::ParserTuple{n, off};
    };
    edges = {
        {t("h0", 0), t("h1", 8), 1},  {t("h0", 0), t("h2", 8), 2},
        {t("h1", 8), t("h3", 16), 1}, {t("h1", 8), t("h4", 16), 2},
        {t("h2", 8), t("h3", 16), 1}, {t("h2", 8), t("h4", 16), 2},
        {t("h3", 16), t("h5", 24), 1}, {t("h4", 16), t("h5", 24), 1},
    };
  }

  /// A random connected sub-parser: BFS from start, keeping each edge
  /// with probability 1/2 (but at least one outgoing edge where any
  /// exist, to keep it interesting).
  p4ir::Program random_program(std::mt19937_64& rng, p4ir::TupleIdTable& ids,
                               int index) const {
    p4ir::Program program("nf" + std::to_string(index));
    for (const auto& type : types) program.add_header_type(type);
    auto& g = program.parser();
    std::uint32_t start_id = g.add_vertex(ids, start);
    g.set_start(start_id);

    std::uniform_int_distribution<int> coin(0, 1);
    std::vector<p4ir::ParserTuple> frontier = {start};
    std::set<std::string> visited = {start.to_string()};
    while (!frontier.empty()) {
      p4ir::ParserTuple cur = frontier.back();
      frontier.pop_back();
      std::vector<const Edge*> out;
      for (const Edge& e : edges) {
        if (e.from == cur) out.push_back(&e);
      }
      bool kept_any = false;
      for (std::size_t i = 0; i < out.size(); ++i) {
        const bool keep = coin(rng) || (!kept_any && i + 1 == out.size());
        if (!keep) continue;
        kept_any = true;
        std::uint32_t from = g.add_vertex(ids, out[i]->from);
        std::uint32_t to = g.add_vertex(ids, out[i]->to);
        g.add_edge(p4ir::ParserEdge{from, to,
                                    out[i]->from.header_type + ".f",
                                    out[i]->select, false});
        if (visited.insert(out[i]->to.to_string()).second) {
          frontier.push_back(out[i]->to);
        }
      }
    }
    return program;
  }
};

class MergeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeSweep, MergeIsTheUnionAndValid) {
  std::mt19937_64 rng(GetParam());
  Universe universe;
  p4ir::TupleIdTable ids;

  std::vector<p4ir::Program> programs;
  for (int i = 0; i < 4; ++i) {
    programs.push_back(universe.random_program(rng, ids, i));
  }
  std::vector<const p4ir::Program*> ptrs;
  for (auto& p : programs) ptrs.push_back(&p);

  auto merged = merge_parsers(ptrs, ids);
  std::string why;
  EXPECT_TRUE(merged.validate(ids, &why)) << why;

  // Union of vertices and edges, nothing more.
  std::set<std::uint32_t> expected_vertices;
  std::size_t expected_edges = 0;
  std::set<std::string> edge_keys;
  for (const auto* p : ptrs) {
    for (auto v : p->parser().vertices()) expected_vertices.insert(v);
    for (const auto& e : p->parser().edges()) {
      if (edge_keys
              .insert(std::to_string(e.from) + ">" + std::to_string(e.to) +
                      "@" + std::to_string(e.select_value))
              .second) {
        ++expected_edges;
      }
    }
  }
  EXPECT_EQ(merged.vertices().size(), expected_vertices.size());
  EXPECT_EQ(merged.edges().size(), expected_edges);
  for (auto v : expected_vertices) EXPECT_TRUE(merged.has_vertex(v));

  // Order-insensitive: merging in reverse gives the same vertex/edge
  // sets.
  std::vector<const p4ir::Program*> reversed(ptrs.rbegin(), ptrs.rend());
  auto merged_rev = merge_parsers(reversed, ids);
  EXPECT_EQ(merged.vertices().size(), merged_rev.vertices().size());
  EXPECT_EQ(merged.edges().size(), merged_rev.edges().size());

  // Idempotent: merging the merge with itself changes nothing.
  p4ir::Program wrapper("merged");
  for (const auto& type : universe.types) wrapper.add_header_type(type);
  wrapper.parser() = merged;
  auto twice = merge_parsers({&wrapper, &wrapper}, ids);
  EXPECT_EQ(twice.vertices().size(), merged.vertices().size());
  EXPECT_EQ(twice.edges().size(), merged.edges().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

/// SFC header fuzz: random field values survive encode/decode.
class SfcFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SfcFuzz, RoundTrip) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> dist;

  sfc::SfcHeader h;
  h.service_path_id = static_cast<std::uint16_t>(dist(rng));
  h.service_index = static_cast<std::uint8_t>(dist(rng));
  h.meta.in_port = static_cast<std::uint16_t>(dist(rng) & 0x1ff);
  h.meta.out_port = static_cast<std::uint16_t>(dist(rng) & 0x1ff);
  h.meta.resubmit = dist(rng) & 1;
  h.meta.recirculate = dist(rng) & 1;
  h.meta.drop = dist(rng) & 1;
  h.meta.mirror = dist(rng) & 1;
  h.meta.to_cpu = dist(rng) & 1;
  for (std::uint8_t k = 1; k <= 4; ++k) {
    h.context.set(static_cast<std::uint8_t>(1 + (dist(rng) % 250)),
                  static_cast<std::uint16_t>(dist(rng)));
  }
  h.next_protocol = sfc::NextProtocol::kIpv4;

  std::vector<std::byte> buf(sfc::kSfcHeaderSize);
  h.encode(buf);
  auto decoded = sfc::SfcHeader::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfcFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace dejavu::merge
