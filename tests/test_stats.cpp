// Counter and workload-driven statistics tests: direct table counters,
// per-port counters at the §4 recirculation measurement point, and
// load-balancer spread over generated flow populations.
#include <gtest/gtest.h>

#include <map>

#include "control/deployment.hpp"
#include "sim/workload.hpp"

namespace dejavu {
namespace {

TEST(TableCounters, CountHitsAndMisses) {
  p4ir::Table def;
  def.name = "t";
  def.keys = {p4ir::TableKey{"a.x", p4ir::MatchKind::kExact, 8}};
  def.actions = {"act"};
  sim::RuntimeTable rt(def);
  rt.add_exact({1}, sim::ActionCall{"act", {}});

  rt.lookup({1});
  rt.lookup({1});
  rt.lookup({2});
  rt.lookup({std::nullopt});
  EXPECT_EQ(rt.hits(), 2u);
  EXPECT_EQ(rt.misses(), 2u);
  rt.reset_counters();
  EXPECT_EQ(rt.hits(), 0u);
}

TEST(Workload, FlowsAreDistinctAndDeterministic) {
  sim::FlowMix mix;
  mix.flows = 200;
  mix.seed = 7;
  auto a = sim::generate_flows(mix);
  auto b = sim::generate_flows(mix);
  ASSERT_EQ(a.size(), 200u);

  std::set<std::uint32_t> hashes;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.ip_src, b[i].spec.ip_src);  // deterministic
    EXPECT_EQ(a[i].spec.src_port, b[i].spec.src_port);
    hashes.insert(a[i].tuple().session_hash());
  }
  EXPECT_EQ(hashes.size(), 200u);  // distinct flows, distinct hashes
}

class Fig9Stats : public ::testing::Test {
 protected:
  void SetUp() override { fx_ = control::make_fig9_deployment(); }
  control::Fig2Deployment fx_;
};

TEST_F(Fig9Stats, RecirculatingPathsLoadLoopbackPorts) {
  auto& dp = fx_.deployment->dataplane();
  auto& cp = fx_.deployment->control();

  // Path 2 traffic recirculates once through a pipeline-1 loopback
  // port in the Fig. 9 layout.
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 2, 0, 20);
  const int kPackets = 10;
  for (int i = 0; i < kPackets; ++i) {
    auto out = cp.inject(net::Packet::make(spec), 0);
    ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
    ASSERT_EQ(out.recirculations, 1u);
  }

  std::uint64_t loopback_tx = 0;
  for (std::uint32_t p : dp.config().loopback_ports()) {
    loopback_tx +=
        dp.port_counters(static_cast<std::uint16_t>(p)).tx_packets;
  }
  EXPECT_EQ(loopback_tx, static_cast<std::uint64_t>(kPackets));

  // Front-panel accounting: every packet entered port 0 and left
  // port 1.
  EXPECT_EQ(dp.port_counters(0).rx_packets,
            static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(dp.port_counters(1).tx_packets,
            static_cast<std::uint64_t>(kPackets));
}

TEST_F(Fig9Stats, DirectPathTouchesNoLoopbackPort) {
  auto& dp = fx_.deployment->dataplane();
  auto& cp = fx_.deployment->control();
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto out = cp.inject(net::Packet::make(spec), 0);
  ASSERT_EQ(out.out.size(), 1u);

  for (std::uint32_t p : dp.config().loopback_ports()) {
    EXPECT_EQ(dp.port_counters(static_cast<std::uint16_t>(p)).tx_packets,
              0u);
  }
}

TEST_F(Fig9Stats, LbSpreadsFlowsAcrossThePool) {
  auto& cp = fx_.deployment->control();
  sim::FlowMix mix;
  mix.flows = 200;
  mix.dst = net::Ipv4Addr(10, 1, 0, 10);
  mix.dst_port = 443;
  mix.seed = 99;

  std::map<std::string, int> backends;
  for (const auto& flow : sim::generate_flows(mix)) {
    auto out = cp.inject(flow.packet(), 0);
    ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
    ++backends[out.out.front().packet.ipv4()->dst.to_string()];
  }
  ASSERT_EQ(backends.size(), 2u);  // both pool members used
  for (const auto& [backend, n] : backends) {
    // CRC32 spread: each backend gets 50% +- 15 points of 200 flows.
    EXPECT_GT(n, 70) << backend;
    EXPECT_LT(n, 130) << backend;
  }
  EXPECT_EQ(cp.sessions_learned(), 200u);
}

TEST_F(Fig9Stats, SessionTableCountersSeeTheTraffic) {
  auto& dp = fx_.deployment->dataplane();
  auto& cp = fx_.deployment->control();
  auto tables = dp.tables_named("LB.lb_session");
  ASSERT_EQ(tables.size(), 1u);

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  cp.inject(net::Packet::make(spec), 0);  // miss -> learn -> hit
  cp.inject(net::Packet::make(spec), 0);  // hit

  EXPECT_GE(tables[0]->misses(), 1u);
  EXPECT_GE(tables[0]->hits(), 2u);
}

}  // namespace
}  // namespace dejavu
