#include "compile/allocator.hpp"
#include "compile/report.hpp"

#include <gtest/gtest.h>

namespace dejavu::compile {
namespace {

using p4ir::Action;
using p4ir::ControlBlock;
using p4ir::MatchKind;
using p4ir::Table;
using p4ir::TableKey;

/// Builds a control block of `n` small tables. When `chained` each
/// table writes what the next one matches (a match-dep chain).
ControlBlock make_block(int n, bool chained) {
  ControlBlock block("b");
  for (int i = 0; i < n; ++i) {
    Action a;
    a.name = "act" + std::to_string(i);
    a.primitives = {
        p4ir::set_imm("f.w" + std::to_string(chained ? i + 1 : 1000 + i), 1)};
    block.add_action(a);
    Table t;
    t.name = "t" + std::to_string(i);
    t.keys = {TableKey{"f.w" + std::to_string(i), MatchKind::kExact, 8}};
    t.actions = {a.name};
    t.default_action = a.name;
    t.max_entries = 16;
    block.add_table(t);
    block.apply_table(t.name);
  }
  return block;
}

TEST(Allocator, IndependentTablesPackIntoOneStage) {
  auto block = make_block(4, /*chained=*/false);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, asic::TargetSpec::tofino32());
  ASSERT_TRUE(alloc.ok) << alloc.error;
  EXPECT_EQ(alloc.depth(), 1u);
  EXPECT_EQ(alloc.stages_used(), 1u);
}

TEST(Allocator, MatchChainOccupiesOneStageEach) {
  auto block = make_block(5, /*chained=*/true);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, asic::TargetSpec::tofino32());
  ASSERT_TRUE(alloc.ok) << alloc.error;
  EXPECT_EQ(alloc.depth(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(alloc.stage_of[i], i);
  }
}

TEST(Allocator, ChainLongerThanLadderFails) {
  auto spec = asic::TargetSpec::mini();  // 4 stages
  auto block = make_block(5, /*chained=*/true);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  EXPECT_FALSE(alloc.ok);
  EXPECT_NE(alloc.error.find("does not fit"), std::string::npos);
}

TEST(Allocator, ResourcePressureSpillsToNextStage) {
  // 17 independent tables, 16 logical table IDs per stage: the 17th
  // must spill into stage 1.
  auto block = make_block(17, /*chained=*/false);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, asic::TargetSpec::tofino32());
  ASSERT_TRUE(alloc.ok) << alloc.error;
  EXPECT_EQ(alloc.depth(), 2u);
  EXPECT_EQ(alloc.stages[0].tables.size(), 16u);
  EXPECT_EQ(alloc.stages[1].tables.size(), 1u);
}

TEST(Allocator, NoStageExceedsBudget) {
  auto spec = asic::TargetSpec::tofino32();
  auto block = make_block(40, /*chained=*/false);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  ASSERT_TRUE(alloc.ok) << alloc.error;
  for (const StageUsage& s : alloc.stages) {
    EXPECT_TRUE(s.used.fits_within(spec.stage_budget));
  }
}

TEST(Allocator, DependenciesHonoredUnderPressure) {
  // A chained pair where the first table lands late due to resource
  // pressure: the dependent must still land strictly later.
  auto spec = asic::TargetSpec::tofino32();
  auto block = make_block(20, /*chained=*/true);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  // 20 chained tables need 20 stages > 12: must fail loudly, never
  // silently violate a dependency.
  auto alloc = allocate(graph, spec);
  EXPECT_FALSE(alloc.ok);
}

TEST(Allocator, OversizedLpmSplitsAcrossStages) {
  // A 16K-entry LPM needs 32 TCAM blocks; one Tofino stage holds 24.
  // The allocator must slice it across two stages instead of failing.
  ControlBlock block("b");
  Action route;
  route.name = "route";
  route.params = {{"port", 9}};
  route.primitives = {p4ir::set_from_param("standard_metadata.egress_spec",
                                           "port")};
  block.add_action(route);
  Table lpm;
  lpm.name = "big_lpm";
  lpm.keys = {TableKey{"ipv4.dst_addr", MatchKind::kLpm, 32}};
  lpm.actions = {"route"};
  lpm.default_action = "route";
  lpm.max_entries = 16384;
  block.add_table(lpm);
  block.apply_table("big_lpm");

  auto spec = asic::TargetSpec::tofino32();
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  ASSERT_TRUE(alloc.ok) << alloc.error;
  EXPECT_EQ(alloc.stages_used(), 2u);
  // Both slices reference the same logical table.
  EXPECT_EQ(alloc.stages[0].tables, std::vector<std::size_t>{0});
  EXPECT_EQ(alloc.stages[1].tables, std::vector<std::size_t>{0});
  for (const StageUsage& s : alloc.stages) {
    EXPECT_TRUE(s.used.fits_within(spec.stage_budget));
  }
}

TEST(Allocator, DependentsWaitForTheLastSlice) {
  ControlBlock block("b");
  Action write_ttl;
  write_ttl.name = "write_ttl";
  write_ttl.primitives = {p4ir::set_imm("ipv4.ttl", 1)};
  block.add_action(write_ttl);

  Table big;
  big.name = "big";
  big.keys = {TableKey{"ipv4.dst_addr", MatchKind::kLpm, 32}};
  big.actions = {"write_ttl"};
  big.max_entries = 16384;  // 2 slices
  block.add_table(big);
  block.apply_table("big");

  Table dependent;
  dependent.name = "dep";
  dependent.keys = {TableKey{"ipv4.ttl", MatchKind::kExact, 8}};
  dependent.actions = {"write_ttl"};
  block.add_table(dependent);
  block.apply_table("dep");

  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, asic::TargetSpec::tofino32());
  ASSERT_TRUE(alloc.ok) << alloc.error;
  // big occupies stages 0 and 1; dep must land at stage >= 2.
  EXPECT_GE(alloc.stage_of[1], 2u);
}

TEST(Allocator, ImpossiblySmallTargetStillFailsCleanly) {
  auto spec = asic::TargetSpec::mini();
  spec.stage_budget.tcam_blocks = 0;  // no TCAM at all
  ControlBlock block("b");
  Action a;
  a.name = "a";
  block.add_action(a);
  Table t;
  t.name = "needs_tcam";
  t.keys = {TableKey{"ipv4.dst_addr", MatchKind::kTernary, 32}};
  t.actions = {"a"};
  block.add_table(t);
  block.apply_table("needs_tcam");

  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  EXPECT_FALSE(alloc.ok);
  EXPECT_NE(alloc.error.find("even when split"), std::string::npos);
}

TEST(Report, PercentagesAgainstSwitchTotals) {
  auto spec = asic::TargetSpec::tofino32();
  auto block = make_block(4, /*chained=*/true);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  ASSERT_TRUE(alloc.ok);

  auto r = report({alloc}, spec);
  // 4 stages touched of 48 = 8.33%.
  EXPECT_NEAR(r.pct_stages(), 100.0 * 4 / 48, 1e-9);
  // 4 table IDs of 768.
  EXPECT_NEAR(r.pct_table_ids(), 100.0 * 4 / 768, 1e-9);
  EXPECT_DOUBLE_EQ(r.pct_tcam(), 0.0);
}

TEST(Report, FilterIsolatesFrameworkTables) {
  EXPECT_TRUE(is_framework_table("dejavu_branching"));
  EXPECT_TRUE(is_framework_table("dejavu_check_nextNF_LB"));
  EXPECT_FALSE(is_framework_table("FW.acl"));
  EXPECT_FALSE(is_framework_table("LB.lb_session"));
}

TEST(Report, RendersTableOneShape) {
  auto spec = asic::TargetSpec::tofino32();
  auto block = make_block(2, false);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  auto r = report({alloc}, spec);
  std::string table = r.to_table();
  EXPECT_NE(table.find("Stages%"), std::string::npos);
  EXPECT_NE(table.find("TCAM%"), std::string::npos);
}

TEST(Allocation, StagesTouchedWithPredicate) {
  auto spec = asic::TargetSpec::tofino32();
  auto block = make_block(3, /*chained=*/true);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = allocate(graph, spec);
  ASSERT_TRUE(alloc.ok);
  auto only_t1 = [](const std::string& name) { return name == "t1"; };
  EXPECT_EQ(alloc.stages_touched(only_t1), 1u);
  EXPECT_EQ(alloc.total_used(only_t1).table_ids, 1u);
}

}  // namespace
}  // namespace dejavu::compile
