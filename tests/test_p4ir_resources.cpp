#include "p4ir/resources.hpp"

#include <gtest/gtest.h>

namespace dejavu::p4ir {
namespace {

/// Block with a single configurable table.
struct Fixture {
  ControlBlock block{"fx"};

  Fixture() {
    Action small;
    small.name = "small";
    small.primitives = {set_imm("ipv4.ttl", 1)};
    block.add_action(small);

    Action wide;
    wide.name = "wide";
    wide.params = {{"a", 32}, {"b", 16}};
    wide.primitives = {set_from_param("ipv4.dst_addr", "a"),
                       set_from_param("tcp.dst_port", "b"),
                       add_imm("ipv4.ttl", 0xff)};
    block.add_action(wide);
  }

  TableResources estimate(Table t, bool gated = false) {
    block.add_table(t);
    return estimate_table(block, *block.find_table(t.name), gated);
  }
};

TEST(Resources, ExactTableUsesSramAndExactXbar) {
  Fixture fx;
  Table t;
  t.name = "exact";
  t.keys = {TableKey{"ipv4.dst_addr", MatchKind::kExact, 32}};
  t.actions = {"small"};
  t.max_entries = 1024;
  auto r = fx.estimate(t);
  EXPECT_EQ(r.table_ids, 1u);
  EXPECT_EQ(r.tcam_blocks, 0u);
  EXPECT_GE(r.sram_blocks, 1u);
  EXPECT_EQ(r.exact_xbar_bytes, 4u);
  EXPECT_EQ(r.ternary_xbar_bytes, 0u);
  EXPECT_EQ(r.gateways, 0u);
}

TEST(Resources, TernaryTableUsesTcamAndTernaryXbar) {
  Fixture fx;
  Table t;
  t.name = "ternary";
  t.keys = {TableKey{"ipv4.src_addr", MatchKind::kTernary, 32},
            TableKey{"ipv4.dst_addr", MatchKind::kTernary, 32}};
  t.actions = {"small"};
  t.max_entries = 512;
  auto r = fx.estimate(t);
  // 64 key bits -> 2 TCAM width units x 1 depth unit.
  EXPECT_EQ(r.tcam_blocks, 2u);
  EXPECT_EQ(r.ternary_xbar_bytes, 8u);
  EXPECT_EQ(r.exact_xbar_bytes, 0u);
}

TEST(Resources, LpmAccountsAsTcam) {
  Fixture fx;
  Table t;
  t.name = "lpm";
  t.keys = {TableKey{"ipv4.dst_addr", MatchKind::kLpm, 32}};
  t.actions = {"small"};
  t.max_entries = 1024;  // 2 depth units
  auto r = fx.estimate(t);
  EXPECT_EQ(r.tcam_blocks, 2u);
}

TEST(Resources, GatedTableBurnsGatewayAndExtraTableId) {
  Fixture fx;
  Table t;
  t.name = "gated";
  t.keys = {TableKey{"ipv4.dst_addr", MatchKind::kExact, 32}};
  t.actions = {"small"};
  auto r = fx.estimate(t, /*gated=*/true);
  EXPECT_EQ(r.gateways, 1u);
  EXPECT_EQ(r.table_ids, 2u);
}

TEST(Resources, VliwIsWidestActionNotSum) {
  Fixture fx;
  Table t;
  t.name = "multi";
  t.keys = {TableKey{"ipv4.dst_addr", MatchKind::kExact, 32}};
  t.actions = {"small", "wide"};  // 1 and 3 primitives
  auto r = fx.estimate(t);
  EXPECT_EQ(r.vliw_slots, 3u);
}

TEST(Resources, KeylessTableIsNearlyFree) {
  Fixture fx;
  Table t;
  t.name = "keyless";
  t.default_action = "small";
  t.max_entries = 1;
  auto r = fx.estimate(t);
  EXPECT_EQ(r.table_ids, 1u);
  EXPECT_EQ(r.sram_blocks, 0u);
  EXPECT_EQ(r.tcam_blocks, 0u);
  EXPECT_EQ(r.exact_xbar_bytes, 0u);
}

TEST(Resources, SramScalesWithEntries) {
  Fixture fx;
  Table small;
  small.name = "s1k";
  small.keys = {TableKey{"local.hash", MatchKind::kExact, 32}};
  small.actions = {"wide"};
  small.max_entries = 1024;
  auto r1 = fx.estimate(small);

  Table big = small;
  big.name = "s64k";
  big.max_entries = 65536;
  auto r64 = fx.estimate(big);
  EXPECT_GT(r64.sram_blocks, r1.sram_blocks);
  // 64x the entries needs ~64x the blocks (within rounding).
  EXPECT_GE(r64.sram_blocks, r1.sram_blocks * 32);
}

TEST(Resources, ArithmeticAndFit) {
  TableResources a{1, 0, 2, 0, 3, 4, 0};
  TableResources b{1, 1, 1, 1, 1, 1, 1};
  TableResources sum = a + b;
  EXPECT_EQ(sum.table_ids, 2u);
  EXPECT_EQ(sum.sram_blocks, 3u);
  EXPECT_EQ(sum.vliw_slots, 4u);

  TableResources budget{16, 16, 80, 24, 32, 128, 66};
  EXPECT_TRUE(sum.fits_within(budget));
  TableResources over = budget;
  over.sram_blocks = 81;
  EXPECT_FALSE(over.fits_within(budget));
}

}  // namespace
}  // namespace dejavu::p4ir
