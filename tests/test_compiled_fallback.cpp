// Fallback coverage for the compiled fast path: packets that miss
// every compiled trace — malformed/truncated headers, shapes outside
// the witness set, CPU reinjections, retired-epoch stamps — must
// escape to the interpreter *before any side effect* and produce
// bit-identical outcomes, with the escape tallied in fallback_packets
// (and surfaced through ReplayReport). The pass-cap overflow is the
// one hot-path condition handled inline (side effects already
// applied), so it must agree without escaping.
#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "control/replay_target.hpp"
#include "explore/explorer.hpp"
#include "sim/compiled/compiled_pipeline.hpp"
#include "sim/replay.hpp"

namespace dejavu::sim {
namespace {

net::Packet garbage_packet(std::mt19937_64& rng, std::size_t size) {
  std::vector<std::byte> bytes(size);
  for (std::byte& b : bytes) {
    b = static_cast<std::byte>(rng() & 0xff);
  }
  return net::Packet(net::Buffer(std::move(bytes)));
}

TEST(CompiledFallback, MalformedPacketsEscapeIdentically) {
  auto fx = control::make_fig9_deployment();
  const CompileSeed seed =
      explore::compile_seed(fx.deployment->run_explorer());
  DataPlane interp = fx.deployment->dataplane();
  DataPlane fast_dp = fx.deployment->dataplane();
  CompiledPipeline fast(fast_dp, seed);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();

  std::mt19937_64 rng(0xbadf00d);
  std::vector<net::Packet> malformed;
  malformed.push_back(net::Packet());              // empty
  malformed.push_back(garbage_packet(rng, 3));     // truncated ethernet
  malformed.push_back(garbage_packet(rng, 14));    // ethernet, no payload
  malformed.push_back(garbage_packet(rng, 20));    // truncated ipv4
  for (int i = 0; i < 32; ++i) {
    malformed.push_back(garbage_packet(rng, 1 + rng() % 120));
  }

  for (std::size_t i = 0; i < malformed.size(); ++i) {
    const SwitchOutput a = interp.process(malformed[i], 0);
    const SwitchOutput b = fast.process(malformed[i], 0);
    ASSERT_TRUE(semantically_equal(a, b))
        << "malformed packet " << i << "\ninterp: " << a.drop_reason
        << "\ncompiled: " << b.drop_reason;
  }
  // Every one of them was an escape, and they were shape escapes.
  EXPECT_GT(fast.stats().fallback_packets, 0u);
  EXPECT_EQ(fast.stats().fallback_packets, fast.stats().shape_escapes);
  EXPECT_EQ(interp.all_port_counters(), fast_dp.all_port_counters());
}

TEST(CompiledFallback, ReinjectionsAndStampsStayOnTheSlowPath) {
  auto fx = control::make_fig9_deployment();
  DataPlane interp = fx.deployment->dataplane();
  DataPlane fast_dp = fx.deployment->dataplane();
  CompiledPipeline fast(fast_dp);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();

  const auto flows = control::fig2_replay_flows(6);
  const net::Packet packet = flows[0].flow.packet();
  const std::uint16_t port = flows[0].in_port;

  // A stamped packet (CPU reinjection of a punt) escapes by design.
  const SwitchOutput a1 =
      interp.process(packet, port, /*from_cpu=*/true, interp.epoch());
  const SwitchOutput b1 =
      fast.process(packet, port, /*from_cpu=*/true, fast_dp.epoch());
  ASSERT_TRUE(semantically_equal(a1, b1)) << a1.drop_reason;

  // A stamp below min_live_epoch drains identically (kUpdateDrained).
  interp.set_epoch(3);
  interp.set_min_live_epoch(2);
  fast_dp.set_epoch(3);
  fast_dp.set_min_live_epoch(2);
  const SwitchOutput a2 = interp.process(packet, port, /*from_cpu=*/false,
                                         std::uint32_t{1});
  const SwitchOutput b2 = fast.process(packet, port, /*from_cpu=*/false,
                                       std::uint32_t{1});
  ASSERT_TRUE(semantically_equal(a2, b2));
  EXPECT_EQ(b2.drop_code, DropCode::kUpdateDrained);

  EXPECT_EQ(fast.stats().reinjection_escapes, 2u);
  EXPECT_EQ(fast.stats().compiled_packets, 0u);
}

TEST(CompiledFallback, ExceededPassCapAgreesInline) {
  // Recirculating traffic with a tiny pass cap: the overflow drop is
  // handled on the fast path itself (register/counter side effects are
  // already applied when the cap trips), so outcomes — including the
  // recirc-port suffix in the reason string — must match without any
  // fallback.
  auto fx = control::make_fig9_deployment();
  DataPlane interp = fx.deployment->dataplane();
  DataPlane fast_dp = fx.deployment->dataplane();
  interp.set_max_passes(1);
  fast_dp.set_max_passes(1);
  CompiledPipeline fast(fast_dp);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();

  bool saw_overflow = false;
  for (const ReplayFlow& rf : control::fig2_replay_flows(9)) {
    const net::Packet packet = rf.flow.packet();
    const SwitchOutput a = interp.process(packet, rf.in_port);
    const SwitchOutput b = fast.process(packet, rf.in_port);
    ASSERT_TRUE(semantically_equal(a, b))
        << "interp: " << a.drop_reason << "\ncompiled: " << b.drop_reason;
    saw_overflow |= b.drop_code == DropCode::kMaxPassesExceeded;
  }
  EXPECT_TRUE(saw_overflow);
  EXPECT_EQ(fast.stats().fallback_packets, 0u);
  EXPECT_EQ(interp.all_port_counters(), fast_dp.all_port_counters());
}

/// A replay target whose compiled trace set is deliberately too small
/// (a single TCP witness), so a UDP stream misses every trace.
class NarrowSeedTarget : public ReplayTarget {
 public:
  explicit NarrowSeedTarget(control::Fig2Deployment fx, CompileSeed seed)
      : fx_(std::move(fx)),
        fast_(fx_.deployment->dataplane(), std::move(seed)) {}

  SwitchOutput inject(net::Packet packet, std::uint16_t in_port) override {
    return fast_.process(std::move(packet), in_port);
  }
  DataPlane& dataplane() override { return fx_.deployment->dataplane(); }
  EngineKind engine() const override { return EngineKind::kCompiled; }
  std::uint64_t compiled_packets() const override {
    return fast_.stats().compiled_packets;
  }
  std::uint64_t fallback_packets() const override {
    return fast_.stats().fallback_packets;
  }

 private:
  control::Fig2Deployment fx_;
  CompiledPipeline fast_;
};

TEST(CompiledFallback, FallbackCounterSurfacesInReplayReport) {
  net::PacketSpec tcp_witness;
  tcp_witness.ip_dst = net::Ipv4Addr(10, 3, 0, 1);

  // UDP flows on the plain routed path: their parse shape is outside
  // the TCP-only trace set, so every packet falls back — and the
  // merged counters must still equal a pure interpreter run.
  FlowMix mix;
  mix.flows = 10;
  mix.protocol = net::kIpProtoUdp;
  mix.dst = net::Ipv4Addr(10, 3, 0, 1);
  const auto flows =
      make_path_flows(mix, /*path_id=*/3, control::Fig2Deployment::kSenderPort);

  ReplayConfig config;
  config.workers = 2;
  config.packets_per_flow = 2;

  const auto narrow_factory = [&](std::uint32_t) {
    CompileSeed seed;
    seed.witnesses.push_back(
        CompileSeed::Witness{net::Packet::make(tcp_witness),
                             control::Fig2Deployment::kSenderPort});
    return std::make_unique<NarrowSeedTarget>(control::make_fig9_deployment(),
                                              std::move(seed));
  };
  const ReplayReport compiled = run_replay(narrow_factory, flows, config);

  const auto interp_factory =
      control::fig2_replay_factory(/*fig9=*/true, /*service_punts=*/false);
  const ReplayReport interp = run_replay(interp_factory, flows, config);

  EXPECT_EQ(interp.counters, compiled.counters);
  EXPECT_EQ(compiled.fallback_packets, compiled.counters.packets);
  EXPECT_EQ(compiled.compiled_packets, 0u);
  EXPECT_EQ(interp.fallback_packets, 0u);
}

}  // namespace
}  // namespace dejavu::sim
