// §7 service-upgrade/fail-over support: snapshot a running deployment's
// state, replay it into a freshly built one, and verify behavior is
// indistinguishable — including learned LB sessions.
#include "control/snapshot.hpp"

#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "nf/nfs.hpp"

namespace dejavu::control {
namespace {

net::Packet flow_packet(std::uint16_t sport) {
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  spec.src_port = sport;
  return net::Packet::make(spec);
}

TEST(Snapshot, CapturesInstalledState) {
  auto fx = make_fig9_deployment();
  // Learn a few sessions first.
  for (std::uint16_t s = 0; s < 3; ++s) {
    fx.deployment->control().inject(flow_packet(40000 + s), 0);
  }
  auto snap = take_snapshot(fx.deployment->dataplane());
  EXPECT_GT(snap.entry_count(), 10u);  // checks + branching + NF rules

  auto text = snap.to_text();
  EXPECT_NE(text.find("LB.lb_session"), std::string::npos);
  EXPECT_NE(text.find("dejavu_branching"), std::string::npos);
  EXPECT_NE(text.find("Router.ipv4_lpm"), std::string::npos);
}

TEST(Snapshot, FailoverPreservesBehavior) {
  auto primary = make_fig9_deployment();
  auto& cp1 = primary.deployment->control();
  // Warm sessions on the primary.
  for (std::uint16_t s = 0; s < 5; ++s) {
    ASSERT_EQ(cp1.inject(flow_packet(41000 + s), 0).out.size(), 1u);
  }
  ASSERT_EQ(cp1.sessions_learned(), 5u);

  // Bring up a standby with the same program but NO control-plane
  // installs beyond the framework routing, then restore.
  auto standby = make_fig9_deployment();
  auto snap = take_snapshot(primary.deployment->dataplane());
  auto missing = restore_snapshot(snap, standby.deployment->dataplane());
  EXPECT_TRUE(missing.empty());

  // Warm flows hit their sessions on the standby without new punts.
  for (std::uint16_t s = 0; s < 5; ++s) {
    auto on_primary = cp1.inject(flow_packet(41000 + s), 0);
    auto on_standby =
        standby.deployment->control().inject(flow_packet(41000 + s), 0);
    ASSERT_EQ(on_standby.out.size(), 1u);
    // Same backend choice (the session entry came across).
    EXPECT_EQ(on_primary.out.front().packet.ipv4()->dst,
              on_standby.out.front().packet.ipv4()->dst);
  }
  EXPECT_EQ(standby.deployment->control().sessions_learned(), 0u);
}

TEST(Snapshot, RoundTripIsStable) {
  auto fx = make_fig9_deployment();
  fx.deployment->control().inject(flow_packet(42000), 0);
  auto snap1 = take_snapshot(fx.deployment->dataplane());

  auto fresh = make_fig9_deployment();
  restore_snapshot(snap1, fresh.deployment->dataplane());
  auto snap2 = take_snapshot(fresh.deployment->dataplane());
  EXPECT_EQ(snap1.to_text(), snap2.to_text());
}

TEST(Snapshot, MissingTablesAreReportedNotFatal) {
  auto fx = make_fig9_deployment();
  // Learn a session so LB.lb_session has state worth migrating (empty
  // tables missing from the target are not reported).
  fx.deployment->control().inject(flow_packet(43000), 0);
  auto snap = take_snapshot(fx.deployment->dataplane());

  // A "downgraded" target without the LB: build a 2-NF deployment.
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_router(ids));
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "direct",
                .nfs = {sfc::kClassifier, sfc::kRouter},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1,
                .terminal_pops_sfc = true});
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  auto small = Deployment::build(std::move(nfs), policies,
                                 std::move(config), std::move(ids));

  auto missing = restore_snapshot(snap, small->dataplane());
  EXPECT_FALSE(missing.empty());
  bool saw_lb = false;
  for (const auto& m : missing) {
    saw_lb |= m.find("LB.lb_session") != std::string::npos;
  }
  EXPECT_TRUE(saw_lb);
}

TEST(Snapshot, RegistersRoundTrip) {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_rate_limiter(ids, 100));
  nfs.push_back(nf::make_router(ids));
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "limited",
                .nfs = {sfc::kClassifier, "Limiter", sfc::kRouter},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1,
                .terminal_pops_sfc = true});
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  auto d = Deployment::build(std::move(nfs), policies, std::move(config),
                             std::move(ids));
  d->control().add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .protocol = std::nullopt,
                                  .priority = 0,
                                  .path_id = 1,
                                  .tenant = 1});
  d->control().add_route({.prefix = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                          .port = 1,
                          .next_hop_mac = net::MacAddr::from_u64(0x42)});
  for (int i = 0; i < 7; ++i) {
    d->control().inject(net::Packet::make({}), 0);
  }

  auto snap = take_snapshot(d->dataplane());
  EXPECT_NE(snap.to_text().find("register"), std::string::npos);

  // Zero the live register, restore, and check the count came back.
  auto loc = d->placement().find("Limiter");
  ASSERT_TRUE(loc.has_value());
  auto* cells = d->dataplane().register_array(
      merge::pipelet_control_name(loc->pipelet), "Limiter.flow_count");
  ASSERT_NE(cells, nullptr);
  std::fill(cells->begin(), cells->end(), 0);
  restore_snapshot(snap, d->dataplane());
  std::uint64_t total = 0;
  for (auto v : *cells) total += v;
  EXPECT_EQ(total, 7u);
}

}  // namespace
}  // namespace dejavu::control
