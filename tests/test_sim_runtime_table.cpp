#include "sim/runtime_table.hpp"

#include <gtest/gtest.h>

namespace dejavu::sim {
namespace {

using p4ir::MatchKind;
using p4ir::Table;
using p4ir::TableKey;

Table exact_table() {
  Table t;
  t.name = "exact";
  t.keys = {TableKey{"a.x", MatchKind::kExact, 16},
            TableKey{"a.y", MatchKind::kExact, 8}};
  t.actions = {"hit_act"};
  t.default_action = "miss_act";
  t.max_entries = 4;
  return t;
}

Table lpm_table() {
  Table t;
  t.name = "lpm";
  t.keys = {TableKey{"ipv4.dst", MatchKind::kLpm, 32}};
  t.actions = {"route"};
  t.default_action = "miss";
  t.max_entries = 16;
  return t;
}

TEST(RuntimeTable, ExactHitAndMiss) {
  Table def = exact_table();
  RuntimeTable rt(def);
  rt.add_exact({100, 2}, ActionCall{"hit_act", {{"p", 7}}});

  auto hit = rt.lookup({100, 2});
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.action.action, "hit_act");
  EXPECT_EQ(hit.action.args.at("p"), 7u);

  auto miss = rt.lookup({100, 3});
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.action.action, "miss_act");
}

TEST(RuntimeTable, MissingFieldIsAMiss) {
  Table def = exact_table();
  RuntimeTable rt(def);
  rt.add_exact({100, 2}, ActionCall{"hit_act", {}});
  auto res = rt.lookup({std::nullopt, 2});
  EXPECT_FALSE(res.hit);
}

TEST(RuntimeTable, ExactReinstallOverwrites) {
  Table def = exact_table();
  RuntimeTable rt(def);
  rt.add_exact({1, 1}, ActionCall{"hit_act", {{"p", 1}}});
  rt.add_exact({1, 1}, ActionCall{"hit_act", {{"p", 2}}});
  EXPECT_EQ(rt.entry_count(), 1u);
  EXPECT_EQ(rt.lookup({1, 1}).action.args.at("p"), 2u);
}

TEST(RuntimeTable, TableFullThrows) {
  Table def = exact_table();  // max_entries = 4
  RuntimeTable rt(def);
  for (std::uint64_t i = 0; i < 4; ++i) {
    rt.add_exact({i, 0}, ActionCall{"hit_act", {}});
  }
  EXPECT_THROW(rt.add_exact({9, 0}, ActionCall{"hit_act", {}}),
               std::invalid_argument);
}

TEST(RuntimeTable, ArityMismatchThrows) {
  Table def = exact_table();
  RuntimeTable rt(def);
  EXPECT_THROW(rt.add_exact({1}, ActionCall{"hit_act", {}}),
               std::invalid_argument);
}

TEST(RuntimeTable, KindMismatchThrows) {
  Table exact = exact_table();
  RuntimeTable rt_exact(exact);
  EXPECT_THROW(rt_exact.add_lpm(0, 8, ActionCall{}), std::invalid_argument);
  EXPECT_THROW(rt_exact.add_ternary({}, 0, ActionCall{}),
               std::invalid_argument);

  Table lpm = lpm_table();
  RuntimeTable rt_lpm(lpm);
  EXPECT_THROW(rt_lpm.add_exact({1}, ActionCall{}), std::invalid_argument);
}

TEST(RuntimeTable, LpmLongestPrefixWins) {
  Table def = lpm_table();
  RuntimeTable rt(def);
  rt.add_lpm(0x0a000000, 8, ActionCall{"route", {{"port", 8}}});
  rt.add_lpm(0x0a010000, 16, ActionCall{"route", {{"port", 16}}});

  EXPECT_EQ(rt.lookup({0x0a010203}).action.args.at("port"), 16u);
  EXPECT_EQ(rt.lookup({0x0a990203}).action.args.at("port"), 8u);
  EXPECT_FALSE(rt.lookup({0x0b000001}).hit);
}

TEST(RuntimeTable, LpmDefaultRoute) {
  Table def = lpm_table();
  RuntimeTable rt(def);
  rt.add_lpm(0, 0, ActionCall{"route", {{"port", 1}}});
  EXPECT_TRUE(rt.lookup({0xffffffff}).hit);
}

TEST(RuntimeTable, LpmPrefixTooLongThrows) {
  Table def = lpm_table();
  RuntimeTable rt(def);
  EXPECT_THROW(rt.add_lpm(0, 33, ActionCall{}), std::invalid_argument);
}

TEST(RuntimeTable, TernaryPriorityOrder) {
  Table def;
  def.name = "acl";
  def.keys = {TableKey{"ipv4.src", MatchKind::kTernary, 32}};
  def.actions = {"permit", "deny"};
  def.default_action = "deny";
  def.max_entries = 8;
  RuntimeTable rt(def);
  rt.add_ternary({net::TernaryField{0, 0}}, 0, ActionCall{"deny", {}});
  rt.add_ternary({net::TernaryField{0x0a000000, 0xff000000}}, 10,
                 ActionCall{"permit", {}});

  EXPECT_EQ(rt.lookup({0x0a123456}).action.action, "permit");
  EXPECT_EQ(rt.lookup({0x0b000000}).action.action, "deny");
  EXPECT_TRUE(rt.lookup({0x0b000000}).hit);  // wildcard entry hit
}

TEST(RuntimeTable, KeylessAlwaysHitsDefault) {
  Table def;
  def.name = "keyless";
  def.default_action = "always";
  RuntimeTable rt(def);
  auto res = rt.lookup({});
  EXPECT_TRUE(res.hit);
  EXPECT_EQ(res.action.action, "always");
}

TEST(RuntimeTable, ClearResets) {
  Table def = exact_table();
  RuntimeTable rt(def);
  rt.add_exact({1, 1}, ActionCall{"hit_act", {}});
  rt.clear();
  EXPECT_EQ(rt.entry_count(), 0u);
  EXPECT_FALSE(rt.lookup({1, 1}).hit);
  rt.add_exact({1, 1}, ActionCall{"hit_act", {}});  // usable after clear
  EXPECT_TRUE(rt.lookup({1, 1}).hit);
}

}  // namespace
}  // namespace dejavu::sim
