// Hitless live chain updates (§11): the two-phase epoch flip, the
// write-ahead journal behind it, per-packet consistency under
// concurrent replay, and controller crash recovery. The standing
// oracle throughout is Snapshot::to_text byte-identity: after any
// crash + recovery the switch must equal either a clean rollback or a
// clean commit — never a blend of two generations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "control/deployment.hpp"
#include "control/journal.hpp"
#include "control/live_update.hpp"
#include "control/replay_target.hpp"
#include "control/snapshot.hpp"
#include "explore/explorer.hpp"
#include "route/routing.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"

namespace dejavu::control {
namespace {

/// The canonical update under test: route every chain around the LB.
route::RoutingPlan bypass_lb_plan(Deployment& dep, sfc::PolicySet& reduced) {
  for (const sfc::ChainPolicy& p : dep.policies().policies()) {
    sfc::ChainPolicy rp = p;
    std::erase(rp.nfs, std::string(sfc::kLoadBalancer));
    reduced.add(std::move(rp));
  }
  route::RoutingPlan plan = route::build_routing(
      reduced, dep.placement(), dep.dataplane().config());
  EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;
  return plan;
}

RuleDiff bypass_lb_diff(Deployment& dep) {
  sfc::PolicySet reduced;
  route::RoutingPlan plan = bypass_lb_plan(dep, reduced);
  return routing_rule_diff(dep.routing(), plan, dep.dataplane());
}

/// The committed-state reference: the same diff applied cleanly to a
/// scratch copy of `dp`.
std::string committed_reference(Deployment& dep, const RuleDiff& diff) {
  sim::DataPlane scratch(dep.program(), dep.ids(), dep.dataplane().config());
  restore_snapshot(take_snapshot(dep.dataplane()), scratch);
  LiveUpdate clean(scratch);
  const UpdateReport report = clean.run(diff);
  EXPECT_TRUE(report.committed) << report.error;
  return take_snapshot(scratch).to_text();
}

RuleDiff sample_diff() {
  RuleDiff diff;
  RuleOp install;
  install.kind = RuleOp::Kind::kExact;
  install.control = "pipelet_ingress0";
  install.table = "LB.lb_session";
  install.key = {0x42, 7};
  install.action = {"LB.modify_dstIp", {{"dip", 0x0a010201}, {"ttl", 64}}};
  diff.ops.push_back(install);

  // Removals identify the entry by key alone; routing_rule_diff never
  // sets an action on them, and the journal text format reflects that.
  RuleOp remove;
  remove.kind = RuleOp::Kind::kExact;
  remove.install = false;
  remove.table = "dejavu_branching";
  remove.key = {1, 2};
  diff.ops.push_back(remove);

  RuleOp ternary;
  ternary.kind = RuleOp::Kind::kTernary;
  ternary.table = "Classifier.traffic_class";
  ternary.tkey = {{0x0a000000, 0xff000000}, {0, 0}, {80, 0xffff}};
  ternary.priority = -3;
  ternary.action = {"Classifier.classify", {{"path_id", 2}}};
  diff.ops.push_back(ternary);

  RuleOp reg;
  reg.kind = RuleOp::Kind::kRegister;
  reg.control = "pipelet_ingress1";
  reg.reg = "Limiter.flow_count";
  reg.index = 9;
  reg.value = 500;
  reg.old_value = 123;
  reg.old_bank_epoch = 4;
  diff.ops.push_back(reg);
  return diff;
}

TEST(Journal, TextRoundTripsExactly) {
  Journal journal;
  const RuleDiff diff = sample_diff();
  const std::uint64_t id = journal.begin(3, 4, diff);
  journal.append(id, JournalState::kShadowed);
  journal.append(id, JournalState::kFlipped, "gate moved");
  journal.append(id, JournalState::kDrained, "drained 5 flushed 1");
  journal.append(id, JournalState::kCommitted);

  const std::string text = journal.to_text();
  const Journal parsed = Journal::from_text(text);
  EXPECT_EQ(parsed, journal);
  EXPECT_EQ(parsed.to_text(), text);
  ASSERT_EQ(parsed.records().size(), 5u);
  EXPECT_EQ(parsed.records()[0].diff, diff);
  EXPECT_EQ(parsed.records()[2].note, "gate moved");

  // A re-parsed journal keeps allocating fresh update ids.
  Journal reopened = Journal::from_text(text);
  EXPECT_EQ(reopened.begin(4, 5, {}), id + 1);
}

TEST(Journal, PendingTracksTheLatestUnfinishedUpdate) {
  Journal journal;
  EXPECT_FALSE(journal.pending().has_value());

  const std::uint64_t first = journal.begin(1, 2, sample_diff());
  journal.append(first, JournalState::kRolledBack);
  EXPECT_FALSE(journal.pending().has_value());

  const std::uint64_t second = journal.begin(1, 2, sample_diff());
  journal.append(second, JournalState::kShadowed);
  const auto pending = journal.pending();
  ASSERT_TRUE(pending.has_value());
  EXPECT_EQ(pending->update_id, second);
  EXPECT_EQ(pending->from_epoch, 1u);
  EXPECT_EQ(pending->to_epoch, 2u);
  EXPECT_EQ(pending->last_state, JournalState::kShadowed);
  ASSERT_NE(pending->diff, nullptr);
  EXPECT_EQ(*pending->diff, sample_diff());

  journal.append(second, JournalState::kCommitted);
  EXPECT_FALSE(journal.pending().has_value());
}

TEST(Journal, MalformedTextThrows) {
  EXPECT_THROW(Journal::from_text("gibberish line\n"), std::invalid_argument);
  EXPECT_THROW(Journal::from_text("begin id=notanumber from=1 to=2\n"),
               std::invalid_argument);
  EXPECT_THROW(Journal::from_text("shadowed id=9\nbegin id=1 from=0 to=1\n"
                                  "op exact install control= table=t key=x "
                                  "action=a args=\n"),
               std::invalid_argument);
}

TEST(LiveUpdate, TwoPhaseCommitAdvancesTheEpoch) {
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  const std::uint32_t from = dp.epoch();
  const RuleDiff diff = bypass_lb_diff(dep);
  const std::string committed_ref = committed_reference(dep, diff);

  Journal journal;
  LiveUpdate update(dp, &journal);
  const UpdateReport report = update.run(diff);
  ASSERT_TRUE(report.committed) << report.error;
  EXPECT_FALSE(report.crashed);
  EXPECT_EQ(report.from_epoch, from);
  EXPECT_EQ(report.to_epoch, from + 1);
  EXPECT_EQ(dp.epoch(), from + 1);
  EXPECT_EQ(dp.min_live_epoch(), from + 1);
  EXPECT_EQ(take_snapshot(dp).to_text(), committed_ref);

  // Every phase journaled, in WAL order.
  std::vector<JournalState> states;
  for (const JournalRecord& r : journal.records()) states.push_back(r.state);
  EXPECT_EQ(states,
            (std::vector<JournalState>{
                JournalState::kBegun, JournalState::kShadowed,
                JournalState::kFlipped, JournalState::kDrained,
                JournalState::kCommitted}));
}

TEST(LiveUpdate, EmptyDiffIsRefusedWithoutJournaling) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  const std::string before = take_snapshot(dp).to_text();

  Journal journal;
  LiveUpdate update(dp, &journal);
  const UpdateReport report = update.run(RuleDiff{});
  EXPECT_FALSE(report.committed);
  EXPECT_FALSE(report.error.empty());
  EXPECT_TRUE(journal.records().empty());
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
}

TEST(LiveUpdate, ShadowFaultAbortsAndRollsBackByteIdentical) {
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  const std::uint32_t from = dp.epoch();
  const std::string before = take_snapshot(dp).to_text();

  sim::FaultPlan plan;
  sim::FaultEvent ev;
  ev.kind = sim::FaultKind::kWriteFail;
  ev.op_index = 1;
  ev.count = 100;  // beyond any retry budget
  plan.events.push_back(ev);
  sim::FaultInjector injector(plan);

  Journal journal;
  LiveUpdate update(dp, &journal);
  const UpdateReport report = update.run(bypass_lb_diff(dep), &injector);
  EXPECT_FALSE(report.committed);
  EXPECT_TRUE(report.rolled_back);
  EXPECT_EQ(dp.epoch(), from);
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
  ASSERT_FALSE(journal.records().empty());
  EXPECT_EQ(journal.records().back().state, JournalState::kAborted);
  EXPECT_FALSE(journal.pending().has_value());
}

class LiveUpdateRecovery : public ::testing::TestWithParam<CrashPoint> {};

TEST_P(LiveUpdateRecovery, CrashThenRecoverLandsOnTheCommittedState) {
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  const RuleDiff diff = bypass_lb_diff(dep);
  const std::string committed_ref = committed_reference(dep, diff);

  Journal journal;
  LiveUpdateOptions options;
  options.crash_point = GetParam();
  LiveUpdate update(dp, &journal, options);
  const UpdateReport report = update.run(diff);
  ASSERT_TRUE(report.crashed);
  ASSERT_FALSE(report.committed);
  ASSERT_TRUE(journal.pending().has_value());

  const RecoveryReport recovery = recover(dp, journal);
  EXPECT_EQ(recovery.action, RecoveryAction::kRolledForward)
      << recovery.to_string();
  EXPECT_EQ(take_snapshot(dp).to_text(), committed_ref);
  EXPECT_FALSE(journal.pending().has_value());
  EXPECT_EQ(journal.records().back().state, JournalState::kCommitted);

  // Recovery is idempotent: a second restart finds nothing pending.
  const RecoveryReport again = recover(dp, journal);
  EXPECT_EQ(again.action, RecoveryAction::kNone);
  EXPECT_EQ(take_snapshot(dp).to_text(), committed_ref);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, LiveUpdateRecovery,
                         ::testing::Values(CrashPoint::kAfterShadow,
                                           CrashPoint::kAfterFlip,
                                           CrashPoint::kAfterDrain),
                         [](const auto& info) {
                           switch (info.param) {
                             case CrashPoint::kAfterShadow:
                               return "AfterShadow";
                             case CrashPoint::kAfterFlip:
                               return "AfterFlip";
                             case CrashPoint::kAfterDrain:
                               return "AfterDrain";
                             default:
                               return "None";
                           }
                         });

TEST(LiveUpdateRecoveryFromText, ReparsedJournalRecoversIdentically) {
  // The WAL is only worth its name if recovery works from the re-read
  // text exactly as from the in-memory journal.
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  const RuleDiff diff = bypass_lb_diff(dep);
  const std::string committed_ref = committed_reference(dep, diff);

  Journal journal;
  LiveUpdateOptions options;
  options.crash_point = CrashPoint::kAfterShadow;
  LiveUpdate update(dp, &journal, options);
  ASSERT_TRUE(update.run(diff).crashed);

  Journal reparsed = Journal::from_text(journal.to_text());
  const RecoveryReport recovery = recover(dp, reparsed);
  EXPECT_EQ(recovery.action, RecoveryAction::kRolledForward);
  EXPECT_EQ(take_snapshot(dp).to_text(), committed_ref);
}

TEST(LiveUpdateRecovery, BegunButUntouchedSwitchRollsBackToItself) {
  // Crash after the intent hit the WAL but before any write landed:
  // nothing to adopt, nothing to undo — recovery must leave the switch
  // byte-identical and close out the journal.
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  const std::string before = take_snapshot(dp).to_text();

  Journal journal;
  journal.begin(dp.epoch(), dp.epoch() + 1, bypass_lb_diff(dep));

  const RecoveryReport recovery = recover(dp, journal);
  EXPECT_EQ(recovery.action, RecoveryAction::kRolledBack)
      << recovery.to_string();
  EXPECT_EQ(take_snapshot(dp).to_text(), before);
  EXPECT_FALSE(journal.pending().has_value());
}

TEST(ReplayUnderUpdate, CountersBitIdenticalAcrossWorkerCounts) {
  // The §11 per-packet consistency claim, end to end: an update flips
  // mid-stream, and the merged counters — including the per-epoch
  // packet attribution — are a pure function of the flow set,
  // identical at 1, 2, and 8 workers.
  auto run_at = [](std::uint32_t workers) {
    sim::ReplayEngine engine(fig2_replay_factory());
    sim::ReplayConfig config;
    config.workers = workers;
    config.packets_per_flow = 6;
    config.update = sim::ReplayConfig::ReplayUpdate{};
    config.update->at_packet = 3;
    config.update->apply = [](sim::ReplayTarget& t, std::uint32_t) {
      auto& dt = static_cast<DeploymentTarget&>(t);
      Deployment& dep = *dt.fixture().deployment;
      LiveUpdate update(t.dataplane());
      const UpdateReport report = update.run(bypass_lb_diff(dep));
      ASSERT_TRUE(report.committed) << report.error;
    };
    return engine.run(fig2_replay_flows(48), config);
  };

  const sim::ReplayReport one = run_at(1);
  const sim::ReplayReport two = run_at(2);
  const sim::ReplayReport eight = run_at(8);
  EXPECT_EQ(one.counters, two.counters);
  EXPECT_EQ(one.counters, eight.counters);

  // Every packet is attributable to exactly one generation, and both
  // generations saw traffic (the flip is mid-stream).
  std::uint64_t attributed = 0;
  for (const auto& [epoch, n] : one.counters.packets_by_epoch) {
    attributed += n;
  }
  EXPECT_EQ(attributed, one.counters.packets);
  EXPECT_EQ(one.counters.packets_by_epoch.size(), 2u);
}

TEST(LiveUpdate, CompiledPipelineNeverServesARetiredGeneration) {
  // Trace-invalidation property (DESIGN.md §12): after a committed
  // flip the compiled engine must recompile (generation moved) or fall
  // back (compiled_ok cleared) — and the first packet it handles runs
  // on the new epoch with interpreter-identical semantics.
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  sim::CompiledPipeline fast(dp);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();
  const std::uint64_t gen = fast.generation();

  const auto flows = fig2_replay_flows(6);
  const net::Packet packet = flows.back().flow.packet();  // routed path
  const std::uint16_t port = flows.back().in_port;
  const std::uint32_t old_epoch = dp.epoch();
  EXPECT_EQ(fast.process(packet, port).epoch, old_epoch);

  LiveUpdate update(dp);
  ASSERT_TRUE(update.run(bypass_lb_diff(dep)).committed);
  ASSERT_GT(dp.epoch(), old_epoch);

  // Interpreter reference from an identical-state clone, then the
  // compiled engine on the live switch.
  sim::DataPlane reference = dp;
  const sim::SwitchOutput expected = reference.process(packet, port);
  const sim::SwitchOutput got = fast.process(packet, port);
  EXPECT_TRUE(sim::semantically_equal(expected, got)) << got.drop_reason;
  EXPECT_EQ(got.epoch, dp.epoch());
  EXPECT_TRUE(fast.generation() > gen || !fast.compiled_ok());
}

TEST(ExplorerEpochs, DrainedGenerationIsFlaggedDvS8) {
  auto fx = make_fig9_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  dp.set_epoch(1);
  dp.set_min_live_epoch(1);

  explore::ExploreOptions options;
  options.epoch = 0;  // a generation the switch already drained
  options.differential = false;
  const explore::ExploreResult result =
      explore::run(dp, fx.policies, options);
  EXPECT_TRUE(result.report.has("DV-S8")) << result.report.to_string();
  EXPECT_FALSE(result.report.ok());
}

TEST(ExplorerEpochs, MidUpdateGenerationsExploreCleanSeparately) {
  // Crash after shadow: both generations coexist on the switch. Each
  // one must verify clean on its own — proving the epoch windows keep
  // them apart — and neither exploration may report a DV-S8 blend.
  auto fx = make_fig9_deployment();
  Deployment& dep = *fx.deployment;
  sim::DataPlane& dp = dep.dataplane();
  const std::uint32_t from = dp.epoch();

  sfc::PolicySet reduced;
  route::RoutingPlan plan = bypass_lb_plan(dep, reduced);
  const RuleDiff diff = routing_rule_diff(dep.routing(), plan, dp);
  Journal journal;
  LiveUpdateOptions options;
  options.crash_point = CrashPoint::kAfterShadow;
  LiveUpdate update(dp, &journal, options);
  ASSERT_TRUE(update.run(diff).crashed);

  explore::ExploreOptions old_gen;
  old_gen.epoch = from;
  const explore::ExploreResult old_result =
      explore::run(dp, fx.policies, old_gen);
  EXPECT_TRUE(old_result.report.ok()) << old_result.report.to_string();

  explore::ExploreOptions new_gen;
  new_gen.epoch = from + 1;
  const explore::ExploreResult new_result =
      explore::run(dp, reduced, new_gen);
  EXPECT_FALSE(new_result.report.has("DV-S8"))
      << new_result.report.to_string();
}

}  // namespace
}  // namespace dejavu::control
