#include "net/lpm.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>

namespace dejavu::net {
namespace {

TEST(LpmTrie, LongestPrefixWins) {
  LpmTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 24);

  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 1, 2, 3)), 24);
  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 1, 9, 9)), 16);
  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 200, 0, 1)), 8);
  EXPECT_EQ(trie.lookup(Ipv4Addr(11, 0, 0, 1)), nullptr);
}

TEST(LpmTrie, DefaultRouteCatchesAll) {
  LpmTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 0);
  EXPECT_EQ(*trie.lookup(Ipv4Addr(203, 0, 113, 7)), 0);
}

TEST(LpmTrie, InsertReplacesValue) {
  LpmTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 2));
  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 0, 0, 1)), 2);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(LpmTrie, EraseExposesShorterPrefix) {
  LpmTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 16);
  EXPECT_TRUE(trie.erase(*Ipv4Prefix::parse("10.1.0.0/16")));
  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 1, 0, 1)), 8);
  EXPECT_FALSE(trie.erase(*Ipv4Prefix::parse("10.1.0.0/16")));
}

TEST(LpmTrie, Host32Routes) {
  LpmTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.1/32"), 1);
  trie.insert(*Ipv4Prefix::parse("10.0.0.2/32"), 2);
  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 0, 0, 1)), 1);
  EXPECT_EQ(*trie.lookup(Ipv4Addr(10, 0, 0, 2)), 2);
  EXPECT_EQ(trie.lookup(Ipv4Addr(10, 0, 0, 3)), nullptr);
}

TEST(LpmTrie, EntriesEnumeratesAll) {
  LpmTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 24);
  auto entries = trie.entries();
  ASSERT_EQ(entries.size(), 3u);
  std::map<std::string, int> by_prefix;
  for (const auto& [prefix, v] : entries) by_prefix[prefix.to_string()] = v;
  EXPECT_EQ(by_prefix.at("0.0.0.0/0"), 0);
  EXPECT_EQ(by_prefix.at("10.0.0.0/8"), 8);
  EXPECT_EQ(by_prefix.at("10.1.2.0/24"), 24);
}

/// Property test: trie lookups agree with a brute-force
/// longest-matching-prefix scan over random rule sets.
class LpmRandomSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LpmRandomSweep, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint32_t> addr_dist;
  std::uniform_int_distribution<int> len_dist(0, 32);

  LpmTrie<int> trie;
  std::vector<std::pair<Ipv4Prefix, int>> rules;
  for (int i = 0; i < 60; ++i) {
    Ipv4Prefix prefix(Ipv4Addr(addr_dist(rng)),
                      static_cast<std::uint8_t>(len_dist(rng)));
    // The trie replaces on duplicate prefixes; mirror that.
    std::erase_if(rules, [&](const auto& r) { return r.first == prefix; });
    rules.emplace_back(prefix, i);
    trie.insert(prefix, i);
  }

  for (int probe = 0; probe < 300; ++probe) {
    Ipv4Addr addr(addr_dist(rng));
    const int* got = trie.lookup(addr);

    const std::pair<Ipv4Prefix, int>* best = nullptr;
    for (const auto& rule : rules) {
      if (!rule.first.contains(addr)) continue;
      if (best == nullptr || rule.first.length() > best->first.length()) {
        best = &rule;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr) << addr.to_string();
    } else {
      ASSERT_NE(got, nullptr) << addr.to_string();
      EXPECT_EQ(*got, best->second) << addr.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace dejavu::net
