// Tests of the PTF-style harness itself: every expectation kind must
// detect both the matching and the mismatching case.
#include "ptf/ptf.hpp"

#include <gtest/gtest.h>

#include "control/deployment.hpp"

namespace dejavu::ptf {
namespace {

class PtfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = control::make_fig2_deployment();
  }

  static net::Packet direct_packet() {
    net::PacketSpec spec;
    spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
    return net::Packet::make(spec);
  }

  control::Fig2Deployment fx_;
};

TEST_F(PtfTest, PortMismatchIsReported) {
  Expectation expect;
  expect.port = 7;  // actually delivered on 1
  auto result = send_and_expect(fx_.deployment->control(), direct_packet(),
                                0, expect);
  EXPECT_FALSE(result.pass);
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("port"), std::string::npos);
  EXPECT_NE(result.summary().find("FAIL"), std::string::npos);
}

TEST_F(PtfTest, FieldMismatchesAreCollected) {
  Expectation expect;
  expect.ipv4_dst = net::Ipv4Addr(9, 9, 9, 9);
  expect.ttl = 60;
  expect.eth_dst = net::MacAddr::from_u64(0x111111111111);
  auto result = send_and_expect(fx_.deployment->control(), direct_packet(),
                                0, expect);
  EXPECT_FALSE(result.pass);
  EXPECT_EQ(result.failures.size(), 3u);  // dst, ttl, mac all wrong
}

TEST_F(PtfTest, DropExpectationBothWays) {
  // Unclassified traffic drops: expecting a drop passes.
  net::PacketSpec unknown;
  unknown.ip_dst = net::Ipv4Addr(172, 16, 0, 1);
  Expectation expect_drop;
  expect_drop.outcome = Expectation::Outcome::kDropped;
  EXPECT_TRUE(send_and_expect(fx_.deployment->control(),
                              net::Packet::make(unknown), 0, expect_drop)
                  .pass);

  // Delivered traffic fails a drop expectation.
  EXPECT_FALSE(send_and_expect(fx_.deployment->control(), direct_packet(),
                               0, expect_drop)
                   .pass);
}

TEST_F(PtfTest, UnexpectedDropExplainsItself) {
  net::PacketSpec unknown;
  unknown.ip_dst = net::Ipv4Addr(172, 16, 0, 1);
  Expectation expect;
  expect.port = 1;
  auto result = send_and_expect(fx_.deployment->control(),
                                net::Packet::make(unknown), 0, expect);
  EXPECT_FALSE(result.pass);
  EXPECT_NE(result.failures[0].find("dropped"), std::string::npos);
  // The data-plane trace is attached for debugging.
  EXPECT_FALSE(result.trace.empty());
}

TEST_F(PtfTest, RecirculationCountExpectations) {
  Expectation expect;
  expect.recirculations = 0;  // optimizer placement: direct path, 0 loops
  EXPECT_TRUE(send_and_expect(fx_.deployment->control(), direct_packet(), 0,
                              expect)
                  .pass);
  Expectation wrong;
  wrong.recirculations = 5;
  EXPECT_FALSE(send_and_expect(fx_.deployment->control(), direct_packet(),
                               0, wrong)
                   .pass);
}

TEST_F(PtfTest, SfcLeakCheckCanBeDisabled) {
  Expectation expect;
  expect.require_no_sfc = false;
  EXPECT_TRUE(send_and_expect(fx_.deployment->control(), direct_packet(), 0,
                              expect)
                  .pass);
}

}  // namespace
}  // namespace dejavu::ptf
