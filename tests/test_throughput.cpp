// The deployment-wide throughput calculator must degenerate to the §4
// closed forms on a single chain and stay lossless when recirculation
// demand fits capacity (§5's "all the traffic can recirculate once").
#include "sim/throughput.hpp"

#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "sim/fluid.hpp"

namespace dejavu::sim {
namespace {

using place::Traversal;
using place::TraversalStep;

TraversalStep step(std::uint32_t pipeline, asic::PipeKind kind,
                   TraversalStep::Exit exit) {
  TraversalStep s;
  s.pipelet = {pipeline, kind};
  s.exit_via = exit;
  return s;
}

/// A traversal that recirculates k times through pipeline 0.
Traversal k_loops(std::uint32_t k) {
  Traversal t;
  t.feasible = true;
  t.recirculations = k;
  for (std::uint32_t i = 0; i < k; ++i) {
    t.steps.push_back(step(0, asic::PipeKind::kIngress,
                           TraversalStep::Exit::kToEgress));
    t.steps.push_back(step(0, asic::PipeKind::kEgress,
                           TraversalStep::Exit::kRecirculate));
  }
  t.steps.push_back(step(0, asic::PipeKind::kIngress,
                         TraversalStep::Exit::kToEgress));
  t.steps.push_back(
      step(0, asic::PipeKind::kEgress, TraversalStep::Exit::kOut));
  return t;
}

sfc::PolicySet one_policy() {
  sfc::PolicySet set;
  set.add({.path_id = 1, .name = "p", .nfs = {"A"}, .weight = 1.0});
  return set;
}

class SectionFourSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SectionFourSweep, MatchesTheClosedForm) {
  const std::uint32_t k = GetParam();
  // One pipeline whose only recirculation bandwidth is the dedicated
  // 100G port — exactly the Fig. 7(a) single-loopback setting.
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  std::map<std::uint16_t, Traversal> traversals;
  traversals.emplace(1, k_loops(k));

  auto report = estimate_throughput(one_policy(), traversals, config,
                                    /*offered=*/100.0);
  ASSERT_EQ(report.per_path.size(), 1u);
  EXPECT_NEAR(report.per_path[0].delivered_gbps,
              recirc_throughput_gbps(100.0, k), 0.5)
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Recircs, SectionFourSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Throughput, LosslessUnderCapacity) {
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  std::map<std::uint16_t, Traversal> traversals;
  traversals.emplace(1, k_loops(1));
  auto report = estimate_throughput(one_policy(), traversals, config,
                                    /*offered=*/80.0);  // < 100G capacity
  EXPECT_DOUBLE_EQ(report.total_delivered_gbps, 80.0);
  EXPECT_NEAR(report.recirc_utilization.at(0), 0.8, 1e-9);
}

TEST(Throughput, SharedLoopShedsBothPathsProportionally) {
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  sfc::PolicySet policies;
  policies.add({.path_id = 1, .name = "a", .nfs = {"A"}, .weight = 0.5});
  policies.add({.path_id = 2, .name = "b", .nfs = {"B"}, .weight = 0.5});
  std::map<std::uint16_t, Traversal> traversals;
  traversals.emplace(1, k_loops(1));
  traversals.emplace(2, k_loops(1));

  // 300G offered, 150G per path, single 100G loop: both shed to the
  // same fraction.
  auto report = estimate_throughput(policies, traversals, config, 300.0);
  ASSERT_EQ(report.per_path.size(), 2u);
  EXPECT_NEAR(report.per_path[0].delivery_fraction(),
              report.per_path[1].delivery_fraction(), 1e-9);
  EXPECT_NEAR(report.total_delivered_gbps, 100.0, 1.0);
}

TEST(Throughput, Fig9DeploymentCarriesFullLoadOnce) {
  // §5: 1.6 Tbps external capacity, all of it may recirculate once.
  auto fx = control::make_fig9_deployment();
  auto report = estimate_throughput(
      fx.policies, fx.deployment->routing().traversals,
      fx.deployment->dataplane().config(), /*offered=*/1600.0);
  EXPECT_NEAR(report.total_delivered_gbps, 1600.0, 1e-6);
  for (const auto& [pipeline, util] : report.recirc_utilization) {
    EXPECT_LE(util, 1.0 + 1e-9) << "pipeline " << pipeline;
  }
}

TEST(Throughput, InfeasibleTraversalsAreSkipped) {
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  sfc::PolicySet policies;
  policies.add({.path_id = 1, .name = "a", .nfs = {"A"}, .weight = 1.0});
  Traversal bad;
  bad.feasible = false;
  std::map<std::uint16_t, Traversal> traversals;
  traversals.emplace(1, std::move(bad));
  auto report = estimate_throughput(policies, traversals, config, 100.0);
  EXPECT_TRUE(report.per_path.empty());
  EXPECT_DOUBLE_EQ(report.total_delivered_gbps, 0.0);
}

TEST(Throughput, TableRendering) {
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  std::map<std::uint16_t, Traversal> traversals;
  traversals.emplace(1, k_loops(2));
  auto report = estimate_throughput(one_policy(), traversals, config, 100.0);
  auto table = report.to_table();
  EXPECT_NE(table.find("delivered"), std::string::npos);
  EXPECT_NE(table.find("utilization"), std::string::npos);
}

}  // namespace
}  // namespace dejavu::sim
