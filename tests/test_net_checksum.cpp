#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include "net/bytes.hpp"

namespace dejavu::net {
namespace {

// RFC 1071 worked example: checksum of 00 01 f2 03 f4 f5 f6 f7.
TEST(InternetChecksum, Rfc1071Example) {
  auto data = from_hex("0001f203f4f5f6f7");
  // Sum = 0x2ddf0 -> fold 0xddf2 -> complement 0x220d.
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  auto even = from_hex("ab00");
  auto odd = from_hex("ab");
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(InternetChecksum, ValidHeaderVerifiesToZero) {
  // A real IPv4 header with a correct checksum field: re-summing the
  // whole header (checksum included) must give 0xffff before the
  // final complement, i.e. internet_checksum() == 0.
  auto header = from_hex("4500003c1c4640004006b1e6ac100a63ac100a0c");
  EXPECT_EQ(internet_checksum(header), 0);
}

TEST(ChecksumAccumulator, MatchesOneShot) {
  auto data = from_hex("0001f203f4f5f6f7");
  ChecksumAccumulator acc;
  acc.add(std::span<const std::byte>(data).first(4));
  acc.add(std::span<const std::byte>(data).subspan(4));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(ChecksumAccumulator, WordHelpers) {
  ChecksumAccumulator a, b;
  a.add(from_hex("12345678"));
  b.add_u32(0x12345678);
  EXPECT_EQ(a.finish(), b.finish());

  ChecksumAccumulator c, d;
  c.add(from_hex("abcd"));
  d.add_u16(0xabcd);
  EXPECT_EQ(c.finish(), d.finish());
}

// CRC32 of "123456789" is the classic check value 0xcbf43926.
TEST(Crc32, StandardCheckValue) {
  const char* s = "123456789";
  std::vector<std::byte> data;
  for (const char* p = s; *p; ++p) data.push_back(static_cast<std::byte>(*p));
  EXPECT_EQ(crc32(data), 0xcbf43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  auto data = from_hex("00112233445566778899aabbccddeeff");
  Crc32 crc;
  crc.add(std::span<const std::byte>(data).first(5));
  crc.add(std::span<const std::byte>(data).subspan(5));
  EXPECT_EQ(crc.finish(), crc32(data));
}

TEST(Crc32, WidthHelpersMatchByteFeeds) {
  Crc32 a, b;
  a.add_u32(0xdeadbeef);
  a.add_u16(0x1234);
  a.add_u8(0x56);
  b.add(from_hex("deadbeef123456"));
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(Crc32, SensitiveToByteOrder) {
  Crc32 a, b;
  a.add_u16(0x0102);
  b.add_u16(0x0201);
  EXPECT_NE(a.finish(), b.finish());
}

}  // namespace
}  // namespace dejavu::net
