#include "sfc/header.hpp"

#include <gtest/gtest.h>

namespace dejavu::sfc {
namespace {

SfcHeader sample_header() {
  SfcHeader h;
  h.service_path_id = 0x1234;
  h.service_index = 3;
  h.meta.in_port = 17;
  h.meta.out_port = 300;
  h.meta.recirculate = true;
  h.meta.to_cpu = true;
  h.context.set(1, 0xaaaa);
  h.context.set(2, 0xbbbb);
  h.next_protocol = NextProtocol::kIpv4;
  return h;
}

TEST(SfcHeader, WireSizeMatchesFig3) {
  // 2 B path + 1 B index + 4 B platform metadata + 12 B context
  // + 1 B next protocol = 20 bytes.
  EXPECT_EQ(kSfcHeaderSize, 20u);
}

TEST(SfcHeader, EncodeDecodeRoundTrip) {
  SfcHeader h = sample_header();
  std::vector<std::byte> buf(kSfcHeaderSize);
  h.encode(buf);
  auto decoded = SfcHeader::decode(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(SfcHeader, DecodeRejectsShortBuffer) {
  std::vector<std::byte> buf(kSfcHeaderSize - 1);
  EXPECT_FALSE(SfcHeader::decode(buf).has_value());
}

/// Property sweep: every flag combination survives the round trip.
class FlagSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlagSweep, FlagsRoundTrip) {
  const int bits = GetParam();
  SfcHeader h;
  h.meta.resubmit = bits & 1;
  h.meta.recirculate = bits & 2;
  h.meta.drop = bits & 4;
  h.meta.mirror = bits & 8;
  h.meta.to_cpu = bits & 16;
  std::vector<std::byte> buf(kSfcHeaderSize);
  h.encode(buf);
  EXPECT_EQ(SfcHeader::decode(buf)->meta, h.meta);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, FlagSweep, ::testing::Range(0, 32));

TEST(ContextData, SetGetErase) {
  ContextData ctx;
  EXPECT_TRUE(ctx.set(5, 100));
  EXPECT_EQ(ctx.get(5), 100);
  EXPECT_TRUE(ctx.set(5, 200));  // overwrite reuses the slot
  EXPECT_EQ(ctx.get(5), 200);
  EXPECT_EQ(ctx.used_slots(), 1u);
  EXPECT_TRUE(ctx.erase(5));
  EXPECT_FALSE(ctx.get(5).has_value());
  EXPECT_FALSE(ctx.erase(5));
}

TEST(ContextData, KeyZeroIsInvalid) {
  ContextData ctx;
  EXPECT_FALSE(ctx.set(0, 1));
  EXPECT_FALSE(ctx.get(0).has_value());
}

TEST(ContextData, CapacityIsFourSlots) {
  ContextData ctx;
  for (std::uint8_t k = 1; k <= 4; ++k) EXPECT_TRUE(ctx.set(k, k));
  EXPECT_FALSE(ctx.set(5, 5));  // full
  EXPECT_TRUE(ctx.set(3, 33));  // existing keys still writable
  EXPECT_TRUE(ctx.erase(2));
  EXPECT_TRUE(ctx.set(5, 5));  // freed slot reusable
}

TEST(PushPop, InsertsBetweenEthernetAndIp) {
  net::Packet p = net::Packet::make({});
  const std::size_t before = p.size();
  auto orig_ip = *p.ipv4();

  SfcHeader h;
  h.service_path_id = 7;
  push_sfc(p, h);

  EXPECT_TRUE(p.has_sfc_header());
  EXPECT_EQ(p.size(), before + kSfcHeaderSize);
  // The IP header now sits behind the SFC header.
  auto shifted_ip = p.ipv4(kSfcHeaderSize);
  ASSERT_TRUE(shifted_ip.has_value());
  EXPECT_EQ(shifted_ip->dst, orig_ip.dst);

  auto read = read_sfc(p);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->service_path_id, 7);
  EXPECT_EQ(read->next_protocol, NextProtocol::kIpv4);
}

TEST(PushPop, PopRestoresOriginalBytes) {
  net::Packet p = net::Packet::make({});
  const net::Packet original = p;

  SfcHeader h;
  h.service_path_id = 9;
  h.context.set(1, 42);
  push_sfc(p, h);
  SfcHeader popped = pop_sfc(p);

  EXPECT_EQ(p, original);
  EXPECT_EQ(popped.service_path_id, 9);
  EXPECT_EQ(popped.context.get(1), 42);
}

TEST(PushPop, DoublePushThrows) {
  net::Packet p = net::Packet::make({});
  push_sfc(p, SfcHeader{});
  EXPECT_THROW(push_sfc(p, SfcHeader{}), std::logic_error);
}

TEST(PushPop, PopWithoutHeaderThrows) {
  net::Packet p = net::Packet::make({});
  EXPECT_THROW(pop_sfc(p), std::logic_error);
}

TEST(PushPop, WriteSfcUpdatesInPlace) {
  net::Packet p = net::Packet::make({});
  push_sfc(p, SfcHeader{});
  auto h = *read_sfc(p);
  h.service_index = 5;
  h.meta.drop = true;
  write_sfc(p, h);
  EXPECT_EQ(*read_sfc(p), h);
}

TEST(PushPop, WriteSfcWithoutHeaderThrows) {
  net::Packet p = net::Packet::make({});
  EXPECT_THROW(write_sfc(p, SfcHeader{}), std::logic_error);
}

TEST(PortSentinel, UnsetOutPortReportsAbsent) {
  PlatformMetadata m;
  EXPECT_FALSE(m.has_out_port());
  m.out_port = 3;
  EXPECT_TRUE(m.has_out_port());
}

}  // namespace
}  // namespace dejavu::sfc
