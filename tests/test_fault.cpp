// Deterministic fault injection: seeded plans are replayable, the
// write lane's budgets drive retry/rollback, and the chaos invariant
// checker attributes every way a packet can go wrong.
#include <gtest/gtest.h>

#include "net/packet.hpp"
#include "sfc/header.hpp"
#include "sim/fault.hpp"

namespace dejavu {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultProfile;

TEST(FaultPlan, SameSeedSamePlan) {
  const FaultProfile profile = FaultProfile::fig2_mixed();
  const FaultPlan a = FaultPlan::from_seed(7, profile);
  const FaultPlan b = FaultPlan::from_seed(7, profile);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << a.events[i].to_string();
  }
  const FaultPlan c = FaultPlan::from_seed(8, profile);
  EXPECT_NE(a.events, c.events);
}

TEST(FaultPlan, ProfileCountsRespected) {
  const FaultPlan plan = FaultPlan::from_seed(3, FaultProfile::fig2_mixed());
  std::map<FaultKind, int> by_kind;
  for (const FaultEvent& ev : plan.events) ++by_kind[ev.kind];
  EXPECT_EQ(by_kind[FaultKind::kWriteFail], 2);
  EXPECT_EQ(by_kind[FaultKind::kWriteTimeout], 1);
  EXPECT_EQ(by_kind[FaultKind::kEvictEntry], 4);
  EXPECT_EQ(by_kind[FaultKind::kRecircPortDown], 2);
  // fig2_mixed declares no register candidates, so no corruption
  // events are synthesized even though the count knob is nonzero.
  EXPECT_EQ(by_kind[FaultKind::kRegisterCorrupt], 0);
}

TEST(FaultPlan, LaneFilters) {
  const FaultPlan plan = FaultPlan::from_seed(11, FaultProfile::fig2_mixed());
  for (const FaultEvent* ev : plan.write_events()) {
    EXPECT_TRUE(ev->kind == FaultKind::kWriteFail ||
                ev->kind == FaultKind::kWriteTimeout);
  }
  // Every packet-lane event is discoverable through its own slot and
  // only through it.
  std::size_t packet_events = 0;
  for (const FaultEvent& ev : plan.events) {
    if (ev.kind == FaultKind::kWriteFail ||
        ev.kind == FaultKind::kWriteTimeout) {
      continue;
    }
    ++packet_events;
    auto hits = plan.packet_events(ev.flow_bucket, ev.packet_index);
    bool found = false;
    for (const FaultEvent* h : hits) found |= *h == ev;
    EXPECT_TRUE(found) << ev.to_string();
  }
  EXPECT_GT(packet_events, 0u);
  EXPECT_TRUE(plan.packet_events(FaultPlan::kFlowBuckets + 1, 0).empty());
}

TEST(FaultInjector, BudgetThenPass) {
  FaultPlan plan;
  FaultEvent ev;
  ev.kind = FaultKind::kWriteFail;
  ev.op_index = 3;
  ev.count = 2;
  plan.events.push_back(ev);

  sim::FaultInjector injector(plan);
  injector.on_write(0);  // unscheduled op: no throw
  EXPECT_THROW(injector.on_write(3), sim::TransientWriteError);
  EXPECT_THROW(injector.on_write(3), sim::TransientWriteError);
  injector.on_write(3);  // budget exhausted: passes
  EXPECT_EQ(injector.faults_fired(), 2u);

  injector.reset();  // re-armed for the next transaction
  EXPECT_THROW(injector.on_write(3), sim::TransientWriteError);
}

TEST(InvariantChecker, AttributedDropIsClean) {
  sim::SwitchOutput out;
  out.set_drop(sim::DropCode::kIngressDrop, "dropped in ingress pipe 0");
  EXPECT_EQ(sim::ChaosTarget::check_output(out).total(), 0u);
}

TEST(InvariantChecker, UnattributedDropCounts) {
  sim::SwitchOutput out;
  out.dropped = true;  // no code set
  const auto v = sim::ChaosTarget::check_output(out);
  EXPECT_EQ(v.unattributed_drops, 1u);
  EXPECT_EQ(v.total(), 1u);
}

TEST(InvariantChecker, ForwardingLoopCounts) {
  sim::SwitchOutput out;
  out.set_drop(sim::DropCode::kMaxPassesExceeded, "loop");
  const auto v = sim::ChaosTarget::check_output(out);
  EXPECT_EQ(v.forwarding_loops, 1u);
  EXPECT_EQ(v.unattributed_drops, 0u);
}

TEST(InvariantChecker, MetadataLeakCounts) {
  net::Packet p = net::Packet::make({});
  sfc::SfcHeader hdr;
  hdr.service_path_id = 1;
  sfc::push_sfc(p, hdr);

  sim::SwitchOutput out;
  out.out.push_back({1, std::move(p)});
  EXPECT_EQ(sim::ChaosTarget::check_output(out).metadata_leaks, 1u);
}

TEST(InvariantChecker, StaleChecksumCounts) {
  net::Packet p = net::Packet::make({});
  ASSERT_TRUE(p.ipv4().has_value());
  // Flip a checksum bit in the raw bytes (set_ipv4 would recompute it).
  auto bytes = p.data().mutable_slice(p.ipv4_offset(0) + 10, 2);
  bytes[0] ^= std::byte{0x1};

  sim::SwitchOutput out;
  out.out.push_back({1, std::move(p)});
  EXPECT_EQ(sim::ChaosTarget::check_output(out).corrupt_packets, 1u);

  sim::SwitchOutput clean;
  clean.out.push_back({1, net::Packet::make({})});
  EXPECT_EQ(sim::ChaosTarget::check_output(clean).corrupt_packets, 0u);
}

}  // namespace
}  // namespace dejavu
