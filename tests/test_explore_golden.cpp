// Golden diagnostics for the symbolic explorer: the exact JSON
// `dejavu_cli explore --json` prints for the shipped targets and for
// every seeded semantic-bug fixture, compared byte-for-byte against
// the checked-in expectations in tests/golden/. The CLI prints
// Report::to_json() verbatim for a single selection, so comparing the
// library output here pins the CLI's contract too. Regenerate after an
// intentional change with:
//
//   dejavu_cli explore --json --target fig2 > golden/explore_fig2.json
//   dejavu_cli explore --json --fixture NAME > golden/explore_fixture_NAME.json
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "explore/explorer.hpp"
#include "explore/fixtures.hpp"
#include "explore_test_util.hpp"

namespace dejavu {
namespace {

std::string read_golden(const std::string& file) {
  const std::string path = std::string(DEJAVU_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ExploreGolden : public testing::TestWithParam<const char*> {};

TEST_P(ExploreGolden, TargetMatches) {
  const std::string name = GetParam();
  test::ExploreTarget target = test::build_explore_target(name);
  const explore::ExploreResult& result = target.deployment->run_explorer();
  EXPECT_EQ(result.report.to_json(), read_golden("explore_" + name + ".json"));
  // The shipped targets must stay error-free — the CI gate
  // (`dejavu_cli explore --all`) relies on exit code 0.
  EXPECT_EQ(result.report.errors(), 0u) << result.report.to_string();
}

INSTANTIATE_TEST_SUITE_P(ShippedTargets, ExploreGolden,
                         testing::Values("fig2", "fig9", "quickstart",
                                         "stateful"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ExploreGolden, EveryFixtureMatches) {
  for (const std::string& name : explore::fixtures::names()) {
    explore::fixtures::Bundle bundle = explore::fixtures::make(name);
    const explore::ExploreResult& result = bundle.deployment->run_explorer();
    EXPECT_EQ(result.report.to_json(),
              read_golden("explore_fixture_" + name + ".json"))
        << name;
  }
}

}  // namespace
}  // namespace dejavu
