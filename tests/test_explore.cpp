// The symbolic layer and the explorer's check catalog: constraint
// solving (the bit-vector domain must be decisive for the shapes the
// dataplane generates), the lint-vs-explore separation (every seeded
// semantic-bug fixture is structurally clean but explorer-rejected),
// and the DeploymentOptions::explore build gate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "explore/explorer.hpp"
#include "explore/fixtures.hpp"
#include "explore/symbolic.hpp"
#include "nf/nfs.hpp"

namespace dejavu {
namespace {

using explore::ConstraintSet;
using explore::VarDef;

TEST(ConstraintSet, SolvePrefersTemplateValue) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.ttl", 8, 64});
  EXPECT_EQ(cs.solve(v), 64u);
}

TEST(ConstraintSet, RequireEqForcesValue) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.dst_addr", 32, 7});
  ASSERT_TRUE(cs.require_eq(v, 0x0A000001));
  EXPECT_EQ(cs.solve(v), 0x0A000001u);
  // A second, different equality is a contradiction.
  EXPECT_FALSE(cs.require_eq(v, 0x0A000002));
}

TEST(ConstraintSet, RequireNeAvoidsValue) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.ttl", 8, 64});
  ASSERT_TRUE(cs.require_ne(v, 64));
  auto solved = cs.solve(v);
  ASSERT_TRUE(solved.has_value());
  EXPECT_NE(*solved, 64u);
}

TEST(ConstraintSet, EqThenNeOnSameValueIsUnsat) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.ttl", 8, 64});
  ASSERT_TRUE(cs.require_eq(v, 5));
  EXPECT_FALSE(cs.require_ne(v, 5));
}

TEST(ConstraintSet, MaskedMatchesCompose) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.dst_addr", 32, 0});
  // Two compatible prefixes: 10.0.0.0/8 and 10.1.0.0/16.
  ASSERT_TRUE(cs.require_masked(v, 0x0A000000, 0xFF000000));
  ASSERT_TRUE(cs.require_masked(v, 0x0A010000, 0xFFFF0000));
  auto solved = cs.solve(v);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(*solved & 0xFFFF0000, 0x0A010000u);
  // An incompatible prefix (11.0.0.0/8) contradicts the forced bits.
  EXPECT_FALSE(cs.require_masked(v, 0x0B000000, 0xFF000000));
}

TEST(ConstraintSet, ForbidMaskedExcludesWholePrefix) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.dst_addr", 32, 0x0A000001});
  ASSERT_TRUE(cs.forbid_masked(v, 0x0A000000, 0xFF000000));
  auto solved = cs.solve(v);
  ASSERT_TRUE(solved.has_value());
  EXPECT_NE(*solved & 0xFF000000, 0x0A000000u);
}

TEST(ConstraintSet, MatchInsidePrefixAfterForbiddenSubprefix) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.dst_addr", 32, 0});
  // Inside 10/8 but outside 10.9/16 — the LPM-shadow shape.
  ASSERT_TRUE(cs.require_masked(v, 0x0A000000, 0xFF000000));
  ASSERT_TRUE(cs.forbid_masked(v, 0x0A090000, 0xFFFF0000));
  auto solved = cs.solve(v);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(*solved & 0xFF000000, 0x0A000000u);
  EXPECT_NE(*solved & 0xFFFF0000, 0x0A090000u);
}

TEST(ConstraintSet, RangeGuards) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.ttl", 8, 64});
  ASSERT_TRUE(cs.require_gt(v, 1));   // Router's ttl > 1 gate
  ASSERT_TRUE(cs.require_lt(v, 10));  // and an artificial upper gate
  auto solved = cs.solve(v);
  ASSERT_TRUE(solved.has_value());
  EXPECT_GT(*solved, 1u);
  EXPECT_LT(*solved, 10u);
  // lt 0 / gt max are vacuously unsatisfiable on the spot.
  ConstraintSet edge;
  const int w = edge.add_var({"ipv4.ttl", 8, 0});
  EXPECT_FALSE(edge.require_lt(w, 0));
  EXPECT_FALSE(edge.require_gt(w, 255));
}

TEST(ConstraintSet, IntervalCollapseIsUnsat) {
  ConstraintSet cs;
  const int v = cs.add_var({"ipv4.ttl", 8, 64});
  ASSERT_TRUE(cs.require_ge(v, 100));
  EXPECT_FALSE(cs.require_le(v, 99));
}

TEST(ConstraintSet, PinFixesTheSolvedValue) {
  ConstraintSet cs;
  const int v = cs.add_var({"tcp.dst_port", 16, 80});
  ASSERT_TRUE(cs.require_ne(v, 80));
  auto pinned = cs.pin(v);
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(cs.solve(v), pinned);
  // Once pinned, any other value is contradictory.
  EXPECT_FALSE(cs.require_eq(v, *pinned + 1));
}

TEST(ConstraintSet, SolveEscapesDenseForbiddenSet) {
  ConstraintSet cs;
  const int v = cs.add_var({"tcp.src_port", 16, 0});
  // Forbid the whole low range the contiguous scan would sweep.
  for (std::uint64_t i = 0; i < 600; ++i) {
    ASSERT_TRUE(cs.require_ne(v, i)) << i;
    ASSERT_TRUE(cs.require_ne(v, 0xFFFF - i)) << i;
  }
  auto solved = cs.solve(v);
  ASSERT_TRUE(solved.has_value());
  EXPECT_GE(*solved, 600u);
  EXPECT_LE(*solved, 0xFFFFu - 600u);
}

// --- the lint/explore separation on the seeded fixtures ---

TEST(ExploreFixtures, EveryFixtureIsLintCleanButExplorerRejected) {
  for (const std::string& name : explore::fixtures::names()) {
    explore::fixtures::Bundle bundle = explore::fixtures::make(name);
    // Lint-clean: the structural verifier accepted the composition at
    // build time (Deployment::build ran with verify on), and its
    // retained report has no errors.
    EXPECT_EQ(bundle.deployment->verification().errors(), 0u) << name;

    const explore::ExploreResult& result = bundle.deployment->run_explorer();
    EXPECT_GT(result.report.errors(), 0u) << name;
    for (const std::string& id : bundle.expect_checks) {
      EXPECT_TRUE(result.report.has(id))
          << name << " must trip " << id << ":\n"
          << result.report.to_string();
    }
    // The differential gate must agree with the concrete dataplane on
    // every fixture: the bugs are real behaviors, not model drift.
    EXPECT_FALSE(result.report.has("DV-S7")) << name;
  }
}

TEST(ExploreFixtures, UnknownNameThrows) {
  EXPECT_THROW(explore::fixtures::make("no-such-fixture"),
               std::invalid_argument);
}

// --- Deployment::build integration ---

TEST(ExploreOption, BuildTimeExploreAcceptsCleanSkeleton) {
  // With only the framework rules installed the quickstart skeleton
  // drops unclassified traffic — warnings at most, so explore-on-build
  // must not throw.
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_router(ids));
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "classify-then-route",
                .nfs = {sfc::kClassifier, sfc::kRouter},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1});
  control::DeploymentOptions options;
  options.explore = true;
  auto deployment = control::Deployment::build(
      std::move(nfs), policies, asic::SwitchConfig{asic::TargetSpec::tofino32()},
      std::move(ids), std::move(options));
  EXPECT_EQ(deployment->exploration().report.errors(), 0u);
  EXPECT_GT(deployment->exploration().stats.paths, 0u);
  EXPECT_EQ(deployment->exploration().stats.replays,
            deployment->exploration().stats.paths);
}

}  // namespace
}  // namespace dejavu
