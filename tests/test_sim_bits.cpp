#include "sim/bits.hpp"

#include <gtest/gtest.h>

#include "net/bytes.hpp"

namespace dejavu::sim {
namespace {

TEST(Bits, ByteAlignedReads) {
  auto data = net::from_hex("0123456789abcdef");
  EXPECT_EQ(read_bits(data, 0, 8), 0x01u);
  EXPECT_EQ(read_bits(data, 8, 16), 0x2345u);
  EXPECT_EQ(read_bits(data, 0, 64), 0x0123456789abcdefULL);
}

TEST(Bits, UnalignedReads) {
  // 0x4f = 0100 1111: version nibble 4, then 1111...
  auto data = net::from_hex("4f00");
  EXPECT_EQ(read_bits(data, 0, 4), 4u);
  EXPECT_EQ(read_bits(data, 4, 4), 0xfu);
  EXPECT_EQ(read_bits(data, 4, 8), 0xf0u);
  EXPECT_EQ(read_bits(data, 1, 3), 0b100u);
}

TEST(Bits, WriteReadRoundTripUnaligned) {
  std::vector<std::byte> data(4);
  write_bits(data, 3, 9, 0x155);  // 9 bits across byte boundary
  EXPECT_EQ(read_bits(data, 3, 9), 0x155u);
  // Neighbours untouched.
  EXPECT_EQ(read_bits(data, 0, 3), 0u);
  EXPECT_EQ(read_bits(data, 12, 12), 0u);
}

TEST(Bits, WriteMasksToWidth) {
  std::vector<std::byte> data(2);
  write_bits(data, 0, 4, 0xff);  // only low 4 bits land
  EXPECT_EQ(read_bits(data, 0, 4), 0xfu);
  EXPECT_EQ(read_bits(data, 4, 4), 0u);
}

TEST(Bits, OutOfRangeThrows) {
  std::vector<std::byte> data(2);
  EXPECT_THROW(read_bits(data, 9, 8), std::out_of_range);
  EXPECT_THROW(read_bits(data, 0, 65), std::out_of_range);
  EXPECT_THROW(write_bits(data, 16, 1, 0), std::out_of_range);
}

TEST(Bits, MaskToWidth) {
  EXPECT_EQ(mask_to_width(0xffff, 8), 0xffu);
  EXPECT_EQ(mask_to_width(0x1ff, 9), 0x1ffu);
  EXPECT_EQ(mask_to_width(~0ULL, 64), ~0ULL);
}

/// Property sweep: write/read round-trips at every offset/width combo
/// in a window.
class BitSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitSweep, RoundTrip) {
  auto [offset, width] = GetParam();
  std::vector<std::byte> data(12, std::byte{0xa5});
  const std::uint64_t value =
      0x123456789abcdef0ULL & ((width >= 64) ? ~0ULL
                                             : ((1ULL << width) - 1));
  const std::vector<std::byte> before = data;
  write_bits(data, offset, width, value);
  EXPECT_EQ(read_bits(data, offset, width), value);
  // Bits outside the slice are untouched.
  if (offset > 0) {
    EXPECT_EQ(read_bits(data, 0, offset),
              read_bits(before, 0, offset));
  }
  const std::size_t after_off = offset + width;
  const std::size_t tail = data.size() * 8 - after_off;
  if (tail > 0) {
    EXPECT_EQ(read_bits(data, after_off, std::min<std::size_t>(tail, 64)),
              read_bits(before, after_off, std::min<std::size_t>(tail, 64)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndWidths, BitSweep,
    ::testing::Combine(::testing::Values(0, 1, 3, 7, 8, 9, 15, 23),
                       ::testing::Values(1, 4, 8, 9, 16, 24, 33, 48)));

}  // namespace
}  // namespace dejavu::sim
