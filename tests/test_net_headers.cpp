#include "net/headers.hpp"

#include <gtest/gtest.h>

#include "net/bytes.hpp"

namespace dejavu::net {
namespace {

TEST(EthernetHeader, EncodeDecodeRoundTrip) {
  EthernetHeader h;
  h.dst = MacAddr::from_u64(0x0a0b0c0d0e0f);
  h.src = MacAddr::from_u64(0x010203040506);
  h.ether_type = kEtherTypeIpv4;

  Buffer buf(EthernetHeader::kSize);
  h.encode(buf.mutable_view());
  auto decoded = EthernetHeader::decode(buf.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(EthernetHeader, DecodeRejectsShortBuffer) {
  Buffer buf(13);
  EXPECT_FALSE(EthernetHeader::decode(buf.view()).has_value());
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header h;
  h.total_length = 120;
  h.identification = 0x1234;
  h.ttl = 17;
  h.protocol = kIpProtoTcp;
  h.src = Ipv4Addr(1, 2, 3, 4);
  h.dst = Ipv4Addr(5, 6, 7, 8);

  Buffer buf(Ipv4Header::kMinSize);
  h.encode(buf.mutable_view(), /*fill_checksum=*/true);
  auto decoded = Ipv4Header::decode(buf.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src, h.src);
  EXPECT_EQ(decoded->dst, h.dst);
  EXPECT_EQ(decoded->ttl, h.ttl);
  EXPECT_EQ(decoded->total_length, h.total_length);
  // The encoded checksum must verify.
  EXPECT_EQ(decoded->checksum, decoded->compute_checksum());
}

TEST(Ipv4Header, DecodeRejectsNonV4) {
  Buffer buf(20);
  write_u8(buf.mutable_view(), 0, 0x65);  // version 6
  EXPECT_FALSE(Ipv4Header::decode(buf.view()).has_value());
}

TEST(Ipv4Header, DecodeRejectsBadIhl) {
  Buffer buf(20);
  write_u8(buf.mutable_view(), 0, 0x43);  // ihl 3 < 5
  EXPECT_FALSE(Ipv4Header::decode(buf.view()).has_value());
}

TEST(TcpHeader, EncodeDecodeRoundTrip) {
  TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 443;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = 0x18;
  h.window = 0x7fff;

  Buffer buf(TcpHeader::kMinSize);
  h.encode(buf.mutable_view());
  auto decoded = TcpHeader::decode(buf.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(UdpHeader, EncodeDecodeRoundTrip) {
  UdpHeader h;
  h.src_port = 5353;
  h.dst_port = kVxlanUdpPort;
  h.length = 100;
  h.checksum = 0xaabb;

  Buffer buf(UdpHeader::kSize);
  h.encode(buf.mutable_view());
  auto decoded = UdpHeader::decode(buf.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(VxlanHeader, EncodeDecodeRoundTrip) {
  VxlanHeader h;
  h.vni = 0xabcdef;

  Buffer buf(VxlanHeader::kSize);
  h.encode(buf.mutable_view());
  auto decoded = VxlanHeader::decode(buf.view());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->vni, 0xabcdefu);
  EXPECT_EQ(decoded->flags, 0x08);
}

TEST(VxlanHeader, VniMaskedTo24Bits) {
  VxlanHeader h;
  h.vni = 0x12abcdef;  // over 24 bits
  Buffer buf(VxlanHeader::kSize);
  h.encode(buf.mutable_view());
  EXPECT_EQ(VxlanHeader::decode(buf.view())->vni, 0xabcdefu);
}

}  // namespace
}  // namespace dejavu::net
