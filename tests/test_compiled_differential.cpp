// Differential oracle for the compiled fast path (DESIGN.md §12): for
// every packet the compiled engine accepts, its outcome — emissions,
// punts, drop code + reason, epoch stamp, recirculation bookkeeping,
// register and counter side effects — must be bit-identical to the
// interpreter's. The replay half reuses the PR 1 determinism harness:
// merged ReplayCounters are compared across engines and across 1/2/8
// workers, mid-stream live updates included.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "control/live_update.hpp"
#include "control/replay_target.hpp"
#include "control/snapshot.hpp"
#include "explore/explorer.hpp"
#include "explore_test_util.hpp"
#include "route/routing.hpp"
#include "sim/compiled/compiled_pipeline.hpp"
#include "sim/replay.hpp"

namespace dejavu::sim {
namespace {

/// The canonical mid-stream update: route every chain around the LB
/// (same diff as test_live_update's).
control::RuleDiff bypass_lb_diff(control::Deployment& dep) {
  sfc::PolicySet reduced;
  for (const sfc::ChainPolicy& p : dep.policies().policies()) {
    sfc::ChainPolicy rp = p;
    std::erase(rp.nfs, std::string(sfc::kLoadBalancer));
    reduced.add(std::move(rp));
  }
  route::RoutingPlan plan = route::build_routing(
      reduced, dep.placement(), dep.dataplane().config());
  EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;
  return control::routing_rule_diff(dep.routing(), plan, dep.dataplane());
}

ReplayConfig config_for(std::uint32_t workers, EngineKind engine) {
  ReplayConfig config;
  config.workers = workers;
  config.packets_per_flow = 3;
  config.engine = engine;
  return config;
}

std::vector<ReplayFlow> mixed_flows() {
  return control::fig2_replay_flows(/*total_flows=*/40, /*seed=*/7);
}

TEST(CompiledDifferential, ReplayCountersEngineAndWorkerInvisible) {
  const auto flows = mixed_flows();
  const auto interp = run_replay(control::fig2_replay_factory(), flows,
                                 config_for(1, EngineKind::kInterpreter));
  const auto one = run_replay(control::fig2_replay_factory(), flows,
                              config_for(1, EngineKind::kCompiled));
  const auto two = run_replay(control::fig2_replay_factory(), flows,
                              config_for(2, EngineKind::kCompiled));
  const auto eight = run_replay(control::fig2_replay_factory(), flows,
                                config_for(8, EngineKind::kCompiled));

  // The workload exercised everything the merge covers.
  EXPECT_GT(interp.counters.delivered, 0u);
  EXPECT_GT(interp.counters.recirculations, 0u);
  EXPECT_EQ(interp.counters.per_path.size(), 3u);

  // The engine switch and the worker count are both invisible in the
  // deterministic half of the report.
  EXPECT_EQ(interp.counters, one.counters);
  EXPECT_EQ(interp.counters, two.counters);
  EXPECT_EQ(interp.counters, eight.counters);

  // ...and the fast path actually ran (this was not fallback-only
  // agreement).
  EXPECT_EQ(interp.engine, EngineKind::kInterpreter);
  EXPECT_EQ(interp.compiled_packets, 0u);
  EXPECT_EQ(one.engine, EngineKind::kCompiled);
  EXPECT_EQ(one.compiled_packets, one.counters.packets);
  EXPECT_EQ(one.fallback_packets, 0u);
  EXPECT_EQ(eight.compiled_packets, eight.counters.packets);
}

TEST(CompiledDifferential, BareDataPlaneCountersAgree) {
  // No control plane behind the switch: session misses stay punted.
  const auto flows = mixed_flows();
  const auto factory = control::fig2_replay_factory(/*fig9=*/true,
                                                    /*service_punts=*/false);
  const auto interp =
      run_replay(factory, flows, config_for(2, EngineKind::kInterpreter));
  const auto compiled =
      run_replay(factory, flows, config_for(2, EngineKind::kCompiled));

  EXPECT_GT(interp.counters.punted, 0u);
  EXPECT_EQ(interp.counters, compiled.counters);
  EXPECT_EQ(compiled.compiled_packets, compiled.counters.packets);
}

TEST(CompiledDifferential, MidStreamLiveUpdateAgrees) {
  // The §11 flip mid-stream: the compiled engine must notice the epoch
  // move (trace invalidation) and keep the merged counters — including
  // per-epoch packet attribution — identical to the interpreter's, at
  // every worker count.
  auto run_at = [](std::uint32_t workers, EngineKind engine) {
    ReplayEngine engine_obj(control::fig2_replay_factory());
    ReplayConfig config;
    config.workers = workers;
    config.packets_per_flow = 6;
    config.engine = engine;
    config.update = ReplayConfig::ReplayUpdate{};
    config.update->at_packet = 3;
    config.update->apply = [](ReplayTarget& t, std::uint32_t) {
      auto& dt = static_cast<control::DeploymentTarget&>(t);
      control::Deployment& dep = *dt.fixture().deployment;
      control::LiveUpdate update(t.dataplane());
      const control::UpdateReport report = update.run(bypass_lb_diff(dep));
      ASSERT_TRUE(report.committed) << report.error;
    };
    return engine_obj.run(control::fig2_replay_flows(48), config);
  };

  const ReplayReport interp = run_at(1, EngineKind::kInterpreter);
  const ReplayReport one = run_at(1, EngineKind::kCompiled);
  const ReplayReport two = run_at(2, EngineKind::kCompiled);
  const ReplayReport eight = run_at(8, EngineKind::kCompiled);

  EXPECT_EQ(interp.counters, one.counters);
  EXPECT_EQ(interp.counters, two.counters);
  EXPECT_EQ(interp.counters, eight.counters);

  // Both generations saw traffic, attributed exactly.
  EXPECT_EQ(one.counters.packets_by_epoch.size(), 2u);
  std::uint64_t attributed = 0;
  for (const auto& [epoch, n] : one.counters.packets_by_epoch) {
    attributed += n;
  }
  EXPECT_EQ(attributed, one.counters.packets);
  EXPECT_GT(one.compiled_packets, 0u);
}

/// Seeded random packet streams through both engines on cloned
/// switches, packet by packet, across every shipped chain target —
/// the "random chains × random packet streams" axis. Oracles: per-
/// packet semantic equality, then byte-identical port counters and
/// switch snapshots (rules + registers) at the end of the stream.
TEST(CompiledDifferential, SeededRandomStreamsAgreePacketByPacket) {
  const std::vector<std::string> targets = {"fig2", "fig9", "quickstart",
                                            "stateful"};
  for (const std::string& name : targets) {
    auto target = test::build_explore_target(name);
    DataPlane interp = target.deployment->dataplane();
    DataPlane fast_dp = target.deployment->dataplane();
    CompiledPipeline fast(fast_dp);
    ASSERT_TRUE(fast.compiled_ok()) << name << ": " << fast.compile_error();

    std::mt19937_64 rng(0xc0de + std::hash<std::string>{}(name));
    auto u8 = [&](int lo, int hi) {
      return static_cast<std::uint8_t>(
          std::uniform_int_distribution<int>(lo, hi)(rng));
    };
    const net::Ipv4Addr dsts[] = {
        net::Ipv4Addr(10, 1, 0, 10), net::Ipv4Addr(10, 2, 0, 20),
        net::Ipv4Addr(10, 3, 0, 1), net::Ipv4Addr(10, 0, 0, 1)};
    const std::uint16_t ports[] = {0, 1, 2, 3, 7, 500};

    for (int i = 0; i < 400; ++i) {
      net::PacketSpec spec;
      spec.ip_src = net::Ipv4Addr(u8(10, 192), u8(0, 255), u8(0, 255),
                                  u8(1, 254));
      spec.ip_dst = dsts[rng() % 4];
      spec.protocol = i % 5 == 0 ? u8(0, 255) : (i % 2 ? 6 : 17);
      spec.src_port = static_cast<std::uint16_t>(rng());
      spec.dst_port = i % 3 ? static_cast<std::uint16_t>(rng() % 1024) : 80;
      spec.ttl = i % 7 == 0 ? u8(0, 2) : 64;
      const std::uint16_t in_port = ports[rng() % 6];

      const net::Packet packet = net::Packet::make(spec);
      const SwitchOutput a = interp.process(packet, in_port);
      const SwitchOutput b = fast.process(packet, in_port);
      ASSERT_TRUE(semantically_equal(a, b))
          << name << " packet " << i << " in_port " << in_port
          << "\ninterp: " << a.drop_reason << "\ncompiled: " << b.drop_reason;
    }

    EXPECT_GT(fast.stats().compiled_packets, 0u) << name;
    EXPECT_EQ(interp.all_port_counters(), fast_dp.all_port_counters())
        << name;
    EXPECT_EQ(control::take_snapshot(interp).to_text(),
              control::take_snapshot(fast_dp).to_text())
        << name;
  }
}

TEST(CompiledDifferential, ExplorerSeededCompileValidatesWitnesses) {
  // The explorer's path equivalence classes as the compile seed: every
  // witness gates the compile differentially, and replaying them
  // afterwards stays on the fast path (their shapes are the trace set).
  auto fx = control::make_fig9_deployment();
  const explore::ExploreResult& exploration = fx.deployment->run_explorer();
  ASSERT_GT(exploration.paths.size(), 0u);
  const CompileSeed seed = explore::compile_seed(exploration);
  EXPECT_EQ(seed.witnesses.size(), exploration.paths.size());

  DataPlane interp = fx.deployment->dataplane();
  DataPlane fast_dp = fx.deployment->dataplane();
  CompiledPipeline fast(fast_dp, seed);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();

  for (const CompileSeed::Witness& w : seed.witnesses) {
    const SwitchOutput a = interp.process(w.packet, w.in_port);
    const SwitchOutput b = fast.process(w.packet, w.in_port);
    ASSERT_TRUE(semantically_equal(a, b)) << a.drop_reason;
  }
  EXPECT_EQ(fast.stats().fallback_packets, 0u);
  EXPECT_EQ(fast.stats().compiled_packets, seed.witnesses.size());
}

TEST(CompiledDifferential, TableCountersStayTruthful) {
  // The §7 health monitor reads per-table hit/miss counters; the fast
  // path matches against its own lowered maps but must keep them
  // moving exactly as lookup() would.
  auto fx_a = control::make_fig9_deployment();
  auto fx_b = control::make_fig9_deployment();
  DataPlane& interp = fx_a.deployment->dataplane();
  DataPlane& fast_dp = fx_b.deployment->dataplane();
  CompiledPipeline fast(fast_dp);
  ASSERT_TRUE(fast.compiled_ok()) << fast.compile_error();

  for (const ReplayFlow& rf : control::fig2_replay_flows(12)) {
    interp.process(rf.flow.packet(), rf.in_port);
    fast.process(rf.flow.packet(), rf.in_port);
  }
  for (const std::string& table :
       {std::string("LB.lb_session"), std::string("Router.ipv4_lpm"),
        std::string("Classifier.traffic_class")}) {
    const auto a = interp.tables_named(table);
    const auto b = fast_dp.tables_named(table);
    ASSERT_EQ(a.size(), b.size()) << table;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i]->hits(), b[i]->hits()) << table;
      EXPECT_EQ(a[i]->misses(), b[i]->misses()) << table;
    }
  }
}

}  // namespace
}  // namespace dejavu::sim
