#include "p4ir/emit.hpp"

#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "nf/nfs.hpp"

namespace dejavu::p4ir {
namespace {

TEST(Emit, LoadBalancerRendersFig4Constructs) {
  TupleIdTable ids;
  auto lb = nf::make_load_balancer(ids);
  std::string p4 = emit_p4(lb, ids);

  // Fig. 4's essential constructs must appear.
  EXPECT_NE(p4.find("control LB_control"), std::string::npos);
  EXPECT_NE(p4.find("table lb_session"), std::string::npos);
  EXPECT_NE(p4.find("local_sessionHash : exact;"), std::string::npos);
  EXPECT_NE(p4.find("action modify_dstIp(bit<32> dip)"), std::string::npos);
  EXPECT_NE(p4.find("const default_action = toCpu();"), std::string::npos);
  EXPECT_NE(p4.find("hasher.get({hdr.ipv4.src_addr, hdr.ipv4.dst_addr, "
                    "hdr.ipv4.protocol, hdr.tcp.src_port, "
                    "hdr.tcp.dst_port})"),
            std::string::npos);
}

TEST(Emit, ParserStatesEncodeOffsetVertices) {
  TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  std::string p4 = emit_p4(fw, ids);

  // The same header type at two offsets is two parser states (§3).
  EXPECT_NE(p4.find("state parse_ipv4_at_14"), std::string::npos);
  EXPECT_NE(p4.find("state parse_ipv4_at_34"), std::string::npos);
  EXPECT_NE(p4.find("state parse_sfc_at_14"), std::string::npos);
  EXPECT_NE(p4.find("transition select(hdr.ethernet.ether_type)"),
            std::string::npos);
}

TEST(Emit, HeaderTypesRenderFieldWidths) {
  TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  std::string p4 = emit_p4(fw, ids);
  EXPECT_NE(p4.find("header ipv4_t"), std::string::npos);
  EXPECT_NE(p4.find("bit<32> src_addr;"), std::string::npos);
  EXPECT_NE(p4.find("bit<9> in_port;"), std::string::npos);  // sfc header
}

TEST(Emit, ComposedProgramShowsGlueAndGuards) {
  auto fx = control::make_fig9_deployment();
  std::string p4 = emit_p4(fx.deployment->program(), fx.deployment->ids());

  // Framework glue appears once per NF instance, qualified NF tables
  // appear, guards render as hit-conditions.
  EXPECT_NE(p4.find("control pipelet_ingress0"), std::string::npos);
  EXPECT_NE(p4.find("control pipelet_egress1"), std::string::npos);
  EXPECT_NE(p4.find("table dejavu_check_nextNF_FW"), std::string::npos);
  EXPECT_NE(p4.find("table dejavu_branching"), std::string::npos);
  EXPECT_NE(p4.find("table FW_acl"), std::string::npos);
  EXPECT_NE(p4.find("dejavu_check_nextNF_FW.apply().hit"),
            std::string::npos);
  // The classifier gate renders as an EtherType condition.
  EXPECT_NE(p4.find("hdr.ethernet.ether_type != "), std::string::npos);
}

TEST(Emit, DeterministicOutput) {
  TupleIdTable ids1, ids2;
  auto a = nf::make_router(ids1);
  auto b = nf::make_router(ids2);
  EXPECT_EQ(emit_p4(a, ids1), emit_p4(b, ids2));
}

TEST(Emit, CommentsCanBeDisabled) {
  TupleIdTable ids;
  auto fw = nf::make_firewall(ids);
  EmitOptions options;
  options.with_comments = false;
  std::string p4 = emit_p4(fw, ids, options);
  EXPECT_EQ(p4.find("// Generic parser"), std::string::npos);
}

}  // namespace
}  // namespace dejavu::p4ir
