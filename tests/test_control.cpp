// Control-plane and deployment-orchestration tests beyond the Fig. 2
// happy path: custom placements, error paths, framework reporting,
// and the CPU punt machinery.
#include "control/deployment.hpp"

#include <gtest/gtest.h>

#include "merge/framework.hpp"
#include "nf/nfs.hpp"
#include "sfc/header.hpp"

namespace dejavu::control {
namespace {

using asic::PipeKind;
using merge::CompositionKind;

std::unique_ptr<Deployment> build_small(
    std::optional<place::Placement> placement = std::nullopt) {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_router(ids));

  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "direct",
                .nfs = {sfc::kClassifier, sfc::kRouter},
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 1,
                .terminal_pops_sfc = true});

  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  DeploymentOptions options;
  options.placement = std::move(placement);
  return Deployment::build(std::move(nfs), policies, std::move(config),
                           std::move(ids), std::move(options));
}

TEST(Deployment, BuildsMinimalChain) {
  auto d = build_small();
  EXPECT_TRUE(d->routing().feasible);
  EXPECT_FALSE(d->allocations().empty());
}

TEST(Deployment, MissingNfProgramThrows) {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "x",
                .nfs = {sfc::kClassifier, sfc::kRouter},
                .in_port = 0,
                .exit_port = 0});
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  EXPECT_THROW(Deployment::build(std::move(nfs), policies, std::move(config),
                                 std::move(ids)),
               std::runtime_error);
}

TEST(Deployment, InfeasibleSuppliedPlacementThrows) {
  // Classifier away from the arrival ingress pipelet: infeasible.
  place::Placement bad({
      {{1, PipeKind::kIngress},
       CompositionKind::kSequential,
       {sfc::kClassifier, sfc::kRouter}},
  });
  EXPECT_THROW(build_small(std::move(bad)), std::runtime_error);
}

TEST(Deployment, SuppliedPlacementIsRespected) {
  place::Placement given({
      {{0, PipeKind::kIngress},
       CompositionKind::kSequential,
       {sfc::kClassifier}},
      {{0, PipeKind::kEgress},
       CompositionKind::kSequential,
       {sfc::kRouter}},
  });
  auto d = build_small(given);
  EXPECT_EQ(d->placement(), given);
}

TEST(Deployment, RouteWorksEndToEnd) {
  auto d = build_small();
  d->control().add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .protocol = std::nullopt,
                                  .priority = 0,
                                  .path_id = 1,
                                  .tenant = 1});
  d->control().add_route({.prefix = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                          .port = 1,
                          .next_hop_mac = net::MacAddr::from_u64(0x42)});

  auto out = d->control().inject(net::Packet::make({}), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  EXPECT_EQ(out.out.front().port, 1);
  EXPECT_FALSE(out.out.front().packet.has_sfc_header());
}

TEST(Deployment, RouterMissPuntsAndCounts) {
  auto d = build_small();
  d->control().add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .protocol = std::nullopt,
                                  .priority = 0,
                                  .path_id = 1,
                                  .tenant = 1});
  // No routes installed: the LPM misses and punts.
  auto out = d->control().inject(net::Packet::make({}), 0);
  EXPECT_EQ(out.out.size(), 0u);
  EXPECT_EQ(out.to_cpu.size(), 1u);
  EXPECT_EQ(d->control().route_misses(), 1u);
}

TEST(Deployment, FrameworkReportCountsOnlyDejavuTables) {
  auto d = build_small();
  auto fw = d->framework_report();
  auto total = d->total_report();
  EXPECT_GT(fw.used.table_ids, 0u);
  EXPECT_LT(fw.used.table_ids, total.used.table_ids);
  EXPECT_EQ(fw.used.tcam_blocks, 0u);   // framework is TCAM-free
  EXPECT_GT(total.used.tcam_blocks, 0u);  // the NFs do use TCAM
}

TEST(ControlPlane, InstallIntoUnknownTableThrows) {
  auto d = build_small();
  // No VGW deployed: installing a VGW mapping must fail loudly.
  EXPECT_THROW(d->control().add_vgw_mapping({}), std::invalid_argument);
  EXPECT_THROW(d->control().add_firewall_rule({}), std::invalid_argument);
}

TEST(ControlPlane, UnservicedPuntsAreSurfaced) {
  auto d = build_small();
  d->control().add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                                  .protocol = std::nullopt,
                                  .priority = 0,
                                  .path_id = 1,
                                  .tenant = 1});
  auto out = d->control().inject(net::Packet::make({}), 0);
  // Router punts stay visible to the operator (no silent loss).
  ASSERT_EQ(out.to_cpu.size(), 1u);
  auto header = sfc::read_sfc(out.to_cpu.front().packet);
  ASSERT_TRUE(header.has_value());
  EXPECT_TRUE(header->meta.to_cpu);
}

TEST(Fig2, ParallelPlacementAlsoWorks) {
  // Force VGW and LB side-by-side (parallel) on egress 1 and check
  // the full chain still delivers, with the extra recirculation the
  // branch transition costs.
  p4ir::TupleIdTable ids;
  auto nfs = nf::fig2_nf_programs(ids);
  auto policies = sfc::fig2_policies();
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  config.set_pipeline_loopback(1);

  DeploymentOptions options;
  options.placement = place::Placement({
      {{0, PipeKind::kIngress},
       CompositionKind::kSequential,
       {sfc::kClassifier, sfc::kFirewall}},
      {{1, PipeKind::kEgress},
       CompositionKind::kParallel,
       {sfc::kVgw, sfc::kLoadBalancer}},
      {{0, PipeKind::kEgress},
       CompositionKind::kSequential,
       {sfc::kRouter}},
  });
  auto d = Deployment::build(std::move(nfs), policies, std::move(config),
                             std::move(ids), std::move(options));

  auto& cp = d->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.1.0.0/16"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 100});
  cp.add_firewall_rule({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.1.0.0/16"),
                        .protocol = net::kIpProtoTcp,
                        .dst_port = std::nullopt,
                        .priority = 10,
                        .permit = true});
  cp.add_vgw_mapping({.virtual_ip = net::Ipv4Addr(10, 1, 0, 10),
                      .physical_ip = net::Ipv4Addr(10, 1, 1, 10),
                      .tenant = 100});
  cp.set_lb_pool({{net::Ipv4Addr(10, 1, 2, 1)}});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = 1,
                .next_hop_mac = net::MacAddr::from_u64(0x02)});

  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  auto out = cp.inject(net::Packet::make(spec), 0);
  ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
  EXPECT_EQ(out.out.front().packet.ipv4()->dst, net::Ipv4Addr(10, 1, 2, 1));
  // VGW and LB sit in different parallel branches of the same egress
  // pipelet: the VGW->LB transition costs one extra loop (§3.2).
  const auto& traversal = d->routing().traversals.at(1);
  EXPECT_GE(traversal.recirculations, 2u) << traversal.to_string();
}

}  // namespace
}  // namespace dejavu::control
