// End-to-end validation of the §5 prototype: the full Fig. 2
// deployment (5 NFs, 3 service paths) on the Tofino testbed profile
// with pipeline 1 in loopback mode, driven through the PTF-style
// harness. Verifies the placement + routing logic "successfully
// achieve the original functionalities" for every SFC path.
#include <gtest/gtest.h>

#include "control/deployment.hpp"
#include "ptf/ptf.hpp"
#include "sfc/header.hpp"

namespace dejavu {
namespace {

class Fig2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    fixture_ = control::make_fig2_deployment();
    ASSERT_NE(fixture_.deployment, nullptr);
  }

  control::ControlPlane& cp() { return fixture_.deployment->control(); }

  static net::Packet tcp_to(net::Ipv4Addr dst, std::uint16_t sport = 40000) {
    net::PacketSpec spec;
    spec.ip_src = net::Ipv4Addr(192, 168, 1, 50);
    spec.ip_dst = dst;
    spec.src_port = sport;
    spec.dst_port = 80;
    spec.ttl = 64;
    return net::Packet::make(spec);
  }

  control::Fig2Deployment fixture_;
};

TEST_F(Fig2Test, PlacementPinsClassifierToArrivalPipelet) {
  const auto& placement = fixture_.deployment->placement();
  auto loc = placement.find(sfc::kClassifier);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->pipelet.pipeline, 0u);
  EXPECT_EQ(loc->pipelet.kind, asic::PipeKind::kIngress);
}

TEST_F(Fig2Test, EveryPipeletProgramFitsItsStages) {
  for (const auto& alloc : fixture_.deployment->allocations()) {
    EXPECT_TRUE(alloc.ok) << alloc.error;
  }
}

// Path 3 (Classifier -> Router): plain routed traffic, no service
// processing beyond classification and routing.
TEST_F(Fig2Test, DirectPathDeliversRoutedPacket) {
  ptf::Expectation expect;
  expect.port = control::Fig2Deployment::kReceiverPort;
  expect.ipv4_dst = net::Ipv4Addr(10, 3, 0, 1);
  expect.ttl = 63;  // router decrements
  expect.eth_dst = net::MacAddr::from_u64(0x020000000002);

  auto result = ptf::send_and_expect(
      cp(), tcp_to(net::Ipv4Addr(10, 3, 0, 1)),
      control::Fig2Deployment::kSenderPort, expect);
  EXPECT_TRUE(result.pass) << result.summary();
}

// Path 2 (Classifier -> VGW -> Router): destination translated by the
// virtualization gateway before routing.
TEST_F(Fig2Test, VgwPathTranslatesDestination) {
  ptf::Expectation expect;
  expect.port = control::Fig2Deployment::kReceiverPort;
  expect.ipv4_dst = net::Ipv4Addr(10, 2, 1, 20);  // VIP -> physical
  expect.ttl = 63;

  auto result = ptf::send_and_expect(
      cp(), tcp_to(net::Ipv4Addr(10, 2, 0, 20)),
      control::Fig2Deployment::kSenderPort, expect);
  EXPECT_TRUE(result.pass) << result.summary();
}

// Path 1 (Classifier -> FW -> VGW -> LB -> Router): the full chain.
// First packet of a flow misses the LB session table, punts to the
// CPU, gets a learned session, and is reinjected (Fig. 4 semantics).
TEST_F(Fig2Test, FullChainLoadBalancesAfterSessionLearning) {
  ptf::Expectation expect;
  expect.port = control::Fig2Deployment::kReceiverPort;
  expect.ttl = 63;

  auto result = ptf::send_and_expect(
      cp(), tcp_to(net::Ipv4Addr(10, 1, 0, 10)),
      control::Fig2Deployment::kSenderPort, expect);
  EXPECT_TRUE(result.pass) << result.summary();
  EXPECT_EQ(cp().sessions_learned(), 1u);
}

TEST_F(Fig2Test, FullChainPicksABackendFromThePool) {
  auto out = cp().inject(tcp_to(net::Ipv4Addr(10, 1, 0, 10)),
                         control::Fig2Deployment::kSenderPort);
  ASSERT_EQ(out.out.size(), 1u);
  auto ip = out.out.front().packet.ipv4();
  ASSERT_TRUE(ip.has_value());
  const bool backend1 = ip->dst == net::Ipv4Addr(10, 1, 2, 1);
  const bool backend2 = ip->dst == net::Ipv4Addr(10, 1, 2, 2);
  EXPECT_TRUE(backend1 || backend2)
      << "dst " << ip->dst.to_string() << " is not a pool backend";
}

TEST_F(Fig2Test, SecondPacketOfFlowHitsSessionWithoutPunt) {
  auto first = cp().inject(tcp_to(net::Ipv4Addr(10, 1, 0, 10)),
                           control::Fig2Deployment::kSenderPort);
  ASSERT_EQ(first.out.size(), 1u);
  EXPECT_EQ(cp().sessions_learned(), 1u);

  auto second = cp().inject(tcp_to(net::Ipv4Addr(10, 1, 0, 10)),
                            control::Fig2Deployment::kSenderPort);
  ASSERT_EQ(second.out.size(), 1u);
  EXPECT_EQ(cp().sessions_learned(), 1u);  // no new punt
  // Same flow -> same backend.
  EXPECT_EQ(first.out.front().packet.ipv4()->dst,
            second.out.front().packet.ipv4()->dst);
}

TEST_F(Fig2Test, FirewallDropsNonPermittedTraffic) {
  // UDP into the VIP space: classified onto path 1, but the FW only
  // permits TCP.
  net::PacketSpec spec;
  spec.protocol = net::kIpProtoUdp;
  spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
  ptf::Expectation expect;
  expect.outcome = ptf::Expectation::Outcome::kDropped;

  auto result = ptf::send_and_expect(cp(), net::Packet::make(spec),
                                     control::Fig2Deployment::kSenderPort,
                                     expect);
  EXPECT_TRUE(result.pass) << result.summary();
}

TEST_F(Fig2Test, ExpiredTtlIsDroppedByTheRouter) {
  auto p = tcp_to(net::Ipv4Addr(10, 3, 0, 1));
  auto ip = *p.ipv4();
  ip.ttl = 1;  // would decrement to 0
  p.set_ipv4(ip);

  ptf::Expectation expect;
  expect.outcome = ptf::Expectation::Outcome::kDropped;
  auto result = ptf::send_and_expect(
      cp(), std::move(p), control::Fig2Deployment::kSenderPort, expect);
  EXPECT_TRUE(result.pass) << result.summary();
}

TEST_F(Fig2Test, Ttl2RoutesToExactlyOne) {
  auto p = tcp_to(net::Ipv4Addr(10, 3, 0, 1));
  auto ip = *p.ipv4();
  ip.ttl = 2;
  p.set_ipv4(ip);

  ptf::Expectation expect;
  expect.ttl = 1;
  expect.port = control::Fig2Deployment::kReceiverPort;
  auto result = ptf::send_and_expect(
      cp(), std::move(p), control::Fig2Deployment::kSenderPort, expect);
  EXPECT_TRUE(result.pass) << result.summary();
}

TEST_F(Fig2Test, UnclassifiedTrafficIsDropped) {
  ptf::Expectation expect;
  expect.outcome = ptf::Expectation::Outcome::kDropped;
  auto result = ptf::send_and_expect(
      cp(), tcp_to(net::Ipv4Addr(172, 16, 0, 1)),
      control::Fig2Deployment::kSenderPort, expect);
  EXPECT_TRUE(result.pass) << result.summary();
}

TEST_F(Fig2Test, DeliveredPacketsNeverLeakTheSfcHeader) {
  for (auto dst : {net::Ipv4Addr(10, 2, 0, 20), net::Ipv4Addr(10, 3, 0, 1)}) {
    auto out = cp().inject(tcp_to(dst),
                           control::Fig2Deployment::kSenderPort);
    ASSERT_EQ(out.out.size(), 1u) << "dst " << dst.to_string() << " "
                                  << out.drop_reason;
    EXPECT_FALSE(out.out.front().packet.has_sfc_header());
  }
}

// §5: "our switch can ... allow all the traffic recirculate on the
// ASIC for once" — no path should need more than one recirculation.
TEST_F(Fig2Test, NoPathNeedsMoreThanOneRecirculation) {
  for (const auto& [path_id, traversal] :
       fixture_.deployment->routing().traversals) {
    EXPECT_TRUE(traversal.feasible);
    EXPECT_LE(traversal.recirculations, 1u)
        << "path " << path_id << ": " << traversal.to_string();
  }
}

// The data plane must take exactly the number of recirculations the
// placement planner predicted (planner/executor agreement).
TEST_F(Fig2Test, ExecutorMatchesPlannedRecirculations) {
  struct Case {
    net::Ipv4Addr dst;
    std::uint16_t path_id;
  };
  for (const Case& c : {Case{net::Ipv4Addr(10, 2, 0, 20), 2},
                        Case{net::Ipv4Addr(10, 3, 0, 1), 3}}) {
    auto out = cp().inject(tcp_to(c.dst),
                           control::Fig2Deployment::kSenderPort);
    ASSERT_EQ(out.out.size(), 1u) << out.drop_reason;
    const auto& planned =
        fixture_.deployment->routing().traversals.at(c.path_id);
    EXPECT_EQ(out.recirculations, planned.recirculations)
        << "path " << c.path_id;
    EXPECT_EQ(out.resubmissions, planned.resubmissions)
        << "path " << c.path_id;
  }
}

// Table 1 context: framework overhead is confined to a sliver of the
// switch and uses no TCAM at all.
TEST_F(Fig2Test, FrameworkUsesNoTcam) {
  auto report = fixture_.deployment->framework_report();
  EXPECT_EQ(report.used.tcam_blocks, 0u);
  EXPECT_GT(report.stages_touched, 0u);
}

}  // namespace
}  // namespace dejavu
