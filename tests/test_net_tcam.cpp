#include "net/tcam.hpp"

#include <gtest/gtest.h>

#include <random>

namespace dejavu::net {
namespace {

TEST(Tcam, HigherPriorityWins) {
  Tcam<int> tcam(1);
  tcam.insert({TernaryField{0x10, 0xf0}}, 1, 100);
  tcam.insert({TernaryField{0x12, 0xff}, }, 10, 200);
  EXPECT_EQ(*tcam.lookup({0x12}), 200);  // both match; higher priority
  EXPECT_EQ(*tcam.lookup({0x13}), 100);  // only the wide rule
  EXPECT_EQ(tcam.lookup({0x22}), nullptr);
}

TEST(Tcam, InsertionOrderBreaksPriorityTies) {
  Tcam<int> tcam(1);
  tcam.insert({TernaryField{0x1, 0xf}}, 5, 1);
  tcam.insert({TernaryField{0x1, 0xf}}, 5, 2);
  EXPECT_EQ(*tcam.lookup({0x1}), 1);  // earlier install wins
}

TEST(Tcam, WildcardFieldMatchesAnything) {
  Tcam<int> tcam(2);
  tcam.insert({TernaryField{0, 0}, TernaryField{7, 0xff}}, 0, 42);
  EXPECT_EQ(*tcam.lookup({123456, 7}), 42);
  EXPECT_EQ(tcam.lookup({123456, 8}), nullptr);
}

TEST(Tcam, EraseByHandle) {
  Tcam<int> tcam(1);
  auto h = tcam.insert({TernaryField{1, 0xff}}, 0, 1);
  EXPECT_EQ(tcam.size(), 1u);
  EXPECT_TRUE(tcam.erase(h));
  EXPECT_FALSE(tcam.erase(h));
  EXPECT_EQ(tcam.lookup({1}), nullptr);
  EXPECT_EQ(tcam.size(), 0u);
}

TEST(Tcam, ArityMismatchThrows) {
  Tcam<int> tcam(2);
  EXPECT_THROW(tcam.insert({TernaryField{1, 1}}, 0, 1),
               std::invalid_argument);
}

TEST(TernaryField, MatchSemantics) {
  TernaryField f{0b1010, 0b1110};
  EXPECT_TRUE(f.matches(0b1010));
  EXPECT_TRUE(f.matches(0b1011));  // last bit is a wildcard
  EXPECT_FALSE(f.matches(0b1110));
}

/// Property sweep: TCAM lookups agree with a brute-force scan of the
/// rule list ordered by (priority desc, install order asc).
class TcamRandomSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TcamRandomSweep, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint64_t> val(0, 0xff);
  std::uniform_int_distribution<int> prio(0, 5);

  struct Rule {
    std::vector<TernaryField> key;
    int priority;
    int value;
    std::size_t order;
  };
  Tcam<int> tcam(2);
  std::vector<Rule> rules;
  for (int i = 0; i < 50; ++i) {
    std::vector<TernaryField> key = {TernaryField{val(rng), val(rng)},
                                     TernaryField{val(rng), val(rng)}};
    int p = prio(rng);
    tcam.insert(key, p, i);
    rules.push_back(Rule{key, p, i, rules.size()});
  }

  for (int probe = 0; probe < 200; ++probe) {
    std::vector<std::uint64_t> k = {val(rng), val(rng)};
    const int* got = tcam.lookup(k);

    const Rule* best = nullptr;
    for (const Rule& r : rules) {
      if (!r.key[0].matches(k[0]) || !r.key[1].matches(k[1])) continue;
      if (best == nullptr || r.priority > best->priority ||
          (r.priority == best->priority && r.order < best->order)) {
        best = &r;
      }
    }
    if (best == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, best->value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcamRandomSweep,
                         ::testing::Values(7, 21, 42, 1000, 31337));

}  // namespace
}  // namespace dejavu::net
