// Reproduces Fig. 6 and the §3.3 placement-optimization claim: the
// naive alternating layout of chain A-B-C-D-E-F costs 3
// recirculations; exchanging C and EF brings it to 1; a general
// optimizer should find a placement at least that good. Also runs the
// ablation over random multi-chain policy sets: naive baseline vs
// exhaustive vs annealing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>

#include "bench_util.hpp"
#include "place/optimizer.hpp"

namespace {

using namespace dejavu;
using asic::PipeKind;
using merge::CompositionKind;
using merge::PipeletAssignment;

sfc::PolicySet fig6_policy() {
  sfc::PolicySet set;
  set.add({.path_id = 1,
           .name = "A-B-C-D-E-F",
           .nfs = {"A", "B", "C", "D", "E", "F"},
           .weight = 1.0,
           .in_port = 0,
           .exit_port = 1});
  return set;
}

/// Stage model making each pipelet hold at most two NFs (the implicit
/// Fig. 6 setting, where six NFs spread over four pipelets).
place::StageModel fig6_stage_model() {
  place::StageModel model;
  model.default_nf_stages = 3;
  model.glue_stages = 2;
  model.branching_stages = 1;
  return model;
}

void print_fig6() {
  auto spec = asic::TargetSpec::tofino32();
  place::TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};
  auto policies = fig6_policy();
  const auto& chain = policies.policies()[0];

  bench::heading("Fig. 6: placement schemes for chain A-B-C-D-E-F");

  place::Placement fig6a({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"D"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"E", "F"}},
  });
  place::Placement fig6b({
      {{0, PipeKind::kIngress}, CompositionKind::kSequential, {"A", "B"}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {"E", "F"}},
      {{1, PipeKind::kIngress}, CompositionKind::kSequential, {"D"}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {"C"}},
  });

  struct Row {
    const char* name;
    const place::Placement* placement;
    int paper_recircs;
  };
  place::Placement naive = place::naive_alternating(policies, spec);
  const Row rows[] = {{"Fig. 6(a) (naive-by-index)", &fig6a, 3},
                      {"Fig. 6(b) (optimized)", &fig6b, 1},
                      {"alternating baseline", &naive, -1}};
  for (const Row& row : rows) {
    auto t = place::plan_traversal(chain, *row.placement, spec, env);
    std::printf("%-28s recircs=%u resubs=%u", row.name, t.recirculations,
                t.resubmissions);
    if (row.paper_recircs >= 0) {
      std::printf(" (paper: %d)", row.paper_recircs);
    }
    std::printf("\n    %s\n    %s\n", row.placement->to_string().c_str(),
                t.to_string().c_str());
  }

  auto best = place::exhaustive_optimize(policies, spec, env,
                                         fig6_stage_model());
  std::printf("%-28s recircs(weighted)=%.0f over %llu candidates\n    %s\n",
              "exhaustive optimizer", best.cost,
              static_cast<unsigned long long>(best.evaluated),
              best.placement.to_string().c_str());
}

sfc::PolicySet random_policies(std::mt19937_64& rng, std::size_t nfs,
                               std::size_t chains) {
  std::vector<std::string> pool;
  for (std::size_t i = 0; i < nfs; ++i) {
    pool.push_back(std::string(1, static_cast<char>('A' + i)));
  }
  std::uniform_real_distribution<double> weight(0.1, 1.0);
  sfc::PolicySet set;
  for (std::size_t c = 0; c < chains; ++c) {
    std::vector<std::string> body(pool.begin() + 1, pool.end());
    std::shuffle(body.begin(), body.end(), rng);
    std::uniform_int_distribution<std::size_t> len(1, body.size());
    body.resize(len(rng));
    // Every chain starts with the shared entry NF 'A' (the classifier
    // role): the data plane cannot steer unclassified packets.
    body.insert(body.begin(), pool.front());
    set.add({.path_id = static_cast<std::uint16_t>(c + 1),
             .name = "rand" + std::to_string(c),
             .nfs = std::move(body),
             .weight = weight(rng),
             .in_port = 0,
             .exit_port = 1});
  }
  return set;
}

void print_random_sweep() {
  auto spec = asic::TargetSpec::tofino32();
  place::TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};
  auto model = fig6_stage_model();

  bench::heading(
      "Ablation: naive vs optimized over random policy sets "
      "(weighted recirculations, 20 seeds each)");
  std::printf("%-22s %-10s %-12s %-12s %-10s\n", "setting", "naive",
              "exhaustive", "annealing", "gain");
  for (auto [nfs, chains] : {std::pair<std::size_t, std::size_t>{5, 2},
                             {6, 3},
                             {7, 3}}) {
    double naive_sum = 0, exact_sum = 0, anneal_sum = 0;
    int feasible = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      std::mt19937_64 rng(seed);
      auto policies = random_policies(rng, nfs, chains);
      auto naive = place::naive_alternating(policies, spec);
      double naive_cost =
          place::placement_cost(policies, naive, spec, env, model);
      auto exact = place::exhaustive_optimize(policies, spec, env, model);
      place::AnnealParams ap;
      ap.iterations = 8000;
      ap.seed = seed;
      auto annealed = place::anneal_optimize(policies, spec, env, model, ap);
      if (naive_cost >= place::kInfeasibleCost || !exact.feasible) continue;
      ++feasible;
      naive_sum += naive_cost;
      exact_sum += exact.cost;
      anneal_sum += annealed.feasible ? annealed.cost : naive_cost;
    }
    if (feasible == 0) continue;
    std::printf("%zu NFs / %zu chains     %-10.2f %-12.2f %-12.2f %-.1fx\n",
                nfs, chains, naive_sum / feasible, exact_sum / feasible,
                anneal_sum / feasible,
                naive_sum / std::max(exact_sum, 1e-9));
  }
}

void BM_ExhaustiveOptimize(benchmark::State& state) {
  auto spec = asic::TargetSpec::tofino32();
  place::TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};
  auto policies = fig6_policy();
  auto model = fig6_stage_model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        place::exhaustive_optimize(policies, spec, env, model));
  }
}
BENCHMARK(BM_ExhaustiveOptimize);

void BM_PlanTraversal(benchmark::State& state) {
  auto spec = asic::TargetSpec::tofino32();
  place::TraversalEnv env{.pipelines = 2, .can_recirculate = {true, true}};
  auto policies = fig6_policy();
  auto naive = place::naive_alternating(policies, spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        place::plan_traversal(policies.policies()[0], naive, spec, env));
  }
}
BENCHMARK(BM_PlanTraversal);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  print_random_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
