// Library performance benchmarks: how fast the behavioral substrate
// itself runs (parser execution, table lookups, end-to-end packets
// through the composed Fig. 2 program). These time OUR simulator, not
// the ASIC — they bound how large a workload the reproduction can
// drive.
#include <benchmark/benchmark.h>

#include "control/deployment.hpp"
#include "nf/parser_lib.hpp"
#include "sfc/header.hpp"
#include "sim/dataplane.hpp"
#include "sim/parse.hpp"

namespace {

using namespace dejavu;

void BM_ParserExecution(benchmark::State& state) {
  p4ir::TupleIdTable ids;
  p4ir::Program program("p");
  nf::add_standard_parser(program, ids);
  auto packet = net::Packet::make({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_parser(program, ids, packet));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParserExecution);

void BM_ExactTableLookup(benchmark::State& state) {
  p4ir::Table def;
  def.name = "t";
  def.keys = {p4ir::TableKey{"a.x", p4ir::MatchKind::kExact, 32}};
  def.actions = {"act"};
  def.max_entries = 1 << 16;
  sim::RuntimeTable rt(def);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    rt.add_exact({i}, sim::ActionCall{"act", {{"p", i}}});
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.lookup({key++ % 10000}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactTableLookup);

void BM_TernaryTableLookup(benchmark::State& state) {
  p4ir::Table def;
  def.name = "acl";
  def.keys = {p4ir::TableKey{"ipv4.src", p4ir::MatchKind::kTernary, 32}};
  def.actions = {"permit"};
  def.max_entries = 4096;
  sim::RuntimeTable rt(def);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    rt.add_ternary({net::TernaryField{i << 8, 0xffffff00}},
                   static_cast<std::int32_t>(i),
                   sim::ActionCall{"permit", {}});
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.lookup({(key++ % n) << 8}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TernaryTableLookup)->Arg(64)->Arg(1024);

void BM_EndToEndFig2(benchmark::State& state) {
  auto fx = control::make_fig2_deployment();
  auto& cp = fx.deployment->control();
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto packet = net::Packet::make(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cp.inject(packet, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndFig2);

void BM_SfcPushPop(benchmark::State& state) {
  auto packet = net::Packet::make({});
  for (auto _ : state) {
    sfc::push_sfc(packet, sfc::SfcHeader{});
    benchmark::DoNotOptimize(sfc::pop_sfc(packet));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SfcPushPop);

}  // namespace

BENCHMARK_MAIN();
