// Library performance benchmarks: how fast the behavioral substrate
// itself runs (parser execution, table lookups, end-to-end packets
// through the composed Fig. 2 program). These time OUR simulator, not
// the ASIC — they bound how large a workload the reproduction can
// drive.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"
#include "control/deployment.hpp"
#include "nf/parser_lib.hpp"
#include "sfc/header.hpp"
#include "sim/compiled/compiled_pipeline.hpp"
#include "sim/dataplane.hpp"
#include "sim/parse.hpp"

namespace {

using namespace dejavu;

void BM_ParserExecution(benchmark::State& state) {
  p4ir::TupleIdTable ids;
  p4ir::Program program("p");
  nf::add_standard_parser(program, ids);
  auto packet = net::Packet::make({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_parser(program, ids, packet));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParserExecution);

void BM_ExactTableLookup(benchmark::State& state) {
  p4ir::Table def;
  def.name = "t";
  def.keys = {p4ir::TableKey{"a.x", p4ir::MatchKind::kExact, 32}};
  def.actions = {"act"};
  def.max_entries = 1 << 16;
  sim::RuntimeTable rt(def);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    rt.add_exact({i}, sim::ActionCall{"act", {{"p", i}}});
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.lookup({key++ % 10000}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactTableLookup);

void BM_TernaryTableLookup(benchmark::State& state) {
  p4ir::Table def;
  def.name = "acl";
  def.keys = {p4ir::TableKey{"ipv4.src", p4ir::MatchKind::kTernary, 32}};
  def.actions = {"permit"};
  def.max_entries = 4096;
  sim::RuntimeTable rt(def);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    rt.add_ternary({net::TernaryField{i << 8, 0xffffff00}},
                   static_cast<std::int32_t>(i),
                   sim::ActionCall{"permit", {}});
  }
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.lookup({(key++ % n) << 8}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TernaryTableLookup)->Arg(64)->Arg(1024);

void BM_EndToEndFig2(benchmark::State& state) {
  auto fx = control::make_fig2_deployment();
  auto& cp = fx.deployment->control();
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto packet = net::Packet::make(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cp.inject(packet, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndFig2);

void BM_EndToEndFig2Compiled(benchmark::State& state) {
  auto fx = control::make_fig2_deployment();
  sim::CompiledPipeline fast(fx.deployment->dataplane());
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  auto packet = net::Packet::make(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fast.process(packet, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEndFig2Compiled);

void BM_SfcPushPop(benchmark::State& state) {
  auto packet = net::Packet::make({});
  for (auto _ : state) {
    sfc::push_sfc(packet, sfc::SfcHeader{});
    benchmark::DoNotOptimize(sfc::pop_sfc(packet));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SfcPushPop);

/// Quick headline measurement (outside the google-benchmark timers)
/// recorded as BENCH_dataplane.json: per-packet nanoseconds through
/// the composed Fig. 2 program on both engines, path 3 steady state.
void emit_bench_json() {
  auto fx = control::make_fig2_deployment();
  sim::DataPlane& dp = fx.deployment->dataplane();
  sim::CompiledPipeline fast(dp);
  net::PacketSpec spec;
  spec.ip_dst = net::Ipv4Addr(10, 3, 0, 1);
  const auto packet = net::Packet::make(spec);
  constexpr int kPackets = 20000;

  auto time_ns = [&](auto&& process) {
    process(packet);  // warm
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kPackets; ++i) {
      benchmark::DoNotOptimize(process(packet));
    }
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start)
               .count() /
           kPackets;
  };
  const double interp_ns =
      time_ns([&](const net::Packet& p) { return dp.process(p, 0); });
  const double compiled_ns =
      time_ns([&](const net::Packet& p) { return fast.process(p, 0); });

  bench::BenchJson json("dataplane");
  json.add("target", std::string("fig2-chain/path3"));
  json.add("packets", static_cast<std::uint64_t>(kPackets));
  json.add("interpreter_ns_per_packet", interp_ns);
  json.add("compiled_ns_per_packet", compiled_ns);
  json.add("speedup_compiled_vs_interp",
           compiled_ns > 0 ? interp_ns / compiled_ns : 0);
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  emit_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
