// Reproduces the §5 prototype validation (Fig. 9): the Fig. 2 service
// chain (Classifier, FW, VGW, L4 LB, IP Router) deployed on the
// 2-pipeline/4-pipelet Tofino profile with pipeline 1 in loopback
// mode. Prints the placement, the per-path traversals, the PTF-style
// functional checks for every SFC path, and the capacity statement
// ("1.6 Tbps and all traffic may recirculate once").
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "control/deployment.hpp"
#include "ptf/ptf.hpp"
#include "sim/latency.hpp"
#include "sim/throughput.hpp"

namespace {

using namespace dejavu;

control::Fig2Deployment* fixture() {
  static control::Fig2Deployment fx = control::make_fig2_deployment();
  return &fx;
}

net::Packet packet_to(net::Ipv4Addr dst, std::uint16_t sport = 40000) {
  net::PacketSpec spec;
  spec.ip_src = net::Ipv4Addr(192, 168, 1, 50);
  spec.ip_dst = dst;
  spec.src_port = sport;
  return net::Packet::make(spec);
}

void print_placement() {
  auto* fx = fixture();
  sim::LatencyModel latency(asic::TargetSpec::tofino32());

  bench::heading("Fig. 9: the paper's prototype placement");
  auto paper = control::make_fig9_deployment();
  std::printf("%s\n", paper.deployment->placement().to_string().c_str());
  for (const auto& [path_id, t] : paper.deployment->routing().traversals) {
    std::printf("path %u (%s): recircs=%u (paper: at most 1) "
                "latency=%.0f ns\n    %s\n",
                path_id, paper.policies.find(path_id)->name.c_str(),
                t.recirculations, latency.traversal_ns(t),
                t.to_string().c_str());
  }

  bench::heading("Optimizer's placement for the same chains");
  std::printf("%s\n", fx->deployment->placement().to_string().c_str());

  bench::subheading("per-path traversals");
  for (const auto& [path_id, t] : fx->deployment->routing().traversals) {
    std::printf("path %u (%s): recircs=%u resubs=%u latency=%.0f ns\n    %s\n",
                path_id, fx->policies.find(path_id)->name.c_str(),
                t.recirculations, t.resubmissions, latency.traversal_ns(t),
                t.to_string().c_str());
  }

  bench::subheading("capacity (paper: 1.6 Tbps, all traffic may "
                    "recirculate once)");
  const auto& config = fx->deployment->dataplane().config();
  std::printf("external capacity: %.1f Tbps; single-recirc fraction: %.2f\n",
              config.external_capacity_gbps() / 1000.0,
              config.single_recirc_fraction());

  bench::subheading("predicted chain throughput at full 1.6 Tbps load "
                    "(§4 takeaway 2), Fig. 9 placement");
  auto report = sim::estimate_throughput(
      paper.policies, paper.deployment->routing().traversals,
      paper.deployment->dataplane().config(), 1600.0);
  std::printf("%s", report.to_table().c_str());
}

void print_validation() {
  auto* fx = fixture();
  auto& cp = fx->deployment->control();
  bench::heading("§5 functional validation (PTF-style send/expect)");

  struct Case {
    const char* name;
    net::Ipv4Addr dst;
    std::optional<net::Ipv4Addr> expect_dst;
  };
  const Case cases[] = {
      {"path 1 full chain (LB rewrites dst)", net::Ipv4Addr(10, 1, 0, 10),
       std::nullopt},
      {"path 2 vgw-only (VIP translated)", net::Ipv4Addr(10, 2, 0, 20),
       net::Ipv4Addr(10, 2, 1, 20)},
      {"path 3 direct (routed untouched)", net::Ipv4Addr(10, 3, 0, 1),
       net::Ipv4Addr(10, 3, 0, 1)},
  };
  int passed = 0, total = 0;
  for (const Case& c : cases) {
    ptf::Expectation expect;
    expect.port = control::Fig2Deployment::kReceiverPort;
    expect.ipv4_dst = c.expect_dst;
    expect.ttl = 63;
    auto result = ptf::send_and_expect(
        cp, packet_to(c.dst), control::Fig2Deployment::kSenderPort, expect);
    std::printf("%-40s %s\n", c.name, result.summary().c_str());
    ++total;
    passed += result.pass;
  }
  // Negative checks.
  {
    net::PacketSpec spec;
    spec.protocol = net::kIpProtoUdp;
    spec.ip_dst = net::Ipv4Addr(10, 1, 0, 10);
    ptf::Expectation expect;
    expect.outcome = ptf::Expectation::Outcome::kDropped;
    auto result = ptf::send_and_expect(cp, net::Packet::make(spec),
                                       control::Fig2Deployment::kSenderPort,
                                       expect);
    std::printf("%-40s %s\n", "firewall drops non-permitted UDP",
                result.summary().c_str());
    ++total;
    passed += result.pass;
  }
  std::printf("=> %d/%d checks passed\n", passed, total);
}

void BM_FullChainPacket(benchmark::State& state) {
  auto* fx = fixture();
  auto& cp = fx->deployment->control();
  // Warm the session table so we measure the steady-state data path.
  cp.inject(packet_to(net::Ipv4Addr(10, 1, 0, 10)), 0);
  for (auto _ : state) {
    auto out = cp.inject(packet_to(net::Ipv4Addr(10, 1, 0, 10)), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullChainPacket);

void BM_DirectPathPacket(benchmark::State& state) {
  auto* fx = fixture();
  auto& cp = fx->deployment->control();
  for (auto _ : state) {
    auto out = cp.inject(packet_to(net::Ipv4Addr(10, 3, 0, 1)), 0);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectPathPacket);

}  // namespace

int main(int argc, char** argv) {
  print_placement();
  print_validation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
