// Replay-engine scaling: packets-per-second through the composed
// Fig. 2 multi-NF program (Fig. 9 prototype placement) as worker
// threads are added. This is the substrate every perf PR benchmarks
// against — the behavioral stand-in for "serve heavy traffic as fast
// as the hardware allows". Flow sharding gives embarrassingly parallel
// replay, so scaling is bounded only by host cores; the printed table
// shows the measured speedup on this machine.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "control/live_update.hpp"
#include "control/replay_target.hpp"
#include "route/routing.hpp"
#include "sim/replay.hpp"

namespace {

using namespace dejavu;

sim::ReplayConfig sweep_config(std::uint32_t workers) {
  sim::ReplayConfig config;
  config.workers = workers;
  config.packets_per_flow = 8;
  config.batch = 4;
  return config;
}

void print_scaling_sweep() {
  bench::heading("Replay scaling: composed Fig. 2 program, Fig. 9 placement");
  const auto flows = control::fig2_replay_flows(/*total_flows=*/240);
  std::printf("%zu flows x 8 packets, LB sessions learned via punts; "
              "%u hardware threads on this host\n",
              flows.size(), std::thread::hardware_concurrency());
  std::printf("%-9s %-12s %-14s %-10s\n", "workers", "wall (s)", "pps",
              "speedup");
  double base_pps = 0;
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    sim::ReplayEngine engine(control::fig2_replay_factory());
    // Warm run learns the LB sessions so the timed run measures the
    // steady-state fast path.
    engine.run(flows, sweep_config(workers));
    const auto report = engine.run(flows, sweep_config(workers));
    if (workers == 1) base_pps = report.packets_per_second();
    std::printf("%-9u %-12.3f %-14.0f %-10.2f\n", workers,
                report.wall_seconds, report.packets_per_second(),
                base_pps > 0 ? report.packets_per_second() / base_pps : 0.0);
  }
  std::printf("(speedup tracks available cores; flow sharding adds no "
              "synchronization)\n");
}

/// §11 update-in-flight: the same replay with a hitless bypass-LB
/// reconfiguration fired mid-stream on every worker's replica. Reports
/// the flip latency (time inside LiveUpdate::run) and the throughput
/// dip relative to the undisturbed run.
void print_update_in_flight() {
  bench::heading("Update in flight: hitless bypass-LB flip mid-replay");
  const auto flows = control::fig2_replay_flows(/*total_flows=*/240);
  std::printf("%-9s %-12s %-14s %-12s %-14s\n", "workers", "wall (s)", "pps",
              "dip", "flip (us)");
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    sim::ReplayEngine engine(control::fig2_replay_factory());
    engine.run(flows, sweep_config(workers));  // warm the LB sessions
    const auto baseline = engine.run(flows, sweep_config(workers));

    // A fresh engine: the flip retires rules for good, so the updated
    // replicas must not leak into the baseline measurements above.
    sim::ReplayEngine updated(control::fig2_replay_factory());
    updated.run(flows, sweep_config(workers));
    sim::ReplayConfig config = sweep_config(workers);
    config.update = sim::ReplayConfig::ReplayUpdate{};
    config.update->at_packet = config.packets_per_flow / 2;
    config.update->apply = [](sim::ReplayTarget& t, std::uint32_t) {
      auto& dt = static_cast<control::DeploymentTarget&>(t);
      control::Deployment& dep = *dt.fixture().deployment;
      sfc::PolicySet reduced;
      for (const sfc::ChainPolicy& p : dep.policies().policies()) {
        sfc::ChainPolicy rp = p;
        std::erase(rp.nfs, std::string(sfc::kLoadBalancer));
        reduced.add(std::move(rp));
      }
      route::RoutingPlan plan = route::build_routing(
          reduced, dep.placement(), dep.dataplane().config());
      control::RuleDiff diff =
          control::routing_rule_diff(dep.routing(), plan, t.dataplane());
      control::LiveUpdate update(t.dataplane());
      update.run(diff);
    };
    const auto report = updated.run(flows, config);

    double flip_mean = 0;
    for (const sim::WorkerStats& w : report.workers) {
      flip_mean += w.update_seconds;
    }
    if (!report.workers.empty()) {
      flip_mean /= static_cast<double>(report.workers.size());
    }
    const double base = baseline.packets_per_second();
    const double dip =
        base > 0 ? 1.0 - report.packets_per_second() / base : 0.0;
    std::printf("%-9u %-12.3f %-14.0f %-12.1f%% %-14.1f\n", workers,
                report.wall_seconds, report.packets_per_second(), dip * 100,
                flip_mean * 1e6);
  }
  std::printf("(dip includes the per-worker flip plus post-flip path "
              "changes; every packet lands in exactly one generation)\n");
}

/// The headline trajectory metric (ISSUE 6 acceptance): interpreter
/// vs compiled fast path on the identical fig2 workload, recorded in
/// BENCH_replay.json. The merged counters are asserted equal here too
/// — a bench that quietly compared different work would be worthless.
void print_engine_comparison() {
  bench::heading("Engine comparison: interpreter vs compiled fast path");
  const auto flows = control::fig2_replay_flows(/*total_flows=*/240);
  bench::BenchJson json("replay");
  json.add("target", std::string("fig2-chain/fig9-placement"));
  json.add("flows", static_cast<std::uint64_t>(flows.size()));
  json.add("packets_per_flow", std::uint64_t{24});

  std::printf("%-13s %-9s %-12s %-14s %-12s %-10s\n", "engine", "workers",
              "wall (s)", "pps", "ns/packet", "fallback");
  sim::ReplayCounters interp_counters;
  double interp_pps = 0;
  double compiled_pps = 0;
  for (const sim::EngineKind kind :
       {sim::EngineKind::kInterpreter, sim::EngineKind::kCompiled}) {
    const bool compiled = kind == sim::EngineKind::kCompiled;
    const char* name = compiled ? "compiled" : "interpreter";
    for (const std::uint32_t workers : {1u, 8u}) {
      sim::ReplayEngine engine(control::fig2_replay_factory());
      sim::ReplayConfig config = sweep_config(workers);
      config.engine = kind;
      // 24 packets per flow: the compiled side finishes 1920 packets in
      // ~4 ms, too short for a stable wall-clock pps on a busy host.
      config.packets_per_flow = 24;
      engine.run(flows, config);  // warm: LB sessions + (re)compile
      sim::ReplayReport best;
      for (int rep = 0; rep < 5; ++rep) {
        sim::ReplayReport report = engine.run(flows, config);
        if (rep == 0 ||
            report.packets_per_second() > best.packets_per_second()) {
          best = std::move(report);
        }
      }
      const double pps = best.packets_per_second();
      const double ns =
          pps > 0 ? 1e9 / pps * workers : 0;  // per-worker service time
      const double fallback_rate =
          best.counters.packets > 0
              ? static_cast<double>(best.fallback_packets) /
                    static_cast<double>(best.counters.packets)
              : 0;
      std::printf("%-13s %-9u %-12.3f %-14.0f %-12.1f %-10.4f\n", name,
                  workers, best.wall_seconds, pps, ns, fallback_rate);

      if (workers == 1) {
        if (compiled) {
          compiled_pps = pps;
        } else {
          interp_pps = pps;
          interp_counters = best.counters;
        }
        const std::string prefix = name;
        json.add(prefix + "_pps", pps);
        json.add(prefix + "_ns_per_packet", pps > 0 ? 1e9 / pps : 0);
        json.add(prefix + "_fallback_rate", fallback_rate);
        json.add(prefix + "_compiled_packets", best.compiled_packets);
        if (compiled &&
            !(best.counters == interp_counters)) {
          std::printf("ENGINE DISAGREEMENT: compiled counters differ from "
                      "interpreter — bench numbers are not comparable\n");
        }
      } else {
        json.add(std::string(name) + "_pps_workers8", pps);
      }
    }
  }
  const double speedup = interp_pps > 0 ? compiled_pps / interp_pps : 0;
  json.add("speedup_compiled_vs_interp", speedup);
  std::printf("compiled fast path: %.2fx the interpreter (single worker)\n",
              speedup);
  json.write();
}

void BM_ReplayWorkers(benchmark::State& state) {
  static const auto flows = control::fig2_replay_flows(/*total_flows=*/80);
  static std::map<std::int64_t, std::unique_ptr<sim::ReplayEngine>> engines;
  const std::int64_t workers = state.range(0);
  auto& engine = engines[workers];
  if (!engine) {
    engine =
        std::make_unique<sim::ReplayEngine>(control::fig2_replay_factory());
  }
  sim::ReplayConfig config;
  config.workers = static_cast<std::uint32_t>(workers);
  config.packets_per_flow = 4;
  config.batch = 2;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const auto report = engine->run(flows, config);
    packets += report.counters.packets;
    benchmark::DoNotOptimize(report.counters.delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_ReplayWorkers)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_scaling_sweep();
  print_update_in_flight();
  print_engine_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
