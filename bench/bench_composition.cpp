// Ablation of the §3.2 composition trade-off: sequential composition
// costs MAU-stage depth but makes same-pipelet transitions free;
// parallel composition overlays NFs in shared stages but each branch
// transition costs a resubmission (ingress) or recirculation (egress).
// Sweeps the number of co-located NFs and reports both sides of the
// trade: stage depth (from the real allocator) and transition cost
// (from the traversal planner).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "compile/allocator.hpp"
#include "merge/compose.hpp"
#include "nf/nfs.hpp"
#include "place/placement.hpp"

namespace {

using namespace dejavu;
using merge::CompositionKind;

/// N distinct single-table NFs (clones of the police blocklist) to
/// co-locate.
struct NfSet {
  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> programs;
  std::vector<merge::NfUnit> units;
  std::vector<std::string> names;

  explicit NfSet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      p4ir::Program p = nf::make_police(ids);
      std::string name = "NF" + std::to_string(i);
      p.set_name(name);
      p.annotate("nf", name);
      programs.push_back(std::move(p));
      names.push_back(name);
    }
    for (std::size_t i = 0; i < n; ++i) {
      units.push_back({names[i], &programs[i].controls().front()});
    }
  }
};

std::uint32_t stage_depth(const NfSet& set, CompositionKind kind) {
  auto block = merge::compose_pipelet("pipelet_ingress0", set.units, kind,
                                      /*is_ingress=*/true);
  auto graph = p4ir::analyze_dependencies({&block}, false);
  auto alloc = compile::allocate(graph, asic::TargetSpec::tofino32());
  return alloc.ok ? alloc.depth() : 0;
}

std::pair<std::uint32_t, std::uint32_t> transition_cost(
    const NfSet& set, CompositionKind kind) {
  // All NFs on one ingress pipelet; the chain visits them in order.
  sfc::PolicySet policies;
  policies.add({.path_id = 1,
                .name = "chain",
                .nfs = set.names,
                .weight = 1.0,
                .in_port = 0,
                .exit_port = 0});
  place::Placement placement(
      {{{0, asic::PipeKind::kIngress}, kind, set.names}});
  auto t = place::plan_traversal(policies.policies()[0], placement,
                                 asic::TargetSpec::tofino32(),
                                 place::TraversalEnv{});
  return {t.resubmissions, t.recirculations};
}

void print_tradeoff() {
  bench::heading("§3.2 composition trade-off: N NFs on one pipelet");
  std::printf("%-4s | %-22s | %-22s\n", "N", "sequential", "parallel");
  std::printf("%-4s | %-10s %-11s | %-10s %-11s\n", "", "stages",
              "transitions", "stages", "transitions");
  for (std::size_t n = 1; n <= 4; ++n) {
    NfSet set(n);
    auto seq_depth = stage_depth(set, CompositionKind::kSequential);
    auto par_depth = stage_depth(set, CompositionKind::kParallel);
    auto [seq_resub, seq_recirc] =
        transition_cost(set, CompositionKind::kSequential);
    auto [par_resub, par_recirc] =
        transition_cost(set, CompositionKind::kParallel);
    std::printf("%-4zu | %-10u %-11u | %-10u %-11u\n", n, seq_depth,
                seq_resub + seq_recirc, par_depth, par_resub + par_recirc);
  }
  std::printf("sequential: no transition cost, stage depth grows with N\n");
  std::printf("parallel:   shallow stages, but N-1 branch transitions\n");
}

void print_feasibility_frontier() {
  bench::heading("How many NFs fit one 12-stage pipelet?");
  for (CompositionKind kind :
       {CompositionKind::kSequential, CompositionKind::kParallel}) {
    std::size_t max_fit = 0;
    for (std::size_t n = 1; n <= 16; ++n) {
      NfSet set(n);
      auto block = merge::compose_pipelet("pipelet_ingress0", set.units,
                                          kind, true);
      auto graph = p4ir::analyze_dependencies({&block}, false);
      auto alloc = compile::allocate(graph, asic::TargetSpec::tofino32());
      if (!alloc.ok) break;
      max_fit = n;
    }
    std::printf("%-12s composition: up to %zu single-table NFs\n",
                merge::to_string(kind), max_fit);
  }
}

void BM_ComposePipelet(benchmark::State& state) {
  NfSet set(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(merge::compose_pipelet(
        "pipelet_ingress0", set.units, CompositionKind::kSequential, true));
  }
}
BENCHMARK(BM_ComposePipelet)->Arg(2)->Arg(4);

void BM_AllocatePipelet(benchmark::State& state) {
  NfSet set(static_cast<std::size_t>(state.range(0)));
  auto block = merge::compose_pipelet("pipelet_ingress0", set.units,
                                      CompositionKind::kSequential, true);
  for (auto _ : state) {
    auto graph = p4ir::analyze_dependencies({&block}, false);
    benchmark::DoNotOptimize(
        compile::allocate(graph, asic::TargetSpec::tofino32()));
  }
}
BENCHMARK(BM_AllocatePipelet)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_tradeoff();
  print_feasibility_frontier();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
