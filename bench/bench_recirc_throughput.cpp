// Reproduces Fig. 7 and Fig. 8(a): the feedback-queue throughput model
// of §4 and its packet-level validation (our substitute for the Tofino
// internal-packet-generator testbed run).
//
// Paper reference points (100 Gbps injected, one loopback port):
//   0 recirc -> 100 Gbps, 1 -> 100, 2 -> 38 (x = 0.62T), 3 -> 16,
//   4 -> ~7, 5 -> ~3. "Effective throughput degrades super-linearly."
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/fluid.hpp"
#include "sim/queue_sim.hpp"

namespace {

using namespace dejavu;

void print_fig8a() {
  bench::heading("Fig. 8(a): throughput vs number of recirculations");
  std::printf("%-8s %-14s %-14s %-14s %-10s\n", "recircs",
              "fluid (Gbps)", "packet-sim", "paper (Gbps)", "survival s");
  const double paper[] = {100, 100, 38, 16, 7, 3};
  for (std::uint32_t k = 0; k <= 5; ++k) {
    sim::QueueSimParams params;
    params.recirculations = k;
    params.slots = 200000;
    params.warmup_slots = 40000;
    auto qs = sim::simulate_recirculation(params);
    std::printf("%-8u %-14.1f %-14.1f %-14.0f %-10.4f\n", k,
                sim::recirc_throughput_gbps(100, k), qs.delivered_gbps,
                paper[k], sim::loopback_survival(k));
  }
}

void print_fig7_derivation() {
  bench::heading("Fig. 7(b) / §4 closed-form derivation (T = 100 Gbps)");
  auto gens = sim::generation_throughputs_gbps(100, 2);
  std::printf("2-recirc: x = %.1f (paper 0.62T), exit = %.1f "
              "(paper 0.38T)\n", gens[0], gens[1]);
  auto gens3 = sim::generation_throughputs_gbps(100, 3);
  std::printf("3-recirc: exit = %.1f (paper 0.16T)\n", gens3[2]);
  std::printf("loopback port load (must equal T): 2-recirc %.2f, "
              "3-recirc %.2f\n", gens[0] + gens[1],
              gens3[0] + gens3[1] + gens3[2]);
}

void print_capacity_split() {
  bench::heading("§4 capacity split: m of n=32 ports in loopback mode");
  std::printf("%-6s %-22s %-26s\n", "m", "external capacity",
              "1-recirc fraction min(1,m/(n-m))");
  for (std::uint32_t m : {0u, 4u, 8u, 16u, 24u}) {
    std::printf("%-6u %-22.2f %-26.2f\n", m,
                3200 * sim::external_capacity_fraction(32, m),
                sim::single_recirc_fraction(32, m));
  }
}

void BM_FluidModel(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::recirc_throughput_gbps(100, k));
  }
}
BENCHMARK(BM_FluidModel)->Arg(2)->Arg(5)->Arg(8);

void BM_PacketLevelSim(benchmark::State& state) {
  sim::QueueSimParams params;
  params.recirculations = static_cast<std::uint32_t>(state.range(0));
  params.slots = 50000;
  params.warmup_slots = 10000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_recirculation(params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          params.slots);
}
BENCHMARK(BM_PacketLevelSim)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  print_fig8a();
  print_fig7_derivation();
  print_capacity_split();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
