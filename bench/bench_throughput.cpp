// Extension bench (§4 takeaway 2 applied): predicted service-chain
// throughput for whole deployments. Sweeps offered load on the Fig. 2
// policies under both the paper's Fig. 9 placement (1 recirculation on
// paths 1 and 2) and the optimizer's 0-recirculation packing, showing
// where the recirculation budget saturates and what the optimizer's
// better placement buys in deliverable bandwidth.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "control/deployment.hpp"
#include "sim/throughput.hpp"

namespace {

using namespace dejavu;

void print_load_sweep() {
  auto fig9 = control::make_fig9_deployment();
  auto optimized = control::make_fig2_deployment();

  bench::heading("Offered-load sweep: delivered Tbps by placement");
  std::printf("%-14s %-22s %-22s\n", "offered Tbps", "Fig. 9 (1 recirc)",
              "optimized (0 recirc)");
  for (double offered : {0.4, 0.8, 1.2, 1.6, 2.0, 2.4, 3.2}) {
    auto r9 = sim::estimate_throughput(
        fig9.policies, fig9.deployment->routing().traversals,
        fig9.deployment->dataplane().config(), offered * 1000);
    auto ro = sim::estimate_throughput(
        optimized.policies, optimized.deployment->routing().traversals,
        optimized.deployment->dataplane().config(), offered * 1000);
    std::printf("%-14.1f %-22.2f %-22.2f\n", offered,
                r9.total_delivered_gbps / 1000,
                ro.total_delivered_gbps / 1000);
  }
  std::printf("(external port capacity caps intake at 1.6 Tbps with 16 "
              "loopback ports;\n the sweep past it shows where the "
              "recirculation budget, not the ports, binds)\n");

  bench::heading("Per-path breakdown at 2.4 Tbps offered, Fig. 9 "
                 "placement");
  auto r = sim::estimate_throughput(
      fig9.policies, fig9.deployment->routing().traversals,
      fig9.deployment->dataplane().config(), 2400.0);
  std::printf("%s", r.to_table().c_str());
}

void print_recirc_depth_sweep() {
  bench::heading("Same chains, deeper recirculation (synthetic k-loop "
                 "paths on one dedicated 100G port)");
  std::printf("%-8s %-16s\n", "k", "delivered Gbps");
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  for (std::uint32_t k = 0; k <= 5; ++k) {
    place::Traversal t;
    t.feasible = true;
    for (std::uint32_t i = 0; i < k; ++i) {
      place::TraversalStep s1;
      s1.pipelet = {0, asic::PipeKind::kIngress};
      s1.exit_via = place::TraversalStep::Exit::kToEgress;
      place::TraversalStep s2;
      s2.pipelet = {0, asic::PipeKind::kEgress};
      s2.exit_via = place::TraversalStep::Exit::kRecirculate;
      t.steps.push_back(s1);
      t.steps.push_back(s2);
    }
    sfc::PolicySet policies;
    policies.add({.path_id = 1, .name = "p", .nfs = {"A"}, .weight = 1.0});
    std::map<std::uint16_t, place::Traversal> traversals;
    traversals.emplace(1, std::move(t));
    auto r = sim::estimate_throughput(policies, traversals, config, 100.0);
    std::printf("%-8u %-16.1f\n", k, r.total_delivered_gbps);
  }
  std::printf("(identical to the Fig. 8(a) fluid series -- the "
              "deployment model degenerates to §4's closed form)\n");
}

void BM_EstimateThroughput(benchmark::State& state) {
  auto fx = control::make_fig9_deployment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::estimate_throughput(
        fx.policies, fx.deployment->routing().traversals,
        fx.deployment->dataplane().config(), 1600.0));
  }
}
BENCHMARK(BM_EstimateThroughput);

}  // namespace

int main(int argc, char** argv) {
  print_load_sweep();
  print_recirc_depth_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
