// The §4/§5 capacity trade-off: sweeping the number of loopback ports
// trades external (revenue) bandwidth for recirculation headroom.
// Regenerates the numbers behind the §5 statement that with 16 of 32
// ports looped back the switch offers 1.6 Tbps and every external
// packet may recirculate once, and shows where multi-recirculation
// chains become loss-free vs lossy.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "asic/switch_config.hpp"
#include "sim/fluid.hpp"

namespace {

using namespace dejavu;

void print_capacity_sweep() {
  bench::heading("Loopback-port sweep on the 32x100G profile");
  std::printf("%-10s %-16s %-18s %-22s\n", "loopback", "external Tbps",
              "recirc Tbps", "1-recirc fraction");
  for (std::uint32_t m : {0u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
    asic::SwitchConfig config(asic::TargetSpec::tofino32());
    for (std::uint32_t p = 0; p < m; ++p) {
      // Spread loopback ports across both pipelines.
      config.set_loopback(p % 2 == 0 ? p / 2 : 16 + p / 2);
    }
    double recirc_total = config.recirc_capacity_gbps(0) +
                          config.recirc_capacity_gbps(1);
    std::printf("%-10u %-16.1f %-18.1f %-22.2f\n", m,
                config.external_capacity_gbps() / 1000.0,
                recirc_total / 1000.0, config.single_recirc_fraction());
  }
  std::printf("(paper §5: 16 loopback ports -> 1.6 Tbps external, all of "
              "it may recirculate once)\n");
}

void print_chain_depth_capacity() {
  bench::heading("Effective capacity vs chain recirculation depth "
                 "(loopback port saturated)");
  std::printf("%-10s %-20s\n", "recircs", "throughput fraction");
  for (std::uint32_t k = 0; k <= 6; ++k) {
    std::printf("%-10u %-20.3f\n", k,
                sim::recirc_throughput_gbps(1.0, k));
  }
  std::printf("Takeaway 1 (§4): a placement algorithm minimizing "
              "recirculations is critical.\n");
  std::printf("Takeaway 2 (§4): operators can calculate service-chain "
              "throughput after placement;\n  the ASIC itself adds no "
              "recirculation inefficiency.\n");
}

void BM_CapacityAccounting(benchmark::State& state) {
  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  config.set_pipeline_loopback(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(config.external_capacity_gbps());
    benchmark::DoNotOptimize(config.single_recirc_fraction());
  }
}
BENCHMARK(BM_CapacityAccounting);

}  // namespace

int main(int argc, char** argv) {
  print_capacity_sweep();
  print_chain_depth_capacity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
