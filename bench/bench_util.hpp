// Shared helpers for the reproduction benches: each binary prints the
// paper row/series it regenerates (plus our measured values) before
// running its google-benchmark timers, so `./bench_x` alone shows the
// full comparison.
#pragma once

#include <cstdio>
#include <string>

namespace dejavu::bench {

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("-- %s --\n", title.c_str());
}

}  // namespace dejavu::bench
