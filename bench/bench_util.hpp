// Shared helpers for the reproduction benches: each binary prints the
// paper row/series it regenerates (plus our measured values) before
// running its google-benchmark timers, so `./bench_x` alone shows the
// full comparison. BenchJson records the headline numbers as
// checked-in BENCH_<name>.json artifacts — the perf trajectory CI
// uploads on every run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace dejavu::bench {

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("-- %s --\n", title.c_str());
}

/// Flat-key JSON bench reporter. Keys keep insertion order so diffs of
/// successive trajectory snapshots stay readable; values are numbers
/// or plain strings. write() lands in $DEJAVU_BENCH_DIR (when set) or
/// the working directory as BENCH_<name>.json.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void add(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  /// `value` must not need JSON escaping (bench labels never do).
  void add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }

  std::string path() const {
    const char* dir = std::getenv("DEJAVU_BENCH_DIR");
    const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
    return base + "/BENCH_" + name_ + ".json";
  }

  bool write() const {
    const std::string file = path();
    std::FILE* out = std::fopen(file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", file.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : fields_) {
      std::fprintf(out, ",\n  \"%s\": %s", key.c_str(), value.c_str());
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", file.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace dejavu::bench
