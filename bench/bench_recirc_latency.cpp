// Reproduces Fig. 8(b): recirculation latency — on-chip (~75 ns, via
// dedicated circuitry without SerDes) vs off-chip (~145 ns through a
// 1 m DAC), against the ~650 ns port-to-port baseline — plus the
// queueing delay the feedback queue adds under contention (measured on
// the packet-level simulator).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "place/placement.hpp"
#include "sim/latency.hpp"
#include "sim/queue_sim.hpp"

namespace {

using namespace dejavu;

void print_fig8b() {
  sim::LatencyModel model(asic::TargetSpec::tofino32());
  bench::heading("Fig. 8(b): recirculation latency");
  std::printf("port-to-port (idle buffers): %.0f ns (paper ~650 ns)\n",
              model.base_ns());
  std::printf("%-10s %-16s %-16s\n", "recircs", "on-chip (ns)",
              "off-chip (ns)");
  for (std::uint32_t k = 1; k <= 5; ++k) {
    std::printf("%-10u %-16.0f %-16.0f\n", k,
                model.recirc_total_ns(k, sim::RecircMode::kOnChip) -
                    model.base_ns(),
                model.recirc_total_ns(k, sim::RecircMode::kOffChip) -
                    model.base_ns());
  }
  std::printf("per recirculation: on-chip %.0f ns (paper ~75), off-chip "
              "%.0f ns (paper ~145, i.e. ~70 ns slower)\n",
              model.recirc_ns(sim::RecircMode::kOnChip),
              model.recirc_ns(sim::RecircMode::kOffChip));
  std::printf("on-chip/off-chip ratio: %.1fx (paper: ~2x faster)\n",
              model.recirc_ns(sim::RecircMode::kOffChip) /
                  model.recirc_ns(sim::RecircMode::kOnChip));
}

void print_queueing_delay() {
  bench::heading("Queueing delay under loopback contention (extra slots "
                 "per delivered packet)");
  std::printf("%-8s %-18s %-14s\n", "recircs", "mean extra slots",
              "loss fraction");
  for (std::uint32_t k = 1; k <= 5; ++k) {
    sim::QueueSimParams params;
    params.recirculations = k;
    auto r = sim::simulate_recirculation(params);
    std::printf("%-8u %-18.1f %-14.3f\n", k, r.mean_extra_slots,
                r.loss_fraction);
  }
}

void BM_TraversalLatency(benchmark::State& state) {
  sim::LatencyModel model(asic::TargetSpec::tofino32());
  place::Traversal t;
  t.feasible = true;
  t.recirculations = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.traversal_ns(t));
  }
}
BENCHMARK(BM_TraversalLatency)->Arg(1)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  print_fig8b();
  print_queueing_delay();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
