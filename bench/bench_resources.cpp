// Reproduces Table 1: the hardware resource overhead of the Dejavu
// framework tables (branching, check_nextNF, check_sfcFlags) on the
// Tofino profile, as a percentage of the whole switch — alongside the
// paper's measured numbers. The framework must use zero TCAM and only
// a sliver of memory; stages are the dominant cost because the glue
// tables are data-dependent on the platform metadata.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "control/deployment.hpp"

namespace {

using namespace dejavu;

void print_table1() {
  // Table 1 was measured on the §5 prototype, so reproduce it on the
  // same Fig. 9 placement (the optimizer's tighter packing would use
  // even fewer pipelets and understate the overhead).
  auto fx = control::make_fig9_deployment();
  auto framework = fx.deployment->framework_report();
  auto total = fx.deployment->total_report();

  bench::heading("Table 1: resource overhead of Dejavu on Tofino (%)");
  std::printf("%-10s %-8s %-10s %-9s %-10s %-7s %-7s %-7s\n", "", "Stages",
              "TableIDs", "Gateways", "Crossbars", "VLIWs", "SRAM", "TCAM");
  std::printf("%-10s %-8.1f %-10.1f %-9.1f %-10.1f %-7.1f %-7.1f %-7.1f\n",
              "ours", framework.pct_stages(), framework.pct_table_ids(),
              framework.pct_gateways(), framework.pct_crossbars(),
              framework.pct_vliw(), framework.pct_sram(),
              framework.pct_tcam());
  std::printf("%-10s %-8.1f %-10.1f %-9.1f %-10.1f %-7.1f %-7.1f %-7.1f\n",
              "paper", 20.8, 4.2, 2.0, 0.4, 1.5, 0.2, 0.0);

  bench::subheading("absolute framework usage");
  std::printf("stages touched: %u of %u\n", framework.stages_touched,
              framework.total_stages);
  std::printf("%s\n", framework.used.to_string().c_str());

  bench::subheading("whole deployment (framework + NF tables)");
  std::printf("stages touched: %u of %u\n", total.stages_touched,
              total.total_stages);
  std::printf("%s\n", total.used.to_string().c_str());

  bench::subheading("per-pipelet stage allocation");
  for (std::size_t i = 0; i < fx.deployment->allocations().size(); ++i) {
    const auto& alloc = fx.deployment->allocations()[i];
    const auto& name = fx.deployment->program().controls()[i].name();
    std::printf("%-20s depth=%u stages_used=%u tables=%zu\n", name.c_str(),
                alloc.depth(), alloc.stages_used(),
                alloc.table_names.size());
    for (std::uint32_t s = 0; s < alloc.stages.size(); ++s) {
      if (alloc.stages[s].tables.empty()) continue;
      std::printf("  stage %2u:", s);
      for (std::size_t t : alloc.stages[s].tables) {
        std::printf(" %s", alloc.table_names[t].c_str());
      }
      std::printf("\n");
    }
  }
}

void BM_BuildDeployment(benchmark::State& state) {
  for (auto _ : state) {
    auto fx = control::make_fig2_deployment();
    benchmark::DoNotOptimize(fx.deployment);
  }
}
BENCHMARK(BM_BuildDeployment)->Unit(benchmark::kMillisecond);

void BM_ResourceReport(benchmark::State& state) {
  auto fx = control::make_fig2_deployment();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.deployment->framework_report());
  }
}
BENCHMARK(BM_ResourceReport);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
