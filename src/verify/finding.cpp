#include "verify/finding.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::verify {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const std::vector<CheckInfo>& check_catalog() {
  static const std::vector<CheckInfo> catalog = {
      {"DV-H1", "hazard.write-write", Severity::kError,
       "two tables co-scheduled in one MAU stage write the same field"},
      {"DV-H2", "hazard.read-after-write", Severity::kError,
       "a table reads or matches a field written by another table in "
       "the same MAU stage"},
      {"DV-H3", "hazard.unguarded-branch", Severity::kError,
       "apply entries claim mutual exclusion (distinct branch ids) but "
       "at least one is ungated while both write the same field in one "
       "stage"},
      {"DV-H4", "hazard.register-stages", Severity::kError,
       "a register array is accessed from tables in different MAU "
       "stages (a register lives in exactly one stage)"},
      {"DV-D1", "deps.cycle", Severity::kError,
       "the dependency graph has a cycle or an edge against apply "
       "order; the tables cannot be topologically ordered"},
      {"DV-D2", "deps.stage-overflow", Severity::kError,
       "the dependency critical path exceeds the pipelet's MAU stage "
       "ladder"},
      {"DV-P1", "parser.transition-conflict", Severity::kError,
       "two NFs map the same parse vertex and selector value to "
       "different headers"},
      {"DV-P2", "parser.layout-conflict", Severity::kError,
       "two NFs define the same header type with different field "
       "layouts"},
      {"DV-P3", "parser.select-ambiguity", Severity::kWarning,
       "one parse vertex selects its transition on more than one field"},
      {"DV-L1", "place.unplaced", Severity::kError,
       "a chain policy references an NF the placement does not host"},
      {"DV-L2", "place.infeasible", Severity::kError,
       "a chain policy has no feasible traversal under the placement"},
      {"DV-L3", "place.recirc-loop", Severity::kError,
       "the chain's recirculation count is unbounded: the traversal or "
       "the installed branching rules revisit a pipelet state"},
      {"DV-L4", "place.recirc-rule", Severity::kError,
       "a planned traversal step violates the ASIC's resubmission/"
       "recirculation rules (resubmit after ingress, recirculate after "
       "egress, stay within one pipeline)"},
      {"DV-L5", "place.chain-order", Severity::kWarning,
       "NFs of one chain sit on a sequential pipelet against chain "
       "order, costing extra resubmissions"},
      {"DV-L6", "route.gap", Severity::kError,
       "the branching/check rules leave a reachable (path, service "
       "index) state unrouted or exit the switch mid-chain"},
      {"DV-R1", "resources.pipelet-overcommit", Severity::kError,
       "a pipelet's tables need more SRAM/TCAM/VLIW than its whole "
       "stage ladder provides"},
      {"DV-R2", "resources.table-too-big", Severity::kError,
       "a single table overflows the per-stage resource budget even "
       "when sliced into single-entry chunks (e.g. its key is wider "
       "than the match crossbar), so no stage can ever host it"},
      {"DV-S1", "semantic.recirc-loop", Severity::kError,
       "a symbolic packet path recirculates or resubmits past the "
       "dataplane pass cap; the witness packet loops forever on the "
       "deployed rules"},
      {"DV-S2", "semantic.index-monotonic", Severity::kError,
       "the SFC service index moves backwards along a packet path; "
       "chain progress must be monotone or branching rules can replay "
       "already-traversed NFs"},
      {"DV-S3", "semantic.metadata-leak", Severity::kError,
       "a packet leaves the switch on a final emit with the platform "
       "SFC header still on the wire; internal metadata must be popped "
       "before external egress"},
      {"DV-S4", "semantic.header-validity", Severity::kWarning,
       "an action reads or writes a field of a header the parser never "
       "extracted on this path; the dataplane substitutes zeros / "
       "drops the write silently"},
      {"DV-S5", "semantic.parallel-overlap", Severity::kError,
       "gate tables of two parallel branches accept the same installed "
       "(path, index) key; which NF wins depends on apply order, so "
       "sequential and parallel composition diverge"},
      {"DV-S6", "semantic.dead-rule", Severity::kWarning,
       "an installed table entry or parser state is unreachable on "
       "every explored symbolic path"},
      {"DV-S7", "semantic.differential", Severity::kError,
       "the concrete dataplane disagrees with the symbolic prediction "
       "when replaying a witness packet; the explorer's model of the "
       "deployment is wrong"},
      {"DV-S8", "semantic.epoch-blend", Severity::kError,
       "a packet path would consult entries of disjoint chain "
       "generations, or the explored generation is malformed "
       "(overlapping version windows, or already drained); per-packet "
       "consistency of live updates is violated"},
  };
  return catalog;
}

const CheckInfo* find_check(const std::string& id) {
  for (const CheckInfo& info : check_catalog()) {
    if (id == info.id) return &info;
  }
  return nullptr;
}

std::string Finding::to_string() const {
  std::string s = verify::to_string(severity);
  s += "[";
  s += check;
  s += "] ";
  if (!where.empty()) {
    s += where;
    s += ": ";
  }
  s += message;
  return s;
}

void Report::add(Finding finding) { findings_.push_back(std::move(finding)); }

void Report::add(const std::string& id, std::string where,
                 std::string message) {
  const CheckInfo* info = find_check(id);
  if (info == nullptr) {
    throw std::invalid_argument("unknown verifier check id '" + id + "'");
  }
  findings_.push_back(
      Finding{info->severity, id, std::move(where), std::move(message)});
}

std::size_t Report::count(Severity severity) const {
  std::size_t n = 0;
  for (const Finding& f : findings_) n += f.severity == severity;
  return n;
}

bool Report::has(const std::string& check_id) const {
  return std::any_of(findings_.begin(), findings_.end(),
                     [&](const Finding& f) { return f.check == check_id; });
}

void Report::sort() {
  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity) {
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     }
                     if (a.check != b.check) return a.check < b.check;
                     if (a.where != b.where) return a.where < b.where;
                     return a.message < b.message;
                   });
}

std::string Report::to_string() const {
  if (findings_.empty()) return "clean (0 findings)\n";
  std::string s;
  for (const Finding& f : findings_) {
    s += f.to_string();
    s += "\n";
  }
  s += std::to_string(errors()) + " error(s), " +
       std::to_string(warnings()) + " warning(s)\n";
  return s;
}

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Report::to_json() const {
  std::string s = "{\n";
  s += "  \"ok\": " + std::string(ok() ? "true" : "false") + ",\n";
  s += "  \"errors\": " + std::to_string(errors()) + ",\n";
  s += "  \"warnings\": " + std::to_string(warnings()) + ",\n";
  s += "  \"findings\": [";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const Finding& f = findings_[i];
    const CheckInfo* info = find_check(f.check);
    s += i == 0 ? "\n" : ",\n";
    s += "    {\"severity\": \"" +
         std::string(verify::to_string(f.severity)) +
         "\", \"check\": \"" + json_escape(f.check) + "\", \"name\": \"" +
         json_escape(info != nullptr ? info->name : "?") +
         "\", \"where\": \"" + json_escape(f.where) +
         "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  s += findings_.empty() ? "]\n" : "\n  ]\n";
  s += "}\n";
  return s;
}

}  // namespace dejavu::verify
