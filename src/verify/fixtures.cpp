#include "verify/fixtures.hpp"

#include <stdexcept>

namespace dejavu::verify::fixtures {

namespace {

using p4ir::Action;
using p4ir::ControlBlock;
using p4ir::MatchKind;
using p4ir::Table;
using p4ir::TableKey;

/// Add a one-action table to `block` and apply it.
void add_simple_table(ControlBlock& block, const std::string& table_name,
                      Action action, std::vector<TableKey> keys = {},
                      std::uint32_t max_entries = 16) {
  Table t;
  t.name = table_name;
  t.keys = std::move(keys);
  t.actions = {action.name};
  t.max_entries = max_entries;
  block.add_action(std::move(action));
  block.add_table(std::move(t));
  block.apply_table(table_name);
}

Action one_primitive(const std::string& name, p4ir::Primitive primitive) {
  Action a;
  a.name = name;
  a.primitives = {std::move(primitive)};
  return a;
}

/// Stash `block` in the bundle's (unexposed) program and analyze it
/// with the deployment pipeline's flags. ControlBlocks live in the
/// program's vector heap storage, so the graph's pointers survive
/// moving the bundle out of make().
void analyze_into(Bundle& b, ControlBlock block) {
  b.program.add_control(std::move(block));
  b.dep_graphs.push_back(p4ir::analyze_dependencies(
      {&b.program.controls().back()}, /*sequential_barriers=*/false));
}

Bundle conflicting_writers() {
  Bundle b;
  b.name = "conflicting-writers";
  b.description =
      "two tables write (and one also reads) ipv4.ttl, but the "
      "dependency graph lost its edges, co-scheduling them in stage 0";
  b.expect_checks = {"DV-H1", "DV-H2"};

  ControlBlock block("broken_writers");
  add_simple_table(block, "set_ttl",
                   one_primitive("set64", p4ir::set_imm("ipv4.ttl", 64)));
  add_simple_table(block, "dec_ttl",
                   one_primitive("dec", p4ir::add_imm("ipv4.ttl", 0xFF)));
  analyze_into(b, std::move(block));
  // Simulate a stale/hand-edited analysis: without the action edge the
  // stage assignment overlays both writers in stage 0.
  b.dep_graphs.back().deps.clear();
  return b;
}

Bundle unguarded_branch() {
  Bundle b;
  b.name = "unguarded-branch";
  b.description =
      "two apply entries claim mutual exclusion via distinct branch ids "
      "but carry no gateway, while both write ipv4.ttl";
  b.expect_checks = {"DV-H3"};

  ControlBlock block("broken_branches");
  add_simple_table(block, "left",
                   one_primitive("set10", p4ir::set_imm("ipv4.ttl", 10)));
  add_simple_table(block, "right",
                   one_primitive("set20", p4ir::set_imm("ipv4.ttl", 20)));
  // Retrofit the branch ids onto the (ungated) apply entries.
  ControlBlock tagged("broken_branches");
  for (const Action& a : block.actions()) tagged.add_action(a);
  for (const Table& t : block.tables()) tagged.add_table(t);
  const char* branches[] = {"a", "b"};
  std::size_t i = 0;
  for (const p4ir::ApplyEntry& e : block.apply_order()) {
    p4ir::ApplyEntry copy = e;
    copy.branch_id = branches[i++ % 2];
    tagged.apply(std::move(copy));
  }
  analyze_into(b, std::move(tagged));
  return b;
}

Bundle register_span() {
  Bundle b;
  b.name = "register-span";
  b.description =
      "one register array is read and updated from tables that "
      "dependencies force into different MAU stages";
  b.expect_checks = {"DV-H4"};

  ControlBlock block("stateful_span");
  block.add_register({"ctr", 32, 1024});

  Action bump;
  bump.name = "bump";
  bump.primitives = {p4ir::set_imm("meta.x", 1),
                     p4ir::register_add("ctr", "local.idx", 1)};
  Table t1;
  t1.name = "writer";
  t1.actions = {"bump"};
  t1.registers = {"ctr"};
  block.add_action(std::move(bump));
  block.add_table(std::move(t1));
  block.apply_table("writer");

  Action probe;
  probe.name = "probe";
  probe.primitives = {p4ir::register_read("local.y", "ctr", "local.idx")};
  Table t2;
  t2.name = "reader";
  t2.keys = {TableKey{"meta.x", MatchKind::kExact, 8}};
  t2.actions = {"probe"};
  t2.registers = {"ctr"};
  block.add_action(std::move(probe));
  block.add_table(std::move(t2));
  block.apply_table("reader");

  analyze_into(b, std::move(block));
  return b;
}

Bundle dependency_cycle() {
  Bundle b;
  b.name = "dependency-cycle";
  b.description =
      "a hand-built dependency graph carries a back edge, so the "
      "tables cannot be topologically ordered";
  b.expect_checks = {"DV-D1"};

  ControlBlock block("cyclic");
  add_simple_table(block, "first",
                   one_primitive("w1", p4ir::set_imm("meta.a", 1)));
  add_simple_table(block, "second",
                   one_primitive("w2", p4ir::set_imm("meta.b", 1)));
  analyze_into(b, std::move(block));
  b.dep_graphs.back().deps = {
      {0, 1, p4ir::DepKind::kAction, "meta.a"},
      {1, 0, p4ir::DepKind::kAction, "meta.b"},  // the cycle
  };
  return b;
}

Bundle stage_overflow() {
  Bundle b;
  b.name = "stage-overflow";
  b.description =
      "a six-deep match-dependency chain cannot fit the 4-stage mini "
      "pipelet ladder";
  b.expect_checks = {"DV-D2"};

  ControlBlock block("deep_chain");
  for (int k = 0; k < 6; ++k) {
    const std::string in = "meta.f" + std::to_string(k);
    const std::string out = "meta.f" + std::to_string(k + 1);
    std::vector<TableKey> keys;
    if (k > 0) keys.push_back(TableKey{in, MatchKind::kExact, 8});
    add_simple_table(block, "t" + std::to_string(k),
                     one_primitive("w" + std::to_string(k),
                                   p4ir::set_imm(out, 1)),
                     std::move(keys));
  }
  analyze_into(b, std::move(block));
  return b;
}

Bundle parser_conflict() {
  Bundle b;
  b.name = "parser-conflict";
  b.description =
      "two NFs disagree on the merged parser: the same EtherType leads "
      "to different headers, and a shared header type has two layouts";
  b.expect_checks = {"DV-P1", "DV-P2"};

  const p4ir::ParserTuple eth{"ethernet", 0};
  const p4ir::ParserTuple ipv4{"ipv4", 14};
  const p4ir::ParserTuple telemetry{"telemetry", 14};

  p4ir::Program a("nf_a");
  a.annotate("nf", "nf_a");
  a.add_header_type(p4ir::ethernet_type());
  a.add_header_type(p4ir::ipv4_type());
  a.add_header_type({"telemetry", {{"flags", 8}, {"latency", 32}}});
  const std::uint32_t a_eth = a.parser().add_vertex(b.ids, eth);
  const std::uint32_t a_ipv4 = a.parser().add_vertex(b.ids, ipv4);
  a.parser().set_start(a_eth);
  a.parser().add_edge({a_eth, a_ipv4, "ethernet.ether_type", 0x0800, false});

  p4ir::Program c("nf_b");
  c.annotate("nf", "nf_b");
  c.add_header_type(p4ir::ethernet_type());
  // Same type name, different layout (DV-P2).
  c.add_header_type({"telemetry", {{"flags", 8}, {"queue_depth", 24}}});
  const std::uint32_t c_eth = c.parser().add_vertex(b.ids, eth);
  const std::uint32_t c_tel = c.parser().add_vertex(b.ids, telemetry);
  c.parser().set_start(c_eth);
  // Same selector value as nf_a, different target vertex (DV-P1).
  c.parser().add_edge({c_eth, c_tel, "ethernet.ether_type", 0x0800, false});

  b.nf_programs.push_back(std::move(a));
  b.nf_programs.push_back(std::move(c));
  return b;
}

Bundle recirc_loop() {
  Bundle b;
  b.name = "recirc-loop";
  b.description =
      "a corrupted branching rule steers the chain into pipeline 0's "
      "loopback port forever instead of toward the NF on egress 1";
  b.expect_checks = {"DV-L3"};

  asic::TargetSpec spec = asic::TargetSpec::mini();
  spec.pipelines = 2;  // ports 0-3 on pipeline 0, 4-7 on pipeline 1
  b.config = asic::SwitchConfig(spec);
  b.config.set_loopback(2);

  sfc::ChainPolicy policy;
  policy.path_id = 7;
  policy.name = "looping";
  policy.nfs = {"A", "B"};
  policy.in_port = 0;
  policy.exit_port = 1;
  b.policies.add(policy);
  b.has_policies = true;

  b.placement = place::Placement({
      {{0, asic::PipeKind::kIngress}, merge::CompositionKind::kSequential,
       {"A"}},
      {{1, asic::PipeKind::kEgress}, merge::CompositionKind::kSequential,
       {"B"}},
  });
  b.has_placement = true;

  // The correct rule would steer index 1 toward pipeline 1 (where B
  // lives); this one bounces it off pipeline 0's own loopback port, so
  // the packet returns to the same (ingress 0, index 1) state forever.
  b.routing.checks = {{"A", 7, 0}, {"B", 7, 1}};
  b.routing.branching = {{{0, asic::PipeKind::kIngress},
                          7,
                          1,
                          route::BranchingRule::Kind::kToEgress,
                          2}};
  b.has_routing = true;
  return b;
}

Bundle overcommitted_stage() {
  Bundle b;
  b.name = "overcommitted-stage";
  b.description =
      "a two-million-entry exact-match table with a 2048-bit key "
      "outgrows the match crossbar of a single stage and the whole "
      "mini pipelet's SRAM";
  b.expect_checks = {"DV-R1", "DV-R2"};

  ControlBlock block("overcommitted");
  // A 2048-bit key is wider than the mini profile's 128-byte exact
  // crossbar, so even a single-entry slice cannot land in any stage
  // (DV-R2); two million such entries also dwarf the whole 4-stage
  // ladder's SRAM (DV-R1).
  add_simple_table(
      block, "huge",
      one_primitive("mark", p4ir::set_imm("local.hit", 1)),
      {TableKey{"flow.signature", MatchKind::kExact, 2048}},
      /*max_entries=*/2'000'000);
  analyze_into(b, std::move(block));
  return b;
}

}  // namespace

VerifyInput Bundle::input() const {
  VerifyInput in;
  if (has_program) in.program = &program;
  in.ids = &ids;
  for (const p4ir::Program& p : nf_programs) in.nf_programs.push_back(&p);
  if (!dep_graphs.empty()) in.dep_graphs = &dep_graphs;
  if (has_placement) in.placement = &placement;
  if (has_policies) in.policies = &policies;
  in.config = &config;
  if (has_routing) in.routing = &routing;
  return in;
}

std::vector<std::string> names() {
  return {"conflicting-writers", "unguarded-branch", "register-span",
          "dependency-cycle",    "stage-overflow",   "parser-conflict",
          "recirc-loop",         "overcommitted-stage"};
}

Bundle make(const std::string& name) {
  if (name == "conflicting-writers") return conflicting_writers();
  if (name == "unguarded-branch") return unguarded_branch();
  if (name == "register-span") return register_span();
  if (name == "dependency-cycle") return dependency_cycle();
  if (name == "stage-overflow") return stage_overflow();
  if (name == "parser-conflict") return parser_conflict();
  if (name == "recirc-loop") return recirc_loop();
  if (name == "overcommitted-stage") return overcommitted_stage();
  throw std::invalid_argument("unknown verifier fixture '" + name + "'");
}

}  // namespace dejavu::verify::fixtures
