// Structured diagnostics of the chain verifier: every check emits
// Findings (severity + catalog check id + location + message) into a
// Report, which renders either human-readable (one line per finding)
// or as stable JSON for tooling (`dejavu_cli lint --json`). The check
// catalog is the authoritative list of everything the verifier can
// prove about a composed SFC program; DESIGN.md documents what each
// check maps to in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dejavu::verify {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

const char* to_string(Severity severity);

/// Catalog entry for one check.
struct CheckInfo {
  const char* id;      // stable id, e.g. "DV-H1"
  const char* name;    // dotted family.name, e.g. "hazard.write-write"
  Severity severity;   // severity of the findings it emits
  const char* what;    // one-line description
};

/// All checks in stable order (the order DESIGN.md documents).
const std::vector<CheckInfo>& check_catalog();

/// Catalog lookup by id; nullptr for unknown ids.
const CheckInfo* find_check(const std::string& id);

/// One diagnostic: a check id plus where it fired and why.
struct Finding {
  Severity severity = Severity::kError;
  std::string check;    // catalog id
  std::string where;    // location, e.g. "pipelet_ingress0/FW.acl"
  std::string message;

  std::string to_string() const;
  bool operator==(const Finding&) const = default;
};

class Report {
 public:
  void add(Finding finding);
  /// Add a finding for catalog check `id` with the catalog severity.
  /// Throws std::invalid_argument for ids not in the catalog.
  void add(const std::string& id, std::string where, std::string message);

  const std::vector<Finding>& findings() const { return findings_; }
  std::size_t count(Severity severity) const;
  std::size_t errors() const { return count(Severity::kError); }
  std::size_t warnings() const { return count(Severity::kWarning); }
  /// True when no error-severity finding is present (warnings allowed).
  bool ok() const { return errors() == 0; }
  bool empty() const { return findings_.empty(); }

  /// True when any finding carries `check_id`.
  bool has(const std::string& check_id) const;

  /// Deterministic order: severity (errors first), check id, location,
  /// message. Golden tests and --json rely on this.
  void sort();

  std::string to_string() const;
  std::string to_json() const;

 private:
  std::vector<Finding> findings_;
};

}  // namespace dejavu::verify
