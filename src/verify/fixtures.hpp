// Seeded broken-composition fixtures: self-contained miniature inputs
// that each trip one family of verifier checks. They serve as negative
// test cases (tests/test_verify.cpp, the lint golden tests) and as a
// self-check for operators (`dejavu_cli lint --fixture NAME` /
// `--fixtures` must fail loudly — a verifier that passes them is
// broken).
#pragma once

#include <string>
#include <vector>

#include "asic/switch_config.hpp"
#include "verify/verify.hpp"

namespace dejavu::verify::fixtures {

/// One fixture: the owned inputs plus the check ids it must trip.
/// Movable; the VerifyInput from input() borrows from this object, so
/// keep the bundle alive while the report is being produced.
struct Bundle {
  std::string name;
  std::string description;
  /// Check ids (e.g. "DV-H1") run_all must report for this bundle.
  std::vector<std::string> expect_checks;

  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nf_programs;
  bool has_program = false;
  p4ir::Program program;  // also owns control blocks dep_graphs reference
  std::vector<p4ir::DependencyGraph> dep_graphs;
  bool has_placement = false;
  place::Placement placement;
  bool has_policies = false;
  sfc::PolicySet policies;
  asic::SwitchConfig config{asic::TargetSpec::mini()};
  bool has_routing = false;
  route::RoutingPlan routing;

  VerifyInput input() const;
};

/// All fixture names, in catalog order.
std::vector<std::string> names();

/// Build a fixture by name. Throws std::invalid_argument for unknown
/// names.
Bundle make(const std::string& name);

}  // namespace dejavu::verify::fixtures
