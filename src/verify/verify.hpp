// The chain verifier: a static-analysis pass that proves a composed
// SFC program safe *before* deployment or replay. Where the rest of
// the toolchain discovers a bad composition packet by packet (or by
// failing mid-allocation), this pass inspects the composed
// p4ir::Program, its DependencyGraph, the place::Placement, and the
// derived route::RoutingPlan up front and emits structured findings:
//
//   * VLIW hazards   — cross-NF write-write / read-after-write field
//     conflicts between tables co-scheduled in one MAU stage, checked
//     over Primitive def/use sets independently of the dependency
//     analysis (so a stale or hand-built graph is caught too), plus
//     register arrays spanning stages and branch ids whose claimed
//     mutual exclusion no gateway enforces.
//   * dependency discipline — cycles/back-edges in the graph and
//     critical paths that cannot fit the stage ladder (Jose et al.'s
//     table-dependency rules, which the paper's §3.2 resource model
//     relies on).
//   * parser merging — (header_type, offset) ParserTuples mapped to
//     conflicting transitions or field layouts by different NFs (§3's
//     generic-parser scheme), and select-field ambiguity in the merged
//     DAG.
//   * placement & routing — §3.3's Tofino rules (resubmit only after
//     ingress, recirculate only after egress, stay within one
//     pipeline), unplaced NFs, infeasible traversals, and chain
//     policies whose recirculation count is unbounded because the
//     branching rules cycle through the pipelet graph.
//   * resources — per-stage SRAM/TCAM/VLIW overcommit against the
//     TargetSpec budgets, reusing p4ir::resources.
//
// Deployment::build and sim::DataPlaneTarget run this pass at the
// front of their setup; `dejavu_cli lint` exposes it to operators.
#pragma once

#include <vector>

#include "asic/switch_config.hpp"
#include "p4ir/deps.hpp"
#include "p4ir/program.hpp"
#include "place/placement.hpp"
#include "route/routing.hpp"
#include "sfc/chain.hpp"
#include "verify/finding.hpp"

namespace dejavu::verify {

/// Everything the verifier may look at. All pointers are optional and
/// borrowed (the caller keeps them alive for the run_all call);
/// run_all runs exactly the checks whose inputs are present.
struct VerifyInput {
  /// The composed multi-pipelet program.
  const p4ir::Program* program = nullptr;
  const p4ir::TupleIdTable* ids = nullptr;
  /// The pre-merge NF programs (enables the cross-NF parser checks).
  std::vector<const p4ir::Program*> nf_programs;
  /// Per-control-block dependency graphs, aligned with
  /// program->controls(). Recomputed via dependency_graphs() when
  /// absent; pass the graphs you will actually compile with to have
  /// them cross-checked against the program.
  const std::vector<p4ir::DependencyGraph>* dep_graphs = nullptr;
  const place::Placement* placement = nullptr;
  const sfc::PolicySet* policies = nullptr;
  const asic::SwitchConfig* config = nullptr;
  /// The derived routing plan (enables the rule-walk checks).
  const route::RoutingPlan* routing = nullptr;
};

/// Run every applicable check; the returned report is sorted.
Report run_all(const VerifyInput& in);

/// The per-control dependency graphs the pipeline checks default to
/// (same flags Deployment::build compiles with: no sequential
/// barriers, since each control block is already one composed pipelet).
std::vector<p4ir::DependencyGraph> dependency_graphs(
    const p4ir::Program& program);

// --- individual checks (append findings to `out`) --------------------

/// DV-D1: dependency edges must run forward in apply order (the apply
/// sequence is the topological order the allocator consumes). Returns
/// false when the graph is too broken for stage-derived checks.
bool check_dependency_order(const p4ir::DependencyGraph& graph, Report& out);

/// DV-H1/H2/H3/H4 over one analyzed control block. Recomputes def/use
/// sets from Primitives (including register accesses) rather than
/// trusting the graph's own sets.
void check_stage_hazards(const p4ir::DependencyGraph& graph, Report& out);

/// DV-D2: dependency critical path vs. the stage ladder.
void check_stage_depth(const p4ir::DependencyGraph& graph,
                       const asic::TargetSpec& spec, Report& out);

/// DV-R1/R2: resource overcommit of one analyzed control block.
void check_resources(const p4ir::DependencyGraph& graph,
                     const asic::TargetSpec& spec, Report& out);

/// DV-P1/P2: cross-NF parser-merge conflicts (pre-merge programs).
void check_parser_merge(const std::vector<const p4ir::Program*>& nf_programs,
                        const p4ir::TupleIdTable& ids, Report& out);

/// DV-P1/P3: ambiguity inside one (typically merged) parser DAG.
void check_parser_graph(const p4ir::Program& program,
                        const p4ir::TupleIdTable& ids, Report& out);

/// DV-L1/L2/L3/L4/L5: placement feasibility per chain policy.
void check_placement(const sfc::PolicySet& policies,
                     const place::Placement& placement,
                     const asic::SwitchConfig& config, Report& out);

/// DV-L3/L6: walk the installed branching/check rules for every chain
/// policy and prove each reaches "chain complete and out" without
/// revisiting a pipelet state (bounded recirculation) or falling into
/// a routing gap.
void check_routing(const sfc::PolicySet& policies,
                   const place::Placement& placement,
                   const asic::SwitchConfig& config,
                   const route::RoutingPlan& routing, Report& out);

}  // namespace dejavu::verify
