#include "verify/verify.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "p4ir/resources.hpp"

namespace dejavu::verify {

namespace {

/// Sorted intersection of two string sets, for deterministic messages.
std::vector<std::string> intersect(const std::set<std::string>& a,
                                   const std::set<std::string>& b) {
  std::vector<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::string join(const std::vector<std::string>& items) {
  std::string s;
  for (const std::string& item : items) {
    if (!s.empty()) s += ", ";
    s += item;
  }
  return s;
}

std::string block_name(const p4ir::DependencyGraph& graph) {
  for (const p4ir::AnalyzedTable& at : graph.tables) {
    if (at.block != nullptr) return at.block->name();
  }
  return "<control>";
}

std::string table_name(const p4ir::AnalyzedTable& at) {
  return at.table != nullptr ? at.table->name : "<table>";
}

/// The def/use sets one table contributes to its MAU stage, recomputed
/// from the control block's primitives (not taken from the graph's own
/// cached sets, so a stale or hand-edited graph is still caught) and
/// extended with the register arrays the actions touch — which
/// Action::reads()/writes() deliberately exclude, making registers
/// invisible to dependency analysis.
struct DefUse {
  std::set<std::string> reads;   // match keys, gateway fields, action reads
  std::set<std::string> writes;  // action writes
  std::set<std::string> regs;    // register arrays accessed
};

DefUse def_use(const p4ir::AnalyzedTable& at) {
  DefUse du;
  if (at.table == nullptr) return du;
  du.reads = at.table->match_fields();
  du.reads.insert(at.guard_fields.begin(), at.guard_fields.end());
  if (at.field_guard) du.reads.insert(at.field_guard->field);

  if (at.block != nullptr) {
    const std::set<std::string> ar = at.block->table_action_reads(*at.table);
    const std::set<std::string> aw = at.block->table_action_writes(*at.table);
    du.reads.insert(ar.begin(), ar.end());
    du.writes.insert(aw.begin(), aw.end());

    std::vector<std::string> action_names = at.table->actions;
    if (!at.table->default_action.empty()) {
      action_names.push_back(at.table->default_action);
    }
    for (const std::string& name : action_names) {
      const p4ir::Action* action = at.block->find_action(name);
      if (action == nullptr) continue;
      for (const p4ir::Primitive& p : action->primitives) {
        if (p.op == p4ir::PrimitiveOp::kRegisterRead ||
            p.op == p4ir::PrimitiveOp::kRegisterAdd ||
            p.op == p4ir::PrimitiveOp::kRegisterWrite) {
          du.regs.insert(p.param);
        }
      }
    }
  } else {
    du.reads.insert(at.action_reads.begin(), at.action_reads.end());
    du.writes.insert(at.action_writes.begin(), at.action_writes.end());
  }
  return du;
}

}  // namespace

std::vector<p4ir::DependencyGraph> dependency_graphs(
    const p4ir::Program& program) {
  std::vector<p4ir::DependencyGraph> graphs;
  graphs.reserve(program.controls().size());
  for (const p4ir::ControlBlock& control : program.controls()) {
    // Same flags the deployment pipeline compiles with: each control is
    // one already-composed pipelet, so no inter-block barriers apply.
    graphs.push_back(p4ir::analyze_dependencies({&control}, false));
  }
  return graphs;
}

bool check_dependency_order(const p4ir::DependencyGraph& graph, Report& out) {
  const std::string where = block_name(graph);
  bool ok = true;
  for (const p4ir::Dependency& d : graph.deps) {
    if (d.from >= graph.tables.size() || d.to >= graph.tables.size()) {
      out.add("DV-D1", where,
              "dependency edge " + std::to_string(d.from) + " -> " +
                  std::to_string(d.to) + " references a table index out of "
                  "range (" + std::to_string(graph.tables.size()) +
                  " tables)");
      ok = false;
      continue;
    }
    if (d.from >= d.to) {
      // Tables sit in apply order, which doubles as the topological
      // order the allocator consumes; an edge running backward (or a
      // self-loop) means the tables cannot be ordered at all.
      out.add("DV-D1", where,
              "dependency edge from '" + table_name(graph.tables[d.from]) +
                  "' (index " + std::to_string(d.from) + ") to '" +
                  table_name(graph.tables[d.to]) + "' (index " +
                  std::to_string(d.to) + ") runs against apply order — the "
                  "tables cannot be topologically ordered");
      ok = false;
    }
  }
  return ok;
}

void check_stage_hazards(const p4ir::DependencyGraph& graph, Report& out) {
  const std::string where = block_name(graph);
  const std::vector<std::uint32_t> stages = graph.min_stages();

  std::vector<DefUse> du;
  du.reserve(graph.tables.size());
  for (const p4ir::AnalyzedTable& at : graph.tables) du.push_back(def_use(at));

  for (std::size_t j = 0; j < graph.tables.size(); ++j) {
    const p4ir::AnalyzedTable& b = graph.tables[j];
    for (std::size_t i = 0; i < j; ++i) {
      const p4ir::AnalyzedTable& a = graph.tables[i];
      if (stages[i] != stages[j]) continue;
      const std::string stage = std::to_string(stages[i]);
      const std::string pair =
          "'" + table_name(a) + "' and '" + table_name(b) + "'";

      const bool cross_branch = !a.branch_id.empty() &&
                                !b.branch_id.empty() &&
                                a.branch_id != b.branch_id;
      if (cross_branch) {
        // Dependency analysis trusts distinct branch ids to mean "no
        // packet executes both". That claim is only safe when gateways
        // actually enforce the exclusion; an ungated entry runs for
        // every packet, so two branches writing one field would race
        // in the VLIW. Reads stay benign either way: a stage's match
        // keys are extracted before any of its actions write, so a
        // cross-branch reader sees the pre-stage value by design (the
        // parallel composition's ungated check_nextNF gates match the
        // index that glue tables advance in the same stage).
        if (a.gated && b.gated) continue;
        const std::vector<std::string> conflicts =
            intersect(du[i].writes, du[j].writes);
        if (!conflicts.empty()) {
          out.add("DV-H3", where,
                  "branches '" + a.branch_id + "' and '" + b.branch_id +
                      "' claim mutual exclusion but " + pair +
                      " share stage " + stage +
                      " with at least one ungated entry, both writing: " +
                      join(conflicts));
        }
        continue;
      }

      if (std::vector<std::string> ww = intersect(du[i].writes, du[j].writes);
          !ww.empty()) {
        out.add("DV-H1", where,
                pair + " share stage " + stage + " but both write: " +
                    join(ww));
      }
      // Same-stage VLIW semantics: every table reads the stage-input
      // PHV, so a later table reading what an earlier co-staged table
      // writes sees the stale value (read-after-write broken); the
      // reverse (write-after-read) is harmless.
      if (std::vector<std::string> rw = intersect(du[i].writes, du[j].reads);
          !rw.empty()) {
        out.add("DV-H2", where,
                "'" + table_name(b) + "' matches or reads fields written "
                    "by '" + table_name(a) + "' in the same stage " + stage +
                    ": " + join(rw));
      }
    }
  }

  // A Tofino register array lives in exactly one MAU stage; actions in
  // other stages cannot reach it. Registers never show up in the
  // field-level read/write sets, so only this check catches it.
  std::map<std::string, std::map<std::uint32_t, std::vector<std::string>>>
      reg_stages;
  for (std::size_t i = 0; i < graph.tables.size(); ++i) {
    for (const std::string& reg : du[i].regs) {
      reg_stages[reg][stages[i]].push_back(table_name(graph.tables[i]));
    }
  }
  for (const auto& [reg, by_stage] : reg_stages) {
    if (by_stage.size() < 2) continue;
    std::string detail;
    for (const auto& [stage, users] : by_stage) {
      if (!detail.empty()) detail += "; ";
      detail += "stage " + std::to_string(stage) + ": " + join(users);
    }
    out.add("DV-H4", where + "/" + reg,
            "register '" + reg + "' is accessed from tables in " +
                std::to_string(by_stage.size()) + " different MAU stages (" +
                detail + ")");
  }
}

void check_stage_depth(const p4ir::DependencyGraph& graph,
                       const asic::TargetSpec& spec, Report& out) {
  if (graph.tables.empty()) return;
  const std::uint32_t need = graph.critical_path_stages();
  if (need > spec.stages_per_pipelet) {
    out.add("DV-D2", block_name(graph),
            "dependency critical path needs " + std::to_string(need) +
                " MAU stages but the pipelet ladder has " +
                std::to_string(spec.stages_per_pipelet));
  }
}

void check_resources(const p4ir::DependencyGraph& graph,
                     const asic::TargetSpec& spec, Report& out) {
  const std::string where = block_name(graph);
  p4ir::TableResources total;
  for (const p4ir::AnalyzedTable& at : graph.tables) {
    if (at.block == nullptr || at.table == nullptr) continue;
    const p4ir::TableResources r = p4ir::estimate_table(at);
    total += r;
    // Mirrors compile::allocate: an oversized table is sliced into
    // per-stage entry chunks (only the first keeps the gateway), so it
    // is unplaceable only when even a single-entry slice overflows an
    // empty stage — e.g. a key wider than the match crossbar.
    if (!r.fits_within(spec.stage_budget)) {
      p4ir::Table slice = *at.table;
      slice.max_entries = 1;
      const p4ir::TableResources first =
          p4ir::estimate_table(*at.block, slice, at.gated);
      const p4ir::TableResources rest =
          p4ir::estimate_table(*at.block, slice, /*gated=*/false);
      if (!first.fits_within(spec.stage_budget) ||
          !rest.fits_within(spec.stage_budget)) {
        out.add("DV-R2", where + "/" + at.table->name,
                "even a single-entry slice needs " + first.to_string() +
                    " but a single stage provides only " +
                    spec.stage_budget.to_string());
      }
    }
  }

  p4ir::TableResources ladder = spec.stage_budget;
  ladder.table_ids *= spec.stages_per_pipelet;
  ladder.gateways *= spec.stages_per_pipelet;
  ladder.sram_blocks *= spec.stages_per_pipelet;
  ladder.tcam_blocks *= spec.stages_per_pipelet;
  ladder.vliw_slots *= spec.stages_per_pipelet;
  ladder.exact_xbar_bytes *= spec.stages_per_pipelet;
  ladder.ternary_xbar_bytes *= spec.stages_per_pipelet;
  if (!total.fits_within(ladder)) {
    out.add("DV-R1", where,
            "tables need " + total.to_string() + " but the whole " +
                std::to_string(spec.stages_per_pipelet) +
                "-stage pipelet provides only " + ladder.to_string());
  }
}

void check_parser_merge(const std::vector<const p4ir::Program*>& nf_programs,
                        const p4ir::TupleIdTable& ids, Report& out) {
  auto program_label = [](const p4ir::Program& p) {
    return p.annotation("nf").value_or(p.name());
  };
  auto tuple_label = [&](std::uint32_t id) {
    return id < ids.size() ? ids.tuple_of(id).to_string()
                           : "vertex#" + std::to_string(id);
  };

  // Header layouts must agree structurally across NFs (§3: the merged
  // program carries one definition per header type).
  std::map<std::string, std::pair<const p4ir::HeaderType*, std::string>>
      layouts;
  for (const p4ir::Program* p : nf_programs) {
    if (p == nullptr) continue;
    const std::string label = program_label(*p);
    for (const p4ir::HeaderType& type : p->header_types()) {
      auto [it, inserted] = layouts.emplace(type.name,
                                            std::make_pair(&type, label));
      if (!inserted && !(*it->second.first == type)) {
        out.add("DV-P2", type.name,
                "NFs '" + it->second.second + "' and '" + label +
                    "' define header type '" + type.name +
                    "' with different field layouts");
      }
    }
  }

  // Transitions: the same (vertex, selector field, value) must lead
  // every NF to the same next vertex, and all NFs must agree on the
  // start vertex — otherwise the merged generic parser is ambiguous.
  using EdgeKey = std::tuple<std::uint32_t, std::string, std::uint64_t, bool>;
  std::map<EdgeKey, std::pair<std::uint32_t, std::string>> transitions;
  std::pair<std::uint32_t, std::string> start{0, ""};
  bool have_start = false;
  for (const p4ir::Program* p : nf_programs) {
    if (p == nullptr || p->parser().vertices().empty()) continue;
    const std::string label = program_label(*p);

    if (!have_start) {
      start = {p->parser().start(), label};
      have_start = true;
    } else if (p->parser().start() != start.first) {
      out.add("DV-P1", "start",
              "NFs '" + start.second + "' and '" + label +
                  "' start parsing at different vertices (" +
                  tuple_label(start.first) + " vs " +
                  tuple_label(p->parser().start()) + ")");
    }

    for (const p4ir::ParserEdge& e : p->parser().edges()) {
      const EdgeKey key{e.from, e.select_field, e.select_value, e.is_default};
      auto [it, inserted] = transitions.emplace(
          key, std::make_pair(e.to, label));
      if (inserted || it->second.first == e.to) continue;
      std::string selector =
          e.is_default ? "default transition"
                       : e.select_field + " == " +
                             std::to_string(e.select_value);
      out.add("DV-P1", tuple_label(e.from),
              "NFs '" + it->second.second + "' and '" + label +
                  "' map " + selector + " to different headers (" +
                  tuple_label(it->second.first) + " vs " + tuple_label(e.to) +
                  ")");
    }
  }
}

void check_parser_graph(const p4ir::Program& program,
                        const p4ir::TupleIdTable& ids, Report& out) {
  const p4ir::ParserGraph& parser = program.parser();
  if (parser.vertices().empty()) return;
  auto tuple_label = [&](std::uint32_t id) {
    return id < ids.size() ? ids.tuple_of(id).to_string()
                           : "vertex#" + std::to_string(id);
  };

  for (std::uint32_t v : parser.vertices()) {
    std::size_t defaults = 0;
    std::map<std::pair<std::string, std::uint64_t>, std::uint32_t> selective;
    std::set<std::string> fields;
    for (const p4ir::ParserEdge& e : parser.out_edges(v)) {
      if (e.is_default) {
        ++defaults;
        continue;
      }
      fields.insert(e.select_field);
      auto [it, inserted] = selective.emplace(
          std::make_pair(e.select_field, e.select_value), e.to);
      if (!inserted && it->second != e.to) {
        out.add("DV-P1", tuple_label(v),
                "selector " + e.select_field + " == " +
                    std::to_string(e.select_value) +
                    " transitions to two different headers (" +
                    tuple_label(it->second) + " vs " + tuple_label(e.to) +
                    ")");
      }
    }
    if (defaults > 1) {
      out.add("DV-P1", tuple_label(v),
              "vertex has " + std::to_string(defaults) +
                  " default transitions");
    }
    if (fields.size() > 1) {
      // Hardware select keys are per-state; selecting on several
      // fields at once needs key concatenation the merge does not do.
      out.add("DV-P3", tuple_label(v),
              "vertex selects its transition on " +
                  std::to_string(fields.size()) + " different fields (" +
                  join({fields.begin(), fields.end()}) + ")");
    }
  }
}

namespace {

std::string policy_label(const sfc::ChainPolicy& policy) {
  std::string s = "path " + std::to_string(policy.path_id);
  if (!policy.name.empty()) s += " (" + policy.name + ")";
  return s;
}

}  // namespace

void check_placement(const sfc::PolicySet& policies,
                     const place::Placement& placement,
                     const asic::SwitchConfig& config, Report& out) {
  const asic::TargetSpec& spec = config.spec();
  const place::TraversalEnv env = route::env_for(config);

  for (const sfc::ChainPolicy& policy : policies.policies()) {
    const std::string where = policy_label(policy);

    bool unplaced = false;
    for (const std::string& nf : policy.nfs) {
      if (!placement.find(nf)) {
        out.add("DV-L1", where,
                "NF '" + nf + "' is not placed on any pipelet");
        unplaced = true;
      }
    }
    if (unplaced) continue;

    const place::Traversal t =
        place::plan_traversal(policy, placement, spec, env);
    if (!t.feasible) {
      if (t.infeasible_reason.find("did not terminate") !=
          std::string::npos) {
        out.add("DV-L3", where,
                "traversal never completes the chain: " +
                    t.infeasible_reason);
      } else {
        out.add("DV-L2", where, t.infeasible_reason);
      }
      continue;
    }

    // Re-check every planned step against the ASIC's §3.3 rules, as
    // defense in depth for traversals that reach us from other
    // planners or hand-written deployment descriptions.
    const asic::RecircConstraints& rc = spec.recirc;
    for (std::size_t s = 0; s < t.steps.size(); ++s) {
      const place::TraversalStep& step = t.steps[s];
      const bool ingress = step.pipelet.kind == asic::PipeKind::kIngress;
      const place::TraversalStep* next =
          s + 1 < t.steps.size() ? &t.steps[s + 1] : nullptr;
      const std::string at = "step " + std::to_string(s) + " (" +
                             step.pipelet.to_string() + ")";
      switch (step.exit_via) {
        case place::TraversalStep::Exit::kResubmit:
          if (!ingress && rc.loopback_at_pipe_boundary) {
            out.add("DV-L4", where,
                    at + " resubmits from an egress pipe; resubmission is "
                         "only possible after ingress");
          }
          if (rc.within_pipeline && next != nullptr &&
              next->pipelet.pipeline != step.pipelet.pipeline) {
            out.add("DV-L4", where,
                    at + " resubmits into a different pipeline");
          }
          break;
        case place::TraversalStep::Exit::kRecirculate:
          if (ingress && rc.loopback_at_pipe_boundary) {
            out.add("DV-L4", where,
                    at + " recirculates from an ingress pipe; recirculation "
                         "is only possible after egress");
          }
          if (!env.recirc_ok(step.pipelet.pipeline)) {
            out.add("DV-L4", where,
                    at + " recirculates in pipeline " +
                        std::to_string(step.pipelet.pipeline) +
                        " which has no loopback/recirculation capacity");
          }
          if (rc.within_pipeline && next != nullptr &&
              next->pipelet.pipeline != step.pipelet.pipeline) {
            out.add("DV-L4", where,
                    at + " recirculates into a different pipeline");
          }
          break;
        case place::TraversalStep::Exit::kToEgress:
          if (!ingress) {
            out.add("DV-L4", where,
                    at + " hops pipe-to-pipe from an egress pipe");
          }
          break;
        case place::TraversalStep::Exit::kOut:
          if (ingress) {
            out.add("DV-L4", where,
                    at + " exits the switch from an ingress pipe");
          }
          if (next != nullptr) {
            out.add("DV-L4", where, at + " exits mid-traversal");
          }
          break;
      }
    }

    // Consecutive chain NFs on one sequential pipelet against apply
    // order cost a resubmission each pass — legal, but usually a
    // placement mistake worth surfacing.
    for (std::size_t i = 0; i + 1 < policy.nfs.size(); ++i) {
      const place::NfLocation a = *placement.find(policy.nfs[i]);
      const place::NfLocation b = *placement.find(policy.nfs[i + 1]);
      if (!(a.pipelet == b.pipelet)) continue;
      const merge::PipeletAssignment* pa = placement.pipelet(a.pipelet);
      if (pa == nullptr || pa->kind != merge::CompositionKind::kSequential) {
        continue;
      }
      if (b.position < a.position) {
        out.add("DV-L5", where,
                "NF '" + policy.nfs[i + 1] + "' precedes '" + policy.nfs[i] +
                    "' in the apply order of " + a.pipelet.to_string() +
                    " but follows it in the chain — each pass costs an "
                    "extra resubmission");
      }
    }
  }
}

void check_routing(const sfc::PolicySet& policies,
                   const place::Placement& placement,
                   const asic::SwitchConfig& config,
                   const route::RoutingPlan& routing, Report& out) {
  if (!routing.feasible) {
    out.add("DV-L2", "routing", routing.infeasible_reason);
    return;
  }
  const asic::TargetSpec& spec = config.spec();

  auto has_check = [&](const std::string& nf, std::uint16_t path,
                       std::size_t idx) {
    for (const route::CheckRule& c : routing.checks) {
      if (c.nf == nf && c.path_id == path &&
          c.service_index == static_cast<std::uint8_t>(idx)) {
        return true;
      }
    }
    return false;
  };

  for (const sfc::ChainPolicy& policy : policies.policies()) {
    bool unplaced = false;
    for (const std::string& nf : policy.nfs) {
      if (!placement.find(nf)) unplaced = true;  // DV-L1 already reported
    }
    if (unplaced) continue;

    const std::string where = policy_label(policy);

    // Walk the installed rules exactly as the dataplane would: consume
    // chain NFs per pipelet pass (mirroring the traversal planner's
    // pass semantics), then obey the branching rule of the resulting
    // (pipelet, path, index) state. The walk is deterministic, so
    // revisiting a state proves unbounded recirculation.
    enum class Phase : std::uint8_t { kIngress, kEgress };
    Phase phase = Phase::kIngress;
    std::uint32_t pipeline = spec.pipeline_of_port(policy.in_port);
    std::size_t idx = 0;
    bool loop_back = false;  // pending egress-side loopback
    std::set<std::tuple<int, std::uint32_t, std::size_t, bool>> visited;

    auto consume = [&](const asic::PipeletId& pid) {
      const merge::PipeletAssignment* pa = placement.pipelet(pid);
      if (pa == nullptr) return;
      bool first = true;
      std::size_t last_pos = 0;
      while (idx < policy.nfs.size()) {
        const auto loc = placement.find(policy.nfs[idx]);
        if (!loc || !(loc->pipelet == pid)) break;
        if (!first) {
          if (pa->kind == merge::CompositionKind::kParallel) break;
          if (loc->position <= last_pos) break;
        }
        if (!has_check(policy.nfs[idx], policy.path_id, idx)) {
          out.add("DV-L6", where,
                  "no check_nextNF entry for NF '" + policy.nfs[idx] +
                      "' at service index " + std::to_string(idx));
        }
        last_pos = loc->position;
        first = false;
        ++idx;
      }
    };

    while (true) {
      const auto key = std::make_tuple(phase == Phase::kIngress ? 0 : 1,
                                       pipeline, idx, loop_back);
      if (!visited.insert(key).second) {
        out.add("DV-L3", where,
                "the branching rules revisit " +
                    asic::PipeletId{pipeline,
                                    phase == Phase::kIngress
                                        ? asic::PipeKind::kIngress
                                        : asic::PipeKind::kEgress}
                        .to_string() +
                    " at service index " + std::to_string(idx) +
                    " — the recirculation count is unbounded");
        break;
      }

      if (phase == Phase::kIngress) {
        const asic::PipeletId pid{pipeline, asic::PipeKind::kIngress};
        consume(pid);
        const route::BranchingRule* rule = routing.find_branching(
            pid, policy.path_id, static_cast<std::uint8_t>(idx));
        if (rule == nullptr) {
          out.add("DV-L6", where,
                  "no branching rule on " + pid.to_string() +
                      " for service index " + std::to_string(idx) +
                      " — the packet would hit the default drop");
          break;
        }
        if (rule->kind == route::BranchingRule::Kind::kResubmit) {
          continue;  // same ingress pipe, next pass
        }
        if (rule->port >= spec.total_ports()) {
          // Dedicated per-pipeline recirculation port.
          pipeline = rule->port - spec.total_ports();
          loop_back = true;
        } else {
          pipeline = spec.pipeline_of_port(rule->port);
          loop_back = config.is_loopback(rule->port);
        }
        phase = Phase::kEgress;
        continue;
      }

      consume({pipeline, asic::PipeKind::kEgress});
      if (loop_back) {
        loop_back = false;
        phase = Phase::kIngress;
        continue;
      }
      if (idx < policy.nfs.size()) {
        out.add("DV-L6", where,
                "the packet exits the switch with " +
                    std::to_string(policy.nfs.size() - idx) +
                    " chain NF(s) unvisited (next: '" + policy.nfs[idx] +
                    "')");
      }
      break;
    }
  }
}

Report run_all(const VerifyInput& in) {
  Report report;

  std::vector<p4ir::DependencyGraph> local_graphs;
  const std::vector<p4ir::DependencyGraph>* graphs = in.dep_graphs;
  if (graphs == nullptr && in.program != nullptr) {
    local_graphs = dependency_graphs(*in.program);
    graphs = &local_graphs;
  }

  if (graphs != nullptr) {
    for (const p4ir::DependencyGraph& graph : *graphs) {
      // A graph whose edges are malformed has no meaningful stage
      // assignment; skip the stage-derived checks for it.
      if (!check_dependency_order(graph, report)) continue;
      check_stage_hazards(graph, report);
      if (in.config != nullptr) {
        check_stage_depth(graph, in.config->spec(), report);
        check_resources(graph, in.config->spec(), report);
      }
    }
  }

  if (in.ids != nullptr && in.nf_programs.size() > 1) {
    check_parser_merge(in.nf_programs, *in.ids, report);
  }
  if (in.program != nullptr && in.ids != nullptr) {
    check_parser_graph(*in.program, *in.ids, report);
  }

  if (in.policies != nullptr && in.placement != nullptr &&
      in.config != nullptr) {
    check_placement(*in.policies, *in.placement, *in.config, report);
    if (in.routing != nullptr) {
      check_routing(*in.policies, *in.placement, *in.config, *in.routing,
                    report);
    }
  }

  report.sort();
  return report;
}

}  // namespace dejavu::verify
