#include "ptf/ptf.hpp"

namespace dejavu::ptf {

std::string CheckResult::summary() const {
  if (pass) return "PASS";
  std::string s = "FAIL:";
  for (const std::string& f : failures) {
    s += "\n  " + f;
  }
  return s;
}

CheckResult send_and_expect(control::ControlPlane& cp, net::Packet packet,
                            std::uint16_t in_port,
                            const Expectation& expect) {
  CheckResult result;
  sim::SwitchOutput out = cp.inject(std::move(packet), in_port);
  result.trace = out.trace;

  auto fail = [&](const std::string& msg) {
    result.pass = false;
    result.failures.push_back(msg);
  };

  switch (expect.outcome) {
    case Expectation::Outcome::kDropped:
      if (!out.dropped) fail("expected drop, packet was not dropped");
      return result;
    case Expectation::Outcome::kToCpu:
      if (out.to_cpu.empty()) fail("expected a CPU punt, got none");
      return result;
    case Expectation::Outcome::kDelivered:
      break;
  }

  if (out.dropped) {
    fail("packet dropped: " + out.drop_reason);
    return result;
  }
  if (out.out.size() != 1) {
    fail("expected exactly one delivered packet, got " +
         std::to_string(out.out.size()));
    return result;
  }

  const auto& emitted = out.out.front();
  const net::Packet& p = emitted.packet;

  if (expect.port && emitted.port != *expect.port) {
    fail("delivered on port " + std::to_string(emitted.port) +
         ", expected " + std::to_string(*expect.port));
  }
  if (expect.require_no_sfc && p.has_sfc_header()) {
    fail("delivered packet still carries the SFC header");
  }
  auto ip = p.ipv4();
  if (expect.ipv4_dst) {
    if (!ip) {
      fail("delivered packet has no IPv4 header");
    } else if (ip->dst != *expect.ipv4_dst) {
      fail("IPv4 dst is " + ip->dst.to_string() + ", expected " +
           expect.ipv4_dst->to_string());
    }
  }
  if (expect.ipv4_src) {
    if (!ip) {
      fail("delivered packet has no IPv4 header");
    } else if (ip->src != *expect.ipv4_src) {
      fail("IPv4 src is " + ip->src.to_string() + ", expected " +
           expect.ipv4_src->to_string());
    }
  }
  if (expect.ttl) {
    if (!ip) {
      fail("delivered packet has no IPv4 header");
    } else if (ip->ttl != *expect.ttl) {
      fail("TTL is " + std::to_string(ip->ttl) + ", expected " +
           std::to_string(*expect.ttl));
    }
  }
  if (expect.eth_dst) {
    auto eth = p.ethernet();
    if (!eth) {
      fail("delivered packet has no Ethernet header");
    } else if (eth->dst != *expect.eth_dst) {
      fail("Ethernet dst is " + eth->dst.to_string() + ", expected " +
           expect.eth_dst->to_string());
    }
  }
  if (expect.recirculations && out.recirculations != *expect.recirculations) {
    fail("took " + std::to_string(out.recirculations) +
         " recirculations, expected " +
         std::to_string(*expect.recirculations));
  }
  if (expect.resubmissions && out.resubmissions != *expect.resubmissions) {
    fail("took " + std::to_string(out.resubmissions) +
         " resubmissions, expected " +
         std::to_string(*expect.resubmissions));
  }
  return result;
}

}  // namespace dejavu::ptf
