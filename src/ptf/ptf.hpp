// A Packet-Test-Framework-style harness (§5: "We test the input and
// output packets of multiple SFC paths using the Packet Test
// Framework"): inject a packet, assert on where it comes out and what
// its headers look like, with readable diffs on failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "control/control_plane.hpp"
#include "net/packet.hpp"

namespace dejavu::ptf {

/// What an injected packet is expected to produce.
struct Expectation {
  enum class Outcome : std::uint8_t { kDelivered, kDropped, kToCpu };
  Outcome outcome = Outcome::kDelivered;

  std::optional<std::uint16_t> port;  // delivery port
  std::optional<net::Ipv4Addr> ipv4_dst;
  std::optional<net::Ipv4Addr> ipv4_src;
  std::optional<net::MacAddr> eth_dst;
  std::optional<std::uint8_t> ttl;
  /// Delivered packets must not leak the SFC header (the Router pops
  /// it); set false to skip the check.
  bool require_no_sfc = true;
  std::optional<std::uint32_t> recirculations;
  std::optional<std::uint32_t> resubmissions;
};

struct CheckResult {
  bool pass = true;
  std::vector<std::string> failures;
  std::vector<std::string> trace;  // data-plane trace for debugging

  std::string summary() const;
};

/// Inject via the control plane (punts serviced) and check.
CheckResult send_and_expect(control::ControlPlane& cp, net::Packet packet,
                            std::uint16_t in_port,
                            const Expectation& expect);

}  // namespace dejavu::ptf
