// On-chip packet routing (§3.4): after placement, install the rules
// that steer packets through their chains — branching-table entries on
// every ingress pipelet (keyed by service path ID + service index) and
// check_nextNF entries for every NF instance. "Routing rules of this
// table can only be installed after NF placement."
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asic/switch_config.hpp"
#include "place/placement.hpp"
#include "sfc/chain.hpp"

namespace dejavu::route {

/// A virtual port ID for the dedicated per-pipeline recirculation port
/// (§4: 100 Gbps of free recirculation bandwidth per pipeline). These
/// sit above the front-panel port range.
std::uint16_t dedicated_recirc_port(const asic::TargetSpec& spec,
                                    std::uint32_t pipeline);

/// One branching-table entry.
struct BranchingRule {
  enum class Kind : std::uint8_t {
    kToEgress,  // set egress_spec = port (next NF on an egress pipe, a
                // loopback port toward another ingress pipe, or the
                // final exit port)
    kResubmit,  // resubmit into the same ingress pipe
  };

  asic::PipeletId pipelet;  // which ingress pipelet's branching table
  std::uint16_t path_id = 0;
  std::uint8_t service_index = 0;
  Kind kind = Kind::kToEgress;
  std::uint16_t port = 0;  // for kToEgress

  bool operator==(const BranchingRule&) const = default;
  std::string to_string() const;
};

/// One check_nextNF entry: NF `nf` is position `service_index` of path
/// `path_id`. Installed in the check table of the NF's pipelet.
struct CheckRule {
  std::string nf;
  std::uint16_t path_id = 0;
  std::uint8_t service_index = 0;

  bool operator==(const CheckRule&) const = default;
};

/// The installable routing state for one placement, plus the planned
/// traversals it was derived from (for diagnostics and tests).
struct RoutingPlan {
  std::vector<BranchingRule> branching;
  std::vector<CheckRule> checks;
  std::map<std::uint16_t, place::Traversal> traversals;  // by path_id

  bool feasible = true;
  std::string infeasible_reason;

  /// Find the branching rule for (pipelet, path, index); nullptr when
  /// absent.
  const BranchingRule* find_branching(const asic::PipeletId& pipelet,
                                      std::uint16_t path_id,
                                      std::uint8_t index) const;
};

/// Derive the routing plan: replay each policy's traversal and emit
/// the branching rule every ingress pass needs, choosing loopback
/// ports (or the dedicated recirculation port) for pipe-to-pipe hops.
/// Loopback ports in a pipeline are assigned round-robin across rules
/// to spread recirculation load.
RoutingPlan build_routing(const sfc::PolicySet& policies,
                          const place::Placement& placement,
                          const asic::SwitchConfig& config);

/// The traversal environment implied by a switch configuration:
/// recirculation is possible in every pipeline (the dedicated port
/// always exists); bandwidth differences are the simulator's concern.
place::TraversalEnv env_for(const asic::SwitchConfig& config);

}  // namespace dejavu::route
