#include "route/routing.hpp"

#include <algorithm>

namespace dejavu::route {

std::uint16_t dedicated_recirc_port(const asic::TargetSpec& spec,
                                    std::uint32_t pipeline) {
  return static_cast<std::uint16_t>(spec.total_ports() + pipeline);
}

std::string BranchingRule::to_string() const {
  std::string s = pipelet.to_string() + " (path " + std::to_string(path_id) +
                  ", idx " + std::to_string(service_index) + ") -> ";
  if (kind == Kind::kResubmit) return s + "resubmit";
  return s + "egress port " + std::to_string(port);
}

const BranchingRule* RoutingPlan::find_branching(
    const asic::PipeletId& pipelet, std::uint16_t path_id,
    std::uint8_t index) const {
  for (const BranchingRule& r : branching) {
    if (r.pipelet == pipelet && r.path_id == path_id &&
        r.service_index == index) {
      return &r;
    }
  }
  return nullptr;
}

place::TraversalEnv env_for(const asic::SwitchConfig& config) {
  place::TraversalEnv env;
  env.pipelines = config.spec().pipelines;
  // The dedicated recirculation port makes recirculation always
  // physically possible; capacity is modeled by the simulator.
  env.can_recirculate.assign(env.pipelines, true);
  return env;
}

namespace {

/// Round-robin chooser over a pipeline's loopback ports, falling back
/// to the dedicated recirculation port when none are configured.
class RecircPortChooser {
 public:
  explicit RecircPortChooser(const asic::SwitchConfig& config)
      : config_(config), next_(config.spec().pipelines, 0) {}

  std::uint16_t pick(std::uint32_t pipeline) {
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t p : config_.loopback_ports()) {
      if (config_.spec().pipeline_of_port(p) == pipeline) {
        candidates.push_back(p);
      }
    }
    if (candidates.empty()) {
      return dedicated_recirc_port(config_.spec(), pipeline);
    }
    std::uint16_t port = static_cast<std::uint16_t>(
        candidates[next_[pipeline] % candidates.size()]);
    ++next_[pipeline];
    return port;
  }

 private:
  const asic::SwitchConfig& config_;
  std::vector<std::size_t> next_;
};

void add_unique(std::vector<BranchingRule>& rules, BranchingRule rule) {
  for (const BranchingRule& r : rules) {
    if (r.pipelet == rule.pipelet && r.path_id == rule.path_id &&
        r.service_index == rule.service_index) {
      return;  // already derived (identical traversals are replayed once
               // per policy, so duplicates are benign)
    }
  }
  rules.push_back(std::move(rule));
}

}  // namespace

RoutingPlan build_routing(const sfc::PolicySet& policies,
                          const place::Placement& placement,
                          const asic::SwitchConfig& config) {
  RoutingPlan plan;
  const asic::TargetSpec& spec = config.spec();
  const place::TraversalEnv env = env_for(config);
  RecircPortChooser recirc(config);

  // check_nextNF entries: every (path, index) pair whose NF has a
  // check table (i.e. every placed NF; the entry NF's classifier gate
  // is EtherType-based but an entry is harmless and keeps Table 1's
  // "an entry for each (pathID, serviceIndex) pair" accounting).
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    for (std::size_t i = 0; i < policy.nfs.size(); ++i) {
      plan.checks.push_back(CheckRule{
          policy.nfs[i], policy.path_id, static_cast<std::uint8_t>(i)});
    }
  }

  for (const sfc::ChainPolicy& policy : policies.policies()) {
    place::Traversal t = place::plan_traversal(policy, placement, spec, env);
    if (!t.feasible) {
      plan.feasible = false;
      plan.infeasible_reason = "path " + std::to_string(policy.path_id) +
                               ": " + t.infeasible_reason;
      plan.traversals.emplace(policy.path_id, std::move(t));
      continue;
    }

    // Replay the traversal, tracking the service index after each
    // pass, and emit the branching rule each ingress pass relies on.
    std::uint8_t index = 0;
    for (std::size_t s = 0; s < t.steps.size(); ++s) {
      const place::TraversalStep& step = t.steps[s];
      index = static_cast<std::uint8_t>(index + step.executed.size());

      if (step.pipelet.kind != asic::PipeKind::kIngress) continue;

      BranchingRule rule;
      rule.pipelet = step.pipelet;
      rule.path_id = policy.path_id;
      rule.service_index = index;

      switch (step.exit_via) {
        case place::TraversalStep::Exit::kResubmit:
          rule.kind = BranchingRule::Kind::kResubmit;
          break;
        case place::TraversalStep::Exit::kToEgress: {
          rule.kind = BranchingRule::Kind::kToEgress;
          // Port choice depends on what happens after the next
          // (egress) step: recirculation needs a loopback port; exit
          // uses the policy's exit port.
          const place::TraversalStep& egress = t.steps.at(s + 1);
          if (egress.exit_via == place::TraversalStep::Exit::kRecirculate) {
            rule.port = recirc.pick(egress.pipelet.pipeline);
          } else {
            rule.port = policy.exit_port;
          }
          // Supplementary rules for mid-pass reinjection states: when
          // the egress pass executes several NFs, a CPU-serviced punt
          // may re-enter this ingress pipe with the service index
          // pointing at any of them (the control plane rewinds to the
          // punting NF). Steer those states the same way.
          for (std::size_t extra = 1; extra < egress.executed.size();
               ++extra) {
            BranchingRule mid = rule;
            mid.service_index =
                static_cast<std::uint8_t>(rule.service_index + extra);
            add_unique(plan.branching, std::move(mid));
          }
          break;
        }
        default:
          continue;  // ingress passes never exit via kOut/kRecirculate
      }
      add_unique(plan.branching, std::move(rule));
    }
    plan.traversals.emplace(policy.path_id, std::move(t));
  }

  return plan;
}

}  // namespace dejavu::route
