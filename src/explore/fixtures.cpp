#include "explore/fixtures.hpp"

#include <stdexcept>
#include <utility>

#include "merge/framework.hpp"
#include "nf/nfs.hpp"
#include "nf/parser_lib.hpp"
#include "route/routing.hpp"

namespace dejavu::explore::fixtures {

namespace {

using p4ir::Action;
using p4ir::ControlBlock;
using p4ir::MatchKind;
using p4ir::Program;
using p4ir::Table;
using p4ir::TableKey;

/// A minimal custom NF shell (standard parser, one control block).
Program custom_nf(const std::string& name, p4ir::TupleIdTable& ids) {
  Program program(name);
  program.annotate("nf", name);
  nf::add_standard_parser(program, ids, {});
  return program;
}

void install_rogue_branching(control::Deployment& d,
                             std::vector<std::uint64_t> key,
                             sim::ActionCall call) {
  for (sim::RuntimeTable* rt :
       d.dataplane().tables_named(merge::kBranchingTable)) {
    rt->add_exact(key, call);
  }
}

/// DV-S1: a traffic class the operator added later steers path 9 to a
/// dedicated recirculation port at every service index — the packet
/// never leaves. Structurally fine (every table/route of the declared
/// policy checks out); only value-level exploration sees the loop.
Bundle value_recirc_loop() {
  Bundle b;
  b.name = "value-recirc-loop";
  b.description =
      "rogue traffic class routes to a recirc port forever (DV-S1)";
  b.expect_checks = {"DV-S1"};

  p4ir::TupleIdTable ids;
  std::vector<Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_router(ids));
  b.policies.add({.path_id = 1,
                  .name = "classify-then-route",
                  .nfs = {sfc::kClassifier, sfc::kRouter},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  asic::SwitchConfig config{asic::TargetSpec::tofino32()};
  b.deployment = control::Deployment::build(std::move(nfs), b.policies,
                                            std::move(config), std::move(ids));

  auto& cp = b.deployment->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 7});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = 1,
                .next_hop_mac = *net::MacAddr::parse("02:00:00:00:00:02")});

  // The bug: 10.9.0.0/16 (inside the serviced /8, higher priority)
  // is classified onto path 9 — a path no policy declares — and the
  // branching state for (9, 1) sends it to pipeline 0's dedicated
  // recirculation port. Every later pass misses all check tables, so
  // (9, 1) routes it there again, forever.
  const std::uint16_t recirc = route::dedicated_recirc_port(
      b.deployment->dataplane().config().spec(), 0);
  for (sim::RuntimeTable* rt : b.deployment->dataplane().tables_named(
           merge::qualify(sfc::kClassifier, "traffic_class"))) {
    rt->add_ternary(
        {{0, 0}, {0x0A090000, 0xFFFF0000}, {0, 0}}, 20,
        {merge::qualify(sfc::kClassifier, "classify"),
         {{"path_id", 9}, {"tenant", 9}}});
  }
  install_rogue_branching(*b.deployment, {9, 1},
                          {merge::kActRouteToEgress, {{"port", recirc}}});
  return b;
}

/// DV-S3: a hand-rolled terminal NF that routes like the stock Router
/// but forgets pop_sfc — the SFC transport header (with the platform
/// metadata bits inside it) leaves the switch on the wire.
Bundle metadata_leak() {
  Bundle b;
  b.name = "metadata-leak";
  b.description = "terminal NF routes without popping SFC (DV-S3)";
  b.expect_checks = {"DV-S3"};

  p4ir::TupleIdTable ids;
  std::vector<Program> nfs;
  nfs.push_back(nf::make_classifier(ids));

  Program leaky = custom_nf("Leaky", ids);
  ControlBlock control("Leaky_control");
  Action route;
  route.name = "route";
  route.params = {{"port", 9}, {"dmac", 48}};
  route.primitives = {
      p4ir::set_from_param("standard_metadata.egress_spec", "port"),
      p4ir::set_from_param("ethernet.dst_addr", "dmac"),
      // No pop_sfc: the bug under test.
  };
  control.add_action(route);
  Action route_miss;
  route_miss.name = "route_miss";
  route_miss.primitives = {p4ir::set_imm("sfc.to_cpu_flag", 1)};
  control.add_action(route_miss);
  Table lpm;
  lpm.name = "ipv4_lpm";
  lpm.keys = {TableKey{"ipv4.dst_addr", MatchKind::kLpm, 32}};
  lpm.actions = {"route", "route_miss"};
  lpm.default_action = "route_miss";
  lpm.max_entries = 1024;
  control.add_table(lpm);
  control.apply_table("ipv4_lpm");
  leaky.add_control(std::move(control));
  nfs.push_back(std::move(leaky));

  b.policies.add({.path_id = 1,
                  .name = "classify-then-leak",
                  .nfs = {sfc::kClassifier, "Leaky"},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  asic::SwitchConfig config{asic::TargetSpec::tofino32()};
  b.deployment = control::Deployment::build(std::move(nfs), b.policies,
                                            std::move(config), std::move(ids));

  auto& cp = b.deployment->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 1});
  for (sim::RuntimeTable* rt : b.deployment->dataplane().tables_named(
           merge::qualify("Leaky", "ipv4_lpm"))) {
    rt->add_lpm(net::Ipv4Addr(10, 0, 0, 0).value(), 8,
                {merge::qualify("Leaky", "route"),
                 {{"port", 1},
                  {"dmac", net::MacAddr::parse("02:00:00:00:00:02")
                               ->to_u64()}}});
  }
  return b;
}

/// DV-S2: a middle NF that zeroes sfc.service_index (a botched
/// "restart the chain" feature). Beyond the index regression itself,
/// the rewound packet falls off the routing plan — the branching
/// table has no entry for revisiting hop 1, so the chain's tail goes
/// dead (the DV-S6 warnings on the Router's rules).
Bundle index_rewind() {
  Bundle b;
  b.name = "index-rewind";
  b.description = "middle NF rewinds sfc.service_index (DV-S2)";
  b.expect_checks = {"DV-S2"};

  p4ir::TupleIdTable ids;
  std::vector<Program> nfs;
  nfs.push_back(nf::make_classifier(ids));

  Program rewind = custom_nf("Rewind", ids);
  ControlBlock control("Rewind_control");
  Action reset;
  reset.name = "reset";
  reset.primitives = {p4ir::set_imm("sfc.service_index", 0)};
  control.add_action(reset);
  Table tab;
  tab.name = "rewind";
  tab.actions = {"reset"};
  tab.default_action = "reset";
  control.add_table(tab);
  control.apply_table("rewind");
  rewind.add_control(std::move(control));
  nfs.push_back(std::move(rewind));

  nfs.push_back(nf::make_router(ids));
  b.policies.add({.path_id = 1,
                  .name = "classify-rewind-route",
                  .nfs = {sfc::kClassifier, "Rewind", sfc::kRouter},
                  .weight = 1.0,
                  .in_port = 0,
                  .exit_port = 1});
  asic::SwitchConfig config{asic::TargetSpec::tofino32()};
  b.deployment = control::Deployment::build(std::move(nfs), b.policies,
                                            std::move(config), std::move(ids));

  auto& cp = b.deployment->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 1});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = 1,
                .next_hop_mac = *net::MacAddr::parse("02:00:00:00:00:02")});
  return b;
}

/// DV-S5: two NFs composed in parallel in the same pipelet whose
/// check_nextNF gates both accept (path 1, index 1) after a sloppy
/// manual entry — which NF services the packet now depends on apply
/// order, not on the declared policies.
Bundle parallel_overlap() {
  Bundle b;
  b.name = "parallel-overlap";
  b.description = "parallel branch gates accept the same key (DV-S5)";
  b.expect_checks = {"DV-S5"};

  p4ir::TupleIdTable ids;
  std::vector<Program> nfs;
  nfs.push_back(nf::make_classifier(ids));
  nfs.push_back(nf::make_firewall(ids));
  nfs.push_back(nf::make_police(ids));
  nfs.push_back(nf::make_router(ids));
  b.policies.add({.path_id = 1,
                  .name = "firewalled",
                  .nfs = {sfc::kClassifier, sfc::kFirewall, sfc::kRouter},
                  .weight = 0.5,
                  .in_port = 0,
                  .exit_port = 1});
  b.policies.add({.path_id = 2,
                  .name = "policed",
                  .nfs = {sfc::kClassifier, "Police", sfc::kRouter},
                  .weight = 0.5,
                  .in_port = 0,
                  .exit_port = 1});

  place::Placement placement{{
      {{0, asic::PipeKind::kIngress},
       merge::CompositionKind::kParallel,
       {sfc::kClassifier, sfc::kFirewall, "Police"}},
      {{0, asic::PipeKind::kEgress},
       merge::CompositionKind::kSequential,
       {sfc::kRouter}},
  }};
  control::DeploymentOptions options;
  options.placement = std::move(placement);
  asic::SwitchConfig config{asic::TargetSpec::tofino32()};
  b.deployment =
      control::Deployment::build(std::move(nfs), b.policies,
                                 std::move(config), std::move(ids),
                                 std::move(options));

  auto& cp = b.deployment->control();
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 1});
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("11.0.0.0/8"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 2,
                        .tenant = 2});
  cp.add_firewall_rule({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .protocol = std::nullopt,
                        .dst_port = std::nullopt,
                        .priority = 1,
                        .permit = true});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = 1,
                .next_hop_mac = *net::MacAddr::parse("02:00:00:00:00:02")});
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("11.0.0.0/8"),
                .port = 1,
                .next_hop_mac = *net::MacAddr::parse("02:00:00:00:00:03")});

  // The bug: a manual entry makes Police's gate accept path 1's
  // (index 1) slot — the key FW's gate already owns.
  for (sim::RuntimeTable* rt : b.deployment->dataplane().tables_named(
           merge::check_next_nf_table("Police"))) {
    rt->add_exact({1, 1, 0, 0}, {merge::check_hit_action("Police"), {}});
  }
  return b;
}

}  // namespace

std::vector<std::string> names() {
  return {"value-recirc-loop", "metadata-leak", "index-rewind",
          "parallel-overlap"};
}

Bundle make(const std::string& name) {
  if (name == "value-recirc-loop") return value_recirc_loop();
  if (name == "metadata-leak") return metadata_leak();
  if (name == "index-rewind") return index_rewind();
  if (name == "parallel-overlap") return parallel_overlap();
  throw std::invalid_argument("unknown explore fixture '" + name + "'");
}

}  // namespace dejavu::explore::fixtures
