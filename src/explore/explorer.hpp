// Symbolic packet-path explorer (the semantic layer above the DV-H/D/
// P/L/R structural verifier): executes the deployed program — merged
// parser graph, installed table rules with exact/LPM/ternary key
// semantics, branching/resubmission/recirculation — over packets whose
// classification fields (IPv4 addresses, TTL, L4 ports) are symbolic,
// forking at every match and guard to enumerate each reachable
// equivalence class of packet paths. Per path it checks the DV-S
// properties (bounded recirculation, service-index monotonicity, no
// metadata on the wire, header validity, parallel-branch overlap,
// dead rules) and concretizes a witness packet that is replayed
// through a clone of the concrete sim::DataPlane; any disagreement is
// itself a finding (DV-S7) — the differential gate that keeps the
// symbolic model honest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sfc/chain.hpp"
#include "sim/compiled/compiled_pipeline.hpp"
#include "sim/dataplane.hpp"
#include "verify/finding.hpp"

namespace dejavu::explore {

struct ExploreOptions {
  /// Safety valve on the number of completed symbolic paths; paths
  /// beyond it are counted in stats.truncated, not analyzed.
  std::size_t max_paths = 20000;
  /// Replay every witness through a cloned concrete dataplane and
  /// report disagreements as DV-S7.
  bool differential = true;
  /// Emit DV-S6 dead-rule / unreachable-parser-state warnings.
  bool coverage = true;
  /// Ingress ports to explore from; defaults to the union of the
  /// policies' in_ports (external ports only).
  std::optional<std::vector<std::uint16_t>> in_ports;
  /// Chain generation to explore: symbolic lookups only see entries
  /// whose epoch window contains it (default: the dataplane's current
  /// epoch). Mid-update, exploring `e` proves the retiring generation
  /// and `e+1` the shadowed one — DV-S8 fires if any path would mix
  /// them, or if the requested generation is already drained.
  std::optional<std::uint32_t> epoch;
};

/// What the symbolic engine predicts the switch does with one
/// equivalence class of packets (mirror of sim::SwitchOutput).
struct PredictedOutcome {
  bool dropped = false;
  /// Canonical drop code (sim::DropCode vocabulary); the string keeps
  /// the human-readable detail. The differential replay (DV-S7)
  /// requires the concrete dataplane to agree on the code.
  sim::DropCode drop_code = sim::DropCode::kNone;
  std::string drop_reason;
  std::uint32_t to_cpu = 0;
  std::vector<std::uint16_t> out_ports;
  std::vector<std::uint16_t> recirc_ports;
  std::uint32_t resubmissions = 0;
  /// The final emit still carried the SFC EtherType (DV-S3).
  bool sfc_on_final_emit = false;
};

/// One completed symbolic path, concretized.
struct PathSummary {
  std::string shape;  // "tcp" or "udp"
  std::uint16_t in_port = 0;
  /// Solved values of the symbolic input fields.
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint8_t ttl = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  net::Packet witness;
  PredictedOutcome outcome;
  std::vector<asic::PipeletId> pipelets;

  /// The witness as a synthesizable spec (for replay harnesses).
  net::PacketSpec spec() const;
  std::string to_string() const;
};

struct ExploreStats {
  std::size_t paths = 0;       // completed symbolic paths
  std::size_t infeasible = 0;  // forks pruned as unsatisfiable
  std::size_t truncated = 0;   // paths beyond the max_paths valve
  std::size_t replays = 0;     // differential replays executed
};

struct ExploreResult {
  verify::Report report;
  std::vector<PathSummary> paths;
  ExploreStats stats;
};

/// Explore `dp` (with its currently installed rules) from the ingress
/// ports of `policies`. The dataplane is not mutated: lookups are
/// modelled, not executed, and differential replays run on a clone
/// with fresh registers.
ExploreResult run(sim::DataPlane& dp, const sfc::PolicySet& policies,
                  const ExploreOptions& options = {});

/// Trace export for the compiled fast path (DESIGN.md §12): one
/// compile witness per explored path equivalence class. The witnesses
/// seed sim::CompiledPipeline — they define the compiled trace set and
/// gate compilation by differential replay against the interpreter.
sim::CompileSeed compile_seed(const ExploreResult& result);

}  // namespace dejavu::explore
