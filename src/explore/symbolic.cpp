#include "explore/symbolic.hpp"

namespace dejavu::explore {

namespace {

std::uint64_t wmask_for(std::uint16_t bits) {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

}  // namespace

int ConstraintSet::add_var(VarDef def) {
  VarConstraints c;
  c.hi = wmask_for(def.bits);
  defs_.push_back(std::move(def));
  cons_.push_back(std::move(c));
  return static_cast<int>(defs_.size()) - 1;
}

std::uint64_t ConstraintSet::width_mask(int var) const {
  return wmask_for(defs_[var].bits);
}

bool ConstraintSet::ok(int var, std::uint64_t v) const {
  const VarConstraints& c = cons_[var];
  if (v > wmask_for(defs_[var].bits)) return false;
  if ((v & c.known_mask) != c.known_value) return false;
  if (v < c.lo || v > c.hi) return false;
  for (const net::TernaryField& f : c.forbidden) {
    if (f.matches(v)) return false;
  }
  return true;
}

bool ConstraintSet::require_masked(int var, std::uint64_t value,
                                   std::uint64_t mask) {
  VarConstraints& c = cons_[var];
  mask &= width_mask(var);
  value &= mask;
  const std::uint64_t overlap = mask & c.known_mask;
  if ((c.known_value & overlap) != (value & overlap)) return false;
  c.known_mask |= mask;
  c.known_value = (c.known_value | value) & c.known_mask;
  return solve(var).has_value();
}

bool ConstraintSet::require_eq(int var, std::uint64_t value) {
  return require_masked(var, value, width_mask(var));
}

bool ConstraintSet::require_ne(int var, std::uint64_t value) {
  const std::uint64_t m = width_mask(var);
  cons_[var].forbidden.push_back(net::TernaryField{value & m, m});
  return solve(var).has_value();
}

bool ConstraintSet::forbid_masked(int var, std::uint64_t value,
                                  std::uint64_t mask) {
  mask &= width_mask(var);
  cons_[var].forbidden.push_back(net::TernaryField{value & mask, mask});
  return solve(var).has_value();
}

bool ConstraintSet::require_lt(int var, std::uint64_t value) {
  if (value == 0) return false;
  VarConstraints& c = cons_[var];
  c.hi = std::min(c.hi, value - 1);
  return solve(var).has_value();
}

bool ConstraintSet::require_gt(int var, std::uint64_t value) {
  if (value >= width_mask(var)) return false;
  VarConstraints& c = cons_[var];
  c.lo = std::max(c.lo, value + 1);
  return solve(var).has_value();
}

bool ConstraintSet::require_le(int var, std::uint64_t value) {
  VarConstraints& c = cons_[var];
  c.hi = std::min(c.hi, value);
  return solve(var).has_value();
}

bool ConstraintSet::require_ge(int var, std::uint64_t value) {
  VarConstraints& c = cons_[var];
  c.lo = std::max(c.lo, value);
  return solve(var).has_value();
}

std::optional<std::uint64_t> ConstraintSet::solve(int var) const {
  const VarConstraints& c = cons_[var];
  if (c.lo > c.hi) return std::nullopt;

  // The candidate sequence is fixed so the witness for a given
  // constraint state never depends on constraint insertion order.
  if (ok(var, defs_[var].template_value)) return defs_[var].template_value;

  for (std::uint64_t d = 0; d < 256; ++d) {
    if (d > c.hi - c.lo) break;
    if (ok(var, c.lo + d)) return c.lo + d;
  }
  for (std::uint64_t d = 0; d < 256; ++d) {
    if (d > c.hi - c.lo) break;
    if (ok(var, c.hi - d)) return c.hi - d;
  }

  // Scatter counter bits over the positions not forced by known_mask,
  // both LSB-first and MSB-first, to dodge forbidden patterns that the
  // contiguous scans above happen to sweep through.
  const std::uint64_t wmask = width_mask(var);
  const std::uint64_t base = c.known_value;
  const std::uint64_t free_mask = wmask & ~c.known_mask;
  std::vector<unsigned> free_bits;
  for (unsigned b = 0; b < 64; ++b) {
    if ((free_mask >> b) & 1) free_bits.push_back(b);
  }
  for (std::uint64_t k = 0; k < 4096; ++k) {
    std::uint64_t lsb = base;
    std::uint64_t msb = base;
    for (std::size_t i = 0; i < free_bits.size(); ++i) {
      if ((k >> i) & 1) {
        lsb |= std::uint64_t{1} << free_bits[i];
        msb |= std::uint64_t{1} << free_bits[free_bits.size() - 1 - i];
      }
    }
    if (ok(var, lsb)) return lsb;
    if (ok(var, msb)) return msb;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> ConstraintSet::pin(int var) {
  auto v = solve(var);
  if (!v) return std::nullopt;
  if (!require_eq(var, *v)) return std::nullopt;
  return v;
}

}  // namespace dejavu::explore
