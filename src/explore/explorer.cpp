#include "explore/explorer.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "explore/symbolic.hpp"
#include "merge/compose.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"
#include "sfc/header.hpp"
#include "sim/bits.hpp"
#include "sim/parse.hpp"

namespace dejavu::explore {

namespace {

std::string ip_string(std::uint32_t v) {
  return net::Ipv4Addr(v).to_string();
}

std::string join_u64(const std::vector<std::uint64_t>& vs) {
  std::string s;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(vs[i]);
  }
  return s;
}

std::string join_ternary(const std::vector<net::TernaryField>& key) {
  std::string s;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(key[i].value) + "/" + std::to_string(key[i].mask);
  }
  return s;
}

std::string ports_string(const std::vector<std::uint16_t>& ports) {
  std::string s = "[";
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (i) s += " ";
    s += std::to_string(ports[i]);
  }
  return s + "]";
}

/// What a packet read of one dotted field yields: unreadable, a
/// concrete value, or a symbolic variable.
struct RVal {
  bool ok = false;
  bool sym = false;
  int var = -1;
  std::uint64_t val = 0;
};

/// The full symbolic machine state of one in-flight packet path.
/// Copied on every fork; everything is value-typed.
struct PathState {
  net::Packet packet;  // concrete bytes (the evolving template)
  ConstraintSet cons;
  /// dotted field -> symbolic var id. Name-keyed so entries survive
  /// SFC push/pop reshuffling the byte offsets. Erased once a field
  /// is overwritten or eagerly concretized.
  std::map<std::string, int> overlay;
  /// Parse result of the current pipelet pass (header -> byte offset).
  std::map<std::string, std::uint32_t> parsed;
  std::map<std::string, std::uint64_t> locals;  // fresh per pipelet
  sim::StandardMetadata meta;
  /// Sparse per-path register file: control -> register -> index ->
  /// value (absent cells are zero, like a freshly armed switch).
  std::map<std::string,
           std::map<std::string, std::map<std::uint64_t, std::uint64_t>>>
      regs;
  // Per-pipelet transient lookup state (mirrors run_pipelet).
  std::map<std::string, bool> hits;
  std::string taken_branch;
  std::map<std::string, bool> branch_checked;
  // Pass-loop state.
  std::uint32_t pass = 0;
  std::uint32_t pipeline = 0;
  PredictedOutcome out;
  std::vector<asic::PipeletId> pipelets;
  bool dead = false;          // constraints became unsatisfiable
  bool hit_pass_cap = false;  // DV-S1
  /// Service-index regressions observed on this path (old, new).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index_regressions;
  /// Intersection of every consulted entry's epoch window (DV-S8
  /// tripwire): empty intersection = the path mixed generations.
  sim::EpochWindow consulted;
  std::string mixed_epoch_table;
};

using Cont = std::function<void(PathState)>;

class Explorer {
 public:
  Explorer(sim::DataPlane& dp, const sfc::PolicySet& policies,
           const ExploreOptions& options)
      : dp_(&dp),
        program_(&dp.program()),
        ids_(&dp.ids()),
        policies_(&policies),
        options_(options),
        max_passes_(dp.max_passes()),
        epoch_(options.epoch.value_or(dp.epoch())) {}

  ExploreResult run();

 private:
  // --- field access -------------------------------------------------
  RVal read_header_field(const PathState& s, const std::string& dotted) const;
  RVal read_field(const PathState& s, const std::string& dotted) const;
  bool write_header_bits(PathState& s, const std::string& dotted,
                         std::uint64_t value);
  std::optional<std::uint64_t> concretize(PathState& s,
                                          const std::string& dotted, int var);
  std::optional<std::uint64_t> action_read(PathState& s,
                                           const std::string& where,
                                           const std::string& dotted);
  void action_write(PathState& s, const std::string& where,
                    const std::string& dotted, std::uint64_t value);

  // --- parsing ------------------------------------------------------
  void parse_fork(PathState s, const Cont& cont);
  void walk_vertex(PathState s, std::uint32_t vertex, std::size_t hop,
                   const Cont& cont);
  void try_edge(PathState s,
                std::shared_ptr<std::vector<p4ir::ParserEdge>> edges,
                std::size_t i, std::size_t hop, const Cont& cont);
  void reparse_sync(PathState& s);

  // --- pipelet execution --------------------------------------------
  void run_pipelet_sym(PathState s, asic::PipeletId id, const Cont& cont);
  void apply_from(PathState s, const p4ir::ControlBlock& control,
                  std::size_t idx, const Cont& cont);
  void do_table(PathState s, const p4ir::ControlBlock& control,
                const p4ir::ApplyEntry& entry, const Cont& next);
  void finish_lookup(PathState s, const p4ir::ControlBlock& control,
                     const p4ir::ApplyEntry& entry, bool hit,
                     const sim::ActionCall& call, const Cont& next);
  void execute_action_sym(PathState& s, const p4ir::ControlBlock& control,
                          const sim::ActionCall& call);

  // --- pass loop ----------------------------------------------------
  void explore_from(const std::string& shape, std::uint16_t in_port);
  void start_pass(PathState s);
  void after_ingress(PathState s, std::uint32_t pipeline);
  void after_egress(PathState s, std::uint16_t port,
                    std::uint32_t egress_pipeline);
  void finish(PathState s);

  // --- checks -------------------------------------------------------
  void static_overlap_check();  // DV-S5
  void coverage_check();        // DV-S6
  void epoch_audit();           // DV-S8
  void differential_replay(const PathSummary& path);

  /// Narrow the path's consulted-window intersection by one matched
  /// entry's window (DV-S8 tripwire).
  void consult_window(PathState& s, const std::string& table,
                      sim::EpochWindow window) const {
    s.consulted.from = std::max(s.consulted.from, window.from);
    s.consulted.to = std::min(s.consulted.to, window.to);
    if (s.consulted.from > s.consulted.to && s.mixed_epoch_table.empty()) {
      s.mixed_epoch_table = table;
    }
  }

  void add_finding(const std::string& id, const std::string& where,
                   const std::string& message);
  void note_s4(const std::string& where, const std::string& message);
  std::string path_where() const;

  void ensure_clone();
  void zero_clone_registers();

  std::string coverage_exact_id(const std::string& control,
                                const std::string& table,
                                const std::vector<std::uint64_t>& key) const {
    return control + "|" + table + "|e|" + join_u64(key);
  }
  std::string coverage_ternary_id(const std::string& control,
                                  const std::string& table,
                                  std::size_t handle) const {
    return control + "|" + table + "|t|" + std::to_string(handle);
  }

  sim::DataPlane* dp_;
  const p4ir::Program* program_;
  const p4ir::TupleIdTable* ids_;
  const sfc::PolicySet* policies_;
  ExploreOptions options_;
  std::uint32_t max_passes_;
  /// The generation being explored; entries whose window excludes it
  /// are invisible, exactly as they are to a packet stamped epoch_.
  std::uint32_t epoch_;

  // Per-start-state context.
  std::string shape_;
  std::uint16_t start_port_ = 0;
  net::PacketSpec base_spec_;
  struct InputVars {
    int src_addr = -1;
    int dst_addr = -1;
    int ttl = -1;
    int src_port = -1;
    int dst_port = -1;
  } vars_;

  verify::Report report_;
  std::vector<PathSummary> paths_;
  ExploreStats stats_;
  std::set<std::string> emitted_;          // finding dedup
  std::set<std::string> hit_entries_;      // DV-S6 rule coverage
  std::set<std::uint32_t> visited_vertices_;  // DV-S6 parser coverage
  std::unique_ptr<sim::DataPlane> clone_;  // differential replay target
};

// ---------------------------------------------------------------------
// Field access
// ---------------------------------------------------------------------

RVal Explorer::read_header_field(const PathState& s,
                                 const std::string& dotted) const {
  RVal r;
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return r;
  auto base = s.parsed.find(ref->header);
  if (base == s.parsed.end()) return r;
  const p4ir::HeaderType* type = program_->find_header_type(ref->header);
  if (type == nullptr) return r;
  auto bit_off = type->bit_offset(ref->field);
  const p4ir::Field* field = type->find_field(ref->field);
  if (!bit_off || field == nullptr) return r;
  const std::size_t abs_bit = std::size_t{base->second} * 8 + *bit_off;
  auto bytes = s.packet.data().view();
  if (abs_bit + field->bits > bytes.size() * 8) return r;
  auto ov = s.overlay.find(dotted);
  if (ov != s.overlay.end()) {
    r.ok = true;
    r.sym = true;
    r.var = ov->second;
    return r;
  }
  r.ok = true;
  r.val = sim::read_bits(bytes, abs_bit, field->bits);
  return r;
}

RVal Explorer::read_field(const PathState& s, const std::string& dotted) const {
  RVal r;
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return r;
  if (ref->header == "standard_metadata") {
    const sim::StandardMetadata& m = s.meta;
    const std::string& f = ref->field;
    r.ok = true;
    if (f == "ingress_port") r.val = m.ingress_port;
    else if (f == "egress_spec") r.val = m.egress_spec;
    else if (f == "egress_port") r.val = m.egress_port;
    else if (f == "packet_length") r.val = m.packet_length;
    else if (f == "resubmit_flag") r.val = m.resubmit_flag ? 1 : 0;
    else if (f == "recirculate_flag") r.val = m.recirculate_flag ? 1 : 0;
    else if (f == "drop_flag") r.val = m.drop_flag ? 1 : 0;
    else if (f == "mirror_flag") r.val = m.mirror_flag ? 1 : 0;
    else if (f == "to_cpu_flag") r.val = m.to_cpu_flag ? 1 : 0;
    else r.ok = false;
    return r;
  }
  if (ref->header == "local") {
    auto it = s.locals.find(ref->field);
    if (it == s.locals.end()) return r;
    r.ok = true;
    r.val = it->second;
    return r;
  }
  return read_header_field(s, dotted);
}

bool Explorer::write_header_bits(PathState& s, const std::string& dotted,
                                 std::uint64_t value) {
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return false;
  auto base = s.parsed.find(ref->header);
  if (base == s.parsed.end()) return false;
  const p4ir::HeaderType* type = program_->find_header_type(ref->header);
  if (type == nullptr) return false;
  auto bit_off = type->bit_offset(ref->field);
  const p4ir::Field* field = type->find_field(ref->field);
  if (!bit_off || field == nullptr) return false;
  const std::size_t abs_bit = std::size_t{base->second} * 8 + *bit_off;
  auto bytes = s.packet.data().mutable_view();
  if (abs_bit + field->bits > bytes.size() * 8) return false;
  sim::write_bits(bytes, abs_bit, field->bits,
                  sim::mask_to_width(value, field->bits));
  s.overlay.erase(dotted);
  return true;
}

std::optional<std::uint64_t> Explorer::concretize(PathState& s,
                                                  const std::string& dotted,
                                                  int var) {
  auto v = s.cons.pin(var);
  if (!v) {
    s.dead = true;
    return std::nullopt;
  }
  write_header_bits(s, dotted, *v);
  return v;
}

std::optional<std::uint64_t> Explorer::action_read(PathState& s,
                                                   const std::string& where,
                                                   const std::string& dotted) {
  RVal r = read_field(s, dotted);
  if (!r.ok) {
    auto ref = p4ir::FieldRef::parse(dotted);
    if (ref && ref->header != "standard_metadata" && ref->header != "local") {
      note_s4(where, "reads '" + dotted +
                         "' of a header absent on this path (value is 0)");
    }
    return std::nullopt;
  }
  if (r.sym) return concretize(s, dotted, r.var);
  return r.val;
}

void Explorer::action_write(PathState& s, const std::string& where,
                            const std::string& dotted, std::uint64_t value) {
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return;
  if (ref->header == "standard_metadata") {
    sim::StandardMetadata& m = s.meta;
    const std::string& f = ref->field;
    if (f == "ingress_port") {
      m.ingress_port = static_cast<std::uint16_t>(value & 0x1ff);
    } else if (f == "egress_spec") {
      m.egress_spec = static_cast<std::uint16_t>(value & 0x1ff);
    } else if (f == "egress_port") {
      m.egress_port = static_cast<std::uint16_t>(value & 0x1ff);
    } else if (f == "packet_length") {
      m.packet_length = static_cast<std::uint32_t>(value);
    } else if (f == "resubmit_flag") {
      m.resubmit_flag = value != 0;
    } else if (f == "recirculate_flag") {
      m.recirculate_flag = value != 0;
    } else if (f == "drop_flag") {
      m.drop_flag = value != 0;
    } else if (f == "mirror_flag") {
      m.mirror_flag = value != 0;
    } else if (f == "to_cpu_flag") {
      m.to_cpu_flag = value != 0;
    }
    return;
  }
  if (ref->header == "local") {
    s.locals[ref->field] = value;
    return;
  }
  // DV-S2: the service index must be monotone along the path.
  if (dotted == "sfc.service_index") {
    RVal old = read_header_field(s, dotted);
    if (old.ok && !old.sym) {
      const std::uint64_t fresh = sim::mask_to_width(value, 8);
      if (fresh < old.val) {
        s.index_regressions.emplace_back(old.val, fresh);
      }
    }
  }
  if (!write_header_bits(s, dotted, value)) {
    note_s4(where, "write to '" + dotted +
                       "' dropped: header absent on this path");
  }
}

// ---------------------------------------------------------------------
// Parsing (forking walk at pipelet entry, sync walk mid-action)
// ---------------------------------------------------------------------

void Explorer::parse_fork(PathState s, const Cont& cont) {
  s.parsed.clear();
  const p4ir::ParserGraph& g = program_->parser();
  if (g.vertices().empty()) {
    cont(std::move(s));
    return;
  }
  walk_vertex(std::move(s), g.start(), 0, cont);
}

void Explorer::walk_vertex(PathState s, std::uint32_t vertex, std::size_t hop,
                           const Cont& cont) {
  const p4ir::ParserGraph& g = program_->parser();
  if (hop > g.vertices().size()) {
    cont(std::move(s));
    return;
  }
  const p4ir::ParserTuple& tuple = ids_->tuple_of(vertex);
  const p4ir::HeaderType* type = program_->find_header_type(tuple.header_type);
  if (type == nullptr) {
    cont(std::move(s));
    return;
  }
  if (std::size_t{tuple.offset} + type->byte_width() > s.packet.size()) {
    cont(std::move(s));  // truncated frame: stop extraction
    return;
  }
  s.parsed.emplace(tuple.header_type, tuple.offset);
  visited_vertices_.insert(vertex);
  auto edges =
      std::make_shared<std::vector<p4ir::ParserEdge>>(g.out_edges(vertex));
  try_edge(std::move(s), std::move(edges), 0, hop, cont);
}

void Explorer::try_edge(PathState s,
                        std::shared_ptr<std::vector<p4ir::ParserEdge>> edges,
                        std::size_t i, std::size_t hop, const Cont& cont) {
  if (i >= edges->size()) {
    cont(std::move(s));  // no edge taken: accept
    return;
  }
  const p4ir::ParserEdge& e = (*edges)[i];
  if (e.is_default) {
    walk_vertex(std::move(s), e.to, hop + 1, cont);
    return;
  }
  RVal r = read_header_field(s, e.select_field);
  if (!r.ok) {
    try_edge(std::move(s), std::move(edges), i + 1, hop, cont);
    return;
  }
  if (!r.sym) {
    if (r.val == e.select_value) {
      walk_vertex(std::move(s), e.to, hop + 1, cont);
    } else {
      try_edge(std::move(s), std::move(edges), i + 1, hop, cont);
    }
    return;
  }
  // Symbolic selector: fork into "equals the select value, take the
  // edge" and "differs, try the next edge".
  PathState taken = s;
  if (taken.cons.require_eq(r.var, e.select_value)) {
    walk_vertex(std::move(taken), e.to, hop + 1, cont);
  } else {
    ++stats_.infeasible;
  }
  if (s.cons.require_ne(r.var, e.select_value)) {
    try_edge(std::move(s), std::move(edges), i + 1, hop, cont);
  } else {
    ++stats_.infeasible;
  }
}

void Explorer::reparse_sync(PathState& s) {
  s.parsed.clear();
  const p4ir::ParserGraph& g = program_->parser();
  if (g.vertices().empty()) return;
  std::uint32_t vertex = g.start();
  for (std::size_t hop = 0; hop <= g.vertices().size(); ++hop) {
    const p4ir::ParserTuple& tuple = ids_->tuple_of(vertex);
    const p4ir::HeaderType* type =
        program_->find_header_type(tuple.header_type);
    if (type == nullptr) break;
    if (std::size_t{tuple.offset} + type->byte_width() > s.packet.size()) {
      break;
    }
    s.parsed.emplace(tuple.header_type, tuple.offset);
    visited_vertices_.insert(vertex);
    bool advanced = false;
    for (const p4ir::ParserEdge& e : g.out_edges(vertex)) {
      if (e.is_default) {
        vertex = e.to;
        advanced = true;
        break;
      }
      RVal r = read_header_field(s, e.select_field);
      if (!r.ok) continue;
      bool take;
      if (r.sym) {
        // Mid-action reparse may not fork; decide the selector from
        // the constraints, pinning only when genuinely undecided.
        ConstraintSet eqc = s.cons;
        const bool eq_ok = eqc.require_eq(r.var, e.select_value);
        ConstraintSet nec = s.cons;
        const bool ne_ok = nec.require_ne(r.var, e.select_value);
        if (eq_ok && ne_ok) {
          auto v = concretize(s, e.select_field, r.var);
          if (!v) return;  // dead
          take = *v == e.select_value;
        } else if (eq_ok) {
          s.cons = std::move(eqc);
          take = true;
        } else if (ne_ok) {
          s.cons = std::move(nec);
          take = false;
        } else {
          s.dead = true;
          return;
        }
      } else {
        take = r.val == e.select_value;
      }
      if (take) {
        vertex = e.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // accept
  }
}

// ---------------------------------------------------------------------
// Pipelet execution
// ---------------------------------------------------------------------

void Explorer::run_pipelet_sym(PathState s, asic::PipeletId id,
                               const Cont& cont) {
  s.pipelets.push_back(id);
  const p4ir::ControlBlock* control =
      program_->find_control(merge::pipelet_control_name(id));
  if (control == nullptr) {
    cont(std::move(s));  // no program: pass-through
    return;
  }
  s.locals.clear();
  s.hits.clear();
  s.taken_branch.clear();
  s.branch_checked.clear();
  Cont apply_cont = [this, control, cont](PathState ps) {
    apply_from(std::move(ps), *control, 0, cont);
  };
  parse_fork(std::move(s), apply_cont);
}

void Explorer::apply_from(PathState s, const p4ir::ControlBlock& control,
                          std::size_t idx, const Cont& cont) {
  if (s.dead) {
    ++stats_.infeasible;
    return;
  }
  if (idx >= control.apply_order().size()) {
    cont(std::move(s));
    return;
  }
  const p4ir::ApplyEntry& entry = control.apply_order()[idx];
  const p4ir::ControlBlock* cp = &control;
  Cont next = [this, cp, idx, cont](PathState ps) {
    apply_from(std::move(ps), *cp, idx + 1, cont);
  };

  // Parallel-composition branch cascade (mirror of run_pipelet).
  if (!entry.branch_id.empty()) {
    if (!s.taken_branch.empty() && entry.branch_id != s.taken_branch) {
      next(std::move(s));
      return;
    }
    if (s.taken_branch.empty() && s.branch_checked[entry.branch_id]) {
      next(std::move(s));
      return;
    }
  }

  auto guard_failed = [this, &entry, &next](PathState ps) {
    if (!entry.branch_id.empty() && ps.taken_branch.empty()) {
      ps.branch_checked[entry.branch_id] = true;
    }
    next(std::move(ps));
  };

  // Guard tables resolve concretely from this pass's hit results.
  for (const std::string& guard : entry.guard_tables) {
    auto it = s.hits.find(guard);
    const bool hit = it != s.hits.end() && it->second;
    const bool want_hit = entry.mode != p4ir::GuardMode::kIfMiss;
    if (hit != want_hit) {
      guard_failed(std::move(s));
      return;
    }
  }

  if (entry.field_guard) {
    const p4ir::FieldGuard& fg = *entry.field_guard;
    RVal r = read_field(s, fg.field);
    if (!r.ok) {
      guard_failed(std::move(s));  // missing header: vacuously false
      return;
    }
    if (!r.sym) {
      if (!fg.holds(r.val)) {
        guard_failed(std::move(s));
        return;
      }
    } else {
      // Fork on the gateway condition.
      PathState pass_s = s;
      bool pass_ok = false;
      bool fail_ok = false;
      switch (fg.effective_cmp()) {
        case p4ir::GuardCmp::kEq:
          pass_ok = pass_s.cons.require_eq(r.var, fg.value);
          fail_ok = s.cons.require_ne(r.var, fg.value);
          break;
        case p4ir::GuardCmp::kNe:
          pass_ok = pass_s.cons.require_ne(r.var, fg.value);
          fail_ok = s.cons.require_eq(r.var, fg.value);
          break;
        case p4ir::GuardCmp::kGt:
          pass_ok = pass_s.cons.require_gt(r.var, fg.value);
          fail_ok = s.cons.require_le(r.var, fg.value);
          break;
        case p4ir::GuardCmp::kLt:
          pass_ok = pass_s.cons.require_lt(r.var, fg.value);
          fail_ok = s.cons.require_ge(r.var, fg.value);
          break;
      }
      if (pass_ok) {
        do_table(std::move(pass_s), control, entry, next);
      } else {
        ++stats_.infeasible;
      }
      if (fail_ok) {
        guard_failed(std::move(s));
      } else {
        ++stats_.infeasible;
      }
      return;
    }
  }

  do_table(std::move(s), control, entry, next);
}

void Explorer::do_table(PathState s, const p4ir::ControlBlock& control,
                        const p4ir::ApplyEntry& entry, const Cont& next) {
  const p4ir::Table* table = control.find_table(entry.table);
  sim::RuntimeTable* rt = dp_->table_in(control.name(), entry.table);
  if (table == nullptr || rt == nullptr) {
    throw std::logic_error("apply of unknown table '" + entry.table + "'");
  }
  const sim::ActionCall default_call{table->default_action, {}};

  if (table->keyless()) {
    finish_lookup(std::move(s), control, entry, true, default_call, next);
    return;
  }

  // Read the key components; any unreadable component is a concrete
  // miss (mirror of lookup() on a nullopt component).
  std::vector<RVal> key;
  key.reserve(table->keys.size());
  bool unreadable = false;
  bool symbolic = false;
  for (const p4ir::TableKey& k : table->keys) {
    RVal r = read_field(s, k.field);
    if (!r.ok) unreadable = true;
    if (r.ok && r.sym) symbolic = true;
    key.push_back(r);
  }
  if (unreadable) {
    finish_lookup(std::move(s), control, entry, false, default_call, next);
    return;
  }

  const bool is_tcam = table->needs_tcam();
  if (!symbolic) {
    // Fully concrete key: scan installed entries directly (not via
    // lookup(), so exploration does not disturb the live table's
    // hit/miss counters) and record which entry matched for DV-S6.
    if (!is_tcam) {
      for (const sim::RuntimeTable::ExactEntry& e : rt->exact_entries()) {
        if (!e.window.contains(epoch_)) continue;
        bool match = true;
        for (std::size_t i = 0; i < key.size(); ++i) {
          if (key[i].val != e.key[i]) {
            match = false;
            break;
          }
        }
        if (match) {
          hit_entries_.insert(
              coverage_exact_id(control.name(), table->name, e.key));
          consult_window(s, table->name, e.window);
          finish_lookup(std::move(s), control, entry, true, e.action, next);
          return;
        }
      }
    } else {
      for (const auto& e : rt->ternary_entries()) {
        if (!rt->ternary_window(e.handle).contains(epoch_)) continue;
        bool match = true;
        for (std::size_t i = 0; i < key.size(); ++i) {
          if (!e.key[i].matches(key[i].val)) {
            match = false;
            break;
          }
        }
        if (match) {
          hit_entries_.insert(
              coverage_ternary_id(control.name(), table->name, e.handle));
          consult_window(s, table->name, rt->ternary_window(e.handle));
          finish_lookup(std::move(s), control, entry, true, e.value, next);
          return;
        }
      }
    }
    finish_lookup(std::move(s), control, entry, false, default_call, next);
    return;
  }

  // Symbolic key: fork one hit path per reachable entry plus one miss
  // path excluded from every entry.
  if (!is_tcam) {
    std::vector<const sim::RuntimeTable::ExactEntry*> compatible;
    const std::vector<sim::RuntimeTable::ExactEntry> entries =
        rt->exact_entries();
    for (const sim::RuntimeTable::ExactEntry& e : entries) {
      if (!e.window.contains(epoch_)) continue;
      bool maybe = true;
      for (std::size_t i = 0; i < key.size(); ++i) {
        if (!key[i].sym && key[i].val != e.key[i]) {
          maybe = false;
          break;
        }
      }
      if (maybe) compatible.push_back(&e);
    }
    for (const sim::RuntimeTable::ExactEntry* e : compatible) {
      PathState hs = s;
      bool feasible = true;
      for (std::size_t i = 0; i < key.size() && feasible; ++i) {
        if (key[i].sym) feasible = hs.cons.require_eq(key[i].var, e->key[i]);
      }
      if (!feasible) {
        ++stats_.infeasible;
        continue;
      }
      hit_entries_.insert(
          coverage_exact_id(control.name(), table->name, e->key));
      consult_window(hs, table->name, e->window);
      finish_lookup(std::move(hs), control, entry, true, e->action, next);
    }
    // Miss path: differ from each compatible entry in (at least) its
    // first symbolic component. This under-approximates misses for
    // multi-component symbolic keys but never fabricates one.
    bool miss_feasible = true;
    for (const sim::RuntimeTable::ExactEntry* e : compatible) {
      int neg_var = -1;
      std::uint64_t neg_val = 0;
      for (std::size_t i = 0; i < key.size(); ++i) {
        if (key[i].sym) {
          neg_var = key[i].var;
          neg_val = e->key[i];
          break;
        }
      }
      if (neg_var < 0 || !s.cons.require_ne(neg_var, neg_val)) {
        miss_feasible = false;  // an entry matches unconditionally
        break;
      }
    }
    if (miss_feasible) {
      finish_lookup(std::move(s), control, entry, false, default_call, next);
    } else {
      ++stats_.infeasible;
    }
    return;
  }

  // Ternary/LPM: entries come priority-ordered; a hit on entry i also
  // requires missing every higher-priority compatible entry.
  const auto& entries = rt->ternary_entries();
  std::vector<bool> compatible(entries.size(), false);
  std::vector<int> first_sym(entries.size(), -1);
  for (std::size_t n = 0; n < entries.size(); ++n) {
    bool maybe = rt->ternary_window(entries[n].handle).contains(epoch_);
    for (std::size_t i = 0; maybe && i < key.size(); ++i) {
      if (!key[i].sym && !entries[n].key[i].matches(key[i].val)) {
        maybe = false;
      }
    }
    compatible[n] = maybe;
    if (!maybe) continue;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (key[i].sym && entries[n].key[i].mask != 0) {
        first_sym[n] = static_cast<int>(i);
        break;
      }
    }
  }
  auto exclude_entry = [&](PathState& ps, std::size_t n) -> bool {
    // Constrain ps to NOT match entry n. With no masked symbolic
    // component the entry matches outright: exclusion is infeasible.
    if (first_sym[n] < 0) return false;
    const std::size_t i = static_cast<std::size_t>(first_sym[n]);
    return ps.cons.forbid_masked(key[i].var, entries[n].key[i].value,
                                 entries[n].key[i].mask);
  };
  for (std::size_t n = 0; n < entries.size(); ++n) {
    if (!compatible[n]) continue;
    PathState hs = s;
    bool feasible = true;
    for (std::size_t i = 0; i < key.size() && feasible; ++i) {
      if (key[i].sym) {
        feasible = hs.cons.require_masked(key[i].var, entries[n].key[i].value,
                                          entries[n].key[i].mask);
      }
    }
    for (std::size_t h = 0; h < n && feasible; ++h) {
      if (compatible[h]) feasible = exclude_entry(hs, h);
    }
    if (!feasible) {
      ++stats_.infeasible;
      continue;
    }
    hit_entries_.insert(
        coverage_ternary_id(control.name(), table->name, entries[n].handle));
    consult_window(hs, table->name, rt->ternary_window(entries[n].handle));
    finish_lookup(std::move(hs), control, entry, true, entries[n].value, next);
  }
  bool miss_feasible = true;
  for (std::size_t n = 0; n < entries.size() && miss_feasible; ++n) {
    if (compatible[n]) miss_feasible = exclude_entry(s, n);
  }
  if (miss_feasible) {
    finish_lookup(std::move(s), control, entry, false, default_call, next);
  } else {
    ++stats_.infeasible;
  }
}

void Explorer::finish_lookup(PathState s, const p4ir::ControlBlock& control,
                             const p4ir::ApplyEntry& entry, bool hit,
                             const sim::ActionCall& call, const Cont& next) {
  s.hits[entry.table] = hit;
  if (!entry.branch_id.empty() && s.taken_branch.empty()) {
    s.branch_checked[entry.branch_id] = true;
    if (hit) s.taken_branch = entry.branch_id;
  }
  if (!call.action.empty()) {
    execute_action_sym(s, control, call);
  }
  if (s.dead) {
    ++stats_.infeasible;
    return;
  }
  next(std::move(s));
}

void Explorer::execute_action_sym(PathState& s,
                                  const p4ir::ControlBlock& control,
                                  const sim::ActionCall& call) {
  const p4ir::Action* action = control.find_action(call.action);
  if (action == nullptr) {
    throw std::logic_error("runtime action '" + call.action +
                           "' not defined in control '" + control.name() +
                           "'");
  }
  const std::string where = control.name() + "/" + call.action;
  auto arg = [&](const std::string& param) -> std::uint64_t {
    auto it = call.args.find(param);
    if (it == call.args.end()) {
      throw std::logic_error("action '" + call.action +
                             "' invoked without argument '" + param + "'");
    }
    return it->second;
  };

  for (const p4ir::Primitive& p : action->primitives) {
    if (s.dead) return;
    switch (p.op) {
      case p4ir::PrimitiveOp::kNoop:
        break;
      case p4ir::PrimitiveOp::kSetImmediate:
        action_write(s, where, p.dst, p.imm);
        break;
      case p4ir::PrimitiveOp::kSetFromParam:
        action_write(s, where, p.dst, arg(p.param));
        break;
      case p4ir::PrimitiveOp::kCopy: {
        auto v = action_read(s, where, p.src);
        if (v) action_write(s, where, p.dst, *v);
        break;
      }
      case p4ir::PrimitiveOp::kAdd: {
        auto v = action_read(s, where, p.dst);
        if (v) action_write(s, where, p.dst, *v + p.imm);
        break;
      }
      case p4ir::PrimitiveOp::kHash: {
        net::Crc32 crc;
        for (const std::string& src : p.srcs) {
          const std::uint64_t v = action_read(s, where, src).value_or(0);
          if (s.dead) return;
          const std::uint16_t bits = program_->field_bits(src).value_or(32);
          const std::size_t bytes = (bits + 7) / 8;
          for (std::size_t i = 0; i < bytes; ++i) {
            crc.add_u8(static_cast<std::uint8_t>(
                (v >> (8 * (bytes - 1 - i))) & 0xff));
          }
        }
        action_write(s, where, p.dst, crc.finish());
        break;
      }
      case p4ir::PrimitiveOp::kPushSfc: {
        sfc::SfcHeader header;
        sfc::push_sfc(s.packet, header);
        reparse_sync(s);
        break;
      }
      case p4ir::PrimitiveOp::kPopSfc: {
        if (s.parsed.contains("sfc")) {
          sfc::pop_sfc(s.packet);
          reparse_sync(s);
        }
        break;
      }
      case p4ir::PrimitiveOp::kDrop:
        s.meta.drop_flag = true;
        break;
      case p4ir::PrimitiveOp::kSetContext: {
        auto header = sfc::read_sfc(s.packet);
        if (header) {
          header->context.set(static_cast<std::uint8_t>(p.imm),
                              static_cast<std::uint16_t>(arg(p.param)));
          sfc::write_sfc(s.packet, *header);
        }
        break;
      }
      case p4ir::PrimitiveOp::kRegisterRead:
      case p4ir::PrimitiveOp::kRegisterAdd:
      case p4ir::PrimitiveOp::kRegisterWrite: {
        const p4ir::RegisterDef* def = control.find_register(p.param);
        if (def == nullptr || def->size == 0) {
          throw std::logic_error("action '" + call.action +
                                 "' uses unknown register '" + p.param + "'");
        }
        std::uint64_t index = p.imm;
        if (!p.src.empty()) {
          index = action_read(s, where, p.src).value_or(0);
          if (s.dead) return;
        }
        index %= def->size;
        const std::uint64_t width_mask =
            def->width_bits >= 64
                ? ~std::uint64_t{0}
                : (std::uint64_t{1} << def->width_bits) - 1;
        std::uint64_t& cell = s.regs[control.name()][p.param][index];
        if (p.op == p4ir::PrimitiveOp::kRegisterRead) {
          action_write(s, where, p.dst, cell);
        } else if (p.op == p4ir::PrimitiveOp::kRegisterAdd) {
          cell = (cell + p.imm) & width_mask;
          if (!p.dst.empty()) action_write(s, where, p.dst, cell);
        } else {  // kRegisterWrite
          std::uint64_t value = p.imm;
          if (!p.srcs.empty()) {
            value = action_read(s, where, p.srcs[0]).value_or(0);
            if (s.dead) return;
          }
          cell = value & width_mask;
        }
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pass loop (mirror of DataPlane::process)
// ---------------------------------------------------------------------

void Explorer::explore_from(const std::string& shape, std::uint16_t in_port) {
  shape_ = shape;
  start_port_ = in_port;
  base_spec_ = net::PacketSpec{};
  base_spec_.protocol = shape == "udp" ? net::kIpProtoUdp : net::kIpProtoTcp;

  PathState s;
  s.packet = net::Packet::make(base_spec_);
  s.meta.ingress_port = in_port;
  s.meta.packet_length = static_cast<std::uint32_t>(s.packet.size());

  const asic::TargetSpec& spec = dp_->config().spec();
  if (in_port >= spec.total_ports() + spec.pipelines) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kInvalidIngressPort;
    s.out.drop_reason = "invalid ingress port";
    finish(std::move(s));
    return;
  }
  if (in_port >= spec.total_ports()) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kRecircPortExternal;
    s.out.drop_reason = "dedicated recirculation port";
    finish(std::move(s));
    return;
  }
  if (dp_->config().is_loopback(in_port)) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kLoopbackPortExternal;
    s.out.drop_reason = "loopback port takes no external traffic";
    finish(std::move(s));
    return;
  }

  const std::string l4 = shape == "udp" ? "udp" : "tcp";
  vars_ = InputVars{};
  vars_.src_addr = s.cons.add_var(
      {"ipv4.src_addr", 32, base_spec_.ip_src.value()});
  vars_.dst_addr = s.cons.add_var(
      {"ipv4.dst_addr", 32, base_spec_.ip_dst.value()});
  vars_.ttl = s.cons.add_var({"ipv4.ttl", 8, base_spec_.ttl});
  vars_.src_port = s.cons.add_var(
      {l4 + ".src_port", 16, base_spec_.src_port});
  vars_.dst_port = s.cons.add_var(
      {l4 + ".dst_port", 16, base_spec_.dst_port});
  for (int v = 0; v < static_cast<int>(s.cons.vars().size()); ++v) {
    s.overlay.emplace(s.cons.vars()[v].field, v);
  }

  s.pipeline = dp_->pipeline_of(in_port);
  start_pass(std::move(s));
}

void Explorer::start_pass(PathState s) {
  if (s.dead) {
    ++stats_.infeasible;
    return;
  }
  if (s.pass >= max_passes_) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kMaxPassesExceeded;
    s.out.drop_reason = "exceeded " + std::to_string(max_passes_) +
                        " pipeline passes";
    s.hit_pass_cap = true;
    finish(std::move(s));
    return;
  }
  s.meta.egress_spec = sfc::kPortUnset;
  s.meta.clear_flags();
  const std::uint32_t pipeline = s.pipeline;
  run_pipelet_sym(std::move(s), {pipeline, asic::PipeKind::kIngress},
                  [this, pipeline](PathState ps) {
                    after_ingress(std::move(ps), pipeline);
                  });
}

void Explorer::after_ingress(PathState s, std::uint32_t pipeline) {
  if (s.dead) {
    ++stats_.infeasible;
    return;
  }
  if (s.meta.to_cpu_flag) {
    ++s.out.to_cpu;
    finish(std::move(s));
    return;
  }
  if (s.meta.drop_flag) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kIngressDrop;
    s.out.drop_reason = "dropped in ingress pipe " + std::to_string(pipeline);
    finish(std::move(s));
    return;
  }
  if (s.meta.resubmit_flag) {
    ++s.out.resubmissions;
    ++s.pass;
    start_pass(std::move(s));
    return;
  }
  if (s.meta.egress_spec == sfc::kPortUnset) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kNoEgressDecision;
    s.out.drop_reason = "no egress decision after ingress pipe";
    finish(std::move(s));
    return;
  }
  const std::uint16_t port = s.meta.egress_spec;
  const asic::TargetSpec& spec = dp_->config().spec();
  if (port >= spec.total_ports() + spec.pipelines) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kInvalidEgressSpec;
    s.out.drop_reason = "egress_spec " + std::to_string(port) +
                        " is not a valid port";
    finish(std::move(s));
    return;
  }
  const std::uint32_t egress_pipeline = dp_->pipeline_of(port);
  s.meta.egress_port = port;
  if (s.meta.mirror_flag && dp_->mirror_port()) {
    s.out.out_ports.push_back(*dp_->mirror_port());
  }
  run_pipelet_sym(std::move(s), {egress_pipeline, asic::PipeKind::kEgress},
                  [this, port, egress_pipeline](PathState ps) {
                    after_egress(std::move(ps), port, egress_pipeline);
                  });
}

void Explorer::after_egress(PathState s, std::uint16_t port,
                            std::uint32_t egress_pipeline) {
  if (s.dead) {
    ++stats_.infeasible;
    return;
  }
  if (s.meta.to_cpu_flag) {
    ++s.out.to_cpu;
    finish(std::move(s));
    return;
  }
  if (s.meta.drop_flag) {
    s.out.dropped = true;
    s.out.drop_code = sim::DropCode::kEgressDrop;
    s.out.drop_reason =
        "dropped in egress pipe " + std::to_string(egress_pipeline);
    finish(std::move(s));
    return;
  }
  if (dp_->loops_back(port)) {
    s.out.recirc_ports.push_back(port);
    s.pipeline = egress_pipeline;
    s.meta.ingress_port = port;
    ++s.pass;
    start_pass(std::move(s));
    return;
  }
  s.out.out_ports.push_back(port);
  if (s.packet.has_sfc_header()) s.out.sfc_on_final_emit = true;
  finish(std::move(s));
}

void Explorer::finish(PathState s) {
  if (paths_.size() >= options_.max_paths) {
    ++stats_.truncated;
    return;
  }
  PathSummary path;
  path.shape = shape_;
  path.in_port = start_port_;
  path.src_addr = static_cast<std::uint32_t>(
      s.cons.vars().empty() ? base_spec_.ip_src.value()
                            : s.cons.solve(vars_.src_addr).value_or(
                                  base_spec_.ip_src.value()));
  path.dst_addr = static_cast<std::uint32_t>(
      s.cons.vars().empty() ? base_spec_.ip_dst.value()
                            : s.cons.solve(vars_.dst_addr).value_or(
                                  base_spec_.ip_dst.value()));
  path.ttl = static_cast<std::uint8_t>(
      s.cons.vars().empty()
          ? base_spec_.ttl
          : s.cons.solve(vars_.ttl).value_or(base_spec_.ttl));
  path.src_port = static_cast<std::uint16_t>(
      s.cons.vars().empty()
          ? base_spec_.src_port
          : s.cons.solve(vars_.src_port).value_or(base_spec_.src_port));
  path.dst_port = static_cast<std::uint16_t>(
      s.cons.vars().empty()
          ? base_spec_.dst_port
          : s.cons.solve(vars_.dst_port).value_or(base_spec_.dst_port));
  path.witness = net::Packet::make(path.spec());
  path.outcome = s.out;
  path.pipelets = s.pipelets;

  const std::string witness = path.to_string();
  if (s.hit_pass_cap) {
    add_finding("DV-S1", path_where(),
                "path never leaves the switch: pass cap of " +
                    std::to_string(max_passes_) +
                    " exhausted after recirculating via " +
                    ports_string(s.out.recirc_ports) + "; witness " + witness);
  }
  for (const auto& [old_v, new_v] : s.index_regressions) {
    add_finding("DV-S2", path_where(),
                "sfc.service_index rewound from " + std::to_string(old_v) +
                    " to " + std::to_string(new_v) + "; witness " + witness);
  }
  if (s.out.sfc_on_final_emit) {
    add_finding("DV-S3", path_where(),
                "packet leaves port " +
                    std::to_string(s.out.out_ports.empty()
                                       ? 0
                                       : s.out.out_ports.back()) +
                    " with the SFC header still attached; witness " + witness);
  }
  if (!s.mixed_epoch_table.empty()) {
    add_finding("DV-S8", path_where(),
                "path consulted entries of disjoint generations (first at "
                "table '" +
                    s.mixed_epoch_table +
                    "') — per-packet consistency violated; witness " +
                    witness);
  }

  ++stats_.paths;
  if (options_.differential) differential_replay(path);
  paths_.push_back(std::move(path));
}

// ---------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------

void Explorer::static_overlap_check() {
  for (const p4ir::ControlBlock& control : program_->controls()) {
    std::map<std::string, const p4ir::ApplyEntry*> gates;
    for (const p4ir::ApplyEntry& entry : control.apply_order()) {
      if (!entry.branch_id.empty() && !gates.contains(entry.branch_id)) {
        gates.emplace(entry.branch_id, &entry);
      }
    }
    if (gates.size() < 2) continue;
    for (auto a = gates.begin(); a != gates.end(); ++a) {
      for (auto b = std::next(a); b != gates.end(); ++b) {
        const p4ir::Table* ta = control.find_table(a->second->table);
        const p4ir::Table* tb = control.find_table(b->second->table);
        if (ta == nullptr || tb == nullptr) continue;
        if (ta->keys != tb->keys || ta->needs_tcam()) continue;
        sim::RuntimeTable* ra = dp_->table_in(control.name(), ta->name);
        sim::RuntimeTable* rb = dp_->table_in(control.name(), tb->name);
        if (ra == nullptr || rb == nullptr) continue;
        std::set<std::vector<std::uint64_t>> keys_a;
        for (const auto& e : ra->exact_entries()) {
          if (e.window.contains(epoch_)) keys_a.insert(e.key);
        }
        for (const auto& e : rb->exact_entries()) {
          if (!e.window.contains(epoch_)) continue;
          if (!keys_a.contains(e.key)) continue;
          add_finding(
              "DV-S5", control.name(),
              "parallel branches '" + a->first + "' and '" + b->first +
                  "' both accept key (" + join_u64(e.key) + ") via gates '" +
                  ta->name + "' and '" + tb->name +
                  "'; the winner depends on apply order");
        }
      }
    }
  }
}

void Explorer::coverage_check() {
  for (const p4ir::ControlBlock& control : program_->controls()) {
    for (const p4ir::Table& t : control.tables()) {
      sim::RuntimeTable* rt = dp_->table_in(control.name(), t.name);
      if (rt == nullptr) continue;
      for (const auto& e : rt->exact_entries()) {
        // Entries of other generations (retired, or shadowed for an
        // epoch not being explored) are invisible here, not dead.
        if (!e.window.contains(epoch_)) continue;
        if (hit_entries_.contains(
                coverage_exact_id(control.name(), t.name, e.key))) {
          continue;
        }
        add_finding("DV-S6", control.name() + "/" + t.name,
                    "entry (" + join_u64(e.key) +
                        ") never matched on any explored path");
      }
      for (const auto& e : rt->ternary_entries()) {
        if (!rt->ternary_window(e.handle).contains(epoch_)) continue;
        if (hit_entries_.contains(
                coverage_ternary_id(control.name(), t.name, e.handle))) {
          continue;
        }
        add_finding("DV-S6", control.name() + "/" + t.name,
                    "entry (" + join_ternary(e.key) + ") priority " +
                        std::to_string(e.priority) +
                        " never matched on any explored path");
      }
    }
  }
  for (std::uint32_t v : program_->parser().vertices()) {
    if (visited_vertices_.contains(v)) continue;
    add_finding("DV-S6", "parser",
                "parse vertex " + ids_->tuple_of(v).to_string() +
                    " unreachable on every explored path");
  }
}

void Explorer::epoch_audit() {
  // A drained generation's entries are gone (or going): paths explored
  // against it describe a ruleset no packet can reach anymore.
  if (epoch_ < dp_->min_live_epoch()) {
    add_finding("DV-S8", "epoch",
                "exploring generation " + std::to_string(epoch_) +
                    " which the live switch already drained (min live " +
                    std::to_string(dp_->min_live_epoch()) +
                    "); paths reflect a garbage-collected ruleset");
  }
  // Structural audit: two versions of one key whose windows overlap
  // (or a malformed window) would show two generations to one packet.
  for (const p4ir::ControlBlock& control : program_->controls()) {
    for (const p4ir::Table& t : control.tables()) {
      sim::RuntimeTable* rt = dp_->table_in(control.name(), t.name);
      if (rt == nullptr) continue;
      const std::string where = control.name() + "/" + t.name;
      std::map<std::string, std::vector<sim::EpochWindow>> versions;
      for (const auto& e : rt->exact_entries()) {
        versions["(" + join_u64(e.key) + ")"].push_back(e.window);
      }
      for (const auto& e : rt->ternary_entries()) {
        versions["(" + join_ternary(e.key) + ") prio " +
                 std::to_string(e.priority)]
            .push_back(rt->ternary_window(e.handle));
      }
      for (const auto& [key, windows] : versions) {
        for (const sim::EpochWindow& w : windows) {
          if (!w.well_formed()) {
            add_finding("DV-S8", where,
                        "entry " + key + " has malformed epoch window " +
                            std::to_string(w.from) + ".." +
                            std::to_string(w.to));
          }
        }
        for (std::size_t a = 0; a < windows.size(); ++a) {
          for (std::size_t b = a + 1; b < windows.size(); ++b) {
            if (windows[a].overlaps(windows[b])) {
              add_finding(
                  "DV-S8", where,
                  "versions of entry " + key +
                      " have overlapping epoch windows — a packet stamped in "
                      "the overlap would see two generations at once");
            }
          }
        }
      }
    }
  }
}

void Explorer::ensure_clone() {
  if (clone_) return;
  clone_ = std::make_unique<sim::DataPlane>(*program_, *ids_, dp_->config());
  clone_->set_max_passes(dp_->max_passes());
  if (dp_->mirror_port()) clone_->set_mirror_port(*dp_->mirror_port());
  for (const p4ir::ControlBlock& control : program_->controls()) {
    for (const p4ir::Table& t : control.tables()) {
      sim::RuntimeTable* src = dp_->table_in(control.name(), t.name);
      sim::RuntimeTable* dst = clone_->table_in(control.name(), t.name);
      if (src == nullptr || dst == nullptr) continue;
      for (const auto& e : src->exact_entries()) {
        dst->add_exact(e.key, e.action, e.window);
      }
      for (const auto& e : src->ternary_entries()) {
        dst->add_ternary(e.key, e.priority, e.value,
                         src->ternary_window(e.handle));
      }
    }
  }
  clone_->set_epoch(dp_->epoch());
  clone_->set_min_live_epoch(dp_->min_live_epoch());
}

void Explorer::zero_clone_registers() {
  for (const p4ir::ControlBlock& control : program_->controls()) {
    for (const p4ir::RegisterDef& r : control.registers()) {
      std::vector<std::uint64_t>* cells =
          clone_->register_array(control.name(), r.name);
      if (cells != nullptr) std::fill(cells->begin(), cells->end(), 0);
    }
  }
}

void Explorer::differential_replay(const PathSummary& path) {
  ensure_clone();
  zero_clone_registers();
  ++stats_.replays;
  // Stamp the witness with the explored generation so the concrete
  // replay resolves against the same entries the symbolic walk saw.
  sim::SwitchOutput out =
      clone_->process(path.witness, path.in_port, /*from_cpu=*/false, epoch_);

  std::vector<std::uint16_t> concrete_ports;
  concrete_ports.reserve(out.out.size());
  for (const auto& e : out.out) concrete_ports.push_back(e.port);

  auto describe = [](bool dropped, sim::DropCode code, std::size_t punts,
                     const std::vector<std::uint16_t>& out_ports,
                     const std::vector<std::uint16_t>& recirc,
                     std::uint32_t resubmits) {
    std::string s = dropped
                        ? "drop[" + std::string(sim::drop_code_name(code)) + "]"
                        : "deliver " + ports_string(out_ports);
    if (punts > 0) s += " punt x" + std::to_string(punts);
    if (!recirc.empty()) s += " recirc " + ports_string(recirc);
    if (resubmits > 0) s += " resubmit x" + std::to_string(resubmits);
    return s;
  };

  const bool agree = path.outcome.dropped == out.dropped &&
                     (!out.dropped ||
                      path.outcome.drop_code == out.drop_code) &&
                     path.outcome.to_cpu == out.to_cpu.size() &&
                     path.outcome.out_ports == concrete_ports &&
                     path.outcome.recirc_ports == out.recirc_ports &&
                     path.outcome.resubmissions == out.resubmissions;
  if (agree) return;
  add_finding(
      "DV-S7", path_where(),
      "symbolic prediction '" +
          describe(path.outcome.dropped, path.outcome.drop_code,
                   path.outcome.to_cpu, path.outcome.out_ports,
                   path.outcome.recirc_ports, path.outcome.resubmissions) +
          "' but the concrete dataplane did '" +
          describe(out.dropped, out.drop_code, out.to_cpu.size(),
                   concrete_ports, out.recirc_ports, out.resubmissions) +
          "' for witness " + path.to_string());
}

void Explorer::add_finding(const std::string& id, const std::string& where,
                           const std::string& message) {
  const std::string key = id + "|" + where + "|" + message;
  if (!emitted_.insert(key).second) return;
  report_.add(id, where, message);
}

void Explorer::note_s4(const std::string& where, const std::string& message) {
  add_finding("DV-S4", where, message);
}

std::string Explorer::path_where() const {
  return shape_ + "@port" + std::to_string(start_port_);
}

ExploreResult Explorer::run() {
  epoch_audit();
  static_overlap_check();

  std::vector<std::uint16_t> ports;
  if (options_.in_ports) {
    ports = *options_.in_ports;
  } else {
    std::set<std::uint16_t> uniq;
    for (const sfc::ChainPolicy& p : policies_->policies()) {
      uniq.insert(p.in_port);
    }
    ports.assign(uniq.begin(), uniq.end());
  }
  if (ports.empty()) ports.push_back(0);

  for (const char* shape : {"tcp", "udp"}) {
    for (std::uint16_t port : ports) explore_from(shape, port);
  }

  if (options_.coverage) coverage_check();
  report_.sort();

  ExploreResult result;
  result.report = std::move(report_);
  result.paths = std::move(paths_);
  result.stats = stats_;
  return result;
}

}  // namespace

net::PacketSpec PathSummary::spec() const {
  net::PacketSpec s;
  s.protocol = shape == "udp" ? net::kIpProtoUdp : net::kIpProtoTcp;
  s.ip_src = net::Ipv4Addr(src_addr);
  s.ip_dst = net::Ipv4Addr(dst_addr);
  s.ttl = ttl;
  s.src_port = src_port;
  s.dst_port = dst_port;
  return s;
}

std::string PathSummary::to_string() const {
  return shape + " " + ip_string(src_addr) + ":" + std::to_string(src_port) +
         " -> " + ip_string(dst_addr) + ":" + std::to_string(dst_port) +
         " ttl " + std::to_string(ttl) + " in_port " + std::to_string(in_port);
}

ExploreResult run(sim::DataPlane& dp, const sfc::PolicySet& policies,
                  const ExploreOptions& options) {
  Explorer engine(dp, policies, options);
  return engine.run();
}

sim::CompileSeed compile_seed(const ExploreResult& result) {
  sim::CompileSeed seed;
  seed.witnesses.reserve(result.paths.size());
  for (const PathSummary& path : result.paths) {
    seed.witnesses.push_back(
        sim::CompileSeed::Witness{path.witness, path.in_port});
  }
  return seed;
}

}  // namespace dejavu::explore
