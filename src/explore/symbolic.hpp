// The symbolic-value layer of the packet-path explorer: a small
// bit-vector constraint system over the symbolic input header fields.
// Each symbolic variable tracks forced bits (from exact/ternary/LPM
// match constraints), an inclusive value interval (from range guards),
// and a set of forbidden ternary patterns (from negated matches and
// higher-priority TCAM exclusions). The domain is deliberately exact
// for the constraint shapes the dataplane can generate — equality,
// masked equality, ranges, and negations — so feasibility checks are
// decisive, not heuristic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/tcam.hpp"

namespace dejavu::explore {

/// Declaration of one symbolic input variable: which packet field it
/// overlays, its bit width, and the template value the witness
/// concretizer prefers when the constraints leave it free.
struct VarDef {
  std::string field;  // dotted ref, e.g. "ipv4.dst_addr"
  std::uint16_t bits = 32;
  std::uint64_t template_value = 0;
};

/// The accumulated constraints on one variable.
struct VarConstraints {
  std::uint64_t known_mask = 0;   // bits with a forced value
  std::uint64_t known_value = 0;  // forced values (only bits in mask)
  std::uint64_t lo = 0;           // inclusive interval
  std::uint64_t hi = 0;           // set to the width mask on init
  /// Patterns the value must NOT match ((v & mask) == value is
  /// forbidden). A full-width mask encodes plain disequality.
  std::vector<net::TernaryField> forbidden;
};

/// A set of constraints over the declared variables. Mutating
/// `require_*` / `forbid_*` calls return false when the constraint
/// makes the variable unsatisfiable — the caller abandons that fork
/// (the set is then poisoned and must not be reused).
class ConstraintSet {
 public:
  /// Declare a variable; returns its id.
  int add_var(VarDef def);

  const std::vector<VarDef>& vars() const { return defs_; }
  const VarDef& def(int var) const { return defs_[var]; }

  /// v & mask == value & mask.
  bool require_masked(int var, std::uint64_t value, std::uint64_t mask);
  /// v == value.
  bool require_eq(int var, std::uint64_t value);
  /// v != value.
  bool require_ne(int var, std::uint64_t value);
  /// NOT (v & mask == value & mask).
  bool forbid_masked(int var, std::uint64_t value, std::uint64_t mask);
  bool require_lt(int var, std::uint64_t value);
  bool require_gt(int var, std::uint64_t value);
  bool require_le(int var, std::uint64_t value);
  bool require_ge(int var, std::uint64_t value);

  /// Find a concrete value satisfying the variable's constraints.
  /// Deterministic: prefers the template value, then the interval
  /// endpoints, then deposits counter bits into the free positions.
  /// nullopt means the constraints are unsatisfiable.
  std::optional<std::uint64_t> solve(int var) const;

  /// Solve and then constrain the variable to that single value
  /// (eager concretization before arithmetic the constraint domain
  /// cannot express). nullopt when unsatisfiable.
  std::optional<std::uint64_t> pin(int var);

  std::uint64_t width_mask(int var) const;

 private:
  bool ok(int var, std::uint64_t v) const;

  std::vector<VarDef> defs_;
  std::vector<VarConstraints> cons_;
};

}  // namespace dejavu::explore
