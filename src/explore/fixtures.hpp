// Seeded semantic-bug fixtures: deployments that the static chain
// verifier accepts (lint-clean compositions, well-formed routing) but
// whose *installed rules* misbehave — value-dependent routing loops,
// platform metadata leaking onto the wire, service-index rewinds,
// overlapping parallel gates. Each must trip its DV-S checks in the
// symbolic explorer; an explorer that passes them is broken. They back
// the golden tests and `dejavu_cli explore --fixture NAME`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/deployment.hpp"
#include "sfc/chain.hpp"

namespace dejavu::explore::fixtures {

/// One fixture: a fully built deployment with its (buggy) rules
/// already installed, plus the check ids explore must report.
struct Bundle {
  std::string name;
  std::string description;
  /// Check ids (e.g. "DV-S1") the explorer must report.
  std::vector<std::string> expect_checks;

  std::unique_ptr<control::Deployment> deployment;
  sfc::PolicySet policies;
};

/// All fixture names, in catalog order.
std::vector<std::string> names();

/// Build a fixture by name. Throws std::invalid_argument for unknown
/// names.
Bundle make(const std::string& name);

}  // namespace dejavu::explore::fixtures
