#include "compile/report.hpp"

#include <cstdio>

namespace dejavu::compile {

namespace {

double pct(std::uint64_t used, std::uint64_t total) {
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(used) / static_cast<double>(total);
}

}  // namespace

double ResourceReport::pct_stages() const {
  return pct(stages_touched, total_stages);
}
double ResourceReport::pct_table_ids() const {
  return pct(used.table_ids, total.table_ids);
}
double ResourceReport::pct_gateways() const {
  return pct(used.gateways, total.gateways);
}
double ResourceReport::pct_sram() const {
  return pct(used.sram_blocks, total.sram_blocks);
}
double ResourceReport::pct_tcam() const {
  return pct(used.tcam_blocks, total.tcam_blocks);
}
double ResourceReport::pct_vliw() const {
  return pct(used.vliw_slots, total.vliw_slots);
}
double ResourceReport::pct_crossbars() const {
  return pct(std::uint64_t{used.exact_xbar_bytes} + used.ternary_xbar_bytes,
             std::uint64_t{total.exact_xbar_bytes} + total.ternary_xbar_bytes);
}

std::string ResourceReport::to_table() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%-8s %-10s %-9s %-10s %-7s %-7s %-7s\n"
                "%-8.1f %-10.1f %-9.1f %-10.1f %-7.1f %-7.1f %-7.1f\n",
                "Stages%", "TableIDs%", "Gateways%", "Crossbars%", "VLIWs%",
                "SRAM%", "TCAM%", pct_stages(), pct_table_ids(),
                pct_gateways(), pct_crossbars(), pct_vliw(), pct_sram(),
                pct_tcam());
  return buf;
}

ResourceReport report(const std::vector<Allocation>& pipelet_allocs,
                      const asic::TargetSpec& spec,
                      const std::function<bool(const std::string&)>& pred) {
  ResourceReport r;
  r.total = spec.total_resources();
  r.total_stages = spec.total_stages();
  for (const Allocation& alloc : pipelet_allocs) {
    r.used += alloc.total_used(pred);
    r.stages_touched += alloc.stages_touched(pred);
  }
  return r;
}

bool is_framework_table(const std::string& table_name) {
  return table_name.rfind("dejavu_", 0) == 0;
}

}  // namespace dejavu::compile
