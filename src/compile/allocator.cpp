#include "compile/allocator.hpp"

#include <algorithm>

namespace dejavu::compile {

std::uint32_t Allocation::stages_used() const {
  std::uint32_t n = 0;
  for (const StageUsage& s : stages) n += !s.tables.empty();
  return n;
}

std::uint32_t Allocation::depth() const {
  std::uint32_t deepest = 0;
  bool any = false;
  for (std::uint32_t s = 0; s < stages.size(); ++s) {
    if (!stages[s].tables.empty()) {
      deepest = s;
      any = true;
    }
  }
  return any ? deepest + 1 : 0;
}

p4ir::TableResources Allocation::total_used(
    const std::function<bool(const std::string&)>& pred) const {
  p4ir::TableResources total;
  for (std::size_t i = 0; i < table_names.size(); ++i) {
    if (!pred || pred(table_names[i])) total += table_resources[i];
  }
  return total;
}

std::uint32_t Allocation::stages_touched(
    const std::function<bool(const std::string&)>& pred) const {
  std::uint32_t n = 0;
  for (const StageUsage& s : stages) {
    bool touched = std::any_of(s.tables.begin(), s.tables.end(),
                               [&](std::size_t t) {
                                 return !pred || pred(table_names[t]);
                               });
    n += touched;
  }
  return n;
}

namespace {

/// Split an oversized table into per-stage chunks: the smallest number
/// of entry slices such that each slice fits an empty stage. Returns
/// the chunk resource vectors ({} when even a single-entry slice does
/// not fit — e.g. a key wider than the crossbar). Only the first chunk
/// carries the gateway; every chunk is its own physical table.
std::vector<p4ir::TableResources> split_table(
    const p4ir::AnalyzedTable& at, const asic::TargetSpec& spec) {
  const std::uint32_t entries = at.table->max_entries;
  for (std::uint32_t n = 2; n <= std::max(2u, entries); ++n) {
    p4ir::Table slice = *at.table;
    slice.max_entries = (entries + n - 1) / n;
    p4ir::TableResources first =
        p4ir::estimate_table(*at.block, slice, at.gated);
    p4ir::TableResources rest =
        p4ir::estimate_table(*at.block, slice, /*gated=*/false);
    if (!first.fits_within(spec.stage_budget) ||
        !rest.fits_within(spec.stage_budget)) {
      if (slice.max_entries <= 1) break;  // cannot shrink further
      continue;
    }
    std::vector<p4ir::TableResources> chunks(n, rest);
    chunks.front() = first;
    return chunks;
  }
  return {};
}

}  // namespace

Allocation allocate(const p4ir::DependencyGraph& graph,
                    const asic::TargetSpec& spec) {
  Allocation alloc;
  alloc.stages.resize(spec.stages_per_pipelet);
  alloc.stage_of.resize(graph.tables.size(), 0);

  for (const p4ir::AnalyzedTable& at : graph.tables) {
    alloc.table_names.push_back(at.table->name);
    alloc.control_names.push_back(at.block->name());
    alloc.table_resources.push_back(p4ir::estimate_table(at));
  }

  for (std::size_t i = 0; i < graph.tables.size(); ++i) {
    // Earliest stage allowed by the dependencies into table i, given
    // the stages its predecessors actually landed in.
    std::uint32_t earliest = 0;
    for (const p4ir::Dependency& d : graph.deps) {
      if (d.to != i) continue;
      std::uint32_t need = d.kind == p4ir::DepKind::kSuccessor
                               ? alloc.stage_of[d.from]
                               : alloc.stage_of[d.from] + 1;
      earliest = std::max(earliest, need);
    }

    const p4ir::TableResources& res = alloc.table_resources[i];

    // Tables too large for any single stage are split into per-stage
    // entry slices placed in strictly increasing stages, the way
    // production compilers chain wide/deep tables across the ladder.
    std::vector<p4ir::TableResources> chunks;
    if (!res.fits_within(spec.stage_budget)) {
      chunks = split_table(graph.tables[i], spec);
      if (chunks.empty()) {
        alloc.ok = false;
        alloc.error = "table '" + alloc.table_names[i] +
                      "' cannot fit any stage even when split: " +
                      res.to_string();
        return alloc;
      }
    } else {
      chunks.push_back(res);
    }

    bool placed_all = true;
    std::uint32_t next_stage = earliest;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      bool placed = false;
      for (std::uint32_t s = next_stage; s < spec.stages_per_pipelet; ++s) {
        p4ir::TableResources would = alloc.stages[s].used;
        would += chunks[c];
        if (would.fits_within(spec.stage_budget)) {
          alloc.stages[s].used = would;
          alloc.stages[s].tables.push_back(i);
          alloc.stage_of[i] = s;        // last chunk wins: dependents
          next_stage = s + 1;           // wait for the final slice
          placed = true;
          break;
        }
      }
      if (!placed) {
        placed_all = false;
        break;
      }
    }
    if (!placed_all) {
      alloc.ok = false;
      alloc.error = "table '" + alloc.table_names[i] + "' (control '" +
                    alloc.control_names[i] +
                    "') does not fit: needs stage >= " +
                    std::to_string(earliest) + " of " +
                    std::to_string(spec.stages_per_pipelet) + " for " +
                    std::to_string(chunks.size()) + " slice(s), resources " +
                    res.to_string();
      return alloc;
    }
  }

  alloc.ok = true;
  return alloc;
}

}  // namespace dejavu::compile
