// The stage allocator: places the tables of a (composed) pipelet
// program into MAU stages, honoring the dependency rules of Jose et
// al. (NSDI '15) and the per-stage resource budgets of the target.
// This is the piece of the P4 compiler toolchain the paper consumes:
// it decides whether a composition fits and reports exact resource
// usage (§3.2: "this information is usually available from the P4
// compiler").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asic/target.hpp"
#include "p4ir/deps.hpp"
#include "p4ir/resources.hpp"

namespace dejavu::compile {

/// What one MAU stage ended up holding.
struct StageUsage {
  p4ir::TableResources used;
  std::vector<std::size_t> tables;  // indices into Allocation::table_names
};

/// The result of allocating one pipelet's tables to its stages.
struct Allocation {
  bool ok = false;
  std::string error;

  std::vector<std::string> table_names;           // flattened program order
  std::vector<std::string> control_names;         // owning control per table
  std::vector<p4ir::TableResources> table_resources;
  std::vector<std::uint32_t> stage_of;            // per table
  std::vector<StageUsage> stages;                 // size = stages_per_pipelet

  /// Number of stages with at least one table.
  std::uint32_t stages_used() const;

  /// Highest occupied stage index + 1 (pipeline depth consumed).
  std::uint32_t depth() const;

  /// Sum of resources over tables selected by `pred` (by table name);
  /// all tables when `pred` is empty.
  p4ir::TableResources total_used(
      const std::function<bool(const std::string&)>& pred = {}) const;

  /// Stages touched by tables selected by `pred`.
  std::uint32_t stages_touched(
      const std::function<bool(const std::string&)>& pred) const;
};

/// Allocate the dependency-analyzed tables of one pipelet onto the
/// target's stage ladder. First-fit by program order: each table goes
/// to the earliest stage that satisfies its dependencies (match/action
/// deps need a strictly later stage than the dep source; successor deps
/// may share) and whose remaining budget fits the table.
Allocation allocate(const p4ir::DependencyGraph& graph,
                    const asic::TargetSpec& spec);

}  // namespace dejavu::compile
