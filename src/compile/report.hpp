// Resource reporting across a whole deployment (all pipelets), in the
// shape of the paper's Table 1: per-resource usage as a percentage of
// the switch totals, with a filter to isolate the Dejavu framework's
// own tables from NF tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "asic/target.hpp"
#include "compile/allocator.hpp"

namespace dejavu::compile {

/// Aggregated usage of a set of tables across all pipelets, both as
/// raw counts and as a fraction of the whole switch.
struct ResourceReport {
  p4ir::TableResources used;
  p4ir::TableResources total;   // switch-wide budget
  std::uint32_t stages_touched = 0;
  std::uint32_t total_stages = 0;

  double pct_stages() const;
  double pct_table_ids() const;
  double pct_gateways() const;
  double pct_sram() const;
  double pct_tcam() const;
  double pct_vliw() const;
  double pct_crossbars() const;  // exact + ternary bytes combined

  /// Render as a Table-1-style two-row table.
  std::string to_table() const;
};

/// Aggregate the allocations of all pipelets, counting only tables for
/// which `pred(table_name)` holds (all tables when empty).
ResourceReport report(const std::vector<Allocation>& pipelet_allocs,
                      const asic::TargetSpec& spec,
                      const std::function<bool(const std::string&)>& pred = {});

/// Predicate selecting the Dejavu framework's glue tables (branching,
/// check_nextNF, check_sfcFlags), which all carry the "dejavu_" prefix.
bool is_framework_table(const std::string& table_name);

}  // namespace dejavu::compile
