#include "nf/parser_lib.hpp"

#include "net/headers.hpp"
#include "sfc/header.hpp"

namespace dejavu::nf {

void add_standard_parser(p4ir::Program& program, p4ir::TupleIdTable& ids,
                         const ParserOptions& options) {
  using p4ir::ParserEdge;
  using p4ir::ParserTuple;

  program.add_header_type(p4ir::ethernet_type());
  program.add_header_type(p4ir::ipv4_type());
  program.add_header_type(p4ir::standard_metadata_type());
  if (options.with_sfc) program.add_header_type(p4ir::sfc_type());
  if (options.with_tcp) program.add_header_type(p4ir::tcp_type());
  if (options.with_udp) program.add_header_type(p4ir::udp_type());
  if (options.with_vxlan) program.add_header_type(p4ir::vxlan_type());

  p4ir::ParserGraph& g = program.parser();
  const std::uint32_t eth = g.add_vertex(ids, {"ethernet", kEthOffset});
  g.set_start(eth);

  const std::uint32_t ip_plain = g.add_vertex(ids, {"ipv4", kIpv4Plain});
  g.add_edge(ParserEdge{eth, ip_plain, "ethernet.ether_type",
                        net::kEtherTypeIpv4, false});

  std::uint32_t ip_shifted = 0;
  if (options.with_sfc) {
    const std::uint32_t sfc_v = g.add_vertex(ids, {"sfc", kSfcOffset});
    g.add_edge(ParserEdge{eth, sfc_v, "ethernet.ether_type",
                          net::kEtherTypeSfc, false});
    ip_shifted = g.add_vertex(ids, {"ipv4", kIpv4Shifted});
    g.add_edge(ParserEdge{
        sfc_v, ip_shifted, "sfc.next_protocol",
        static_cast<std::uint64_t>(sfc::NextProtocol::kIpv4), false});
  }

  auto add_l4 = [&](std::uint32_t ip_vertex, std::uint32_t l4_offset) {
    if (options.with_tcp) {
      std::uint32_t tcp = g.add_vertex(ids, {"tcp", l4_offset});
      g.add_edge(ParserEdge{ip_vertex, tcp, "ipv4.protocol",
                            net::kIpProtoTcp, false});
    }
    if (options.with_udp) {
      std::uint32_t udp = g.add_vertex(ids, {"udp", l4_offset});
      g.add_edge(ParserEdge{ip_vertex, udp, "ipv4.protocol",
                            net::kIpProtoUdp, false});
      if (options.with_vxlan) {
        std::uint32_t vxlan =
            g.add_vertex(ids, {"vxlan", l4_offset + 8});
        g.add_edge(ParserEdge{udp, vxlan, "udp.dst_port",
                              net::kVxlanUdpPort, false});
      }
    }
  };
  add_l4(ip_plain, kL4Plain);
  if (options.with_sfc) add_l4(ip_shifted, kL4Shifted);
}

}  // namespace dejavu::nf
