// The shared parser vocabulary of the Dejavu NFs: Ethernet, the
// optional SFC header, IPv4 (at both its plain and SFC-shifted
// offsets — the same header type at two locations is two distinct
// parse vertices, per §3), and the L4 headers. Each NF picks the
// subset it needs; the generic parser is the merge of those subsets.
#pragma once

#include "p4ir/program.hpp"

namespace dejavu::nf {

/// Byte offsets of the standard header layout.
inline constexpr std::uint32_t kEthOffset = 0;
inline constexpr std::uint32_t kSfcOffset = 14;       // after Ethernet
inline constexpr std::uint32_t kIpv4Plain = 14;       // no SFC header
inline constexpr std::uint32_t kIpv4Shifted = 34;     // behind SFC (20 B)
inline constexpr std::uint32_t kL4Plain = 34;         // ihl=5
inline constexpr std::uint32_t kL4Shifted = 54;

struct ParserOptions {
  bool with_sfc = true;  // parse the SFC-encapsulated variant
  bool with_tcp = true;
  bool with_udp = true;
  bool with_vxlan = false;  // VXLAN behind UDP (virtualization gateway)
};

/// Install the header types and parser graph into `program`,
/// interning vertices through the shared global-ID table.
void add_standard_parser(p4ir::Program& program, p4ir::TupleIdTable& ids,
                         const ParserOptions& options = {});

}  // namespace dejavu::nf
