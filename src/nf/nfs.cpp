#include "nf/nfs.hpp"

#include "nf/parser_lib.hpp"

namespace dejavu::nf {

namespace {

using p4ir::Action;
using p4ir::ControlBlock;
using p4ir::MatchKind;
using p4ir::Program;
using p4ir::Table;
using p4ir::TableKey;

Program make_base(const std::string& nf_name, p4ir::TupleIdTable& ids,
                  const ParserOptions& options = {}) {
  Program program(nf_name);
  program.annotate("nf", nf_name);
  add_standard_parser(program, ids, options);
  return program;
}

}  // namespace

Program make_classifier(p4ir::TupleIdTable& ids) {
  // The classifier sees raw (pre-SFC) packets only; its parser covers
  // the plain layout.
  ParserOptions opts;
  opts.with_sfc = true;  // it writes the SFC header, so it knows the type
  Program program = make_base("Classifier", ids, opts);

  ControlBlock control("Classifier_control");

  Action classify;
  classify.name = "classify";
  classify.params = {{"path_id", 16}, {"tenant", 16}};
  classify.primitives = {
      p4ir::push_sfc_primitive(),
      p4ir::set_from_param("sfc.service_path_id", "path_id"),
      // The classifier itself is position 0 of every chain; the next
      // NF is position 1.
      p4ir::set_imm("sfc.service_index", 1),
      p4ir::copy_field("sfc.in_port", "standard_metadata.ingress_port"),
      p4ir::set_context(kCtxTenantId, "tenant"),
  };
  control.add_action(classify);

  Action unclassified;
  unclassified.name = "unclassified";
  // Unknown traffic classes are not serviced: drop at the edge.
  unclassified.primitives = {p4ir::drop_primitive()};
  control.add_action(unclassified);

  Table traffic_class;
  traffic_class.name = "traffic_class";
  traffic_class.keys = {
      TableKey{"ipv4.src_addr", MatchKind::kTernary, 32},
      TableKey{"ipv4.dst_addr", MatchKind::kTernary, 32},
      TableKey{"ipv4.protocol", MatchKind::kTernary, 8},
  };
  traffic_class.actions = {"classify", "unclassified"};
  traffic_class.default_action = "unclassified";
  traffic_class.max_entries = 512;
  control.add_table(traffic_class);
  control.apply_table("traffic_class");

  program.add_control(std::move(control));
  return program;
}

Program make_firewall(p4ir::TupleIdTable& ids) {
  Program program = make_base("FW", ids);
  ControlBlock control("FW_control");

  Action permit;
  permit.name = "permit";
  control.add_action(permit);

  Action deny;
  deny.name = "deny";
  deny.primitives = {p4ir::set_imm("sfc.drop_flag", 1)};
  control.add_action(deny);

  Table acl;
  acl.name = "acl";
  acl.keys = {
      TableKey{"ipv4.src_addr", MatchKind::kTernary, 32},
      TableKey{"ipv4.dst_addr", MatchKind::kTernary, 32},
      TableKey{"ipv4.protocol", MatchKind::kTernary, 8},
      TableKey{"tcp.dst_port", MatchKind::kTernary, 16},
  };
  acl.actions = {"permit", "deny"};
  acl.default_action = "deny";  // default-deny firewall
  acl.max_entries = 2048;
  control.add_table(acl);
  control.apply_table("acl");

  program.add_control(std::move(control));
  return program;
}

Program make_vgw(p4ir::TupleIdTable& ids) {
  ParserOptions opts;
  opts.with_vxlan = true;  // the VGW understands the overlay format
  Program program = make_base("VGW", ids, opts);
  ControlBlock control("VGW_control");

  Action translate;
  translate.name = "translate";
  translate.params = {{"phys_dst", 32}, {"tenant", 16}};
  translate.primitives = {
      p4ir::set_from_param("ipv4.dst_addr", "phys_dst"),
      p4ir::set_context(kCtxTenantId, "tenant"),
  };
  control.add_action(translate);

  Action pass;
  pass.name = "pass";  // non-virtualized traffic flows through
  control.add_action(pass);

  Table vip_map;
  vip_map.name = "vip_map";
  vip_map.keys = {TableKey{"ipv4.dst_addr", MatchKind::kExact, 32}};
  vip_map.actions = {"translate", "pass"};
  vip_map.default_action = "pass";
  vip_map.max_entries = 4096;
  control.add_table(vip_map);
  control.apply_table("vip_map");

  program.add_control(std::move(control));
  return program;
}

Program make_load_balancer(p4ir::TupleIdTable& ids) {
  Program program = make_base("LB", ids);
  ControlBlock control("LB_control");

  // Fig. 4 line 4-6: computeFiveTupleHash.
  Action compute_hash;
  compute_hash.name = "computeFiveTupleHash";
  compute_hash.primitives = {p4ir::hash_fields(
      "local.sessionHash",
      {"ipv4.src_addr", "ipv4.dst_addr", "ipv4.protocol", "tcp.src_port",
       "tcp.dst_port"})};
  control.add_action(compute_hash);

  // Fig. 4 line 7: modify_dstIp.
  Action modify_dst;
  modify_dst.name = "modify_dstIp";
  modify_dst.params = {{"dip", 32}};
  modify_dst.primitives = {p4ir::set_from_param("ipv4.dst_addr", "dip")};
  control.add_action(modify_dst);

  // Fig. 4 line 8: toCpu.
  Action to_cpu;
  to_cpu.name = "toCpu";
  to_cpu.primitives = {p4ir::set_imm("sfc.to_cpu_flag", 1)};
  control.add_action(to_cpu);

  // The hash computation runs unconditionally before the session
  // lookup (Fig. 4 line 14).
  Table hash_table;
  hash_table.name = "compute_hash";
  hash_table.default_action = "computeFiveTupleHash";
  hash_table.max_entries = 1;
  control.add_table(hash_table);
  control.apply_table("compute_hash");

  // Fig. 4 lines 9-13: lb_session.
  Table session;
  session.name = "lb_session";
  session.keys = {TableKey{"local.sessionHash", MatchKind::kExact, 32}};
  session.actions = {"modify_dstIp", "toCpu"};
  session.default_action = "toCpu";
  session.max_entries = 65536;
  control.add_table(session);
  control.apply_table("lb_session");

  program.add_control(std::move(control));
  return program;
}

Program make_router(p4ir::TupleIdTable& ids) {
  Program program = make_base("Router", ids);
  ControlBlock control("Router_control");

  Action route;
  route.name = "route";
  route.params = {{"port", 9}, {"dmac", 48}};
  route.primitives = {
      p4ir::set_from_param("standard_metadata.egress_spec", "port"),
      p4ir::set_from_param("ethernet.dst_addr", "dmac"),
      p4ir::add_imm("ipv4.ttl", 0xff),  // ttl - 1 (mod 2^8)
      // The Router removes the SFC header before the packet leaves
      // the service chain (§3).
      p4ir::pop_sfc_primitive(),
  };
  control.add_action(route);

  Action route_miss;
  route_miss.name = "route_miss";
  // No route: punt to the control plane, keep the SFC header intact.
  route_miss.primitives = {p4ir::set_imm("sfc.to_cpu_flag", 1)};
  control.add_action(route_miss);

  // Expired TTLs are dropped before the FIB lookup, as a real router
  // would (ICMP generation is a control-plane concern we omit).
  Action ttl_expired;
  ttl_expired.name = "ttl_expired";
  ttl_expired.primitives = {p4ir::set_imm("sfc.drop_flag", 1)};
  control.add_action(ttl_expired);

  Table ttl_check;
  ttl_check.name = "ttl_check";
  ttl_check.default_action = "ttl_expired";
  ttl_check.max_entries = 1;
  control.add_table(ttl_check);
  p4ir::ApplyEntry ttl_gate;
  ttl_gate.table = "ttl_check";
  ttl_gate.field_guard = p4ir::FieldGuard{.field = "ipv4.ttl",
                                          .value = 2,
                                          .negate = false,
                                          .cmp = p4ir::GuardCmp::kLt};
  control.apply(std::move(ttl_gate));

  Table lpm;
  lpm.name = "ipv4_lpm";
  lpm.keys = {TableKey{"ipv4.dst_addr", MatchKind::kLpm, 32}};
  lpm.actions = {"route", "route_miss"};
  lpm.default_action = "route_miss";
  // 16K routes = 32 TCAM blocks; wider than one MAU stage's 24, so
  // the allocator slices it across two stages.
  lpm.max_entries = 16384;
  control.add_table(lpm);
  p4ir::ApplyEntry lpm_apply;
  lpm_apply.table = "ipv4_lpm";
  lpm_apply.field_guard = p4ir::FieldGuard{.field = "ipv4.ttl",
                                           .value = 1,
                                           .negate = false,
                                           .cmp = p4ir::GuardCmp::kGt};
  control.apply(std::move(lpm_apply));

  program.add_control(std::move(control));
  return program;
}

Program make_nat(p4ir::TupleIdTable& ids) {
  Program program = make_base("NAT", ids);
  ControlBlock control("NAT_control");

  Action snat;
  snat.name = "snat";
  snat.params = {{"new_src", 32}, {"new_sport", 16}};
  snat.primitives = {
      p4ir::set_from_param("ipv4.src_addr", "new_src"),
      p4ir::set_from_param("tcp.src_port", "new_sport"),
  };
  control.add_action(snat);

  Action nat_miss;
  nat_miss.name = "nat_miss";
  nat_miss.primitives = {p4ir::set_imm("sfc.to_cpu_flag", 1)};
  control.add_action(nat_miss);

  Table nat_table;
  nat_table.name = "nat_translate";
  nat_table.keys = {
      TableKey{"ipv4.src_addr", MatchKind::kExact, 32},
      TableKey{"tcp.src_port", MatchKind::kExact, 16},
  };
  nat_table.actions = {"snat", "nat_miss"};
  nat_table.default_action = "nat_miss";
  nat_table.max_entries = 65536;
  control.add_table(nat_table);
  control.apply_table("nat_translate");

  program.add_control(std::move(control));
  return program;
}

Program make_police(p4ir::TupleIdTable& ids) {
  Program program = make_base("Police", ids);
  ControlBlock control("Police_control");

  Action block;
  block.name = "block";
  block.primitives = {p4ir::set_imm("sfc.drop_flag", 1)};
  control.add_action(block);

  Action allow;
  allow.name = "allow";
  control.add_action(allow);

  Table blocklist;
  blocklist.name = "blocklist";
  blocklist.keys = {
      TableKey{"ipv4.src_addr", MatchKind::kExact, 32},
  };
  blocklist.actions = {"block", "allow"};
  blocklist.default_action = "allow";
  blocklist.max_entries = 8192;
  control.add_table(blocklist);
  control.apply_table("blocklist");

  program.add_control(std::move(control));
  return program;
}

Program make_rate_limiter(p4ir::TupleIdTable& ids,
                          std::uint32_t packet_threshold) {
  Program program = make_base("Limiter", ids);
  ControlBlock control("Limiter_control");

  p4ir::RegisterDef counter;
  counter.name = "flow_count";
  counter.width_bits = 32;
  counter.size = 8192;
  control.add_register(counter);

  // Count this packet against its flow's cell and read the new value.
  Action meter;
  meter.name = "meter";
  meter.primitives = {
      p4ir::hash_fields("local.flowIdx",
                        {"ipv4.src_addr", "ipv4.dst_addr", "ipv4.protocol",
                         "tcp.src_port", "tcp.dst_port"}),
      p4ir::register_add("flow_count", "local.flowIdx", 1, "local.count"),
  };
  control.add_action(meter);

  Action over_limit;
  over_limit.name = "over_limit";
  over_limit.primitives = {p4ir::set_imm("sfc.drop_flag", 1)};
  control.add_action(over_limit);

  Table meter_tbl;
  meter_tbl.name = "meter_tbl";
  meter_tbl.default_action = "meter";
  meter_tbl.max_entries = 1;
  meter_tbl.registers = {"flow_count"};
  control.add_table(meter_tbl);
  control.apply_table("meter_tbl");

  Table limit;
  limit.name = "limit";
  limit.default_action = "over_limit";
  limit.max_entries = 1;
  control.add_table(limit);
  // Gateway: run the drop only when the flow's count exceeded the
  // threshold.
  p4ir::ApplyEntry gated;
  gated.table = "limit";
  gated.field_guard = p4ir::FieldGuard{.field = "local.count",
                                       .value = packet_threshold,
                                       .negate = false,
                                       .cmp = p4ir::GuardCmp::kGt};
  control.apply(std::move(gated));

  program.add_control(std::move(control));
  return program;
}

std::vector<Program> fig2_nf_programs(p4ir::TupleIdTable& ids) {
  std::vector<Program> out;
  out.push_back(make_classifier(ids));
  out.push_back(make_firewall(ids));
  out.push_back(make_vgw(ids));
  out.push_back(make_load_balancer(ids));
  out.push_back(make_router(ids));
  return out;
}

}  // namespace dejavu::nf
