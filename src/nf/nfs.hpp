// The five NFs of the production edge-cloud service chain (Fig. 2),
// written against the Dejavu control-block programming interface
// (§3.1): each NF is a P4 program with exactly one control block that
// reads and writes only the generic `hdr` view (protocol headers, SFC
// header fields, platform metadata). Plus two extension NFs (NAT,
// byte-counter-free rate police) exercising the same interface.
//
// Well-known context keys used by the chain.
#pragma once

#include <vector>

#include "p4ir/program.hpp"

namespace dejavu::nf {

/// SFC context keys (1-byte keys of the Fig. 3 context area).
inline constexpr std::uint8_t kCtxTenantId = 0x01;
inline constexpr std::uint8_t kCtxAppId = 0x02;
inline constexpr std::uint8_t kCtxDebugTag = 0x03;

/// Traffic classifier (framework-supplied entry NF): matches a
/// ternary (src, dst, proto) class, pushes the SFC header, and stamps
/// the service path ID plus the tenant context. Table: traffic_class.
p4ir::Program make_classifier(p4ir::TupleIdTable& ids);

/// Packet-filtering firewall: ternary ACL over the 5-tuple fields;
/// deny sets the SFC drop flag. Default deny. Table: acl.
p4ir::Program make_firewall(p4ir::TupleIdTable& ids);

/// Virtualization gateway: translates tenant-facing virtual IPs to
/// physical addresses and records the tenant in the SFC context.
/// Table: vip_map.
p4ir::Program make_vgw(p4ir::TupleIdTable& ids);

/// L4 load balancer — the Fig. 4 example verbatim: CRC32 over the
/// 5-tuple, exact-match session table, toCpu on miss.
/// Tables: compute_hash (keyless), lb_session.
p4ir::Program make_load_balancer(p4ir::TupleIdTable& ids);

/// IP router (framework-supplied terminal NF): LPM on the destination,
/// rewrites the MAC, decrements TTL, sets the egress port, and pops
/// the SFC header. Table: ipv4_lpm.
p4ir::Program make_router(p4ir::TupleIdTable& ids);

// --- extension NFs (not in the paper's prototype; same interface) ---

/// Source NAT: rewrites source IP/port from a translation table.
p4ir::Program make_nat(p4ir::TupleIdTable& ids);

/// Flow police: exact-match blocklist that drops flagged flows
/// (a stand-in for payload-free security functions, cf. §7).
p4ir::Program make_police(p4ir::TupleIdTable& ids);

/// Stateful per-flow rate limiter: a register array of per-flow packet
/// counters indexed by the 5-tuple hash; flows exceeding
/// `packet_threshold` packets are dropped. Exercises the stateful
/// (register) primitives of the IR — the kind of in-network security
/// function the paper's related work (SilkRoad-style stateful
/// processing) runs on switch ASICs.
p4ir::Program make_rate_limiter(p4ir::TupleIdTable& ids,
                                std::uint32_t packet_threshold = 100);

/// The five Fig. 2 NFs in chain order.
std::vector<p4ir::Program> fig2_nf_programs(p4ir::TupleIdTable& ids);

}  // namespace dejavu::nf
