#include "place/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace dejavu::place {

namespace {

using merge::CompositionKind;
using merge::PipeletAssignment;

/// All pipelets of the target in the canonical order
/// I0, E0, I1, E1, ...
std::vector<asic::PipeletId> all_pipelets(const asic::TargetSpec& spec) {
  std::vector<asic::PipeletId> out;
  for (std::uint32_t p = 0; p < spec.pipelines; ++p) {
    out.push_back({p, asic::PipeKind::kIngress});
    out.push_back({p, asic::PipeKind::kEgress});
  }
  return out;
}

/// Build a Placement from a per-NF pipelet choice. Within-pipelet
/// order follows `order` (the global NF order).
Placement build_placement(const std::vector<std::string>& order,
                          const std::vector<std::size_t>& choice,
                          const std::vector<asic::PipeletId>& pipelets,
                          const std::vector<CompositionKind>& kinds) {
  std::vector<PipeletAssignment> assignment;
  for (std::size_t pi = 0; pi < pipelets.size(); ++pi) {
    PipeletAssignment pa;
    pa.pipelet = pipelets[pi];
    pa.kind = kinds[pi];
    for (std::size_t n = 0; n < order.size(); ++n) {
      if (choice[n] == pi) pa.nfs.push_back(order[n]);
    }
    if (!pa.nfs.empty()) assignment.push_back(std::move(pa));
  }
  return Placement(std::move(assignment));
}

std::uint32_t total_resubmissions(const sfc::PolicySet& policies,
                                  const Placement& placement,
                                  const asic::TargetSpec& spec,
                                  const TraversalEnv& env) {
  std::uint32_t n = 0;
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    Traversal t = plan_traversal(policy, placement, spec, env);
    if (t.feasible) n += t.resubmissions;
  }
  return n;
}

}  // namespace

std::uint32_t StageModel::cost_of(const std::string& nf) const {
  auto it = nf_stages.find(nf);
  return it == nf_stages.end() ? default_nf_stages : it->second;
}

std::uint32_t StageModel::pipelet_depth(const PipeletAssignment& pa) const {
  std::uint32_t depth = 0;
  if (pa.kind == CompositionKind::kSequential) {
    for (const std::string& nf : pa.nfs) {
      depth += cost_of(nf) + glue_stages;
    }
  } else {
    // Parallel branches overlay in the same stages; glue gates are
    // shared per stage band. Depth is the deepest branch.
    for (const std::string& nf : pa.nfs) {
      depth = std::max(depth, cost_of(nf) + glue_stages);
    }
  }
  if (pa.pipelet.kind == asic::PipeKind::kIngress && !pa.nfs.empty()) {
    depth += branching_stages;
  }
  return depth;
}

bool fits_stage_model(const Placement& placement,
                      const asic::TargetSpec& spec, const StageModel& model) {
  for (const PipeletAssignment& pa : placement.assignments()) {
    if (model.pipelet_depth(pa) > spec.stages_per_pipelet) return false;
  }
  return true;
}

std::vector<std::string> global_nf_order(const sfc::PolicySet& policies) {
  std::vector<std::string> order;
  for (const sfc::ChainPolicy& p : policies.policies()) {
    for (const std::string& nf : p.nfs) {
      if (std::find(order.begin(), order.end(), nf) == order.end()) {
        order.push_back(nf);
      }
    }
  }
  return order;
}

double placement_cost(const sfc::PolicySet& policies,
                      const Placement& placement,
                      const asic::TargetSpec& spec, const TraversalEnv& env,
                      const StageModel& model) {
  if (!fits_stage_model(placement, spec, model)) return kInfeasibleCost;
  // The first NF of every chain (the classifier that attaches the SFC
  // header) must sit on the ingress pipelet where the chain's traffic
  // arrives: before classification the packet carries no SFC header,
  // so the branching table cannot steer it anywhere else.
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    auto loc = placement.find(policy.nfs.front());
    const asic::PipeletId arrival{spec.pipeline_of_port(policy.in_port),
                                  asic::PipeKind::kIngress};
    if (!loc || !(loc->pipelet == arrival)) return kInfeasibleCost;
  }
  double cost = weighted_recirculations(policies, placement, spec, env);
  if (cost >= kInfeasibleCost) return kInfeasibleCost;
  // Resubmissions consume extra ingress-pipe passes; charge them at
  // the configured fraction of a recirculation (see TraversalEnv).
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    Traversal t = plan_traversal(policy, placement, spec, env);
    cost += env.resubmission_weight * policy.weight * t.resubmissions;
  }
  return cost;
}

Placement naive_alternating(const sfc::PolicySet& policies,
                            const asic::TargetSpec& spec) {
  const std::vector<std::string> order = global_nf_order(policies);
  const std::vector<asic::PipeletId> pipelets = all_pipelets(spec);
  std::vector<PipeletAssignment> assignment;
  for (const asic::PipeletId& id : pipelets) {
    assignment.push_back({id, CompositionKind::kSequential, {}});
  }
  for (std::size_t n = 0; n < order.size(); ++n) {
    assignment[n % pipelets.size()].nfs.push_back(order[n]);
  }
  std::erase_if(assignment,
                [](const PipeletAssignment& pa) { return pa.nfs.empty(); });
  return Placement(std::move(assignment));
}

OptimizeResult exhaustive_optimize(const sfc::PolicySet& policies,
                                   const asic::TargetSpec& spec,
                                   const TraversalEnv& env,
                                   const StageModel& model) {
  const std::vector<std::string> order = global_nf_order(policies);
  const std::vector<asic::PipeletId> pipelets = all_pipelets(spec);
  const std::vector<CompositionKind> kinds(pipelets.size(),
                                           CompositionKind::kSequential);

  OptimizeResult best;
  std::vector<std::size_t> choice(order.size(), 0);

  while (true) {
    Placement candidate = build_placement(order, choice, pipelets, kinds);
    double cost = placement_cost(policies, candidate, spec, env, model);
    ++best.evaluated;
    if (cost < best.cost) {
      best.cost = cost;
      best.placement = candidate;
      best.feasible = cost < kInfeasibleCost;
      best.resubmissions =
          total_resubmissions(policies, candidate, spec, env);
    }

    // Advance the mixed-radix counter.
    std::size_t i = 0;
    for (; i < choice.size(); ++i) {
      if (++choice[i] < pipelets.size()) break;
      choice[i] = 0;
    }
    if (i == choice.size()) break;
  }
  return best;
}

OptimizeResult anneal_optimize(const sfc::PolicySet& policies,
                               const asic::TargetSpec& spec,
                               const TraversalEnv& env,
                               const StageModel& model,
                               const AnnealParams& params) {
  const std::vector<std::string> order = global_nf_order(policies);
  const std::vector<asic::PipeletId> pipelets = all_pipelets(spec);

  std::mt19937_64 rng(params.seed);
  std::uniform_int_distribution<std::size_t> pick_nf(0, order.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_pipelet(
      0, pipelets.size() - 1);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Start from the naive baseline's assignment shape.
  std::vector<std::size_t> choice(order.size());
  for (std::size_t n = 0; n < order.size(); ++n) {
    choice[n] = n % pipelets.size();
  }
  std::vector<CompositionKind> kinds(pipelets.size(),
                                     CompositionKind::kSequential);

  auto score = [&](const std::vector<std::size_t>& c,
                   const std::vector<CompositionKind>& k) {
    return placement_cost(policies, build_placement(order, c, pipelets, k),
                          spec, env, model);
  };

  OptimizeResult best;
  double current = score(choice, kinds);
  best.cost = current;
  best.placement = build_placement(order, choice, pipelets, kinds);
  best.evaluated = 1;

  double temperature = params.initial_temperature;
  for (std::uint64_t it = 0; it < params.iterations; ++it) {
    auto next_choice = choice;
    auto next_kinds = kinds;
    const double move = unit(rng);
    if (move < 0.6) {
      next_choice[pick_nf(rng)] = pick_pipelet(rng);
    } else if (move < 0.9 && order.size() >= 2) {
      std::swap(next_choice[pick_nf(rng)], next_choice[pick_nf(rng)]);
    } else {
      std::size_t p = pick_pipelet(rng);
      next_kinds[p] = next_kinds[p] == CompositionKind::kSequential
                          ? CompositionKind::kParallel
                          : CompositionKind::kSequential;
    }

    const double cost = score(next_choice, next_kinds);
    ++best.evaluated;
    const double delta = cost - current;
    if (delta <= 0 || unit(rng) < std::exp(-delta / temperature)) {
      choice = std::move(next_choice);
      kinds = std::move(next_kinds);
      current = cost;
      if (current < best.cost) {
        best.cost = current;
        best.placement = build_placement(order, choice, pipelets, kinds);
      }
    }
    temperature *= params.cooling;
  }

  best.feasible = best.cost < kInfeasibleCost;
  best.resubmissions =
      total_resubmissions(policies, best.placement, spec, env);
  return best;
}

}  // namespace dejavu::place
