#include "place/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::place {

Placement::Placement(std::vector<merge::PipeletAssignment> assignment)
    : assignments_(std::move(assignment)) {
  for (const merge::PipeletAssignment& pa : assignments_) {
    for (std::size_t pos = 0; pos < pa.nfs.size(); ++pos) {
      auto [it, inserted] =
          index_.emplace(pa.nfs[pos], NfLocation{pa.pipelet, pos});
      if (!inserted) {
        throw std::invalid_argument("NF '" + pa.nfs[pos] +
                                    "' placed on two pipelets");
      }
    }
  }
}

std::optional<NfLocation> Placement::find(const std::string& nf) const {
  auto it = index_.find(nf);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const merge::PipeletAssignment* Placement::pipelet(
    const asic::PipeletId& id) const {
  for (const merge::PipeletAssignment& pa : assignments_) {
    if (pa.pipelet == id) return &pa;
  }
  return nullptr;
}

std::vector<std::string> Placement::placed_nfs() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [nf, loc] : index_) out.push_back(nf);
  return out;
}

std::string Placement::to_string() const {
  std::string s;
  for (const merge::PipeletAssignment& pa : assignments_) {
    if (pa.nfs.empty()) continue;
    if (!s.empty()) s += " | ";
    s += pa.pipelet.to_string() + "[";
    for (std::size_t i = 0; i < pa.nfs.size(); ++i) {
      if (i > 0) s += pa.kind == merge::CompositionKind::kSequential ? ">"
                                                                     : "/";
      s += pa.nfs[i];
    }
    s += "]";
  }
  return s.empty() ? "<empty>" : s;
}

std::string Traversal::to_string() const {
  if (!feasible) return "infeasible: " + infeasible_reason;
  std::string s;
  for (const TraversalStep& step : steps) {
    s += step.pipelet.to_string();
    if (!step.executed.empty()) {
      s += "(";
      for (std::size_t i = 0; i < step.executed.size(); ++i) {
        if (i > 0) s += ",";
        s += step.executed[i];
      }
      s += ")";
    }
    switch (step.exit_via) {
      case TraversalStep::Exit::kToEgress:
        s += " -> ";
        break;
      case TraversalStep::Exit::kResubmit:
        s += " =resub=> ";
        break;
      case TraversalStep::Exit::kRecirculate:
        s += " =recirc=> ";
        break;
      case TraversalStep::Exit::kOut:
        s += " -> out";
        break;
    }
  }
  return s;
}

namespace {

/// Execute one pass over a pipelet: the maximal run of consecutive
/// chain NFs hosted here, honoring apply order (positions must be
/// strictly increasing within a pass) and composition semantics
/// (parallel branches: at most one NF per pass).
std::vector<std::string> run_pass(const asic::PipeletId& pipelet,
                                  const std::vector<std::string>& chain,
                                  std::size_t& idx,
                                  const Placement& placement) {
  std::vector<std::string> executed;
  const merge::PipeletAssignment* pa = placement.pipelet(pipelet);
  if (pa == nullptr) return executed;

  bool first = true;
  std::size_t last_pos = 0;
  while (idx < chain.size()) {
    auto loc = placement.find(chain[idx]);
    if (!loc || !(loc->pipelet == pipelet)) break;
    if (!first) {
      if (pa->kind == merge::CompositionKind::kParallel) break;
      if (loc->position <= last_pos) break;  // earlier in apply order
    }
    executed.push_back(chain[idx]);
    last_pos = loc->position;
    first = false;
    ++idx;
  }
  return executed;
}

}  // namespace

Traversal plan_traversal(const sfc::ChainPolicy& policy,
                         const Placement& placement,
                         const asic::TargetSpec& spec,
                         const TraversalEnv& env) {
  Traversal t;
  for (const std::string& nf : policy.nfs) {
    if (!placement.find(nf)) {
      t.infeasible_reason = "NF '" + nf + "' is not placed";
      return t;
    }
  }

  const std::uint32_t exit_pipeline = spec.pipeline_of_port(policy.exit_port);
  std::size_t idx = 0;

  enum class Where { kIngress, kEgress };
  Where where = Where::kIngress;
  std::uint32_t pipeline = spec.pipeline_of_port(policy.in_port);

  for (std::uint32_t pass = 0; pass < env.max_passes; ++pass) {
    if (where == Where::kIngress) {
      TraversalStep step;
      step.pipelet = {pipeline, asic::PipeKind::kIngress};
      step.executed = run_pass(step.pipelet, policy.nfs, idx, placement);

      if (idx == policy.nfs.size()) {
        // Chain complete: branching routes to the exit port's egress
        // pipe; the packet drains through it and leaves.
        step.exit_via = TraversalStep::Exit::kToEgress;
        t.steps.push_back(step);
        TraversalStep out;
        out.pipelet = {exit_pipeline, asic::PipeKind::kEgress};
        out.exit_via = TraversalStep::Exit::kOut;
        t.steps.push_back(out);
        t.feasible = true;
        return t;
      }

      const NfLocation next = *placement.find(policy.nfs[idx]);
      if (next.pipelet ==
          asic::PipeletId{pipeline, asic::PipeKind::kIngress}) {
        // Next NF is on this very ingress pipelet but could not run in
        // this pass (apply order / parallel branch): resubmission.
        step.exit_via = TraversalStep::Exit::kResubmit;
        ++t.resubmissions;
        t.steps.push_back(step);
        continue;  // same pipelet again
      }

      // Route through the traffic manager toward the pipeline holding
      // the next NF. If the next NF is on an egress pipe we go there
      // directly; if it is on another ingress pipe we must transit
      // that pipeline's egress pipe and loop back (constraint (d)).
      step.exit_via = TraversalStep::Exit::kToEgress;
      t.steps.push_back(step);
      pipeline = next.pipelet.pipeline;
      where = Where::kEgress;
      continue;
    }

    // where == Where::kEgress
    TraversalStep step;
    step.pipelet = {pipeline, asic::PipeKind::kEgress};
    step.executed = run_pass(step.pipelet, policy.nfs, idx, placement);

    if (idx == policy.nfs.size() && pipeline == exit_pipeline) {
      step.exit_via = TraversalStep::Exit::kOut;
      t.steps.push_back(step);
      t.feasible = true;
      return t;
    }

    // More work (or wrong exit pipe): recirculate into this pipeline's
    // ingress pipe via a loopback port.
    //
    // The chain's terminal NF (the Router) removes the SFC header when
    // it runs (§3); a pass that executes it but then needs another
    // loop would strand a header-less packet with no steering state.
    // The terminal NF must run on an ingress pipe or on the exit
    // egress pipe.
    if (policy.terminal_pops_sfc && !step.executed.empty() &&
        step.executed.back() == policy.nfs.back()) {
      t.infeasible_reason =
          "terminal NF '" + policy.nfs.back() + "' would pop the SFC "
          "header on egress pipe " + std::to_string(pipeline) +
          " before the final steering (exit is pipeline " +
          std::to_string(exit_pipeline) + ")";
      t.steps.push_back(step);
      return t;
    }
    if (!env.recirc_ok(pipeline)) {
      t.infeasible_reason = "pipeline " + std::to_string(pipeline) +
                            " has no loopback/recirculation capacity";
      t.steps.push_back(step);
      return t;
    }
    step.exit_via = TraversalStep::Exit::kRecirculate;
    ++t.recirculations;
    t.steps.push_back(step);
    where = Where::kIngress;
  }

  t.infeasible_reason = "traversal did not terminate within " +
                        std::to_string(env.max_passes) + " passes";
  return t;
}

double weighted_recirculations(const sfc::PolicySet& policies,
                               const Placement& placement,
                               const asic::TargetSpec& spec,
                               const TraversalEnv& env) {
  double cost = 0;
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    Traversal t = plan_traversal(policy, placement, spec, env);
    if (!t.feasible) return kInfeasibleCost;
    cost += policy.weight * t.recirculations;
  }
  return cost;
}

}  // namespace dejavu::place
