// Multi-switch clusters (§7 "Towards clusters of switch data planes"):
// several identical switches chained back-to-back behave like one
// virtual ASIC with many more pipelines (hence MAU stages), at the
// price of off-chip latency on hops that cross a switch boundary. The
// paper's Fig. 8(b) measurement (off-chip recirculation ~70 ns slower
// than on-chip) is what makes this practical.
#pragma once

#include <cstdint>

#include "asic/target.hpp"
#include "place/placement.hpp"

namespace dejavu::place {

struct ClusterSpec {
  /// Per-switch profile (homogeneous cluster).
  asic::TargetSpec switch_spec = asic::TargetSpec::tofino32();
  std::uint32_t switches = 2;

  /// The cluster as one virtual target: pipelines concatenate across
  /// switches, everything else per-switch. Placement and traversal
  /// planning run unchanged against this spec.
  asic::TargetSpec virtual_spec() const;

  /// Which physical switch a virtual pipeline lives on.
  std::uint32_t switch_of_pipeline(std::uint32_t pipeline) const {
    return pipeline / switch_spec.pipelines;
  }

  std::uint32_t total_stages() const {
    return switches * switch_spec.total_stages();
  }
};

/// Number of hops in a planned traversal whose source and destination
/// pipelines live on different switches (each pays the off-chip
/// penalty).
std::uint32_t inter_switch_crossings(const Traversal& traversal,
                                     const ClusterSpec& cluster);

/// End-to-end latency of a traversal on the cluster: base port-to-port
/// time, on-chip recirculations within a switch, off-chip penalties
/// for boundary crossings, and a third of an on-chip loop per
/// resubmission (ingress-only re-run).
double cluster_traversal_ns(const Traversal& traversal,
                            const ClusterSpec& cluster);

}  // namespace dejavu::place
