// NF placement (§3.3): which pipelet hosts each NF, in what order, and
// with which composition flavor — plus the traversal planner that
// derives, for a given chain, the physical path a packet takes and how
// many resubmissions/recirculations it costs. The planner encodes
// Tofino's constraints (a)-(d) from §3.3:
//   (a) resubmission after ingress, recirculation after egress only;
//   (b) recirculation is decided in ingress (loopback-port routing);
//   (c) recirculation bandwidth is per-Ethernet-port (loopback mode);
//   (d) resubmission/recirculation stay within one pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "asic/target.hpp"
#include "merge/compose.hpp"
#include "sfc/chain.hpp"

namespace dejavu::place {

/// Where one NF lives: its pipelet and its position in the pipelet's
/// apply order.
struct NfLocation {
  asic::PipeletId pipelet;
  std::size_t position = 0;

  bool operator==(const NfLocation&) const = default;
};

/// A full placement: per-pipelet NF lists (merge::PipeletAssignment)
/// plus fast NF lookup.
class Placement {
 public:
  Placement() = default;
  explicit Placement(std::vector<merge::PipeletAssignment> assignment);

  const std::vector<merge::PipeletAssignment>& assignments() const {
    return assignments_;
  }

  /// Location of an NF; nullopt when unplaced.
  std::optional<NfLocation> find(const std::string& nf) const;

  /// The assignment record of a pipelet (nullptr when nothing is
  /// placed there).
  const merge::PipeletAssignment* pipelet(const asic::PipeletId& id) const;

  /// All placed NF names.
  std::vector<std::string> placed_nfs() const;

  std::string to_string() const;

  bool operator==(const Placement&) const = default;

 private:
  std::vector<merge::PipeletAssignment> assignments_;
  std::map<std::string, NfLocation> index_;
};

/// One pipelet pass of a planned traversal.
struct TraversalStep {
  asic::PipeletId pipelet;
  std::vector<std::string> executed;  // NFs that ran in this pass
  /// How the packet left this pipelet.
  enum class Exit : std::uint8_t {
    kToEgress,      // ingress -> traffic manager -> egress pipe
    kResubmit,      // ingress -> same ingress parser (resubmission)
    kRecirculate,   // egress -> loopback port -> same pipeline's ingress
    kOut,           // egress -> external port, done
  } exit_via = Exit::kOut;
};

/// The planned physical path of one chain under a placement.
struct Traversal {
  bool feasible = false;
  std::string infeasible_reason;
  std::vector<TraversalStep> steps;
  std::uint32_t recirculations = 0;
  std::uint32_t resubmissions = 0;

  std::string to_string() const;
};

/// Inputs the planner needs about the switch: how many pipelines, and
/// which of them can recirculate (have loopback ports or use the
/// dedicated recirculation port).
struct TraversalEnv {
  std::uint32_t pipelines = 2;
  /// pipeline -> can packets recirculate there (loopback configured or
  /// dedicated recirc port usable). Defaults to all-true when empty.
  std::vector<bool> can_recirculate;
  /// Safety valve against routing loops in pathological placements.
  std::uint32_t max_passes = 64;
  /// Weight of one resubmission relative to one recirculation in the
  /// optimization objective. The paper's §3.3 objective counts only
  /// recirculations, but a resubmission consumes another ingress-pipe
  /// pass (§3.2 lists it as the parallel-composition transition cost),
  /// so leaving it free lets optimizers pick degenerate all-parallel
  /// layouts that would halve ingress throughput. Set to 0 to recover
  /// the paper's literal objective.
  double resubmission_weight = 0.5;

  bool recirc_ok(std::uint32_t pipeline) const {
    if (can_recirculate.empty()) return true;
    return pipeline < can_recirculate.size() && can_recirculate[pipeline];
  }
};

/// Plan the traversal of `policy` under `placement`. All of the
/// policy's NFs must be placed; otherwise infeasible.
Traversal plan_traversal(const sfc::ChainPolicy& policy,
                         const Placement& placement,
                         const asic::TargetSpec& spec,
                         const TraversalEnv& env);

/// Weighted recirculation objective of §3.3: sum over policies of
/// weight x recirculations. Returns infinity-like cost (1e18) when any
/// policy's traversal is infeasible.
double weighted_recirculations(const sfc::PolicySet& policies,
                               const Placement& placement,
                               const asic::TargetSpec& spec,
                               const TraversalEnv& env);

inline constexpr double kInfeasibleCost = 1e18;

}  // namespace dejavu::place
