#include "place/cluster.hpp"

namespace dejavu::place {

asic::TargetSpec ClusterSpec::virtual_spec() const {
  asic::TargetSpec v = switch_spec;
  v.name = switch_spec.name + "-x" + std::to_string(switches);
  v.pipelines = switch_spec.pipelines * switches;
  return v;
}

std::uint32_t inter_switch_crossings(const Traversal& traversal,
                                     const ClusterSpec& cluster) {
  std::uint32_t crossings = 0;
  for (std::size_t i = 0; i + 1 < traversal.steps.size(); ++i) {
    crossings +=
        cluster.switch_of_pipeline(traversal.steps[i].pipelet.pipeline) !=
        cluster.switch_of_pipeline(traversal.steps[i + 1].pipelet.pipeline);
  }
  return crossings;
}

double cluster_traversal_ns(const Traversal& traversal,
                            const ClusterSpec& cluster) {
  const asic::TargetSpec& spec = cluster.switch_spec;
  double ns = spec.port_to_port_latency_ns;
  for (std::size_t i = 0; i + 1 < traversal.steps.size(); ++i) {
    const TraversalStep& step = traversal.steps[i];
    const bool crossing =
        cluster.switch_of_pipeline(step.pipelet.pipeline) !=
        cluster.switch_of_pipeline(traversal.steps[i + 1].pipelet.pipeline);
    switch (step.exit_via) {
      case TraversalStep::Exit::kRecirculate:
        ns += crossing ? spec.offchip_recirc_latency_ns
                       : spec.onchip_recirc_latency_ns;
        break;
      case TraversalStep::Exit::kToEgress:
        // Intra-switch TM hops are part of the base port-to-port time;
        // inter-switch forwards pay the cable.
        if (crossing) ns += spec.offchip_recirc_latency_ns;
        break;
      case TraversalStep::Exit::kResubmit:
        ns += spec.onchip_recirc_latency_ns / 3.0;
        break;
      case TraversalStep::Exit::kOut:
        break;
    }
  }
  return ns;
}

}  // namespace dejavu::place
