// Placement optimization (§3.3): minimize the weighted number of
// recirculations across all chain policies. Three strategies:
//
//   * naive_alternating  — the paper's strawman: place NFs one by one
//     in index order, alternating between ingress and egress pipes.
//   * exhaustive         — enumerate every assignment of NFs to
//     pipelets (within-pipelet order follows global chain order);
//     exact for the small m the paper targets (m<=8 on 4 pipelets).
//   * anneal             — simulated annealing for larger instances;
//     moves reassign single NFs, swap pairs, or flip a pipelet's
//     composition flavor.
//
// Feasibility uses a coarse per-pipelet stage model (each NF costs a
// configurable number of stages plus the framework glue); the exact
// check is compile::allocate on the composed program afterwards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "place/placement.hpp"

namespace dejavu::place {

/// Coarse stage-cost model for quick feasibility pruning.
struct StageModel {
  /// Stages needed by each NF's own tables (default when absent).
  std::map<std::string, std::uint32_t> nf_stages;
  std::uint32_t default_nf_stages = 1;
  /// Stages the framework glue adds per NF instance (check_nextNF +
  /// check_sfcFlags are data-dependent, hence extra stages).
  std::uint32_t glue_stages = 2;
  /// Stages the branching table adds on ingress pipelets.
  std::uint32_t branching_stages = 1;

  std::uint32_t cost_of(const std::string& nf) const;

  /// Stage depth a pipelet assignment needs under this model.
  std::uint32_t pipelet_depth(const merge::PipeletAssignment& pa) const;
};

/// True when every pipelet of `placement` fits the target's stage
/// ladder under the coarse model.
bool fits_stage_model(const Placement& placement,
                      const asic::TargetSpec& spec, const StageModel& model);

struct OptimizeResult {
  Placement placement;
  double cost = kInfeasibleCost;
  std::uint64_t evaluated = 0;  // candidate placements scored
  bool feasible = false;

  /// Total resubmissions across policies (diagnostic; not part of the
  /// paper's objective).
  std::uint32_t resubmissions = 0;
};

/// The paper's naive baseline: NFs in order of first appearance across
/// policies, one per pipelet, alternating ingress/egress pipes
/// (I0, E0, I1, E1, ... wrapping). Sequential composition.
Placement naive_alternating(const sfc::PolicySet& policies,
                            const asic::TargetSpec& spec);

/// Exact search over pipelet assignments. Within-pipelet order follows
/// the global NF order (order of first appearance across policies).
/// Complexity (2*pipelines)^m — use for m <= ~10.
OptimizeResult exhaustive_optimize(const sfc::PolicySet& policies,
                                   const asic::TargetSpec& spec,
                                   const TraversalEnv& env,
                                   const StageModel& model);

struct AnnealParams {
  std::uint64_t iterations = 20000;
  std::uint64_t seed = 1;
  double initial_temperature = 2.0;
  double cooling = 0.9995;
};

/// Simulated annealing for larger instances; also explores parallel
/// composition per pipelet. Deterministic for a fixed seed.
OptimizeResult anneal_optimize(const sfc::PolicySet& policies,
                               const asic::TargetSpec& spec,
                               const TraversalEnv& env,
                               const StageModel& model,
                               const AnnealParams& params = {});

/// Score a placement: the weighted-recirculation objective with a tiny
/// tie-breaking penalty for resubmissions, or kInfeasibleCost when the
/// stage model or a traversal rejects it.
double placement_cost(const sfc::PolicySet& policies,
                      const Placement& placement,
                      const asic::TargetSpec& spec, const TraversalEnv& env,
                      const StageModel& model);

/// NF names in order of first appearance across the policy set (the
/// canonical "global order" used by the optimizers).
std::vector<std::string> global_nf_order(const sfc::PolicySet& policies);

}  // namespace dejavu::place
