#include "control/replay_target.hpp"

#include "explore/explorer.hpp"

namespace dejavu::control {

sim::SwitchOutput DeploymentTarget::inject(net::Packet packet,
                                           std::uint16_t in_port) {
  if (engine_ == sim::EngineKind::kCompiled && compiled_) {
    // Fast path first; the control plane then services any punts the
    // same way ControlPlane::inject would (reinjections re-enter via
    // DataPlane::process — the slow path stays interpreted).
    sim::SwitchOutput out = compiled_->process(std::move(packet), in_port);
    if (service_punts_) fx_.deployment->control().service_punts(out);
    return out;
  }
  if (service_punts_) {
    return fx_.deployment->control().inject(std::move(packet), in_port);
  }
  return fx_.deployment->dataplane().process(std::move(packet), in_port);
}

void DeploymentTarget::set_engine(sim::EngineKind kind) {
  engine_ = kind;
  if (kind != sim::EngineKind::kCompiled || compiled_) return;
  // Seed from the deployment's own path equivalence classes; reuse a
  // previous exploration when the deployment already ran one.
  const explore::ExploreResult& ex =
      fx_.deployment->exploration().paths.empty()
          ? fx_.deployment->run_explorer()
          : fx_.deployment->exploration();
  compiled_ = std::make_unique<sim::CompiledPipeline>(
      fx_.deployment->dataplane(), explore::compile_seed(ex));
}

std::uint64_t DeploymentTarget::compiled_packets() const {
  return compiled_ ? compiled_->stats().compiled_packets : 0;
}

std::uint64_t DeploymentTarget::fallback_packets() const {
  return compiled_ ? compiled_->stats().fallback_packets : 0;
}

sim::TargetFactory fig2_replay_factory(bool fig9, bool service_punts) {
  return [fig9, service_punts](std::uint32_t) {
    auto fx = fig9 ? make_fig9_deployment() : make_fig2_deployment();
    return std::make_unique<DeploymentTarget>(std::move(fx), service_punts);
  };
}

std::vector<sim::ReplayFlow> fig2_replay_flows(std::uint32_t total_flows,
                                               std::uint64_t seed) {
  struct PathSpec {
    std::uint16_t path_id;
    net::Ipv4Addr dst;
    double weight;
    net::Ipv4Addr src_base;
  };
  // Destinations chosen to hit the canonical rules installed by
  // make_fig2_deployment: the VGW mapping for 10.1.0.10 (full chain),
  // the mapping for 10.2.0.20 (virtualized-only), and routed space.
  const PathSpec specs[] = {
      {1, net::Ipv4Addr(10, 1, 0, 10), 0.5, net::Ipv4Addr(192, 168, 0, 0)},
      {2, net::Ipv4Addr(10, 2, 0, 20), 0.3, net::Ipv4Addr(192, 169, 0, 0)},
      {3, net::Ipv4Addr(10, 3, 0, 1), 0.2, net::Ipv4Addr(192, 170, 0, 0)},
  };

  std::vector<sim::ReplayFlow> flows;
  for (const PathSpec& spec : specs) {
    sim::FlowMix mix;
    mix.flows = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(total_flows * spec.weight + 0.5));
    mix.dst = spec.dst;
    mix.src_base = spec.src_base;
    mix.seed = seed + spec.path_id;
    auto tagged = sim::make_path_flows(mix, spec.path_id,
                                       Fig2Deployment::kSenderPort);
    flows.insert(flows.end(), std::make_move_iterator(tagged.begin()),
                 std::make_move_iterator(tagged.end()));
  }
  return flows;
}

}  // namespace dejavu::control
