#include "control/journal.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dejavu::control {

std::size_t RuleDiff::installs() const {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(), [](const RuleOp& op) {
        return op.kind != RuleOp::Kind::kRegister && op.install;
      }));
}

std::size_t RuleDiff::removals() const {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(), [](const RuleOp& op) {
        return op.kind != RuleOp::Kind::kRegister && !op.install;
      }));
}

std::size_t RuleDiff::register_writes() const {
  return static_cast<std::size_t>(
      std::count_if(ops.begin(), ops.end(), [](const RuleOp& op) {
        return op.kind == RuleOp::Kind::kRegister;
      }));
}

const char* to_string(JournalState state) {
  switch (state) {
    case JournalState::kBegun:
      return "begin";
    case JournalState::kShadowed:
      return "shadowed";
    case JournalState::kFlipped:
      return "flipped";
    case JournalState::kDrained:
      return "drained";
    case JournalState::kCommitted:
      return "committed";
    case JournalState::kRolledBack:
      return "rolled-back";
    case JournalState::kAborted:
      return "aborted";
  }
  return "unknown";
}

namespace {

bool terminal(JournalState state) {
  return state == JournalState::kCommitted ||
         state == JournalState::kRolledBack ||
         state == JournalState::kAborted;
}

std::optional<JournalState> state_from_string(const std::string& s) {
  for (JournalState state :
       {JournalState::kBegun, JournalState::kShadowed, JournalState::kFlipped,
        JournalState::kDrained, JournalState::kCommitted,
        JournalState::kRolledBack, JournalState::kAborted}) {
    if (s == to_string(state)) return state;
  }
  return std::nullopt;
}

std::string join_u64(const std::vector<std::uint64_t>& values) {
  std::string s;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(values[i]);
  }
  return s;
}

std::string join_ternary(const std::vector<net::TernaryField>& fields) {
  std::string s;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(fields[i].value) + "/" + std::to_string(fields[i].mask);
  }
  return s;
}

std::string join_args(const std::map<std::string, std::uint64_t>& args) {
  std::string s;
  for (const auto& [param, value] : args) {
    if (!s.empty()) s += ',';
    s += param + ":" + std::to_string(value);
  }
  return s;
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("journal: bad " + what + " value '" + s + "'");
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(s);
  while (std::getline(in, part, sep)) parts.push_back(part);
  if (!s.empty() && s.back() == sep) parts.push_back("");
  return parts;
}

/// "k=v" fields of one journal line (after the leading keyword).
/// `note=` swallows the rest of the line (notes may contain spaces).
std::map<std::string, std::string> parse_fields(const std::string& rest) {
  std::map<std::string, std::string> fields;
  std::size_t pos = 0;
  while (pos < rest.size()) {
    while (pos < rest.size() && rest[pos] == ' ') ++pos;
    if (pos >= rest.size()) break;
    const std::size_t eq = rest.find('=', pos);
    if (eq == std::string::npos) {
      throw std::invalid_argument("journal: malformed field in '" + rest +
                                  "'");
    }
    const std::string name = rest.substr(pos, eq - pos);
    if (name == "note") {
      fields[name] = rest.substr(eq + 1);
      break;
    }
    std::size_t end = rest.find(' ', eq + 1);
    if (end == std::string::npos) end = rest.size();
    fields[name] = rest.substr(eq + 1, end - eq - 1);
    pos = end;
  }
  return fields;
}

std::string serialize_op(const RuleOp& op) {
  std::string s = "op ";
  switch (op.kind) {
    case RuleOp::Kind::kExact:
      s += "exact ";
      s += op.install ? "install" : "remove";
      s += " control=" + op.control + " table=" + op.table +
           " key=" + join_u64(op.key);
      if (op.install) {
        s += " action=" + op.action.action + " args=" + join_args(op.action.args);
      }
      break;
    case RuleOp::Kind::kTernary:
      s += "ternary ";
      s += op.install ? "install" : "remove";
      s += " control=" + op.control + " table=" + op.table +
           " tkey=" + join_ternary(op.tkey) +
           " prio=" + std::to_string(op.priority);
      if (op.install) {
        s += " action=" + op.action.action + " args=" + join_args(op.action.args);
      }
      break;
    case RuleOp::Kind::kRegister:
      s += "register control=" + op.control + " reg=" + op.reg +
           " index=" + std::to_string(op.index) +
           " value=" + std::to_string(op.value) +
           " old=" + std::to_string(op.old_value) +
           " bank_old=" + std::to_string(op.old_bank_epoch);
      break;
  }
  return s;
}

RuleOp parse_op(const std::string& line) {
  RuleOp op;
  // line starts with "op "; next token is the kind.
  std::size_t pos = 3;
  std::size_t end = line.find(' ', pos);
  if (end == std::string::npos) end = line.size();
  const std::string kind = line.substr(pos, end - pos);
  pos = end;
  if (kind == "register") {
    op.kind = RuleOp::Kind::kRegister;
    auto fields = parse_fields(line.substr(pos));
    op.control = fields["control"];
    op.reg = fields["reg"];
    op.index = parse_u64(fields["index"], "index");
    op.value = parse_u64(fields["value"], "value");
    op.old_value = parse_u64(fields["old"], "old");
    op.old_bank_epoch =
        static_cast<std::uint32_t>(parse_u64(fields["bank_old"], "bank_old"));
    return op;
  }
  if (kind != "exact" && kind != "ternary") {
    throw std::invalid_argument("journal: unknown op kind '" + kind + "'");
  }
  op.kind = kind == "exact" ? RuleOp::Kind::kExact : RuleOp::Kind::kTernary;
  while (pos < line.size() && line[pos] == ' ') ++pos;
  end = line.find(' ', pos);
  if (end == std::string::npos) end = line.size();
  const std::string verb = line.substr(pos, end - pos);
  if (verb != "install" && verb != "remove") {
    throw std::invalid_argument("journal: unknown op verb '" + verb + "'");
  }
  op.install = verb == "install";
  auto fields = parse_fields(line.substr(end));
  op.control = fields["control"];
  op.table = fields["table"];
  if (op.kind == RuleOp::Kind::kExact) {
    for (const std::string& part : split(fields["key"], ',')) {
      if (!part.empty()) op.key.push_back(parse_u64(part, "key"));
    }
  } else {
    for (const std::string& part : split(fields["tkey"], ',')) {
      if (part.empty()) continue;
      auto vm = split(part, '/');
      if (vm.size() != 2) {
        throw std::invalid_argument("journal: bad ternary field '" + part +
                                    "'");
      }
      op.tkey.push_back(net::TernaryField{parse_u64(vm[0], "tkey value"),
                                          parse_u64(vm[1], "tkey mask")});
    }
    op.priority =
        static_cast<std::int32_t>(parse_u64(fields["prio"], "priority"));
  }
  if (op.install) {
    op.action.action = fields["action"];
    for (const std::string& part : split(fields["args"], ',')) {
      if (part.empty()) continue;
      auto kv = split(part, ':');
      if (kv.size() != 2) {
        throw std::invalid_argument("journal: bad action arg '" + part + "'");
      }
      op.action.args[kv[0]] = parse_u64(kv[1], "action arg");
    }
  }
  return op;
}

}  // namespace

std::uint64_t Journal::begin(std::uint32_t from_epoch, std::uint32_t to_epoch,
                             RuleDiff diff) {
  JournalRecord record;
  record.state = JournalState::kBegun;
  record.update_id = next_id_++;
  record.from_epoch = from_epoch;
  record.to_epoch = to_epoch;
  record.diff = std::move(diff);
  records_.push_back(std::move(record));
  return records_.back().update_id;
}

void Journal::append(std::uint64_t update_id, JournalState state,
                     std::string note) {
  if (state == JournalState::kBegun) {
    throw std::invalid_argument("journal: append cannot re-begin an update");
  }
  const JournalRecord* begun = nullptr;
  for (const JournalRecord& r : records_) {
    if (r.update_id == update_id && r.state == JournalState::kBegun) {
      begun = &r;
    }
  }
  if (begun == nullptr) {
    throw std::invalid_argument("journal: append for unknown update id " +
                                std::to_string(update_id));
  }
  JournalRecord record;
  record.state = state;
  record.update_id = update_id;
  record.from_epoch = begun->from_epoch;
  record.to_epoch = begun->to_epoch;
  record.note = std::move(note);
  records_.push_back(std::move(record));
}

std::optional<Journal::Pending> Journal::pending() const {
  std::optional<Pending> found;
  for (const JournalRecord& r : records_) {
    if (r.state == JournalState::kBegun) {
      Pending p;
      p.update_id = r.update_id;
      p.from_epoch = r.from_epoch;
      p.to_epoch = r.to_epoch;
      p.diff = &r.diff;
      p.last_state = r.state;
      found = p;
    } else if (found && r.update_id == found->update_id) {
      if (terminal(r.state)) {
        found.reset();
      } else {
        found->last_state = r.state;
      }
    }
  }
  return found;
}

std::string Journal::to_text() const {
  std::string out;
  for (const JournalRecord& r : records_) {
    out += to_string(r.state);
    out += " id=" + std::to_string(r.update_id);
    if (r.state == JournalState::kBegun) {
      out += " from=" + std::to_string(r.from_epoch) +
             " to=" + std::to_string(r.to_epoch);
    }
    if (!r.note.empty()) out += " note=" + r.note;
    out += "\n";
    if (r.state == JournalState::kBegun) {
      for (const RuleOp& op : r.diff.ops) out += serialize_op(op) + "\n";
    }
  }
  return out;
}

Journal Journal::from_text(const std::string& text) {
  Journal journal;
  JournalRecord* open_begin = nullptr;
  for (const std::string& line : split(text, '\n')) {
    if (line.empty()) continue;
    if (line.rfind("op ", 0) == 0) {
      if (open_begin == nullptr) {
        throw std::invalid_argument("journal: op line outside a begin record");
      }
      open_begin->diff.ops.push_back(parse_op(line));
      continue;
    }
    std::size_t end = line.find(' ');
    if (end == std::string::npos) end = line.size();
    auto state = state_from_string(line.substr(0, end));
    if (!state) {
      throw std::invalid_argument("journal: unknown record '" + line + "'");
    }
    auto fields = parse_fields(line.substr(end));
    JournalRecord record;
    record.state = *state;
    record.update_id = parse_u64(fields["id"], "id");
    if (*state == JournalState::kBegun) {
      record.from_epoch =
          static_cast<std::uint32_t>(parse_u64(fields["from"], "from"));
      record.to_epoch =
          static_cast<std::uint32_t>(parse_u64(fields["to"], "to"));
    } else {
      // Phase markers inherit the begin record's epochs.
      for (const JournalRecord& r : journal.records_) {
        if (r.update_id == record.update_id &&
            r.state == JournalState::kBegun) {
          record.from_epoch = r.from_epoch;
          record.to_epoch = r.to_epoch;
        }
      }
    }
    auto note = fields.find("note");
    if (note != fields.end()) record.note = note->second;
    journal.records_.push_back(std::move(record));
    open_begin = journal.records_.back().state == JournalState::kBegun
                     ? &journal.records_.back()
                     : nullptr;
    journal.next_id_ = std::max(journal.next_id_,
                                journal.records_.back().update_id + 1);
  }
  return journal;
}

}  // namespace dejavu::control
