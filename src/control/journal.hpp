// Write-ahead intent journal for live updates (§11 crash recovery):
// before LiveUpdate touches the switch it journals the full intended
// rule diff (kBegun), then appends a marker as each phase completes —
// kShadowed after the phase-1 transaction, kFlipped after the version
// gate moves, kDrained after in-flight packets finish, and a terminal
// kCommitted / kRolledBack / kAborted. A controller that crashes
// mid-update replays the journal on restart: control::recover() reads
// the last non-terminal intent, compares it against what the live
// switch actually holds (control::Snapshot — adopt what is observed,
// never reinstall blindly), and rolls the update forward or back to a
// clean generation.
//
// The journal round-trips through a line-based text format (to_text /
// from_text) — the on-disk WAL representation — so recovery works from
// a re-parsed journal exactly as from the in-memory one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/tcam.hpp"
#include "sim/runtime_table.hpp"

namespace dejavu::control {

/// One primitive of a generation diff. `install == false` means the
/// entry leaves the new generation: a hitless update retires it (caps
/// its window), a legacy stop-the-world swap removes it outright.
struct RuleOp {
  enum class Kind : std::uint8_t { kExact, kTernary, kRegister };
  Kind kind = Kind::kExact;
  bool install = true;
  std::string control;  // empty = every instance of `table`
  std::string table;
  std::vector<std::uint64_t> key;            // kExact
  std::vector<net::TernaryField> tkey;       // kTernary
  std::int32_t priority = 0;                 // kTernary
  std::string reg;                           // kRegister
  std::uint64_t index = 0;                   // kRegister
  std::uint64_t value = 0;                   // kRegister
  /// The cell's pre-update value, captured when the update begins, so
  /// a post-crash rollback can restore it from the journal alone.
  std::uint64_t old_value = 0;
  /// The register bank's pre-update epoch tag (kRegister), so rollback
  /// restores the tag, not just the cells.
  std::uint32_t old_bank_epoch = 0;
  sim::ActionCall action;

  bool operator==(const RuleOp&) const = default;
};

/// The installable delta between two chain generations.
struct RuleDiff {
  std::vector<RuleOp> ops;

  std::size_t installs() const;
  std::size_t removals() const;
  std::size_t register_writes() const;
  bool empty() const { return ops.empty(); }

  bool operator==(const RuleDiff&) const = default;
};

/// The live-update state machine's states, in WAL order.
enum class JournalState : std::uint8_t {
  kBegun,       ///< intent recorded; nothing touched yet
  kShadowed,    ///< phase 1 done: next generation installed shadowed
  kFlipped,     ///< phase 2 done: version gate moved to the new epoch
  kDrained,     ///< in-flight packets of the old epoch finished
  kCommitted,   ///< old generation garbage-collected (terminal)
  kRolledBack,  ///< update undone, switch back on the old generation
  kAborted,     ///< refused before touching the switch (terminal)
};

const char* to_string(JournalState state);

struct JournalRecord {
  JournalState state = JournalState::kBegun;
  std::uint64_t update_id = 0;
  std::uint32_t from_epoch = 0;
  std::uint32_t to_epoch = 0;
  RuleDiff diff;     // kBegun records only
  std::string note;  // free-form detail (abort reason, drain stats)

  bool operator==(const JournalRecord&) const = default;
};

class Journal {
 public:
  /// Record the intent of a new update; returns its update id.
  std::uint64_t begin(std::uint32_t from_epoch, std::uint32_t to_epoch,
                      RuleDiff diff);

  /// Append a phase marker for a begun update.
  void append(std::uint64_t update_id, JournalState state,
              std::string note = "");

  const std::vector<JournalRecord>& records() const { return records_; }

  /// The most recent update with no terminal record — what a restarted
  /// controller must reconcile.
  struct Pending {
    std::uint64_t update_id = 0;
    std::uint32_t from_epoch = 0;
    std::uint32_t to_epoch = 0;
    const RuleDiff* diff = nullptr;
    /// The furthest phase the journal recorded (>= kBegun).
    JournalState last_state = JournalState::kBegun;
  };
  std::optional<Pending> pending() const;

  /// Line-based WAL text; from_text(to_text()) round-trips exactly.
  std::string to_text() const;
  /// Throws std::invalid_argument on malformed input.
  static Journal from_text(const std::string& text);

  bool operator==(const Journal&) const = default;

 private:
  std::vector<JournalRecord> records_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dejavu::control
