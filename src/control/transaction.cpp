#include "control/transaction.hpp"

#include <cmath>
#include <map>
#include <random>
#include <stdexcept>

namespace dejavu::control {

std::uint32_t RetryPolicy::backoff_ms(std::uint32_t retry) const {
  if (retry == 0) return 0;
  double delay =
      static_cast<double>(base_ms) * std::pow(multiplier, retry - 1);
  delay = std::min(delay, static_cast<double>(max_ms));
  // Deterministic jitter: the factor for retry N depends only on
  // (seed, N), never on call order.
  std::mt19937_64 rng(seed ^ (0x9e3779b97f4a7c15ULL * retry));
  const double u =
      static_cast<double>(rng() >> 11) * (1.0 / 9007199254740992.0);
  const double factor = 1.0 - jitter + 2.0 * jitter * u;
  return static_cast<std::uint32_t>(std::llround(delay * factor));
}

Transaction::Transaction(sim::DataPlane& dp, RetryPolicy retry,
                         sim::FaultInjector* injector)
    : dp_(&dp), retry_(retry), injector_(injector) {}

void Transaction::install_exact(std::string table,
                                std::vector<std::uint64_t> key,
                                sim::ActionCall action,
                                sim::EpochWindow window) {
  Op op;
  op.kind = OpKind::kInstallExact;
  op.table = std::move(table);
  op.exact_key = std::move(key);
  op.action = std::move(action);
  op.window = window;
  ops_.push_back(std::move(op));
}

void Transaction::install_exact_in(std::string control, std::string table,
                                   std::vector<std::uint64_t> key,
                                   sim::ActionCall action,
                                   sim::EpochWindow window) {
  install_exact(std::move(table), std::move(key), std::move(action), window);
  ops_.back().control = std::move(control);
}

void Transaction::remove_exact_in(std::string control, std::string table,
                                  std::vector<std::uint64_t> key) {
  remove_exact(std::move(table), std::move(key));
  ops_.back().control = std::move(control);
}

void Transaction::install_ternary(std::string table,
                                  std::vector<net::TernaryField> key,
                                  std::int32_t priority,
                                  sim::ActionCall action,
                                  sim::EpochWindow window) {
  Op op;
  op.kind = OpKind::kInstallTernary;
  op.table = std::move(table);
  op.ternary_key = std::move(key);
  op.priority = priority;
  op.action = std::move(action);
  op.window = window;
  ops_.push_back(std::move(op));
}

void Transaction::install_lpm(std::string table, std::uint64_t value,
                              std::uint8_t prefix_len, sim::ActionCall action,
                              sim::EpochWindow window) {
  Op op;
  op.kind = OpKind::kInstallLpm;
  op.table = std::move(table);
  op.lpm_value = value;
  op.prefix_len = prefix_len;
  op.action = std::move(action);
  op.window = window;
  ops_.push_back(std::move(op));
}

void Transaction::remove_exact(std::string table,
                               std::vector<std::uint64_t> key) {
  Op op;
  op.kind = OpKind::kRemoveExact;
  op.table = std::move(table);
  op.exact_key = std::move(key);
  ops_.push_back(std::move(op));
}

void Transaction::remove_ternary(std::string table,
                                 std::vector<net::TernaryField> key,
                                 std::int32_t priority) {
  Op op;
  op.kind = OpKind::kRemoveTernary;
  op.table = std::move(table);
  op.ternary_key = std::move(key);
  op.priority = priority;
  ops_.push_back(std::move(op));
}

void Transaction::retire_exact(std::string table,
                               std::vector<std::uint64_t> key,
                               std::uint32_t last_epoch) {
  Op op;
  op.kind = OpKind::kRetireExact;
  op.table = std::move(table);
  op.exact_key = std::move(key);
  op.last_epoch = last_epoch;
  ops_.push_back(std::move(op));
}

void Transaction::retire_exact_in(std::string control, std::string table,
                                  std::vector<std::uint64_t> key,
                                  std::uint32_t last_epoch) {
  retire_exact(std::move(table), std::move(key), last_epoch);
  ops_.back().control = std::move(control);
}

void Transaction::retire_ternary(std::string table,
                                 std::vector<net::TernaryField> key,
                                 std::int32_t priority,
                                 std::uint32_t last_epoch) {
  Op op;
  op.kind = OpKind::kRetireTernary;
  op.table = std::move(table);
  op.ternary_key = std::move(key);
  op.priority = priority;
  op.last_epoch = last_epoch;
  ops_.push_back(std::move(op));
}

void Transaction::write_register(std::string control, std::string reg,
                                 std::uint64_t index, std::uint64_t value) {
  Op op;
  op.kind = OpKind::kWriteRegister;
  op.table = std::move(control);
  op.reg = std::move(reg);
  op.reg_index = index;
  op.reg_value = value;
  ops_.push_back(std::move(op));
}

std::vector<sim::RuntimeTable*> Transaction::resolve(const Op& op) const {
  if (op.control.empty()) return dp_->tables_named(op.table);
  sim::RuntimeTable* t = dp_->table_in(op.control, op.table);
  if (t == nullptr) return {};
  return {t};
}

std::string Transaction::Op::describe() const {
  switch (kind) {
    case OpKind::kInstallExact:
      return "install_exact " + table;
    case OpKind::kInstallTernary:
      return "install_ternary " + table;
    case OpKind::kInstallLpm:
      return "install_lpm " + table;
    case OpKind::kRemoveExact:
      return "remove_exact " + table;
    case OpKind::kRemoveTernary:
      return "remove_ternary " + table;
    case OpKind::kRetireExact:
      return "retire_exact " + table;
    case OpKind::kRetireTernary:
      return "retire_ternary " + table;
    case OpKind::kWriteRegister:
      return "write_register " + table + "." + reg;
  }
  return "op";
}

std::string Transaction::Result::to_string() const {
  std::string s = committed ? "committed" : "failed";
  s += " applied=" + std::to_string(applied) +
       " attempts=" + std::to_string(attempts) +
       " retries=" + std::to_string(retries) +
       " backoff_ms=" + std::to_string(total_backoff_ms);
  if (rolled_back) s += " rolled-back";
  if (!error.empty()) s += " error: " + error;
  return s;
}

namespace {

/// Dedup identity for a ternary (key, priority) pair; TernaryField has
/// no ordering, so the map key is a serialized string.
std::string ternary_identity(const std::vector<net::TernaryField>& key,
                             std::int32_t priority) {
  std::string s = std::to_string(priority);
  for (const auto& f : key) {
    s += "|" + std::to_string(f.value) + "/" + std::to_string(f.mask);
  }
  return s;
}

}  // namespace

std::string Transaction::validate() const {
  // Net installs queued per table instance, for the capacity check.
  std::map<const sim::RuntimeTable*, std::size_t> pending;
  // Versions a retire queued *earlier in this batch* will cap at
  // last_epoch. The install overlap checks below must judge against
  // the post-retire window, or a retire-then-overwrite batch — the
  // live update's shadow phase — is rejected against state the batch
  // itself replaces.
  std::map<std::pair<const sim::RuntimeTable*, std::vector<std::uint64_t>>,
           std::uint32_t>
      capped_exact;
  std::map<std::pair<const sim::RuntimeTable*, std::string>, std::uint32_t>
      capped_ternary;
  for (const Op& op : ops_) {
    if (op.kind == OpKind::kWriteRegister) {
      auto* arr = dp_->register_array(op.table, op.reg);
      if (arr == nullptr) {
        return op.describe() + ": no such register";
      }
      if (op.reg_index >= arr->size()) {
        return op.describe() + ": index " + std::to_string(op.reg_index) +
               " out of range (size " + std::to_string(arr->size()) + ")";
      }
      continue;
    }
    std::vector<sim::RuntimeTable*> instances = resolve(op);
    if (instances.empty()) {
      return op.describe() + ": table does not exist in the deployment";
    }
    for (sim::RuntimeTable* t : instances) {
      const p4ir::Table& def = t->def();
      const bool tcam = def.needs_tcam();
      switch (op.kind) {
        case OpKind::kInstallExact: {
          if (tcam) return op.describe() + ": table is ternary/LPM";
          if (op.exact_key.size() != def.keys.size()) {
            return op.describe() + ": key arity mismatch";
          }
          if (!op.window.well_formed()) {
            return op.describe() + ": malformed epoch window";
          }
          bool overwrite = false;
          if (const auto* versions = t->exact_versions(op.exact_key)) {
            const auto cap = capped_exact.find({t, op.exact_key});
            for (const auto& v : *versions) {
              sim::EpochWindow w = v.window;
              if (w.open() && cap != capped_exact.end() &&
                  w.from <= cap->second) {
                w.to = cap->second;  // an earlier retire closes it
              }
              if (v.window == op.window) {
                overwrite = true;
              } else if (w.overlaps(op.window)) {
                return op.describe() +
                       ": epoch window overlaps an installed version (a "
                       "packet could see two generations)";
              }
            }
          }
          if (!overwrite) ++pending[t];
          break;
        }
        case OpKind::kInstallTernary:
          if (!tcam) return op.describe() + ": table is exact";
          if (op.ternary_key.size() != def.keys.size()) {
            return op.describe() + ": key arity mismatch";
          }
          if (!op.window.well_formed()) {
            return op.describe() + ": malformed epoch window";
          }
          for (const auto& e : t->ternary_entries()) {
            if (e.key != op.ternary_key || e.priority != op.priority) {
              continue;
            }
            sim::EpochWindow w = t->ternary_window(e.handle);
            const auto cap = capped_ternary.find(
                {t, ternary_identity(op.ternary_key, op.priority)});
            if (w.open() && cap != capped_ternary.end() &&
                w.from <= cap->second) {
              w.to = cap->second;  // an earlier retire closes it
            }
            if (w.overlaps(op.window)) {
              return op.describe() +
                     ": epoch window overlaps an installed entry";
            }
          }
          ++pending[t];
          break;
        case OpKind::kInstallLpm: {
          if (!tcam) return op.describe() + ": table is exact";
          bool has_lpm = false;
          for (const auto& k : def.keys) {
            if (k.kind == p4ir::MatchKind::kLpm) {
              has_lpm = true;
              if (op.prefix_len > k.bits) {
                return op.describe() + ": prefix length exceeds key width";
              }
            }
          }
          if (!has_lpm) {
            return op.describe() + ": table has no LPM key component";
          }
          ++pending[t];
          break;
        }
        case OpKind::kRemoveExact:
          if (tcam) return op.describe() + ": table is ternary/LPM";
          if (op.exact_key.size() != def.keys.size()) {
            return op.describe() + ": key arity mismatch";
          }
          break;
        case OpKind::kRemoveTernary:
          if (!tcam) return op.describe() + ": table is exact";
          break;
        case OpKind::kRetireExact:
          if (tcam) return op.describe() + ": table is ternary/LPM";
          if (op.exact_key.size() != def.keys.size()) {
            return op.describe() + ": key arity mismatch";
          }
          break;
        case OpKind::kRetireTernary:
          if (!tcam) return op.describe() + ": table is exact";
          break;
        case OpKind::kWriteRegister:
          break;
      }
    }
    // Removals must name an installed entry somewhere (removing a
    // phantom rule is a control-plane bug worth failing loudly on).
    if (op.kind == OpKind::kRemoveExact) {
      bool found = false;
      for (sim::RuntimeTable* t : instances) {
        if (t->find_exact(op.exact_key) != nullptr) found = true;
      }
      if (!found) return op.describe() + ": entry not installed";
    }
    if (op.kind == OpKind::kRemoveTernary) {
      bool found = false;
      for (sim::RuntimeTable* t : instances) {
        for (const auto& e : t->ternary_entries()) {
          if (e.key == op.ternary_key && e.priority == op.priority) {
            found = true;
          }
        }
      }
      if (!found) return op.describe() + ": entry not installed";
    }
    // Retires must find a live (open-window) version old enough to cap
    // at last_epoch in at least one instance.
    if (op.kind == OpKind::kRetireExact) {
      bool found = false;
      for (sim::RuntimeTable* t : instances) {
        const auto* live = t->find_exact(op.exact_key);
        if (live != nullptr && live->window.from <= op.last_epoch) {
          found = true;
          capped_exact[{t, op.exact_key}] = op.last_epoch;
        }
      }
      if (!found) return op.describe() + ": no live entry to retire";
    }
    if (op.kind == OpKind::kRetireTernary) {
      bool found = false;
      for (sim::RuntimeTable* t : instances) {
        auto handle = t->find_ternary(op.ternary_key, op.priority);
        if (handle && t->ternary_window(*handle).from <= op.last_epoch) {
          found = true;
          capped_ternary[{t, ternary_identity(op.ternary_key, op.priority)}] =
              op.last_epoch;
        }
      }
      if (!found) return op.describe() + ": no live entry to retire";
    }
  }
  // Capacity: every queued install must fit alongside what is already
  // there (removals in the same batch are not credited — conservative,
  // like reserving the space up front).
  for (const auto& [t, added] : pending) {
    if (t->entry_count() + added > t->def().max_entries) {
      return "table '" + t->def().name + "' cannot fit " +
             std::to_string(added) + " new entries (" +
             std::to_string(t->entry_count()) + "/" +
             std::to_string(t->def().max_entries) + " used)";
    }
  }
  return "";
}

void Transaction::apply(const Op& op, std::vector<UndoEntry>& undo) {
  if (op.kind == OpKind::kWriteRegister) {
    auto* arr = dp_->register_array(op.table, op.reg);
    const std::uint64_t old = (*arr)[op.reg_index];
    (*arr)[op.reg_index] = op.reg_value;
    UndoEntry u;
    u.kind = UndoEntry::Kind::kWriteRegister;
    u.reg_array = arr;
    u.reg_index = op.reg_index;
    u.reg_value = old;
    undo.push_back(std::move(u));
    return;
  }
  for (sim::RuntimeTable* t : resolve(op)) {
    switch (op.kind) {
      case OpKind::kInstallExact: {
        UndoEntry u;
        u.target = t;
        u.exact_key = op.exact_key;
        u.window = op.window;
        const sim::RuntimeTable::ExactEntry* old = nullptr;
        if (const auto* versions = t->exact_versions(op.exact_key)) {
          for (const auto& v : *versions) {
            if (v.window == op.window) old = &v;
          }
        }
        if (old != nullptr) {
          u.kind = UndoEntry::Kind::kReinstallExact;
          u.action = old->action;
        } else {
          u.kind = UndoEntry::Kind::kRemoveExact;
        }
        t->add_exact(op.exact_key, op.action, op.window);
        undo.push_back(std::move(u));
        break;
      }
      case OpKind::kInstallTernary: {
        UndoEntry u;
        u.kind = UndoEntry::Kind::kEraseTernary;
        u.target = t;
        u.handle =
            t->add_ternary(op.ternary_key, op.priority, op.action, op.window);
        undo.push_back(std::move(u));
        break;
      }
      case OpKind::kInstallLpm: {
        UndoEntry u;
        u.kind = UndoEntry::Kind::kEraseTernary;
        u.target = t;
        u.handle =
            t->add_lpm(op.lpm_value, op.prefix_len, op.action, op.window);
        undo.push_back(std::move(u));
        break;
      }
      case OpKind::kRemoveExact: {
        const auto* old = t->find_exact(op.exact_key);
        if (old == nullptr) break;  // replica without the entry
        UndoEntry u;
        u.kind = UndoEntry::Kind::kReinstallExact;
        u.target = t;
        u.exact_key = op.exact_key;
        u.action = old->action;
        u.window = old->window;
        t->remove_exact(op.exact_key);
        undo.push_back(std::move(u));
        break;
      }
      case OpKind::kRemoveTernary: {
        for (const auto& e : t->ternary_entries()) {
          if (e.key == op.ternary_key && e.priority == op.priority) {
            UndoEntry u;
            u.kind = UndoEntry::Kind::kReinstallTernary;
            u.target = t;
            u.ternary_key = e.key;
            u.priority = e.priority;
            u.action = e.value;
            u.window = t->ternary_window(e.handle);
            t->erase_ternary(e.handle);
            undo.push_back(std::move(u));
            break;  // entries() invalidated; one match per instance
          }
        }
        break;
      }
      case OpKind::kRetireExact: {
        const auto* live = t->find_exact(op.exact_key);
        if (live == nullptr || live->window.from > op.last_epoch) {
          break;  // replica without a live version old enough
        }
        if (!t->retire_exact(op.exact_key, op.last_epoch)) {
          throw std::invalid_argument("retire would malform the window");
        }
        UndoEntry u;
        u.kind = UndoEntry::Kind::kUnretireExact;
        u.target = t;
        u.exact_key = op.exact_key;
        u.last_epoch = op.last_epoch;
        undo.push_back(std::move(u));
        break;
      }
      case OpKind::kRetireTernary: {
        auto handle = t->find_ternary(op.ternary_key, op.priority);
        if (!handle ||
            t->ternary_window(*handle).from > op.last_epoch) {
          break;  // replica without a live version old enough
        }
        if (!t->retire_ternary(*handle, op.last_epoch)) {
          throw std::invalid_argument("retire would malform the window");
        }
        UndoEntry u;
        u.kind = UndoEntry::Kind::kUnretireTernary;
        u.target = t;
        u.handle = *handle;
        u.last_epoch = op.last_epoch;
        undo.push_back(std::move(u));
        break;
      }
      case OpKind::kWriteRegister:
        break;
    }
  }
}

void Transaction::rollback(std::vector<UndoEntry>& undo) {
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    switch (it->kind) {
      case UndoEntry::Kind::kRemoveExact:
        it->target->remove_exact_version(it->exact_key, it->window);
        break;
      case UndoEntry::Kind::kReinstallExact:
        it->target->add_exact(it->exact_key, it->action, it->window);
        break;
      case UndoEntry::Kind::kEraseTernary:
        it->target->erase_ternary(it->handle);
        break;
      case UndoEntry::Kind::kReinstallTernary:
        it->target->add_ternary(it->ternary_key, it->priority, it->action,
                                it->window);
        break;
      case UndoEntry::Kind::kUnretireExact:
        it->target->unretire_exact(it->exact_key, it->last_epoch);
        break;
      case UndoEntry::Kind::kUnretireTernary:
        it->target->unretire_ternary(it->handle, it->last_epoch);
        break;
      case UndoEntry::Kind::kWriteRegister:
        (*it->reg_array)[it->reg_index] = it->reg_value;
        break;
    }
  }
  undo.clear();
}

Transaction::Result Transaction::commit() {
  if (committed_) {
    throw std::logic_error("Transaction::commit called twice");
  }
  committed_ = true;
  Result result;
  std::string err = validate();
  if (!err.empty()) {
    result.error = std::move(err);
    return result;
  }
  std::vector<UndoEntry> undo;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    std::uint32_t attempt = 0;
    for (;;) {
      ++result.attempts;
      ++attempt;
      try {
        if (injector_ != nullptr) {
          injector_->on_write(static_cast<std::uint32_t>(i));
        }
        apply(ops_[i], undo);
        break;
      } catch (const sim::TransientWriteError& e) {
        if (attempt >= retry_.max_attempts) {
          result.error =
              ops_[i].describe() + ": " + e.what() + " (retries exhausted)";
          rollback(undo);
          result.rolled_back = true;
          return result;
        }
        ++result.retries;
        result.total_backoff_ms += retry_.backoff_ms(attempt);
      } catch (const std::exception& e) {
        result.error = ops_[i].describe() + ": " + e.what();
        rollback(undo);
        result.rolled_back = true;
        return result;
      }
    }
    ++result.applied;
  }
  result.committed = true;
  return result;
}

}  // namespace dejavu::control
