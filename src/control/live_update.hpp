// Hitless live chain updates (§11): epoch-versioned two-phase
// reconfiguration with per-packet consistency.
//
// LiveUpdate::run drives one update through the state machine:
//
//   begin ──► shadow ──► flip ──► drain ──► commit
//     │          │         │        │
//     └─ abort ◄─┘   (roll forward only once flipped)
//
//   * shadow — install generation e+1 next to generation e: every new
//     entry gets window [e+1, open], every leaving entry is retired
//     (window capped at e). One all-or-nothing Transaction; a failure
//     rolls the switch back byte-identical and aborts the update.
//   * flip — apply flip-time register writes bank by bank (tagging
//     each bank with e+1), then move the single ingress version gate:
//     dp.set_epoch(e+1). Packets stamped e keep resolving against
//     generation e; new arrivals are stamped e+1.
//   * drain — pump the control plane until no punt stamped e remains
//     in flight, then force-flush stragglers.
//   * commit — garbage-collect generation e (retired entries drop,
//     min_live_epoch rises; late reinjections stamped e complete as
//     DropCode::kUpdateDrained).
//
// Every phase is journaled (control::Journal) before the next begins,
// so control::recover() can finish or undo a half-done update after a
// controller crash — deciding from the *observed* switch state, never
// reinstalling blindly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "control/journal.hpp"
#include "control/transaction.hpp"
#include "route/routing.hpp"
#include "sim/dataplane.hpp"
#include "sim/fault.hpp"

namespace dejavu::control {

/// Deterministic controller-crash injection for recovery drills: run()
/// stops dead after journaling the named phase, leaving the switch
/// exactly as a real crash at that point would.
enum class CrashPoint : std::uint8_t {
  kNone,
  kAfterShadow,
  kAfterFlip,
  kAfterDrain,
};

struct LiveUpdateOptions {
  RetryPolicy retry;
  /// Drain pump invocations before stale punts are force-flushed.
  std::uint32_t max_drain_rounds = 8;
  CrashPoint crash_point = CrashPoint::kNone;
};

/// Called during the drain phase to let the control plane service
/// outstanding punts; returns how many punts it handled.
using DrainPump = std::function<std::uint64_t()>;

struct UpdateReport {
  bool committed = false;
  /// True when a CrashPoint stopped the update mid-flight (the switch
  /// is left in that phase's state; recover() must finish the job).
  bool crashed = false;
  bool rolled_back = false;
  std::uint32_t from_epoch = 0;
  std::uint32_t to_epoch = 0;
  std::uint64_t update_id = 0;
  Transaction::Result shadow;
  /// Punts serviced by the drain pump / force-flushed stale punts.
  std::uint64_t drained = 0;
  std::uint64_t flushed = 0;
  std::string error;

  std::string to_string() const;
};

/// What recover() did about the journal's pending update.
enum class RecoveryAction : std::uint8_t {
  kNone,          ///< no pending update
  kRolledBack,    ///< shadow undone; switch back on the old generation
  kRolledForward, ///< update completed from where it stopped
};

struct RecoveryReport {
  RecoveryAction action = RecoveryAction::kNone;
  std::uint64_t update_id = 0;
  std::uint32_t from_epoch = 0;
  std::uint32_t to_epoch = 0;
  std::uint64_t drained = 0;
  std::uint64_t flushed = 0;
  std::string detail;

  std::string to_string() const;
};

class LiveUpdate {
 public:
  /// `journal`, when given, receives the write-ahead intent and phase
  /// markers; without one the update still runs (but cannot be
  /// crash-recovered). `dp` must outlive the LiveUpdate.
  explicit LiveUpdate(sim::DataPlane& dp, Journal* journal = nullptr,
                      LiveUpdateOptions options = {});

  /// Drive one diff through shadow → flip → drain → commit. `injector`
  /// feeds the shadow transaction's write lane; `pump` services punts
  /// during the drain phase.
  UpdateReport run(const RuleDiff& diff, sim::FaultInjector* injector = nullptr,
                   DrainPump pump = {});

 private:
  sim::DataPlane* dp_;
  Journal* journal_;
  LiveUpdateOptions options_;
};

/// Reconcile a restarted controller's journal against the live switch:
/// finish (roll forward) or undo (roll back) the pending update based
/// on the phase markers AND the observed switch state — a journal that
/// says "begun" but a switch that already holds the full shadow means
/// the crash hit after the writes landed, so the update is adopted,
/// never reinstalled.
RecoveryReport recover(sim::DataPlane& dp, Journal& journal,
                       LiveUpdateOptions options = {}, DrainPump pump = {});

/// The installable delta between two routing plans as a RuleDiff:
/// branching + check-gate entries that leave, change, or join.
/// Live-existence-aware (entries the fault already evicted are not
/// phantom-removed; entries both plans agree on but that are missing
/// from the switch are reinstalled).
RuleDiff routing_rule_diff(const route::RoutingPlan& from,
                           const route::RoutingPlan& to, sim::DataPlane& dp);

/// Legacy stop-the-world application of a diff: removals as outright
/// removes, installs as overwrites, register writes direct — no epochs
/// involved. Used to stage candidate rulesets on scratch switches and
/// by ChainRepair's non-hitless path.
void fill_transaction(Transaction& txn, const RuleDiff& diff);

}  // namespace dejavu::control
