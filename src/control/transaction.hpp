// Transactional rule updates: batch table writes against the running
// data plane and commit them all-or-nothing. A commit first validates
// every queued op (tables exist, kinds and arities match, capacity is
// available for the whole batch), then applies op by op while keeping
// an undo log; a write that keeps failing after the retry budget — or
// any permanent error — rolls the already-applied prefix back in
// reverse order, leaving the switch byte-identical to its
// pre-transaction state (tests/test_transaction.cpp pins this with
// Snapshot::to_text()).
//
// Transient write errors (sim::TransientWriteError, e.g. from a
// sim::FaultInjector standing in for a flaky switch driver) are
// retried under a seeded-jitter exponential backoff. Backoff is
// simulated (accumulated in the result), never slept, so tests and
// chaos runs stay fast and deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/tcam.hpp"
#include "sim/dataplane.hpp"
#include "sim/fault.hpp"

namespace dejavu::control {

/// Exponential backoff with deterministic, seeded jitter. backoff_ms
/// is a pure function of (policy, attempt): the same policy yields the
/// same backoff sequence in every run.
struct RetryPolicy {
  /// Physical attempts per op (1 = no retry).
  std::uint32_t max_attempts = 4;
  std::uint32_t base_ms = 10;
  double multiplier = 2.0;
  std::uint32_t max_ms = 1000;
  /// Jitter fraction: the delay is scaled by a factor drawn uniformly
  /// from [1 - jitter, 1 + jitter].
  double jitter = 0.2;
  std::uint64_t seed = 0x5fc;

  /// Simulated delay before retry number `retry` (1-based: the delay
  /// between attempt N and attempt N+1 is backoff_ms(N)).
  std::uint32_t backoff_ms(std::uint32_t retry) const;
};

/// A batched, all-or-nothing rule update against one data plane.
/// Queue ops, then commit() once; a Transaction is single-use.
/// Like ControlPlane, a table name addresses *every* instance of the
/// table across pipelets (an NF placed in two pipelets keeps its
/// replicas in sync).
class Transaction {
 public:
  /// `injector`, when given, is consulted before every physical write
  /// attempt (the write lane of a sim::FaultPlan). Rollback writes
  /// bypass it: undo capacity is modeled as reserved, so rollback
  /// itself cannot fail.
  explicit Transaction(sim::DataPlane& dp, RetryPolicy retry = {},
                       sim::FaultInjector* injector = nullptr);

  /// Installs take an optional epoch window (default [0, open]): a
  /// live update shadow-installs the next generation with window
  /// [e+1, open] next to the retiring one (§11). Windows overlapping a
  /// different installed version of the same key fail validation.
  void install_exact(std::string table, std::vector<std::uint64_t> key,
                     sim::ActionCall action, sim::EpochWindow window = {});
  /// Control-scoped variants: address one pipelet's instance only
  /// (e.g. a specific ingress pipelet's branching table) instead of
  /// every instance of the name.
  void install_exact_in(std::string control, std::string table,
                        std::vector<std::uint64_t> key,
                        sim::ActionCall action, sim::EpochWindow window = {});
  void remove_exact_in(std::string control, std::string table,
                       std::vector<std::uint64_t> key);
  void install_ternary(std::string table, std::vector<net::TernaryField> key,
                       std::int32_t priority, sim::ActionCall action,
                       sim::EpochWindow window = {});
  void install_lpm(std::string table, std::uint64_t value,
                   std::uint8_t prefix_len, sim::ActionCall action,
                   sim::EpochWindow window = {});
  void remove_exact(std::string table, std::vector<std::uint64_t> key);
  /// Removes the installed ternary entry matching (key, priority)
  /// exactly; validation fails when no such entry exists.
  void remove_ternary(std::string table, std::vector<net::TernaryField> key,
                      std::int32_t priority);
  /// Cap the live version's window at `last_epoch` instead of removing
  /// it — the retiring half of a two-phase update. Validation fails
  /// when no live (open-window) version is installed.
  void retire_exact(std::string table, std::vector<std::uint64_t> key,
                    std::uint32_t last_epoch);
  void retire_exact_in(std::string control, std::string table,
                       std::vector<std::uint64_t> key,
                       std::uint32_t last_epoch);
  void retire_ternary(std::string table, std::vector<net::TernaryField> key,
                      std::int32_t priority, std::uint32_t last_epoch);
  void write_register(std::string control, std::string reg,
                      std::uint64_t index, std::uint64_t value);

  std::size_t size() const { return ops_.size(); }

  struct Result {
    bool committed = false;
    /// Physical write attempts across all ops (>= ops on success).
    std::uint32_t attempts = 0;
    /// Retries after transient failures.
    std::uint32_t retries = 0;
    /// Total simulated backoff.
    std::uint64_t total_backoff_ms = 0;
    /// Ops applied before the failure (== all ops when committed).
    std::size_t applied = 0;
    /// True when a failed commit undid its applied prefix.
    bool rolled_back = false;
    std::string error;

    std::string to_string() const;
  };

  /// Validate, then apply. Throws std::logic_error on re-commit.
  Result commit();

 private:
  enum class OpKind : std::uint8_t {
    kInstallExact,
    kInstallTernary,
    kInstallLpm,
    kRemoveExact,
    kRemoveTernary,
    kRetireExact,
    kRetireTernary,
    kWriteRegister,
  };
  struct Op {
    OpKind kind;
    std::string control;  // empty = every instance of `table`
    std::string table;    // register ops: control block name
    std::string reg;
    std::vector<std::uint64_t> exact_key;
    std::vector<net::TernaryField> ternary_key;
    std::int32_t priority = 0;
    std::uint64_t lpm_value = 0;
    std::uint8_t prefix_len = 0;
    std::uint64_t reg_index = 0;
    std::uint64_t reg_value = 0;
    sim::ActionCall action;
    sim::EpochWindow window;        // installs
    std::uint32_t last_epoch = 0;   // retires

    std::string describe() const;
  };
  struct UndoEntry {
    enum class Kind : std::uint8_t {
      kRemoveExact,      // undo an exact install (that exact version)
      kReinstallExact,   // undo an exact overwrite or removal
      kEraseTernary,     // undo a ternary/LPM install (by handle)
      kReinstallTernary, // undo a ternary removal
      kUnretireExact,    // undo an exact retire (re-open the window)
      kUnretireTernary,  // undo a ternary retire
      kWriteRegister,    // undo a register write
    };
    Kind kind;
    sim::RuntimeTable* target = nullptr;
    std::vector<std::uint64_t> exact_key;
    sim::ActionCall action;
    std::size_t handle = 0;
    std::vector<net::TernaryField> ternary_key;
    std::int32_t priority = 0;
    std::vector<std::uint64_t>* reg_array = nullptr;
    std::uint64_t reg_index = 0;
    std::uint64_t reg_value = 0;
    sim::EpochWindow window;
    std::uint32_t last_epoch = 0;
  };

  /// All-or-nothing pre-flight; empty string == valid.
  std::string validate() const;
  /// The table instances an op addresses (empty = unknown name).
  std::vector<sim::RuntimeTable*> resolve(const Op& op) const;
  /// Apply one op to every instance, appending undo records.
  void apply(const Op& op, std::vector<UndoEntry>& undo);
  void rollback(std::vector<UndoEntry>& undo);

  sim::DataPlane* dp_;
  RetryPolicy retry_;
  sim::FaultInjector* injector_;
  std::vector<Op> ops_;
  bool committed_ = false;
};

}  // namespace dejavu::control
