// Data-plane state snapshot and restore — the §7 "service upgrade and
// expansion, failure handling" primitives: capture every installed
// table entry and register cell of a running deployment, and replay
// them into a freshly built (e.g. upgraded or fail-over) data plane
// whose program exposes the same tables.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/tcam.hpp"
#include "sim/dataplane.hpp"

namespace dejavu::control {

/// Captured state of one deployment's data plane.
struct Snapshot {
  struct TableState {
    std::string control;
    std::string table;
    std::vector<sim::RuntimeTable::ExactEntry> exact;
    std::vector<net::Tcam<sim::ActionCall>::Entry> ternary;
    /// Epoch window of each ternary entry, aligned with `ternary`
    /// (windows live beside the TCAM, not in it).
    std::vector<sim::EpochWindow> ternary_windows;
  };
  struct RegisterState {
    std::string control;
    std::string name;
    /// Sparse non-zero cells (index -> value).
    std::map<std::uint64_t, std::uint64_t> cells;
    /// Generation tag of the bank (0 = never touched by an update).
    std::uint32_t epoch = 0;
  };

  std::vector<TableState> tables;
  std::vector<RegisterState> registers;
  /// The version gate and drain floor at capture time (§11).
  std::uint32_t epoch = 0;
  std::uint32_t min_live_epoch = 0;

  std::size_t entry_count() const;
  /// Human-readable dump (diffable, stable ordering).
  std::string to_text() const;
};

/// Capture every installed entry and non-zero register cell.
Snapshot take_snapshot(sim::DataPlane& dp);

/// Replay a snapshot into a data plane. Tables/registers missing from
/// the target are reported in the returned list (e.g. an upgrade that
/// removed an NF); matching tables are cleared first, then refilled.
/// Entries that no longer fit (smaller tables after the upgrade) throw.
std::vector<std::string> restore_snapshot(const Snapshot& snapshot,
                                          sim::DataPlane& dp);

}  // namespace dejavu::control
