#include "control/repair.hpp"

#include <algorithm>

#include "compile/report.hpp"
#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "route/routing.hpp"
#include "verify/verify.hpp"

namespace dejavu::control {

HealthMonitor::HealthMonitor(sim::DataPlane& dp,
                             const sfc::PolicySet& policies,
                             HealthThresholds thresholds)
    : dp_(&dp), policies_(&policies), thresholds_(thresholds) {
  reset();
}

std::optional<std::uint64_t> HealthMonitor::gate_hits(
    const std::string& nf) const {
  auto tables = dp_->tables_named(merge::check_next_nf_table(nf));
  if (tables.empty()) return std::nullopt;  // ungated (entry NF)
  std::uint64_t hits = 0;
  for (const sim::RuntimeTable* t : tables) hits += t->hits();
  return hits;
}

void HealthMonitor::reset() {
  health_.clear();
  last_hits_.clear();
  windows_observed_ = 0;
  for (const std::string& nf : policies_->all_nfs()) {
    if (auto hits = gate_hits(nf)) last_hits_[nf] = *hits;
  }
}

void HealthMonitor::observe(
    const std::map<std::uint16_t, PathWindow>& windows) {
  ++windows_observed_;
  // Current gate deltas for every observable NF.
  std::map<std::string, std::uint64_t> delta;
  for (const std::string& nf : policies_->all_nfs()) {
    auto hits = gate_hits(nf);
    if (!hits) continue;
    delta[nf] = *hits - last_hits_[nf];
    last_hits_[nf] = *hits;
    NfHealth& h = health_[nf];
    h.nf = nf;
    h.gate_delta = delta[nf];
  }

  std::uint64_t offered_total = 0;
  for (const auto& [path_id, w] : windows) offered_total += w.offered;
  if (offered_total < thresholds_.min_window_packets) return;

  // Per suffering path, the culprit is the first NF (chain order)
  // whose gate went silent while everything before it still fired.
  std::set<std::string> culprits;
  for (const auto& [path_id, w] : windows) {
    if (w.offered == 0) continue;
    const double drop_fraction =
        static_cast<double>(w.dropped) / static_cast<double>(w.offered);
    if (drop_fraction <= thresholds_.max_drop_fraction) continue;
    const sfc::ChainPolicy* policy = policies_->find(path_id);
    if (policy == nullptr) continue;
    bool upstream_fired = true;  // offered > 0 covers the chain head
    for (const std::string& nf : policy->nfs) {
      auto it = delta.find(nf);
      if (it == delta.end()) continue;  // ungated: no signal
      if (it->second == 0 && upstream_fired) {
        culprits.insert(nf);
        break;
      }
      upstream_fired = it->second > 0;
    }
  }

  for (auto& [nf, h] : health_) {
    if (culprits.count(nf) > 0) {
      ++h.suspect_windows;
    } else {
      h.suspect_windows = 0;
    }
    h.unhealthy = h.suspect_windows >= thresholds_.sustained_windows;
  }
}

std::vector<std::string> HealthMonitor::unhealthy() const {
  std::vector<std::string> out;
  for (const auto& [nf, h] : health_) {
    if (h.unhealthy) out.push_back(nf);
  }
  return out;
}

std::string RepairReport::to_string() const {
  std::string s = "repair " + strategy + " " + nf + ": ";
  s += succeeded ? "succeeded" : (attempted ? "failed" : "refused");
  s += " (removed " + std::to_string(rules_removed) + ", installed " +
       std::to_string(rules_installed) + " rules";
  if (attempted) {
    s += std::string(", verify ") + (verify_ok ? "ok" : "FAILED");
    s += std::string(", explore ") + (explore_ok ? "ok" : "FAILED");
  }
  s += ")";
  if (!error.empty()) s += " error: " + error;
  return s;
}

Snapshot nf_state_snapshot(sim::DataPlane& dp) {
  Snapshot snap = take_snapshot(dp);
  std::erase_if(snap.tables, [](const Snapshot::TableState& t) {
    return compile::is_framework_table(t.table);
  });
  return snap;
}

ChainRepair::ChainRepair(Deployment& deployment, RepairPolicy policy)
    : deployment_(&deployment), policy_(std::move(policy)) {}

std::string ChainRepair::bypass_policies(const std::string& nf,
                                         sfc::PolicySet& out) const {
  if (policy_.never_bypass.count(nf) > 0) {
    return "policy forbids bypassing " + nf;
  }
  bool used = false;
  for (const sfc::ChainPolicy& p : deployment_->policies().policies()) {
    sfc::ChainPolicy reduced = p;
    auto it = std::find(reduced.nfs.begin(), reduced.nfs.end(), nf);
    if (it != reduced.nfs.end()) {
      used = true;
      if (it + 1 == reduced.nfs.end()) {
        // The terminal NF (e.g. the Router) pops the SFC header and
        // picks the exit port; a chain without it strands its packets.
        return "cannot bypass terminal NF " + nf + " of path " +
               std::to_string(p.path_id);
      }
      reduced.nfs.erase(it);
      if (reduced.nfs.empty()) {
        return "bypassing " + nf + " would empty path " +
               std::to_string(p.path_id);
      }
    }
    out.add(std::move(reduced));
  }
  if (!used) return nf + " is not part of any chain";
  return "";
}

RepairReport ChainRepair::bypass(const std::string& nf,
                                 sim::FaultInjector* injector,
                                 DrainPump pump) {
  RepairReport report;
  report.nf = nf;
  report.strategy = "bypass";

  sfc::PolicySet reduced;
  report.error = bypass_policies(nf, reduced);
  if (!report.error.empty()) return report;

  sim::DataPlane& live = deployment_->dataplane();
  route::RoutingPlan plan = route::build_routing(
      reduced, deployment_->placement(), live.config());
  if (!plan.feasible) {
    report.error = "rerouted plan infeasible: " + plan.infeasible_reason;
    return report;
  }

  RuleDiff diff = routing_rule_diff(deployment_->routing(), plan, live);
  report.rules_installed = diff.installs();
  report.rules_removed = diff.removals();
  report.attempted = true;

  if (policy_.run_gates) {
    // Stage the repaired ruleset on a scratch switch: same program,
    // current live state, candidate diff applied — then prove it.
    sim::DataPlane staging(deployment_->program(), deployment_->ids(),
                           live.config());
    restore_snapshot(take_snapshot(live), staging);
    Transaction stage_txn(staging);
    fill_transaction(stage_txn, diff);
    Transaction::Result staged = stage_txn.commit();
    if (!staged.committed) {
      report.error = "staging failed: " + staged.error;
      return report;
    }
    verify::VerifyInput vin;
    vin.program = &deployment_->program();
    vin.ids = &deployment_->ids();
    vin.placement = &deployment_->placement();
    vin.policies = &reduced;
    vin.config = &live.config();
    vin.routing = &plan;
    verify::Report vreport = verify::run_all(vin);
    report.verify_ok = vreport.ok();
    explore::ExploreResult explored =
        explore::run(staging, reduced, policy_.explore_options);
    report.explore_ok = explored.report.ok();
    if (!report.verify_ok || !report.explore_ok) {
      report.error = "repair gates rejected the candidate ruleset";
      if (!report.verify_ok) report.error += "\n" + vreport.to_string();
      if (!report.explore_ok) {
        report.error += "\n" + explored.report.to_string();
      }
      return report;
    }
  }

  if (policy_.hitless) {
    // Two-phase hitless swap: in-flight packets (punted before the
    // repair, reinjected after) finish on the pre-repair generation.
    // The repair-wide retry budget governs the shadow transaction.
    LiveUpdateOptions update_options = policy_.update;
    update_options.retry = policy_.retry;
    LiveUpdate update(live, policy_.journal, update_options);
    report.update = update.run(diff, injector, std::move(pump));
    report.txn = report.update.shadow;
    if (!report.update.committed) {
      report.error = report.update.rolled_back
                         ? "hitless swap failed (rolled back): " +
                               report.update.error
                         : "hitless swap failed: " + report.update.error;
      return report;
    }
  } else {
    Transaction txn(live, policy_.retry, injector);
    fill_transaction(txn, diff);
    report.txn = txn.commit();
    if (!report.txn.committed) {
      report.error = "commit failed (rolled back): " + report.txn.error;
      return report;
    }
  }
  deployment_->apply_repair(std::move(reduced), std::move(plan));
  report.succeeded = true;
  return report;
}

ChainRepair::Replacement ChainRepair::replace(const std::string& nf) {
  Replacement result;
  RepairReport& report = result.report;
  report.nf = nf;
  report.strategy = "replace";

  sfc::PolicySet reduced;
  report.error = bypass_policies(nf, reduced);
  if (!report.error.empty()) return result;
  report.attempted = true;

  // Rebuild with the failed NF's program dropped and the optimizer
  // free to re-place (and re-route recirculations for) the survivors.
  std::vector<p4ir::Program> programs;
  for (const p4ir::Program& p : deployment_->nf_programs()) {
    if (p.name() != nf) programs.push_back(p);
  }
  DeploymentOptions options;
  options.verify = policy_.run_gates;
  try {
    result.deployment = Deployment::build(
        std::move(programs), reduced, deployment_->dataplane().config(),
        deployment_->ids(), std::move(options));
  } catch (const std::exception& e) {
    report.error = std::string("rebuild failed: ") + e.what();
    return result;
  }
  report.verify_ok = result.deployment->verification().ok();

  // Migrate surviving NF state (framework rules are freshly derived;
  // the failed NF's tables no longer exist and are filtered out).
  Snapshot snap = nf_state_snapshot(deployment_->dataplane());
  const std::string prefix = nf + ".";
  std::erase_if(snap.tables, [&prefix](const Snapshot::TableState& t) {
    return t.table.rfind(prefix, 0) == 0;
  });
  std::erase_if(snap.registers, [&prefix](const Snapshot::RegisterState& r) {
    return r.name.rfind(prefix, 0) == 0;
  });
  restore_snapshot(snap, result.deployment->dataplane());

  // Generation continuity: the rebuilt switch opens one epoch past the
  // deployment it replaces, so any packet still carrying an old stamp
  // at cutover drains instead of blending generations.
  const std::uint32_t old_epoch = deployment_->dataplane().epoch();
  result.deployment->dataplane().set_epoch(old_epoch + 1);
  result.deployment->dataplane().set_min_live_epoch(old_epoch + 1);
  if (policy_.journal != nullptr) {
    const std::uint64_t id =
        policy_.journal->begin(old_epoch, old_epoch + 1, RuleDiff{});
    policy_.journal->append(id, JournalState::kCommitted,
                            "replace " + nf + ": cutover to rebuilt deployment");
  }

  if (policy_.run_gates) {
    const explore::ExploreResult& explored =
        result.deployment->run_explorer(policy_.explore_options);
    report.explore_ok = explored.report.ok();
    if (!report.explore_ok) {
      report.error = "explorer rejected the rebuilt deployment\n" +
                     explored.report.to_string();
      result.deployment.reset();
      return result;
    }
  }
  report.succeeded = true;
  return result;
}

}  // namespace dejavu::control
