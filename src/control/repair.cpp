#include "control/repair.hpp"

#include <algorithm>

#include "compile/report.hpp"
#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "route/routing.hpp"
#include "verify/verify.hpp"

namespace dejavu::control {

HealthMonitor::HealthMonitor(sim::DataPlane& dp,
                             const sfc::PolicySet& policies,
                             HealthThresholds thresholds)
    : dp_(&dp), policies_(&policies), thresholds_(thresholds) {
  reset();
}

std::optional<std::uint64_t> HealthMonitor::gate_hits(
    const std::string& nf) const {
  auto tables = dp_->tables_named(merge::check_next_nf_table(nf));
  if (tables.empty()) return std::nullopt;  // ungated (entry NF)
  std::uint64_t hits = 0;
  for (const sim::RuntimeTable* t : tables) hits += t->hits();
  return hits;
}

void HealthMonitor::reset() {
  health_.clear();
  last_hits_.clear();
  windows_observed_ = 0;
  for (const std::string& nf : policies_->all_nfs()) {
    if (auto hits = gate_hits(nf)) last_hits_[nf] = *hits;
  }
}

void HealthMonitor::observe(
    const std::map<std::uint16_t, PathWindow>& windows) {
  ++windows_observed_;
  // Current gate deltas for every observable NF.
  std::map<std::string, std::uint64_t> delta;
  for (const std::string& nf : policies_->all_nfs()) {
    auto hits = gate_hits(nf);
    if (!hits) continue;
    delta[nf] = *hits - last_hits_[nf];
    last_hits_[nf] = *hits;
    NfHealth& h = health_[nf];
    h.nf = nf;
    h.gate_delta = delta[nf];
  }

  std::uint64_t offered_total = 0;
  for (const auto& [path_id, w] : windows) offered_total += w.offered;
  if (offered_total < thresholds_.min_window_packets) return;

  // Per suffering path, the culprit is the first NF (chain order)
  // whose gate went silent while everything before it still fired.
  std::set<std::string> culprits;
  for (const auto& [path_id, w] : windows) {
    if (w.offered == 0) continue;
    const double drop_fraction =
        static_cast<double>(w.dropped) / static_cast<double>(w.offered);
    if (drop_fraction <= thresholds_.max_drop_fraction) continue;
    const sfc::ChainPolicy* policy = policies_->find(path_id);
    if (policy == nullptr) continue;
    bool upstream_fired = true;  // offered > 0 covers the chain head
    for (const std::string& nf : policy->nfs) {
      auto it = delta.find(nf);
      if (it == delta.end()) continue;  // ungated: no signal
      if (it->second == 0 && upstream_fired) {
        culprits.insert(nf);
        break;
      }
      upstream_fired = it->second > 0;
    }
  }

  for (auto& [nf, h] : health_) {
    if (culprits.count(nf) > 0) {
      ++h.suspect_windows;
    } else {
      h.suspect_windows = 0;
    }
    h.unhealthy = h.suspect_windows >= thresholds_.sustained_windows;
  }
}

std::vector<std::string> HealthMonitor::unhealthy() const {
  std::vector<std::string> out;
  for (const auto& [nf, h] : health_) {
    if (h.unhealthy) out.push_back(nf);
  }
  return out;
}

std::string RepairReport::to_string() const {
  std::string s = "repair " + strategy + " " + nf + ": ";
  s += succeeded ? "succeeded" : (attempted ? "failed" : "refused");
  s += " (removed " + std::to_string(rules_removed) + ", installed " +
       std::to_string(rules_installed) + " rules";
  if (attempted) {
    s += std::string(", verify ") + (verify_ok ? "ok" : "FAILED");
    s += std::string(", explore ") + (explore_ok ? "ok" : "FAILED");
  }
  s += ")";
  if (!error.empty()) s += " error: " + error;
  return s;
}

Snapshot nf_state_snapshot(sim::DataPlane& dp) {
  Snapshot snap = take_snapshot(dp);
  std::erase_if(snap.tables, [](const Snapshot::TableState& t) {
    return compile::is_framework_table(t.table);
  });
  return snap;
}

ChainRepair::ChainRepair(Deployment& deployment, RepairPolicy policy)
    : deployment_(&deployment), policy_(std::move(policy)) {}

std::string ChainRepair::bypass_policies(const std::string& nf,
                                         sfc::PolicySet& out) const {
  if (policy_.never_bypass.count(nf) > 0) {
    return "policy forbids bypassing " + nf;
  }
  bool used = false;
  for (const sfc::ChainPolicy& p : deployment_->policies().policies()) {
    sfc::ChainPolicy reduced = p;
    auto it = std::find(reduced.nfs.begin(), reduced.nfs.end(), nf);
    if (it != reduced.nfs.end()) {
      used = true;
      if (it + 1 == reduced.nfs.end()) {
        // The terminal NF (e.g. the Router) pops the SFC header and
        // picks the exit port; a chain without it strands its packets.
        return "cannot bypass terminal NF " + nf + " of path " +
               std::to_string(p.path_id);
      }
      reduced.nfs.erase(it);
      if (reduced.nfs.empty()) {
        return "bypassing " + nf + " would empty path " +
               std::to_string(p.path_id);
      }
    }
    out.add(std::move(reduced));
  }
  if (!used) return nf + " is not part of any chain";
  return "";
}

namespace {

/// One rule of the routing diff a bypass swaps in.
struct DiffOp {
  bool install = false;
  std::string control;  // empty: every instance of `table`
  std::string table;
  std::vector<std::uint64_t> key;
  sim::ActionCall action;
};

sim::ActionCall branching_action(const route::BranchingRule& rule) {
  sim::ActionCall call;
  if (rule.kind == route::BranchingRule::Kind::kResubmit) {
    call.action = merge::kActRouteResubmit;
  } else {
    call.action = merge::kActRouteToEgress;
    call.args["port"] = rule.port;
  }
  return call;
}

/// The installable delta between two routing plans: removals first,
/// then installs/overwrites (an entry changing action is one install).
std::vector<DiffOp> routing_diff(const route::RoutingPlan& from,
                                 const route::RoutingPlan& to,
                                 sim::DataPlane& dp) {
  std::vector<DiffOp> diff;
  using BranchKey = std::tuple<std::string, std::uint16_t, std::uint8_t>;
  std::map<BranchKey, sim::ActionCall> old_branch;
  std::map<BranchKey, sim::ActionCall> new_branch;
  for (const route::BranchingRule& r : from.branching) {
    old_branch[{merge::pipelet_control_name(r.pipelet), r.path_id,
                r.service_index}] = branching_action(r);
  }
  for (const route::BranchingRule& r : to.branching) {
    new_branch[{merge::pipelet_control_name(r.pipelet), r.path_id,
                r.service_index}] = branching_action(r);
  }
  for (const auto& entry : old_branch) {
    const BranchKey& key = entry.first;
    if (new_branch.count(key) == 0) {
      DiffOp op;
      op.control = std::get<0>(key);
      op.table = merge::kBranchingTable;
      op.key = {std::get<1>(key), std::get<2>(key)};
      diff.push_back(std::move(op));
    }
  }
  for (const auto& [key, action] : new_branch) {
    auto it = old_branch.find(key);
    if (it != old_branch.end() && it->second == action) {
      // Both plans agree — but the fault being repaired may have
      // evicted the live entry (that is often the sabotage itself), so
      // only skip when the switch really holds the desired rule.
      sim::RuntimeTable* t =
          dp.table_in(std::get<0>(key), merge::kBranchingTable);
      const sim::RuntimeTable::ExactEntry* live =
          t != nullptr
              ? t->find_exact({std::get<1>(key), std::get<2>(key)})
              : nullptr;
      if (live != nullptr && live->action == action) continue;
    }
    DiffOp op;
    op.install = true;
    op.control = std::get<0>(key);
    op.table = merge::kBranchingTable;
    op.key = {std::get<1>(key), std::get<2>(key)};
    op.action = action;
    diff.push_back(std::move(op));
  }

  // Check-gate entries: keyed {path, index, toCpu=0, drop=0} in the
  // NF's check table. NFs without a check table (the entry NF) have
  // no installable gate — skip, matching install_routing.
  auto check_key = [](const route::CheckRule& r) {
    return std::vector<std::uint64_t>{r.path_id, r.service_index, 0, 0};
  };
  auto has_gate = [&dp](const std::string& nf) {
    return !dp.tables_named(merge::check_next_nf_table(nf)).empty();
  };
  std::set<std::tuple<std::string, std::uint16_t, std::uint8_t>> old_checks;
  std::set<std::tuple<std::string, std::uint16_t, std::uint8_t>> new_checks;
  for (const route::CheckRule& r : from.checks) {
    old_checks.insert({r.nf, r.path_id, r.service_index});
  }
  for (const route::CheckRule& r : to.checks) {
    new_checks.insert({r.nf, r.path_id, r.service_index});
  }
  for (const route::CheckRule& r : from.checks) {
    if (new_checks.count({r.nf, r.path_id, r.service_index}) > 0) continue;
    if (!has_gate(r.nf)) continue;
    DiffOp op;
    op.table = merge::check_next_nf_table(r.nf);
    op.key = check_key(r);
    diff.push_back(std::move(op));
  }
  for (const route::CheckRule& r : to.checks) {
    if (old_checks.count({r.nf, r.path_id, r.service_index}) > 0) {
      // Same live-existence caveat as branching entries above.
      bool live_everywhere = true;
      for (sim::RuntimeTable* t :
           dp.tables_named(merge::check_next_nf_table(r.nf))) {
        live_everywhere &= t->find_exact(check_key(r)) != nullptr;
      }
      if (live_everywhere) continue;
    }
    if (!has_gate(r.nf)) continue;
    DiffOp op;
    op.install = true;
    op.table = merge::check_next_nf_table(r.nf);
    op.key = check_key(r);
    op.action = sim::ActionCall{merge::check_hit_action(r.nf), {}};
    diff.push_back(std::move(op));
  }

  // Planned removals may already be gone from the live switch (the
  // very fault being repaired can have evicted them); removing a
  // phantom entry would fail the whole transaction, so drop those.
  std::erase_if(diff, [&dp](const DiffOp& op) {
    if (op.install) return false;
    if (!op.control.empty()) {
      sim::RuntimeTable* t = dp.table_in(op.control, op.table);
      return t == nullptr || t->find_exact(op.key) == nullptr;
    }
    for (sim::RuntimeTable* t : dp.tables_named(op.table)) {
      if (t->find_exact(op.key) != nullptr) return false;
    }
    return true;
  });
  return diff;
}

void fill_transaction(Transaction& txn, const std::vector<DiffOp>& diff) {
  // Removals first: an overwrite-install of a key another rule is
  // about to vacate must not race the capacity check.
  for (const DiffOp& op : diff) {
    if (op.install) continue;
    if (op.control.empty()) {
      txn.remove_exact(op.table, op.key);
    } else {
      txn.remove_exact_in(op.control, op.table, op.key);
    }
  }
  for (const DiffOp& op : diff) {
    if (!op.install) continue;
    if (op.control.empty()) {
      txn.install_exact(op.table, op.key, op.action);
    } else {
      txn.install_exact_in(op.control, op.table, op.key, op.action);
    }
  }
}

}  // namespace

RepairReport ChainRepair::bypass(const std::string& nf,
                                 sim::FaultInjector* injector) {
  RepairReport report;
  report.nf = nf;
  report.strategy = "bypass";

  sfc::PolicySet reduced;
  report.error = bypass_policies(nf, reduced);
  if (!report.error.empty()) return report;

  sim::DataPlane& live = deployment_->dataplane();
  route::RoutingPlan plan = route::build_routing(
      reduced, deployment_->placement(), live.config());
  if (!plan.feasible) {
    report.error = "rerouted plan infeasible: " + plan.infeasible_reason;
    return report;
  }

  std::vector<DiffOp> diff =
      routing_diff(deployment_->routing(), plan, live);
  for (const DiffOp& op : diff) {
    (op.install ? report.rules_installed : report.rules_removed) += 1;
  }
  report.attempted = true;

  if (policy_.run_gates) {
    // Stage the repaired ruleset on a scratch switch: same program,
    // current live state, candidate diff applied — then prove it.
    sim::DataPlane staging(deployment_->program(), deployment_->ids(),
                           live.config());
    restore_snapshot(take_snapshot(live), staging);
    Transaction stage_txn(staging);
    fill_transaction(stage_txn, diff);
    Transaction::Result staged = stage_txn.commit();
    if (!staged.committed) {
      report.error = "staging failed: " + staged.error;
      return report;
    }
    verify::VerifyInput vin;
    vin.program = &deployment_->program();
    vin.ids = &deployment_->ids();
    vin.placement = &deployment_->placement();
    vin.policies = &reduced;
    vin.config = &live.config();
    vin.routing = &plan;
    verify::Report vreport = verify::run_all(vin);
    report.verify_ok = vreport.ok();
    explore::ExploreResult explored =
        explore::run(staging, reduced, policy_.explore_options);
    report.explore_ok = explored.report.ok();
    if (!report.verify_ok || !report.explore_ok) {
      report.error = "repair gates rejected the candidate ruleset";
      if (!report.verify_ok) report.error += "\n" + vreport.to_string();
      if (!report.explore_ok) {
        report.error += "\n" + explored.report.to_string();
      }
      return report;
    }
  }

  Transaction txn(live, policy_.retry, injector);
  fill_transaction(txn, diff);
  report.txn = txn.commit();
  if (!report.txn.committed) {
    report.error = "commit failed (rolled back): " + report.txn.error;
    return report;
  }
  deployment_->apply_repair(std::move(reduced), std::move(plan));
  report.succeeded = true;
  return report;
}

ChainRepair::Replacement ChainRepair::replace(const std::string& nf) {
  Replacement result;
  RepairReport& report = result.report;
  report.nf = nf;
  report.strategy = "replace";

  sfc::PolicySet reduced;
  report.error = bypass_policies(nf, reduced);
  if (!report.error.empty()) return result;
  report.attempted = true;

  // Rebuild with the failed NF's program dropped and the optimizer
  // free to re-place (and re-route recirculations for) the survivors.
  std::vector<p4ir::Program> programs;
  for (const p4ir::Program& p : deployment_->nf_programs()) {
    if (p.name() != nf) programs.push_back(p);
  }
  DeploymentOptions options;
  options.verify = policy_.run_gates;
  try {
    result.deployment = Deployment::build(
        std::move(programs), reduced, deployment_->dataplane().config(),
        deployment_->ids(), std::move(options));
  } catch (const std::exception& e) {
    report.error = std::string("rebuild failed: ") + e.what();
    return result;
  }
  report.verify_ok = result.deployment->verification().ok();

  // Migrate surviving NF state (framework rules are freshly derived;
  // the failed NF's tables no longer exist and are filtered out).
  Snapshot snap = nf_state_snapshot(deployment_->dataplane());
  const std::string prefix = nf + ".";
  std::erase_if(snap.tables, [&prefix](const Snapshot::TableState& t) {
    return t.table.rfind(prefix, 0) == 0;
  });
  std::erase_if(snap.registers, [&prefix](const Snapshot::RegisterState& r) {
    return r.name.rfind(prefix, 0) == 0;
  });
  restore_snapshot(snap, result.deployment->dataplane());

  if (policy_.run_gates) {
    const explore::ExploreResult& explored =
        result.deployment->run_explorer(policy_.explore_options);
    report.explore_ok = explored.report.ok();
    if (!report.explore_ok) {
      report.error = "explorer rejected the rebuilt deployment\n" +
                     explored.report.to_string();
      result.deployment.reset();
      return result;
    }
  }
  report.succeeded = true;
  return result;
}

}  // namespace dejavu::control
