// Replay targets backed by full Deployments: each replay worker gets
// its own private Fig. 2 / Fig. 9 switch replica — composed program,
// installed rules, and (optionally) a control plane servicing LB
// session punts, so replayed traffic exercises the Fig. 4 slow path
// exactly as dejavu_cli's `send` does.
#pragma once

#include "control/deployment.hpp"
#include "sim/replay.hpp"

namespace dejavu::control {

/// A worker-private deployment. With `service_punts` (default) packets
/// are injected through the control plane, which learns LB sessions
/// and reinjects; without it, packets meet the bare data plane and
/// session misses stay punted.
class DeploymentTarget : public sim::ReplayTarget {
 public:
  explicit DeploymentTarget(Fig2Deployment fx, bool service_punts = true)
      : fx_(std::move(fx)), service_punts_(service_punts) {}

  sim::SwitchOutput inject(net::Packet packet, std::uint16_t in_port) override;
  sim::DataPlane& dataplane() override { return fx_.deployment->dataplane(); }

  /// kCompiled lowers the deployed chain, seeded from the deployment's
  /// explorer path equivalence classes (run lazily on first switch).
  /// First-pass punts still traverse the control plane's interpreter
  /// slow path — exactly the Fig. 4 division of labor.
  void set_engine(sim::EngineKind kind) override;
  sim::EngineKind engine() const override { return engine_; }
  std::uint64_t compiled_packets() const override;
  std::uint64_t fallback_packets() const override;

  /// The live compiled engine, or nullptr while on the interpreter.
  sim::CompiledPipeline* compiled() { return compiled_.get(); }

  Fig2Deployment& fixture() { return fx_; }

 private:
  Fig2Deployment fx_;
  bool service_punts_;
  std::unique_ptr<sim::CompiledPipeline> compiled_;
  sim::EngineKind engine_ = sim::EngineKind::kInterpreter;
};

/// Factory building one private Fig. 2 deployment per worker (pinned
/// to the Fig. 9 prototype placement when `fig9`, which also skips the
/// placement optimizer — the right default for replay setup cost).
sim::TargetFactory fig2_replay_factory(bool fig9 = true,
                                       bool service_punts = true);

/// The canonical replay workload for the Fig. 2 deployment: flows
/// split across the three paths in the policy weights' 50/30/20
/// proportions, aimed at destinations each path's rules service
/// (path 1: the tenant VIP, path 2: the virtualized-only VIP,
/// path 3: plain routed space), entering on the sender port.
std::vector<sim::ReplayFlow> fig2_replay_flows(std::uint32_t total_flows,
                                               std::uint64_t seed = 1);

}  // namespace dejavu::control
