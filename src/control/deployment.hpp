// Deployment: the one-call orchestration of the whole Dejavu flow —
//
//   NF programs  --merge-->  composed multi-pipelet program
//   policies     --place-->  placement (optimized or given)
//   program      --compile-> per-pipelet stage allocations (+ Table 1)
//   placement    --route-->  branching / check rules
//   everything   --sim---->  a running data plane + control plane
//
// This is the facade example code and benchmarks build on.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asic/switch_config.hpp"
#include "compile/allocator.hpp"
#include "compile/report.hpp"
#include "control/control_plane.hpp"
#include "explore/explorer.hpp"
#include "merge/compose.hpp"
#include "place/optimizer.hpp"
#include "route/routing.hpp"
#include "sim/dataplane.hpp"
#include "verify/verify.hpp"

namespace dejavu::control {

struct DeploymentOptions {
  /// Use this placement instead of optimizing.
  std::optional<place::Placement> placement;
  /// Optimizer when no placement is given: exhaustive for small NF
  /// counts, annealing beyond this threshold.
  std::size_t exhaustive_limit = 8;
  place::StageModel stage_model;
  std::string program_name = "dejavu_sfc";
  /// Fail the build (std::runtime_error) when the chain verifier finds
  /// error-severity problems. The report is produced and retained
  /// either way — set false to inspect a broken deployment's findings
  /// via verification() (what `dejavu_cli lint` does).
  bool verify = true;
  /// Run the symbolic packet-path explorer right after bring-up and
  /// fail the build (std::runtime_error) on error-severity findings.
  /// At build time only the framework rules are installed, so this
  /// checks the routing skeleton; after installing NF rules, call
  /// run_explorer() to verify the deployment the packets actually see.
  bool explore = false;
  explore::ExploreOptions explore_options;
};

class Deployment {
 public:
  /// Build and validate a full deployment. Throws std::runtime_error
  /// when placement is infeasible or a pipelet program does not fit
  /// its stage ladder.
  static std::unique_ptr<Deployment> build(
      std::vector<p4ir::Program> nf_programs, sfc::PolicySet policies,
      asic::SwitchConfig config, p4ir::TupleIdTable ids,
      DeploymentOptions options = {});

  const p4ir::Program& program() const { return *program_; }
  const place::Placement& placement() const { return placement_; }
  const route::RoutingPlan& routing() const { return routing_; }
  const std::vector<compile::Allocation>& allocations() const {
    return allocations_;
  }
  const sfc::PolicySet& policies() const { return policies_; }
  const p4ir::TupleIdTable& ids() const { return ids_; }
  /// The NF source programs the deployment was composed from (a
  /// re-placement repair rebuilds from these).
  const std::vector<p4ir::Program>& nf_programs() const {
    return nf_programs_;
  }

  /// Adopt the policy/routing view a committed repair produced. Does
  /// not touch the data plane: the caller has already installed the
  /// rule diff through a Transaction. Keeps the control plane's punt
  /// steering consistent with the new chains.
  void apply_repair(sfc::PolicySet policies, route::RoutingPlan routing);

  /// The chain verifier's report for this deployment (always populated,
  /// even when DeploymentOptions::verify is false).
  const verify::Report& verification() const { return verification_; }

  /// Run the symbolic packet-path explorer against the data plane's
  /// *currently installed* rules (framework + whatever NF rules the
  /// control plane has added so far) and retain the result. The DV-S
  /// report includes the differential cross-check against a concrete
  /// replay of every witness packet.
  const explore::ExploreResult& run_explorer(
      const explore::ExploreOptions& options = {});
  /// The most recent run_explorer() result (empty until then).
  const explore::ExploreResult& exploration() const { return exploration_; }

  sim::DataPlane& dataplane() { return *dataplane_; }
  ControlPlane& control() { return *control_; }

  /// Resource usage of the Dejavu framework tables only (Table 1).
  compile::ResourceReport framework_report() const;
  /// Resource usage of everything deployed.
  compile::ResourceReport total_report() const;

 private:
  Deployment() = default;

  std::vector<p4ir::Program> nf_programs_;
  sfc::PolicySet policies_;
  p4ir::TupleIdTable ids_;
  asic::TargetSpec spec_;
  place::Placement placement_;
  std::unique_ptr<p4ir::Program> program_;
  std::vector<compile::Allocation> allocations_;
  route::RoutingPlan routing_;
  verify::Report verification_;
  explore::ExploreResult exploration_;
  std::unique_ptr<sim::DataPlane> dataplane_;
  std::unique_ptr<ControlPlane> control_;
};

/// Convenience: the full Fig. 2 edge-cloud deployment on the paper's
/// testbed profile — 5 NFs, 3 policies, pipeline 1 in loopback mode
/// (§5), sensible default rules (traffic classes, permissive FW for
/// the classes, VGW mappings, routes, LB pool).
struct Fig2Deployment {
  std::unique_ptr<Deployment> deployment;
  sfc::PolicySet policies;

  /// Ports used by the canonical setup.
  static constexpr std::uint16_t kSenderPort = 0;
  static constexpr std::uint16_t kReceiverPort = 1;
};

/// `placement`: use this placement instead of letting the optimizer
/// choose (nullopt = optimize). `options.placement` is overwritten by
/// the `placement` argument; the other options pass through (lint uses
/// `options.verify = false` to report findings instead of throwing).
Fig2Deployment make_fig2_deployment(
    std::optional<place::Placement> placement = std::nullopt,
    DeploymentOptions options = {});

/// The paper's §5/Fig. 9 prototype layout on 2 pipelines / 4 pipelets:
/// Classifier+FW on ingress 0, VGW on egress 1, LB on ingress 1,
/// Router on egress 0 — every path recirculates at most once through
/// the all-loopback pipeline 1. (Our optimizer actually finds a
/// 0-recirculation packing for Fig. 2; this layout exists to reproduce
/// the published prototype's numbers.)
place::Placement fig9_placement();

/// Fig. 2 deployment pinned to the Fig. 9 layout.
inline Fig2Deployment make_fig9_deployment(DeploymentOptions options = {}) {
  return make_fig2_deployment(fig9_placement(), std::move(options));
}

}  // namespace dejavu::control
