// The chaos driver: replay randomized-but-replayable fault schedules
// through the multi-worker replay engine and assert the standing
// invariants — no packet corruption, no forwarding loops, every drop
// carries a DropCode — then (optionally) run the full failure drill:
// sabotage one NF, detect it from gate telemetry, repair around it
// (bypass or re-placement) with fault-injected transactional writes,
// and measure packets-to-detection / packets-to-recovery.
//
// Everything is a pure function of the seed: the fault plan, the
// victim choice, the flow set, and — because packet-lane faults are
// flow-local — the merged counters, bit-identical across 1/2/8
// workers. `dejavu_cli chaos` is a thin wrapper over run_chaos.
#pragma once

#include <cstdint>
#include <string>

#include "control/repair.hpp"
#include "sim/fault.hpp"
#include "sim/replay.hpp"

namespace dejavu::control {

struct ChaosOptions {
  std::uint64_t seed = 1;
  /// Named fault schedule: none | writes | evictions | recirc | mixed.
  std::string schedule = "mixed";
  std::uint32_t workers = 2;
  std::uint32_t flows = 60;
  std::uint32_t packets_per_flow = 16;
  /// Pin the Fig. 9 prototype placement (false: let the optimizer
  /// place, as `--target fig2`).
  bool fig9 = true;
  /// Repair drill strategy: bypass | replace | none.
  std::string repair = "bypass";
  /// Run the live-update drill (phase 3): a two-phase hitless update
  /// with write-lane faults and a seed-chosen controller crash inside
  /// the update window, followed by journal-driven recovery.
  bool update_drill = true;
};

/// The profile behind a named schedule; throws std::invalid_argument
/// for unknown names.
sim::FaultProfile profile_for_schedule(const std::string& name);

struct ChaosResult {
  ChaosOptions options;
  sim::FaultPlan plan;

  // --- phase 1: faulted parallel replay ---
  sim::ReplayReport replay;
  sim::InvariantViolations violations;
  std::map<std::string, std::uint64_t> faults_applied;

  // --- phase 2: failure drill (skipped when repair == "none") ---
  bool drill_run = false;
  std::string victim_nf;
  std::uint64_t packets_to_detect = 0;
  std::uint64_t packets_to_recover = 0;
  double delivery_before = 0.0;
  double delivery_faulted = 0.0;
  double delivery_recovered = 0.0;
  RepairReport repair_report;

  // --- phase 3: live-update drill (crash inside the update window) ---
  struct UpdateDrill {
    bool run = false;
    std::string victim_nf;    ///< NF whose bypass diff drives the update
    std::string crash_point;  ///< none | shadow | flip | drain (seed-chosen)
    UpdateReport update;
    RecoveryReport recovery;
    /// The post-recovery switch state is byte-identical
    /// (Snapshot::to_text) to the pre-update snapshot (rolled back) or
    /// to the same update applied cleanly on a scratch switch
    /// (completed) — never a mixed-generation blend.
    bool consistent = false;
    std::string outcome;  ///< committed | recovered-forward | rolled-back
  };
  UpdateDrill update_drill;

  std::string error;

  /// All invariants held, and (when the drill ran) the repair landed
  /// and throughput recovered to at least 95% of the pre-fault level.
  bool ok() const;
  std::string to_string() const;
  std::string to_json() const;
};

ChaosResult run_chaos(const ChaosOptions& options);

}  // namespace dejavu::control
