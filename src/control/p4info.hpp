// P4Runtime-style pipeline description ("p4info"): a machine-readable
// JSON summary of every table, key, action, parameter, and register in
// a composed program, with stable numeric IDs. This is what a real
// control plane consumes to program a deployed pipeline, and what the
// §7 "control plane merge" translation layer would map original NF
// control APIs onto.
#pragma once

#include <string>

#include "p4ir/program.hpp"

namespace dejavu::control {

/// Serialize the program's control-plane surface as JSON. IDs are
/// stable across runs (derived from declaration order), making the
/// output diffable between deployments.
std::string p4info_json(const p4ir::Program& program);

}  // namespace dejavu::control
