#include "control/deployment.hpp"

#include <stdexcept>

#include "nf/nfs.hpp"
#include "p4ir/deps.hpp"

namespace dejavu::control {

std::unique_ptr<Deployment> Deployment::build(
    std::vector<p4ir::Program> nf_programs, sfc::PolicySet policies,
    asic::SwitchConfig config, p4ir::TupleIdTable ids,
    DeploymentOptions options) {
  auto d = std::unique_ptr<Deployment>(new Deployment());
  d->nf_programs_ = std::move(nf_programs);
  d->policies_ = std::move(policies);
  d->ids_ = std::move(ids);
  d->spec_ = config.spec();

  // Every NF the policies reference must have a program.
  auto find_program = [&](const std::string& nf) -> const p4ir::Program* {
    for (const p4ir::Program& p : d->nf_programs_) {
      if (p.annotation("nf").value_or(p.name()) == nf) return &p;
    }
    return nullptr;
  };
  for (const std::string& nf : d->policies_.all_nfs()) {
    if (find_program(nf) == nullptr) {
      throw std::runtime_error("no NF program supplied for '" + nf + "'");
    }
  }

  // --- placement ---
  const place::TraversalEnv env = route::env_for(config);
  if (options.placement) {
    d->placement_ = std::move(*options.placement);
    double cost = place::placement_cost(d->policies_, d->placement_,
                                        d->spec_, env, options.stage_model);
    if (cost >= place::kInfeasibleCost) {
      throw std::runtime_error("supplied placement is infeasible: " +
                               d->placement_.to_string());
    }
  } else {
    place::OptimizeResult result;
    if (d->policies_.all_nfs().size() <= options.exhaustive_limit) {
      result = place::exhaustive_optimize(d->policies_, d->spec_, env,
                                          options.stage_model);
    } else {
      result = place::anneal_optimize(d->policies_, d->spec_, env,
                                      options.stage_model);
    }
    if (!result.feasible) {
      throw std::runtime_error("placement optimization found no feasible "
                               "placement");
    }
    d->placement_ = std::move(result.placement);
  }

  // --- merge / compose ---
  std::vector<const p4ir::Program*> nf_ptrs;
  for (const p4ir::Program& p : d->nf_programs_) nf_ptrs.push_back(&p);
  d->program_ = std::make_unique<p4ir::Program>(merge::compose_program(
      options.program_name, nf_ptrs, d->placement_.assignments(),
      d->spec_.pipelines, d->ids_));
  std::string why;
  if (!d->program_->validate(d->ids_, &why)) {
    throw std::runtime_error("composed program invalid: " + why);
  }

  // Dependency graphs feed both the verifier and the stage allocator,
  // so the verifier checks exactly what gets compiled.
  const std::vector<p4ir::DependencyGraph> graphs =
      verify::dependency_graphs(*d->program_);

  // --- route ---
  d->routing_ = route::build_routing(d->policies_, d->placement_, config);
  if (!d->routing_.feasible) {
    throw std::runtime_error("routing infeasible: " +
                             d->routing_.infeasible_reason);
  }

  // --- verify: fail fast with named diagnostics before bring-up ---
  verify::VerifyInput vin;
  vin.program = d->program_.get();
  vin.ids = &d->ids_;
  for (const p4ir::Program& p : d->nf_programs_) {
    vin.nf_programs.push_back(&p);
  }
  vin.dep_graphs = &graphs;
  vin.placement = &d->placement_;
  vin.policies = &d->policies_;
  vin.config = &config;
  vin.routing = &d->routing_;
  d->verification_ = verify::run_all(vin);
  if (options.verify && !d->verification_.ok()) {
    throw std::runtime_error("chain verifier rejected the deployment:\n" +
                             d->verification_.to_string());
  }

  // --- compile: per-pipelet stage allocation ---
  for (std::size_t i = 0; i < d->program_->controls().size(); ++i) {
    const p4ir::ControlBlock& control = d->program_->controls()[i];
    compile::Allocation alloc = compile::allocate(graphs[i], d->spec_);
    if (!alloc.ok) {
      throw std::runtime_error("pipelet '" + control.name() +
                               "' does not fit: " + alloc.error);
    }
    d->allocations_.push_back(std::move(alloc));
  }

  // --- bring up the data plane + control plane ---
  d->dataplane_ = std::make_unique<sim::DataPlane>(*d->program_, d->ids_,
                                                   std::move(config));
  d->control_ = std::make_unique<ControlPlane>(*d->dataplane_, d->policies_);
  d->control_->install_routing(d->routing_);

  if (options.explore) {
    const explore::ExploreResult& result =
        d->run_explorer(options.explore_options);
    if (!result.report.ok()) {
      throw std::runtime_error("symbolic explorer rejected the deployment:\n" +
                               result.report.to_string());
    }
  }
  return d;
}

const explore::ExploreResult& Deployment::run_explorer(
    const explore::ExploreOptions& options) {
  exploration_ = explore::run(*dataplane_, policies_, options);
  return exploration_;
}

void Deployment::apply_repair(sfc::PolicySet policies,
                              route::RoutingPlan routing) {
  policies_ = std::move(policies);
  routing_ = std::move(routing);
  control_->set_policies(policies_);
  control_->adopt_routing(routing_);
}

compile::ResourceReport Deployment::framework_report() const {
  return compile::report(allocations_, spec_, compile::is_framework_table);
}

compile::ResourceReport Deployment::total_report() const {
  return compile::report(allocations_, spec_, {});
}

place::Placement fig9_placement() {
  using asic::PipeKind;
  using merge::CompositionKind;
  return place::Placement({
      {{0, PipeKind::kIngress},
       CompositionKind::kSequential,
       {sfc::kClassifier, sfc::kFirewall}},
      {{1, PipeKind::kEgress}, CompositionKind::kSequential, {sfc::kVgw}},
      {{1, PipeKind::kIngress},
       CompositionKind::kSequential,
       {sfc::kLoadBalancer}},
      {{0, PipeKind::kEgress}, CompositionKind::kSequential, {sfc::kRouter}},
  });
}

Fig2Deployment make_fig2_deployment(
    std::optional<place::Placement> placement, DeploymentOptions options) {
  Fig2Deployment result;

  p4ir::TupleIdTable ids;
  std::vector<p4ir::Program> nfs = nf::fig2_nf_programs(ids);

  // Both servers hang off pipeline 0 (pipeline 1 is all-loopback, §5).
  result.policies = sfc::fig2_policies(0.5, 0.3, 0.2,
                                       Fig2Deployment::kSenderPort,
                                       Fig2Deployment::kReceiverPort);

  asic::SwitchConfig config(asic::TargetSpec::tofino32());
  config.set_pipeline_loopback(1);

  options.placement = std::move(placement);
  auto deployment =
      Deployment::build(std::move(nfs), result.policies, std::move(config),
                        std::move(ids), std::move(options));

  ControlPlane& cp = deployment->control();
  // Traffic classes: the three Fig. 2 paths, split by destination
  // prefix. 10.1/16 is tenant VIP space (full chain), 10.2/16 is
  // virtualized-only, 10.3/16 is plain routed traffic.
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.1.0.0/16"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 1,
                        .tenant = 100});
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.2.0.0/16"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 2,
                        .tenant = 200});
  cp.add_traffic_class({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.3.0.0/16"),
                        .protocol = std::nullopt,
                        .priority = 10,
                        .path_id = 3,
                        .tenant = 300});

  // Firewall: permit TCP into the serviced VIP space; default-deny
  // covers the rest.
  cp.add_firewall_rule({.src = *net::Ipv4Prefix::parse("0.0.0.0/0"),
                        .dst = *net::Ipv4Prefix::parse("10.1.0.0/16"),
                        .protocol = net::kIpProtoTcp,
                        .dst_port = std::nullopt,
                        .priority = 10,
                        .permit = true});

  // VGW: tenant VIPs -> physical service addresses.
  cp.add_vgw_mapping({.virtual_ip = net::Ipv4Addr(10, 1, 0, 10),
                      .physical_ip = net::Ipv4Addr(10, 1, 1, 10),
                      .tenant = 100});
  cp.add_vgw_mapping({.virtual_ip = net::Ipv4Addr(10, 2, 0, 20),
                      .physical_ip = net::Ipv4Addr(10, 2, 1, 20),
                      .tenant = 200});

  // LB pool behind the translated service address.
  cp.set_lb_pool({{net::Ipv4Addr(10, 1, 2, 1), net::Ipv4Addr(10, 1, 2, 2)}});

  // Routes: everything toward the receiver server.
  cp.add_route({.prefix = *net::Ipv4Prefix::parse("10.0.0.0/8"),
                .port = Fig2Deployment::kReceiverPort,
                .next_hop_mac = net::MacAddr::from_u64(0x020000000002)});

  result.deployment = std::move(deployment);
  return result;
}

}  // namespace dejavu::control
