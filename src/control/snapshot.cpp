#include "control/snapshot.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace dejavu::control {

std::size_t Snapshot::entry_count() const {
  std::size_t n = 0;
  for (const TableState& t : tables) n += t.exact.size() + t.ternary.size();
  for (const RegisterState& r : registers) n += r.cells.size();
  return n;
}

namespace {

/// " win=from..to" for non-default windows; nothing for [0, open], so
/// snapshots of never-updated deployments keep their old byte layout.
std::string window_suffix(sim::EpochWindow window) {
  if (window.is_default()) return "";
  std::string s = " win=" + std::to_string(window.from) + "..";
  s += window.open() ? "open" : std::to_string(window.to);
  return s;
}

}  // namespace

std::string Snapshot::to_text() const {
  std::string out;
  if (epoch != 0 || min_live_epoch != 0) {
    out += "epoch " + std::to_string(epoch) + " min-live " +
           std::to_string(min_live_epoch) + "\n";
  }
  for (const TableState& t : tables) {
    if (t.exact.empty() && t.ternary.empty()) continue;
    out += "table " + t.control + " " + t.table + "\n";
    // Stable ordering for diffability (versions of one key ordered by
    // window so shadow and retiring generations diff cleanly).
    auto exact = t.exact;
    std::sort(exact.begin(), exact.end(), [](const auto& a, const auto& b) {
      return std::tie(a.key, a.window.from) < std::tie(b.key, b.window.from);
    });
    for (const auto& e : exact) {
      out += "  exact";
      for (auto v : e.key) out += " " + std::to_string(v);
      out += " -> " + e.action.action;
      for (const auto& [param, value] : e.action.args) {
        out += " " + param + "=" + std::to_string(value);
      }
      out += window_suffix(e.window);
      out += "\n";
    }
    for (std::size_t i = 0; i < t.ternary.size(); ++i) {
      const auto& e = t.ternary[i];
      out += "  ternary";
      for (const auto& f : e.key) {
        out += " " + std::to_string(f.value) + "/" + std::to_string(f.mask);
      }
      out += " prio=" + std::to_string(e.priority) + " -> " +
             e.value.action;
      for (const auto& [param, value] : e.value.args) {
        out += " " + param + "=" + std::to_string(value);
      }
      if (i < t.ternary_windows.size()) {
        out += window_suffix(t.ternary_windows[i]);
      }
      out += "\n";
    }
  }
  for (const RegisterState& r : registers) {
    if (r.cells.empty() && r.epoch == 0) continue;
    out += "register " + r.control + " " + r.name;
    if (r.epoch != 0) out += " epoch=" + std::to_string(r.epoch);
    out += "\n";
    for (const auto& [index, value] : r.cells) {
      out += "  [" + std::to_string(index) + "] = " + std::to_string(value) +
             "\n";
    }
  }
  return out;
}

Snapshot take_snapshot(sim::DataPlane& dp) {
  Snapshot snap;
  snap.epoch = dp.epoch();
  snap.min_live_epoch = dp.min_live_epoch();
  for (const p4ir::ControlBlock& control : dp.program().controls()) {
    for (const p4ir::Table& t : control.tables()) {
      sim::RuntimeTable* rt = dp.table_in(control.name(), t.name);
      if (rt == nullptr) continue;
      Snapshot::TableState state;
      state.control = control.name();
      state.table = t.name;
      state.exact = rt->exact_entries();
      state.ternary = rt->ternary_entries();
      state.ternary_windows.reserve(state.ternary.size());
      for (const auto& e : state.ternary) {
        state.ternary_windows.push_back(rt->ternary_window(e.handle));
      }
      snap.tables.push_back(std::move(state));
    }
    for (const p4ir::RegisterDef& r : control.registers()) {
      auto* cells = dp.register_array(control.name(), r.name);
      if (cells == nullptr) continue;
      Snapshot::RegisterState state;
      state.control = control.name();
      state.name = r.name;
      state.epoch = dp.register_epoch(control.name(), r.name);
      for (std::uint64_t i = 0; i < cells->size(); ++i) {
        if ((*cells)[i] != 0) state.cells[i] = (*cells)[i];
      }
      snap.registers.push_back(std::move(state));
    }
  }
  return snap;
}

std::vector<std::string> restore_snapshot(const Snapshot& snapshot,
                                          sim::DataPlane& dp) {
  std::vector<std::string> missing;
  for (const Snapshot::TableState& state : snapshot.tables) {
    sim::RuntimeTable* rt = dp.table_in(state.control, state.table);
    if (rt == nullptr) {
      if (!state.exact.empty() || !state.ternary.empty()) {
        missing.push_back(state.control + "/" + state.table);
      }
      continue;
    }
    rt->clear();
    for (const auto& e : state.exact) rt->add_exact(e.key, e.action, e.window);
    for (std::size_t i = 0; i < state.ternary.size(); ++i) {
      const auto& e = state.ternary[i];
      const sim::EpochWindow window = i < state.ternary_windows.size()
                                          ? state.ternary_windows[i]
                                          : sim::EpochWindow{};
      rt->add_ternary(e.key, e.priority, e.value, window);
    }
  }
  for (const Snapshot::RegisterState& state : snapshot.registers) {
    auto* cells = dp.register_array(state.control, state.name);
    if (cells == nullptr) {
      if (!state.cells.empty()) {
        missing.push_back(state.control + "/" + state.name);
      }
      continue;
    }
    dp.set_register_epoch(state.control, state.name, state.epoch);
    std::fill(cells->begin(), cells->end(), 0);
    for (const auto& [index, value] : state.cells) {
      if (index >= cells->size()) {
        throw std::invalid_argument("register " + state.name +
                                    " shrank below snapshot index " +
                                    std::to_string(index));
      }
      (*cells)[index] = value;
    }
  }
  dp.set_epoch(snapshot.epoch);
  dp.set_min_live_epoch(snapshot.min_live_epoch);
  return missing;
}

}  // namespace dejavu::control
