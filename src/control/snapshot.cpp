#include "control/snapshot.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::control {

std::size_t Snapshot::entry_count() const {
  std::size_t n = 0;
  for (const TableState& t : tables) n += t.exact.size() + t.ternary.size();
  for (const RegisterState& r : registers) n += r.cells.size();
  return n;
}

std::string Snapshot::to_text() const {
  std::string out;
  for (const TableState& t : tables) {
    if (t.exact.empty() && t.ternary.empty()) continue;
    out += "table " + t.control + " " + t.table + "\n";
    // Stable ordering for diffability.
    auto exact = t.exact;
    std::sort(exact.begin(), exact.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    for (const auto& e : exact) {
      out += "  exact";
      for (auto v : e.key) out += " " + std::to_string(v);
      out += " -> " + e.action.action;
      for (const auto& [param, value] : e.action.args) {
        out += " " + param + "=" + std::to_string(value);
      }
      out += "\n";
    }
    for (const auto& e : t.ternary) {
      out += "  ternary";
      for (const auto& f : e.key) {
        out += " " + std::to_string(f.value) + "/" + std::to_string(f.mask);
      }
      out += " prio=" + std::to_string(e.priority) + " -> " +
             e.value.action;
      for (const auto& [param, value] : e.value.args) {
        out += " " + param + "=" + std::to_string(value);
      }
      out += "\n";
    }
  }
  for (const RegisterState& r : registers) {
    if (r.cells.empty()) continue;
    out += "register " + r.control + " " + r.name + "\n";
    for (const auto& [index, value] : r.cells) {
      out += "  [" + std::to_string(index) + "] = " + std::to_string(value) +
             "\n";
    }
  }
  return out;
}

Snapshot take_snapshot(sim::DataPlane& dp) {
  Snapshot snap;
  for (const p4ir::ControlBlock& control : dp.program().controls()) {
    for (const p4ir::Table& t : control.tables()) {
      sim::RuntimeTable* rt = dp.table_in(control.name(), t.name);
      if (rt == nullptr) continue;
      Snapshot::TableState state;
      state.control = control.name();
      state.table = t.name;
      state.exact = rt->exact_entries();
      state.ternary = rt->ternary_entries();
      snap.tables.push_back(std::move(state));
    }
    for (const p4ir::RegisterDef& r : control.registers()) {
      auto* cells = dp.register_array(control.name(), r.name);
      if (cells == nullptr) continue;
      Snapshot::RegisterState state;
      state.control = control.name();
      state.name = r.name;
      for (std::uint64_t i = 0; i < cells->size(); ++i) {
        if ((*cells)[i] != 0) state.cells[i] = (*cells)[i];
      }
      snap.registers.push_back(std::move(state));
    }
  }
  return snap;
}

std::vector<std::string> restore_snapshot(const Snapshot& snapshot,
                                          sim::DataPlane& dp) {
  std::vector<std::string> missing;
  for (const Snapshot::TableState& state : snapshot.tables) {
    sim::RuntimeTable* rt = dp.table_in(state.control, state.table);
    if (rt == nullptr) {
      if (!state.exact.empty() || !state.ternary.empty()) {
        missing.push_back(state.control + "/" + state.table);
      }
      continue;
    }
    rt->clear();
    for (const auto& e : state.exact) rt->add_exact(e.key, e.action);
    for (const auto& e : state.ternary) {
      rt->add_ternary(e.key, e.priority, e.value);
    }
  }
  for (const Snapshot::RegisterState& state : snapshot.registers) {
    auto* cells = dp.register_array(state.control, state.name);
    if (cells == nullptr) {
      if (!state.cells.empty()) {
        missing.push_back(state.control + "/" + state.name);
      }
      continue;
    }
    std::fill(cells->begin(), cells->end(), 0);
    for (const auto& [index, value] : state.cells) {
      if (index >= cells->size()) {
        throw std::invalid_argument("register " + state.name +
                                    " shrank below snapshot index " +
                                    std::to_string(index));
      }
      (*cells)[index] = value;
    }
  }
  return missing;
}

}  // namespace dejavu::control
