// Self-healing chain repair (§7 "failure handling", taken further):
// watch per-NF health from the data plane's own telemetry — the
// check_nextNF gate counters every packet increments on its way
// through a chain — and, when an NF stays dead for long enough,
// repair the deployment around it:
//
//   * bypass  — rewrite the chain policies without the NF, derive the
//     new branching/check rules on the *unchanged* placement, and
//     swap the rule diff in transactionally;
//   * replace — re-run the placement optimizer on the reduced chains
//     and rebuild a fresh deployment (rerouted recirculations and
//     all), migrating NF state via snapshot.
//
// Every repair is gated: the candidate ruleset is staged on a scratch
// copy of the data plane and must pass both the structural verifier
// (verify::run_all) and the symbolic explorer (explore::run) before a
// single rule touches the live switch; the live swap then goes
// through a control::Transaction, so a mid-repair write failure rolls
// back to the pre-repair ruleset instead of stranding a half-wired
// chain.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "control/deployment.hpp"
#include "control/live_update.hpp"
#include "control/snapshot.hpp"
#include "control/transaction.hpp"
#include "explore/explorer.hpp"
#include "sim/fault.hpp"

namespace dejavu::control {

struct HealthThresholds {
  /// Windows with fewer offered packets are ignored (no signal).
  std::uint64_t min_window_packets = 16;
  /// A path is suffering when it drops more than this fraction of its
  /// window's packets.
  double max_drop_fraction = 0.3;
  /// Consecutive suspect windows before an NF is declared unhealthy
  /// (debounce against one-off blips).
  std::uint32_t sustained_windows = 2;
};

/// What the traffic source observed for one path over one window.
struct PathWindow {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

struct NfHealth {
  std::string nf;
  /// Gate hits during the last observed window.
  std::uint64_t gate_delta = 0;
  std::uint32_t suspect_windows = 0;
  bool unhealthy = false;
};

/// Per-NF health derived from drop/counter telemetry: an NF whose
/// check_nextNF gate stops firing while its upstream neighbour's gate
/// still fires — on a path that is dropping beyond threshold — is the
/// culprit. Sustained over `sustained_windows`, it is unhealthy.
class HealthMonitor {
 public:
  HealthMonitor(sim::DataPlane& dp, const sfc::PolicySet& policies,
                HealthThresholds thresholds = {});

  /// Feed one observation window (per-path offered/delivered/dropped
  /// as seen by the traffic source). Diffs each NF's gate counters
  /// against the previous window.
  void observe(const std::map<std::uint16_t, PathWindow>& windows);

  /// NFs currently past the sustained-suspicion threshold.
  std::vector<std::string> unhealthy() const;
  const std::map<std::string, NfHealth>& health() const { return health_; }
  std::uint32_t windows_observed() const { return windows_observed_; }

  /// Forget all suspicion and re-baseline the counters (after repair).
  void reset();

 private:
  /// Sum of hits over every instance of the NF's check gate; nullopt
  /// when the NF has no gate (the entry NF).
  std::optional<std::uint64_t> gate_hits(const std::string& nf) const;

  sim::DataPlane* dp_;
  const sfc::PolicySet* policies_;
  HealthThresholds thresholds_;
  std::map<std::string, std::uint64_t> last_hits_;
  std::map<std::string, NfHealth> health_;
  std::uint32_t windows_observed_ = 0;
};

struct RepairPolicy {
  /// NFs that must never be bypassed (e.g. the firewall: failing open
  /// is worse than failing closed). Repairs refuse these.
  std::set<std::string> never_bypass;
  /// Retry/backoff for the live commit.
  RetryPolicy retry;
  /// Gate the staged ruleset on verify::run_all + explore::run before
  /// committing. Leave on; exists so tests can exercise the ungated
  /// path cheaply.
  bool run_gates = true;
  explore::ExploreOptions explore_options;
  /// Swap the live diff in hitlessly through a LiveUpdate (§11):
  /// packets in flight finish on the pre-repair generation. Off =
  /// legacy stop-the-world Transaction, which can misroute a packet
  /// that punted before the swap and reinjects after it
  /// (tests/test_repair.cpp pins that failure mode).
  bool hitless = true;
  /// Write-ahead journal for the hitless swap (optional).
  Journal* journal = nullptr;
  /// Drain/crash knobs for the hitless swap. Its retry field is
  /// ignored: `retry` above governs both commit paths.
  LiveUpdateOptions update;
};

struct RepairReport {
  bool attempted = false;
  bool succeeded = false;
  std::string nf;
  std::string strategy;  // "bypass" | "replace"
  std::string error;
  std::size_t rules_removed = 0;
  std::size_t rules_installed = 0;
  bool verify_ok = false;
  bool explore_ok = false;
  Transaction::Result txn;
  /// The hitless swap's phase report (policy.hitless only).
  UpdateReport update;

  std::string to_string() const;
};

class ChainRepair {
 public:
  explicit ChainRepair(Deployment& deployment, RepairPolicy policy = {});

  /// Repair by bypass: every chain drops `nf`, routing is re-derived
  /// on the unchanged placement, and the live switch receives the rule
  /// diff through a Transaction (optionally fault-injected via
  /// `injector`). On success the deployment's policy/routing view is
  /// updated in place.
  /// `pump`, under policy.hitless, services outstanding CPU punts
  /// during the swap's drain phase (typically the owning control
  /// plane's punt loop).
  RepairReport bypass(const std::string& nf,
                      sim::FaultInjector* injector = nullptr,
                      DrainPump pump = {});

  /// Repair by re-placement: drop `nf`, re-run the optimizer on the
  /// reduced chains, rebuild a fresh deployment (new composed program,
  /// new recirculation routes) and migrate the surviving NFs' table
  /// and register state into it. The caller cuts traffic over to
  /// `deployment` when the report says succeeded.
  struct Replacement {
    RepairReport report;
    std::unique_ptr<Deployment> deployment;
  };
  Replacement replace(const std::string& nf);

 private:
  /// The reduced policy set, or an error string.
  std::string bypass_policies(const std::string& nf,
                              sfc::PolicySet& out) const;

  Deployment* deployment_;
  RepairPolicy policy_;
};

/// Snapshot filtered to NF state only (framework branching/check/glue
/// tables excluded) — what a re-placement migrates into the rebuilt
/// deployment, whose framework rules are freshly derived.
Snapshot nf_state_snapshot(sim::DataPlane& dp);

}  // namespace dejavu::control
