// The merged control plane (§7 "Control plane merge"): one facade that
// programs every NF's tables through the composed program's qualified
// names, installs the framework's routing state, and services packets
// the data plane punts to the CPU (the Fig. 4 session-miss flow: learn
// the session, install it, reinject the packet).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "control/rules.hpp"
#include "route/routing.hpp"
#include "sfc/chain.hpp"
#include "sim/dataplane.hpp"

namespace dejavu::control {

class ControlPlane {
 public:
  ControlPlane(sim::DataPlane& dp, sfc::PolicySet policies)
      : dp_(&dp), policies_(std::move(policies)) {}

  // --- framework state (derived from placement, §3.4) ---
  void install_routing(const route::RoutingPlan& plan);

  // --- NF tables ---
  void add_traffic_class(const TrafficClassRule& rule);
  void add_firewall_rule(const FirewallRule& rule);
  void add_vgw_mapping(const VgwMapping& mapping);
  void add_route(const RouteEntry& entry);
  void set_lb_pool(LbPool pool) { lb_pool_ = std::move(pool); }
  const LbPool& lb_pool() const { return lb_pool_; }

  /// Directly install an LB session (hash of the packet's 5-tuple at
  /// LB time -> backend). Normally sessions are learned via punts.
  void install_lb_session(std::uint32_t session_hash,
                          net::Ipv4Addr backend);

  // --- CPU path ---
  /// Service the punts of one switch output: learn LB sessions,
  /// rewind the service index, and reinject. Reinjection results are
  /// folded back into `out` (recursively serviced, bounded).
  /// Returns the number of punts handled.
  std::size_t service_punts(sim::SwitchOutput& out, int depth = 0);

  /// Inject a packet and service any punts until it is delivered,
  /// dropped, or the punt budget is exhausted — the normal way to
  /// drive a deployment end to end.
  sim::SwitchOutput inject(net::Packet packet, std::uint16_t in_port);

  std::size_t sessions_learned() const { return sessions_learned_; }
  std::size_t route_misses() const { return route_misses_; }

  const sfc::PolicySet& policies() const { return policies_; }
  /// Swap the policy view after a repair rewired the chains (the
  /// reinjection-port logic follows the policies' NF order).
  void set_policies(sfc::PolicySet policies) {
    policies_ = std::move(policies);
  }
  /// Adopt a routing plan *without* installing it (the repair's
  /// Transaction already wrote the rule diff to the switch); keeps
  /// reinjection-port steering aligned with the new traversals.
  void adopt_routing(route::RoutingPlan plan) { routing_ = std::move(plan); }

 private:
  /// Install into every instance of a qualified table name; throws
  /// std::invalid_argument when the table does not exist anywhere
  /// (NF not deployed).
  std::vector<sim::RuntimeTable*> instances(const std::string& table);

  /// Ingress port a punted packet should be reinjected on so that the
  /// branching state steers it back to `nf`: the first port of the
  /// pipeline whose ingress pipe precedes the NF in the planned
  /// traversal. Falls back to `fallback` (the original in_port) when
  /// no traversal is known.
  std::uint16_t reinjection_port(std::uint16_t path_id, const std::string& nf,
                                 std::uint16_t fallback) const;

  sim::DataPlane* dp_;
  sfc::PolicySet policies_;
  LbPool lb_pool_;
  route::RoutingPlan routing_;  // kept from install_routing
  std::size_t sessions_learned_ = 0;
  std::size_t route_misses_ = 0;
};

}  // namespace dejavu::control
