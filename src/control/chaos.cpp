#include "control/chaos.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "control/replay_target.hpp"
#include "control/snapshot.hpp"
#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "route/routing.hpp"

namespace dejavu::control {

sim::FaultProfile profile_for_schedule(const std::string& name) {
  sim::FaultProfile p = sim::FaultProfile::fig2_mixed();
  if (name == "mixed") return p;
  if (name == "none") {
    p.write_fails = p.write_timeouts = 0;
    p.evictions = p.recirc_downs = p.register_corruptions = 0;
    return p;
  }
  if (name == "writes") {
    p.evictions = p.recirc_downs = p.register_corruptions = 0;
    return p;
  }
  if (name == "evictions") {
    p.write_fails = p.write_timeouts = 0;
    p.recirc_downs = p.register_corruptions = 0;
    p.evictions = 6;
    return p;
  }
  if (name == "recirc") {
    p.write_fails = p.write_timeouts = 0;
    p.evictions = p.register_corruptions = 0;
    p.recirc_downs = 4;
    return p;
  }
  throw std::invalid_argument("unknown chaos schedule '" + name +
                              "' (want none|writes|evictions|recirc|mixed)");
}

namespace {

double delivery_fraction(const std::map<std::uint16_t, PathWindow>& windows) {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (const auto& [path_id, w] : windows) {
    offered += w.offered;
    delivered += w.delivered;
  }
  return offered > 0 ? static_cast<double>(delivered) / offered : 1.0;
}

std::uint64_t window_offered(const std::map<std::uint16_t, PathWindow>& windows) {
  std::uint64_t offered = 0;
  for (const auto& [path_id, w] : windows) offered += w.offered;
  return offered;
}

/// Phase 2: sabotage one NF on a live deployment, detect it from the
/// gate telemetry, repair around it, and measure packets-to-detection
/// and packets-to-recovery. Windows are one packet per flow.
void run_drill(ChaosResult& r, const ChaosOptions& options) {
  r.drill_run = true;

  // The victim is seed-chosen from the bypassable middle NFs (the FW
  // is never_bypass by policy, Classifier is the chain head, Router is
  // terminal — repairs refuse all three).
  std::mt19937_64 rng(options.seed ^ 0xd211c4a05ULL);
  r.victim_nf = (rng() & 1) != 0 ? sfc::kLoadBalancer : sfc::kVgw;

  Fig2Deployment fx =
      options.fig9 ? make_fig9_deployment() : make_fig2_deployment();
  Deployment* dep = fx.deployment.get();

  const std::uint32_t drill_flows =
      std::clamp<std::uint32_t>(options.flows, 24, 48);
  std::vector<sim::ReplayFlow> flows =
      fig2_replay_flows(drill_flows, options.seed);

  auto run_window = [&]() {
    std::map<std::uint16_t, PathWindow> windows;
    for (const sim::ReplayFlow& rf : flows) {
      sim::SwitchOutput out =
          dep->control().inject(rf.flow.packet(), rf.in_port);
      PathWindow& w = windows[rf.path_id];
      ++w.offered;
      if (out.delivered()) ++w.delivered;
      if (out.dropped) ++w.dropped;
      r.violations += sim::ChaosTarget::check_output(out);
    }
    return windows;
  };

  // Window 1 warms the LB sessions through the punt path; window 2 is
  // the clean baseline the recovery criterion compares against.
  run_window();
  r.delivery_before = delivery_fraction(run_window());

  // Sabotage: the victim's check gates vanish (it stops claiming its
  // packets) and every branching entry that steered toward it vanishes
  // with them — packets bound for the victim now miss the branching
  // table and die loudly on its default route-drop action.
  sim::DataPlane& dp = dep->dataplane();
  for (const route::CheckRule& cr : dep->routing().checks) {
    if (cr.nf != r.victim_nf) continue;
    for (sim::RuntimeTable* t :
         dp.tables_named(merge::check_next_nf_table(cr.nf))) {
      t->remove_exact({cr.path_id, cr.service_index, 0, 0});
    }
  }
  for (const route::BranchingRule& br : dep->routing().branching) {
    auto next = dep->policies().nf_at(br.path_id, br.service_index);
    if (!next || *next != r.victim_nf) continue;
    sim::RuntimeTable* t = dp.table_in(
        merge::pipelet_control_name(br.pipelet), merge::kBranchingTable);
    if (t != nullptr) t->remove_exact({br.path_id, br.service_index});
  }

  // Detection: feed windows to the health monitor until the victim's
  // silent gate crosses the sustained-suspicion threshold.
  HealthMonitor monitor(dp, dep->policies());
  constexpr std::uint32_t kMaxDetectWindows = 8;
  bool detected = false;
  for (std::uint32_t i = 0; i < kMaxDetectWindows && !detected; ++i) {
    auto windows = run_window();
    r.packets_to_detect += window_offered(windows);
    r.delivery_faulted = delivery_fraction(windows);
    monitor.observe(windows);
    for (const std::string& nf : monitor.unhealthy()) {
      if (nf == r.victim_nf) detected = true;
    }
  }
  if (!detected) {
    r.error = "health monitor did not detect sabotaged " + r.victim_nf;
    return;
  }

  // Repair, with the plan's write-lane faults injected into the live
  // commit (retry budget sized so transient runs still land).
  RepairPolicy policy;
  policy.never_bypass = {sfc::kFirewall};
  policy.retry.max_attempts = 6;
  policy.retry.seed = options.seed;
  ChainRepair repair(*dep, policy);
  sim::FaultInjector injector(r.plan);

  if (options.repair == "bypass") {
    r.repair_report = repair.bypass(r.victim_nf, &injector);
  } else if (options.repair == "replace") {
    ChainRepair::Replacement repl = repair.replace(r.victim_nf);
    r.repair_report = repl.report;
    if (repl.report.succeeded) {
      // Cut over: table state came across via the snapshot migration;
      // the LB pool is control-plane soft state and moves by hand.
      repl.deployment->control().set_lb_pool(dep->control().lb_pool());
      fx.deployment = std::move(repl.deployment);
      dep = fx.deployment.get();
    }
  } else {
    r.error = "unknown repair strategy '" + options.repair +
              "' (want bypass|replace|none)";
    return;
  }
  if (!r.repair_report.succeeded) {
    r.error = "repair failed: " + r.repair_report.error;
    return;
  }

  // Recovery: windows until delivery is back to >= 95% of baseline.
  constexpr std::uint32_t kMaxRecoverWindows = 8;
  bool recovered = false;
  for (std::uint32_t i = 0; i < kMaxRecoverWindows && !recovered; ++i) {
    auto windows = run_window();
    r.packets_to_recover += window_offered(windows);
    r.delivery_recovered = delivery_fraction(windows);
    recovered = r.delivery_recovered >= 0.95 * r.delivery_before;
  }
  if (!recovered) {
    r.error = "delivery did not recover (" +
              std::to_string(r.delivery_recovered) + " vs baseline " +
              std::to_string(r.delivery_before) + ")";
  }
}

/// Phase 3: drive a bypass diff through the two-phase live update with
/// the plan's write-lane faults injected and a seed-chosen controller
/// crash inside the update window, then recover from the journal. The
/// consistency oracle is byte-identity of Snapshot::to_text: the final
/// switch state must equal either the pre-update snapshot (rolled
/// back) or the same update applied cleanly on a scratch switch
/// (committed / rolled forward) — a blend of the two generations is a
/// drill failure even if every individual write succeeded.
void run_update_drill(ChaosResult& r, const ChaosOptions& options) {
  ChaosResult::UpdateDrill& d = r.update_drill;
  d.run = true;

  std::mt19937_64 rng(options.seed ^ 0x11f70c8a7ULL);
  d.victim_nf = (rng() & 1) != 0 ? sfc::kLoadBalancer : sfc::kVgw;
  static constexpr const char* kCrashNames[] = {"none", "shadow", "flip",
                                                "drain"};
  static constexpr CrashPoint kCrashPoints[] = {
      CrashPoint::kNone, CrashPoint::kAfterShadow, CrashPoint::kAfterFlip,
      CrashPoint::kAfterDrain};
  const std::size_t crash = rng() % 4;
  d.crash_point = kCrashNames[crash];

  Fig2Deployment fx =
      options.fig9 ? make_fig9_deployment() : make_fig2_deployment();
  Deployment* dep = fx.deployment.get();
  sim::DataPlane& dp = dep->dataplane();

  // The update under test: route around the victim (a middle NF, so
  // the reduced chains stay well-formed).
  sfc::PolicySet reduced;
  for (const sfc::ChainPolicy& p : dep->policies().policies()) {
    sfc::ChainPolicy rp = p;
    std::erase(rp.nfs, d.victim_nf);
    reduced.add(std::move(rp));
  }
  route::RoutingPlan plan =
      route::build_routing(reduced, dep->placement(), dp.config());
  if (!plan.feasible) {
    r.error = "update drill: rerouted plan infeasible: " +
              plan.infeasible_reason;
    return;
  }
  RuleDiff diff = routing_rule_diff(dep->routing(), plan, dp);

  // References for the oracle, before anything touches the live switch.
  Snapshot pre = take_snapshot(dp);
  const std::string rollback_ref = pre.to_text();
  sim::DataPlane scratch(dep->program(), dep->ids(), dp.config());
  restore_snapshot(pre, scratch);
  LiveUpdate clean(scratch);
  UpdateReport clean_report = clean.run(diff);
  if (!clean_report.committed) {
    r.error = "update drill: clean reference update failed: " +
              clean_report.error;
    return;
  }
  const std::string committed_ref = take_snapshot(scratch).to_text();

  // The faulted run: write-lane faults from the chaos plan, crash
  // point from the seed, every phase journaled.
  Journal journal;
  LiveUpdateOptions opts;
  opts.crash_point = kCrashPoints[crash];
  opts.retry.max_attempts = 6;
  opts.retry.seed = options.seed;
  LiveUpdate update(dp, &journal, opts);
  sim::FaultInjector injector(r.plan);
  d.update = update.run(diff, &injector);

  if (d.update.crashed) {
    LiveUpdateOptions recover_opts = opts;
    recover_opts.crash_point = CrashPoint::kNone;
    d.recovery = recover(dp, journal, recover_opts);
  }

  const std::string final_state = take_snapshot(dp).to_text();
  const bool landed =
      d.update.committed ||
      (d.update.crashed && d.recovery.action == RecoveryAction::kRolledForward);
  if (landed) {
    d.outcome = d.update.committed ? "committed" : "recovered-forward";
    d.consistent = final_state == committed_ref;
  } else {
    d.outcome = "rolled-back";
    d.consistent = final_state == rollback_ref;
  }
  if (!d.consistent) {
    r.error = "update drill: post-" + d.outcome +
              " switch state matches neither the rollback nor the "
              "committed reference (mixed generations)";
  }
}

}  // namespace

ChaosResult run_chaos(const ChaosOptions& options) {
  ChaosResult r;
  r.options = options;
  r.plan =
      sim::FaultPlan::from_seed(options.seed, profile_for_schedule(options.schedule));

  // Phase 1: the full fault schedule against the parallel replay
  // engine, one fault-injecting shim per worker-private replica.
  std::vector<sim::ChaosTarget*> shims;
  sim::ReplayEngine engine(
      sim::chaos_factory(fig2_replay_factory(options.fig9), r.plan, &shims));
  sim::ReplayConfig config;
  config.workers = options.workers;
  config.packets_per_flow = options.packets_per_flow;
  r.replay = engine.run(fig2_replay_flows(options.flows, options.seed), config);
  for (const sim::ChaosTarget* shim : shims) {
    r.violations += shim->violations();
    for (const auto& [kind, count] : shim->faults_applied()) {
      r.faults_applied[kind] += count;
    }
  }

  // Phase 2: the sabotage -> detect -> repair -> recover drill.
  if (options.repair != "none") run_drill(r, options);

  // Phase 3: crash-inside-the-update-window drill.
  if (r.error.empty() && options.update_drill) run_update_drill(r, options);
  return r;
}

bool ChaosResult::ok() const {
  if (!error.empty()) return false;
  if (violations.total() != 0) return false;
  if (drill_run && !repair_report.succeeded) return false;
  if (update_drill.run && !update_drill.consistent) return false;
  return true;
}

std::string ChaosResult::to_string() const {
  std::string s = "chaos run (seed " + std::to_string(options.seed) +
                  ", schedule " + options.schedule + ", " +
                  std::to_string(options.workers) + " workers)\n";
  s += "  plan: " + std::to_string(plan.events.size()) + " fault events\n";
  s += "  replay: " + std::to_string(replay.counters.packets) + " packets, " +
       std::to_string(replay.counters.delivered) + " delivered, " +
       std::to_string(replay.counters.dropped) + " dropped, " +
       std::to_string(replay.counters.punted) + " punted\n";
  s += "  faults applied:";
  if (faults_applied.empty()) s += " none";
  for (const auto& [kind, count] : faults_applied) {
    s += " " + kind + "=" + std::to_string(count);
  }
  s += "\n  invariants: " + violations.to_string() + "\n";
  if (drill_run) {
    s += "  drill: victim " + victim_nf + ", strategy " + options.repair +
         "\n";
    s += "    detect after " + std::to_string(packets_to_detect) +
         " packets, recover after " + std::to_string(packets_to_recover) +
         " packets\n";
    s += "    delivery " + std::to_string(delivery_before) + " -> " +
         std::to_string(delivery_faulted) + " (faulted) -> " +
         std::to_string(delivery_recovered) + " (repaired)\n";
    s += "    " + repair_report.to_string() + "\n";
  }
  if (update_drill.run) {
    s += "  update drill: bypass " + update_drill.victim_nf + ", crash " +
         update_drill.crash_point + " -> " + update_drill.outcome +
         (update_drill.consistent ? " (consistent)" : " (INCONSISTENT)") +
         "\n";
    s += "    " + update_drill.update.to_string() + "\n";
    if (update_drill.update.crashed) {
      s += "    " + update_drill.recovery.to_string() + "\n";
    }
  }
  if (!error.empty()) s += "  error: " + error + "\n";
  s += ok() ? "  OK\n" : "  FAILED\n";
  return s;
}

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ChaosResult::to_json() const {
  std::string s = "{\n";
  s += "  \"ok\": " + std::string(ok() ? "true" : "false") + ",\n";
  s += "  \"seed\": " + std::to_string(options.seed) + ",\n";
  s += "  \"schedule\": \"" + json_escape(options.schedule) + "\",\n";
  s += "  \"workers\": " + std::to_string(options.workers) + ",\n";
  s += "  \"fault_events\": " + std::to_string(plan.events.size()) + ",\n";
  s += "  \"replay\": {\"packets\": " +
       std::to_string(replay.counters.packets) +
       ", \"delivered\": " + std::to_string(replay.counters.delivered) +
       ", \"dropped\": " + std::to_string(replay.counters.dropped) +
       ", \"punted\": " + std::to_string(replay.counters.punted) + "},\n";
  s += "  \"faults_applied\": {";
  bool first = true;
  for (const auto& [kind, count] : faults_applied) {
    if (!first) s += ", ";
    first = false;
    s += "\"" + json_escape(kind) + "\": " + std::to_string(count);
  }
  s += "},\n";
  s += "  \"violations\": {\"unattributed_drops\": " +
       std::to_string(violations.unattributed_drops) +
       ", \"corrupt_packets\": " + std::to_string(violations.corrupt_packets) +
       ", \"metadata_leaks\": " + std::to_string(violations.metadata_leaks) +
       ", \"forwarding_loops\": " +
       std::to_string(violations.forwarding_loops) + "},\n";
  s += "  \"drill\": ";
  if (drill_run) {
    s += "{\"victim\": \"" + json_escape(victim_nf) + "\", \"strategy\": \"" +
         json_escape(options.repair) + "\", \"repaired\": " +
         std::string(repair_report.succeeded ? "true" : "false") +
         ", \"packets_to_detect\": " + std::to_string(packets_to_detect) +
         ", \"packets_to_recover\": " + std::to_string(packets_to_recover) +
         ", \"delivery_before\": " + std::to_string(delivery_before) +
         ", \"delivery_faulted\": " + std::to_string(delivery_faulted) +
         ", \"delivery_recovered\": " + std::to_string(delivery_recovered) +
         "}";
  } else {
    s += "null";
  }
  s += ",\n";
  s += "  \"update_drill\": ";
  if (update_drill.run) {
    s += "{\"victim\": \"" + json_escape(update_drill.victim_nf) +
         "\", \"crash\": \"" + json_escape(update_drill.crash_point) +
         "\", \"outcome\": \"" + json_escape(update_drill.outcome) +
         "\", \"consistent\": " +
         std::string(update_drill.consistent ? "true" : "false") + "}";
  } else {
    s += "null";
  }
  s += ",\n";
  s += "  \"error\": \"" + json_escape(error) + "\"\n";
  s += "}\n";
  return s;
}

}  // namespace dejavu::control
