#include "control/live_update.hpp"

#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "merge/compose.hpp"
#include "merge/framework.hpp"

namespace dejavu::control {

std::string UpdateReport::to_string() const {
  std::string s = "update " + std::to_string(from_epoch) + "->" +
                  std::to_string(to_epoch) + ": ";
  if (committed) {
    s += "committed";
  } else if (crashed) {
    s += "CRASHED mid-flight";
  } else {
    s += rolled_back ? "rolled back" : "refused";
  }
  s += " (drained " + std::to_string(drained) + ", flushed " +
       std::to_string(flushed) + ")";
  if (!error.empty()) s += " error: " + error;
  return s;
}

std::string RecoveryReport::to_string() const {
  std::string s = "recovery: ";
  switch (action) {
    case RecoveryAction::kNone:
      return s + "no pending update";
    case RecoveryAction::kRolledBack:
      s += "rolled back";
      break;
    case RecoveryAction::kRolledForward:
      s += "rolled forward";
      break;
  }
  s += " update " + std::to_string(update_id) + " (" +
       std::to_string(from_epoch) + "->" + std::to_string(to_epoch) + ")";
  if (!detail.empty()) s += ": " + detail;
  return s;
}

namespace {

int rank(JournalState state) { return static_cast<int>(state); }

std::vector<sim::RuntimeTable*> resolve_op(sim::DataPlane& dp,
                                           const RuleOp& op) {
  if (!op.control.empty()) {
    sim::RuntimeTable* t = dp.table_in(op.control, op.table);
    if (t == nullptr) return {};
    return {t};
  }
  return dp.tables_named(op.table);
}

/// Dedup identity of a ternary op (TernaryField is not ordered).
std::string ternary_id(const RuleOp& op) {
  std::string s = op.table + "|" + std::to_string(op.priority);
  for (const auto& f : op.tkey) {
    s += "|" + std::to_string(f.value) + "/" + std::to_string(f.mask);
  }
  return s;
}

/// The open-window ternary version matching key+priority, if any.
std::optional<std::size_t> ternary_version(const sim::RuntimeTable& rt,
                                           const RuleOp& op,
                                           sim::EpochWindow window) {
  for (const auto& e : rt.ternary_entries()) {
    if (e.priority != op.priority || e.key != op.tkey) continue;
    if (rt.ternary_window(e.handle) == window) return e.handle;
  }
  return std::nullopt;
}

/// Does the live switch already hold the complete shadow of `diff`?
/// Installs must be visible at `to` with the intended action; leaving
/// entries must have no version still open for generation `from`.
bool shadow_observed(sim::DataPlane& dp, const RuleDiff& diff,
                     std::uint32_t from, std::uint32_t to) {
  for (const RuleOp& op : diff.ops) {
    if (op.kind == RuleOp::Kind::kRegister) continue;
    auto tables = resolve_op(dp, op);
    if (tables.empty()) return false;
    for (sim::RuntimeTable* rt : tables) {
      if (op.kind == RuleOp::Kind::kExact) {
        if (op.install) {
          const auto* e = rt->find_exact(op.key, to);
          if (e == nullptr || !(e->action == op.action)) return false;
        } else if (const auto* versions = rt->exact_versions(op.key)) {
          for (const auto& v : *versions) {
            if (v.window.open() && v.window.from <= from) return false;
          }
        }
      } else {
        if (op.install) {
          bool seen = false;
          for (const auto& e : rt->ternary_entries()) {
            if (e.priority == op.priority && e.key == op.tkey &&
                rt->ternary_window(e.handle).contains(to) &&
                e.value == op.action) {
              seen = true;
            }
          }
          if (!seen) return false;
        } else if (auto h = rt->find_ternary(op.tkey, op.priority)) {
          if (rt->ternary_window(*h).from <= from) return false;
        }
      }
    }
  }
  return true;
}

/// Flip-time register writes grouped per bank, applied bank by bank
/// with the bank tag set last — the unit crash recovery reasons about.
void apply_register_banks(sim::DataPlane& dp, const RuleDiff& diff,
                          std::uint32_t to, bool only_untagged) {
  std::map<std::pair<std::string, std::string>, std::vector<const RuleOp*>>
      banks;
  for (const RuleOp& op : diff.ops) {
    if (op.kind != RuleOp::Kind::kRegister) continue;
    banks[{op.control, op.reg}].push_back(&op);
  }
  for (const auto& [bank, ops] : banks) {
    if (only_untagged && dp.register_epoch(bank.first, bank.second) == to) {
      continue;  // this bank's writes already landed before the crash
    }
    auto* cells = dp.register_array(bank.first, bank.second);
    if (cells == nullptr) continue;
    for (const RuleOp* op : ops) {
      if (op->index < cells->size()) (*cells)[op->index] = op->value;
    }
    dp.set_register_epoch(bank.first, bank.second, to);
  }
}

/// Drain generation `from`: pump the control plane until no punt
/// stamped below `to` is outstanding, then force-flush stragglers.
std::pair<std::uint64_t, std::uint64_t> drain(sim::DataPlane& dp,
                                              std::uint32_t to,
                                              std::uint32_t max_rounds,
                                              const DrainPump& pump) {
  std::uint64_t pumped = 0;
  std::uint32_t rounds = 0;
  while (pump && dp.punts_outstanding_below(to) > 0 && rounds < max_rounds) {
    pumped += pump();
    ++rounds;
  }
  const std::uint64_t flushed = dp.flush_stale_punts(to - 1);
  return {pumped, flushed};
}

}  // namespace

LiveUpdate::LiveUpdate(sim::DataPlane& dp, Journal* journal,
                       LiveUpdateOptions options)
    : dp_(&dp), journal_(journal), options_(options) {}

UpdateReport LiveUpdate::run(const RuleDiff& diff, sim::FaultInjector* injector,
                             DrainPump pump) {
  UpdateReport report;
  report.from_epoch = dp_->epoch();
  report.to_epoch = report.from_epoch + 1;
  const std::uint32_t from = report.from_epoch;
  const std::uint32_t to = report.to_epoch;

  if (diff.empty()) {
    report.error = "refusing an empty update diff";
    return report;
  }

  // Capture pre-update register state into the journaled intent, so a
  // post-crash rollback can restore it from the journal alone.
  RuleDiff intent = diff;
  std::string invalid;
  for (RuleOp& op : intent.ops) {
    if (op.kind == RuleOp::Kind::kRegister) {
      auto* cells = dp_->register_array(op.control, op.reg);
      if (cells == nullptr) {
        invalid = "unknown register " + op.control + "." + op.reg;
      } else if (op.index >= cells->size()) {
        invalid = "register " + op.reg + " index " +
                  std::to_string(op.index) + " out of range";
      } else {
        op.old_value = (*cells)[op.index];
        op.old_bank_epoch = dp_->register_epoch(op.control, op.reg);
      }
    } else if (op.kind == RuleOp::Kind::kTernary && !op.control.empty()) {
      invalid = "control-scoped ternary ops are not supported";
    }
  }

  if (journal_ != nullptr) {
    report.update_id = journal_->begin(from, to, intent);
  }
  auto mark = [&](JournalState state, std::string note = "") {
    if (journal_ != nullptr) {
      journal_->append(report.update_id, state, std::move(note));
    }
  };

  if (!invalid.empty()) {
    report.error = invalid;
    mark(JournalState::kAborted, invalid);
    return report;
  }

  // ---- Phase 1: shadow-install generation `to`. Retires are queued
  // before installs: a shadow window [to, open] overlaps the live
  // [x, open] version until the old one is capped at `from`.
  Transaction txn(*dp_, options_.retry, injector);
  std::set<std::tuple<std::string, std::string, std::vector<std::uint64_t>>>
      retiring_exact;
  std::set<std::string> retiring_ternary;
  for (const RuleOp& op : intent.ops) {
    if (op.kind == RuleOp::Kind::kRegister || op.install) continue;
    if (op.kind == RuleOp::Kind::kExact) {
      if (op.control.empty()) {
        txn.retire_exact(op.table, op.key, from);
      } else {
        txn.retire_exact_in(op.control, op.table, op.key, from);
      }
      retiring_exact.insert({op.control, op.table, op.key});
    } else {
      txn.retire_ternary(op.table, op.tkey, op.priority, from);
      retiring_ternary.insert(ternary_id(op));
    }
  }
  // An install whose key already has a live version is an overwrite:
  // the old version retires (generation `from` keeps seeing it) and
  // the new one rides in shadowed.
  for (const RuleOp& op : intent.ops) {
    if (op.kind == RuleOp::Kind::kRegister || !op.install) continue;
    if (op.kind == RuleOp::Kind::kExact) {
      if (retiring_exact.count({op.control, op.table, op.key}) > 0) continue;
      bool live = false;
      for (sim::RuntimeTable* rt : resolve_op(*dp_, op)) {
        const auto* e = rt->find_exact(op.key);
        live |= e != nullptr && e->window.from <= from;
      }
      if (!live) continue;
      if (op.control.empty()) {
        txn.retire_exact(op.table, op.key, from);
      } else {
        txn.retire_exact_in(op.control, op.table, op.key, from);
      }
      retiring_exact.insert({op.control, op.table, op.key});
    } else {
      if (retiring_ternary.count(ternary_id(op)) > 0) continue;
      bool live = false;
      for (sim::RuntimeTable* rt : resolve_op(*dp_, op)) {
        auto h = rt->find_ternary(op.tkey, op.priority);
        live |= h && rt->ternary_window(*h).from <= from;
      }
      if (!live) continue;
      txn.retire_ternary(op.table, op.tkey, op.priority, from);
      retiring_ternary.insert(ternary_id(op));
    }
  }
  const sim::EpochWindow shadow_window{to, sim::kEpochOpen};
  for (const RuleOp& op : intent.ops) {
    if (op.kind == RuleOp::Kind::kRegister || !op.install) continue;
    if (op.kind == RuleOp::Kind::kExact) {
      if (op.control.empty()) {
        txn.install_exact(op.table, op.key, op.action, shadow_window);
      } else {
        txn.install_exact_in(op.control, op.table, op.key, op.action,
                             shadow_window);
      }
    } else {
      txn.install_ternary(op.table, op.tkey, op.priority, op.action,
                          shadow_window);
    }
  }
  report.shadow = txn.commit();
  if (!report.shadow.committed) {
    report.rolled_back = report.shadow.rolled_back;
    report.error = "shadow install failed: " + report.shadow.error;
    mark(JournalState::kAborted, report.error);
    return report;
  }
  mark(JournalState::kShadowed);
  if (options_.crash_point == CrashPoint::kAfterShadow) {
    report.crashed = true;
    report.error = "controller crashed after the shadow phase";
    return report;
  }

  // ---- Phase 2: flip the version gate. Register banks first (each
  // tagged as it lands), then the single epoch register: from here on
  // new arrivals are stamped `to` while packets stamped `from` keep
  // resolving against their own generation.
  apply_register_banks(*dp_, intent, to, /*only_untagged=*/false);
  dp_->set_epoch(to);
  mark(JournalState::kFlipped);
  if (options_.crash_point == CrashPoint::kAfterFlip) {
    report.crashed = true;
    report.error = "controller crashed after the flip phase";
    return report;
  }

  // ---- Phase 3: drain generation `from`.
  auto [pumped, flushed] = drain(*dp_, to, options_.max_drain_rounds, pump);
  report.drained = pumped;
  report.flushed = flushed;
  mark(JournalState::kDrained,
       "pumped " + std::to_string(pumped) + " flushed " +
           std::to_string(flushed));
  if (options_.crash_point == CrashPoint::kAfterDrain) {
    report.crashed = true;
    report.error = "controller crashed after the drain phase";
    return report;
  }

  // ---- Phase 4: garbage-collect generation `from`.
  const std::size_t removed = dp_->gc_epochs(to);
  mark(JournalState::kCommitted, "gc removed " + std::to_string(removed));
  report.committed = true;
  return report;
}

RecoveryReport recover(sim::DataPlane& dp, Journal& journal,
                       LiveUpdateOptions options, DrainPump pump) {
  RecoveryReport report;
  auto pending = journal.pending();
  if (!pending) return report;
  report.update_id = pending->update_id;
  report.from_epoch = pending->from_epoch;
  report.to_epoch = pending->to_epoch;
  const RuleDiff& diff = *pending->diff;
  const std::uint32_t from = pending->from_epoch;
  const std::uint32_t to = pending->to_epoch;

  // Decide from the journal AND the observed switch state. The gate
  // already moved, or the full shadow is visible on the switch: the
  // writes landed, so the update rolls forward — adopt, never
  // reinstall. Anything less rolls back.
  const bool flipped = dp.epoch() >= to ||
                       rank(pending->last_state) >= rank(JournalState::kFlipped);
  const bool shadowed =
      rank(pending->last_state) >= rank(JournalState::kShadowed) ||
      shadow_observed(dp, diff, from, to);

  if (flipped || shadowed) {
    if (rank(pending->last_state) < rank(JournalState::kShadowed)) {
      journal.append(pending->update_id, JournalState::kShadowed,
                     "recovery: adopted shadow observed on the switch");
    }
    apply_register_banks(dp, diff, to, /*only_untagged=*/true);
    if (dp.epoch() < to) dp.set_epoch(to);
    if (rank(pending->last_state) < rank(JournalState::kFlipped)) {
      journal.append(pending->update_id, JournalState::kFlipped, "recovery");
    }
    auto [pumped, flushed] = drain(dp, to, options.max_drain_rounds, pump);
    report.drained = pumped;
    report.flushed = flushed;
    if (rank(pending->last_state) < rank(JournalState::kDrained)) {
      journal.append(pending->update_id, JournalState::kDrained,
                     "recovery: pumped " + std::to_string(pumped) +
                         " flushed " + std::to_string(flushed));
    }
    const std::size_t removed = dp.gc_epochs(to);
    journal.append(pending->update_id, JournalState::kCommitted,
                   "recovery: gc removed " + std::to_string(removed));
    report.action = RecoveryAction::kRolledForward;
    report.detail = "resumed from " + std::string(to_string(pending->last_state));
    return report;
  }

  // Roll back from the observed state only: remove whatever fraction
  // of the shadow landed, re-open whatever was retired, restore
  // register banks that were already tagged with the new generation.
  const sim::EpochWindow shadow_window{to, sim::kEpochOpen};
  for (const RuleOp& op : diff.ops) {
    if (op.kind == RuleOp::Kind::kRegister || !op.install) continue;
    for (sim::RuntimeTable* rt : resolve_op(dp, op)) {
      if (op.kind == RuleOp::Kind::kExact) {
        rt->remove_exact_version(op.key, shadow_window);
      } else if (auto h = ternary_version(*rt, op, shadow_window)) {
        rt->erase_ternary(*h);
      }
    }
  }
  for (const RuleOp& op : diff.ops) {
    if (op.kind == RuleOp::Kind::kRegister) continue;
    for (sim::RuntimeTable* rt : resolve_op(dp, op)) {
      if (op.kind == RuleOp::Kind::kExact) {
        rt->unretire_exact(op.key, from);
      } else {
        for (const auto& e : rt->ternary_entries()) {
          if (e.priority == op.priority && e.key == op.tkey &&
              rt->ternary_window(e.handle).to == from) {
            rt->unretire_ternary(e.handle, from);
          }
        }
      }
    }
  }
  for (const RuleOp& op : diff.ops) {
    if (op.kind != RuleOp::Kind::kRegister) continue;
    if (dp.register_epoch(op.control, op.reg) != to) continue;
    auto* cells = dp.register_array(op.control, op.reg);
    if (cells != nullptr && op.index < cells->size()) {
      (*cells)[op.index] = op.old_value;
    }
  }
  for (const RuleOp& op : diff.ops) {
    if (op.kind != RuleOp::Kind::kRegister) continue;
    if (dp.register_epoch(op.control, op.reg) == to) {
      dp.set_register_epoch(op.control, op.reg, op.old_bank_epoch);
    }
  }
  if (dp.epoch() >= to) dp.set_epoch(from);
  journal.append(pending->update_id, JournalState::kRolledBack,
                 "recovery: shadow incomplete, undone from observed state");
  report.action = RecoveryAction::kRolledBack;
  report.detail = "shadow incomplete at crash";
  return report;
}

RuleDiff routing_rule_diff(const route::RoutingPlan& from,
                           const route::RoutingPlan& to, sim::DataPlane& dp) {
  RuleDiff diff;
  auto branching_action = [](const route::BranchingRule& rule) {
    sim::ActionCall call;
    if (rule.kind == route::BranchingRule::Kind::kResubmit) {
      call.action = merge::kActRouteResubmit;
    } else {
      call.action = merge::kActRouteToEgress;
      call.args["port"] = rule.port;
    }
    return call;
  };

  using BranchKey = std::tuple<std::string, std::uint16_t, std::uint8_t>;
  std::map<BranchKey, sim::ActionCall> old_branch;
  std::map<BranchKey, sim::ActionCall> new_branch;
  for (const route::BranchingRule& r : from.branching) {
    old_branch[{merge::pipelet_control_name(r.pipelet), r.path_id,
                r.service_index}] = branching_action(r);
  }
  for (const route::BranchingRule& r : to.branching) {
    new_branch[{merge::pipelet_control_name(r.pipelet), r.path_id,
                r.service_index}] = branching_action(r);
  }
  for (const auto& entry : old_branch) {
    const BranchKey& key = entry.first;
    if (new_branch.count(key) == 0) {
      RuleOp op;
      op.install = false;
      op.control = std::get<0>(key);
      op.table = merge::kBranchingTable;
      op.key = {std::get<1>(key), std::get<2>(key)};
      diff.ops.push_back(std::move(op));
    }
  }
  for (const auto& [key, action] : new_branch) {
    auto it = old_branch.find(key);
    if (it != old_branch.end() && it->second == action) {
      // Both plans agree — but the fault being repaired may have
      // evicted the live entry (that is often the sabotage itself), so
      // only skip when the switch really holds the desired rule.
      sim::RuntimeTable* t =
          dp.table_in(std::get<0>(key), merge::kBranchingTable);
      const sim::RuntimeTable::ExactEntry* live =
          t != nullptr
              ? t->find_exact({std::get<1>(key), std::get<2>(key)})
              : nullptr;
      if (live != nullptr && live->action == action) continue;
    }
    RuleOp op;
    op.control = std::get<0>(key);
    op.table = merge::kBranchingTable;
    op.key = {std::get<1>(key), std::get<2>(key)};
    op.action = action;
    diff.ops.push_back(std::move(op));
  }

  // Check-gate entries: keyed {path, index, toCpu=0, drop=0} in the
  // NF's check table. NFs without a check table (the entry NF) have
  // no installable gate — skip, matching install_routing.
  auto check_key = [](const route::CheckRule& r) {
    return std::vector<std::uint64_t>{r.path_id, r.service_index, 0, 0};
  };
  auto has_gate = [&dp](const std::string& nf) {
    return !dp.tables_named(merge::check_next_nf_table(nf)).empty();
  };
  std::set<std::tuple<std::string, std::uint16_t, std::uint8_t>> old_checks;
  std::set<std::tuple<std::string, std::uint16_t, std::uint8_t>> new_checks;
  for (const route::CheckRule& r : from.checks) {
    old_checks.insert({r.nf, r.path_id, r.service_index});
  }
  for (const route::CheckRule& r : to.checks) {
    new_checks.insert({r.nf, r.path_id, r.service_index});
  }
  for (const route::CheckRule& r : from.checks) {
    if (new_checks.count({r.nf, r.path_id, r.service_index}) > 0) continue;
    if (!has_gate(r.nf)) continue;
    RuleOp op;
    op.install = false;
    op.table = merge::check_next_nf_table(r.nf);
    op.key = check_key(r);
    diff.ops.push_back(std::move(op));
  }
  for (const route::CheckRule& r : to.checks) {
    if (old_checks.count({r.nf, r.path_id, r.service_index}) > 0) {
      // Same live-existence caveat as branching entries above.
      bool live_everywhere = true;
      for (sim::RuntimeTable* t :
           dp.tables_named(merge::check_next_nf_table(r.nf))) {
        live_everywhere &= t->find_exact(check_key(r)) != nullptr;
      }
      if (live_everywhere) continue;
    }
    if (!has_gate(r.nf)) continue;
    RuleOp op;
    op.table = merge::check_next_nf_table(r.nf);
    op.key = check_key(r);
    op.action = sim::ActionCall{merge::check_hit_action(r.nf), {}};
    diff.ops.push_back(std::move(op));
  }

  // Planned removals may already be gone from the live switch (the
  // very fault being repaired can have evicted them); removing a
  // phantom entry would fail the whole transaction, so drop those.
  std::erase_if(diff.ops, [&dp](const RuleOp& op) {
    if (op.install) return false;
    if (!op.control.empty()) {
      sim::RuntimeTable* t = dp.table_in(op.control, op.table);
      return t == nullptr || t->find_exact(op.key) == nullptr;
    }
    for (sim::RuntimeTable* t : dp.tables_named(op.table)) {
      if (t->find_exact(op.key) != nullptr) return false;
    }
    return true;
  });
  return diff;
}

void fill_transaction(Transaction& txn, const RuleDiff& diff) {
  // Removals first: an overwrite-install of a key another rule is
  // about to vacate must not race the capacity check.
  for (const RuleOp& op : diff.ops) {
    if (op.kind == RuleOp::Kind::kRegister || op.install) continue;
    if (op.kind == RuleOp::Kind::kExact) {
      if (op.control.empty()) {
        txn.remove_exact(op.table, op.key);
      } else {
        txn.remove_exact_in(op.control, op.table, op.key);
      }
    } else {
      txn.remove_ternary(op.table, op.tkey, op.priority);
    }
  }
  for (const RuleOp& op : diff.ops) {
    if (op.kind == RuleOp::Kind::kRegister || !op.install) continue;
    if (op.kind == RuleOp::Kind::kExact) {
      if (op.control.empty()) {
        txn.install_exact(op.table, op.key, op.action);
      } else {
        txn.install_exact_in(op.control, op.table, op.key, op.action);
      }
    } else {
      txn.install_ternary(op.table, op.tkey, op.priority, op.action);
    }
  }
  for (const RuleOp& op : diff.ops) {
    if (op.kind != RuleOp::Kind::kRegister) continue;
    txn.write_register(op.control, op.reg, op.index, op.value);
  }
}

}  // namespace dejavu::control
