// Operator-facing rule types: what the control plane installs into
// the NF tables of a running deployment.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/addr.hpp"

namespace dejavu::control {

/// Classifier: map a ternary traffic class to a service path.
struct TrafficClassRule {
  net::Ipv4Prefix src;  // /0 = wildcard
  net::Ipv4Prefix dst;
  std::optional<std::uint8_t> protocol;
  std::int32_t priority = 0;
  std::uint16_t path_id = 0;
  std::uint16_t tenant = 0;
};

/// Firewall ACL rule. Default table behavior is deny, so installed
/// rules typically permit.
struct FirewallRule {
  net::Ipv4Prefix src;
  net::Ipv4Prefix dst;
  std::optional<std::uint8_t> protocol;
  std::optional<std::uint16_t> dst_port;
  std::int32_t priority = 0;
  bool permit = true;
};

/// Virtualization gateway: virtual IP -> physical IP for a tenant.
struct VgwMapping {
  net::Ipv4Addr virtual_ip;
  net::Ipv4Addr physical_ip;
  std::uint16_t tenant = 0;
};

/// Router FIB entry.
struct RouteEntry {
  net::Ipv4Prefix prefix;
  std::uint16_t port = 0;
  net::MacAddr next_hop_mac;
};

/// Load-balancer pool: the backends new sessions are spread across.
struct LbPool {
  std::vector<net::Ipv4Addr> backends;
};

}  // namespace dejavu::control
