#include "control/control_plane.hpp"

#include <stdexcept>

#include "merge/compose.hpp"
#include "merge/framework.hpp"
#include "sfc/header.hpp"

namespace dejavu::control {

namespace {

net::TernaryField prefix_field(const net::Ipv4Prefix& prefix) {
  return net::TernaryField{prefix.address().value(), prefix.mask()};
}

net::TernaryField optional_exact(std::optional<std::uint64_t> v,
                                 std::uint64_t mask) {
  if (!v) return net::TernaryField{0, 0};  // wildcard
  return net::TernaryField{*v, mask};
}

}  // namespace

std::vector<sim::RuntimeTable*> ControlPlane::instances(
    const std::string& table) {
  auto tables = dp_->tables_named(table);
  if (tables.empty()) {
    throw std::invalid_argument("table '" + table +
                                "' is not part of this deployment");
  }
  return tables;
}

void ControlPlane::install_routing(const route::RoutingPlan& plan) {
  if (!plan.feasible) {
    throw std::invalid_argument("routing plan is infeasible: " +
                                plan.infeasible_reason);
  }
  for (const route::CheckRule& rule : plan.checks) {
    // The entry NF (Classifier) is gated on the EtherType; it has no
    // check table, so skip silently.
    auto tables = dp_->tables_named(merge::check_next_nf_table(rule.nf));
    for (sim::RuntimeTable* t : tables) {
      // Gate entries require the toCpu and drop flags clear (flagged
      // packets must miss every gate and fall through to the CPU/drop
      // handling at the pipe boundary).
      t->add_exact({rule.path_id, rule.service_index, 0, 0},
                   sim::ActionCall{merge::check_hit_action(rule.nf), {}});
    }
  }
  for (const route::BranchingRule& rule : plan.branching) {
    sim::RuntimeTable* t = dp_->table_in(
        merge::pipelet_control_name(rule.pipelet), merge::kBranchingTable);
    if (t == nullptr) {
      throw std::invalid_argument("pipelet " + rule.pipelet.to_string() +
                                  " has no branching table");
    }
    sim::ActionCall call;
    if (rule.kind == route::BranchingRule::Kind::kResubmit) {
      call.action = merge::kActRouteResubmit;
    } else {
      call.action = merge::kActRouteToEgress;
      call.args["port"] = rule.port;
    }
    t->add_exact({rule.path_id, rule.service_index}, std::move(call));
  }
  routing_ = plan;
}

std::uint16_t ControlPlane::reinjection_port(std::uint16_t path_id,
                                             const std::string& nf,
                                             std::uint16_t fallback) const {
  auto it = routing_.traversals.find(path_id);
  if (it == routing_.traversals.end()) return fallback;
  const place::Traversal& t = it->second;
  std::uint32_t ingress_pipeline =
      dp_->config().spec().pipeline_of_port(fallback);
  for (const place::TraversalStep& step : t.steps) {
    if (step.pipelet.kind == asic::PipeKind::kIngress) {
      ingress_pipeline = step.pipelet.pipeline;
    }
    if (std::find(step.executed.begin(), step.executed.end(), nf) !=
        step.executed.end()) {
      // Enter on the ingress pipe active when the NF ran.
      return static_cast<std::uint16_t>(
          ingress_pipeline * dp_->config().spec().ports_per_pipeline);
    }
  }
  return fallback;
}

void ControlPlane::add_traffic_class(const TrafficClassRule& rule) {
  for (sim::RuntimeTable* t : instances("Classifier.traffic_class")) {
    t->add_ternary(
        {prefix_field(rule.src), prefix_field(rule.dst),
         optional_exact(rule.protocol ? std::optional<std::uint64_t>(
                                            *rule.protocol)
                                      : std::nullopt,
                        0xff)},
        rule.priority,
        sim::ActionCall{"Classifier.classify",
                        {{"path_id", rule.path_id},
                         {"tenant", rule.tenant}}});
  }
}

void ControlPlane::add_firewall_rule(const FirewallRule& rule) {
  for (sim::RuntimeTable* t : instances("FW.acl")) {
    sim::ActionCall call{rule.permit ? "FW.permit" : "FW.deny", {}};
    t->add_ternary(
        {prefix_field(rule.src), prefix_field(rule.dst),
         optional_exact(rule.protocol ? std::optional<std::uint64_t>(
                                            *rule.protocol)
                                      : std::nullopt,
                        0xff),
         optional_exact(rule.dst_port ? std::optional<std::uint64_t>(
                                            *rule.dst_port)
                                      : std::nullopt,
                        0xffff)},
        rule.priority, std::move(call));
  }
}

void ControlPlane::add_vgw_mapping(const VgwMapping& mapping) {
  for (sim::RuntimeTable* t : instances("VGW.vip_map")) {
    t->add_exact({mapping.virtual_ip.value()},
                 sim::ActionCall{"VGW.translate",
                                 {{"phys_dst", mapping.physical_ip.value()},
                                  {"tenant", mapping.tenant}}});
  }
}

void ControlPlane::add_route(const RouteEntry& entry) {
  for (sim::RuntimeTable* t : instances("Router.ipv4_lpm")) {
    t->add_lpm(entry.prefix.address().value(), entry.prefix.length(),
               sim::ActionCall{"Router.route",
                               {{"port", entry.port},
                                {"dmac", entry.next_hop_mac.to_u64()}}});
  }
}

void ControlPlane::install_lb_session(std::uint32_t session_hash,
                                      net::Ipv4Addr backend) {
  for (sim::RuntimeTable* t : instances("LB.lb_session")) {
    t->add_exact({session_hash},
                 sim::ActionCall{"LB.modify_dstIp",
                                 {{"dip", backend.value()}}});
  }
}

std::size_t ControlPlane::service_punts(sim::SwitchOutput& out, int depth) {
  constexpr int kMaxDepth = 4;
  if (out.to_cpu.empty() || depth >= kMaxDepth) return 0;

  std::size_t handled = 0;
  auto punts = std::move(out.to_cpu);
  out.to_cpu.clear();

  for (auto& punt : punts) {
    auto header = sfc::read_sfc(punt.packet);
    if (!header || header->service_index == 0) {
      out.to_cpu.push_back(std::move(punt));  // not ours to fix
      continue;
    }
    // The NF that punted is the one before the current service index
    // (its check_sfcFlags glue advanced the index after it ran).
    const std::uint8_t nf_index =
        static_cast<std::uint8_t>(header->service_index - 1);
    auto nf = policies_.nf_at(header->service_path_id, nf_index);
    if (!nf) {
      out.to_cpu.push_back(std::move(punt));
      continue;
    }

    if (*nf == sfc::kLoadBalancer) {
      if (lb_pool_.backends.empty()) {
        out.to_cpu.push_back(std::move(punt));
        continue;
      }
      // Learn the session: hash the packet's 5-tuple exactly as the
      // data-plane hash engine does (at its current header contents),
      // spread across the pool, install, rewind, reinject (Fig. 4).
      auto tuple = punt.packet.five_tuple(sfc::kSfcHeaderSize);
      if (!tuple) {
        out.to_cpu.push_back(std::move(punt));
        continue;
      }
      const std::uint32_t hash = tuple->session_hash();
      const net::Ipv4Addr backend =
          lb_pool_.backends[hash % lb_pool_.backends.size()];
      install_lb_session(hash, backend);
      ++sessions_learned_;

      header->service_index = nf_index;  // rewind to re-run the LB
      header->meta.to_cpu = false;
      sfc::write_sfc(punt.packet, *header);

      const std::uint16_t entry_port = reinjection_port(
          header->service_path_id, *nf, header->meta.in_port);
      // Reinject under the punt's original epoch stamp: the packet
      // finishes on the chain generation it started on, even if a live
      // update flipped the version gate while it sat with the CPU.
      sim::SwitchOutput re = dp_->process(std::move(punt.packet), entry_port,
                                          /*from_cpu=*/true, punt.epoch);
      ++handled;
      // Service only the reinjection's own punts (bounded), then fold
      // everything into the original output. Punts this pass chose
      // not to handle stay in out.to_cpu untouched.
      handled += service_punts(re, depth + 1);
      for (auto& e : re.out) out.out.push_back(std::move(e));
      for (auto& c : re.to_cpu) out.to_cpu.push_back(std::move(c));
      out.resubmissions += re.resubmissions;
      out.recirculations += re.recirculations;
      out.recirc_ports.insert(out.recirc_ports.end(),
                              re.recirc_ports.begin(),
                              re.recirc_ports.end());
      if (re.dropped) {
        out.set_drop(re.drop_code,
                     "reinjected packet dropped: " + re.drop_reason);
      }
      continue;
    }

    if (*nf == sfc::kRouter) {
      ++route_misses_;  // no route: surface to the operator
      out.to_cpu.push_back(std::move(punt));
      continue;
    }

    out.to_cpu.push_back(std::move(punt));
  }
  return handled;
}

sim::SwitchOutput ControlPlane::inject(net::Packet packet,
                                       std::uint16_t in_port) {
  sim::SwitchOutput out = dp_->process(std::move(packet), in_port);
  service_punts(out);
  return out;
}

}  // namespace dejavu::control
