#include "control/p4info.hpp"

#include <sstream>

namespace dejavu::control {

namespace {

/// Minimal JSON escaping for our identifier-like strings.
std::string js(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string p4info_json(const p4ir::Program& program) {
  std::ostringstream out;
  out << "{\n  \"program\": " << js(program.name()) << ",\n";
  out << "  \"controls\": [\n";

  std::uint32_t table_id = 0x01000000;
  std::uint32_t action_id = 0x02000000;
  std::uint32_t register_id = 0x03000000;

  const auto& controls = program.controls();
  for (std::size_t ci = 0; ci < controls.size(); ++ci) {
    const p4ir::ControlBlock& control = controls[ci];
    out << "    {\n      \"name\": " << js(control.name()) << ",\n";

    out << "      \"tables\": [\n";
    const auto& tables = control.tables();
    for (std::size_t ti = 0; ti < tables.size(); ++ti) {
      const p4ir::Table& t = tables[ti];
      out << "        {\"id\": " << ++table_id << ", \"name\": "
          << js(t.name) << ", \"size\": " << t.max_entries
          << ", \"keys\": [";
      for (std::size_t k = 0; k < t.keys.size(); ++k) {
        if (k > 0) out << ", ";
        out << "{\"field\": " << js(t.keys[k].field) << ", \"match\": "
            << js(p4ir::to_string(t.keys[k].kind)) << ", \"bits\": "
            << t.keys[k].bits << "}";
      }
      out << "], \"actions\": [";
      for (std::size_t a = 0; a < t.actions.size(); ++a) {
        if (a > 0) out << ", ";
        out << js(t.actions[a]);
      }
      out << "], \"default_action\": " << js(t.default_action) << "}";
      out << (ti + 1 < tables.size() ? ",\n" : "\n");
    }
    out << "      ],\n";

    out << "      \"actions\": [\n";
    const auto& actions = control.actions();
    for (std::size_t ai = 0; ai < actions.size(); ++ai) {
      const p4ir::Action& a = actions[ai];
      out << "        {\"id\": " << ++action_id << ", \"name\": "
          << js(a.name) << ", \"params\": [";
      for (std::size_t p = 0; p < a.params.size(); ++p) {
        if (p > 0) out << ", ";
        out << "{\"name\": " << js(a.params[p].name) << ", \"bits\": "
            << a.params[p].bits << "}";
      }
      out << "]}";
      out << (ai + 1 < actions.size() ? ",\n" : "\n");
    }
    out << "      ],\n";

    out << "      \"registers\": [";
    const auto& registers = control.registers();
    for (std::size_t ri = 0; ri < registers.size(); ++ri) {
      if (ri > 0) out << ", ";
      out << "{\"id\": " << ++register_id << ", \"name\": "
          << js(registers[ri].name) << ", \"width\": "
          << registers[ri].width_bits << ", \"size\": "
          << registers[ri].size << "}";
    }
    out << "]\n    }";
    out << (ci + 1 < controls.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace dejavu::control
