// Match-action tables: key layout, bound actions, and sizing. A table
// is the unit the stage allocator places and the unit whose resources
// the compiler reports (paper Table 1 reads such a report).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace dejavu::p4ir {

enum class MatchKind {
  kExact,    // SRAM hash table
  kLpm,      // TCAM (or algorithmic; we account it as TCAM)
  kTernary,  // TCAM
};

const char* to_string(MatchKind kind);

/// One key component of a table.
struct TableKey {
  std::string field;  // dotted ref
  MatchKind kind = MatchKind::kExact;
  std::uint16_t bits = 0;

  bool operator==(const TableKey&) const = default;
};

/// A match-action table. `actions` name actions defined in the owning
/// control block; `default_action` runs on miss.
struct Table {
  std::string name;
  std::vector<TableKey> keys;
  std::vector<std::string> actions;
  std::string default_action;
  std::uint32_t max_entries = 1024;
  /// Register arrays this table's actions access; their SRAM is
  /// charged to the table's stage (registers live with their MAU).
  std::vector<std::string> registers;

  /// Keyless tables (always-run action) are legal in P4; they consume
  /// a table ID but no match memory.
  bool keyless() const { return keys.empty(); }

  /// True when any key component needs TCAM (ternary or LPM).
  bool needs_tcam() const;

  std::uint32_t key_bits() const;

  /// Fields matched on (the "match" set of dependency analysis).
  std::set<std::string> match_fields() const;

  bool operator==(const Table&) const = default;
};

}  // namespace dejavu::p4ir
