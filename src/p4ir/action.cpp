#include "p4ir/action.hpp"

#include <algorithm>

namespace dejavu::p4ir {

const char* to_string(PrimitiveOp op) {
  switch (op) {
    case PrimitiveOp::kNoop:
      return "noop";
    case PrimitiveOp::kSetImmediate:
      return "set_imm";
    case PrimitiveOp::kSetFromParam:
      return "set_param";
    case PrimitiveOp::kCopy:
      return "copy";
    case PrimitiveOp::kAdd:
      return "add";
    case PrimitiveOp::kHash:
      return "hash";
    case PrimitiveOp::kPushSfc:
      return "push_sfc";
    case PrimitiveOp::kPopSfc:
      return "pop_sfc";
    case PrimitiveOp::kDrop:
      return "drop";
    case PrimitiveOp::kSetContext:
      return "set_context";
    case PrimitiveOp::kRegisterRead:
      return "reg_read";
    case PrimitiveOp::kRegisterAdd:
      return "reg_add";
    case PrimitiveOp::kRegisterWrite:
      return "reg_write";
  }
  return "?";
}

std::set<std::string> Action::reads() const {
  std::set<std::string> r;
  for (const Primitive& p : primitives) {
    if (!p.src.empty()) r.insert(p.src);
    r.insert(p.srcs.begin(), p.srcs.end());
    if (p.op == PrimitiveOp::kAdd && !p.dst.empty()) r.insert(p.dst);
  }
  return r;
}

std::set<std::string> Action::writes() const {
  std::set<std::string> w;
  for (const Primitive& p : primitives) {
    if (!p.dst.empty()) w.insert(p.dst);
    if (p.op == PrimitiveOp::kDrop) {
      w.insert("standard_metadata.drop_flag");
    }
    if (p.op == PrimitiveOp::kSetContext) {
      w.insert("sfc.context");
    }
  }
  return w;
}

std::uint32_t Action::param_bits() const {
  std::uint32_t bits = 0;
  for (const Param& p : params) bits += p.bits;
  return bits;
}

std::uint32_t Action::vliw_slots() const {
  std::uint32_t slots = 0;
  for (const Primitive& p : primitives) {
    slots += p.op == PrimitiveOp::kNoop ? 0 : 1;
  }
  return slots;
}

const Action::Param* Action::find_param(const std::string& param_name) const {
  auto it = std::find_if(params.begin(), params.end(), [&](const Param& p) {
    return p.name == param_name;
  });
  return it == params.end() ? nullptr : &*it;
}

Primitive set_imm(std::string dst, std::uint64_t imm) {
  Primitive p;
  p.op = PrimitiveOp::kSetImmediate;
  p.dst = std::move(dst);
  p.imm = imm;
  return p;
}

Primitive set_from_param(std::string dst, std::string param) {
  Primitive p;
  p.op = PrimitiveOp::kSetFromParam;
  p.dst = std::move(dst);
  p.param = std::move(param);
  return p;
}

Primitive copy_field(std::string dst, std::string src) {
  Primitive p;
  p.op = PrimitiveOp::kCopy;
  p.dst = std::move(dst);
  p.src = std::move(src);
  return p;
}

Primitive add_imm(std::string dst, std::uint64_t imm) {
  Primitive p;
  p.op = PrimitiveOp::kAdd;
  p.dst = std::move(dst);
  p.imm = imm;
  return p;
}

Primitive hash_fields(std::string dst, std::vector<std::string> srcs) {
  Primitive p;
  p.op = PrimitiveOp::kHash;
  p.dst = std::move(dst);
  p.srcs = std::move(srcs);
  return p;
}

Primitive push_sfc_primitive() {
  Primitive p;
  p.op = PrimitiveOp::kPushSfc;
  return p;
}

Primitive pop_sfc_primitive() {
  Primitive p;
  p.op = PrimitiveOp::kPopSfc;
  return p;
}

Primitive drop_primitive() {
  Primitive p;
  p.op = PrimitiveOp::kDrop;
  return p;
}

Primitive set_context(std::uint8_t key, std::string value_param) {
  Primitive p;
  p.op = PrimitiveOp::kSetContext;
  p.imm = key;
  p.param = std::move(value_param);
  return p;
}

Primitive register_read(std::string dst, std::string reg,
                        std::string index_field) {
  Primitive p;
  p.op = PrimitiveOp::kRegisterRead;
  p.dst = std::move(dst);
  p.param = std::move(reg);
  p.src = std::move(index_field);
  return p;
}

Primitive register_add(std::string reg, std::string index_field,
                       std::uint64_t addend, std::string dst_after) {
  Primitive p;
  p.op = PrimitiveOp::kRegisterAdd;
  p.param = std::move(reg);
  p.src = std::move(index_field);
  p.imm = addend;
  p.dst = std::move(dst_after);
  return p;
}

Primitive register_write(std::string reg, std::string index_field,
                         std::string value_field) {
  Primitive p;
  p.op = PrimitiveOp::kRegisterWrite;
  p.param = std::move(reg);
  p.src = std::move(index_field);
  p.srcs = {std::move(value_field)};
  return p;
}

}  // namespace dejavu::p4ir
