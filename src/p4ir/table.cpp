#include "p4ir/table.hpp"

namespace dejavu::p4ir {

const char* to_string(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kLpm:
      return "lpm";
    case MatchKind::kTernary:
      return "ternary";
  }
  return "?";
}

bool Table::needs_tcam() const {
  for (const TableKey& k : keys) {
    if (k.kind != MatchKind::kExact) return true;
  }
  return false;
}

std::uint32_t Table::key_bits() const {
  std::uint32_t bits = 0;
  for (const TableKey& k : keys) bits += k.bits;
  return bits;
}

std::set<std::string> Table::match_fields() const {
  std::set<std::string> fields;
  for (const TableKey& k : keys) fields.insert(k.field);
  return fields;
}

}  // namespace dejavu::p4ir
