#include "p4ir/program.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::p4ir {

void Program::add_header_type(HeaderType type) {
  if (const HeaderType* existing = find_header_type(type.name)) {
    if (*existing != type) {
      throw std::invalid_argument("header type '" + type.name +
                                  "' redefined with a different layout");
    }
    return;
  }
  types_.push_back(std::move(type));
}

const HeaderType* Program::find_header_type(const std::string& name) const {
  auto it = std::find_if(types_.begin(), types_.end(),
                         [&](const HeaderType& t) { return t.name == name; });
  return it == types_.end() ? nullptr : &*it;
}

std::optional<std::uint16_t> Program::field_bits(
    const std::string& dotted) const {
  auto ref = FieldRef::parse(dotted);
  if (!ref) return std::nullopt;
  const HeaderType* type = find_header_type(ref->header);
  if (type == nullptr) return std::nullopt;
  const Field* field = type->find_field(ref->field);
  if (field == nullptr) return std::nullopt;
  return field->bits;
}

void Program::add_control(ControlBlock block) {
  if (find_control(block.name()) != nullptr) {
    throw std::invalid_argument("duplicate control block '" + block.name() +
                                "' in program '" + name_ + "'");
  }
  controls_.push_back(std::move(block));
}

const ControlBlock* Program::find_control(const std::string& name) const {
  auto it = std::find_if(controls_.begin(), controls_.end(),
                         [&](const ControlBlock& c) {
                           return c.name() == name;
                         });
  return it == controls_.end() ? nullptr : &*it;
}

ControlBlock* Program::find_control(const std::string& name) {
  auto it = std::find_if(controls_.begin(), controls_.end(),
                         [&](const ControlBlock& c) {
                           return c.name() == name;
                         });
  return it == controls_.end() ? nullptr : &*it;
}

void Program::annotate(const std::string& key, const std::string& value) {
  annotations_[key] = value;
}

std::optional<std::string> Program::annotation(const std::string& key) const {
  auto it = annotations_.find(key);
  if (it == annotations_.end()) return std::nullopt;
  return it->second;
}

bool Program::validate(const TupleIdTable& ids, std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = "program '" + name_ + "': " + msg;
    return false;
  };

  std::string sub;
  if (!parser_.vertices().empty() && !parser_.validate(ids, &sub)) {
    return fail("parser: " + sub);
  }
  // Parser vertices must reference known header types.
  for (std::uint32_t v : parser_.vertices()) {
    const ParserTuple& tuple = ids.tuple_of(v);
    if (find_header_type(tuple.header_type) == nullptr) {
      return fail("parser references unknown header type '" +
                  tuple.header_type + "'");
    }
  }

  auto check_field = [&](const std::string& dotted, const std::string& where) {
    if (!field_bits(dotted)) {
      sub = where + " references unknown field '" + dotted + "'";
      return false;
    }
    return true;
  };

  for (const ControlBlock& block : controls_) {
    if (!block.validate(&sub)) return fail(sub);
    for (const Table& t : block.tables()) {
      for (const TableKey& k : t.keys) {
        // Keys may reference block-local temporaries ("local.<name>"),
        // e.g. the sessionHash variable of the Fig. 4 load balancer.
        if (k.field.rfind("local.", 0) == 0) continue;
        if (!check_field(k.field, "table '" + t.name + "'")) return fail(sub);
      }
    }
    for (const Action& a : block.actions()) {
      for (const Primitive& p : a.primitives) {
        // Hash destinations may be block-local temporaries (e.g. the
        // sessionHash variable in Fig. 4), written as "local.<name>".
        if (!p.dst.empty() && p.dst.rfind("local.", 0) != 0 &&
            !check_field(p.dst, "action '" + a.name + "'")) {
          return fail(sub);
        }
        if (!p.src.empty() && p.src.rfind("local.", 0) != 0 &&
            !check_field(p.src, "action '" + a.name + "'")) {
          return fail(sub);
        }
        for (const auto& s : p.srcs) {
          if (s.rfind("local.", 0) != 0 &&
              !check_field(s, "action '" + a.name + "'")) {
            return fail(sub);
          }
        }
      }
    }
  }
  return true;
}

std::size_t Program::table_count() const {
  std::size_t n = 0;
  for (const ControlBlock& c : controls_) n += c.tables().size();
  return n;
}

}  // namespace dejavu::p4ir
