// Control blocks: the modular NF unit of the Dejavu programming
// interface (§3.1) — `control XX_control(inout all_headers_t hdr)`.
// A block owns actions and tables and an ordered apply list; each apply
// entry may be gated by a condition (compiled to a gateway on the ASIC).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "p4ir/action.hpp"
#include "p4ir/table.hpp"

namespace dejavu::p4ir {

/// Runtime semantics of a guard: run the table always, only when the
/// first guard table hit, or only when it missed.
enum class GuardMode : std::uint8_t { kAlways, kIfHit, kIfMiss };

/// Comparison op of a gateway condition (RMT gateways support
/// equality and range checks).
enum class GuardCmp : std::uint8_t { kEq, kNe, kGt, kLt };

/// A runtime-evaluable gateway condition: run the entry when
/// `field <cmp> value` holds. `negate` is a legacy convenience alias
/// for kNe (setting it flips kEq to kNe at construction sites).
struct FieldGuard {
  std::string field;
  std::uint64_t value = 0;
  bool negate = false;  // kept for brace-init ergonomics: true => kNe
  GuardCmp cmp = GuardCmp::kEq;

  GuardCmp effective_cmp() const {
    if (cmp == GuardCmp::kEq && negate) return GuardCmp::kNe;
    return cmp;
  }
  bool holds(std::uint64_t v) const {
    switch (effective_cmp()) {
      case GuardCmp::kEq:
        return v == value;
      case GuardCmp::kNe:
        return v != value;
      case GuardCmp::kGt:
        return v > value;
      case GuardCmp::kLt:
        return v < value;
    }
    return false;
  }

  bool operator==(const FieldGuard&) const = default;
};

/// One step of a control block's apply{} body: run `table`, optionally
/// under a gateway condition. `guard_fields` are the fields the
/// condition reads (e.g. sfc.service_index); `guard_tables` are tables
/// whose hit/miss result the condition consumes (successor deps).
/// Entries carrying different non-empty `branch_id`s are mutually
/// exclusive (if/else branches of parallel composition): no packet
/// executes both, so no dependency arises between them and they may
/// share MAU stages.
struct ApplyEntry {
  std::string table;
  std::vector<std::string> guard_fields;
  std::vector<std::string> guard_tables;
  GuardMode mode = GuardMode::kAlways;
  std::string branch_id;
  std::optional<FieldGuard> field_guard;

  bool gated() const {
    return !guard_fields.empty() || !guard_tables.empty() ||
           field_guard.has_value();
  }
  bool operator==(const ApplyEntry&) const = default;
};

/// A stateful register array (P4 `register<bit<W>>(size)`): per-cell
/// state persisting across packets, read/modified by the kRegister*
/// primitives. Indexing wraps modulo `size` like hardware index
/// truncation.
struct RegisterDef {
  std::string name;
  std::uint16_t width_bits = 32;
  std::uint32_t size = 1024;

  bool operator==(const RegisterDef&) const = default;
};

class ControlBlock {
 public:
  ControlBlock() = default;
  explicit ControlBlock(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Add definitions. Throws std::invalid_argument on duplicate names.
  void add_action(Action action);
  void add_table(Table table);
  void add_register(RegisterDef reg);

  /// Append an apply step. The table (and any guard tables) must exist.
  void apply(ApplyEntry entry);
  void apply_table(const std::string& table) {
    ApplyEntry entry;
    entry.table = table;
    apply(std::move(entry));
  }

  const std::vector<Action>& actions() const { return actions_; }
  const std::vector<Table>& tables() const { return tables_; }
  const std::vector<RegisterDef>& registers() const { return registers_; }
  const std::vector<ApplyEntry>& apply_order() const { return apply_; }

  const Action* find_action(const std::string& name) const;
  const Table* find_table(const std::string& name) const;
  Table* find_table(const std::string& name);
  const RegisterDef* find_register(const std::string& name) const;

  /// All fields the actions bound to `table` may read / write,
  /// including the default action.
  std::set<std::string> table_action_reads(const Table& table) const;
  std::set<std::string> table_action_writes(const Table& table) const;

  /// Max VLIW slots across the table's bound actions — the instruction
  /// memory the table needs in its stage.
  std::uint32_t table_vliw_slots(const Table& table) const;

  /// Check internal consistency (all referenced actions/tables exist).
  /// Returns true and leaves `why` untouched on success.
  bool validate(std::string* why = nullptr) const;

  bool operator==(const ControlBlock&) const = default;

 private:
  std::string name_;
  std::vector<Action> actions_;
  std::vector<Table> tables_;
  std::vector<RegisterDef> registers_;
  std::vector<ApplyEntry> apply_;
};

}  // namespace dejavu::p4ir
