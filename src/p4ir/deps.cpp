#include "p4ir/deps.hpp"

#include <algorithm>

namespace dejavu::p4ir {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::kNone:
      return "none";
    case DepKind::kSuccessor:
      return "successor";
    case DepKind::kAction:
      return "action";
    case DepKind::kMatch:
      return "match";
  }
  return "?";
}

namespace {

/// First common element of a sorted set and any container, or "".
std::string first_intersection(const std::set<std::string>& a,
                               const std::set<std::string>& b) {
  for (const auto& f : a) {
    if (b.contains(f)) return f;
  }
  return "";
}

}  // namespace

DependencyGraph analyze_dependencies(
    const std::vector<const ControlBlock*>& blocks, bool sequential_barriers) {
  DependencyGraph graph;

  std::vector<std::size_t> block_first_table;  // index into graph.tables
  for (const ControlBlock* block : blocks) {
    block_first_table.push_back(graph.tables.size());
    for (const ApplyEntry& entry : block->apply_order()) {
      const Table* table = block->find_table(entry.table);
      AnalyzedTable at;
      at.block = block;
      at.table = table;
      at.match_fields = table->match_fields();
      at.action_reads = block->table_action_reads(*table);
      at.action_writes = block->table_action_writes(*table);
      at.guard_fields = entry.guard_fields;
      at.guard_tables = entry.guard_tables;
      at.guard_mode = entry.mode;
      at.branch_id = entry.branch_id;
      at.field_guard = entry.field_guard;
      if (entry.field_guard) {
        at.guard_fields.push_back(entry.field_guard->field);
      }
      at.gated = entry.gated();
      graph.tables.push_back(std::move(at));
    }
  }

  // Pairwise dependencies between earlier table i and later table j.
  for (std::size_t j = 0; j < graph.tables.size(); ++j) {
    const AnalyzedTable& b = graph.tables[j];
    for (std::size_t i = 0; i < j; ++i) {
      const AnalyzedTable& a = graph.tables[i];

      // Mutually exclusive branches (parallel composition): no packet
      // executes both tables, so no dependency can arise.
      if (!a.branch_id.empty() && !b.branch_id.empty() &&
          a.branch_id != b.branch_id) {
        continue;
      }

      // Match dependency: a writes what b matches on (including the
      // fields of b's gateway condition, which are matched by the
      // gateway in b's stage).
      std::set<std::string> b_match = b.match_fields;
      b_match.insert(b.guard_fields.begin(), b.guard_fields.end());
      if (std::string f = first_intersection(a.action_writes, b_match);
          !f.empty()) {
        graph.deps.push_back({i, j, DepKind::kMatch, f});
        continue;
      }

      // Action dependency: write-read or write-write between actions.
      if (std::string f = first_intersection(a.action_writes, b.action_reads);
          !f.empty()) {
        graph.deps.push_back({i, j, DepKind::kAction, f});
        continue;
      }
      if (std::string f = first_intersection(a.action_writes,
                                             b.action_writes);
          !f.empty()) {
        graph.deps.push_back({i, j, DepKind::kAction, f});
        continue;
      }

      // Successor dependency: b's gate reads a's hit/miss result.
      if (a.table != nullptr &&
          std::find(b.guard_tables.begin(), b.guard_tables.end(),
                    a.table->name) != b.guard_tables.end()) {
        graph.deps.push_back({i, j, DepKind::kSuccessor, ""});
      }
    }
  }

  if (sequential_barriers) {
    // Implicit dependency between consecutive control blocks (§3.2):
    // last table of block k -> first table of block k+1, stage-advancing.
    for (std::size_t k = 0; k + 1 < block_first_table.size(); ++k) {
      std::size_t next_first = block_first_table[k + 1];
      if (next_first == 0 || next_first >= graph.tables.size()) continue;
      std::size_t prev_last = next_first - 1;
      if (prev_last < block_first_table[k]) continue;  // empty block
      bool already = std::any_of(
          graph.deps.begin(), graph.deps.end(), [&](const Dependency& d) {
            return d.from == prev_last && d.to == next_first &&
                   d.kind != DepKind::kSuccessor;
          });
      if (!already) {
        graph.deps.push_back(
            {prev_last, next_first, DepKind::kAction, "<control-order>"});
      }
    }
  }

  return graph;
}

std::vector<std::uint32_t> DependencyGraph::min_stages() const {
  std::vector<std::uint32_t> stage(tables.size(), 0);
  // Tables are already in topological (program) order, so one forward
  // pass suffices.
  for (const Dependency& d : deps) {
    std::uint32_t need = d.kind == DepKind::kSuccessor
                             ? stage[d.from]           // may share a stage
                             : stage[d.from] + 1;      // strictly later
    stage[d.to] = std::max(stage[d.to], need);
  }
  return stage;
}

std::uint32_t DependencyGraph::critical_path_stages() const {
  if (tables.empty()) return 0;
  auto stages = min_stages();
  return *std::max_element(stages.begin(), stages.end()) + 1;
}

}  // namespace dejavu::p4ir
