// A whole P4 program: header types, a parser DAG, and control blocks.
// An individual NF is a Program with one control block; merge composes
// several NF Programs into one multi-pipelet Program.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "p4ir/control.hpp"
#include "p4ir/parser_graph.hpp"
#include "p4ir/types.hpp"

namespace dejavu::p4ir {

class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Header types. Adding a type whose name already exists with a
  /// different layout throws (merge relies on structural agreement);
  /// re-adding an identical type is a no-op.
  void add_header_type(HeaderType type);
  const std::vector<HeaderType>& header_types() const { return types_; }
  const HeaderType* find_header_type(const std::string& name) const;

  /// Resolve a dotted field reference to its bit width; nullopt when
  /// the header type or field is unknown.
  std::optional<std::uint16_t> field_bits(const std::string& dotted) const;

  ParserGraph& parser() { return parser_; }
  const ParserGraph& parser() const { return parser_; }

  void add_control(ControlBlock block);
  const std::vector<ControlBlock>& controls() const { return controls_; }
  std::vector<ControlBlock>& controls() { return controls_; }
  const ControlBlock* find_control(const std::string& name) const;
  ControlBlock* find_control(const std::string& name);

  /// Free-form annotations (e.g. the NF name a control came from).
  void annotate(const std::string& key, const std::string& value);
  std::optional<std::string> annotation(const std::string& key) const;

  /// Validate everything: header types behind field refs exist, parser
  /// is well-formed, control blocks are self-consistent.
  bool validate(const TupleIdTable& ids, std::string* why = nullptr) const;

  /// Total number of tables across all control blocks.
  std::size_t table_count() const;

 private:
  std::string name_;
  std::vector<HeaderType> types_;
  ParserGraph parser_;
  std::vector<ControlBlock> controls_;
  std::map<std::string, std::string> annotations_;
};

}  // namespace dejavu::p4ir
