#include "p4ir/parser_graph.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dejavu::p4ir {

std::uint32_t TupleIdTable::intern(const ParserTuple& tuple) {
  auto [it, inserted] =
      ids_.emplace(tuple, static_cast<std::uint32_t>(by_id_.size()));
  if (inserted) by_id_.push_back(tuple);
  return it->second;
}

std::optional<std::uint32_t> TupleIdTable::find(
    const ParserTuple& tuple) const {
  auto it = ids_.find(tuple);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const ParserTuple& TupleIdTable::tuple_of(std::uint32_t id) const {
  return by_id_.at(id);
}

std::uint32_t ParserGraph::add_vertex(TupleIdTable& ids,
                                      const ParserTuple& tuple) {
  std::uint32_t id = ids.intern(tuple);
  if (!has_vertex(id)) vertices_.push_back(id);
  return id;
}

bool ParserGraph::has_vertex(std::uint32_t id) const {
  return std::find(vertices_.begin(), vertices_.end(), id) != vertices_.end();
}

void ParserGraph::add_edge(ParserEdge edge) {
  if (!has_vertex(edge.from) || !has_vertex(edge.to)) {
    throw std::invalid_argument("parser edge endpoint not in graph");
  }
  for (const ParserEdge& e : edges_) {
    if (e.from != edge.from) continue;
    if (e.is_default && edge.is_default && e.to != edge.to) {
      throw std::invalid_argument(
          "conflicting default transitions from vertex " +
          std::to_string(edge.from));
    }
    if (!e.is_default && !edge.is_default &&
        e.select_field == edge.select_field &&
        e.select_value == edge.select_value && e.to != edge.to) {
      throw std::invalid_argument("conflicting selector " + edge.select_field +
                                  "=" + std::to_string(edge.select_value) +
                                  " from vertex " + std::to_string(edge.from));
    }
    if (e == edge) return;  // exact duplicate: idempotent add
  }
  edges_.push_back(std::move(edge));
}

void ParserGraph::set_start(std::uint32_t vertex_id) {
  if (!has_vertex(vertex_id)) {
    throw std::invalid_argument("start vertex not in graph");
  }
  start_ = vertex_id;
  start_set_ = true;
}

std::vector<ParserEdge> ParserGraph::out_edges(std::uint32_t from) const {
  std::vector<ParserEdge> out;
  for (const ParserEdge& e : edges_) {
    if (e.from == from && !e.is_default) out.push_back(e);
  }
  for (const ParserEdge& e : edges_) {
    if (e.from == from && e.is_default) out.push_back(e);
  }
  return out;
}

bool ParserGraph::validate(const TupleIdTable& ids, std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!start_set_) return fail("no start vertex set");
  if (vertices_.empty()) return fail("empty parser graph");

  // Reachability from start.
  std::set<std::uint32_t> reached{start_};
  std::vector<std::uint32_t> frontier{start_};
  while (!frontier.empty()) {
    std::uint32_t v = frontier.back();
    frontier.pop_back();
    for (const ParserEdge& e : edges_) {
      if (e.from == v && reached.insert(e.to).second) {
        frontier.push_back(e.to);
      }
    }
  }
  for (std::uint32_t v : vertices_) {
    if (!reached.contains(v)) {
      return fail("vertex " + ids.tuple_of(v).to_string() +
                  " unreachable from start");
    }
  }

  // Acyclicity: offsets must strictly increase along edges (a header
  // can only be followed by a header deeper in the packet), which also
  // guarantees a DAG. Equal-offset edges are rejected.
  for (const ParserEdge& e : edges_) {
    const ParserTuple& from = ids.tuple_of(e.from);
    const ParserTuple& to = ids.tuple_of(e.to);
    if (to.offset <= from.offset) {
      return fail("edge " + from.to_string() + " -> " + to.to_string() +
                  " does not advance into the packet");
    }
  }
  return true;
}

}  // namespace dejavu::p4ir
