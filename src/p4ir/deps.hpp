// Table dependency analysis, following the classification of Jose et
// al. (NSDI '15, "Compiling packet programs to reconfigurable
// switches"), which the paper cites for its resource model (§3.2 fn 2):
//
//   * match dependency      — an earlier table's action writes a field
//                             a later table matches on; the later table
//                             must sit in a strictly later stage.
//   * action dependency     — an earlier table's action writes a field
//                             a later table's action reads or writes;
//                             also forces a strictly later stage in our
//                             model (RMT can overlap partially, but
//                             never the same stage).
//   * successor dependency  — a later table's execution is predicated
//                             on an earlier table's result; the tables
//                             may share a stage via gateway predication.
//
// Sequential composition of NFs (§3.2) introduces an implicit successor
// dependency between the last table of one NF and every table of the
// next, which is what makes sequential chains consume stage depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4ir/control.hpp"

namespace dejavu::p4ir {

enum class DepKind {
  kNone,
  kSuccessor,
  kAction,
  kMatch,
};

const char* to_string(DepKind kind);

/// A dependency edge between tables, identified by their positions in
/// the analyzed sequence (from < to).
struct Dependency {
  std::size_t from = 0;
  std::size_t to = 0;
  DepKind kind = DepKind::kNone;
  std::string field;  // the field inducing the dep ("" for successor)

  bool operator==(const Dependency&) const = default;
};

/// One table in flattened program order, with its resolved read/write
/// sets and apply-time guard info.
struct AnalyzedTable {
  const ControlBlock* block = nullptr;
  const Table* table = nullptr;
  std::set<std::string> match_fields;
  std::set<std::string> action_reads;
  std::set<std::string> action_writes;
  std::vector<std::string> guard_fields;
  std::vector<std::string> guard_tables;
  GuardMode guard_mode = GuardMode::kAlways;
  std::string branch_id;
  std::optional<FieldGuard> field_guard;
  bool gated = false;
};

/// The full dependency analysis result for a sequence of control
/// blocks applied in order.
struct DependencyGraph {
  std::vector<AnalyzedTable> tables;
  std::vector<Dependency> deps;

  /// Minimum stage index per table honoring all dependencies: match and
  /// action deps advance the stage, successor deps allow sharing.
  /// This is the dependency-only lower bound (ignores resource limits).
  std::vector<std::uint32_t> min_stages() const;

  /// Length of the critical path in stages (1 + max of min_stages).
  std::uint32_t critical_path_stages() const;
};

/// Flatten `blocks` in apply order and compute all pairwise deps.
/// When `sequential_barriers` is set, an implicit stage-advancing
/// (action-kind) dependency is added from the last table of each block
/// to the first table of the next block — the "implicit dependency"
/// that makes sequential composition (§3.2) place chained NFs in
/// separate MAU stages.
DependencyGraph analyze_dependencies(
    const std::vector<const ControlBlock*>& blocks,
    bool sequential_barriers = true);

}  // namespace dejavu::p4ir
