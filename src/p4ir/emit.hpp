// P4-16-style source emission: render an IR program (typically the
// composed multi-pipelet program) as human-readable P4-like text. This
// is what a code-level composition tool ships to the vendor compiler;
// here it doubles as the inspectable artifact of a merge and as
// documentation of what actually got deployed.
//
// The dialect is P4-16-shaped but not vendor-exact: platform intrinsics
// (push/pop of the SFC header, hashing) appear as extern calls.
#pragma once

#include <string>

#include "p4ir/program.hpp"

namespace dejavu::p4ir {

struct EmitOptions {
  bool with_comments = true;  // provenance comments on glue constructs
  int indent = 4;
};

/// Emit the whole program: header types, parser, every control block.
std::string emit_p4(const Program& program, const TupleIdTable& ids,
                    const EmitOptions& options = {});

/// Emit just one control block (useful for diffing single pipelets).
std::string emit_control(const ControlBlock& control,
                         const EmitOptions& options = {});

}  // namespace dejavu::p4ir
