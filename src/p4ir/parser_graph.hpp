// Parser DAGs (paper §3, "Generic Parser").
//
// A parser is a DAG whose vertices are headers at particular packet
// offsets and whose edges are transitions selected by a field value
// (e.g. ethernet.ether_type == 0x0800 -> ipv4). The same header type at
// two different offsets is two distinct vertices. Vertex identity for
// cross-program merging is the (header_type, offset) tuple, mapped to a
// global ID through a shared lookup table exactly as §3 describes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dejavu::p4ir {

/// The (header_type, byte offset) tuple that identifies a parse vertex
/// across programs. Offset is the byte position of the header within
/// the packet; kVariableOffset marks headers whose position depends on
/// earlier variable-length headers (identified then by type + marker).
struct ParserTuple {
  std::string header_type;
  std::uint32_t offset = 0;

  auto operator<=>(const ParserTuple&) const = default;
  std::string to_string() const {
    return header_type + "@" + std::to_string(offset);
  }
};

/// The global-ID lookup table of §3: assigns each distinct
/// (header_type, offset) tuple a small dense ID shared by all programs
/// being merged. "The size of this table should be small as normal
/// packets have limited header types."
class TupleIdTable {
 public:
  /// Get the ID for a tuple, assigning the next free ID when new.
  std::uint32_t intern(const ParserTuple& tuple);

  /// Lookup without assignment; nullopt when unknown.
  std::optional<std::uint32_t> find(const ParserTuple& tuple) const;

  /// Reverse lookup. Throws std::out_of_range for unknown IDs.
  const ParserTuple& tuple_of(std::uint32_t id) const;

  std::size_t size() const { return by_id_.size(); }

 private:
  std::map<ParserTuple, std::uint32_t> ids_;
  std::vector<ParserTuple> by_id_;
};

/// A transition selector: "from vertex X, if field F equals V, go to
/// vertex Y". A default transition has no select value (accept any).
struct ParserEdge {
  std::uint32_t from = 0;  // global vertex IDs
  std::uint32_t to = 0;
  std::string select_field;  // dotted ref, e.g. "ethernet.ether_type";
                             // empty for unconditional transitions
  std::uint64_t select_value = 0;
  bool is_default = false;  // taken when no other edge from `from` matches

  bool operator==(const ParserEdge&) const = default;
};

/// A parser DAG over globally-identified vertices. Terminal "accept" is
/// implicit: a vertex without outgoing edges accepts.
class ParserGraph {
 public:
  /// Add (or get) the vertex for `tuple`, interning through `ids`.
  std::uint32_t add_vertex(TupleIdTable& ids, const ParserTuple& tuple);

  /// Add an edge; both endpoints must already be vertices of this
  /// graph. Throws std::invalid_argument otherwise, or when the edge
  /// duplicates an existing (from, field, value) selector with a
  /// different target.
  void add_edge(ParserEdge edge);

  void set_start(std::uint32_t vertex_id);
  std::uint32_t start() const { return start_; }

  bool has_vertex(std::uint32_t id) const;
  const std::vector<std::uint32_t>& vertices() const { return vertices_; }
  const std::vector<ParserEdge>& edges() const { return edges_; }

  /// Outgoing edges of a vertex, selective edges first, default last.
  std::vector<ParserEdge> out_edges(std::uint32_t from) const;

  /// True when every vertex is reachable from the start vertex and the
  /// graph is acyclic. `why` receives a diagnostic when invalid.
  bool validate(const TupleIdTable& ids, std::string* why = nullptr) const;

  bool operator==(const ParserGraph&) const = default;

 private:
  std::uint32_t start_ = 0;
  bool start_set_ = false;
  std::vector<std::uint32_t> vertices_;
  std::vector<ParserEdge> edges_;
};

}  // namespace dejavu::p4ir
