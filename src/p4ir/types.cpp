#include "p4ir/types.hpp"

#include <algorithm>

namespace dejavu::p4ir {

std::uint32_t HeaderType::bit_width() const {
  std::uint32_t w = 0;
  for (const Field& f : fields) w += f.bits;
  return w;
}

const Field* HeaderType::find_field(const std::string& field_name) const {
  auto it = std::find_if(fields.begin(), fields.end(), [&](const Field& f) {
    return f.name == field_name;
  });
  return it == fields.end() ? nullptr : &*it;
}

std::optional<std::uint32_t> HeaderType::bit_offset(
    const std::string& field_name) const {
  std::uint32_t off = 0;
  for (const Field& f : fields) {
    if (f.name == field_name) return off;
    off += f.bits;
  }
  return std::nullopt;
}

std::optional<FieldRef> FieldRef::parse(const std::string& dotted) {
  auto dot = dotted.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == dotted.size()) {
    return std::nullopt;
  }
  return FieldRef{dotted.substr(0, dot), dotted.substr(dot + 1)};
}

HeaderType ethernet_type() {
  return HeaderType{"ethernet",
                    {{"dst_addr", 48}, {"src_addr", 48}, {"ether_type", 16}}};
}

HeaderType sfc_type() {
  // Matches sfc::SfcHeader's wire layout: 20 bytes total.
  return HeaderType{"sfc",
                    {{"service_path_id", 16},
                     {"service_index", 8},
                     {"in_port", 9},
                     {"out_port", 9},
                     {"resubmit_flag", 1},
                     {"recirculate_flag", 1},
                     {"drop_flag", 1},
                     {"mirror_flag", 1},
                     {"to_cpu_flag", 1},
                     {"reserved", 9},
                     {"context", 96},
                     {"next_protocol", 8}}};
}

HeaderType ipv4_type() {
  return HeaderType{"ipv4",
                    {{"version", 4},
                     {"ihl", 4},
                     {"dscp_ecn", 8},
                     {"total_len", 16},
                     {"identification", 16},
                     {"flags_frag", 16},
                     {"ttl", 8},
                     {"protocol", 8},
                     {"hdr_checksum", 16},
                     {"src_addr", 32},
                     {"dst_addr", 32}}};
}

HeaderType tcp_type() {
  return HeaderType{"tcp",
                    {{"src_port", 16},
                     {"dst_port", 16},
                     {"seq_no", 32},
                     {"ack_no", 32},
                     {"data_offset", 4},
                     {"res", 4},
                     {"flags", 8},
                     {"window", 16},
                     {"checksum", 16},
                     {"urgent_ptr", 16}}};
}

HeaderType udp_type() {
  return HeaderType{
      "udp",
      {{"src_port", 16}, {"dst_port", 16}, {"length", 16}, {"checksum", 16}}};
}

HeaderType vxlan_type() {
  return HeaderType{
      "vxlan",
      {{"flags", 8}, {"reserved1", 24}, {"vni", 24}, {"reserved2", 8}}};
}

HeaderType standard_metadata_type() {
  return HeaderType{"standard_metadata",
                    {{"ingress_port", 9},
                     {"egress_spec", 9},
                     {"egress_port", 9},
                     {"packet_length", 32},
                     {"resubmit_flag", 1},
                     {"recirculate_flag", 1},
                     {"drop_flag", 1},
                     {"mirror_flag", 1},
                     {"to_cpu_flag", 1}}};
}

std::vector<HeaderType> builtin_header_types() {
  return {ethernet_type(), sfc_type(),   ipv4_type(),
          tcp_type(),      udp_type(),   vxlan_type(),
          standard_metadata_type()};
}

}  // namespace dejavu::p4ir
