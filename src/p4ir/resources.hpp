// Per-table hardware resource estimation — the information "usually
// available from the P4 compiler, which typically reports the exact
// amount of resource usage, e.g., MAU stages, SRAMs, TCAMs, of a P4
// program" (§3.2). The estimator uses RMT/Tofino-like memory geometry:
//
//   * SRAM: 1K-entry x 128-bit blocks backing exact-match tables and
//     action data.
//   * TCAM: 512-entry x 44-bit blocks backing ternary/LPM tables.
//   * Match crossbar: bytes of header fields wired into a stage's
//     matchers (exact and ternary crossbars accounted separately).
//   * VLIW: instruction slots for the widest action of the table.
//   * Gateways: predication units consumed by gated apply entries.
//   * Table IDs: logical table slots (one per table, plus one per
//     gateway, matching how Tofino burns logical IDs for gateways).
#pragma once

#include <cstdint>
#include <string>

#include "p4ir/control.hpp"
#include "p4ir/deps.hpp"

namespace dejavu::p4ir {

/// Memory geometry constants (RMT/Tofino-like; see module comment).
inline constexpr std::uint32_t kSramBlockEntries = 1024;
inline constexpr std::uint32_t kSramBlockBits = 128;
inline constexpr std::uint32_t kTcamBlockEntries = 512;
inline constexpr std::uint32_t kTcamBlockBits = 44;
/// Per-entry bookkeeping bits in exact-match SRAM (version/valid etc.).
inline constexpr std::uint32_t kExactOverheadBits = 4;

/// Resource vector of one table (or an aggregate of tables).
struct TableResources {
  std::uint32_t table_ids = 0;
  std::uint32_t gateways = 0;
  std::uint32_t sram_blocks = 0;
  std::uint32_t tcam_blocks = 0;
  std::uint32_t vliw_slots = 0;
  std::uint32_t exact_xbar_bytes = 0;
  std::uint32_t ternary_xbar_bytes = 0;

  TableResources& operator+=(const TableResources& o);
  friend TableResources operator+(TableResources a, const TableResources& b) {
    a += b;
    return a;
  }
  /// True when every component is <= the corresponding budget entry.
  bool fits_within(const TableResources& budget) const;
  std::string to_string() const;
  bool operator==(const TableResources&) const = default;
};

/// Estimate the resources of `table` as applied in `block`. `gated`
/// marks tables applied under a condition (consuming a gateway).
TableResources estimate_table(const ControlBlock& block, const Table& table,
                              bool gated);

/// Estimate using an AnalyzedTable from dependency analysis.
TableResources estimate_table(const AnalyzedTable& at);

}  // namespace dejavu::p4ir
