#include "p4ir/control.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::p4ir {

void ControlBlock::add_action(Action action) {
  if (find_action(action.name) != nullptr) {
    throw std::invalid_argument("duplicate action '" + action.name +
                                "' in control '" + name_ + "'");
  }
  actions_.push_back(std::move(action));
}

void ControlBlock::add_table(Table table) {
  if (find_table(table.name) != nullptr) {
    throw std::invalid_argument("duplicate table '" + table.name +
                                "' in control '" + name_ + "'");
  }
  tables_.push_back(std::move(table));
}

void ControlBlock::add_register(RegisterDef reg) {
  if (find_register(reg.name) != nullptr) {
    throw std::invalid_argument("duplicate register '" + reg.name +
                                "' in control '" + name_ + "'");
  }
  if (reg.size == 0 || reg.width_bits == 0 || reg.width_bits > 64) {
    throw std::invalid_argument("register '" + reg.name +
                                "' has invalid geometry");
  }
  registers_.push_back(std::move(reg));
}

const RegisterDef* ControlBlock::find_register(const std::string& name) const {
  auto it = std::find_if(registers_.begin(), registers_.end(),
                         [&](const RegisterDef& r) {
                           return r.name == name;
                         });
  return it == registers_.end() ? nullptr : &*it;
}

void ControlBlock::apply(ApplyEntry entry) {
  if (find_table(entry.table) == nullptr) {
    throw std::invalid_argument("apply of unknown table '" + entry.table +
                                "' in control '" + name_ + "'");
  }
  for (const auto& guard : entry.guard_tables) {
    if (find_table(guard) == nullptr) {
      throw std::invalid_argument("guard references unknown table '" + guard +
                                  "' in control '" + name_ + "'");
    }
  }
  apply_.push_back(std::move(entry));
}

const Action* ControlBlock::find_action(const std::string& name) const {
  auto it = std::find_if(actions_.begin(), actions_.end(),
                         [&](const Action& a) { return a.name == name; });
  return it == actions_.end() ? nullptr : &*it;
}

const Table* ControlBlock::find_table(const std::string& name) const {
  auto it = std::find_if(tables_.begin(), tables_.end(),
                         [&](const Table& t) { return t.name == name; });
  return it == tables_.end() ? nullptr : &*it;
}

Table* ControlBlock::find_table(const std::string& name) {
  auto it = std::find_if(tables_.begin(), tables_.end(),
                         [&](const Table& t) { return t.name == name; });
  return it == tables_.end() ? nullptr : &*it;
}

namespace {

template <typename Fn>
std::set<std::string> union_over_actions(const ControlBlock& block,
                                         const Table& table, Fn&& fn) {
  std::set<std::string> out;
  auto absorb = [&](const std::string& action_name) {
    if (const Action* a = block.find_action(action_name)) {
      auto fields = fn(*a);
      out.insert(fields.begin(), fields.end());
    }
  };
  for (const auto& name : table.actions) absorb(name);
  if (!table.default_action.empty()) absorb(table.default_action);
  return out;
}

}  // namespace

std::set<std::string> ControlBlock::table_action_reads(
    const Table& table) const {
  return union_over_actions(*this, table,
                            [](const Action& a) { return a.reads(); });
}

std::set<std::string> ControlBlock::table_action_writes(
    const Table& table) const {
  return union_over_actions(*this, table,
                            [](const Action& a) { return a.writes(); });
}

std::uint32_t ControlBlock::table_vliw_slots(const Table& table) const {
  std::uint32_t slots = 0;
  auto absorb = [&](const std::string& action_name) {
    if (const Action* a = find_action(action_name)) {
      slots = std::max(slots, a->vliw_slots());
    }
  };
  for (const auto& name : table.actions) absorb(name);
  if (!table.default_action.empty()) absorb(table.default_action);
  return slots;
}

bool ControlBlock::validate(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = "control '" + name_ + "': " + msg;
    return false;
  };
  for (const Table& t : tables_) {
    for (const auto& action_name : t.actions) {
      if (find_action(action_name) == nullptr) {
        return fail("table '" + t.name + "' binds unknown action '" +
                    action_name + "'");
      }
    }
    if (!t.default_action.empty() &&
        find_action(t.default_action) == nullptr) {
      return fail("table '" + t.name + "' has unknown default action '" +
                  t.default_action + "'");
    }
  }
  for (const ApplyEntry& e : apply_) {
    if (find_table(e.table) == nullptr) {
      return fail("apply of unknown table '" + e.table + "'");
    }
  }
  for (const Action& a : actions_) {
    for (const Primitive& p : a.primitives) {
      const bool is_register_op = p.op == PrimitiveOp::kRegisterRead ||
                                  p.op == PrimitiveOp::kRegisterAdd ||
                                  p.op == PrimitiveOp::kRegisterWrite;
      if (is_register_op && find_register(p.param) == nullptr) {
        return fail("action '" + a.name + "' references unknown register '" +
                    p.param + "'");
      }
    }
  }
  return true;
}

}  // namespace dejavu::p4ir
