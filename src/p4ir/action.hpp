// Actions: named sequences of VLIW-style primitive operations over
// header/metadata fields, as produced by the P4 front end. The read and
// write sets drive dependency analysis; the primitive count drives VLIW
// resource accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dejavu::p4ir {

/// The primitive operations our MAU model executes. These correspond
/// to single VLIW instruction slots on an RMT-style ASIC.
enum class PrimitiveOp {
  kNoop,
  kSetImmediate,  // dst = imm
  kSetFromParam,  // dst = action parameter (runtime table data)
  kCopy,          // dst = src field
  kAdd,           // dst = dst + imm (imm may be negative via two's compl.)
  kHash,          // dst = CRC32 over src field list
  kPushSfc,       // insert the SFC header (Classifier)
  kPopSfc,        // remove the SFC header (Router)
  kDrop,          // set the drop flag
  kSetContext,    // write a (key, value) pair into the SFC context
                  // area; key in `imm`, value from action param
  kRegisterRead,  // dst = register[param][index(src)]
  kRegisterAdd,   // register[param][index(src)] += imm; dst = new value
  kRegisterWrite, // register[param][index(src)] = srcs[0] (or imm)
};

const char* to_string(PrimitiveOp op);

/// One primitive. Field references are dotted ("ipv4.dst_addr"). For
/// kHash, `srcs` lists the hashed fields; otherwise `src` is used for
/// kCopy and `imm` for immediates.
struct Primitive {
  PrimitiveOp op = PrimitiveOp::kNoop;
  std::string dst;
  std::string src;
  std::vector<std::string> srcs;  // kHash inputs
  std::uint64_t imm = 0;
  std::string param;  // kSetFromParam: name of the action parameter

  bool operator==(const Primitive&) const = default;
};

/// A named action with typed runtime parameters (the action data
/// installed by the control plane alongside each table entry).
struct Action {
  struct Param {
    std::string name;
    std::uint16_t bits = 0;
    bool operator==(const Param&) const = default;
  };

  std::string name;
  std::vector<Param> params;
  std::vector<Primitive> primitives;

  /// Dotted refs of fields this action reads / writes.
  std::set<std::string> reads() const;
  std::set<std::string> writes() const;

  /// Total bits of action data carried per table entry.
  std::uint32_t param_bits() const;

  /// VLIW instruction slots this action occupies.
  std::uint32_t vliw_slots() const;

  const Param* find_param(const std::string& param_name) const;

  bool operator==(const Action&) const = default;
};

// Convenience constructors for common primitives.
Primitive set_imm(std::string dst, std::uint64_t imm);
Primitive set_from_param(std::string dst, std::string param);
Primitive copy_field(std::string dst, std::string src);
Primitive add_imm(std::string dst, std::uint64_t imm);
Primitive hash_fields(std::string dst, std::vector<std::string> srcs);
Primitive push_sfc_primitive();
Primitive pop_sfc_primitive();
Primitive drop_primitive();
Primitive set_context(std::uint8_t key, std::string value_param);

// Stateful (register) primitives. `index_field` is the field (often a
// "local.*" hash) whose value, modulo the register size, selects the
// cell.
Primitive register_read(std::string dst, std::string reg,
                        std::string index_field);
Primitive register_add(std::string reg, std::string index_field,
                       std::uint64_t addend, std::string dst_after = "");
Primitive register_write(std::string reg, std::string index_field,
                         std::string value_field);

}  // namespace dejavu::p4ir
