#include "p4ir/emit.hpp"

#include <cstdio>
#include <sstream>

namespace dejavu::p4ir {

namespace {

class Emitter {
 public:
  explicit Emitter(const EmitOptions& options) : options_(options) {}

  Emitter& line(const std::string& text = "") {
    for (int i = 0; i < depth_ * options_.indent; ++i) out_ << ' ';
    out_ << text << '\n';
    return *this;
  }
  Emitter& open(const std::string& text) {
    line(text + " {");
    ++depth_;
    return *this;
  }
  Emitter& close(const std::string& suffix = "") {
    --depth_;
    line("}" + suffix);
    return *this;
  }
  Emitter& comment(const std::string& text) {
    if (options_.with_comments) line("// " + text);
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  EmitOptions options_;
  std::ostringstream out_;
  int depth_ = 0;
};

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '.' || c == '-' || c == ' ') c = '_';
  }
  return name;
}

std::string field_expr(const std::string& dotted) {
  if (dotted.rfind("local.", 0) == 0) {
    return sanitize(dotted);  // block-local temporary
  }
  if (dotted.rfind("standard_metadata.", 0) == 0) {
    return dotted;
  }
  return "hdr." + dotted;
}

const char* match_kind_p4(MatchKind kind) {
  switch (kind) {
    case MatchKind::kExact:
      return "exact";
    case MatchKind::kLpm:
      return "lpm";
    case MatchKind::kTernary:
      return "ternary";
  }
  return "exact";
}

void emit_header_type(Emitter& e, const HeaderType& type) {
  e.open("header " + sanitize(type.name) + "_t");
  for (const Field& f : type.fields) {
    e.line("bit<" + std::to_string(f.bits) + "> " + sanitize(f.name) + ";");
  }
  e.close();
  e.line();
}

void emit_parser(Emitter& e, const Program& program,
                 const TupleIdTable& ids) {
  const ParserGraph& g = program.parser();
  if (g.vertices().empty()) return;

  e.comment("Generic parser: vertices are (header_type, offset) tuples");
  e.comment("interned through the global-ID table (" +
            std::to_string(ids.size()) + " tuples known).");
  e.open("parser GenericParser(packet_in pkt, out all_headers_t hdr)");

  auto state_name = [&](std::uint32_t v) {
    const ParserTuple& t = ids.tuple_of(v);
    return "parse_" + sanitize(t.header_type) + "_at_" +
           std::to_string(t.offset);
  };

  e.open("state start");
  e.line("transition " + state_name(g.start()) + ";");
  e.close();

  for (std::uint32_t v : g.vertices()) {
    const ParserTuple& tuple = ids.tuple_of(v);
    e.open("state " + state_name(v));
    e.line("pkt.extract(hdr." + sanitize(tuple.header_type) + ");");
    auto edges = g.out_edges(v);
    if (edges.empty()) {
      e.line("transition accept;");
    } else {
      // All selective out-edges of one vertex share the select field
      // in our parsers; emit a select() over it.
      std::string select_field;
      for (const auto& edge : edges) {
        if (!edge.is_default) {
          select_field = edge.select_field;
          break;
        }
      }
      if (select_field.empty()) {
        e.line("transition " + state_name(edges.front().to) + ";");
      } else {
        e.open("transition select(" + field_expr(select_field) + ")");
        bool have_default = false;
        for (const auto& edge : edges) {
          if (edge.is_default) {
            e.line("default: " + state_name(edge.to) + ";");
            have_default = true;
          } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(edge.select_value));
            e.line(std::string(buf) + ": " + state_name(edge.to) + ";");
          }
        }
        if (!have_default) e.line("default: accept;");
        e.close();
      }
    }
    e.close();
  }
  e.close();
  e.line();
}

void emit_action(Emitter& e, const Action& action) {
  std::string params;
  for (std::size_t i = 0; i < action.params.size(); ++i) {
    if (i > 0) params += ", ";
    params += "bit<" + std::to_string(action.params[i].bits) + "> " +
              sanitize(action.params[i].name);
  }
  e.open("action " + sanitize(action.name) + "(" + params + ")");
  for (const Primitive& p : action.primitives) {
    switch (p.op) {
      case PrimitiveOp::kNoop:
        break;
      case PrimitiveOp::kSetImmediate:
        e.line(field_expr(p.dst) + " = " + std::to_string(p.imm) + ";");
        break;
      case PrimitiveOp::kSetFromParam:
        e.line(field_expr(p.dst) + " = " + sanitize(p.param) + ";");
        break;
      case PrimitiveOp::kCopy:
        e.line(field_expr(p.dst) + " = " + field_expr(p.src) + ";");
        break;
      case PrimitiveOp::kAdd:
        e.line(field_expr(p.dst) + " = " + field_expr(p.dst) + " + " +
               std::to_string(p.imm) + ";");
        break;
      case PrimitiveOp::kHash: {
        std::string args;
        for (std::size_t i = 0; i < p.srcs.size(); ++i) {
          if (i > 0) args += ", ";
          args += field_expr(p.srcs[i]);
        }
        e.line(field_expr(p.dst) + " = hasher.get({" + args + "});");
        break;
      }
      case PrimitiveOp::kPushSfc:
        e.line("push_sfc_header();  // extern: insert hdr.sfc");
        break;
      case PrimitiveOp::kPopSfc:
        e.line("pop_sfc_header();  // extern: remove hdr.sfc");
        break;
      case PrimitiveOp::kDrop:
        e.line("mark_to_drop(standard_metadata);");
        break;
      case PrimitiveOp::kSetContext:
        e.line("sfc_context_set(" + std::to_string(p.imm) + ", " +
               sanitize(p.param) + ");  // extern: context key-value");
        break;
      case PrimitiveOp::kRegisterRead:
        e.line(field_expr(p.dst) + " = " + sanitize(p.param) + ".read(" +
               field_expr(p.src) + ");");
        break;
      case PrimitiveOp::kRegisterAdd:
        e.line(sanitize(p.param) + ".add(" + field_expr(p.src) + ", " +
               std::to_string(p.imm) + ")" +
               (p.dst.empty() ? "" : " -> " + field_expr(p.dst)) + ";");
        break;
      case PrimitiveOp::kRegisterWrite:
        e.line(sanitize(p.param) + ".write(" + field_expr(p.src) + ", " +
               (p.srcs.empty() ? std::to_string(p.imm)
                               : field_expr(p.srcs[0])) +
               ");");
        break;
    }
  }
  e.close();
}

void emit_table(Emitter& e, const Table& table) {
  e.open("table " + sanitize(table.name));
  if (!table.keys.empty()) {
    e.open("key =");
    for (const TableKey& k : table.keys) {
      e.line(field_expr(k.field) + " : " + match_kind_p4(k.kind) + ";");
    }
    e.close();
  }
  e.open("actions =");
  for (const std::string& a : table.actions) {
    e.line(sanitize(a) + ";");
  }
  e.close();
  if (!table.default_action.empty()) {
    e.line("const default_action = " + sanitize(table.default_action) +
           "();");
  }
  e.line("size = " + std::to_string(table.max_entries) + ";");
  e.close();
}

std::string guard_expr(const ApplyEntry& entry) {
  std::string cond;
  if (entry.field_guard) {
    const char* op = "==";
    switch (entry.field_guard->effective_cmp()) {
      case GuardCmp::kEq:
        op = "==";
        break;
      case GuardCmp::kNe:
        op = "!=";
        break;
      case GuardCmp::kGt:
        op = ">";
        break;
      case GuardCmp::kLt:
        op = "<";
        break;
    }
    cond = field_expr(entry.field_guard->field) + " " + op + " " +
           std::to_string(entry.field_guard->value);
  }
  for (const std::string& g : entry.guard_tables) {
    if (!cond.empty()) cond += " && ";
    cond += sanitize(g) + ".apply()." +
            (entry.mode == GuardMode::kIfMiss ? "miss" : "hit");
  }
  return cond;
}

}  // namespace

std::string emit_control(const ControlBlock& control,
                         const EmitOptions& options) {
  Emitter e(options);
  e.open("control " + sanitize(control.name()) +
         "(inout all_headers_t hdr, inout standard_metadata_t "
         "standard_metadata)");

  for (const RegisterDef& r : control.registers()) {
    e.line("register<bit<" + std::to_string(r.width_bits) + ">>(" +
           std::to_string(r.size) + ") " + sanitize(r.name) + ";");
  }
  for (const Action& a : control.actions()) emit_action(e, a);
  for (const Table& t : control.tables()) emit_table(e, t);

  e.open("apply");
  std::string current_branch;
  bool first_branch = true;
  for (const ApplyEntry& entry : control.apply_order()) {
    if (entry.branch_id != current_branch) {
      if (!entry.branch_id.empty()) {
        e.comment("branch '" + entry.branch_id + "'" +
                  (first_branch ? "" : " (mutually exclusive else-if)"));
        first_branch = false;
      }
      current_branch = entry.branch_id;
    }
    const std::string cond = guard_expr(entry);
    if (cond.empty()) {
      e.line(sanitize(entry.table) + ".apply();");
    } else {
      e.open("if (" + cond + ")");
      e.line(sanitize(entry.table) + ".apply();");
      e.close();
    }
  }
  e.close();
  e.close();
  return e.str();
}

std::string emit_p4(const Program& program, const TupleIdTable& ids,
                    const EmitOptions& options) {
  Emitter e(options);
  e.comment("Generated by dejavu::p4ir::emit_p4 from program '" +
            program.name() + "'");
  e.line("#include <core.p4>");
  e.line();

  for (const HeaderType& type : program.header_types()) {
    emit_header_type(e, type);
  }

  e.open("struct all_headers_t");
  for (const HeaderType& type : program.header_types()) {
    if (type.name == "standard_metadata") continue;
    e.line(sanitize(type.name) + "_t " + sanitize(type.name) + ";");
  }
  e.close();
  e.line();

  emit_parser(e, program, ids);

  std::string out = e.str();
  for (const ControlBlock& control : program.controls()) {
    out += "\n" + emit_control(control, options);
  }
  return out;
}

}  // namespace dejavu::p4ir
