// Header-type definitions of the P4 IR: named bundles of fixed-width
// fields. Field references elsewhere in the IR use the dotted form
// "header.field" (e.g. "ipv4.dst_addr"), mirroring P4's hdr argument.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dejavu::p4ir {

/// One fixed-width field of a header type.
struct Field {
  std::string name;
  std::uint16_t bits = 0;

  bool operator==(const Field&) const = default;
};

/// A named header type, e.g. "ipv4". Total width must be a whole number
/// of bytes for the header to be parseable from a byte stream.
struct HeaderType {
  std::string name;
  std::vector<Field> fields;

  std::uint32_t bit_width() const;
  std::uint32_t byte_width() const { return (bit_width() + 7) / 8; }

  const Field* find_field(const std::string& field_name) const;
  /// Bit offset of a field from the start of the header; nullopt when
  /// the field does not exist.
  std::optional<std::uint32_t> bit_offset(const std::string& field_name) const;

  bool operator==(const HeaderType&) const = default;
};

/// A dotted field reference "header.field" split into components.
struct FieldRef {
  std::string header;
  std::string field;

  static std::optional<FieldRef> parse(const std::string& dotted);
  std::string dotted() const { return header + "." + field; }

  auto operator<=>(const FieldRef&) const = default;
};

// --- Builtin header types shared by all Dejavu NFs --------------------
// These model the packet formats of the Fig. 2 service chain plus the
// SFC header of Fig. 3 and the standard (platform) metadata.

HeaderType ethernet_type();
HeaderType sfc_type();       // the Dejavu SFC header (paper Fig. 3)
HeaderType ipv4_type();
HeaderType tcp_type();
HeaderType udp_type();
HeaderType vxlan_type();
HeaderType standard_metadata_type();  // platform metadata fields

/// All builtin types, keyed by name, for building generic parsers.
std::vector<HeaderType> builtin_header_types();

}  // namespace dejavu::p4ir
