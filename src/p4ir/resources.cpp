#include "p4ir/resources.hpp"

#include <algorithm>

namespace dejavu::p4ir {

TableResources& TableResources::operator+=(const TableResources& o) {
  table_ids += o.table_ids;
  gateways += o.gateways;
  sram_blocks += o.sram_blocks;
  tcam_blocks += o.tcam_blocks;
  vliw_slots += o.vliw_slots;
  exact_xbar_bytes += o.exact_xbar_bytes;
  ternary_xbar_bytes += o.ternary_xbar_bytes;
  return *this;
}

bool TableResources::fits_within(const TableResources& budget) const {
  return table_ids <= budget.table_ids && gateways <= budget.gateways &&
         sram_blocks <= budget.sram_blocks &&
         tcam_blocks <= budget.tcam_blocks &&
         vliw_slots <= budget.vliw_slots &&
         exact_xbar_bytes <= budget.exact_xbar_bytes &&
         ternary_xbar_bytes <= budget.ternary_xbar_bytes;
}

std::string TableResources::to_string() const {
  return "ids=" + std::to_string(table_ids) +
         " gw=" + std::to_string(gateways) +
         " sram=" + std::to_string(sram_blocks) +
         " tcam=" + std::to_string(tcam_blocks) +
         " vliw=" + std::to_string(vliw_slots) +
         " exb=" + std::to_string(exact_xbar_bytes) +
         " txb=" + std::to_string(ternary_xbar_bytes);
}

namespace {

std::uint32_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint32_t>((a + b - 1) / b);
}

}  // namespace

TableResources estimate_table(const ControlBlock& block, const Table& table,
                              bool gated) {
  TableResources r;
  // One logical table ID per table; gateways burn one more.
  r.table_ids = 1;
  if (gated) {
    r.gateways = 1;
    r.table_ids += 1;
  }
  r.vliw_slots = block.table_vliw_slots(table);

  // Stateful register arrays live in the table's stage SRAM.
  for (const std::string& reg_name : table.registers) {
    if (const RegisterDef* reg = block.find_register(reg_name)) {
      r.sram_blocks += std::max<std::uint32_t>(
          1, ceil_div(std::uint64_t{reg->width_bits} * reg->size,
                      std::uint64_t{kSramBlockEntries} * kSramBlockBits));
    }
  }

  const std::uint32_t key_bits = table.key_bits();
  const std::uint32_t key_bytes = (key_bits + 7) / 8;

  // Action data (per-entry parameters) lives in SRAM regardless of the
  // match kind.
  std::uint32_t action_bits = 0;
  auto absorb = [&](const std::string& name) {
    if (const Action* a = block.find_action(name)) {
      action_bits = std::max(action_bits, a->param_bits());
    }
  };
  for (const auto& name : table.actions) absorb(name);
  if (!table.default_action.empty()) absorb(table.default_action);

  if (table.keyless()) {
    // Keyless tables still need action-data storage when parameterized.
    if (action_bits > 0) {
      r.sram_blocks = ceil_div(std::uint64_t{action_bits} * table.max_entries,
                               std::uint64_t{kSramBlockEntries} *
                                   kSramBlockBits);
      r.sram_blocks = std::max(r.sram_blocks, 1u);
    }
    return r;
  }

  if (table.needs_tcam()) {
    // Ternary/LPM: TCAM for the match, SRAM for action data.
    const std::uint32_t width_units = ceil_div(key_bits, kTcamBlockBits);
    const std::uint32_t depth_units =
        ceil_div(table.max_entries, kTcamBlockEntries);
    r.tcam_blocks = std::max(width_units * depth_units, 1u);
    r.ternary_xbar_bytes = key_bytes;
    if (action_bits > 0) {
      r.sram_blocks = ceil_div(std::uint64_t{action_bits} * table.max_entries,
                               std::uint64_t{kSramBlockEntries} *
                                   kSramBlockBits);
      r.sram_blocks = std::max(r.sram_blocks, 1u);
    }
  } else {
    // Exact: SRAM holds key + action data + overhead per entry.
    const std::uint64_t entry_bits =
        std::uint64_t{key_bits} + action_bits + kExactOverheadBits;
    r.sram_blocks = ceil_div(entry_bits * table.max_entries,
                             std::uint64_t{kSramBlockEntries} * kSramBlockBits);
    r.sram_blocks = std::max(r.sram_blocks, 1u);
    r.exact_xbar_bytes = key_bytes;
  }
  return r;
}

TableResources estimate_table(const AnalyzedTable& at) {
  return estimate_table(*at.block, *at.table, at.gated);
}

}  // namespace dejavu::p4ir
