#include "net/bytes.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::net {

namespace {

void check_range(std::size_t size, std::size_t offset, std::size_t len) {
  if (offset > size || len > size - offset) {
    throw std::out_of_range("byte range [" + std::to_string(offset) + ", +" +
                            std::to_string(len) + ") exceeds buffer of " +
                            std::to_string(size) + " bytes");
  }
}

std::uint64_t read_be(std::span<const std::byte> data, std::size_t offset,
                      std::size_t len) {
  check_range(data.size(), offset, len);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    v = (v << 8) | std::to_integer<std::uint64_t>(data[offset + i]);
  }
  return v;
}

void write_be(std::span<std::byte> data, std::size_t offset, std::size_t len,
              std::uint64_t v) {
  check_range(data.size(), offset, len);
  for (std::size_t i = 0; i < len; ++i) {
    data[offset + len - 1 - i] = static_cast<std::byte>(v & 0xff);
    v >>= 8;
  }
}

}  // namespace

std::uint16_t read_be16(std::span<const std::byte> data, std::size_t offset) {
  return static_cast<std::uint16_t>(read_be(data, offset, 2));
}
std::uint32_t read_be24(std::span<const std::byte> data, std::size_t offset) {
  return static_cast<std::uint32_t>(read_be(data, offset, 3));
}
std::uint32_t read_be32(std::span<const std::byte> data, std::size_t offset) {
  return static_cast<std::uint32_t>(read_be(data, offset, 4));
}
std::uint64_t read_be64(std::span<const std::byte> data, std::size_t offset) {
  return read_be(data, offset, 8);
}
std::uint8_t read_u8(std::span<const std::byte> data, std::size_t offset) {
  return static_cast<std::uint8_t>(read_be(data, offset, 1));
}

void write_be16(std::span<std::byte> data, std::size_t offset,
                std::uint16_t v) {
  write_be(data, offset, 2, v);
}
void write_be24(std::span<std::byte> data, std::size_t offset,
                std::uint32_t v) {
  write_be(data, offset, 3, v);
}
void write_be32(std::span<std::byte> data, std::size_t offset,
                std::uint32_t v) {
  write_be(data, offset, 4, v);
}
void write_be64(std::span<std::byte> data, std::size_t offset,
                std::uint64_t v) {
  write_be(data, offset, 8, v);
}
void write_u8(std::span<std::byte> data, std::size_t offset, std::uint8_t v) {
  write_be(data, offset, 1, v);
}

std::string to_hex(std::span<const std::byte> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::byte b : data) {
    auto v = std::to_integer<unsigned>(b);
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xf]);
  }
  return out;
}

std::vector<std::byte> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("hex string has odd length");
  }
  auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw std::invalid_argument("invalid hex digit");
  };
  std::vector<std::byte> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::byte>((nibble(hex[i]) << 4) |
                                         nibble(hex[i + 1])));
  }
  return out;
}

std::span<const std::byte> Buffer::slice(std::size_t offset,
                                         std::size_t len) const {
  check_range(bytes_.size(), offset, len);
  return std::span<const std::byte>(bytes_).subspan(offset, len);
}

std::span<std::byte> Buffer::mutable_slice(std::size_t offset,
                                           std::size_t len) {
  check_range(bytes_.size(), offset, len);
  return std::span<std::byte>(bytes_).subspan(offset, len);
}

void Buffer::append(std::span<const std::byte> data) {
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Buffer::insert_zeros(std::size_t offset, std::size_t len) {
  if (offset > bytes_.size()) {
    throw std::out_of_range("insert offset beyond buffer end");
  }
  bytes_.insert(bytes_.begin() + static_cast<std::ptrdiff_t>(offset), len,
                std::byte{0});
}

void Buffer::erase(std::size_t offset, std::size_t len) {
  check_range(bytes_.size(), offset, len);
  auto first = bytes_.begin() + static_cast<std::ptrdiff_t>(offset);
  bytes_.erase(first, first + static_cast<std::ptrdiff_t>(len));
}

}  // namespace dejavu::net
