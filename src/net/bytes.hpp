// Byte-buffer primitives: big-endian (network order) reads/writes over
// contiguous byte ranges, plus a growable buffer used by packet codecs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dejavu::net {

/// Read an unsigned big-endian integer of `N` bytes starting at `data`.
/// Preconditions are checked by the callers via span sizes.
std::uint16_t read_be16(std::span<const std::byte> data, std::size_t offset);
std::uint32_t read_be24(std::span<const std::byte> data, std::size_t offset);
std::uint32_t read_be32(std::span<const std::byte> data, std::size_t offset);
std::uint64_t read_be64(std::span<const std::byte> data, std::size_t offset);
std::uint8_t read_u8(std::span<const std::byte> data, std::size_t offset);

void write_be16(std::span<std::byte> data, std::size_t offset, std::uint16_t v);
void write_be24(std::span<std::byte> data, std::size_t offset, std::uint32_t v);
void write_be32(std::span<std::byte> data, std::size_t offset, std::uint32_t v);
void write_be64(std::span<std::byte> data, std::size_t offset, std::uint64_t v);
void write_u8(std::span<std::byte> data, std::size_t offset, std::uint8_t v);

/// Render a byte range as lowercase hex, two digits per byte, for
/// diagnostics and test failure messages.
std::string to_hex(std::span<const std::byte> data);

/// Parse a hex string (even length, no separators) into bytes.
/// Throws std::invalid_argument on malformed input.
std::vector<std::byte> from_hex(std::string_view hex);

/// A growable byte buffer with bounds-checked structured accessors.
/// Used as the backing store of packets; cheap to move, explicit to copy.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size) : bytes_(size) {}
  explicit Buffer(std::vector<std::byte> bytes) : bytes_(std::move(bytes)) {}

  std::size_t size() const noexcept { return bytes_.size(); }
  bool empty() const noexcept { return bytes_.empty(); }

  std::span<const std::byte> view() const noexcept { return bytes_; }
  std::span<std::byte> mutable_view() noexcept { return bytes_; }

  /// Bounds-checked subrange; throws std::out_of_range when the range
  /// does not fit.
  std::span<const std::byte> slice(std::size_t offset, std::size_t len) const;
  std::span<std::byte> mutable_slice(std::size_t offset, std::size_t len);

  /// Append raw bytes at the end.
  void append(std::span<const std::byte> data);

  /// Insert `len` zero bytes at `offset`, shifting the tail right.
  /// Used when pushing a header (e.g. the SFC header) into a packet.
  void insert_zeros(std::size_t offset, std::size_t len);

  /// Remove `len` bytes at `offset`, shifting the tail left.
  void erase(std::size_t offset, std::size_t len);

  bool operator==(const Buffer&) const = default;

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace dejavu::net
