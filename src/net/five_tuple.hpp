// The classic connection 5-tuple and its CRC32 hash, mirroring the
// paper's L4 load balancer (Fig. 4): hash over {ipv4.src_addr,
// ipv4.dst_addr, trans_prtcl, tcp.src_port, tcp.dst_port}.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.hpp"

namespace dejavu::net {

struct FiveTuple {
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  /// CRC32 over the fields in the paper's order — the session hash used
  /// as the exact-match key of the lb_session table.
  std::uint32_t session_hash() const;

  std::string to_string() const;

  auto operator<=>(const FiveTuple&) const = default;
};

}  // namespace dejavu::net

template <>
struct std::hash<dejavu::net::FiveTuple> {
  std::size_t operator()(const dejavu::net::FiveTuple& t) const noexcept {
    return t.session_hash();
  }
};
