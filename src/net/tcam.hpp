// A software model of a TCAM: ternary (value/mask) match with explicit
// priorities, first-highest-priority-wins. Models ternary match tables
// such as the firewall ACL.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace dejavu::net {

/// One ternary key component: `value` is compared under `mask`
/// (bits where mask==0 are wildcards).
struct TernaryField {
  std::uint64_t value = 0;
  std::uint64_t mask = 0;

  bool matches(std::uint64_t v) const { return (v & mask) == (value & mask); }
  bool operator==(const TernaryField&) const = default;
};

/// A priority-ordered ternary match table mapping multi-field keys to
/// values of type T. Higher priority wins; ties broken by insertion
/// order (earlier wins), matching typical switch-driver semantics.
template <typename T>
class Tcam {
 public:
  struct Entry {
    std::size_t handle;
    std::int32_t priority;
    std::vector<TernaryField> key;
    T value;
  };

  explicit Tcam(std::size_t key_fields) : key_fields_(key_fields) {}

  std::size_t key_fields() const { return key_fields_; }
  std::size_t size() const { return entries_.size(); }

  /// All installed entries in match-priority order (for state export).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Insert an entry; `key` must have exactly key_fields() components.
  /// Returns the entry's handle (index usable with erase()).
  std::size_t insert(std::vector<TernaryField> key, std::int32_t priority,
                     T value) {
    if (key.size() != key_fields_) {
      throw std::invalid_argument("tcam key arity mismatch");
    }
    std::size_t handle = next_handle_++;
    entries_.push_back(Entry{handle, priority, std::move(key),
                             std::move(value)});
    // Keep entries sorted by descending priority, stable on insertion
    // order so earlier-installed rules win ties.
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.priority > b.priority;
                     });
    return handle;
  }

  bool erase(std::size_t handle) {
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.handle == handle; });
    if (it == entries_.end()) return false;
    entries_.erase(it);
    return true;
  }

  /// First (highest-priority) entry matching the lookup key, or nullptr.
  const T* lookup(const std::vector<std::uint64_t>& key) const {
    for (const Entry& e : entries_) {
      bool hit = true;
      for (std::size_t i = 0; i < key_fields_; ++i) {
        if (!e.key[i].matches(key[i])) {
          hit = false;
          break;
        }
      }
      if (hit) return &e.value;
    }
    return nullptr;
  }

 private:
  std::size_t key_fields_;
  std::size_t next_handle_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace dejavu::net
