#include "net/headers.hpp"

#include "net/checksum.hpp"

namespace dejavu::net {

std::optional<EthernetHeader> EthernetHeader::decode(
    std::span<const std::byte> data) {
  if (data.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::array<std::uint8_t, 6> dst{}, src{};
  for (std::size_t i = 0; i < 6; ++i) {
    dst[i] = std::to_integer<std::uint8_t>(data[i]);
    src[i] = std::to_integer<std::uint8_t>(data[6 + i]);
  }
  h.dst = MacAddr(dst);
  h.src = MacAddr(src);
  h.ether_type = read_be16(data, 12);
  return h;
}

void EthernetHeader::encode(std::span<std::byte> out) const {
  for (std::size_t i = 0; i < 6; ++i) {
    out[i] = static_cast<std::byte>(dst.octets()[i]);
    out[6 + i] = static_cast<std::byte>(src.octets()[i]);
  }
  write_be16(out, 12, ether_type);
}

std::optional<Ipv4Header> Ipv4Header::decode(std::span<const std::byte> data) {
  if (data.size() < kMinSize) return std::nullopt;
  std::uint8_t ver_ihl = read_u8(data, 0);
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.ihl = ver_ihl & 0x0f;
  if (h.ihl < 5 || data.size() < h.header_length()) return std::nullopt;
  h.dscp_ecn = read_u8(data, 1);
  h.total_length = read_be16(data, 2);
  h.identification = read_be16(data, 4);
  h.flags_fragment = read_be16(data, 6);
  h.ttl = read_u8(data, 8);
  h.protocol = read_u8(data, 9);
  h.checksum = read_be16(data, 10);
  h.src = Ipv4Addr(read_be32(data, 12));
  h.dst = Ipv4Addr(read_be32(data, 16));
  return h;
}

void Ipv4Header::encode(std::span<std::byte> out, bool fill_checksum) const {
  write_u8(out, 0, static_cast<std::uint8_t>(0x40 | (ihl & 0x0f)));
  write_u8(out, 1, dscp_ecn);
  write_be16(out, 2, total_length);
  write_be16(out, 4, identification);
  write_be16(out, 6, flags_fragment);
  write_u8(out, 8, ttl);
  write_u8(out, 9, protocol);
  write_be16(out, 10, fill_checksum ? 0 : checksum);
  write_be32(out, 12, src.value());
  write_be32(out, 16, dst.value());
  if (fill_checksum) {
    auto sum = internet_checksum(out.first(header_length()));
    write_be16(out, 10, sum);
  }
}

std::uint16_t Ipv4Header::compute_checksum() const {
  std::array<std::byte, kMinSize> buf{};
  Ipv4Header copy = *this;
  copy.ihl = 5;
  copy.encode(buf, /*fill_checksum=*/true);
  return read_be16(buf, 10);
}

std::optional<TcpHeader> TcpHeader::decode(std::span<const std::byte> data) {
  if (data.size() < kMinSize) return std::nullopt;
  TcpHeader h;
  h.src_port = read_be16(data, 0);
  h.dst_port = read_be16(data, 2);
  h.seq = read_be32(data, 4);
  h.ack = read_be32(data, 8);
  std::uint8_t off_flags = read_u8(data, 12);
  h.data_offset = off_flags >> 4;
  if (h.data_offset < 5 || data.size() < h.header_length()) {
    return std::nullopt;
  }
  h.flags = read_u8(data, 13);
  h.window = read_be16(data, 14);
  h.checksum = read_be16(data, 16);
  h.urgent = read_be16(data, 18);
  return h;
}

void TcpHeader::encode(std::span<std::byte> out) const {
  write_be16(out, 0, src_port);
  write_be16(out, 2, dst_port);
  write_be32(out, 4, seq);
  write_be32(out, 8, ack);
  write_u8(out, 12, static_cast<std::uint8_t>(data_offset << 4));
  write_u8(out, 13, flags);
  write_be16(out, 14, window);
  write_be16(out, 16, checksum);
  write_be16(out, 18, urgent);
}

std::optional<UdpHeader> UdpHeader::decode(std::span<const std::byte> data) {
  if (data.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = read_be16(data, 0);
  h.dst_port = read_be16(data, 2);
  h.length = read_be16(data, 4);
  h.checksum = read_be16(data, 6);
  return h;
}

void UdpHeader::encode(std::span<std::byte> out) const {
  write_be16(out, 0, src_port);
  write_be16(out, 2, dst_port);
  write_be16(out, 4, length);
  write_be16(out, 6, checksum);
}

std::optional<VxlanHeader> VxlanHeader::decode(
    std::span<const std::byte> data) {
  if (data.size() < kSize) return std::nullopt;
  VxlanHeader h;
  h.flags = read_u8(data, 0);
  h.vni = read_be24(data, 4);
  return h;
}

void VxlanHeader::encode(std::span<std::byte> out) const {
  write_u8(out, 0, flags);
  write_u8(out, 1, 0);
  write_be16(out, 2, 0);
  write_be24(out, 4, vni & 0xffffff);
  write_u8(out, 7, 0);
}

}  // namespace dejavu::net
