// MAC and IPv4 address value types with parsing/formatting.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dejavu::net {

/// 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Construct from the low 48 bits of `v` (useful in tests).
  static constexpr MacAddr from_u64(std::uint64_t v) {
    std::array<std::uint8_t, 6> o{};
    for (int i = 5; i >= 0; --i) {
      o[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
    return MacAddr(o);
  }

  /// Parse "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  static std::optional<MacAddr> parse(std::string_view text);

  constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  std::string to_string() const;

  auto operator<=>(const MacAddr&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address stored in host order for arithmetic convenience; the
/// codecs convert to network order on the wire.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : v_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | d) {}

  /// Parse dotted-quad "10.0.0.1"; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  constexpr std::uint32_t value() const { return v_; }
  std::string to_string() const;

  auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t v_ = 0;
};

/// An IPv4 prefix (address + length), normalized so that host bits are
/// zero. Used by the LPM trie and routing NF.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  Ipv4Prefix(Ipv4Addr addr, std::uint8_t length);

  /// Parse "10.1.0.0/16"; returns nullopt on malformed input or
  /// length > 32.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  Ipv4Addr address() const { return addr_; }
  std::uint8_t length() const { return len_; }

  /// The network mask corresponding to the prefix length.
  std::uint32_t mask() const;

  bool contains(Ipv4Addr a) const;
  std::string to_string() const;

  auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  Ipv4Addr addr_;
  std::uint8_t len_ = 0;
};

}  // namespace dejavu::net
