// Longest-prefix-match trie over IPv4 prefixes — the lookup structure
// behind the IP router NF and the model for LPM-type match tables.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/addr.hpp"

namespace dejavu::net {

/// A binary trie keyed by IPv4 prefixes mapping to values of type T.
/// Insert replaces any existing value at the same prefix. Lookup returns
/// the value of the longest matching prefix.
template <typename T>
class LpmTrie {
 public:
  LpmTrie() : root_(std::make_unique<Node>()) {}

  /// Insert or replace. Returns true if a new prefix was created, false
  /// if an existing value was replaced.
  bool insert(Ipv4Prefix prefix, T value) {
    Node* node = walk_to(prefix, /*create=*/true);
    bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Remove the exact prefix; returns true if it existed.
  bool erase(Ipv4Prefix prefix) {
    Node* node = walk_to(prefix, /*create=*/false);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Longest-prefix match; nullptr if no prefix covers `addr`.
  const T* lookup(Ipv4Addr addr) const {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    std::uint32_t v = addr.value();
    for (int bit = 31; bit >= 0 && node != nullptr; --bit) {
      std::size_t dir = (v >> bit) & 1;
      node = node->child[dir].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  /// Exact-prefix fetch; nullptr when the prefix is not present.
  const T* find(Ipv4Prefix prefix) const {
    const Node* node =
        const_cast<LpmTrie*>(this)->walk_to(prefix, /*create=*/false);
    return (node != nullptr && node->value) ? &*node->value : nullptr;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Enumerate all (prefix, value) pairs, in trie order.
  std::vector<std::pair<Ipv4Prefix, T>> entries() const {
    std::vector<std::pair<Ipv4Prefix, T>> out;
    collect(root_.get(), 0, 0, out);
    return out;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* walk_to(Ipv4Prefix prefix, bool create) {
    Node* node = root_.get();
    std::uint32_t v = prefix.address().value();
    for (int i = 0; i < prefix.length(); ++i) {
      std::size_t dir = (v >> (31 - i)) & 1;
      if (!node->child[dir]) {
        if (!create) return nullptr;
        node->child[dir] = std::make_unique<Node>();
      }
      node = node->child[dir].get();
    }
    return node;
  }

  void collect(const Node* node, std::uint32_t bits, std::uint8_t depth,
               std::vector<std::pair<Ipv4Prefix, T>>& out) const {
    if (node == nullptr) return;
    if (node->value) {
      std::uint32_t addr = depth == 0 ? 0 : bits << (32 - depth);
      out.emplace_back(Ipv4Prefix(Ipv4Addr(addr), depth), *node->value);
    }
    if (depth == 32) return;
    collect(node->child[0].get(), bits << 1, depth + 1, out);
    collect(node->child[1].get(), (bits << 1) | 1, depth + 1, out);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace dejavu::net
