#include "net/addr.hpp"

#include <charconv>
#include <cstdio>

namespace dejavu::net {

namespace {

/// Parse an unsigned decimal or hex field of at most `max` from
/// [begin, end); returns nullopt on failure.
std::optional<unsigned> parse_field(std::string_view text, int base,
                                    unsigned max) {
  unsigned v = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v, base);
  if (ec != std::errc{} || ptr != text.data() + text.size() || v > max) {
    return std::nullopt;
  }
  return v;
}

/// Split `text` on `sep` into exactly `n` parts; returns false if the
/// number of parts differs.
bool split_exact(std::string_view text, char sep, std::size_t n,
                 std::string_view* out) {
  std::size_t count = 0;
  while (true) {
    auto pos = text.find(sep);
    if (count + 1 > n) return false;
    if (pos == std::string_view::npos) {
      out[count++] = text;
      break;
    }
    out[count++] = text.substr(0, pos);
    text.remove_prefix(pos + 1);
  }
  return count == n;
}

}  // namespace

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  std::string_view parts[6];
  if (!split_exact(text, ':', 6, parts)) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].empty() || parts[i].size() > 2) return std::nullopt;
    auto v = parse_field(parts[i], 16, 0xff);
    if (!v) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>(*v);
  }
  return MacAddr(octets);
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::string_view parts[4];
  if (!split_exact(text, '.', 4, parts)) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    auto octet = parse_field(part, 10, 255);
    if (!octet) return std::nullopt;
    v = (v << 8) | *octet;
  }
  return Ipv4Addr(v);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v_ >> 24) & 0xff,
                (v_ >> 16) & 0xff, (v_ >> 8) & 0xff, v_ & 0xff);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr addr, std::uint8_t length) : len_(length) {
  if (len_ > 32) len_ = 32;
  addr_ = Ipv4Addr(addr.value() & mask());
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  auto len = parse_field(text.substr(slash + 1), 10, 32);
  if (!addr || !len) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<std::uint8_t>(*len));
}

std::uint32_t Ipv4Prefix::mask() const {
  if (len_ == 0) return 0;
  return ~std::uint32_t{0} << (32 - len_);
}

bool Ipv4Prefix::contains(Ipv4Addr a) const {
  return (a.value() & mask()) == addr_.value();
}

std::string Ipv4Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(len_);
}

}  // namespace dejavu::net
