// LpmTrie is header-only; this translation unit exists to give the
// template a home in the library and to catch ODR/compile issues early.
#include "net/lpm.hpp"

namespace dejavu::net {

template class LpmTrie<int>;

}  // namespace dejavu::net
