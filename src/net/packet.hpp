// Packet: a byte buffer plus the in-switch metadata that travels with
// it (ports, timestamps). Provides structured accessors for the headers
// the Dejavu NFs read and write. Offsets are computed per access so the
// accessors stay correct when headers (e.g. the SFC header) are
// inserted or removed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/bytes.hpp"
#include "net/five_tuple.hpp"
#include "net/headers.hpp"

namespace dejavu::net {

/// Parameters for synthesizing a test/workload packet.
struct PacketSpec {
  MacAddr eth_src = MacAddr::from_u64(0x020000000001);
  MacAddr eth_dst = MacAddr::from_u64(0x020000000002);
  Ipv4Addr ip_src{10, 0, 0, 1};
  Ipv4Addr ip_dst{10, 0, 0, 2};
  std::uint8_t protocol = kIpProtoTcp;
  std::uint16_t src_port = 12345;
  std::uint16_t dst_port = 80;
  std::uint8_t ttl = 64;
  std::size_t payload_size = 64;
  std::uint8_t payload_fill = 0xab;
};

class Packet {
 public:
  Packet() = default;
  explicit Packet(Buffer data) : data_(std::move(data)) {}

  /// Synthesize an Ethernet/IPv4/{TCP|UDP} packet from the spec.
  static Packet make(const PacketSpec& spec);

  const Buffer& data() const { return data_; }
  Buffer& data() { return data_; }
  std::size_t size() const { return data_.size(); }

  // --- L2 ---
  std::optional<EthernetHeader> ethernet() const;
  void set_ethernet(const EthernetHeader& h);

  /// True when the EtherType announces a Dejavu SFC header.
  bool has_sfc_header() const;

  /// Byte offset of the header following Ethernet (the SFC header when
  /// present, otherwise the L3 header).
  static constexpr std::size_t kPostEthernetOffset = EthernetHeader::kSize;

  /// Byte offset of the IPv4 header, accounting for a possible SFC
  /// header between Ethernet and IP. `sfc_header_size` is supplied by
  /// the sfc module (net must not depend on it).
  std::size_t ipv4_offset(std::size_t sfc_header_size) const;

  // --- L3/L4 accessors for plain (non-SFC-encapsulated) packets ---
  std::optional<Ipv4Header> ipv4(std::size_t sfc_header_size = 0) const;
  void set_ipv4(const Ipv4Header& h, std::size_t sfc_header_size = 0);

  std::optional<TcpHeader> tcp(std::size_t sfc_header_size = 0) const;
  void set_tcp(const TcpHeader& h, std::size_t sfc_header_size = 0);

  std::optional<UdpHeader> udp(std::size_t sfc_header_size = 0) const;
  void set_udp(const UdpHeader& h, std::size_t sfc_header_size = 0);

  /// Connection 5-tuple (nullopt for non-TCP/UDP or truncated packets).
  std::optional<FiveTuple> five_tuple(std::size_t sfc_header_size = 0) const;

  /// Human-readable one-line summary for logs and test diagnostics.
  std::string summary() const;

  bool operator==(const Packet&) const = default;

 private:
  Buffer data_;
};

}  // namespace dejavu::net
