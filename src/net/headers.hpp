// Wire-format codecs for the protocol headers the Dejavu NFs touch:
// Ethernet, IPv4, TCP, UDP, and VXLAN (used by the virtualization
// gateway). Each codec is a plain struct with encode/decode, so header
// values can be inspected and edited independently of the byte buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/addr.hpp"
#include "net/bytes.hpp"

namespace dejavu::net {

/// EtherType values used by the framework. kEtherTypeSfc is the special
/// EtherType that signals the presence of the Dejavu SFC header (§3);
/// the paper embeds the SFC header between Ethernet and IP and marks it
/// with a dedicated EtherType, for which we reuse the NSH assignment.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeSfc = 0x894f;  // NSH EtherType

/// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

/// Standard UDP port for VXLAN.
inline constexpr std::uint16_t kVxlanUdpPort = 4789;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  /// Decode from the first kSize bytes of `data`; nullopt if short.
  static std::optional<EthernetHeader> decode(std::span<const std::byte> data);
  void encode(std::span<std::byte> out) const;

  bool operator==(const EthernetHeader&) const = default;
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;

  std::uint8_t ihl = 5;  // in 32-bit words; we emit option-less headers
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  std::size_t header_length() const { return std::size_t{ihl} * 4; }

  static std::optional<Ipv4Header> decode(std::span<const std::byte> data);
  /// Encode into `out` (must hold header_length() bytes). When
  /// `fill_checksum` is set, computes and stores the header checksum.
  void encode(std::span<std::byte> out, bool fill_checksum = true) const;

  /// Recompute what the checksum field should be for this header value.
  std::uint16_t compute_checksum() const;

  bool operator==(const Ipv4Header&) const = default;
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  std::size_t header_length() const { return std::size_t{data_offset} * 4; }

  static std::optional<TcpHeader> decode(std::span<const std::byte> data);
  void encode(std::span<std::byte> out) const;

  bool operator==(const TcpHeader&) const = default;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  static std::optional<UdpHeader> decode(std::span<const std::byte> data);
  void encode(std::span<std::byte> out) const;

  bool operator==(const UdpHeader&) const = default;
};

struct VxlanHeader {
  static constexpr std::size_t kSize = 8;

  std::uint8_t flags = 0x08;  // I flag: VNI present
  std::uint32_t vni = 0;      // 24 bits

  static std::optional<VxlanHeader> decode(std::span<const std::byte> data);
  void encode(std::span<std::byte> out) const;

  bool operator==(const VxlanHeader&) const = default;
};

}  // namespace dejavu::net
