#include "net/packet.hpp"

#include <stdexcept>

namespace dejavu::net {

Packet Packet::make(const PacketSpec& spec) {
  const std::size_t l4_size =
      spec.protocol == kIpProtoTcp ? TcpHeader::kMinSize : UdpHeader::kSize;
  const std::size_t ip_total =
      Ipv4Header::kMinSize + l4_size + spec.payload_size;
  Buffer buf(EthernetHeader::kSize + ip_total);
  auto bytes = buf.mutable_view();

  EthernetHeader eth;
  eth.dst = spec.eth_dst;
  eth.src = spec.eth_src;
  eth.ether_type = kEtherTypeIpv4;
  eth.encode(bytes.first(EthernetHeader::kSize));

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(ip_total);
  ip.ttl = spec.ttl;
  ip.protocol = spec.protocol;
  ip.src = spec.ip_src;
  ip.dst = spec.ip_dst;
  ip.encode(bytes.subspan(EthernetHeader::kSize, Ipv4Header::kMinSize));

  const std::size_t l4_off = EthernetHeader::kSize + Ipv4Header::kMinSize;
  if (spec.protocol == kIpProtoTcp) {
    TcpHeader tcp;
    tcp.src_port = spec.src_port;
    tcp.dst_port = spec.dst_port;
    tcp.window = 0xffff;
    tcp.encode(bytes.subspan(l4_off, TcpHeader::kMinSize));
  } else {
    UdpHeader udp;
    udp.src_port = spec.src_port;
    udp.dst_port = spec.dst_port;
    udp.length = static_cast<std::uint16_t>(l4_size + spec.payload_size);
    udp.encode(bytes.subspan(l4_off, UdpHeader::kSize));
  }

  for (std::size_t i = l4_off + l4_size; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::byte>(spec.payload_fill);
  }
  return Packet(std::move(buf));
}

std::optional<EthernetHeader> Packet::ethernet() const {
  return EthernetHeader::decode(data_.view());
}

void Packet::set_ethernet(const EthernetHeader& h) {
  h.encode(data_.mutable_slice(0, EthernetHeader::kSize));
}

bool Packet::has_sfc_header() const {
  auto eth = ethernet();
  return eth && eth->ether_type == kEtherTypeSfc;
}

std::size_t Packet::ipv4_offset(std::size_t sfc_header_size) const {
  return EthernetHeader::kSize + (has_sfc_header() ? sfc_header_size : 0);
}

std::optional<Ipv4Header> Packet::ipv4(std::size_t sfc_header_size) const {
  std::size_t off = ipv4_offset(sfc_header_size);
  if (off >= data_.size()) return std::nullopt;
  return Ipv4Header::decode(data_.view().subspan(off));
}

void Packet::set_ipv4(const Ipv4Header& h, std::size_t sfc_header_size) {
  std::size_t off = ipv4_offset(sfc_header_size);
  h.encode(data_.mutable_slice(off, h.header_length()));
}

namespace {

std::optional<std::size_t> l4_offset(const Packet& p,
                                     std::size_t sfc_header_size,
                                     std::uint8_t want_proto) {
  auto ip = p.ipv4(sfc_header_size);
  if (!ip || ip->protocol != want_proto) return std::nullopt;
  return p.ipv4_offset(sfc_header_size) + ip->header_length();
}

}  // namespace

std::optional<TcpHeader> Packet::tcp(std::size_t sfc_header_size) const {
  auto off = l4_offset(*this, sfc_header_size, kIpProtoTcp);
  if (!off || *off >= data_.size()) return std::nullopt;
  return TcpHeader::decode(data_.view().subspan(*off));
}

void Packet::set_tcp(const TcpHeader& h, std::size_t sfc_header_size) {
  auto off = l4_offset(*this, sfc_header_size, kIpProtoTcp);
  if (!off) throw std::logic_error("set_tcp on non-TCP packet");
  h.encode(data_.mutable_slice(*off, h.header_length()));
}

std::optional<UdpHeader> Packet::udp(std::size_t sfc_header_size) const {
  auto off = l4_offset(*this, sfc_header_size, kIpProtoUdp);
  if (!off || *off >= data_.size()) return std::nullopt;
  return UdpHeader::decode(data_.view().subspan(*off));
}

void Packet::set_udp(const UdpHeader& h, std::size_t sfc_header_size) {
  auto off = l4_offset(*this, sfc_header_size, kIpProtoUdp);
  if (!off) throw std::logic_error("set_udp on non-UDP packet");
  h.encode(data_.mutable_slice(*off, UdpHeader::kSize));
}

std::optional<FiveTuple> Packet::five_tuple(
    std::size_t sfc_header_size) const {
  auto ip = ipv4(sfc_header_size);
  if (!ip) return std::nullopt;
  FiveTuple t;
  t.src = ip->src;
  t.dst = ip->dst;
  t.protocol = ip->protocol;
  if (auto h = tcp(sfc_header_size)) {
    t.src_port = h->src_port;
    t.dst_port = h->dst_port;
  } else if (auto u = udp(sfc_header_size)) {
    t.src_port = u->src_port;
    t.dst_port = u->dst_port;
  } else {
    return std::nullopt;
  }
  return t;
}

std::string Packet::summary() const {
  auto eth = ethernet();
  if (!eth) return "<truncated frame, " + std::to_string(size()) + " bytes>";
  std::string out = "eth " + eth->src.to_string() + " -> " +
                    eth->dst.to_string();
  if (has_sfc_header()) out += " [sfc]";
  // Without knowing the SFC header size the net layer reports L3 info
  // only for plain packets.
  if (!has_sfc_header()) {
    if (auto t = five_tuple()) out += " | " + t->to_string();
  }
  out += " | " + std::to_string(size()) + "B";
  return out;
}

}  // namespace dejavu::net
