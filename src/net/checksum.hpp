// Internet checksum (RFC 1071) and CRC32 (the hash Tofino exposes via
// Hash<bit<32>>(HashAlgorithm_t.CRC32), used by the L4 load balancer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dejavu::net {

/// One's-complement 16-bit internet checksum over `data`. Returns the
/// value to place in the checksum field (already complemented).
std::uint16_t internet_checksum(std::span<const std::byte> data);

/// Incremental checksum helper: fold a 32-bit accumulator of 16-bit
/// one's-complement sums into a final checksum field value.
class ChecksumAccumulator {
 public:
  void add(std::span<const std::byte> data);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);
  /// Finalize: fold carries and complement.
  std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
};

/// CRC32 (IEEE 802.3 polynomial, reflected), matching the common
/// switch-ASIC hash engine configuration.
std::uint32_t crc32(std::span<const std::byte> data);

/// Streaming CRC32 for hashing multiple fields as one unit, the way a
/// P4 `hasher.get({f1, f2, ...})` call concatenates its inputs.
class Crc32 {
 public:
  void add(std::span<const std::byte> data);
  void add_u8(std::uint8_t v);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);
  std::uint32_t finish() const;

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace dejavu::net
