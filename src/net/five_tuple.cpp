#include "net/five_tuple.hpp"

#include "net/checksum.hpp"

namespace dejavu::net {

std::uint32_t FiveTuple::session_hash() const {
  Crc32 crc;
  crc.add_u32(src.value());
  crc.add_u32(dst.value());
  crc.add_u8(protocol);
  crc.add_u16(src_port);
  crc.add_u16(dst_port);
  return crc.finish();
}

std::string FiveTuple::to_string() const {
  return src.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst.to_string() + ":" + std::to_string(dst_port) + " proto " +
         std::to_string(protocol);
}

}  // namespace dejavu::net
