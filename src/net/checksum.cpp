#include "net/checksum.hpp"

#include <array>

namespace dejavu::net {

namespace {

std::uint64_t sum16(std::span<const std::byte> data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::to_integer<std::uint64_t>(data[i]) << 8) |
           std::to_integer<std::uint64_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += std::to_integer<std::uint64_t>(data[i]) << 8;
  }
  return sum;
}

std::uint16_t fold(std::uint64_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

std::uint32_t crc_update(std::uint32_t state,
                         std::span<const std::byte> data) {
  for (std::byte b : data) {
    state = kCrcTable[(state ^ std::to_integer<std::uint32_t>(b)) & 0xff] ^
            (state >> 8);
  }
  return state;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::byte> data) {
  return fold(sum16(data));
}

void ChecksumAccumulator::add(std::span<const std::byte> data) {
  sum_ += sum16(data);
}

void ChecksumAccumulator::add_u16(std::uint16_t v) { sum_ += v; }

void ChecksumAccumulator::add_u32(std::uint32_t v) {
  sum_ += (v >> 16) + (v & 0xffff);
}

std::uint16_t ChecksumAccumulator::finish() const { return fold(sum_); }

std::uint32_t crc32(std::span<const std::byte> data) {
  return crc_update(0xffffffffu, data) ^ 0xffffffffu;
}

void Crc32::add(std::span<const std::byte> data) {
  state_ = crc_update(state_, data);
}

void Crc32::add_u8(std::uint8_t v) {
  std::byte b{v};
  add({&b, 1});
}

void Crc32::add_u16(std::uint16_t v) {
  std::array<std::byte, 2> b{static_cast<std::byte>(v >> 8),
                             static_cast<std::byte>(v & 0xff)};
  add(b);
}

void Crc32::add_u32(std::uint32_t v) {
  std::array<std::byte, 4> b{
      static_cast<std::byte>(v >> 24), static_cast<std::byte>((v >> 16) & 0xff),
      static_cast<std::byte>((v >> 8) & 0xff), static_cast<std::byte>(v & 0xff)};
  add(b);
}

std::uint32_t Crc32::finish() const { return state_ ^ 0xffffffffu; }

}  // namespace dejavu::net
