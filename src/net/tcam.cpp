// Tcam is header-only; explicit instantiation keeps a compiled copy in
// the library and surfaces template errors at library build time.
#include "net/tcam.hpp"

namespace dejavu::net {

template class Tcam<int>;

}  // namespace dejavu::net
