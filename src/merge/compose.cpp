#include "merge/compose.hpp"

#include <stdexcept>

#include "merge/framework.hpp"
#include "merge/parser_merge.hpp"
#include "net/headers.hpp"
#include "sfc/header.hpp"

namespace dejavu::merge {

const char* to_string(CompositionKind kind) {
  return kind == CompositionKind::kSequential ? "sequential" : "parallel";
}

namespace {

using p4ir::Action;
using p4ir::ApplyEntry;
using p4ir::ControlBlock;
using p4ir::FieldGuard;
using p4ir::GuardMode;
using p4ir::MatchKind;
using p4ir::Table;
using p4ir::TableKey;

/// True for the framework-supplied entry NF (the Classifier), which
/// runs on packets that do not yet carry an SFC header and is gated on
/// the EtherType instead of a check_nextNF table.
bool is_entry_nf(const ControlBlock& control) {
  // The classifier announces itself by containing a push_sfc primitive.
  for (const Action& a : control.actions()) {
    for (const p4ir::Primitive& p : a.primitives) {
      if (p.op == p4ir::PrimitiveOp::kPushSfc) return true;
    }
  }
  return false;
}

/// Synthesize the check_nextNF gate table for one NF instance. Besides
/// the (pathID, serviceIndex) pair, the gate matches the toCpu/drop
/// flag bits: a packet already flagged for the CPU or for dropping
/// must not receive further NF processing, so installed entries
/// require both bits clear and flagged packets miss every gate.
Table make_check_table(const std::string& nf) {
  Table t;
  t.name = check_next_nf_table(nf);
  t.keys = {TableKey{"sfc.service_path_id", MatchKind::kExact, 16},
            TableKey{"sfc.service_index", MatchKind::kExact, 8},
            TableKey{"sfc.to_cpu_flag", MatchKind::kExact, 1},
            TableKey{"sfc.drop_flag", MatchKind::kExact, 1}};
  t.actions = {check_hit_action(nf)};
  t.max_entries = 64;  // one entry per (pathID, serviceIndex) pair
  return t;
}

Action make_check_hit_action(const std::string& nf) {
  Action a;
  a.name = check_hit_action(nf);
  // Pure gate: the hit/miss result is the output.
  return a;
}

/// Synthesize the check_sfcFlags glue: advance the service index and
/// translate SFC flag edits into platform metadata (§3.2: "translates
/// any modification to the provided hdr argument to the corresponding
/// platform metadata").
Table make_flags_table(const std::string& nf) {
  Table t;
  t.name = check_sfc_flags_table(nf);
  t.default_action = advance_action(nf);
  t.max_entries = 8;  // "an entry for each field of the platform metadata"
  return t;
}

Action make_advance_action(const std::string& nf) {
  Action a;
  a.name = advance_action(nf);
  a.primitives = {
      p4ir::add_imm("sfc.service_index", 1),
      p4ir::copy_field("standard_metadata.resubmit_flag",
                       "sfc.resubmit_flag"),
      p4ir::copy_field("standard_metadata.recirculate_flag",
                       "sfc.recirculate_flag"),
      p4ir::copy_field("standard_metadata.drop_flag", "sfc.drop_flag"),
      p4ir::copy_field("standard_metadata.mirror_flag", "sfc.mirror_flag"),
      p4ir::copy_field("standard_metadata.to_cpu_flag", "sfc.to_cpu_flag"),
  };
  return a;
}

/// The branching table of §3.4, inserted at the end of every ingress
/// pipelet: (service path ID, service index) -> where next.
Table make_branching_table() {
  Table t;
  t.name = kBranchingTable;
  t.keys = {TableKey{"sfc.service_path_id", MatchKind::kExact, 16},
            TableKey{"sfc.service_index", MatchKind::kExact, 8}};
  t.actions = {kActRouteToEgress, kActRouteResubmit, kActRouteDrop};
  t.default_action = kActRouteDrop;  // routing gaps must be loud
  t.max_entries = 256;
  return t;
}

std::vector<Action> make_branching_actions() {
  Action to_egress;
  to_egress.name = kActRouteToEgress;
  to_egress.params = {{"port", 9}};
  to_egress.primitives = {
      p4ir::set_from_param("standard_metadata.egress_spec", "port")};

  Action resubmit;
  resubmit.name = kActRouteResubmit;
  resubmit.primitives = {
      p4ir::set_imm("standard_metadata.resubmit_flag", 1)};

  Action drop;
  drop.name = kActRouteDrop;
  drop.primitives = {p4ir::drop_primitive()};

  return {to_egress, resubmit, drop};
}

/// Copy an NF's actions, tables, and registers into `out` under
/// qualified names. Register references inside action primitives are
/// rewritten to the qualified register names.
void import_nf(const NfUnit& nf, ControlBlock& out) {
  const ControlBlock& src = *nf.control;
  for (const p4ir::RegisterDef& r : src.registers()) {
    p4ir::RegisterDef copy = r;
    copy.name = qualify(nf.nf_name, r.name);
    out.add_register(std::move(copy));
  }
  for (const Action& a : src.actions()) {
    Action copy = a;
    copy.name = qualify(nf.nf_name, a.name);
    for (p4ir::Primitive& p : copy.primitives) {
      if (p.op == p4ir::PrimitiveOp::kRegisterRead ||
          p.op == p4ir::PrimitiveOp::kRegisterAdd ||
          p.op == p4ir::PrimitiveOp::kRegisterWrite) {
        p.param = qualify(nf.nf_name, p.param);
      }
    }
    out.add_action(std::move(copy));
  }
  for (const Table& t : src.tables()) {
    Table copy = t;
    copy.name = qualify(nf.nf_name, t.name);
    for (auto& action_name : copy.actions) {
      action_name = qualify(nf.nf_name, action_name);
    }
    if (!copy.default_action.empty()) {
      copy.default_action = qualify(nf.nf_name, copy.default_action);
    }
    for (auto& reg_name : copy.registers) {
      reg_name = qualify(nf.nf_name, reg_name);
    }
    out.add_table(std::move(copy));
  }
}

}  // namespace

p4ir::ControlBlock compose_pipelet(const std::string& control_name,
                                   const std::vector<NfUnit>& nfs,
                                   CompositionKind kind, bool is_ingress) {
  ControlBlock block(control_name);

  for (const NfUnit& nf : nfs) {
    if (nf.control == nullptr) {
      throw std::invalid_argument("NF '" + nf.nf_name +
                                  "' has no control block");
    }
    const std::string branch =
        kind == CompositionKind::kParallel ? nf.nf_name : "";
    const bool entry = is_entry_nf(*nf.control);

    import_nf(nf, block);

    if (entry) {
      // The Classifier runs on packets without an SFC header: gate on
      // the EtherType instead of a check_nextNF lookup.
      FieldGuard fresh{"ethernet.ether_type", net::kEtherTypeSfc,
                       /*negate=*/true};
      for (const ApplyEntry& e : nf.control->apply_order()) {
        ApplyEntry entry_copy;
        entry_copy.table = qualify(nf.nf_name, e.table);
        entry_copy.field_guard = fresh;
        entry_copy.branch_id = branch;
        block.apply(std::move(entry_copy));
      }
      continue;
    }

    // Gate: check_nextNF_<nf>.
    block.add_action(make_check_hit_action(nf.nf_name));
    block.add_table(make_check_table(nf.nf_name));
    ApplyEntry check_apply;
    check_apply.table = check_next_nf_table(nf.nf_name);
    check_apply.branch_id = branch;
    block.apply(std::move(check_apply));

    // The NF's own apply entries, gated on the check hit.
    for (const ApplyEntry& e : nf.control->apply_order()) {
      ApplyEntry gated = e;
      gated.table = qualify(nf.nf_name, e.table);
      for (auto& g : gated.guard_tables) g = qualify(nf.nf_name, g);
      gated.guard_tables.insert(gated.guard_tables.begin(),
                                check_next_nf_table(nf.nf_name));
      gated.mode = GuardMode::kIfHit;
      gated.branch_id = branch;
      block.apply(std::move(gated));
    }

    // check_sfcFlags_<nf>, same gate: runs only when the NF ran.
    block.add_action(make_advance_action(nf.nf_name));
    block.add_table(make_flags_table(nf.nf_name));
    ApplyEntry flags_apply;
    flags_apply.table = check_sfc_flags_table(nf.nf_name);
    flags_apply.guard_tables = {check_next_nf_table(nf.nf_name)};
    flags_apply.mode = GuardMode::kIfHit;
    flags_apply.branch_id = branch;
    block.apply(std::move(flags_apply));
  }

  if (is_ingress) {
    // Branching table in the last stage of every ingress pipelet
    // (§3.4). Bypassed when the outPort was already decided (the
    // field guard reads unset == kPortUnset; on popped packets the
    // missing sfc header skips it too).
    for (Action& a : make_branching_actions()) block.add_action(std::move(a));
    block.add_table(make_branching_table());
    ApplyEntry branching;
    branching.table = kBranchingTable;
    branching.field_guard =
        FieldGuard{"sfc.out_port", sfc::kPortUnset, /*negate=*/false};
    block.apply(std::move(branching));
  }

  return block;
}

std::string pipelet_control_name(const asic::PipeletId& id) {
  return "pipelet_" + id.to_string();
}

p4ir::Program compose_program(
    const std::string& program_name,
    const std::vector<const p4ir::Program*>& nf_programs,
    const std::vector<PipeletAssignment>& assignment,
    std::uint32_t pipelines, p4ir::TupleIdTable& ids) {
  p4ir::Program composed(program_name);

  // Merged header types and the generic parser (§3).
  for (auto& type : merge_header_types(nf_programs)) {
    composed.add_header_type(std::move(type));
  }
  composed.parser() = merge_parsers(nf_programs, ids);

  // Index the NF control blocks by NF name (program annotation "nf",
  // falling back to the program name).
  auto control_of = [&](const std::string& nf_name) -> const
      p4ir::ControlBlock* {
        for (const p4ir::Program* p : nf_programs) {
          std::string name = p->annotation("nf").value_or(p->name());
          if (name == nf_name) {
            if (p->controls().size() != 1) {
              throw std::invalid_argument(
                  "NF program '" + p->name() + "' must have exactly one "
                  "control block (the §3.1 interface), found " +
                  std::to_string(p->controls().size()));
            }
            return &p->controls().front();
          }
        }
        return nullptr;
      };

  for (const PipeletAssignment& pa : assignment) {
    std::vector<NfUnit> units;
    for (const std::string& nf_name : pa.nfs) {
      const p4ir::ControlBlock* control = control_of(nf_name);
      if (control == nullptr) {
        throw std::invalid_argument("assignment references unknown NF '" +
                                    nf_name + "'");
      }
      units.push_back(NfUnit{nf_name, control});
    }
    composed.add_control(
        compose_pipelet(pipelet_control_name(pa.pipelet), units, pa.kind,
                        pa.pipelet.kind == asic::PipeKind::kIngress));
  }

  // Every remaining ingress pipelet gets a bare branching-table
  // program: recirculated packets transiting an NF-less ingress pipe
  // still need the §3.4 steering.
  for (std::uint32_t p = 0; p < pipelines; ++p) {
    const asic::PipeletId id{p, asic::PipeKind::kIngress};
    if (composed.find_control(pipelet_control_name(id)) == nullptr) {
      composed.add_control(compose_pipelet(pipelet_control_name(id), {},
                                           CompositionKind::kSequential,
                                           /*is_ingress=*/true));
    }
  }
  return composed;
}

}  // namespace dejavu::merge
