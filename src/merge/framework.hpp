// Names and layouts of the Dejavu framework's glue: the per-NF
// check_nextNF and check_sfcFlags tables and the per-ingress-pipelet
// branching table (§3.2, §3.4, Table 1). Shared between composition
// (which synthesizes them), routing (which installs their entries),
// and the simulator (which gives their actions platform semantics).
#pragma once

#include <cstdint>
#include <string>

namespace dejavu::merge {

/// All framework tables carry this prefix; compile::is_framework_table
/// keys off it when isolating Dejavu overhead (Table 1).
inline constexpr const char* kFrameworkPrefix = "dejavu_";

/// check_nextNF gate for one NF instance: exact match on
/// (sfc.service_path_id, sfc.service_index); a hit means "this NF is
/// the packet's next function".
std::string check_next_nf_table(const std::string& nf);

/// check_sfcFlags glue after one NF: advances the service index and
/// translates SFC-header flag edits into platform metadata.
std::string check_sfc_flags_table(const std::string& nf);

/// The branching table inserted in the last MAU stage of every ingress
/// pipelet (§3.4), keyed on (service path ID, service index).
inline constexpr const char* kBranchingTable = "dejavu_branching";

// Branching table actions (installed by the route module):
inline constexpr const char* kActRouteToEgress = "dejavu_route_to_egress";
inline constexpr const char* kActRouteResubmit = "dejavu_route_resubmit";
inline constexpr const char* kActRouteDrop = "dejavu_route_drop";

/// Hit action of check_nextNF tables (pure gate, no-op body).
std::string check_hit_action(const std::string& nf);
/// Advance action of check_sfcFlags tables.
std::string advance_action(const std::string& nf);

/// Qualified name of an NF's table/action inside a composed control
/// block: "<nf>.<name>". Qualification keeps same-named artifacts of
/// different NFs from colliding after the merge.
std::string qualify(const std::string& nf, const std::string& name);

}  // namespace dejavu::merge
