// NF composition (§3.2): build one control block per pipelet from the
// NFs placed there, sequentially (back-to-back; implicit dependencies
// consume stage depth) or parallelly (side-by-side in mutually
// exclusive branches; NFs share MAU stages but cross-branch transitions
// need a resubmission/recirculation).
#pragma once

#include <string>
#include <vector>

#include "asic/target.hpp"
#include "p4ir/control.hpp"
#include "p4ir/program.hpp"

namespace dejavu::merge {

enum class CompositionKind { kSequential, kParallel };

const char* to_string(CompositionKind kind);

/// One NF to place on a pipelet: its name and its control block (the
/// single control of the NF's program, per the §3.1 interface).
struct NfUnit {
  std::string nf_name;
  const p4ir::ControlBlock* control = nullptr;
};

/// Compose the NFs of one pipelet into a single control block.
///
/// Synthesized structure, in apply order:
///   for each NF:  [gate: dejavu_check_nextNF_<nf>]
///                 <nf's tables, gated on the check hit>
///                 dejavu_check_sfcFlags_<nf> (same gate)
///   if ingress:   dejavu_branching (bypassed when sfc.out_port set)
///
/// With kParallel, each NF's entries carry a distinct branch_id, so
/// the allocator may overlay them in the same stages.
p4ir::ControlBlock compose_pipelet(const std::string& control_name,
                                   const std::vector<NfUnit>& nfs,
                                   CompositionKind kind, bool is_ingress);

/// Assignment of NFs to one pipelet, with the composition flavor.
struct PipeletAssignment {
  asic::PipeletId pipelet;
  CompositionKind kind = CompositionKind::kSequential;
  std::vector<std::string> nfs;  // in chain-relative order

  bool operator==(const PipeletAssignment&) const = default;
};

/// Build the single multi-pipelet program from NF programs and an
/// assignment: merged header types, generic parser, one composed
/// control block per assigned pipelet (named after the pipelet).
/// Every NF program must contain exactly one control block.
///
/// `pipelines` is the target's pipeline count: §3.4 inserts the
/// branching table in the last MAU stage of *all* ingress pipelets,
/// including ones hosting no NF — packets recirculating through an
/// otherwise-empty ingress pipe still need steering.
p4ir::Program compose_program(
    const std::string& program_name,
    const std::vector<const p4ir::Program*>& nf_programs,
    const std::vector<PipeletAssignment>& assignment,
    std::uint32_t pipelines, p4ir::TupleIdTable& ids);

/// Control-block name used for a pipelet in the composed program.
std::string pipelet_control_name(const asic::PipeletId& id);

}  // namespace dejavu::merge
