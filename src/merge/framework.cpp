#include "merge/framework.hpp"

namespace dejavu::merge {

std::string check_next_nf_table(const std::string& nf) {
  return "dejavu_check_nextNF_" + nf;
}

std::string check_sfc_flags_table(const std::string& nf) {
  return "dejavu_check_sfcFlags_" + nf;
}

std::string check_hit_action(const std::string& nf) {
  return "dejavu_hit_" + nf;
}

std::string advance_action(const std::string& nf) {
  return "dejavu_advance_" + nf;
}

std::string qualify(const std::string& nf, const std::string& name) {
  return nf + "." + name;
}

}  // namespace dejavu::merge
