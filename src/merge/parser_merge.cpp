#include "merge/parser_merge.hpp"

#include <stdexcept>

namespace dejavu::merge {

p4ir::ParserGraph merge_parsers(
    const std::vector<const p4ir::Program*>& programs,
    p4ir::TupleIdTable& ids) {
  p4ir::ParserGraph merged;
  bool start_set = false;
  std::uint32_t start = 0;

  for (const p4ir::Program* program : programs) {
    const p4ir::ParserGraph& parser = program->parser();
    if (parser.vertices().empty()) continue;

    if (!start_set) {
      start = parser.start();
      start_set = true;
    } else if (parser.start() != start) {
      throw std::invalid_argument(
          "parser merge: program '" + program->name() +
          "' starts at " + ids.tuple_of(parser.start()).to_string() +
          " but an earlier program starts at " +
          ids.tuple_of(start).to_string());
    }

    for (std::uint32_t v : parser.vertices()) {
      merged.add_vertex(ids, ids.tuple_of(v));
    }
    for (const p4ir::ParserEdge& e : parser.edges()) {
      try {
        merged.add_edge(e);
      } catch (const std::invalid_argument& ex) {
        throw std::invalid_argument("parser merge: program '" +
                                    program->name() + "': " + ex.what());
      }
    }
  }

  if (start_set) merged.set_start(start);
  return merged;
}

std::vector<p4ir::HeaderType> merge_header_types(
    const std::vector<const p4ir::Program*>& programs) {
  // Reuse Program::add_header_type's conflict detection by folding all
  // types into a scratch program.
  p4ir::Program scratch("<merged-types>");
  for (const p4ir::Program* program : programs) {
    for (const p4ir::HeaderType& type : program->header_types()) {
      try {
        scratch.add_header_type(type);
      } catch (const std::invalid_argument& ex) {
        throw std::invalid_argument("header merge: program '" +
                                    program->name() + "': " + ex.what());
      }
    }
  }
  return scratch.header_types();
}

}  // namespace dejavu::merge
