// Generic-parser construction (§3): merge the parser DAGs of several
// NF programs into one parser that accepts the union of their packet
// languages. Vertex equivalence is decided by the (header_type,
// offset) tuple through the shared global-ID table, exactly the
// scheme the paper proposes; selector conflicts (same transition value
// leading to different headers) are detected and reported.
#pragma once

#include <string>
#include <vector>

#include "p4ir/parser_graph.hpp"
#include "p4ir/program.hpp"

namespace dejavu::merge {

/// Merge the parsers of `programs` (all interned in `ids`). Programs
/// with empty parsers are skipped. Throws std::invalid_argument when
/// the non-empty parsers disagree on the start vertex or carry
/// conflicting selectors.
p4ir::ParserGraph merge_parsers(
    const std::vector<const p4ir::Program*>& programs,
    p4ir::TupleIdTable& ids);

/// Merge header-type definitions; throws std::invalid_argument when
/// two programs define the same type name with different layouts.
std::vector<p4ir::HeaderType> merge_header_types(
    const std::vector<const p4ir::Program*>& programs);

}  // namespace dejavu::merge
