#include "asic/switch_config.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::asic {

SwitchConfig::SwitchConfig(TargetSpec spec)
    : spec_(std::move(spec)), loopback_(spec_.total_ports(), false) {}

void SwitchConfig::set_loopback(std::uint32_t port, bool enabled) {
  if (port >= loopback_.size()) {
    throw std::out_of_range("port " + std::to_string(port) +
                            " out of range (switch has " +
                            std::to_string(loopback_.size()) + " ports)");
  }
  loopback_[port] = enabled;
}

void SwitchConfig::set_pipeline_loopback(std::uint32_t pipeline,
                                         bool enabled) {
  if (pipeline >= spec_.pipelines) {
    throw std::out_of_range("pipeline " + std::to_string(pipeline) +
                            " out of range");
  }
  for (std::uint32_t p = 0; p < spec_.total_ports(); ++p) {
    if (spec_.pipeline_of_port(p) == pipeline) loopback_[p] = enabled;
  }
}

bool SwitchConfig::is_loopback(std::uint32_t port) const {
  if (port >= loopback_.size()) return false;
  return loopback_[port];
}

std::uint32_t SwitchConfig::loopback_count() const {
  return static_cast<std::uint32_t>(
      std::count(loopback_.begin(), loopback_.end(), true));
}

std::uint32_t SwitchConfig::loopback_count_in_pipeline(
    std::uint32_t pipeline) const {
  std::uint32_t n = 0;
  for (std::uint32_t p = 0; p < spec_.total_ports(); ++p) {
    if (spec_.pipeline_of_port(p) == pipeline && loopback_[p]) ++n;
  }
  return n;
}

std::uint32_t SwitchConfig::external_port_count() const {
  return spec_.total_ports() - loopback_count();
}

double SwitchConfig::external_capacity_gbps() const {
  return external_port_count() * spec_.port_gbps;
}

double SwitchConfig::recirc_capacity_gbps(std::uint32_t pipeline) const {
  return loopback_count_in_pipeline(pipeline) * spec_.port_gbps +
         spec_.dedicated_recirc_gbps;
}

double SwitchConfig::single_recirc_fraction() const {
  const std::uint32_t m = loopback_count();
  const std::uint32_t n = spec_.total_ports();
  if (n == m) return 1.0;  // nothing external; vacuously all of it
  double frac = static_cast<double>(m) / (n - m);
  return std::min(1.0, frac);
}

std::vector<std::uint32_t> SwitchConfig::loopback_ports() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t p = 0; p < loopback_.size(); ++p) {
    if (loopback_[p]) out.push_back(p);
  }
  return out;
}

}  // namespace dejavu::asic
