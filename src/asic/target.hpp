// The switch ASIC target model: a parameterized RMT-style device with
// multiple pipelines, each split into an ingress pipe and an egress
// pipe ("pipelets", §2 Fig. 1), each pipelet a fixed ladder of MAU
// stages with per-stage resource budgets.
//
// The default profile models the paper's testbed: a Wedge-100B 32X
// with a Tofino — 32x100G Ethernet ports, 2 physical pipelines
// (4 pipelets), 16 hardwired ports per pipeline (§5).
#pragma once

#include <cstdint>
#include <string>

#include "p4ir/resources.hpp"

namespace dejavu::asic {

/// Which half of a pipeline a pipelet is.
enum class PipeKind : std::uint8_t { kIngress, kEgress };

const char* to_string(PipeKind kind);

/// Identifies one pipelet: (pipeline index, ingress/egress).
struct PipeletId {
  std::uint32_t pipeline = 0;
  PipeKind kind = PipeKind::kIngress;

  auto operator<=>(const PipeletId&) const = default;
  std::string to_string() const;
};

/// Architectural constraints on resubmission/recirculation, lifted
/// verbatim from §3.3 (Tofino's rules). Kept as flags so alternative
/// targets — e.g. the per-packet-recirculation ASIC the paper's §7
/// wishes for — can be modeled too.
struct RecircConstraints {
  /// (a) resubmit only after ingress; recirculate only after egress.
  bool loopback_at_pipe_boundary = true;
  /// (b) recirculation decisions are made in the ingress pipe by
  /// selecting a loopback egress port.
  bool decided_in_ingress = true;
  /// (c) recirculation bandwidth comes at Ethernet-port granularity.
  bool port_granularity = true;
  /// (d) resubmission/recirculation stays within one pipeline.
  bool within_pipeline = true;

  bool operator==(const RecircConstraints&) const = default;
};

/// A switch target profile.
struct TargetSpec {
  std::string name;
  std::uint32_t pipelines = 2;
  std::uint32_t stages_per_pipelet = 12;
  std::uint32_t ports_per_pipeline = 16;
  double port_gbps = 100.0;
  /// Dedicated recirculation bandwidth per pipeline (§4: "each
  /// pipeline provides 100Gbps recirculation bandwidth for free via a
  /// dedicated recirculation port").
  double dedicated_recirc_gbps = 100.0;
  /// Port-to-port latency through the chip with idle buffers (§4:
  /// ~650 ns measured).
  double port_to_port_latency_ns = 650.0;
  /// Extra latency of one on-chip recirculation (§4: ~75 ns).
  double onchip_recirc_latency_ns = 75.0;
  /// Extra latency of one off-chip loop through a 1 m DAC (§4: ~70 ns
  /// above on-chip, i.e. ~145 ns total).
  double offchip_recirc_latency_ns = 145.0;
  p4ir::TableResources stage_budget;
  RecircConstraints recirc;

  std::uint32_t pipelet_count() const { return pipelines * 2; }
  std::uint32_t total_stages() const {
    return pipelet_count() * stages_per_pipelet;
  }
  std::uint32_t total_ports() const { return pipelines * ports_per_pipeline; }
  double total_capacity_gbps() const { return total_ports() * port_gbps; }

  /// Whole-switch resource totals (stage budget x total stages).
  p4ir::TableResources total_resources() const;

  /// The pipeline a front-panel port is hardwired to.
  std::uint32_t pipeline_of_port(std::uint32_t port) const {
    return port / ports_per_pipeline;
  }

  /// The paper's testbed profile (Tofino, Wedge-100B 32X).
  static TargetSpec tofino32();

  /// A smaller single-pipeline profile for unit tests.
  static TargetSpec mini();

  bool operator==(const TargetSpec&) const = default;
};

}  // namespace dejavu::asic
