#include "asic/target.hpp"

namespace dejavu::asic {

const char* to_string(PipeKind kind) {
  return kind == PipeKind::kIngress ? "ingress" : "egress";
}

std::string PipeletId::to_string() const {
  return std::string(asic::to_string(kind)) + std::to_string(pipeline);
}

p4ir::TableResources TargetSpec::total_resources() const {
  p4ir::TableResources total;
  const std::uint32_t n = total_stages();
  total.table_ids = stage_budget.table_ids * n;
  total.gateways = stage_budget.gateways * n;
  total.sram_blocks = stage_budget.sram_blocks * n;
  total.tcam_blocks = stage_budget.tcam_blocks * n;
  total.vliw_slots = stage_budget.vliw_slots * n;
  total.exact_xbar_bytes = stage_budget.exact_xbar_bytes * n;
  total.ternary_xbar_bytes = stage_budget.ternary_xbar_bytes * n;
  return total;
}

TargetSpec TargetSpec::tofino32() {
  TargetSpec t;
  t.name = "tofino-wedge100b-32x";
  t.pipelines = 2;
  t.stages_per_pipelet = 12;
  t.ports_per_pipeline = 16;
  t.port_gbps = 100.0;
  t.dedicated_recirc_gbps = 100.0;
  // RMT/Tofino-like per-stage budgets.
  t.stage_budget.table_ids = 16;
  t.stage_budget.gateways = 16;
  t.stage_budget.sram_blocks = 80;
  t.stage_budget.tcam_blocks = 24;
  t.stage_budget.vliw_slots = 32;
  t.stage_budget.exact_xbar_bytes = 128;
  t.stage_budget.ternary_xbar_bytes = 66;
  return t;
}

TargetSpec TargetSpec::mini() {
  TargetSpec t = tofino32();
  t.name = "mini-1pipe";
  t.pipelines = 1;
  t.stages_per_pipelet = 4;
  t.ports_per_pipeline = 4;
  t.port_gbps = 10.0;
  t.dedicated_recirc_gbps = 10.0;
  return t;
}

}  // namespace dejavu::asic
