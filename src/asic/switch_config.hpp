// Port-level switch configuration: which front-panel ports are in
// loopback mode (§4 — "a loopback port can no longer take external
// traffic and bounces all packets back into the ingress pipe") and the
// capacity accounting that follows from it.
#pragma once

#include <cstdint>
#include <vector>

#include "asic/target.hpp"

namespace dejavu::asic {

class SwitchConfig {
 public:
  explicit SwitchConfig(TargetSpec spec);

  const TargetSpec& spec() const { return spec_; }

  /// Put a port into (or out of) loopback mode. Throws
  /// std::out_of_range for unknown ports.
  void set_loopback(std::uint32_t port, bool enabled = true);

  /// Put every port hardwired to `pipeline` into loopback mode — the
  /// configuration of the §5 prototype (all 16 ports of ingress 1).
  void set_pipeline_loopback(std::uint32_t pipeline, bool enabled = true);

  bool is_loopback(std::uint32_t port) const;
  std::uint32_t loopback_count() const;
  std::uint32_t loopback_count_in_pipeline(std::uint32_t pipeline) const;
  std::uint32_t external_port_count() const;

  /// External (revenue) capacity: (n - m)/n of the ASIC capacity when
  /// m of n ports loop back (§4).
  double external_capacity_gbps() const;

  /// Loopback bandwidth available in one pipeline, including the
  /// dedicated recirculation port's free bandwidth.
  double recirc_capacity_gbps(std::uint32_t pipeline) const;

  /// min(1, m/(n-m)): the fraction of external traffic that can
  /// recirculate once without loss (§4).
  double single_recirc_fraction() const;

  /// Ports (indices) currently in loopback mode.
  std::vector<std::uint32_t> loopback_ports() const;

  /// Upper bound on pipeline passes (initial pass + resubmissions +
  /// recirculations) one packet may consume before the traffic manager
  /// drops it as a routing loop. Mirrors the recirculation budget a
  /// real switch OS enforces so loops cannot starve external traffic.
  std::uint32_t max_pipeline_passes() const { return max_pipeline_passes_; }
  void set_max_pipeline_passes(std::uint32_t n) { max_pipeline_passes_ = n; }

 private:
  TargetSpec spec_;
  std::vector<bool> loopback_;
  std::uint32_t max_pipeline_passes_ = 64;
};

}  // namespace dejavu::asic
