#include "sim/fluid.hpp"

#include <algorithm>
#include <cmath>

namespace dejavu::sim {

double loopback_survival(std::uint32_t recirculations) {
  if (recirculations <= 1) return 1.0;
  // Solve s + s^2 + ... + s^k = 1 by bisection on (0, 1); the LHS is
  // strictly increasing in s, 0 at s=0 and k >= 2 at s=1.
  const std::uint32_t k = recirculations;
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double s = 0.5 * (lo + hi);
    double sum = 0.0, pow = 1.0;
    for (std::uint32_t i = 0; i < k; ++i) {
      pow *= s;
      sum += pow;
    }
    (sum < 1.0 ? lo : hi) = s;
  }
  return 0.5 * (lo + hi);
}

double recirc_throughput_gbps(double capacity_gbps,
                              std::uint32_t recirculations) {
  const double s = loopback_survival(recirculations);
  return capacity_gbps * std::pow(s, static_cast<double>(recirculations));
}

std::vector<double> generation_throughputs_gbps(
    double capacity_gbps, std::uint32_t recirculations) {
  std::vector<double> out;
  const double s = loopback_survival(recirculations);
  double x = capacity_gbps;
  for (std::uint32_t i = 0; i < recirculations; ++i) {
    x *= s;
    out.push_back(x);
  }
  return out;
}

double external_capacity_fraction(std::uint32_t n_ports,
                                  std::uint32_t m_loopback) {
  if (n_ports == 0) return 0.0;
  m_loopback = std::min(m_loopback, n_ports);
  return static_cast<double>(n_ports - m_loopback) / n_ports;
}

double single_recirc_fraction(std::uint32_t n_ports,
                              std::uint32_t m_loopback) {
  if (n_ports == 0) return 0.0;
  m_loopback = std::min(m_loopback, n_ports);
  if (n_ports == m_loopback) return 1.0;
  return std::min(1.0, static_cast<double>(m_loopback) /
                           (n_ports - m_loopback));
}

}  // namespace dejavu::sim
