#include "sim/parse.hpp"

#include "sim/bits.hpp"

namespace dejavu::sim {

void ParseResult::add(const std::string& header_type,
                      std::uint32_t byte_offset) {
  if (offsets_.emplace(header_type, byte_offset).second) {
    order_.push_back(header_type);
  }
}

bool ParseResult::has(const std::string& header_type) const {
  return offsets_.contains(header_type);
}

std::optional<std::uint32_t> ParseResult::offset_of(
    const std::string& header_type) const {
  auto it = offsets_.find(header_type);
  if (it == offsets_.end()) return std::nullopt;
  return it->second;
}

ParseResult run_parser(const p4ir::Program& program,
                       const p4ir::TupleIdTable& ids,
                       const net::Packet& packet) {
  ParseResult result;
  const p4ir::ParserGraph& g = program.parser();
  if (g.vertices().empty()) return result;

  auto bytes = packet.data().view();
  std::uint32_t vertex = g.start();

  // Read a field of an already-extracted header for selector
  // evaluation; nullopt when the header is absent.
  auto read_field = [&](const std::string& dotted)
      -> std::optional<std::uint64_t> {
    auto ref = p4ir::FieldRef::parse(dotted);
    if (!ref) return std::nullopt;
    auto base = result.offset_of(ref->header);
    if (!base) return std::nullopt;
    const p4ir::HeaderType* type = program.find_header_type(ref->header);
    if (type == nullptr) return std::nullopt;
    auto bit_off = type->bit_offset(ref->field);
    const p4ir::Field* field = type->find_field(ref->field);
    if (!bit_off || field == nullptr) return std::nullopt;
    const std::size_t abs_bit = std::size_t{*base} * 8 + *bit_off;
    if (abs_bit + field->bits > bytes.size() * 8) return std::nullopt;
    return read_bits(bytes, abs_bit, field->bits);
  };

  for (std::size_t hop = 0; hop <= g.vertices().size(); ++hop) {
    const p4ir::ParserTuple& tuple = ids.tuple_of(vertex);
    const p4ir::HeaderType* type = program.find_header_type(tuple.header_type);
    if (type == nullptr) break;
    if (std::size_t{tuple.offset} + type->byte_width() > bytes.size()) {
      break;  // truncated frame: stop extraction
    }
    result.add(tuple.header_type, tuple.offset);

    // Pick the next edge: selective edges first, default last
    // (ParserGraph::out_edges already orders them that way).
    bool advanced = false;
    for (const p4ir::ParserEdge& e : g.out_edges(vertex)) {
      if (e.is_default) {
        vertex = e.to;
        advanced = true;
        break;
      }
      auto v = read_field(e.select_field);
      if (v && *v == e.select_value) {
        vertex = e.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // accept
  }
  return result;
}

}  // namespace dejavu::sim
