#include "sim/drop_reason.hpp"

namespace dejavu::sim {

const char* drop_code_name(DropCode code) {
  switch (code) {
    case DropCode::kNone:
      return "none";
    case DropCode::kInvalidIngressPort:
      return "invalid-ingress-port";
    case DropCode::kRecircPortExternal:
      return "recirc-port-external";
    case DropCode::kLoopbackPortExternal:
      return "loopback-port-external";
    case DropCode::kIngressDrop:
      return "ingress-drop";
    case DropCode::kNoEgressDecision:
      return "no-egress-decision";
    case DropCode::kInvalidEgressSpec:
      return "invalid-egress-spec";
    case DropCode::kEgressDrop:
      return "egress-drop";
    case DropCode::kPortDown:
      return "port-down";
    case DropCode::kMaxPassesExceeded:
      return "max-passes-exceeded";
    case DropCode::kUpdateDrained:
      return "update-drained";
  }
  return "unknown";
}

std::optional<DropCode> drop_code_from_name(const std::string& name) {
  if (name == drop_code_name(DropCode::kNone)) return DropCode::kNone;
  for (DropCode code : kAllDropCodes) {
    if (name == drop_code_name(code)) return code;
  }
  return std::nullopt;
}

const char* drop_code_description(DropCode code) {
  switch (code) {
    case DropCode::kNone:
      return "not dropped";
    case DropCode::kInvalidIngressPort:
      return "injected on a port the target does not have";
    case DropCode::kRecircPortExternal:
      return "dedicated recirculation ports take no external traffic";
    case DropCode::kLoopbackPortExternal:
      return "loopback-mode ports take no external traffic";
    case DropCode::kIngressDrop:
      return "an ingress-pipe table raised the drop flag";
    case DropCode::kNoEgressDecision:
      return "ingress pass ended without an egress decision";
    case DropCode::kInvalidEgressSpec:
      return "egress_spec names a port the target does not have";
    case DropCode::kEgressDrop:
      return "an egress-pipe table raised the drop flag";
    case DropCode::kPortDown:
      return "the chosen egress or recirculation port is down";
    case DropCode::kMaxPassesExceeded:
      return "pipeline-pass budget exhausted (routing loop)";
    case DropCode::kUpdateDrained:
      return "intentionally completed on a retired epoch by a live-update "
             "drain";
  }
  return "unknown drop code";
}

}  // namespace dejavu::sim
