// Deployment-wide throughput estimation — §4's second takeaway made
// executable: "network operators can expect and calculate the
// throughput of their service chains after placement — the ASIC itself
// does not introduce any inefficiency on recirculation throughput."
//
// Generalizes the Fig. 7 feedback-queue model from one loopback port
// to a whole deployment: every planned traversal contributes its
// per-pipeline recirculation demand; when a pipeline's loopback
// capacity saturates, all generations crossing it shed load
// proportionally, which feeds back into downstream demand. Solved by
// fixed-point iteration.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "asic/switch_config.hpp"
#include "place/placement.hpp"
#include "sfc/chain.hpp"

namespace dejavu::sim {

struct ChainThroughput {
  std::uint16_t path_id = 0;
  double offered_gbps = 0;
  double delivered_gbps = 0;
  std::uint32_t recirculations = 0;

  double delivery_fraction() const {
    return offered_gbps > 0 ? delivered_gbps / offered_gbps : 1.0;
  }
};

struct ThroughputReport {
  std::vector<ChainThroughput> per_path;
  /// Recirculation-bandwidth utilization per pipeline (demand over
  /// capacity, after convergence; > 1 never occurs — saturation sheds).
  std::map<std::uint32_t, double> recirc_utilization;
  double total_offered_gbps = 0;
  double total_delivered_gbps = 0;

  std::string to_table() const;
};

/// One path's demand on the recirculation fabric, however it was
/// obtained: planned (from a routing traversal) or measured (from a
/// traffic replay). `loop_pipelines` is the ordered sequence of
/// pipelines the path's packets recirculate through.
struct PathDemand {
  std::uint16_t path_id = 0;
  double offered_gbps = 0;
  std::vector<std::uint32_t> loop_pipelines;
};

/// The Fig. 7 feedback-queue fixed point, factored out of
/// estimate_throughput so replay-measured demands can drive the very
/// same solver: per-pipeline recirculation demand -> proportional
/// shedding where demand exceeds capacity -> iterate to convergence.
ThroughputReport solve_fluid_throughput(const std::vector<PathDemand>& paths,
                                        const asic::SwitchConfig& config);

/// Estimate per-chain throughput for an offered load split across the
/// policies by weight. `traversals` come from the routing plan (or
/// plan_traversal directly). Thin wrapper over solve_fluid_throughput.
ThroughputReport estimate_throughput(
    const sfc::PolicySet& policies,
    const std::map<std::uint16_t, place::Traversal>& traversals,
    const asic::SwitchConfig& config, double total_offered_gbps);

}  // namespace dejavu::sim
