// Deterministic workload synthesis: flow mixes for driving the
// behavioral data plane in tests, examples, and benches. Seeded, so
// every run exercises the same packets.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace dejavu::sim {

/// A parameterized flow population aimed at one destination service.
struct FlowMix {
  std::uint32_t flows = 100;
  net::Ipv4Addr dst{10, 0, 0, 1};
  std::uint8_t protocol = net::kIpProtoTcp;
  std::uint16_t dst_port = 443;
  /// Source addresses drawn from this /16.
  net::Ipv4Addr src_base{192, 168, 0, 0};
  std::size_t payload_size = 64;
  std::uint64_t seed = 1;
};

/// One synthetic flow: its spec plus a builder for successive packets.
struct Flow {
  net::PacketSpec spec;

  net::Packet packet() const { return net::Packet::make(spec); }
  net::FiveTuple tuple() const {
    return net::FiveTuple{spec.ip_src, spec.ip_dst, spec.protocol,
                          spec.src_port, spec.dst_port};
  }
};

/// Generate `mix.flows` distinct flows (unique (src, sport) pairs).
std::vector<Flow> generate_flows(const FlowMix& mix);

}  // namespace dejavu::sim
