#include "sim/throughput.hpp"

#include <algorithm>
#include <cstdio>

namespace dejavu::sim {

namespace {

/// The sequence of pipelines a path's packets recirculate through, in
/// order (one entry per recirculation).
std::vector<std::uint32_t> recirc_pipelines(const place::Traversal& t) {
  std::vector<std::uint32_t> out;
  for (const place::TraversalStep& step : t.steps) {
    if (step.exit_via == place::TraversalStep::Exit::kRecirculate) {
      out.push_back(step.pipelet.pipeline);
    }
  }
  return out;
}

}  // namespace

std::string ThroughputReport::to_table() const {
  std::string s;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-8s %-10s %-14s %-14s %-10s\n", "path",
                "recircs", "offered Gbps", "delivered", "fraction");
  s += buf;
  for (const ChainThroughput& c : per_path) {
    std::snprintf(buf, sizeof(buf), "%-8u %-10u %-14.1f %-14.1f %-10.3f\n",
                  c.path_id, c.recirculations, c.offered_gbps,
                  c.delivered_gbps, c.delivery_fraction());
    s += buf;
  }
  std::snprintf(buf, sizeof(buf), "total: offered %.1f, delivered %.1f\n",
                total_offered_gbps, total_delivered_gbps);
  s += buf;
  for (const auto& [pipeline, util] : recirc_utilization) {
    std::snprintf(buf, sizeof(buf),
                  "pipeline %u recirculation utilization: %.2f\n", pipeline,
                  util);
    s += buf;
  }
  return s;
}

ThroughputReport solve_fluid_throughput(const std::vector<PathDemand>& paths,
                                        const asic::SwitchConfig& config) {
  ThroughputReport report;

  struct PathState {
    const PathDemand* demand;
    /// Survival per recirculation hop (updated each iteration).
    std::vector<double> survival;
  };
  std::vector<PathState> states;
  for (const PathDemand& d : paths) {
    report.total_offered_gbps += d.offered_gbps;
    states.push_back({&d, std::vector<double>(d.loop_pipelines.size(), 1.0)});
  }

  // Fixed point: compute per-pipeline recirculation demand from the
  // current per-hop flows, derive proportional survival where demand
  // exceeds capacity, repeat. Monotone in each step; 50 rounds are
  // far beyond convergence for realistic inputs.
  std::map<std::uint32_t, double> utilization;
  for (int round = 0; round < 50; ++round) {
    std::map<std::uint32_t, double> demand;
    for (const PathState& ps : states) {
      double flow = ps.demand->offered_gbps;
      for (std::size_t hop = 0; hop < ps.survival.size(); ++hop) {
        demand[ps.demand->loop_pipelines[hop]] += flow;  // load TO this loop
        flow *= ps.survival[hop];
      }
    }
    std::map<std::uint32_t, double> shed;
    utilization.clear();
    for (const auto& [pipeline, d] : demand) {
      const double capacity = config.recirc_capacity_gbps(pipeline);
      shed[pipeline] = d > capacity && d > 0 ? capacity / d : 1.0;
      utilization[pipeline] =
          capacity > 0 ? std::min(d, capacity) / capacity : 0.0;
    }
    for (PathState& ps : states) {
      for (std::size_t hop = 0; hop < ps.survival.size(); ++hop) {
        ps.survival[hop] = shed[ps.demand->loop_pipelines[hop]];
      }
    }
  }

  report.recirc_utilization = std::move(utilization);
  for (const PathState& ps : states) {
    ChainThroughput c;
    c.path_id = ps.demand->path_id;
    c.offered_gbps = ps.demand->offered_gbps;
    c.recirculations =
        static_cast<std::uint32_t>(ps.demand->loop_pipelines.size());
    double flow = ps.demand->offered_gbps;
    for (double s : ps.survival) flow *= s;
    c.delivered_gbps = flow;
    report.total_delivered_gbps += flow;
    report.per_path.push_back(c);
  }
  return report;
}

ThroughputReport estimate_throughput(
    const sfc::PolicySet& policies,
    const std::map<std::uint16_t, place::Traversal>& traversals,
    const asic::SwitchConfig& config, double total_offered_gbps) {
  const double total_weight = policies.total_weight();
  std::vector<PathDemand> paths;
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    auto it = traversals.find(policy.path_id);
    if (it == traversals.end() || !it->second.feasible) continue;
    PathDemand d;
    d.path_id = policy.path_id;
    d.offered_gbps = total_weight > 0
                         ? total_offered_gbps * policy.weight / total_weight
                         : 0;
    d.loop_pipelines = recirc_pipelines(it->second);
    paths.push_back(std::move(d));
  }
  ThroughputReport report = solve_fluid_throughput(paths, config);
  // The offered load is what the operator asked about, even when some
  // paths were skipped as infeasible.
  report.total_offered_gbps = total_offered_gbps;
  return report;
}

}  // namespace dejavu::sim
