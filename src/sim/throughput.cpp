#include "sim/throughput.hpp"

#include <algorithm>
#include <cstdio>

namespace dejavu::sim {

namespace {

/// The sequence of pipelines a path's packets recirculate through, in
/// order (one entry per recirculation).
std::vector<std::uint32_t> recirc_pipelines(const place::Traversal& t) {
  std::vector<std::uint32_t> out;
  for (const place::TraversalStep& step : t.steps) {
    if (step.exit_via == place::TraversalStep::Exit::kRecirculate) {
      out.push_back(step.pipelet.pipeline);
    }
  }
  return out;
}

}  // namespace

std::string ThroughputReport::to_table() const {
  std::string s;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-8s %-10s %-14s %-14s %-10s\n", "path",
                "recircs", "offered Gbps", "delivered", "fraction");
  s += buf;
  for (const ChainThroughput& c : per_path) {
    std::snprintf(buf, sizeof(buf), "%-8u %-10u %-14.1f %-14.1f %-10.3f\n",
                  c.path_id, c.recirculations, c.offered_gbps,
                  c.delivered_gbps, c.delivery_fraction());
    s += buf;
  }
  std::snprintf(buf, sizeof(buf), "total: offered %.1f, delivered %.1f\n",
                total_offered_gbps, total_delivered_gbps);
  s += buf;
  for (const auto& [pipeline, util] : recirc_utilization) {
    std::snprintf(buf, sizeof(buf),
                  "pipeline %u recirculation utilization: %.2f\n", pipeline,
                  util);
    s += buf;
  }
  return s;
}

ThroughputReport estimate_throughput(
    const sfc::PolicySet& policies,
    const std::map<std::uint16_t, place::Traversal>& traversals,
    const asic::SwitchConfig& config, double total_offered_gbps) {
  ThroughputReport report;
  report.total_offered_gbps = total_offered_gbps;
  const double total_weight = policies.total_weight();

  struct PathState {
    const sfc::ChainPolicy* policy;
    std::vector<std::uint32_t> loops;  // pipeline per recirculation
    double offered;
    /// Survival per recirculation hop (updated each iteration).
    std::vector<double> survival;
  };
  std::vector<PathState> paths;
  for (const sfc::ChainPolicy& policy : policies.policies()) {
    auto it = traversals.find(policy.path_id);
    if (it == traversals.end() || !it->second.feasible) continue;
    PathState ps;
    ps.policy = &policy;
    ps.loops = recirc_pipelines(it->second);
    ps.offered = total_weight > 0
                     ? total_offered_gbps * policy.weight / total_weight
                     : 0;
    ps.survival.assign(ps.loops.size(), 1.0);
    paths.push_back(std::move(ps));
  }

  // Fixed point: compute per-pipeline recirculation demand from the
  // current per-hop flows, derive proportional survival where demand
  // exceeds capacity, repeat. Monotone in each step; 50 rounds are
  // far beyond convergence for realistic inputs.
  std::map<std::uint32_t, double> utilization;
  for (int round = 0; round < 50; ++round) {
    std::map<std::uint32_t, double> demand;
    for (const PathState& ps : paths) {
      double flow = ps.offered;
      for (std::size_t hop = 0; hop < ps.loops.size(); ++hop) {
        demand[ps.loops[hop]] += flow;  // load offered TO this loop
        flow *= ps.survival[hop];
      }
    }
    std::map<std::uint32_t, double> shed;
    utilization.clear();
    for (const auto& [pipeline, d] : demand) {
      const double capacity = config.recirc_capacity_gbps(pipeline);
      shed[pipeline] = d > capacity && d > 0 ? capacity / d : 1.0;
      utilization[pipeline] =
          capacity > 0 ? std::min(d, capacity) / capacity : 0.0;
    }
    for (PathState& ps : paths) {
      for (std::size_t hop = 0; hop < ps.loops.size(); ++hop) {
        ps.survival[hop] = shed[ps.loops[hop]];
      }
    }
  }

  report.recirc_utilization = std::move(utilization);
  for (const PathState& ps : paths) {
    ChainThroughput c;
    c.path_id = ps.policy->path_id;
    c.offered_gbps = ps.offered;
    c.recirculations = static_cast<std::uint32_t>(ps.loops.size());
    double flow = ps.offered;
    for (double s : ps.survival) flow *= s;
    c.delivered_gbps = flow;
    report.total_delivered_gbps += flow;
    report.per_path.push_back(c);
  }
  return report;
}

}  // namespace dejavu::sim
