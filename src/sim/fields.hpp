// FieldView: uniform read/write access to every field namespace the IR
// can name — packet header fields (via the parse result), platform
// metadata ("standard_metadata.*"), and block-local temporaries
// ("local.*", e.g. the LB's sessionHash).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "p4ir/program.hpp"
#include "sim/parse.hpp"

namespace dejavu::sim {

/// The per-pass platform metadata (the standard_metadata of the open-
/// source switch target the paper's Fig. 5 uses).
struct StandardMetadata {
  std::uint16_t ingress_port = 0;
  std::uint16_t egress_spec = 0x1ff;  // kPortUnset sentinel
  std::uint16_t egress_port = 0;
  std::uint32_t packet_length = 0;
  /// The chain generation stamped at first ingress (§11 live updates):
  /// every table lookup on every subsequent pass — resubmission,
  /// recirculation, CPU reinjection — honors this stamp, so one packet
  /// sees exactly one generation. Survives clear_flags().
  std::uint32_t epoch = 0;
  bool resubmit_flag = false;
  bool recirculate_flag = false;
  bool drop_flag = false;
  bool mirror_flag = false;
  bool to_cpu_flag = false;

  void clear_flags() {
    resubmit_flag = recirculate_flag = drop_flag = mirror_flag =
        to_cpu_flag = false;
  }
};

class FieldView {
 public:
  FieldView(const p4ir::Program& program, net::Packet& packet,
            ParseResult parsed, StandardMetadata& meta)
      : program_(program), packet_(packet), parsed_(std::move(parsed)),
        meta_(meta) {}

  /// Read a dotted field; nullopt when the header is absent or the
  /// field is unknown. Missing-header reads are how gated tables
  /// miss on packets without an SFC header.
  std::optional<std::uint64_t> read(const std::string& dotted) const;

  /// Write a dotted field (masked to the field width). Returns false
  /// (no-op) when the header is absent — copy-from/to a popped SFC
  /// header must not corrupt the packet.
  bool write(const std::string& dotted, std::uint64_t value);

  bool has_header(const std::string& header_type) const {
    return parsed_.has(header_type);
  }

  /// Re-run the parser after a structural change (push/pop SFC).
  void reparse(const p4ir::TupleIdTable& ids);

  const ParseResult& parsed() const { return parsed_; }
  StandardMetadata& meta() { return meta_; }
  net::Packet& packet() { return packet_; }
  std::map<std::string, std::uint64_t>& locals() { return locals_; }

 private:
  const p4ir::Program& program_;
  net::Packet& packet_;
  ParseResult parsed_;
  StandardMetadata& meta_;
  std::map<std::string, std::uint64_t> locals_;
};

}  // namespace dejavu::sim
